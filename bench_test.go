package flp_test

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/flpsim/flp"
	"github.com/flpsim/flp/internal/experiments"
)

// One benchmark per reproduced artifact (see DESIGN.md §3 and
// EXPERIMENTS.md). Each iteration regenerates the experiment's full table;
// sizes are trimmed so a single iteration stays sub-second where possible.

func benchExperiment(b *testing.B, run func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("experiment produced an empty table")
		}
	}
}

func BenchmarkE1Commutativity(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.E1Commutativity(100, 1)
	})
}

func BenchmarkE2InitialValency(b *testing.B) {
	benchExperiment(b, experiments.E2InitialValency)
}

func BenchmarkE3BivalencePreservation(b *testing.B) {
	benchExperiment(b, experiments.E3BivalencePreservation)
}

func BenchmarkE4AdversarialRun(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.E4AdversarialRun(6, 10)
	})
}

func BenchmarkE5InitiallyDead(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.E5InitiallyDead(8, 1)
	})
}

func BenchmarkE6CommitWindow(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.E6CommitWindow(15)
	})
}

func BenchmarkE7FloodSet(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.E7FloodSet(100, 1)
	})
}

func BenchmarkE8ByzantineOM(b *testing.B) {
	benchExperiment(b, experiments.E8ByzantineOM)
}

func BenchmarkE9BenOr(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.E9BenOr(8)
	})
}

func BenchmarkE10PartialSynchrony(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.E10PartialSynchrony(10)
	})
}

func BenchmarkE11Agreement(b *testing.B) {
	benchExperiment(b, experiments.E11Agreement)
}

func BenchmarkE12FailureDetector(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.E12FailureDetector(8)
	})
}

func BenchmarkE13StateSpace(b *testing.B) {
	benchExperiment(b, experiments.E13StateSpace)
}

func BenchmarkE14ApproximateAgreement(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.E14ApproximateAgreement(10)
	})
}

func BenchmarkE15AtomicRegister(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.E15AtomicRegister(10)
	})
}

func BenchmarkE16ReliableBroadcast(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.E16ReliableBroadcast(10)
	})
}

func BenchmarkE17Multivalued(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.E17Multivalued(4)
	})
}

func BenchmarkE18Election(b *testing.B) {
	benchExperiment(b, func() (*experiments.Table, error) {
		return experiments.E18Election(0)
	})
}

func BenchmarkE19DistExplore(b *testing.B) {
	benchExperiment(b, experiments.E19DistExplore)
}

func BenchmarkRegisterWorkload(b *testing.B) {
	scripts := [][]flp.ScriptOp{
		{flp.WriteOp(1), flp.ReadOp(), flp.WriteOp(2)},
		{flp.ReadOp(), flp.WriteOp(3), flp.ReadOp()},
	}
	for i := 0; i < b.N; i++ {
		res, err := flp.RunRegister(flp.RegisterConfig{
			Servers: 5, Scripts: scripts, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !flp.CheckLinearizable(res.History, 0) {
			b.Fatal("non-linearizable")
		}
	}
}

// BenchmarkE11ParallelExplore is the parallel-engine guardrail: the E11
// partial-correctness sweep of naivemajority (the heaviest exhaustive
// exploration in the suite) at fixed worker counts. Workers beyond
// GOMAXPROCS only add coordination overhead, so run with -cpu 4 (or more)
// to see the speedup; results are byte-identical at every worker count,
// which the differential tests in internal/explore pin.
func BenchmarkE11ParallelExplore(b *testing.B) {
	pr := flp.NewNaiveMajority(3)
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		counts = append(counts, g)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := flp.CheckPartialCorrectness(pr, flp.CheckOptions{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if rep.AgreementHolds || !rep.Complete {
					b.Fatal("report changed: naivemajority must violate agreement under an exhaustive sweep")
				}
			}
		})
	}
}

// Micro-benchmarks of the primitives everything above is built from.

func BenchmarkApplyStep(b *testing.B) {
	pr := flp.NewPaxosSynod(3)
	c, err := flp.Initial(pr, flp.Inputs{0, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	e := flp.NullEvent(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flp.Apply(pr, c, e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassifyFinite(b *testing.B) {
	pr := flp.NewNaiveMajority(3)
	c, err := flp.Initial(pr, flp.Inputs{0, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info := flp.Classify(pr, c, flp.CheckOptions{})
		if info.Valency != flp.Bivalent {
			b.Fatal("classification changed")
		}
	}
}

func BenchmarkProbeBivalencePaxos(b *testing.B) {
	pr := flp.NewPaxosSynod(3)
	c, err := flp.Initial(pr, flp.Inputs{0, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info := flp.ClassifySmart(pr, c, flp.CheckOptions{MaxConfigs: 200}, flp.ProbeOptions{})
		if info.Valency != flp.Bivalent {
			b.Fatal("probe lost the certificate")
		}
	}
}

func BenchmarkAdversaryStagePaxos(b *testing.B) {
	pr := flp.NewPaxosSynod(3)
	probe := flp.ProbeOptions{}
	opt := flp.AdversaryOptions{
		Stages:  3,
		Probe:   &probe,
		Search:  flp.CheckOptions{MaxConfigs: 2000},
		Valency: flp.CheckOptions{MaxConfigs: 1500},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv := flp.NewAdversary(pr, opt)
		if _, err := adv.RunFromInputs(flp.Inputs{0, 1, 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFairRunPaxos(b *testing.B) {
	pr := flp.NewPaxosSynod(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := flp.Run(pr, flp.Inputs{0, 1, 1}, flp.RandomFair{},
			flp.RunOptions{MaxSteps: 100000, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllLiveDecided {
			b.Fatal("fair paxos run did not decide")
		}
	}
}

func BenchmarkBenOrRun(b *testing.B) {
	pr := flp.NewBenOr(5, 7)
	in := flp.Inputs{0, 1, 1, 0, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := flp.Run(pr, in, flp.RandomFair{},
			flp.RunOptions{MaxSteps: 300000, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllLiveDecided {
			b.Fatal("ben-or run did not decide")
		}
	}
}

func BenchmarkDeadstartRun(b *testing.B) {
	pr := flp.NewInitiallyDead(7)
	in := flp.Inputs{0, 1, 1, 0, 1, 0, 1}
	crash := map[flp.PID]int{0: 0, 3: 0, 5: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := flp.Run(pr, in, flp.RandomFair{},
			flp.RunOptions{MaxSteps: 100000, Seed: int64(i), CrashAfter: crash})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllLiveDecided {
			b.Fatal("deadstart run did not decide")
		}
	}
}

func BenchmarkFloodSet(b *testing.B) {
	in := flp.Inputs{0, 1, 1, 0, 1, 0, 1}
	for i := 0; i < b.N; i++ {
		res, err := flp.RunSync(flp.FloodSet{}, in, 3, flp.CrashPattern{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Agreement {
			b.Fatal("floodset disagreed")
		}
	}
}

func BenchmarkByzantineOM2(b *testing.B) {
	cfg := flp.ByzantineConfig{N: 7, M: 2, Traitors: map[int]bool{1: true, 5: true}}
	for i := 0; i < b.N; i++ {
		res, err := flp.RunByzantine(cfg, flp.V1)
		if err != nil {
			b.Fatal(err)
		}
		if !res.IC1(cfg) {
			b.Fatal("IC1 violated")
		}
	}
}

func BenchmarkConcurrentNetPaxos(b *testing.B) {
	pr := flp.NewPaxosSynod(3)
	in := flp.Inputs{0, 1, 1}
	for i := 0; i < b.N; i++ {
		res, err := flp.DriveNet(pr, in, flp.DriveOptions{MaxSteps: 100000, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllLiveDecided {
			b.Fatal("concurrent paxos run did not decide")
		}
	}
}

func BenchmarkDetectorConsensus(b *testing.B) {
	in := flp.Inputs{0, 1, 1, 0, 1}
	for i := 0; i < b.N; i++ {
		opt := flp.FDOptions{N: 5, F: 2, Detector: flp.EventuallyAccurate{}, Lag: 3}
		res, err := flp.RunWithDetector(opt, in)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Agreement {
			b.Fatal("detector consensus disagreed")
		}
	}
}

func BenchmarkDLSRun(b *testing.B) {
	opt := flp.DLSOptions{N: 5, F: 2, GST: 6, DropProb: 1.0}
	in := flp.Inputs{0, 1, 1, 0, 1}
	for i := 0; i < b.N; i++ {
		o := opt
		o.Seed = int64(i)
		res, err := flp.RunDLS(o, in)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Agreement {
			b.Fatal("dls disagreed")
		}
	}
}
