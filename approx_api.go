package flp

import (
	"github.com/flpsim/flp/internal/approx"
)

// Approximate-agreement types (paper reference [9]: Dolev, Lynch, Pinter,
// Stark, Weihl), re-exported.
type (
	// ApproxOptions configure an approximate-agreement execution.
	ApproxOptions = approx.Options
	// ApproxResult reports final values, spread, and convergence.
	ApproxResult = approx.Result
)

// RunApproxAgreement executes asynchronous approximate agreement: the
// spread of the correct processes' values halves each round, so exact
// consensus's impossible last bit is traded for ⌈log2(Δ/ε)⌉ rounds of
// convergence.
func RunApproxAgreement(opt ApproxOptions, inputs []int64) (*ApproxResult, error) {
	return approx.Run(opt, inputs)
}

// ApproxRoundsFor returns the rounds needed to shrink a spread within
// epsilon.
func ApproxRoundsFor(spread, epsilon int64) int { return approx.RoundsFor(spread, epsilon) }
