// Package approx implements asynchronous approximate agreement in the
// style of Dolev, Lynch, Pinter, Stark, and Weihl ("Reaching approximate
// agreement in the presence of faults" — reference [9] of the paper, one
// of the positive results its conclusion points to). Exact consensus is
// impossible in the asynchronous model; *approximate* agreement — all
// correct processes end within ε of each other, inside the range of the
// initial values — is solvable, which sharpens exactly where the
// impossibility bites: on the final bit.
//
// Crash-fault algorithm (f < N/2): in each asynchronous round a process
// broadcasts its value, collects N-f round-r values (its own included),
// and replaces its value with the midpoint of the collected set. Any two
// collected sets share at least N-2f ≥ 1 values, so two midpoints differ
// by at most half the diameter: the spread halves every round, and
// ⌈log2(Δ/ε)⌉ rounds land everyone within ε. Values never leave the
// initial range, giving validity.
//
// Values are fixed-point integers (the model is exact; no float drift).
package approx

import (
	"fmt"
	"math/rand"
	"sort"
)

// Options configure one execution.
type Options struct {
	// N is the number of processes; F the crash budget (F < N/2).
	N, F int
	// Epsilon is the target disagreement bound (fixed-point units) ≥ 1.
	Epsilon int64
	// Rounds overrides the round count; 0 derives ⌈log2(Δ/ε)⌉ from the
	// inputs.
	Rounds int
	// Seed drives the per-round choice of which N-F values each process
	// collects (the message-system nondeterminism).
	Seed int64
	// CrashRound maps a process to the round at whose start it crashes
	// (0 = initially dead). At most F entries.
	CrashRound map[int]int
}

func (o Options) validate() error {
	if o.N < 2 {
		return fmt.Errorf("approx: need N ≥ 2, got %d", o.N)
	}
	if o.F < 0 || 2*o.F >= o.N {
		return fmt.Errorf("approx: need 0 ≤ F < N/2, got F=%d N=%d", o.F, o.N)
	}
	if len(o.CrashRound) > o.F {
		return fmt.Errorf("approx: %d crashes exceed budget F=%d", len(o.CrashRound), o.F)
	}
	if o.Epsilon < 1 {
		return fmt.Errorf("approx: Epsilon must be ≥ 1, got %d", o.Epsilon)
	}
	return nil
}

// Result reports one execution.
type Result struct {
	// Values holds each surviving process's final value.
	Values map[int]int64
	// Spread is the final max-min over survivors.
	Spread int64
	// InitialSpread is the max-min over all inputs.
	InitialSpread int64
	// Rounds is the number of rounds executed.
	Rounds int
	// WithinEpsilon reports Spread ≤ Epsilon.
	WithinEpsilon bool
	// ValidityHolds reports every final value within the initial range.
	ValidityHolds bool
}

// Run executes approximate agreement from the given initial values.
func Run(opt Options, inputs []int64) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if len(inputs) != opt.N {
		return nil, fmt.Errorf("approx: %d inputs for N=%d", len(inputs), opt.N)
	}
	lo, hi := minMax(inputs)
	rounds := opt.Rounds
	if rounds == 0 {
		rounds = roundsFor(hi-lo, opt.Epsilon)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	values := append([]int64(nil), inputs...)

	for r := 1; r <= rounds; r++ {
		// The round-r broadcast values come from processes not yet
		// crashed. A process crashing in round r is modeled as reaching
		// nobody — the harshest choice; partial receipt only means the
		// adversary has more values to choose from.
		var senders []int
		for p := 0; p < opt.N; p++ {
			if !isCrashedAt(opt, p, r) {
				senders = append(senders, p)
			}
		}
		next := append([]int64(nil), values...)
		for p := 0; p < opt.N; p++ {
			if isCrashedAt(opt, p, r) {
				continue
			}
			// p collects N-F round-r values: always its own, plus a
			// random subset of the other senders (the adversary delays
			// the rest). With ≤ F crashes at least N-F senders exist.
			collected := collect(p, senders, opt.N-opt.F, rng)
			vals := make([]int64, 0, len(collected))
			for _, q := range collected {
				vals = append(vals, values[q])
			}
			cLo, cHi := minMax(vals)
			next[p] = midpoint(cLo, cHi)
		}
		values = next
	}

	res := &Result{Values: map[int]int64{}, InitialSpread: hi - lo, Rounds: rounds}
	var finals []int64
	for p := 0; p < opt.N; p++ {
		if _, crashed := opt.CrashRound[p]; crashed {
			continue
		}
		res.Values[p] = values[p]
		finals = append(finals, values[p])
	}
	fLo, fHi := minMax(finals)
	res.Spread = fHi - fLo
	res.WithinEpsilon = res.Spread <= opt.Epsilon
	res.ValidityHolds = fLo >= lo && fHi <= hi
	return res, nil
}

// RoundsFor returns the number of halving rounds needed to bring an
// initial spread within epsilon.
func RoundsFor(spread, epsilon int64) int { return roundsFor(spread, epsilon) }

func roundsFor(spread, epsilon int64) int {
	r := 0
	for spread > epsilon {
		spread = (spread + 1) / 2
		r++
	}
	return r
}

func isCrashedAt(opt Options, p, r int) bool {
	cr, crashed := opt.CrashRound[p]
	return crashed && r >= cr
}

// collect returns a size-need subset of senders that always includes p
// when p is a sender, choosing the rest at random — the adversary decides
// which N-F messages arrive first.
func collect(p int, senders []int, need int, rng *rand.Rand) []int {
	others := make([]int, 0, len(senders))
	self := false
	for _, q := range senders {
		if q == p {
			self = true
			continue
		}
		others = append(others, q)
	}
	rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
	out := []int{}
	if self {
		out = append(out, p)
	}
	for _, q := range others {
		if len(out) >= need {
			break
		}
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

func minMax(vs []int64) (int64, int64) {
	lo, hi := vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func midpoint(lo, hi int64) int64 { return lo + (hi-lo)/2 }
