package approx_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/flpsim/flp/internal/approx"
)

func TestConvergesNoCrashes(t *testing.T) {
	opt := approx.Options{N: 5, F: 2, Epsilon: 4, Seed: 1}
	res, err := approx.Run(opt, []int64{0, 1000, 500, 250, 750})
	if err != nil {
		t.Fatal(err)
	}
	if !res.WithinEpsilon {
		t.Errorf("spread %d > ε 4 after %d rounds", res.Spread, res.Rounds)
	}
	if !res.ValidityHolds {
		t.Error("final values escaped the initial range")
	}
	if res.InitialSpread != 1000 {
		t.Errorf("initial spread = %d", res.InitialSpread)
	}
}

func TestConvergesDespiteCrashes(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		opt := approx.Options{N: 5, F: 2, Epsilon: 2, Seed: seed,
			CrashRound: map[int]int{0: 0, 3: 2}}
		res, err := approx.Run(opt, []int64{0, 1 << 20, 12345, 99999, 4242})
		if err != nil {
			t.Fatal(err)
		}
		if !res.WithinEpsilon {
			t.Errorf("seed %d: spread %d > ε", seed, res.Spread)
		}
		if !res.ValidityHolds {
			t.Errorf("seed %d: validity violated", seed)
		}
		if len(res.Values) != 3 {
			t.Errorf("seed %d: %d survivors reported, want 3", seed, len(res.Values))
		}
	}
}

func TestSpreadHalvesPerRound(t *testing.T) {
	// One round on a spread-1000 instance must land within 500.
	opt := approx.Options{N: 3, F: 1, Epsilon: 1, Rounds: 1, Seed: 3}
	res, err := approx.Run(opt, []int64{0, 400, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spread > 500 {
		t.Errorf("one round left spread %d > 500", res.Spread)
	}
}

func TestEqualInputsStayPut(t *testing.T) {
	opt := approx.Options{N: 4, F: 1, Epsilon: 1, Seed: 2}
	res, err := approx.Run(opt, []int64{7, 7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range res.Values {
		if v != 7 {
			t.Errorf("p%d moved to %d from unanimous 7", p, v)
		}
	}
	if res.Rounds != 0 {
		t.Errorf("unanimous inputs needed %d rounds, want 0", res.Rounds)
	}
}

func TestRoundsFor(t *testing.T) {
	cases := map[[2]int64]int{
		{1000, 1000}: 0,
		{1000, 500}:  1,
		{1000, 1}:    10,
		{1, 1}:       0,
		{1024, 1}:    10,
	}
	for in, want := range cases {
		if got := approx.RoundsFor(in[0], in[1]); got != want {
			t.Errorf("RoundsFor(%d, %d) = %d, want %d", in[0], in[1], got, want)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []approx.Options{
		{N: 1, F: 0, Epsilon: 1},
		{N: 4, F: 2, Epsilon: 1},
		{N: 3, F: 1, Epsilon: 0},
		{N: 3, F: 0, Epsilon: 1, CrashRound: map[int]int{1: 0}},
	}
	for i, opt := range bad {
		if _, err := approx.Run(opt, make([]int64, opt.N)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := approx.Run(approx.Options{N: 3, F: 1, Epsilon: 1}, []int64{1}); err == nil {
		t.Error("mismatched input count accepted")
	}
}

// Property: for random inputs, crash subsets, and adversary seeds, the
// algorithm always converges within ε and never leaves the initial range.
func TestQuickConvergence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5) // 3..7
		fMax := (n - 1) / 2
		crashes := map[int]int{}
		for _, v := range rng.Perm(n)[:rng.Intn(fMax+1)] {
			crashes[v] = rng.Intn(4)
		}
		inputs := make([]int64, n)
		for i := range inputs {
			inputs[i] = int64(rng.Intn(1 << 16))
		}
		opt := approx.Options{N: n, F: fMax, Epsilon: int64(1 + rng.Intn(64)),
			Seed: seed, CrashRound: crashes}
		res, err := approx.Run(opt, inputs)
		if err != nil {
			return false
		}
		return res.WithinEpsilon && res.ValidityHolds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
