// Package multiset implements the message buffer of the FLP system model:
// a multiset of messages keyed by their canonical encoding.
//
// The paper's message system "maintains a multiset, called the message
// buffer, of messages that have been sent but not yet delivered" (Section
// 2). Delivery order is entirely nondeterministic at this layer; fairness
// and FIFO disciplines are imposed above it by the runtime and by the
// Theorem 1 adversary.
package multiset

import (
	"fmt"
	"sort"
	"strconv"
)

// Multiset is a multiset of strings. The zero value is empty and ready to
// use after a call to New; use New to allocate.
type Multiset struct {
	counts map[string]int
	size   int
}

// New returns an empty multiset.
func New() *Multiset {
	return &Multiset{counts: make(map[string]int)}
}

// Add inserts one occurrence of s.
func (m *Multiset) Add(s string) {
	m.counts[s]++
	m.size++
}

// AddN inserts n occurrences of s. n must be non-negative.
func (m *Multiset) AddN(s string, n int) {
	if n < 0 {
		panic(fmt.Sprintf("multiset: AddN with negative count %d", n))
	}
	if n == 0 {
		return
	}
	m.counts[s] += n
	m.size += n
}

// Remove deletes one occurrence of s. It reports whether an occurrence was
// present to delete.
func (m *Multiset) Remove(s string) bool {
	c := m.counts[s]
	if c == 0 {
		return false
	}
	if c == 1 {
		delete(m.counts, s)
	} else {
		m.counts[s] = c - 1
	}
	m.size--
	return true
}

// Count returns the number of occurrences of s.
func (m *Multiset) Count(s string) int { return m.counts[s] }

// Contains reports whether s occurs at least once.
func (m *Multiset) Contains(s string) bool { return m.counts[s] > 0 }

// Len returns the total number of occurrences across all elements.
func (m *Multiset) Len() int { return m.size }

// Distinct returns the number of distinct elements.
func (m *Multiset) Distinct() int { return len(m.counts) }

// Elements returns the distinct elements in sorted order.
func (m *Multiset) Elements() []string {
	es := make([]string, 0, len(m.counts))
	for s := range m.counts {
		es = append(es, s)
	}
	sort.Strings(es)
	return es
}

// Each calls fn for every distinct element with its count, in unspecified
// order. fn must not mutate the multiset.
func (m *Multiset) Each(fn func(s string, count int)) {
	for s, c := range m.counts {
		fn(s, c)
	}
}

// Clone returns a deep copy.
func (m *Multiset) Clone() *Multiset {
	c := &Multiset{counts: make(map[string]int, len(m.counts)), size: m.size}
	for s, n := range m.counts {
		c.counts[s] = n
	}
	return c
}

// Equal reports whether m and o contain exactly the same occurrences.
func (m *Multiset) Equal(o *Multiset) bool {
	if m.size != o.size || len(m.counts) != len(o.counts) {
		return false
	}
	for s, n := range m.counts {
		if o.counts[s] != n {
			return false
		}
	}
	return true
}

// Key returns a canonical encoding of the multiset: elements in sorted
// order, each with its multiplicity. Two multisets are Equal iff their Keys
// are identical.
func (m *Multiset) Key() string {
	return string(m.AppendKey(make([]byte, 0, m.KeyLen())))
}

// AppendKey appends the canonical encoding ("countxelem;" per element,
// elements sorted) to dst and returns the extended slice. Byte-identical to
// Key; exists so callers embedding the encoding in a larger buffer can skip
// the string materialization.
func (m *Multiset) AppendKey(dst []byte) []byte {
	// Sort the distinct elements in a stack scratch when they fit, so the
	// hot key-building path does not allocate for the element list.
	var scratch [24]string
	es := scratch[:0]
	if len(m.counts) > cap(scratch) {
		es = make([]string, 0, len(m.counts))
	}
	for s := range m.counts {
		es = append(es, s)
	}
	sort.Strings(es)
	for _, s := range es {
		dst = strconv.AppendInt(dst, int64(m.counts[s]), 10)
		dst = append(dst, 'x')
		dst = append(dst, s...)
		dst = append(dst, ';')
	}
	return dst
}

// KeyLen returns len(Key()) without building the encoding.
func (m *Multiset) KeyLen() int {
	n := 0
	for s, c := range m.counts {
		n += decimalLen(c) + 1 + len(s) + 1
	}
	return n
}

// decimalLen returns the number of decimal digits of non-negative n.
func decimalLen(n int) int {
	d := 1
	for n >= 10 {
		n /= 10
		d++
	}
	return d
}

// String implements fmt.Stringer for debugging output.
func (m *Multiset) String() string {
	if m.size == 0 {
		return "{}"
	}
	return "{" + m.Key() + "}"
}
