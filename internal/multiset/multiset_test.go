package multiset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddRemoveCount(t *testing.T) {
	m := New()
	if m.Len() != 0 || m.Distinct() != 0 {
		t.Fatalf("new multiset not empty: len=%d distinct=%d", m.Len(), m.Distinct())
	}
	m.Add("a")
	m.Add("a")
	m.Add("b")
	if m.Count("a") != 2 || m.Count("b") != 1 || m.Count("c") != 0 {
		t.Errorf("counts wrong: a=%d b=%d c=%d", m.Count("a"), m.Count("b"), m.Count("c"))
	}
	if m.Len() != 3 || m.Distinct() != 2 {
		t.Errorf("len=%d distinct=%d, want 3, 2", m.Len(), m.Distinct())
	}
	if !m.Remove("a") {
		t.Error("Remove(a) = false, want true")
	}
	if m.Count("a") != 1 {
		t.Errorf("Count(a) after remove = %d, want 1", m.Count("a"))
	}
	if m.Remove("missing") {
		t.Error("Remove(missing) = true, want false")
	}
	if !m.Remove("a") || m.Contains("a") {
		t.Error("second Remove(a) should empty it")
	}
	if m.Len() != 1 {
		t.Errorf("final Len = %d, want 1", m.Len())
	}
}

func TestAddN(t *testing.T) {
	m := New()
	m.AddN("x", 5)
	m.AddN("y", 0)
	if m.Count("x") != 5 || m.Len() != 5 {
		t.Errorf("AddN: count=%d len=%d, want 5, 5", m.Count("x"), m.Len())
	}
	if m.Contains("y") {
		t.Error("AddN with 0 should not insert")
	}
}

func TestAddNPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddN(-1) did not panic")
		}
	}()
	New().AddN("x", -1)
}

func TestElementsSorted(t *testing.T) {
	m := New()
	for _, s := range []string{"c", "a", "b", "a"} {
		m.Add(s)
	}
	got := m.Elements()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New()
	m.Add("a")
	c := m.Clone()
	c.Add("b")
	m.Remove("a")
	if m.Contains("a") || !c.Contains("a") || !c.Contains("b") || m.Contains("b") {
		t.Errorf("clone not independent: m=%v c=%v", m, c)
	}
}

func TestEqualAndKey(t *testing.T) {
	a, b := New(), New()
	a.Add("x")
	a.Add("y")
	a.Add("x")
	b.Add("y")
	b.Add("x")
	b.Add("x")
	if !a.Equal(b) {
		t.Error("order-insensitive Equal failed")
	}
	if a.Key() != b.Key() {
		t.Errorf("keys differ for equal multisets: %q vs %q", a.Key(), b.Key())
	}
	b.Add("x")
	if a.Equal(b) || a.Key() == b.Key() {
		t.Error("multisets with different multiplicities compare equal")
	}
}

func TestEachVisitsAll(t *testing.T) {
	m := New()
	m.AddN("a", 2)
	m.Add("b")
	seen := map[string]int{}
	m.Each(func(s string, c int) { seen[s] = c })
	if seen["a"] != 2 || seen["b"] != 1 || len(seen) != 2 {
		t.Errorf("Each visited %v", seen)
	}
}

func TestString(t *testing.T) {
	m := New()
	if m.String() != "{}" {
		t.Errorf("empty String = %q", m.String())
	}
	m.Add("a")
	if m.String() == "{}" {
		t.Error("nonempty multiset renders as empty")
	}
}

// Property: for any sequence of adds and removes, Len equals the sum of
// counts and Key is consistent with Equal.
func TestQuickAddRemoveInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		m := New()
		ref := map[string]int{}
		alphabet := []string{"a", "b", "c", "d"}
		for _, op := range ops {
			s := alphabet[int(op>>1)%len(alphabet)]
			if op&1 == 0 {
				m.Add(s)
				ref[s]++
			} else {
				ok := m.Remove(s)
				if (ref[s] > 0) != ok {
					return false
				}
				if ref[s] > 0 {
					ref[s]--
				}
			}
		}
		total := 0
		for s, n := range ref {
			if m.Count(s) != n {
				return false
			}
			total += n
		}
		return m.Len() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Key is a canonical form — shuffled insertion orders agree.
func TestQuickKeyCanonical(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(items []string) bool {
		a, b := New(), New()
		for _, s := range items {
			a.Add(s)
		}
		shuffled := append([]string(nil), items...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for _, s := range shuffled {
			b.Add(s)
		}
		return a.Key() == b.Key() && a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
