package adversary

import (
	"fmt"

	"github.com/flpsim/flp/internal/fifo"
	"github.com/flpsim/flp/internal/model"
)

// VerifyReport is the outcome of independently replaying a constructed run
// and checking the admissibility discipline of the Theorem 1 construction.
type VerifyReport struct {
	// Stages and Steps describe the prefix.
	Stages int
	Steps  int
	// DecidedCount is the number of decided processes in the final
	// configuration; a successful construction has zero.
	DecidedCount int
	// StepsPerProcess tallies steps; with k full queue rotations completed,
	// every process has taken at least k steps.
	StepsPerProcess map[model.PID]int
	// MinStepsPerProcess is the smallest tally.
	MinStepsPerProcess int
	// Rotations is the number of complete queue rotations (stages / N).
	Rotations int
}

// Verify replays r's schedule from the initial configuration and checks,
// independently of the construction, that:
//
//   - the stages service processes in rotating queue order,
//   - each stage's committed (final) event is by the serviced process and
//     delivers the process's earliest pending message at the start of the
//     stage (or is the null event if none was pending),
//   - the full schedule is applicable, and
//   - no process decides anywhere along the run.
//
// These are exactly the properties from which the paper concludes the
// limit run is admissible and non-deciding.
func Verify(pr model.Protocol, r *Result) (VerifyReport, error) {
	rep := VerifyReport{StepsPerProcess: make(map[model.PID]int)}
	cfg, err := model.Initial(pr, r.Inputs)
	if err != nil {
		return rep, err
	}
	tracker := fifo.New()
	queue := append([]model.PID(nil), r.InitialOrder...)

	for i, st := range r.Stages {
		if len(st.Sigma) == 0 {
			return rep, fmt.Errorf("adversary: stage %d has empty schedule", i)
		}
		head := queue[0]
		if st.Process != head {
			return rep, fmt.Errorf("adversary: stage %d serviced p%d, queue head is p%d", i, st.Process, head)
		}
		// The committed event must be the head's earliest pending message
		// at the start of the stage, or null if none.
		var expected model.Event
		if m, ok := tracker.Oldest(head); ok {
			expected = model.Deliver(m)
		} else {
			expected = model.NullEvent(head)
		}
		if !st.Committed.Same(expected) {
			return rep, fmt.Errorf("adversary: stage %d committed %s, expected %s", i, st.Committed, expected)
		}
		last := st.Sigma[len(st.Sigma)-1]
		if !last.Same(st.Committed) {
			return rep, fmt.Errorf("adversary: stage %d does not end with its committed event", i)
		}
		for j, e := range st.Sigma[:len(st.Sigma)-1] {
			if e.Same(st.Committed) {
				return rep, fmt.Errorf("adversary: stage %d applies committed event early (position %d)", i, j)
			}
		}
		for _, e := range st.Sigma {
			nc, sends, err := model.ApplyTraced(pr, cfg, e)
			if err != nil {
				return rep, fmt.Errorf("adversary: stage %d replay: %w", i, err)
			}
			if err := tracker.Advance(e, sends); err != nil {
				return rep, fmt.Errorf("adversary: stage %d replay: %w", i, err)
			}
			cfg = nc
			rep.Steps++
			rep.StepsPerProcess[e.P]++
			if cfg.DecidedCount() > 0 {
				return rep, fmt.Errorf("adversary: a process decided during stage %d; the run is deciding", i)
			}
		}
		queue = append(queue[1:], head)
		rep.Stages++
	}

	if !cfg.Equal(r.Final) {
		return rep, fmt.Errorf("adversary: replay diverged from recorded final configuration")
	}
	rep.DecidedCount = cfg.DecidedCount()
	rep.Rotations = rep.Stages / pr.N()
	rep.MinStepsPerProcess = -1
	for p := 0; p < pr.N(); p++ {
		s := rep.StepsPerProcess[model.PID(p)]
		if rep.MinStepsPerProcess < 0 || s < rep.MinStepsPerProcess {
			rep.MinStepsPerProcess = s
		}
	}
	return rep, nil
}
