// Package adversary implements the constructive heart of Theorem 1: the
// staged scheduler from the proof of the main FLP result, which drives any
// consensus protocol through an admissible run in which no process ever
// decides.
//
// The construction follows the paper exactly. A queue of processes is
// maintained, and message delivery is ordered earliest-sent-first. Each
// stage starts in a bivalent configuration C, takes p — the head of the
// queue — and the earliest message m pending for p (or ∅ if none), and sets
// e = (p, m). Lemma 3 guarantees a bivalent configuration is reachable from
// C by a schedule in which e is the last event applied; the stage runs such
// a schedule and moves p to the back of the queue. Every process therefore
// takes infinitely many steps and receives every message sent to it — the
// run is admissible — while every stage ends bivalent, so no decision is
// ever reached.
//
// On finite-state protocols the per-stage search is exact (Lemma 3 makes
// failure impossible while the protocol meets its hypotheses). On
// unbounded protocols such as Paxos, bivalence certificates come from the
// directed probes of package explore; a stage fails only if the budget is
// exhausted, which the result reports distinctly from a decision being
// forced.
package adversary

import (
	"errors"
	"fmt"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/fifo"
	"github.com/flpsim/flp/internal/model"
)

// Options configure the adversary.
type Options struct {
	// Stages is the number of stages (queue services) to run. Each stage
	// extends the non-deciding run; the paper's run is the limit of
	// infinitely many stages.
	Stages int
	// Search bounds the per-stage breadth-first search for the extension
	// schedule σ.
	Search explore.Options
	// Valency bounds each valency classification.
	Valency explore.Options
	// Probe, when non-nil, enables directed-run bivalence certification
	// (required for protocols with unbounded reachable sets).
	Probe *explore.ProbeOptions
	// Workers, when nonzero, sets the exploration worker count for both
	// the per-stage search and the valency classifications (unless those
	// Options name their own). The construction is deterministic for any
	// worker count: every stage commits the same event via the same
	// schedule σ.
	Workers int
	// Atlases, when non-nil, is a shared atlas build cache the adversary's
	// valency cache sources its TryWarm sweeps from: repeated adversary
	// runs over the same (protocol, bounds, root) — and any census or
	// valency query naming the same tuple — then cost one exploration
	// between them. The construction is unchanged; only the sweep is
	// amortized. This is how the serving layer shares one cache across
	// every request.
	Atlases *explore.AtlasCache
}

func (o Options) withDefaults() Options {
	if o.Stages <= 0 {
		o.Stages = 30
	}
	if o.Search.MaxConfigs <= 0 {
		o.Search.MaxConfigs = 5000
	}
	if o.Valency.MaxConfigs <= 0 {
		o.Valency.MaxConfigs = 20000
	}
	if o.Workers != 0 {
		if o.Search.Workers == 0 {
			o.Search.Workers = o.Workers
		}
		if o.Valency.Workers == 0 {
			o.Valency.Workers = o.Workers
		}
	}
	return o
}

// Stage records one completed stage of the construction.
type Stage struct {
	// Process is the queue head serviced by this stage.
	Process model.PID
	// Committed is the event e = (p, m) applied last in the stage.
	Committed model.Event
	// Sigma is the stage's full schedule (the extension σ followed by e).
	Sigma model.Schedule
	// Examined is how many frontier configurations were inspected before a
	// bivalent extension was certified.
	Examined int
}

// Result is a constructed non-deciding admissible run prefix.
type Result struct {
	Protocol string
	Inputs   model.Inputs
	Stages   []Stage
	// Schedule is the concatenation of all stage schedules.
	Schedule model.Schedule
	// Final is the configuration after the last stage; it is bivalent.
	Final *model.Config
	// InitialOrder is the process queue order at the start.
	InitialOrder []model.PID
}

// Steps returns the total number of events in the run prefix.
func (r *Result) Steps() int { return len(r.Schedule) }

// DecidedCount returns how many processes have decided in the final
// configuration — zero for a successful construction.
func (r *Result) DecidedCount() int { return r.Final.DecidedCount() }

// StepsPerProcess tallies events by process, witnessing that every process
// keeps taking steps (no process looks faulty).
func (r *Result) StepsPerProcess() map[model.PID]int {
	m := make(map[model.PID]int)
	for _, e := range r.Schedule {
		m[e.P]++
	}
	return m
}

// ErrNoBivalentInitial is returned when no initial configuration of the
// protocol could be certified bivalent — the protocol is outside the
// theorem's hypotheses (it is not a fault-tolerant consensus attempt in the
// paper's sense), so the adversary has nothing to do.
var ErrNoBivalentInitial = errors.New("adversary: no bivalent initial configuration certified")

// StageError reports a stage that could not certify a bivalent extension
// within its budgets.
type StageError struct {
	Stage   int
	Process model.PID
	Event   model.Event
}

func (e *StageError) Error() string {
	return fmt.Sprintf("adversary: stage %d: no bivalent extension certified for event %s within budget", e.Stage, e.Event)
}

// Adversary drives the construction for one protocol.
type Adversary struct {
	pr    model.Protocol
	opt   Options
	cache *explore.Cache
}

// New returns an adversary for pr.
func New(pr model.Protocol, opt Options) *Adversary {
	opt = opt.withDefaults()
	var cache *explore.Cache
	if opt.Probe != nil {
		cache = explore.NewSmartCache(pr, opt.Valency, *opt.Probe)
	} else {
		cache = explore.NewCache(pr, opt.Valency)
	}
	if opt.Atlases != nil {
		cache.ShareAtlasBuilds(opt.Atlases)
	}
	return &Adversary{pr: pr, opt: opt, cache: cache}
}

// RunFromInputs constructs the non-deciding run starting from the initial
// configuration with the given inputs, which must be certifiably bivalent.
func (a *Adversary) RunFromInputs(inputs model.Inputs) (*Result, error) {
	c, err := model.Initial(a.pr, inputs)
	if err != nil {
		return nil, err
	}
	if info := a.cache.Classify(c); info.Valency != explore.Bivalent {
		return nil, fmt.Errorf("%w: inputs %s classified %s", ErrNoBivalentInitial, inputs, info.Valency)
	}
	return a.run(c, inputs)
}

// Run locates a bivalent initial configuration (Lemma 2) and constructs
// the non-deciding run from it.
func (a *Adversary) Run() (*Result, error) {
	for _, in := range model.AllInputs(a.pr.N()) {
		c, err := model.Initial(a.pr, in)
		if err != nil {
			return nil, err
		}
		if a.cache.Classify(c).Valency == explore.Bivalent {
			return a.run(c, in)
		}
	}
	return nil, ErrNoBivalentInitial
}

// Extend continues a previously constructed run for additional stages —
// the paper's run is the limit of infinitely many stages, and Extend is
// the "keep going" operation that limit is built from. The queue order and
// FIFO bookkeeping are reconstructed by replaying the existing schedule,
// so the extension is exactly what an uninterrupted longer run would have
// produced. The result is extended in place and also returned.
func (a *Adversary) Extend(res *Result, stages int) (*Result, error) {
	cfg, err := model.Initial(a.pr, res.Inputs)
	if err != nil {
		return nil, err
	}
	tracker := fifo.New()
	for _, e := range res.Schedule {
		nc, sends, err := model.ApplyTraced(a.pr, cfg, e)
		if err != nil {
			return nil, fmt.Errorf("adversary: replaying prefix: %w", err)
		}
		if err := tracker.Advance(e, sends); err != nil {
			return nil, fmt.Errorf("adversary: replaying prefix: %w", err)
		}
		cfg = nc
	}
	if !cfg.Equal(res.Final) {
		return nil, fmt.Errorf("adversary: result prefix does not replay to its final configuration")
	}
	queue := append([]model.PID(nil), res.InitialOrder...)
	for range res.Stages {
		queue = append(queue[1:], queue[0])
	}
	return a.stages(res, cfg, tracker, queue, stages)
}

func (a *Adversary) run(c *model.Config, inputs model.Inputs) (*Result, error) {
	n := a.pr.N()
	queue := make([]model.PID, n)
	for i := range queue {
		queue[i] = model.PID(i)
	}
	res := &Result{
		Protocol:     a.pr.Name(),
		Inputs:       inputs,
		Final:        c,
		InitialOrder: append([]model.PID(nil), queue...),
	}
	return a.stages(res, c, fifo.NewFromConfig(c), queue, a.opt.Stages)
}

// stages appends the given number of stages to res, starting from the
// supplied configuration, tracker, and queue state.
func (a *Adversary) stages(res *Result, cfg *model.Config, tracker *fifo.Tracker, queue []model.PID, count int) (*Result, error) {
	// Every configuration any stage classifies lies in reach(cfg), and the
	// reachable set only shrinks as the run advances — so one valency atlas
	// built here answers every classification of every stage from a single
	// O(V+E) sweep. Probe-configured adversaries target unbounded state
	// spaces where the sweep cannot complete; they skip the attempt rather
	// than pay a failed full-budget exploration (TryWarm would memoize the
	// failure, but the first sweep alone is the whole cost).
	if a.opt.Probe == nil {
		a.cache.TryWarm(cfg)
	}
	res.Final = cfg
	for stage := 0; stage < count; stage++ {
		p := queue[0]
		var e model.Event
		if m, ok := tracker.Oldest(p); ok {
			e = model.Deliver(m)
		} else {
			e = model.NullEvent(p)
		}

		st, cfg, err := a.stage(res.Final, e, tracker)
		if err != nil {
			var serr *StageError
			if errors.As(err, &serr) {
				serr.Stage = len(res.Stages) // absolute, so Extend reports correctly
				serr.Process = p
			}
			return res, err
		}
		st.Process = p
		res.Stages = append(res.Stages, st)
		res.Schedule = append(res.Schedule, st.Sigma...)
		res.Final = cfg
		queue = append(queue[1:], p)
	}
	return res, nil
}

// stage finds and applies a schedule σ·e from cur such that the result is
// bivalent, advancing the tracker alongside.
func (a *Adversary) stage(cur *model.Config, e model.Event, tracker *fifo.Tracker) (Stage, *model.Config, error) {
	examined := 0
	var sigma model.Schedule
	found := false
	explore.Explore(a.pr, cur, a.opt.Search, &e, func(E *model.Config, _ int, path func() model.Schedule) bool {
		examined++
		D := model.MustApply(a.pr, E, e)
		// For a partially correct protocol, bivalent implies undecided
		// (a configuration with a decision is univalent), so requiring
		// DecidedCount() == 0 changes nothing within the theorem's
		// hypotheses. For protocols that violate agreement, a
		// configuration can be "bivalent" because both values are already
		// decided — such protocols escape the impossibility by giving up
		// agreement, and the stage correctly fails on them.
		if D.DecidedCount() == 0 && a.cache.Classify(D).Valency == explore.Bivalent {
			sigma = append(path(), e)
			found = true
			return true
		}
		return false
	})
	if !found {
		return Stage{}, nil, &StageError{Event: e}
	}

	cfg := cur
	for _, ev := range sigma {
		nc, sends, err := model.ApplyTraced(a.pr, cfg, ev)
		if err != nil {
			return Stage{}, nil, fmt.Errorf("adversary: applying stage schedule: %w", err)
		}
		if err := tracker.Advance(ev, sends); err != nil {
			return Stage{}, nil, fmt.Errorf("adversary: tracker out of sync: %w", err)
		}
		cfg = nc
	}
	return Stage{Committed: e, Sigma: sigma, Examined: examined}, cfg, nil
}
