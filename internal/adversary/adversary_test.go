package adversary_test

import (
	"errors"
	"testing"

	"github.com/flpsim/flp/internal/adversary"
	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

func paxosOptions(stages int) adversary.Options {
	probe := explore.ProbeOptions{}
	return adversary.Options{
		Stages:  stages,
		Search:  explore.Options{MaxConfigs: 2000},
		Valency: explore.Options{MaxConfigs: 1500},
		Probe:   &probe,
	}
}

func TestAdversaryLivelocksPaxos(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	adv := adversary.New(pr, paxosOptions(9))
	res, err := adv.Run()
	if err != nil {
		t.Fatalf("adversary failed: %v", err)
	}
	if got := len(res.Stages); got != 9 {
		t.Fatalf("completed %d stages, want 9", got)
	}
	if res.DecidedCount() != 0 {
		t.Fatalf("%d processes decided; the run must be non-deciding", res.DecidedCount())
	}

	rep, err := adversary.Verify(pr, res)
	if err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	if rep.Rotations != 3 {
		t.Errorf("rotations = %d, want 3", rep.Rotations)
	}
	// Every process took at least one step per completed rotation: no
	// process looks faulty.
	if rep.MinStepsPerProcess < rep.Rotations {
		t.Errorf("min steps per process = %d < rotations %d", rep.MinStepsPerProcess, rep.Rotations)
	}
}

func TestAdversaryRunFromInputs(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	adv := adversary.New(pr, paxosOptions(6))
	res, err := adv.RunFromInputs(model.Inputs{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inputs.String() != "001" {
		t.Errorf("inputs = %s", res.Inputs)
	}
	if _, err := adversary.Verify(pr, res); err != nil {
		t.Error(err)
	}
}

func TestAdversaryRejectsUnivalentInputs(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	adv := adversary.New(pr, paxosOptions(3))
	_, err := adv.RunFromInputs(model.Inputs{0, 0, 0})
	if !errors.Is(err, adversary.ErrNoBivalentInitial) {
		t.Errorf("unanimous inputs: err = %v, want ErrNoBivalentInitial", err)
	}
}

func TestAdversaryRefusesNonFaultTolerantProtocols(t *testing.T) {
	// WaitAll and 2PC escape the theorem by not being fault tolerant:
	// every initial configuration is univalent, so the adversary has no
	// bivalent starting point.
	for _, pr := range []model.Protocol{
		protocols.NewWaitAll(3),
		protocols.NewTwoPhaseCommit(3),
	} {
		adv := adversary.New(pr, adversary.Options{Stages: 3})
		if _, err := adv.Run(); !errors.Is(err, adversary.ErrNoBivalentInitial) {
			t.Errorf("%s: err = %v, want ErrNoBivalentInitial", pr.Name(), err)
		}
	}
}

func TestAdversaryFailsOnAgreementViolators(t *testing.T) {
	// NaiveMajority escapes by violating agreement: every admissible run
	// decides (inconsistently at times), so no stage can keep the run
	// decision-free once votes start flowing. The adversary must report a
	// stage failure rather than construct a bogus non-deciding run.
	pr := protocols.NewNaiveMajority(3)
	adv := adversary.New(pr, adversary.Options{Stages: 10})
	res, err := adv.Run()
	var serr *adversary.StageError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %v, want StageError", err)
	}
	if res == nil || res.DecidedCount() != 0 {
		t.Error("partial result should still be decision-free")
	}
}

func TestAdversaryLongRunOnPaxos(t *testing.T) {
	if testing.Short() {
		t.Skip("long adversarial run")
	}
	pr := protocols.NewPaxosSynod(3)
	adv := adversary.New(pr, paxosOptions(15))
	res, err := adv.Run()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := adversary.Verify(pr, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DecidedCount != 0 || rep.Rotations != 5 {
		t.Errorf("decided=%d rotations=%d, want 0 and 5", rep.DecidedCount, rep.Rotations)
	}
}

func TestAdversaryStallsFixedTapeBenOr(t *testing.T) {
	// Ben-Or terminates with probability 1 over coin tapes — but each
	// fixed tape is a deterministic automaton, and FLP applies to it: the
	// adversary finds and sustains a non-deciding admissible run.
	pr := protocols.NewBenOrDeterministic(3, 0)
	probe := explore.ProbeOptions{}
	adv := adversary.New(pr, adversary.Options{
		Stages:  4,
		Probe:   &probe,
		Search:  explore.Options{MaxConfigs: 1500},
		Valency: explore.Options{MaxConfigs: 1000},
	})
	res, err := adv.RunFromInputs(model.Inputs{0, 0, 1})
	if err != nil {
		t.Fatalf("adversary could not stall fixed-tape Ben-Or: %v", err)
	}
	rep, err := adversary.Verify(pr, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DecidedCount != 0 || rep.Stages != 4 {
		t.Errorf("decided=%d stages=%d, want 0 and 4", rep.DecidedCount, rep.Stages)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	adv := adversary.New(pr, paxosOptions(4))
	res, err := adv.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Wrong stage order.
	tampered := *res
	tampered.Stages = append([]adversary.Stage(nil), res.Stages...)
	tampered.Stages[0], tampered.Stages[1] = tampered.Stages[1], tampered.Stages[0]
	if _, err := adversary.Verify(pr, &tampered); err == nil {
		t.Error("verification accepted swapped stages")
	}

	// Dropped stage.
	tampered2 := *res
	tampered2.Stages = res.Stages[1:]
	if _, err := adversary.Verify(pr, &tampered2); err == nil {
		t.Error("verification accepted a dropped stage")
	}

	// Wrong final configuration.
	tampered3 := *res
	other := model.MustInitial(pr, res.Inputs)
	tampered3.Final = other
	if _, err := adversary.Verify(pr, &tampered3); err == nil {
		t.Error("verification accepted a wrong final configuration")
	}
}

func TestStageErrorMessage(t *testing.T) {
	err := &adversary.StageError{Stage: 3, Process: 1, Event: model.NullEvent(1)}
	if err.Error() == "" {
		t.Error("empty error message")
	}
}

func TestExtendContinuesTheRun(t *testing.T) {
	// The paper's run is the limit of infinitely many stages; Extend is
	// the "one more rotation" operation. An initial 3-stage run extended
	// by 3 must verify exactly like a 6-stage run: same discipline, still
	// decision-free.
	pr := protocols.NewPaxosSynod(3)
	adv := adversary.New(pr, paxosOptions(3))
	res, err := adv.RunFromInputs(model.Inputs{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 3 {
		t.Fatalf("initial run has %d stages", len(res.Stages))
	}
	if _, err := adv.Extend(res, 3); err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 6 {
		t.Fatalf("extended run has %d stages, want 6", len(res.Stages))
	}
	rep, err := adversary.Verify(pr, res)
	if err != nil {
		t.Fatalf("extended run fails verification: %v", err)
	}
	if rep.DecidedCount != 0 || rep.Rotations != 2 {
		t.Errorf("decided=%d rotations=%d, want 0 and 2", rep.DecidedCount, rep.Rotations)
	}
	// And again — the limit is built one rotation at a time.
	if _, err := adv.Extend(res, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := adversary.Verify(pr, res); err != nil {
		t.Fatal(err)
	}
}

func TestExtendRejectsTamperedPrefix(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	adv := adversary.New(pr, paxosOptions(2))
	res, err := adv.RunFromInputs(model.Inputs{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res.Final = model.MustInitial(pr, res.Inputs) // corrupt
	if _, err := adv.Extend(res, 1); err == nil {
		t.Error("Extend accepted a result whose prefix does not replay to its final configuration")
	}
}

func TestResultAccessors(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	adv := adversary.New(pr, paxosOptions(3))
	res, err := adv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps() != len(res.Schedule) {
		t.Errorf("Steps = %d, schedule has %d events", res.Steps(), len(res.Schedule))
	}
	per := res.StepsPerProcess()
	total := 0
	for _, s := range per {
		total += s
	}
	if total != res.Steps() {
		t.Errorf("per-process steps sum %d != %d", total, res.Steps())
	}
}

// TestAdversaryDeterministicAcrossWorkers pins the parallel-engine
// contract at the adversary layer: the staged construction must commit the
// same events via the same schedules — and reach the same final
// configuration — for any exploration worker count.
func TestAdversaryDeterministicAcrossWorkers(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	run := func(workers int) *adversary.Result {
		opt := paxosOptions(6)
		opt.Workers = workers
		adv := adversary.New(pr, opt)
		res, err := adv.RunFromInputs(model.Inputs{0, 1, 1})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	seq := run(1)
	for _, w := range []int{4, 8} {
		par := run(w)
		if seq.Schedule.String() != par.Schedule.String() {
			t.Errorf("workers=%d: schedule diverged\n sequential: %s\n parallel:   %s",
				w, seq.Schedule, par.Schedule)
		}
		if !seq.Final.Equal(par.Final) {
			t.Errorf("workers=%d: final configuration diverged", w)
		}
		if len(seq.Stages) != len(par.Stages) {
			t.Errorf("workers=%d: stage count %d, sequential %d", w, len(par.Stages), len(seq.Stages))
		}
	}
}
