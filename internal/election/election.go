// Package election implements the Bully leader-election algorithm of
// Garcia-Molina ("Elections in a distributed computing system" — reference
// [13] of the paper, cited among the transaction-commit literature the
// impossibility speaks to). Elections are consensus in disguise — agreeing
// on a leader is agreeing on a value — so FLP applies: the Bully algorithm
// is only correct because it buys failure detection with timeouts, which
// the asynchronous model forbids. The package makes both halves
// executable: with timeouts the highest live process always wins; with the
// timeout oracle disabled, an election over a crashed coordinator hangs
// exactly the way Theorem 1 says something must.
//
// Timing model: discrete ticks. A message sent at tick t arrives at tick
// t + Latency. A process that sends ELECTION to its superiors concludes
// they are dead if no ANSWER arrives within Timeout ticks — sound iff
// Timeout ≥ 2·Latency, which is precisely the synchrony assumption.
package election

import (
	"fmt"
	"sort"
)

// Options configure one election run.
type Options struct {
	// N is the number of processes, ids 0..N-1 (higher id = higher
	// priority).
	N int
	// Crashed marks processes that are down for the whole run.
	Crashed map[int]bool
	// Latency is the per-message delivery delay in ticks (≥ 1).
	Latency int
	// Timeout is how long a process waits for ANSWER/COORDINATOR before
	// concluding the silence means death. Zero disables timeouts — the
	// asynchronous case.
	Timeout int
	// Starter is the process that notices the leader is gone and starts
	// the election.
	Starter int
	// MaxTicks bounds the run. Default 10·N·(Latency+Timeout+1).
	MaxTicks int
}

func (o Options) validate() error {
	if o.N < 2 {
		return fmt.Errorf("election: need N ≥ 2, got %d", o.N)
	}
	if o.Latency < 1 {
		return fmt.Errorf("election: Latency must be ≥ 1, got %d", o.Latency)
	}
	if o.Starter < 0 || o.Starter >= o.N || o.Crashed[o.Starter] {
		return fmt.Errorf("election: starter %d invalid or crashed", o.Starter)
	}
	if o.Timeout < 0 {
		return fmt.Errorf("election: negative timeout")
	}
	return nil
}

// Result reports one election.
type Result struct {
	// Leader maps each live process to the coordinator it accepted
	// (absent if it never learned one).
	Leader map[int]int
	// Elected is the unique agreed leader, or -1.
	Elected int
	// Ticks is the number of ticks simulated.
	Ticks int
	// Hung reports that the election stalled: some live process waits
	// forever on a silence it cannot interpret.
	Hung bool
}

type msgKind uint8

const (
	mElection    msgKind = iota // "I contest: anyone above me alive?"
	mAnswer                     // "I am above you and alive; stand down"
	mCoordinator                // "I am the leader"
)

type message struct {
	from, to int
	kind     msgKind
	arrive   int
}

type proc struct {
	electing    bool
	waitingTill int // tick at which silence from superiors means death
	stoodDown   bool
	leader      int
}

// Run executes one Bully election.
func Run(opt Options) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if opt.MaxTicks <= 0 {
		opt.MaxTicks = 10 * opt.N * (opt.Latency + opt.Timeout + 1)
	}
	procs := make([]proc, opt.N)
	for i := range procs {
		procs[i].leader = -1
		procs[i].waitingTill = -1
	}
	var inflight []message
	res := &Result{Leader: map[int]int{}, Elected: -1}

	send := func(tick, from, to int, kind msgKind) {
		if opt.Crashed[to] {
			return
		}
		inflight = append(inflight, message{from: from, to: to, kind: kind, arrive: tick + opt.Latency})
	}
	startElection := func(tick, p int) {
		procs[p].electing = true
		procs[p].stoodDown = false
		superiors := 0
		for q := p + 1; q < opt.N; q++ {
			send(tick, p, q, mElection)
			superiors++
		}
		if superiors == 0 {
			// Highest id: crown immediately.
			procs[p].leader = p
			for q := 0; q < opt.N; q++ {
				if q != p {
					send(tick, p, q, mCoordinator)
				}
			}
			procs[p].electing = false
			return
		}
		if opt.Timeout > 0 {
			procs[p].waitingTill = tick + opt.Timeout
		}
	}

	startElection(0, opt.Starter)

	for tick := 1; tick <= opt.MaxTicks; tick++ {
		res.Ticks = tick

		// Deliver everything due this tick, deterministically ordered.
		var due, rest []message
		for _, m := range inflight {
			if m.arrive <= tick {
				due = append(due, m)
			} else {
				rest = append(rest, m)
			}
		}
		inflight = rest
		sort.Slice(due, func(i, j int) bool {
			if due[i].to != due[j].to {
				return due[i].to < due[j].to
			}
			return due[i].from < due[j].from
		})
		for _, m := range due {
			p := &procs[m.to]
			switch m.kind {
			case mElection:
				send(tick, m.to, m.from, mAnswer)
				if !p.electing {
					startElection(tick, m.to)
				}
			case mAnswer:
				// A superior is alive: stand down and await its verdict.
				p.stoodDown = true
				p.waitingTill = -1
				p.electing = false
			case mCoordinator:
				p.leader = m.from
				p.electing = false
				p.stoodDown = false
				p.waitingTill = -1
			}
		}

		// Timeout expiries: silence from every superior means they are
		// dead — claim the crown. Without timeouts this never fires, and
		// an election sent into dead superiors hangs forever.
		for p := 0; p < opt.N; p++ {
			if opt.Crashed[p] || procs[p].waitingTill < 0 || tick < procs[p].waitingTill {
				continue
			}
			procs[p].waitingTill = -1
			if procs[p].electing && !procs[p].stoodDown {
				procs[p].leader = p
				procs[p].electing = false
				for q := 0; q < opt.N; q++ {
					if q != p {
						send(tick, p, q, mCoordinator)
					}
				}
			}
		}

		if len(inflight) == 0 && quiescent(procs, opt) {
			break
		}
	}

	for p := 0; p < opt.N; p++ {
		if opt.Crashed[p] {
			continue
		}
		if procs[p].leader >= 0 {
			res.Leader[p] = procs[p].leader
		}
	}
	leaders := map[int]bool{}
	for _, l := range res.Leader {
		leaders[l] = true
	}
	if len(leaders) == 1 && len(res.Leader) == liveCount(opt) {
		for l := range leaders {
			res.Elected = l
		}
	}
	res.Hung = res.Elected < 0
	return res, nil
}

func quiescent(procs []proc, opt Options) bool {
	for p := 0; p < opt.N; p++ {
		if opt.Crashed[p] {
			continue
		}
		if procs[p].electing && procs[p].waitingTill < 0 && !procs[p].stoodDown {
			// electing with no timer and not stood down can only be the
			// highest-id case, resolved synchronously in startElection.
			continue
		}
		if procs[p].waitingTill >= 0 || procs[p].electing {
			return false
		}
	}
	return true
}

func liveCount(opt Options) int {
	n := 0
	for p := 0; p < opt.N; p++ {
		if !opt.Crashed[p] {
			n++
		}
	}
	return n
}
