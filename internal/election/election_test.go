package election_test

import (
	"testing"

	"github.com/flpsim/flp/internal/election"
)

func run(t *testing.T, opt election.Options) *election.Result {
	t.Helper()
	res, err := election.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHighestIdWins(t *testing.T) {
	for starter := 0; starter < 5; starter++ {
		res := run(t, election.Options{N: 5, Latency: 1, Timeout: 3, Starter: starter})
		if res.Elected != 4 {
			t.Errorf("starter %d: elected %d, want 4", starter, res.Elected)
		}
		if res.Hung {
			t.Errorf("starter %d: hung", starter)
		}
	}
}

func TestHighestLiveWinsPastCrashes(t *testing.T) {
	// The two highest ids are dead; the bully timeout lets p2 conclude
	// their silence means death and crown itself.
	res := run(t, election.Options{
		N: 5, Latency: 1, Timeout: 3, Starter: 0,
		Crashed: map[int]bool{3: true, 4: true},
	})
	if res.Elected != 2 {
		t.Errorf("elected %d, want 2 (highest live)", res.Elected)
	}
	for p, l := range res.Leader {
		if l != 2 {
			t.Errorf("p%d accepted leader %d", p, l)
		}
	}
}

func TestEveryCrashPatternElectsHighestLive(t *testing.T) {
	for mask := 0; mask < 1<<4; mask++ { // crash subsets of p1..p4, p0 stays
		crashed := map[int]bool{}
		highest := 0
		for b := 0; b < 4; b++ {
			if mask&(1<<b) != 0 {
				crashed[b+1] = true
			}
		}
		for p := 4; p >= 0; p-- {
			if !crashed[p] {
				highest = p
				break
			}
		}
		res := run(t, election.Options{N: 5, Latency: 2, Timeout: 5, Starter: 0, Crashed: crashed})
		if res.Elected != highest {
			t.Errorf("crashed %v: elected %d, want %d", crashed, res.Elected, highest)
		}
	}
}

func TestTimeoutTooShortIsUnsound(t *testing.T) {
	// Timeout < 2·Latency: a live superior's ANSWER arrives after the
	// inferior's timer fired. Both may claim the crown transiently — the
	// highest's COORDINATOR wins last-write in this implementation, but
	// the documented soundness condition is the point of the test: with a
	// generous timeout the anomaly is impossible by construction.
	sound := run(t, election.Options{N: 3, Latency: 3, Timeout: 7, Starter: 0})
	if sound.Elected != 2 || sound.Hung {
		t.Errorf("sound timeout: elected %d hung=%v", sound.Elected, sound.Hung)
	}
}

func TestNoTimeoutHangsOnDeadSuperior(t *testing.T) {
	// The asynchronous case: Timeout 0 disables the failure detector. An
	// election into dead superiors waits on a silence no process can
	// interpret — Garcia-Molina's algorithm needs exactly the assumption
	// the FLP model withholds.
	res := run(t, election.Options{
		N: 4, Latency: 1, Timeout: 0, Starter: 0,
		Crashed: map[int]bool{2: true, 3: true},
	})
	if !res.Hung {
		t.Fatalf("async election over dead superiors did not hang: %+v", res)
	}
	if res.Elected != -1 {
		t.Errorf("elected %d without any way to detect death", res.Elected)
	}
}

func TestNoTimeoutStillWorksWithLiveTop(t *testing.T) {
	// Without timeouts the algorithm still succeeds when the silence never
	// needs interpreting: the highest id is alive and answers everything.
	res := run(t, election.Options{N: 4, Latency: 1, Timeout: 0, Starter: 1})
	if res.Elected != 3 || res.Hung {
		t.Errorf("elected %d hung=%v, want 3", res.Elected, res.Hung)
	}
}

func TestValidation(t *testing.T) {
	bad := []election.Options{
		{N: 1, Latency: 1, Starter: 0},
		{N: 3, Latency: 0, Starter: 0},
		{N: 3, Latency: 1, Starter: 9},
		{N: 3, Latency: 1, Starter: 0, Crashed: map[int]bool{0: true}},
		{N: 3, Latency: 1, Starter: 0, Timeout: -1},
	}
	for i, opt := range bad {
		if _, err := election.Run(opt); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
