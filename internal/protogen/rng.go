package protogen

// rng is a splitmix64 pseudo-random stream. The generator's output must be
// identical on every platform and Go version forever — checked-in fixture
// names and the distributed engine's name-based protocol reconstruction
// both depend on Derive being a pure function of (seed, dials) — so the
// stream is pinned here rather than borrowed from math/rand.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). n must be positive. The modulo bias is
// irrelevant here: the stream seeds a protocol generator, not statistics.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// pct reports true with probability p/100.
func (r *rng) pct(p int) bool { return r.intn(100) < p }

// mix64 finalizes a combined key into a well-distributed 64-bit value,
// used for the "benor" template's coin tape (the same mixer as the
// stream, applied statelessly).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
