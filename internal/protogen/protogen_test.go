package protogen_test

import (
	"encoding/json"
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/modeltest"
	"github.com/flpsim/flp/internal/protogen"
)

func altInputs(n int) model.Inputs {
	in := make(model.Inputs, n)
	for p := range in {
		in[p] = model.Value(p & 1)
	}
	return in
}

// TestDeriveDeterministic pins the generator's core contract: the same
// (seed, dials) produce byte-identical specs and names, and nearby seeds
// produce different protocols.
func TestDeriveDeterministic(t *testing.T) {
	for _, tmpl := range []string{protogen.TemplateTable, protogen.TemplateBenOr} {
		d := protogen.DefaultDials(3)
		d.Template = tmpl
		for seed := uint64(1); seed < 20; seed++ {
			a := protogen.Derive(seed, d)
			b := protogen.Derive(seed, d)
			ja, _ := json.Marshal(a)
			jb, _ := json.Marshal(b)
			if string(ja) != string(jb) {
				t.Fatalf("%s seed %d: Derive is not deterministic:\n%s\n%s", tmpl, seed, ja, jb)
			}
			if a.Name() != b.Name() {
				t.Fatalf("%s seed %d: names differ", tmpl, seed)
			}
		}
		if protogen.Derive(1, d).Name() == protogen.Derive(2, d).Name() {
			t.Fatalf("%s: seeds 1 and 2 collide", tmpl)
		}
	}
}

// TestDeriveValid: every derived spec must pass its own validator — over a
// spread of seeds and dial corners, including degenerate dials that the
// normalizer must clamp.
func TestDeriveValid(t *testing.T) {
	dials := []protogen.Dials{
		protogen.DefaultDials(3),
		{Template: protogen.TemplateTable, N: 2, Phases: 1, Regs: 1, Alphabet: 1, Density: 100, MaxSends: 3},
		{Template: protogen.TemplateTable, N: 6, Phases: 5, Regs: 3, Alphabet: 4, Density: 0},
		{Template: protogen.TemplateBenOr, N: 2, MaxRound: 1},
		{Template: protogen.TemplateBenOr, N: 5, MaxRound: 4},
		{Template: "bogus", N: -7, Phases: 99, Regs: -1, Alphabet: 99, Density: 999, MaxSends: -5, DecShape: 42, MaxRound: 0},
	}
	for _, d := range dials {
		for seed := uint64(0); seed < 25; seed++ {
			sp := protogen.Derive(seed, d)
			if err := sp.Validate(); err != nil {
				t.Fatalf("Derive(%d, %+v) invalid: %v", seed, d, err)
			}
		}
	}
}

// TestNameRoundTrip: FromName(sp.Name()) must reconstruct the identical
// spec for both name forms — the distributed engine rebuilds protocols
// from nothing else.
func TestNameRoundTrip(t *testing.T) {
	d := protogen.DefaultDials(3)
	for seed := uint64(1); seed < 10; seed++ {
		sp := protogen.Derive(seed, d)

		// Derived form.
		back, err := protogen.FromName(sp.Name())
		if err != nil {
			t.Fatalf("seed %d: FromName(derived): %v", seed, err)
		}
		ja, _ := json.Marshal(sp)
		jb, _ := json.Marshal(back)
		if string(ja) != string(jb) {
			t.Fatalf("seed %d: derived name round-trip diverged:\n%s\n%s", seed, ja, jb)
		}

		// JSON form: clearing provenance switches the encoding.
		edited := sp
		edited.Dials = nil
		back2, err := protogen.FromName(edited.Name())
		if err != nil {
			t.Fatalf("seed %d: FromName(json): %v", seed, err)
		}
		ja2, _ := json.Marshal(edited)
		jb2, _ := json.Marshal(back2)
		if string(ja2) != string(jb2) {
			t.Fatalf("seed %d: json name round-trip diverged", seed)
		}
	}
	if _, err := protogen.FromName("gen:bogus"); err == nil {
		t.Fatal("FromName accepted a malformed name")
	}
	if _, err := protogen.FromName("paxos"); err == nil {
		t.Fatal("FromName accepted a non-generated name")
	}
}

// TestValidateRejects pins the validator against each invariant breach the
// shrinker and fixture loader count on it to catch.
func TestValidateRejects(t *testing.T) {
	base := protogen.Derive(7, protogen.DefaultDials(3))
	breach := func(mutate func(*protogen.Spec)) error {
		sp := base
		sp.Table = append([]protogen.Transition(nil), base.Table...)
		mutate(&sp)
		return sp.Validate()
	}
	cases := []struct {
		name   string
		mutate func(*protogen.Spec)
	}{
		{"version", func(sp *protogen.Spec) { sp.V = 99 }},
		{"n-too-small", func(sp *protogen.Spec) { sp.N = 1 }},
		{"table-size", func(sp *protogen.Spec) { sp.Table = sp.Table[:len(sp.Table)-1] }},
		{"next-backwards", func(sp *protogen.Spec) {
			sp.Table[len(sp.Table)-1] = protogen.Transition{Next: 0, Reg: 0}
			sp.Table[len(sp.Table)-1].Next = -1
		}},
		{"send-without-advance", func(sp *protogen.Spec) {
			sp.Table[0] = protogen.Transition{Next: 0, Reg: 0, Sends: []protogen.Send{{Target: 0, Sym: 0}}}
		}},
		{"send-target", func(sp *protogen.Spec) {
			sp.Table[0] = protogen.Transition{Next: 1, Reg: 0, Sends: []protogen.Send{{Target: 99, Sym: 0}}}
		}},
		{"send-symbol", func(sp *protogen.Spec) {
			sp.Table[0] = protogen.Transition{Next: 1, Reg: 0, Sends: []protogen.Send{{Target: 0, Sym: 99}}}
		}},
	}
	for _, tc := range cases {
		if err := breach(tc.mutate); err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", tc.name)
		}
	}

	bo := protogen.Derive(7, protogen.Dials{Template: protogen.TemplateBenOr, N: 3, MaxRound: 2})
	bo.DecideNeed = 9
	if err := bo.Validate(); err == nil {
		t.Error("benor threshold above N accepted")
	}
}

// TestModelConformance drives generated protocols through the shared
// model-contract checker: determinism, non-mutation, write-once outputs.
func TestModelConformance(t *testing.T) {
	for _, tmpl := range []string{protogen.TemplateTable, protogen.TemplateBenOr} {
		for _, n := range []int{2, 3, 4} {
			d := protogen.DefaultDials(n)
			d.Template = tmpl
			for seed := uint64(1); seed <= 5; seed++ {
				sp := protogen.Derive(seed, d)
				pr := protogen.MustNew(sp)
				for walkSeed := int64(0); walkSeed < 2; walkSeed++ {
					modeltest.CheckConformance(t, pr, altInputs(n), 80, walkSeed)
				}
			}
		}
	}
}

// TestFiniteStateSpace is the teeth behind validity invariant 3: every
// generated protocol's reachable configuration graph must be exhausted
// within a finite budget.
func TestFiniteStateSpace(t *testing.T) {
	// Small dials: finiteness holds at every size by construction (sends
	// require a phase advance; rounds are capped), but reachable graphs
	// grow combinatorially with the dials, so the exhaustiveness check
	// runs where exhaustion is cheap.
	for _, tmpl := range []string{protogen.TemplateTable, protogen.TemplateBenOr} {
		n := 3
		if tmpl == protogen.TemplateBenOr {
			n = 2 // every round is two all-to-all broadcasts; N=3 already reaches millions of configurations
		}
		d := protogen.Dials{Template: tmpl, N: n, Phases: 2, Regs: 2, Alphabet: 1,
			Density: 60, MaxSends: 1, MaxRound: 1}
		for seed := uint64(1); seed <= 8; seed++ {
			sp := protogen.Derive(seed, d)
			pr := protogen.MustNew(sp)
			c := model.MustInitial(pr, altInputs(sp.N))
			complete, visited := explore.Explore(pr, c, explore.Options{MaxConfigs: 500_000, Workers: 1}, nil, nil)
			if !complete {
				t.Fatalf("%s seed %d: state space not exhausted at %d configurations — finiteness invariant broken", tmpl, seed, visited)
			}
		}
	}
}

// TestBenOrCoinDeterministic: the coin tape is part of the protocol
// identity — same spec, same flips.
func TestBenOrCoinDeterministic(t *testing.T) {
	d := protogen.Dials{Template: protogen.TemplateBenOr, N: 3, MaxRound: 2}
	sp := protogen.Derive(11, d)
	a := protogen.MustNew(sp)
	b := protogen.MustNew(sp)
	in := altInputs(3)
	ca := model.MustInitial(a, in)
	cb := model.MustInitial(b, in)
	for i := 0; i < 40; i++ {
		evs := modeltest.EffectfulEvents(a, ca)
		if len(evs) == 0 {
			break
		}
		e := evs[i%len(evs)]
		ca = model.MustApply(a, ca, e)
		cb = model.MustApply(b, cb, e)
		if ca.Key() != cb.Key() {
			t.Fatalf("step %d: identical schedules diverged", i)
		}
	}
}
