package protogen

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"github.com/flpsim/flp/internal/model"
)

// NamePrefix marks protocol names owned by this package. The registry
// routes every name with this prefix through FromName.
const NamePrefix = "gen:"

// SpecVersion is the format version stamped into every Spec; bumping it
// invalidates old encoded names and fixtures loudly instead of silently
// reinterpreting them.
const SpecVersion = 1

// Template names.
const (
	TemplateTable = "table"
	TemplateBenOr = "benor"
)

// Decision is a transition's effect on the output register. Writes respect
// the write-once register: a decision action on a decided state is a no-op.
type Decision uint8

const (
	// DecideNone leaves the output register alone.
	DecideNone Decision = iota
	// DecideZero writes 0.
	DecideZero
	// DecideOne writes 1.
	DecideOne
	// DecideInput writes the process's own input bit.
	DecideInput
	// DecideReg writes the parity of the process's register.
	DecideReg
	decisionCount // sentinel for validation and generation
)

// Send targets. Non-negative targets name a fixed process; the negative
// values are resolved relative to the stepping process at send time.
const (
	// TargetAll broadcasts to every process, the sender included (the
	// paper's atomic broadcast capability).
	TargetAll = -1
	// TargetOthers broadcasts to every process but the sender.
	TargetOthers = -2
	// TargetSelf sends to the stepping process itself.
	TargetSelf = -3
	// TargetNext sends to process (p+1) mod N — ring traffic, a shape no
	// hand-written registry protocol exercises.
	TargetNext = -4
)

// Send is one message emission: a target (fixed pid or relative constant)
// and an alphabet symbol index.
type Send struct {
	Target int `json:"t"`
	Sym    int `json:"s"`
}

// Transition is one entry of a "table" spec: the effect of (phase,
// register, received symbol) on the stepping process. Sends are permitted
// only when Next strictly exceeds the entry's phase — the invariant that
// bounds total message production and keeps every generated protocol's
// reachable configuration graph finite.
type Transition struct {
	// Next is the successor phase; Validate requires phase ≤ Next ≤ Phases.
	Next int `json:"n"`
	// Reg is the successor register value.
	Reg int `json:"r"`
	// Decide is the output-register action.
	Decide Decision `json:"d,omitempty"`
	// Sends are the messages emitted by this transition.
	Sends []Send `json:"m,omitempty"`
}

// Dials are the generation parameters Derive draws a Spec from. They are
// recorded (normalized) in derived Specs so names can encode (seed, dials)
// compactly instead of the whole table.
type Dials struct {
	// Template selects the protocol family: "table" or "benor".
	Template string `json:"tmpl"`
	// N is the process count, clamped to [2, 6].
	N int `json:"n"`
	// Phases is the table template's active phase count, clamped to [1, 5].
	Phases int `json:"p,omitempty"`
	// Regs is the per-process register range, clamped to [1, 3].
	Regs int `json:"r,omitempty"`
	// Alphabet is the message symbol count, clamped to [1, 4].
	Alphabet int `json:"a,omitempty"`
	// Density is the percentage of table entries that are active (the
	// rest are inert), clamped to [0, 100].
	Density int `json:"dn,omitempty"`
	// MaxSends bounds the messages one transition may emit, clamped to
	// [0, 3].
	MaxSends int `json:"ms,omitempty"`
	// DecShape biases decision rules: 0 mixed, 1 input-driven, 2
	// constant, 3 register-driven. Clamped to [0, 3].
	DecShape int `json:"ds,omitempty"`
	// MaxRound caps the "benor" template's rounds, clamped to [1, 4].
	MaxRound int `json:"mr,omitempty"`
}

// DefaultDials are the dials flpcheck -genseed and the fuzz harness start
// from: a mid-density table protocol for n processes.
func DefaultDials(n int) Dials {
	return Dials{
		Template: TemplateTable,
		N:        n,
		Phases:   3,
		Regs:     2,
		Alphabet: 2,
		Density:  65,
		MaxSends: 2,
		DecShape: 0,
		MaxRound: 2,
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// normalized clamps every dial into its documented range. Derive applies
// it first, and records the normalized dials in the Spec, so the
// (seed, dials) → Spec map is total and name round-trips are exact.
func (d Dials) normalized() Dials {
	if d.Template != TemplateBenOr {
		d.Template = TemplateTable
	}
	d.N = clamp(d.N, 2, 6)
	d.Phases = clamp(d.Phases, 1, 5)
	d.Regs = clamp(d.Regs, 1, 3)
	d.Alphabet = clamp(d.Alphabet, 1, 4)
	d.Density = clamp(d.Density, 0, 100)
	d.MaxSends = clamp(d.MaxSends, 0, 3)
	d.DecShape = clamp(d.DecShape, 0, 3)
	d.MaxRound = clamp(d.MaxRound, 1, 4)
	return d
}

// Spec is a fully explicit generated protocol: everything Step needs, in
// serializable form. A Spec produced by Derive additionally records its
// (Seed, Dials) provenance, which Name exploits for a compact encoding;
// editing a Spec by hand or through the shrinker clears the provenance
// (the edited table no longer follows from the seed).
type Spec struct {
	// V is the format version; Validate rejects anything but SpecVersion.
	V int `json:"v"`
	// Template is "table" or "benor".
	Template string `json:"tmpl"`
	// N is the process count.
	N int `json:"n"`
	// Seed is the generation seed. Meaningful only when Dials is non-nil.
	Seed uint64 `json:"seed,omitempty"`
	// Dials, when non-nil, asserts this Spec is exactly
	// Derive(Seed, *Dials). Shrunk or hand-built specs leave it nil.
	Dials *Dials `json:"dials,omitempty"`

	// Table template fields.
	Phases   int          `json:"phases,omitempty"`
	Regs     int          `json:"regs,omitempty"`
	Alphabet int          `json:"alphabet,omitempty"`
	Table    []Transition `json:"table,omitempty"`

	// BenOr template fields: round cap and the three thresholds (how many
	// round-r reports to await; how many matching reports propose a value;
	// how many matching proposals decide it). Classic Ben-Or is
	// WaitNeed = N-f, ProposeNeed = ⌊N/2⌋+1, DecideNeed = f+1; the
	// generator draws them freely from [1, N], so many seeds violate
	// agreement or block — deliberately, the engines must agree on those
	// protocols too.
	MaxRound    int `json:"maxRound,omitempty"`
	WaitNeed    int `json:"waitNeed,omitempty"`
	ProposeNeed int `json:"proposeNeed,omitempty"`
	DecideNeed  int `json:"decideNeed,omitempty"`
}

// tableIndex locates the transition for (phase, reg, sym), where sym 0 is
// the null delivery and sym k+1 is alphabet symbol k.
func (sp Spec) tableIndex(phase, reg, sym int) int {
	return (phase*sp.Regs+reg)*(sp.Alphabet+1) + sym
}

// Validate checks every invariant the protocol implementations and the
// conformance harness rely on; see the package comment for the list.
func (sp Spec) Validate() error {
	if sp.V != SpecVersion {
		return fmt.Errorf("protogen: spec version %d, want %d", sp.V, SpecVersion)
	}
	if sp.N < 2 || sp.N > 16 {
		return fmt.Errorf("protogen: N=%d out of range [2, 16]", sp.N)
	}
	switch sp.Template {
	case TemplateTable:
		return sp.validateTable()
	case TemplateBenOr:
		return sp.validateBenOr()
	default:
		return fmt.Errorf("protogen: unknown template %q", sp.Template)
	}
}

func (sp Spec) validateTable() error {
	if sp.Phases < 1 || sp.Phases > 8 {
		return fmt.Errorf("protogen: Phases=%d out of range [1, 8]", sp.Phases)
	}
	if sp.Regs < 1 || sp.Regs > 8 {
		return fmt.Errorf("protogen: Regs=%d out of range [1, 8]", sp.Regs)
	}
	if sp.Alphabet < 1 || sp.Alphabet > 8 {
		return fmt.Errorf("protogen: Alphabet=%d out of range [1, 8]", sp.Alphabet)
	}
	want := sp.Phases * sp.Regs * (sp.Alphabet + 1)
	if len(sp.Table) != want {
		return fmt.Errorf("protogen: table has %d entries, want Phases·Regs·(Alphabet+1) = %d", len(sp.Table), want)
	}
	for h := 0; h < sp.Phases; h++ {
		for r := 0; r < sp.Regs; r++ {
			for s := 0; s <= sp.Alphabet; s++ {
				tr := sp.Table[sp.tableIndex(h, r, s)]
				at := fmt.Sprintf("entry (phase %d, reg %d, sym %d)", h, r, s)
				if tr.Next < h || tr.Next > sp.Phases {
					return fmt.Errorf("protogen: %s: Next=%d out of range [%d, %d]", at, tr.Next, h, sp.Phases)
				}
				if tr.Reg < 0 || tr.Reg >= sp.Regs {
					return fmt.Errorf("protogen: %s: Reg=%d out of range [0, %d)", at, tr.Reg, sp.Regs)
				}
				if tr.Decide >= decisionCount {
					return fmt.Errorf("protogen: %s: unknown decision %d", at, tr.Decide)
				}
				if len(tr.Sends) > 0 && tr.Next <= h {
					return fmt.Errorf("protogen: %s: sends without a phase advance would unbound the message buffer", at)
				}
				for _, sd := range tr.Sends {
					if sd.Sym < 0 || sd.Sym >= sp.Alphabet {
						return fmt.Errorf("protogen: %s: send symbol %d out of range [0, %d)", at, sd.Sym, sp.Alphabet)
					}
					if sd.Target < TargetNext || sd.Target >= sp.N {
						return fmt.Errorf("protogen: %s: send target %d invalid for N=%d", at, sd.Target, sp.N)
					}
				}
			}
		}
	}
	return nil
}

func (sp Spec) validateBenOr() error {
	if sp.MaxRound < 1 || sp.MaxRound > 8 {
		return fmt.Errorf("protogen: MaxRound=%d out of range [1, 8]", sp.MaxRound)
	}
	for _, th := range []struct {
		name string
		v    int
	}{{"WaitNeed", sp.WaitNeed}, {"ProposeNeed", sp.ProposeNeed}, {"DecideNeed", sp.DecideNeed}} {
		if th.v < 1 || th.v > sp.N {
			return fmt.Errorf("protogen: %s=%d out of range [1, %d]", th.name, th.v, sp.N)
		}
	}
	return nil
}

// New realizes the spec as a model.Protocol, validating it first.
func New(sp Spec) (model.Protocol, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	name := sp.Name()
	switch sp.Template {
	case TemplateBenOr:
		return &benorProto{sp: sp, name: name}, nil
	default:
		return &tableProto{sp: sp, name: name}, nil
	}
}

// MustNew is New for known-valid specs (tests, Derive output).
func MustNew(sp Spec) model.Protocol {
	pr, err := New(sp)
	if err != nil {
		panic(err)
	}
	return pr
}

// Name encodes the whole spec into a protocol name the registry can
// resolve: "gen:d1:<seed>:<dials>" for derived specs (FromName re-derives
// the table), "gen:j1:<base64url JSON>" for arbitrary ones. Both forms
// round-trip exactly through FromName — the distributed engine's workers
// rebuild protocols from nothing but this string.
func (sp Spec) Name() string {
	if sp.Dials != nil {
		return fmt.Sprintf("%sd1:%d:%s", NamePrefix, sp.Seed, encodeDials(*sp.Dials))
	}
	raw, err := json.Marshal(&sp)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on one.
		panic(fmt.Sprintf("protogen: marshal spec: %v", err))
	}
	return NamePrefix + "j1:" + base64.RawURLEncoding.EncodeToString(raw)
}

// encodeDials renders dials as a compact, order-fixed field list.
func encodeDials(d Dials) string {
	return fmt.Sprintf("t%s.n%d.p%d.r%d.a%d.dn%d.ms%d.ds%d.mr%d",
		d.Template, d.N, d.Phases, d.Regs, d.Alphabet, d.Density, d.MaxSends, d.DecShape, d.MaxRound)
}

func decodeDials(s string) (Dials, error) {
	var d Dials
	fields := strings.Split(s, ".")
	if len(fields) != 9 {
		return d, fmt.Errorf("protogen: dial encoding has %d fields, want 9", len(fields))
	}
	var err error
	get := func(f, prefix string) int {
		if err != nil {
			return 0
		}
		v, ok := strings.CutPrefix(f, prefix)
		if !ok {
			err = fmt.Errorf("protogen: dial field %q missing prefix %q", f, prefix)
			return 0
		}
		n, perr := strconv.Atoi(v)
		if perr != nil {
			err = fmt.Errorf("protogen: dial field %q: %v", f, perr)
		}
		return n
	}
	tmpl, ok := strings.CutPrefix(fields[0], "t")
	if !ok {
		return d, fmt.Errorf("protogen: dial field %q missing prefix \"t\"", fields[0])
	}
	d.Template = tmpl
	d.N = get(fields[1], "n")
	d.Phases = get(fields[2], "p")
	d.Regs = get(fields[3], "r")
	d.Alphabet = get(fields[4], "a")
	d.Density = get(fields[5], "dn")
	d.MaxSends = get(fields[6], "ms")
	d.DecShape = get(fields[7], "ds")
	d.MaxRound = get(fields[8], "mr")
	return d, err
}

// FromName inverts Spec.Name. It validates the decoded spec, so a
// resolved name is always safe to instantiate.
func FromName(name string) (Spec, error) {
	rest, ok := strings.CutPrefix(name, NamePrefix)
	if !ok {
		return Spec{}, fmt.Errorf("protogen: name %q lacks prefix %q", name, NamePrefix)
	}
	switch {
	case strings.HasPrefix(rest, "d1:"):
		parts := strings.SplitN(rest[len("d1:"):], ":", 2)
		if len(parts) != 2 {
			return Spec{}, fmt.Errorf("protogen: malformed derived name %q", name)
		}
		seed, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("protogen: seed in %q: %v", name, err)
		}
		dials, err := decodeDials(parts[1])
		if err != nil {
			return Spec{}, err
		}
		sp := Derive(seed, dials)
		return sp, nil
	case strings.HasPrefix(rest, "j1:"):
		raw, err := base64.RawURLEncoding.DecodeString(rest[len("j1:"):])
		if err != nil {
			return Spec{}, fmt.Errorf("protogen: base64 in %q: %v", name, err)
		}
		var sp Spec
		if err := json.Unmarshal(raw, &sp); err != nil {
			return Spec{}, fmt.Errorf("protogen: spec JSON in name: %v", err)
		}
		if err := sp.Validate(); err != nil {
			return Spec{}, err
		}
		return sp, nil
	default:
		return Spec{}, fmt.Errorf("protogen: unknown name form %q", name)
	}
}

// IsGenerated reports whether a protocol name belongs to this package.
func IsGenerated(name string) bool { return strings.HasPrefix(name, NamePrefix) }
