package protogen

import (
	"strconv"
	"strings"

	"github.com/flpsim/flp/internal/enc"
	"github.com/flpsim/flp/internal/model"
)

// tableProto realizes a "table" Spec: every process runs the same finite
// transition table over (phase, register, received symbol), with phases
// capped at Spec.Phases. A process at the terminal phase is halted: it
// consumes deliveries silently and its null steps are no-ops, which the
// engines skip.
type tableProto struct {
	sp   Spec
	name string
}

type tableState struct {
	me    model.PID
	input model.Value
	phase int
	reg   int
	out   model.Output
}

func (s *tableState) Key() string {
	var b enc.Builder
	b.Int(int(s.me)).Uint8(uint8(s.input)).Int(s.phase).Int(s.reg).Uint8(uint8(s.out))
	return b.String()
}

func (s *tableState) Output() model.Output { return s.out }

// Name implements model.Protocol; the name encodes the entire spec (see
// Spec.Name), which is what lets remote workers reconstruct the protocol.
func (g *tableProto) Name() string { return g.name }

// N implements model.Protocol.
func (g *tableProto) N() int { return g.sp.N }

// Init implements model.Protocol.
func (g *tableProto) Init(p model.PID, input model.Value) model.State {
	return &tableState{me: p, input: input}
}

// symBody renders alphabet symbol k as a message body.
func symBody(k int) string { return "g" + strconv.Itoa(k) }

// symIndex maps a message body to its table symbol index: 0 for the null
// delivery, k+1 for alphabet symbol k. Foreign bodies (impossible in pure
// generated runs) fold to the null column rather than crash.
func (g *tableProto) symIndex(m *model.Message) int {
	if m == nil {
		return 0
	}
	rest, ok := strings.CutPrefix(m.Body, "g")
	if !ok {
		return 0
	}
	k, err := strconv.Atoi(rest)
	if err != nil || k < 0 || k >= g.sp.Alphabet {
		return 0
	}
	return k + 1
}

// Step implements model.Protocol: one table lookup, applied to an
// immutable copy of the state.
func (g *tableProto) Step(p model.PID, s model.State, m *model.Message) (model.State, []model.Message) {
	st := s.(*tableState)
	if st.phase >= g.sp.Phases {
		return st, nil // halted; a delivery is consumed silently
	}
	tr := g.sp.Table[g.sp.tableIndex(st.phase, st.reg, g.symIndex(m))]
	ns := *st
	ns.phase = tr.Next
	ns.reg = tr.Reg
	if !ns.out.Decided() {
		switch tr.Decide {
		case DecideZero:
			ns.out = model.Decided0
		case DecideOne:
			ns.out = model.Decided1
		case DecideInput:
			ns.out = model.OutputOf(st.input)
		case DecideReg:
			ns.out = model.OutputOf(model.Value(tr.Reg & 1))
		}
	}
	var sends []model.Message
	for _, sd := range tr.Sends {
		body := symBody(sd.Sym)
		switch sd.Target {
		case TargetAll:
			sends = append(sends, model.Broadcast(p, g.sp.N, body)...)
		case TargetOthers:
			sends = append(sends, model.BroadcastOthers(p, g.sp.N, body)...)
		case TargetSelf:
			sends = append(sends, model.Message{To: p, From: p, Body: body})
		case TargetNext:
			sends = append(sends, model.Message{To: model.PID((int(p) + 1) % g.sp.N), From: p, Body: body})
		default:
			sends = append(sends, model.Message{To: model.PID(sd.Target), From: p, Body: body})
		}
	}
	return &ns, sends
}
