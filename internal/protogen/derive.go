package protogen

// Derive maps (seed, dials) to a Spec, deterministically: the same
// arguments produce the same Spec on every platform, Go version, and run.
// Dials are normalized (clamped into range) first and the normalized form
// is recorded in the Spec, so Name/FromName round-trips re-derive the
// identical table. The result always passes Validate.
func Derive(seed uint64, d Dials) Spec {
	d = d.normalized()
	r := newRNG(seed)
	sp := Spec{
		V:        SpecVersion,
		Template: d.Template,
		N:        d.N,
		Seed:     seed,
		Dials:    &d,
	}
	switch d.Template {
	case TemplateBenOr:
		deriveBenOr(&sp, d, r)
	default:
		deriveTable(&sp, d, r)
	}
	return sp
}

// deriveBenOr draws the three thresholds from [1, N]. Classic Ben-Or
// (WaitNeed = N-f, ProposeNeed = ⌊N/2⌋+1, DecideNeed = f+1) is one point
// of that space; most seeds land elsewhere, on protocols that block, decide
// too eagerly, or violate agreement — all valid automata of the model.
func deriveBenOr(sp *Spec, d Dials, r *rng) {
	sp.MaxRound = d.MaxRound
	sp.WaitNeed = 1 + r.intn(d.N)
	sp.ProposeNeed = 1 + r.intn(d.N)
	sp.DecideNeed = 1 + r.intn(d.N)
}

// deriveTable fills the transition table entry by entry in canonical
// (phase, reg, symbol) order, one dependent draw sequence per entry.
func deriveTable(sp *Spec, d Dials, r *rng) {
	sp.Phases = d.Phases
	sp.Regs = d.Regs
	sp.Alphabet = d.Alphabet
	sp.Table = make([]Transition, d.Phases*d.Regs*(d.Alphabet+1))
	for h := 0; h < d.Phases; h++ {
		for reg := 0; reg < d.Regs; reg++ {
			for sym := 0; sym <= d.Alphabet; sym++ {
				idx := sp.tableIndex(h, reg, sym)
				if !r.pct(d.Density) {
					// Inert: the message (if any) is consumed, nothing else
					// changes. For null deliveries the engines skip this as a
					// no-op.
					sp.Table[idx] = Transition{Next: h, Reg: reg}
					continue
				}
				tr := Transition{Reg: r.intn(d.Regs)}
				if r.pct(20) {
					// Stay in phase: register and output may change, but no
					// sends (the finiteness invariant).
					tr.Next = h
				} else {
					tr.Next = h + 1 + r.intn(d.Phases-h)
					for k := r.intn(d.MaxSends + 1); k > 0; k-- {
						tr.Sends = append(tr.Sends, Send{
							Target: deriveTarget(d.N, r),
							Sym:    r.intn(d.Alphabet),
						})
					}
				}
				if r.pct(25) {
					tr.Decide = deriveDecision(d.DecShape, r)
				}
				sp.Table[idx] = tr
			}
		}
	}
}

// deriveTarget picks a send target: broadcasts, relative addressing, and
// fixed processes all occur.
func deriveTarget(n int, r *rng) int {
	switch v := r.intn(10); {
	case v < 2:
		return TargetAll
	case v < 4:
		return TargetOthers
	case v < 5:
		return TargetSelf
	case v < 6:
		return TargetNext
	default:
		return r.intn(n)
	}
}

// deriveDecision picks an output-register action under the dial's shape
// bias: 0 mixed, 1 input-driven, 2 constant, 3 register-driven.
func deriveDecision(shape int, r *rng) Decision {
	switch shape {
	case 1:
		return DecideInput
	case 2:
		return Decision(uint8(DecideZero) + uint8(r.intn(2)))
	case 3:
		return DecideReg
	default:
		switch r.intn(4) {
		case 0:
			return DecideZero
		case 1:
			return DecideOne
		case 2:
			return DecideInput
		default:
			return DecideReg
		}
	}
}
