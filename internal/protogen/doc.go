// Package protogen generates valid registry protocols deterministically
// from a seed, so the exploration engines can be differential-tested
// against protocols nobody hand-tuned for.
//
// The FLP construction (Lemmas 2–3, Theorem 1) quantifies over *all*
// protocols in the Section 2 model; the hand-written registry covers a
// handful of well-known ones. This package fills the gap with a protocol
// *space*: Derive(seed, dials) maps a 64-bit seed and a small set of
// generation dials — process count, message alphabet size, transition-table
// density, decision-rule shape — to a Spec, a fully explicit, serializable
// description of a protocol, and Spec.Protocol() realizes it as a
// model.Protocol. The map is a pure function: same seed and dials, same
// Spec, same behaviour, on every machine and every run.
//
// # Templates
//
// Two templates span structurally different corners of the space:
//
//   - "table": every process runs the same finite transition table over
//     (phase, register, received-symbol) triples. Transitions may advance
//     the phase, rewrite the register, send messages, and write the
//     output register.
//   - "benor": a Ben-Or-style randomized-consensus round structure
//     (report / propose phases with threshold rules, after Aspnes'
//     survey of randomized asynchronous consensus) whose shared coin is a
//     fixed pseudo-random tape keyed by the seed — the protocol is a
//     deterministic automaton, so runs replay exactly, but the thresholds
//     and tape vary across seeds, giving genuinely divergent valency
//     structure rather than permutations of one protocol.
//
// # Validity invariants
//
// Every Spec that passes Validate — and Derive only produces such Specs —
// yields a protocol honouring the model.Protocol contract, plus one
// stronger guarantee the conformance harness depends on:
//
//  1. Determinism and side-effect freedom: Step is a pure table lookup
//     (or threshold evaluation) on immutable states.
//  2. Write-once output registers: a decision action on an
//     already-decided state is a no-op.
//  3. Bounded message production: a table transition may send only if it
//     strictly increases the phase, and phases are capped, so a run
//     produces at most N·Phases·MaxSends messages ("benor" caps rounds
//     the same way). The reachable configuration graph of every
//     generated protocol is therefore finite, which is what lets the
//     conformance harness demand complete explorations at small budgets.
//  4. Canonical state keys: states encode through package enc, so
//     configuration identity — and with it every engine's visited set —
//     is exact.
//
// Generated protocols need not *solve* consensus: specs whose thresholds
// or tables violate agreement, block forever, or decide trivially are the
// point — the engines must agree with each other on every protocol in the
// model, not only on well-behaved ones.
//
// # Names
//
// Spec.Name() encodes the entire spec into the protocol's name:
// seed-derived specs compactly as "gen:d1:<seed>:<dials>", arbitrary
// (hand-built or shrunk) specs as "gen:j1:<base64 JSON>". FromName inverts
// both. The protocol registry resolves "gen:"-prefixed names through this
// package, which is what lets the distributed engine's workers — which
// reconstruct protocols from names — run generated protocols unchanged,
// and lets `flpcheck -genseed` replay any generated protocol
// interactively.
package protogen
