package protogen

import (
	"sort"
	"strconv"
	"strings"

	"github.com/flpsim/flp/internal/enc"
	"github.com/flpsim/flp/internal/model"
)

// benorProto realizes a "benor" Spec: the report/propose round structure
// of Ben-Or's randomized consensus, with three generator-chosen thresholds
// and the shared coin drawn from a deterministic tape keyed by
// (Seed, process, round) — so every run replays exactly and FLP's model
// applies unchanged. Rounds are capped at MaxRound: a process that would
// enter round MaxRound+1 halts instead, which bounds message production
// and keeps the reachable configuration graph finite (the registry's
// uncapped Ben-Or has an unbounded state space, which the conformance
// harness cannot demand complete explorations of).
//
// Round structure (round r ≥ 1, x the current estimate):
//
//	phase 1: broadcast (R, r, x); await WaitNeed round-r reports.
//	         If ≥ ProposeNeed carry the same v, propose v, else ⊥.
//	phase 2: broadcast (P, r, proposal); await WaitNeed round-r proposals.
//	         ≥ DecideNeed carry the same v ≠ ⊥ → decide v;
//	         ≥ 1 carries v ≠ ⊥               → x = v;
//	         otherwise                         x = coin(Seed, p, r).
type benorProto struct {
	sp   Spec
	name string
}

const benorHalted = 3 // phase value marking a capped-out process

const benorBot model.Value = 2 // ⊥ in proposal messages

// voteSet maps senders to the value they reported or proposed in one
// (kind, round) slot. Immutable: with returns a copy.
type voteSet map[model.PID]model.Value

func (v voteSet) with(p model.PID, val model.Value) voteSet {
	nv := make(voteSet, len(v)+1)
	for k, x := range v {
		nv[k] = x
	}
	nv[p] = val
	return nv
}

func (v voteSet) count(val model.Value) int {
	c := 0
	for _, x := range v {
		if x == val {
			c++
		}
	}
	return c
}

func (v voteSet) key() string {
	pids := make([]int, 0, len(v))
	for p := range v {
		pids = append(pids, int(p))
	}
	sort.Ints(pids)
	var b enc.Builder
	for _, p := range pids {
		b.Int(p).Uint8(uint8(v[model.PID(p)]))
	}
	return b.String()
}

type benorState struct {
	me    model.PID
	x     model.Value
	round int // 0 = not started; 1..MaxRound active
	phase int // 1, 2, or benorHalted
	out   model.Output
	// inbox maps "R|r" / "P|r" to the votes received for that slot.
	inbox map[string]voteSet
}

func (s *benorState) Key() string {
	var b enc.Builder
	b.Int(int(s.me)).Uint8(uint8(s.x)).Int(s.round).Int(s.phase).Uint8(uint8(s.out))
	keys := make([]string, 0, len(s.inbox))
	for k := range s.inbox {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.Str(k).Str(s.inbox[k].key())
	}
	return b.String()
}

func (s *benorState) Output() model.Output { return s.out }

func (s *benorState) clone() *benorState {
	ns := *s
	ns.inbox = make(map[string]voteSet, len(s.inbox))
	for k, v := range s.inbox {
		ns.inbox[k] = v
	}
	return &ns
}

// Name implements model.Protocol.
func (g *benorProto) Name() string { return g.name }

// N implements model.Protocol.
func (g *benorProto) N() int { return g.sp.N }

// Init implements model.Protocol.
func (g *benorProto) Init(p model.PID, input model.Value) model.State {
	return &benorState{me: p, x: input, round: 0, phase: 1, inbox: map[string]voteSet{}}
}

// coin is the deterministic tape: the flip for (p, r) under this spec's
// seed, finalized with a stateless mixer so no bit correlates with round
// parity.
func (g *benorProto) coin(p model.PID, r int) model.Value {
	return model.Value(mix64(g.sp.Seed^(uint64(p)+1)*0x9e3779b97f4a7c15^(uint64(r)+1)*0xbf58476d1ce4e5b9) & 1)
}

func benorSlot(kind string, r int) string { return kind + "|" + strconv.Itoa(r) }

func benorBody(kind string, r int, v model.Value) string {
	return kind + "|" + strconv.Itoa(r) + "|" + strconv.Itoa(int(v))
}

// Step implements model.Protocol. The structure follows the registry's
// BenOrDeterministic with the thresholds generalized and the round cap
// added; decided processes keep participating until the cap so others can
// finish.
func (g *benorProto) Step(p model.PID, s model.State, m *model.Message) (model.State, []model.Message) {
	st := s.(*benorState)
	if st.phase == benorHalted {
		return st, nil // capped out; deliveries are consumed silently
	}
	next := st.clone()
	var sends []model.Message

	// First step: enter round 1 and report.
	if next.round == 0 {
		next.round = 1
		next.phase = 1
		sends = append(sends, model.Broadcast(p, g.sp.N, benorBody("R", 1, next.x))...)
	}

	if m != nil {
		fields := strings.SplitN(m.Body, "|", 3)
		if len(fields) == 3 && (fields[0] == "R" || fields[0] == "P") {
			if r, err := strconv.Atoi(fields[1]); err == nil && r >= next.round {
				if v, err := strconv.Atoi(fields[2]); err == nil {
					slot := benorSlot(fields[0], r)
					next.inbox[slot] = next.inbox[slot].with(m.From, model.Value(v))
				}
			}
		}
	}

	// Advance through any thresholds now met (buffered future-round traffic
	// can complete several phases in one delivery).
	for {
		if next.phase == 1 {
			reports := next.inbox[benorSlot("R", next.round)]
			if len(reports) < g.sp.WaitNeed {
				break
			}
			proposal := benorBot
			if reports.count(model.V0) >= g.sp.ProposeNeed {
				proposal = model.V0
			} else if reports.count(model.V1) >= g.sp.ProposeNeed {
				proposal = model.V1
			}
			next.phase = 2
			sends = append(sends, model.Broadcast(p, g.sp.N, benorBody("P", next.round, proposal))...)
			continue
		}
		props := next.inbox[benorSlot("P", next.round)]
		if len(props) < g.sp.WaitNeed {
			break
		}
		switch {
		case props.count(model.V0) >= g.sp.DecideNeed:
			if !next.out.Decided() {
				next.out = model.Decided0
			}
			next.x = model.V0
		case props.count(model.V1) >= g.sp.DecideNeed:
			if !next.out.Decided() {
				next.out = model.Decided1
			}
			next.x = model.V1
		case props.count(model.V0) >= 1:
			next.x = model.V0
		case props.count(model.V1) >= 1:
			next.x = model.V1
		default:
			next.x = g.coin(p, next.round)
		}
		if next.round >= g.sp.MaxRound {
			next.phase = benorHalted
			next.inbox = map[string]voteSet{}
			break
		}
		// Next round; prune stale inbox slots to keep states small.
		next.round++
		next.phase = 1
		for k := range next.inbox {
			parts := strings.SplitN(k, "|", 2)
			if r, err := strconv.Atoi(parts[1]); err == nil && r < next.round {
				delete(next.inbox, k)
			}
		}
		sends = append(sends, model.Broadcast(p, g.sp.N, benorBody("R", next.round, next.x))...)
	}
	return next, sends
}
