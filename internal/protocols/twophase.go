package protocols

import (
	"fmt"

	"github.com/flpsim/flp/internal/enc"
	"github.com/flpsim/flp/internal/model"
)

// TwoPhaseCommit is the transaction-commit protocol from the paper's
// introduction, in its asynchronous form. Process 0 is the coordinator;
// every process (including the coordinator) is a participant whose input is
// its vote: 1 = "commit", 0 = "abort".
//
// Phase 1: each participant sends its vote to the coordinator. Phase 2:
// once the coordinator holds all N votes, it broadcasts COMMIT if every
// vote was 1 and ABORT otherwise; every process decides on receipt.
//
// The protocol is partially correct — the coordinator's verdict is the
// unique decision value — and nontrivial. It is, exactly as the paper
// observes of all commit protocols, not fault tolerant: the decision is a
// function of the inputs alone (every initial configuration is univalent),
// and the delay of a single process — the coordinator, after votes are
// cast — leaves the system undecided forever. That interval is its "window
// of vulnerability", measured in experiment E6.
type TwoPhaseCommit struct {
	// Procs is the number of processes N ≥ 2.
	Procs int
}

// Coordinator is the coordinator's process id.
const Coordinator model.PID = 0

const (
	bodyCommit = "COMMIT"
	bodyAbort  = "ABORT"
)

type tpcState struct {
	me    model.PID
	input model.Value
	sent  bool  // participant: vote sent; coordinator: verdict broadcast
	got   votes // coordinator only: votes collected
	out   model.Output
}

func (s *tpcState) Key() string {
	var b enc.Builder
	b.Int(int(s.me)).Uint8(uint8(s.input)).Bool(s.sent).Str(s.got.key()).Uint8(uint8(s.out))
	return b.String()
}

func (s *tpcState) Output() model.Output { return s.out }

// NewTwoPhaseCommit returns an asynchronous 2PC instance for n processes.
func NewTwoPhaseCommit(n int) *TwoPhaseCommit { return &TwoPhaseCommit{Procs: n} }

// Name implements model.Protocol.
func (t *TwoPhaseCommit) Name() string { return fmt.Sprintf("2pc(n=%d)", t.Procs) }

// N implements model.Protocol.
func (t *TwoPhaseCommit) N() int { return t.Procs }

// Init implements model.Protocol.
func (t *TwoPhaseCommit) Init(p model.PID, input model.Value) model.State {
	s := &tpcState{me: p, input: input, got: votes{}}
	if p == Coordinator {
		s.got = votes{p: input}
	}
	return s
}

// Step implements model.Protocol.
func (t *TwoPhaseCommit) Step(p model.PID, s model.State, m *model.Message) (model.State, []model.Message) {
	st := s.(*tpcState)
	ns := &tpcState{me: st.me, input: st.input, sent: st.sent, got: st.got, out: st.out}
	var sends []model.Message

	if p == Coordinator {
		if m != nil {
			if v, ok := parseVote(m.Body); ok {
				ns.got = ns.got.with(m.From, v)
			}
		}
		if !ns.sent && len(ns.got) == t.Procs {
			ns.sent = true
			verdict := model.V1
			if ns.got.count(model.V0) > 0 {
				verdict = model.V0
			}
			body := bodyCommit
			if verdict == model.V0 {
				body = bodyAbort
			}
			sends = model.BroadcastOthers(p, t.Procs, body)
			ns.out = model.OutputOf(verdict)
		}
		return ns, sends
	}

	// Participant.
	if !ns.sent {
		ns.sent = true
		sends = append(sends, model.Message{To: Coordinator, Body: voteBody(st.input)})
	}
	if m != nil && !ns.out.Decided() {
		switch m.Body {
		case bodyCommit:
			ns.out = model.Decided1
		case bodyAbort:
			ns.out = model.Decided0
		}
	}
	return ns, sends
}
