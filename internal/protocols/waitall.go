package protocols

import (
	"fmt"

	"github.com/flpsim/flp/internal/enc"
	"github.com/flpsim/flp/internal/model"
)

// WaitAll broadcasts every input and decides the majority once votes from
// all N processes are in.
//
// It is partially correct: every process that decides sees the identical
// full vote multiset, so agreement holds, and both values are possible. But
// it is not totally correct in spite of one fault — a single crashed
// process starves everyone forever. Consistently with Lemma 2 (whose
// hypothesis it fails), every one of its initial configurations is
// univalent: the decision is a function of the inputs alone.
type WaitAll struct {
	// Procs is the number of processes N ≥ 2.
	Procs int
}

type waitAllState struct {
	me    model.PID
	input model.Value
	sent  bool
	got   votes
	out   model.Output
}

func (s *waitAllState) Key() string {
	var b enc.Builder
	b.Int(int(s.me)).Uint8(uint8(s.input)).Bool(s.sent).Str(s.got.key()).Uint8(uint8(s.out))
	return b.String()
}

func (s *waitAllState) Output() model.Output { return s.out }

// NewWaitAll returns the wait-for-everyone protocol for n processes.
func NewWaitAll(n int) *WaitAll { return &WaitAll{Procs: n} }

// Name implements model.Protocol.
func (w *WaitAll) Name() string { return fmt.Sprintf("waitall(n=%d)", w.Procs) }

// N implements model.Protocol.
func (w *WaitAll) N() int { return w.Procs }

// Init implements model.Protocol. A process's own vote is counted from the
// start; only the broadcast is deferred to its first step.
func (w *WaitAll) Init(p model.PID, input model.Value) model.State {
	return &waitAllState{me: p, input: input, got: votes{p: input}}
}

// Step implements model.Protocol.
func (w *WaitAll) Step(p model.PID, s model.State, m *model.Message) (model.State, []model.Message) {
	st := s.(*waitAllState)
	ns := &waitAllState{me: st.me, input: st.input, sent: st.sent, got: st.got, out: st.out}
	var sends []model.Message
	if !ns.sent {
		ns.sent = true
		sends = model.BroadcastOthers(p, w.Procs, voteBody(st.input))
	}
	if m != nil {
		if v, ok := parseVote(m.Body); ok {
			ns.got = ns.got.with(m.From, v)
		}
	}
	if !ns.out.Decided() && len(ns.got) == w.Procs {
		ns.out = model.OutputOf(ns.got.majority())
	}
	return ns, sends
}
