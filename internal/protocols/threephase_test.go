package protocols_test

import (
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/modeltest"
	"github.com/flpsim/flp/internal/protocols"
	"github.com/flpsim/flp/internal/runtime"
)

func TestThreePhaseConformance(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		modeltest.CheckConformance(t, protocols.NewThreePhaseCommit(3), model.Inputs{1, 1, 1}, 120, seed)
		modeltest.CheckConformance(t, protocols.NewThreePhaseCommit(4), model.Inputs{1, 0, 1, 1}, 120, seed)
	}
}

func TestThreePhaseSemantics(t *testing.T) {
	pr := protocols.NewThreePhaseCommit(3)
	for _, in := range model.AllInputs(3) {
		res := mustRun(t, pr, in, rr(), runtime.RunOptions{})
		want := model.V1
		if in.Count(model.V0) > 0 {
			want = model.V0
		}
		if v, ok := res.DecidedValue(); !ok || v != want {
			t.Errorf("inputs %s: decided %v (ok=%v), want %v", in, v, ok, want)
		}
		if res.AgreementViolated {
			t.Errorf("inputs %s: agreement violated", in)
		}
	}
}

func TestThreePhaseCostsMoreThanTwoPhase(t *testing.T) {
	// The extra PRECOMMIT/ACK round is visible as a longer healthy run.
	two := mustRun(t, protocols.NewTwoPhaseCommit(3), model.Inputs{1, 1, 1}, rr(), runtime.RunOptions{})
	three := mustRun(t, protocols.NewThreePhaseCommit(3), model.Inputs{1, 1, 1}, rr(), runtime.RunOptions{})
	if three.Steps <= two.Steps {
		t.Errorf("3PC (%d steps) not costlier than 2PC (%d steps)", three.Steps, two.Steps)
	}
}

func TestThreePhaseStillBlocksOnDelayedCoordinator(t *testing.T) {
	// The whole point: without timeouts, the third phase buys nothing.
	pr := protocols.NewThreePhaseCommit(3)
	res := mustRun(t, pr, model.Inputs{1, 1, 1},
		runtime.Delayed{Victim: protocols.Coordinator, Inner: runtime.NewRoundRobin()},
		runtime.RunOptions{})
	if !res.Blocked || len(res.Decisions) != 0 {
		t.Errorf("3PC decided with a delayed coordinator: %v", res.Decisions)
	}
	// And the window extends into the prepared phase: crash the
	// coordinator after it has sent PRECOMMIT but before COMMIT. Its
	// steps are the n-1 vote deliveries (PRECOMMIT goes out with the
	// last) plus n-1 ack deliveries (COMMIT with the last) — so crashing
	// after n-1+1 steps strands prepared participants.
	res2 := mustRun(t, pr, model.Inputs{1, 1, 1}, rr(),
		runtime.RunOptions{CrashAfter: map[model.PID]int{protocols.Coordinator: 3}, MaxSteps: 5000})
	if res2.AllLiveDecided {
		t.Error("participants decided without the coordinator's COMMIT")
	}
}

func TestThreePhaseAllInitialConfigsUnivalent(t *testing.T) {
	census, err := explore.CensusInitial(protocols.NewThreePhaseCommit(3), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if census.HasBivalent() {
		t.Error("3PC has a bivalent initial configuration; it should be input-determined")
	}
	if !census.AllExact {
		t.Error("3PC census not exact")
	}
	if census.Counts[explore.OneValent] != 1 {
		t.Errorf("counts = %v, want exactly one 1-valent (111)", census.Counts)
	}
}

func TestThreePhaseAgreement(t *testing.T) {
	rep, err := explore.CheckPartialCorrectness(protocols.NewThreePhaseCommit(3), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AgreementHolds || !rep.Complete {
		t.Errorf("agreement=%v complete=%v", rep.AgreementHolds, rep.Complete)
	}
	if !rep.Nontrivial {
		t.Error("3PC reported trivial")
	}
}
