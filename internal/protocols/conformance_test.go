package protocols_test

import (
	"testing"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/modeltest"
	"github.com/flpsim/flp/internal/protocols"
)

func TestConformanceAllProtocols(t *testing.T) {
	cases := []struct {
		pr     model.Protocol
		inputs model.Inputs
	}{
		{protocols.NewTrivial0(3), model.Inputs{0, 1, 1}},
		{protocols.NewWaitAll(3), model.Inputs{0, 1, 1}},
		{protocols.NewWaitAll(4), model.Inputs{1, 0, 1, 0}},
		{protocols.NewNaiveMajority(3), model.Inputs{0, 1, 1}},
		{protocols.NewNaiveMajority(5), model.Inputs{0, 1, 1, 0, 1}},
		{protocols.NewTwoPhaseCommit(3), model.Inputs{1, 1, 1}},
		{protocols.NewTwoPhaseCommit(4), model.Inputs{1, 0, 1, 1}},
		{protocols.NewPaxosSynod(3), model.Inputs{0, 1, 1}},
		{protocols.NewPaxosSynod(5), model.Inputs{0, 0, 1, 1, 1}},
		{protocols.NewBoundedPaxosSynod(3, 7), model.Inputs{0, 1, 0}},
		{protocols.NewBenOrDeterministic(3, 42), model.Inputs{0, 1, 1}},
		{protocols.NewBenOrDeterministic(5, 9), model.Inputs{0, 1, 1, 0, 0}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.pr.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				modeltest.CheckConformance(t, tc.pr, tc.inputs, 120, seed)
			}
		})
	}
}

func TestStateKeysDistinguishStates(t *testing.T) {
	// Distinct protocol states must have distinct keys: walk two different
	// schedules and confirm the configurations differ when they should.
	pr := protocols.NewPaxosSynod(3)
	c := model.MustInitial(pr, model.Inputs{0, 1, 1})
	a := model.MustApply(pr, c, model.NullEvent(0))
	b := model.MustApply(pr, c, model.NullEvent(1))
	if a.Equal(b) {
		t.Error("configurations after different first steps compare equal")
	}
	a2 := model.MustApply(pr, c, model.NullEvent(0))
	if !a.Equal(a2) {
		t.Error("identical steps give unequal configurations")
	}
}
