package protocols

import (
	"fmt"
	"sort"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protogen"
)

// Factory constructs a protocol instance for n processes.
type Factory func(n int) (model.Protocol, error)

// registry maps protocol names to factories, for the command-line tools.
var registry = map[string]Factory{
	"trivial0": func(n int) (model.Protocol, error) {
		return NewTrivial0(n), nil
	},
	"waitall": func(n int) (model.Protocol, error) {
		return NewWaitAll(n), nil
	},
	"naivemajority": func(n int) (model.Protocol, error) {
		if n < 3 {
			return nil, fmt.Errorf("naivemajority needs n ≥ 3, got %d", n)
		}
		return NewNaiveMajority(n), nil
	},
	"2pc": func(n int) (model.Protocol, error) {
		return NewTwoPhaseCommit(n), nil
	},
	"3pc": func(n int) (model.Protocol, error) {
		return NewThreePhaseCommit(n), nil
	},
	"paxos": func(n int) (model.Protocol, error) {
		if n < 3 {
			return nil, fmt.Errorf("paxos needs n ≥ 3, got %d", n)
		}
		return NewPaxosSynod(n), nil
	},
	"benor": func(n int) (model.Protocol, error) {
		return NewBenOrDeterministic(n, 1), nil
	},
	"onethird": func(n int) (model.Protocol, error) {
		if n < 4 {
			return nil, fmt.Errorf("onethird needs n ≥ 4 for any fault tolerance, got %d", n)
		}
		return NewOneThirdRule(n), nil
	},
}

// Lookup returns the factory for a registered protocol name.
//
// Names carrying protogen's "gen:" prefix are self-describing — the whole
// protocol spec is encoded in the name — so they resolve without being
// registered. That is what lets generated protocols flow through every
// name-keyed surface (the distributed engine's workers, the CLIs) exactly
// like the hand-written ones: a remote worker rebuilds the protocol from
// the task's name alone.
func Lookup(name string) (Factory, bool) {
	if protogen.IsGenerated(name) {
		return func(n int) (model.Protocol, error) {
			sp, err := protogen.FromName(name)
			if err != nil {
				return nil, err
			}
			if n != 0 && n != sp.N {
				return nil, fmt.Errorf("generated protocol %q is for n = %d, got n = %d", name, sp.N, n)
			}
			return protogen.New(sp)
		}, true
	}
	f, ok := registry[name]
	return f, ok
}

// Names lists the registered protocol names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
