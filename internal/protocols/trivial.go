package protocols

import (
	"fmt"

	"github.com/flpsim/flp/internal/enc"
	"github.com/flpsim/flp/internal/model"
)

// Trivial0 is the protocol the paper rules out by the nontriviality
// stipulation: every process decides 0 on its first step regardless of
// inputs. It satisfies agreement and terminates in every run, but only 0 is
// ever a decision value, so it is not partially correct (condition 2
// fails). Useful as a checker fixture.
type Trivial0 struct {
	// Procs is the number of processes N ≥ 2.
	Procs int
}

type trivialState struct {
	out model.Output
}

func (s trivialState) Key() string {
	var b enc.Builder
	b.Uint8(uint8(s.out))
	return b.String()
}

func (s trivialState) Output() model.Output { return s.out }

// NewTrivial0 returns the always-0 protocol for n processes.
func NewTrivial0(n int) *Trivial0 { return &Trivial0{Procs: n} }

// Name implements model.Protocol.
func (t *Trivial0) Name() string { return fmt.Sprintf("trivial0(n=%d)", t.Procs) }

// N implements model.Protocol.
func (t *Trivial0) N() int { return t.Procs }

// Init implements model.Protocol.
func (t *Trivial0) Init(model.PID, model.Value) model.State {
	return trivialState{out: model.None}
}

// Step implements model.Protocol: decide 0 on the first step, then idle.
func (t *Trivial0) Step(_ model.PID, s model.State, _ *model.Message) (model.State, []model.Message) {
	st := s.(trivialState)
	if !st.out.Decided() {
		return trivialState{out: model.Decided0}, nil
	}
	return st, nil
}
