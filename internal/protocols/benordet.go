package protocols

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/flpsim/flp/internal/enc"
	"github.com/flpsim/flp/internal/model"
)

// BenOrDeterministic is Ben-Or's asynchronous consensus protocol ("Another
// advantage of free choice", PODC 1983 — reference [2] of the paper, cited
// in its conclusion as the randomized escape from the impossibility) in its
// crash-fault form, with the coin flips drawn from a fixed pseudo-random
// tape keyed by (Seed, process, round).
//
// Fixing the tape turns the protocol into a deterministic automaton, so it
// fits the paper's model exactly — and FLP then applies to it: for each
// seed there exist adversarial schedules that run forever. Across seeds,
// however, runs terminate with probability 1, which is experiment E9's
// subject. The protocol tolerates f = ⌊(N-1)/2⌋ crash faults.
//
// Round structure (round r ≥ 1, x the current estimate):
//
//	phase 1: broadcast (R, r, x); await N-f round-r reports.
//	         If > N/2 of them carry the same v, propose v, else propose ⊥.
//	phase 2: broadcast (P, r, proposal); await N-f round-r proposals.
//	         ≥ f+1 carry the same v ≠ ⊥ → decide v;
//	         ≥ 1 carries v ≠ ⊥        → x = v;
//	         otherwise                  x = coin(Seed, p, r).
//
// Decided processes keep participating so that others can finish.
type BenOrDeterministic struct {
	// Procs is the number of processes N ≥ 2.
	Procs int
	// Seed selects the coin tape.
	Seed uint64
}

// Faults returns the crash tolerance f = ⌊(N-1)/2⌋.
func (bo *BenOrDeterministic) Faults() int { return (bo.Procs - 1) / 2 }

const benOrBot model.Value = 2 // ⊥ in proposal messages

type benOrState struct {
	me    model.PID
	x     model.Value
	round int
	phase int // 1 or 2
	// inbox maps "t|r" (t ∈ {R, P}, r the round) to the votes received.
	inbox map[string]votes
	out   model.Output
}

func (s *benOrState) Key() string {
	var b enc.Builder
	b.Int(int(s.me)).Uint8(uint8(s.x)).Int(s.round).Int(s.phase).Uint8(uint8(s.out))
	keys := make([]string, 0, len(s.inbox))
	for k := range s.inbox {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.Str(k).Str(s.inbox[k].key())
	}
	return b.String()
}

func (s *benOrState) Output() model.Output { return s.out }

func (s *benOrState) clone() *benOrState {
	ns := *s
	ns.inbox = make(map[string]votes, len(s.inbox))
	for k, v := range s.inbox {
		ns.inbox[k] = v
	}
	return &ns
}

// NewBenOrDeterministic returns a Ben-Or instance for n processes with the
// given coin tape.
func NewBenOrDeterministic(n int, seed uint64) *BenOrDeterministic {
	return &BenOrDeterministic{Procs: n, Seed: seed}
}

// Name implements model.Protocol.
func (bo *BenOrDeterministic) Name() string {
	return fmt.Sprintf("benor(n=%d,seed=%d)", bo.Procs, bo.Seed)
}

// N implements model.Protocol.
func (bo *BenOrDeterministic) N() int { return bo.Procs }

// Init implements model.Protocol.
func (bo *BenOrDeterministic) Init(p model.PID, input model.Value) model.State {
	return &benOrState{me: p, x: input, round: 0, phase: 1, inbox: map[string]votes{}}
}

// Coin returns the tape's flip for (p, r). The combination is finalized
// with a splitmix64-style mixer: a plain byte hash leaves the low bit
// correlated with the round parity, which locks anti-correlated processes
// into a perpetual coin disagreement.
func (bo *BenOrDeterministic) Coin(p model.PID, r int) model.Value {
	x := bo.Seed ^ (uint64(p)+1)*0x9e3779b97f4a7c15 ^ (uint64(r)+1)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return model.Value(x & 1)
}

func inboxKey(t string, r int) string { return t + "|" + strconv.Itoa(r) }

func benOrBody(t string, r int, v model.Value) string {
	return fmt.Sprintf("%s|%d|%d", t, r, v)
}

// Step implements model.Protocol.
func (bo *BenOrDeterministic) Step(p model.PID, s model.State, m *model.Message) (model.State, []model.Message) {
	st := s.(*benOrState).clone()
	var sends []model.Message

	// First step: enter round 1 and report.
	if st.round == 0 {
		st.round = 1
		st.phase = 1
		sends = append(sends, model.Broadcast(p, bo.Procs, benOrBody("R", 1, st.x))...)
	}

	if m != nil {
		fields := strings.Split(m.Body, "|")
		if len(fields) == 3 && (fields[0] == "R" || fields[0] == "P") {
			r := atoi(fields[1])
			v := model.Value(atoi(fields[2]))
			if r >= st.round { // stale rounds are irrelevant
				k := inboxKey(fields[0], r)
				st.inbox[k] = st.inbox[k].with(m.From, v)
			}
		}
	}

	// Advance through any thresholds now met (a single delivery can
	// complete phase 1 and immediately phase 2 if the future-round traffic
	// was buffered).
	need := bo.Procs - bo.Faults()
	for {
		if st.phase == 1 {
			reports := st.inbox[inboxKey("R", st.round)]
			if len(reports) < need {
				break
			}
			proposal := benOrBot
			if reports.count(model.V0) > bo.Procs/2 {
				proposal = model.V0
			} else if reports.count(model.V1) > bo.Procs/2 {
				proposal = model.V1
			}
			st.phase = 2
			sends = append(sends, model.Broadcast(p, bo.Procs, benOrBody("P", st.round, proposal))...)
			continue
		}
		props := st.inbox[inboxKey("P", st.round)]
		if len(props) < need {
			break
		}
		f := bo.Faults()
		switch {
		case props.count(model.V0) >= f+1:
			if !st.out.Decided() {
				st.out = model.Decided0
			}
			st.x = model.V0
		case props.count(model.V1) >= f+1:
			if !st.out.Decided() {
				st.out = model.Decided1
			}
			st.x = model.V1
		case props.count(model.V0) >= 1:
			st.x = model.V0
		case props.count(model.V1) >= 1:
			st.x = model.V1
		default:
			st.x = bo.Coin(p, st.round)
		}
		// Next round; prune stale inbox entries to keep states small.
		st.round++
		st.phase = 1
		for k := range st.inbox {
			parts := strings.SplitN(k, "|", 2)
			if atoi(parts[1]) < st.round {
				delete(st.inbox, k)
			}
		}
		sends = append(sends, model.Broadcast(p, bo.Procs, benOrBody("R", st.round, st.x))...)
	}
	return st, sends
}
