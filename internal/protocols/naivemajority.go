package protocols

import (
	"fmt"

	"github.com/flpsim/flp/internal/enc"
	"github.com/flpsim/flp/internal/model"
)

// NaiveMajority is the obvious attempt to make WaitAll fault tolerant:
// decide the majority of the first N-1 votes collected (your own plus N-2
// others) instead of waiting for all N.
//
// It no longer blocks when one process crashes — but it is not partially
// correct: different processes can collect different (N-1)-subsets of the
// votes and decide differently. With N = 3 and inputs 011, the process
// pairing with a 1-voter decides 1 while a process pairing with the 0-voter
// decides 0. CheckPartialCorrectness produces the witness mechanically.
//
// Because both outcomes are reachable from mixed-input initial
// configurations, NaiveMajority has bivalent initial configurations and is
// the package's fully-explorable (finite-state) fixture for Lemma 2,
// Lemma 3, and the Theorem 1 adversary.
type NaiveMajority struct {
	// Procs is the number of processes N ≥ 3 (with N = 2 a process would
	// decide on its own vote alone).
	Procs int
}

type naiveState struct {
	me    model.PID
	input model.Value
	sent  bool
	got   votes
	out   model.Output
}

func (s *naiveState) Key() string {
	var b enc.Builder
	b.Int(int(s.me)).Uint8(uint8(s.input)).Bool(s.sent).Str(s.got.key()).Uint8(uint8(s.out))
	return b.String()
}

func (s *naiveState) Output() model.Output { return s.out }

// NewNaiveMajority returns the decide-on-N-1-votes protocol for n
// processes.
func NewNaiveMajority(n int) *NaiveMajority { return &NaiveMajority{Procs: n} }

// Name implements model.Protocol.
func (nm *NaiveMajority) Name() string { return fmt.Sprintf("naivemajority(n=%d)", nm.Procs) }

// N implements model.Protocol.
func (nm *NaiveMajority) N() int { return nm.Procs }

// Init implements model.Protocol.
func (nm *NaiveMajority) Init(p model.PID, input model.Value) model.State {
	return &naiveState{me: p, input: input, got: votes{p: input}}
}

// Step implements model.Protocol.
func (nm *NaiveMajority) Step(p model.PID, s model.State, m *model.Message) (model.State, []model.Message) {
	st := s.(*naiveState)
	ns := &naiveState{me: st.me, input: st.input, sent: st.sent, got: st.got, out: st.out}
	var sends []model.Message
	if !ns.sent {
		ns.sent = true
		sends = model.BroadcastOthers(p, nm.Procs, voteBody(st.input))
	}
	if m != nil && !ns.out.Decided() {
		// Votes beyond the first N-1 are ignored: the decision snapshot is
		// frozen at the moment the quorum fills.
		if v, ok := parseVote(m.Body); ok && len(ns.got) < nm.Procs-1 {
			ns.got = ns.got.with(m.From, v)
		}
	}
	if !ns.out.Decided() && len(ns.got) == nm.Procs-1 {
		ns.out = model.OutputOf(ns.got.majority())
	}
	return ns, sends
}
