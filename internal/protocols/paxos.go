package protocols

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/flpsim/flp/internal/enc"
	"github.com/flpsim/flp/internal/model"
)

// PaxosSynod is a deterministic single-decree Paxos synod in which every
// process plays proposer, acceptor, and learner. It is the canonical
// real-world answer to FLP: agreement is preserved under full asynchrony
// and any minority of crashes, while termination is merely probable — the
// Theorem 1 adversary drives dueling proposers into an unbounded ballot
// chase (experiment E4), and mixed-input initial configurations are
// certifiably bivalent (the race between proposers decides the outcome).
//
// Determinism: a proposer whose ballot is rejected restarts with the
// smallest ballot it owns above the rejector's promise, so the automaton is
// a pure function of (state, delivered message), as the model requires.
//
// Ballot b is owned by process b mod N; proposer p uses ballots p, p+N,
// p+2N, ... A non-zero MaxBallot caps retries, making the protocol finite
// state (exactly explorable) at the cost of proposers eventually giving up;
// safety is unaffected.
type PaxosSynod struct {
	// Procs is the number of processes N ≥ 3 (a two-process synod cannot
	// tolerate a fault anyway).
	Procs int
	// MaxBallot, when positive, is the largest ballot number a proposer
	// will start; beyond it the proposer stops proposing (but keeps
	// serving as acceptor and learner).
	MaxBallot int
}

// Quorum returns the majority quorum size.
func (px *PaxosSynod) Quorum() int { return px.Procs/2 + 1 }

// Message bodies. Fields are '|'-separated; ballots and values are decimal.
//
//	prep|b        Prepare(b), proposer → all
//	prom|b|vb|vv  Promise(b) carrying last accepted (vb, vv); vb = -1 if none
//	nack|b|hb     Reject of Prepare/Accept at ballot b; hb = highest promise
//	acc|b|v       Accept(b, v), proposer → all
//	accd|b|v      Accepted(b, v), acceptor → all (learner traffic)
const (
	pxPrepare  = "prep"
	pxPromise  = "prom"
	pxNack     = "nack"
	pxAccept   = "acc"
	pxAccepted = "accd"
)

type promise struct {
	from model.PID
	vbal int // last accepted ballot, -1 if none
	vval model.Value
}

type paxosState struct {
	me    model.PID
	input model.Value
	out   model.Output

	// Acceptor.
	promised int // highest ballot promised, -1 initially
	accBal   int // highest ballot accepted, -1 initially
	accVal   model.Value

	// Proposer.
	curBal    int  // current ballot, -1 before the first step
	proposing bool // true in phase 1 (collecting promises) or phase 2
	inPhase2  bool
	promises  []promise // for curBal, sorted by from
	gaveUp    bool      // MaxBallot exceeded

	// Learner: acceptors seen accepting (learnBal, learnVal).
	learnBal int
	learnVal model.Value
	learnSet map[int]bool
}

func (s *paxosState) Key() string {
	var b enc.Builder
	b.Int(int(s.me)).Uint8(uint8(s.input)).Uint8(uint8(s.out))
	b.Int(s.promised).Int(s.accBal).Uint8(uint8(s.accVal))
	b.Int(s.curBal).Bool(s.proposing).Bool(s.inPhase2).Bool(s.gaveUp)
	for _, pr := range s.promises {
		b.Int(int(pr.from)).Int(pr.vbal).Uint8(uint8(pr.vval))
	}
	b.Int(s.learnBal).Uint8(uint8(s.learnVal)).IntSet(s.learnSet)
	return b.String()
}

func (s *paxosState) Output() model.Output { return s.out }

func (s *paxosState) clone() *paxosState {
	ns := *s
	ns.promises = append([]promise(nil), s.promises...)
	ns.learnSet = make(map[int]bool, len(s.learnSet))
	for k, v := range s.learnSet {
		ns.learnSet[k] = v
	}
	return &ns
}

// NewPaxosSynod returns an unbounded-ballot synod for n processes.
func NewPaxosSynod(n int) *PaxosSynod { return &PaxosSynod{Procs: n} }

// NewBoundedPaxosSynod returns a synod whose proposers stop above
// maxBallot, yielding a finite state space for exact exploration.
func NewBoundedPaxosSynod(n, maxBallot int) *PaxosSynod {
	return &PaxosSynod{Procs: n, MaxBallot: maxBallot}
}

// Name implements model.Protocol.
func (px *PaxosSynod) Name() string {
	if px.MaxBallot > 0 {
		return fmt.Sprintf("paxos(n=%d,maxballot=%d)", px.Procs, px.MaxBallot)
	}
	return fmt.Sprintf("paxos(n=%d)", px.Procs)
}

// N implements model.Protocol.
func (px *PaxosSynod) N() int { return px.Procs }

// Init implements model.Protocol.
func (px *PaxosSynod) Init(p model.PID, input model.Value) model.State {
	return &paxosState{
		me: p, input: input,
		promised: -1, accBal: -1, curBal: -1, learnBal: -1,
		learnSet: map[int]bool{},
	}
}

func (px *PaxosSynod) owner(ballot int) model.PID { return model.PID(ballot % px.Procs) }

// nextBallot returns the smallest ballot owned by p strictly greater than
// above.
func (px *PaxosSynod) nextBallot(p model.PID, above int) int {
	b := int(p)
	if above >= b {
		k := (above-int(p))/px.Procs + 1
		b = k*px.Procs + int(p)
	}
	return b
}

// Step implements model.Protocol.
func (px *PaxosSynod) Step(p model.PID, s model.State, m *model.Message) (model.State, []model.Message) {
	st := s.(*paxosState).clone()
	var sends []model.Message

	// First step: open ballot p (round 0).
	if st.curBal < 0 {
		st.curBal = int(p)
		if px.MaxBallot > 0 && st.curBal > px.MaxBallot {
			st.gaveUp = true
		} else {
			st.proposing = true
			sends = append(sends, model.Broadcast(p, px.Procs, pxPrepare+"|"+strconv.Itoa(st.curBal))...)
		}
	}

	if m != nil {
		sends = append(sends, px.handle(p, st, m)...)
	}
	return st, sends
}

func (px *PaxosSynod) handle(p model.PID, st *paxosState, m *model.Message) []model.Message {
	fields := strings.Split(m.Body, "|")
	var sends []model.Message
	switch fields[0] {
	case pxPrepare:
		b := atoi(fields[1])
		if b > st.promised {
			st.promised = b
			body := fmt.Sprintf("%s|%d|%d|%d", pxPromise, b, st.accBal, st.accVal)
			sends = append(sends, model.Message{To: px.owner(b), Body: body})
		} else {
			sends = append(sends, px.nack(b, st))
		}

	case pxPromise:
		b := atoi(fields[1])
		if st.proposing && !st.inPhase2 && b == st.curBal {
			pr := promise{from: m.From, vbal: atoi(fields[2]), vval: model.Value(atoi(fields[3]))}
			st.addPromise(pr)
			if len(st.promises) >= px.Quorum() {
				v := st.input
				best := -1
				for _, q := range st.promises {
					if q.vbal > best {
						best = q.vbal
						v = q.vval
					}
				}
				st.inPhase2 = true
				body := fmt.Sprintf("%s|%d|%d", pxAccept, st.curBal, v)
				sends = append(sends, model.Broadcast(p, px.Procs, body)...)
			}
		}

	case pxNack:
		b := atoi(fields[1])
		hb := atoi(fields[2])
		if st.proposing && b == st.curBal {
			next := px.nextBallot(p, maxInt(hb, st.curBal))
			st.promises = nil
			st.inPhase2 = false
			if px.MaxBallot > 0 && next > px.MaxBallot {
				st.proposing = false
				st.gaveUp = true
			} else {
				st.curBal = next
				sends = append(sends, model.Broadcast(p, px.Procs, pxPrepare+"|"+strconv.Itoa(next))...)
			}
		}

	case pxAccept:
		b := atoi(fields[1])
		v := model.Value(atoi(fields[2]))
		if b >= st.promised {
			st.promised = b
			st.accBal = b
			st.accVal = v
			body := fmt.Sprintf("%s|%d|%d", pxAccepted, b, v)
			sends = append(sends, model.Broadcast(p, px.Procs, body)...)
		} else {
			sends = append(sends, px.nack(b, st))
		}

	case pxAccepted:
		b := atoi(fields[1])
		v := model.Value(atoi(fields[2]))
		if b > st.learnBal {
			st.learnBal = b
			st.learnVal = v
			st.learnSet = map[int]bool{}
		}
		if b == st.learnBal {
			st.learnSet[int(m.From)] = true
			if len(st.learnSet) >= px.Quorum() && !st.out.Decided() {
				st.out = model.OutputOf(st.learnVal)
			}
		}
	}
	return sends
}

func (px *PaxosSynod) nack(b int, st *paxosState) model.Message {
	body := fmt.Sprintf("%s|%d|%d", pxNack, b, st.promised)
	return model.Message{To: px.owner(b), Body: body}
}

func (st *paxosState) addPromise(pr promise) {
	for _, q := range st.promises {
		if q.from == pr.from {
			return
		}
	}
	st.promises = append(st.promises, pr)
	sort.Slice(st.promises, func(i, j int) bool { return st.promises[i].from < st.promises[j].from })
}

func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		panic(fmt.Sprintf("protocols: malformed paxos message field %q", s))
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
