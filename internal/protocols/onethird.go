package protocols

import (
	"fmt"
	"sort"

	"github.com/flpsim/flp/internal/enc"
	"github.com/flpsim/flp/internal/model"
)

// OneThirdRule is the coordinator-free round-based consensus rule from the
// Heard-Of literature (Charron-Bost & Schiper): in every round each
// process broadcasts its estimate, waits for more than 2N/3 round-r
// estimates, adopts the most frequent one (ties to 0), and decides an
// estimate that appeared more than 2N/3 times.
//
// It is the third distinct architecture in the protocol suite after the
// proposer race (Paxos) and the coin rounds (Ben-Or): no leader, no coin,
// pure quorum arithmetic. Safety holds under full asynchrony; termination
// needs rounds in which enough processes hear the same > 2N/3 set — which
// the Theorem 1 adversary is free to never grant, making it another
// livelock specimen, while fair schedulers from unanimous-enough inputs
// decide in a round or two.
type OneThirdRule struct {
	// Procs is the number of processes N ≥ 3 (the rule needs two distinct
	// thirds).
	Procs int
}

// NewOneThirdRule returns a One-Third-Rule instance for n processes.
func NewOneThirdRule(n int) *OneThirdRule { return &OneThirdRule{Procs: n} }

type otrState struct {
	me    model.PID
	x     model.Value
	round int
	inbox map[string]votes // "r" → estimates received for round r
	out   model.Output
}

func (s *otrState) Key() string {
	var b enc.Builder
	b.Int(int(s.me)).Uint8(uint8(s.x)).Int(s.round).Uint8(uint8(s.out))
	keys := make([]string, 0, len(s.inbox))
	for k := range s.inbox {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.Str(k).Str(s.inbox[k].key())
	}
	return b.String()
}

func (s *otrState) Output() model.Output { return s.out }

func (s *otrState) clone() *otrState {
	ns := *s
	ns.inbox = make(map[string]votes, len(s.inbox))
	for k, v := range s.inbox {
		ns.inbox[k] = v
	}
	return &ns
}

// Name implements model.Protocol.
func (o *OneThirdRule) Name() string { return fmt.Sprintf("onethird(n=%d)", o.Procs) }

// N implements model.Protocol.
func (o *OneThirdRule) N() int { return o.Procs }

// Init implements model.Protocol.
func (o *OneThirdRule) Init(p model.PID, input model.Value) model.State {
	return &otrState{me: p, x: input, inbox: map[string]votes{}}
}

// threshold returns the "more than 2N/3" count.
func (o *OneThirdRule) threshold() int { return 2*o.Procs/3 + 1 }

func otrBody(r int, v model.Value) string { return fmt.Sprintf("E|%d|%d", r, v) }

// Step implements model.Protocol.
func (o *OneThirdRule) Step(p model.PID, s model.State, m *model.Message) (model.State, []model.Message) {
	st := s.(*otrState).clone()
	var sends []model.Message

	if st.round == 0 {
		st.round = 1
		sends = append(sends, model.Broadcast(p, o.Procs, otrBody(1, st.x))...)
	}

	if m != nil {
		var r int
		var v int
		if n, _ := fmt.Sscanf(m.Body, "E|%d|%d", &r, &v); n == 2 && r >= st.round {
			k := fmt.Sprintf("%d", r)
			st.inbox[k] = st.inbox[k].with(m.From, model.Value(v))
		}
	}

	for {
		k := fmt.Sprintf("%d", st.round)
		got := st.inbox[k]
		if len(got) < o.threshold() {
			break
		}
		zero, one := got.count(model.V0), got.count(model.V1)
		// Adopt the most frequent estimate, ties to 0.
		if one > zero {
			st.x = model.V1
		} else {
			st.x = model.V0
		}
		// Decide on a supermajority estimate.
		if !st.out.Decided() {
			if zero >= o.threshold() {
				st.out = model.Decided0
			} else if one >= o.threshold() {
				st.out = model.Decided1
			}
		}
		// Next round; prune stale entries.
		st.round++
		for kk := range st.inbox {
			var rr int
			fmt.Sscanf(kk, "%d", &rr)
			if rr < st.round {
				delete(st.inbox, kk)
			}
		}
		sends = append(sends, model.Broadcast(p, o.Procs, otrBody(st.round, st.x))...)
	}
	return st, sends
}
