package protocols

import (
	"fmt"

	"github.com/flpsim/flp/internal/enc"
	"github.com/flpsim/flp/internal/model"
)

// ThreePhaseCommit is Skeen's three-phase commit over the asynchronous
// model: votes, then a PRECOMMIT round acknowledged by every participant,
// then COMMIT. In the timeout-equipped models it was designed for, the
// extra phase makes it non-blocking: a prepared participant can take over
// a dead coordinator. In the paper's timeout-free asynchronous model no
// participant can ever distinguish a dead coordinator from a slow one, so
// the takeover rule has nothing to trigger on — 3PC buys a longer message
// exchange and keeps the very same window of vulnerability. Experiment E6
// puts the two protocols side by side.
type ThreePhaseCommit struct {
	// Procs is the number of processes N ≥ 2. Process 0 coordinates.
	Procs int
}

const (
	bodyPrecommit = "PRECOMMIT"
	bodyAck       = "ACK"
)

// tpc3Phase tracks the coordinator's progress.
type tpc3Phase uint8

const (
	tpc3Voting    tpc3Phase = iota // collecting votes
	tpc3Preparing                  // PRECOMMIT sent, collecting acks
	tpc3Done                       // verdict broadcast
)

type tpc3State struct {
	me    model.PID
	input model.Value
	out   model.Output

	// Coordinator.
	phase tpc3Phase
	got   votes        // votes collected (including own)
	acks  map[int]bool // participants that acknowledged PRECOMMIT

	// Participant.
	sentVote bool
	prepared bool // PRECOMMIT received, ACK sent
}

func (s *tpc3State) Key() string {
	var b enc.Builder
	b.Int(int(s.me)).Uint8(uint8(s.input)).Uint8(uint8(s.out))
	b.Uint8(uint8(s.phase)).Str(s.got.key()).IntSet(s.acks)
	b.Bool(s.sentVote).Bool(s.prepared)
	return b.String()
}

func (s *tpc3State) Output() model.Output { return s.out }

func (s *tpc3State) clone() *tpc3State {
	ns := *s
	ns.acks = make(map[int]bool, len(s.acks))
	for k, v := range s.acks {
		ns.acks[k] = v
	}
	return &ns
}

// NewThreePhaseCommit returns a 3PC instance for n processes.
func NewThreePhaseCommit(n int) *ThreePhaseCommit { return &ThreePhaseCommit{Procs: n} }

// Name implements model.Protocol.
func (t *ThreePhaseCommit) Name() string { return fmt.Sprintf("3pc(n=%d)", t.Procs) }

// N implements model.Protocol.
func (t *ThreePhaseCommit) N() int { return t.Procs }

// Init implements model.Protocol.
func (t *ThreePhaseCommit) Init(p model.PID, input model.Value) model.State {
	s := &tpc3State{me: p, input: input, got: votes{}, acks: map[int]bool{}}
	if p == Coordinator {
		s.got = votes{p: input}
	}
	return s
}

// Step implements model.Protocol.
func (t *ThreePhaseCommit) Step(p model.PID, s model.State, m *model.Message) (model.State, []model.Message) {
	st := s.(*tpc3State).clone()
	var sends []model.Message

	if p == Coordinator {
		if m != nil {
			switch {
			case m.Body == bodyAck:
				st.acks[int(m.From)] = true
			default:
				if v, ok := parseVote(m.Body); ok {
					st.got = st.got.with(m.From, v)
				}
			}
		}
		switch st.phase {
		case tpc3Voting:
			if len(st.got) == t.Procs {
				if st.got.count(model.V0) > 0 {
					st.phase = tpc3Done
					st.out = model.Decided0
					sends = append(sends, model.BroadcastOthers(p, t.Procs, bodyAbort)...)
				} else {
					st.phase = tpc3Preparing
					sends = append(sends, model.BroadcastOthers(p, t.Procs, bodyPrecommit)...)
				}
			}
		case tpc3Preparing:
			if len(st.acks) == t.Procs-1 {
				st.phase = tpc3Done
				st.out = model.Decided1
				sends = append(sends, model.BroadcastOthers(p, t.Procs, bodyCommit)...)
			}
		}
		return st, sends
	}

	// Participant.
	if !st.sentVote {
		st.sentVote = true
		sends = append(sends, model.Message{To: Coordinator, Body: voteBody(st.input)})
	}
	if m != nil {
		switch m.Body {
		case bodyPrecommit:
			if !st.prepared {
				st.prepared = true
				sends = append(sends, model.Message{To: Coordinator, Body: bodyAck})
			}
		case bodyCommit:
			if !st.out.Decided() {
				st.out = model.Decided1
			}
		case bodyAbort:
			if !st.out.Decided() {
				st.out = model.Decided0
			}
		}
	}
	return st, sends
}
