package protocols

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/flpsim/flp/internal/model"
)

// votes is an immutable map from process id to the vote received from it.
// The shared currency of the broadcast-and-collect protocols below.
type votes map[model.PID]model.Value

// with returns a copy of v with p's vote set.
func (v votes) with(p model.PID, val model.Value) votes {
	nv := make(votes, len(v)+1)
	for k, x := range v {
		nv[k] = x
	}
	nv[p] = val
	return nv
}

// key returns the canonical encoding: sorted "pid:val" pairs.
func (v votes) key() string {
	ids := make([]int, 0, len(v))
	for p := range v {
		ids = append(ids, int(p))
	}
	sort.Ints(ids)
	var sb strings.Builder
	for i, id := range ids {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d:%d", id, v[model.PID(id)])
	}
	return sb.String()
}

// count returns how many collected votes equal val.
func (v votes) count(val model.Value) int {
	n := 0
	for _, x := range v {
		if x == val {
			n++
		}
	}
	return n
}

// majority returns the majority value of the collected votes, ties going
// to 0. It is the "agreed-upon rule" decision function used throughout.
func (v votes) majority() model.Value {
	if v.count(model.V1) > v.count(model.V0) {
		return model.V1
	}
	return model.V0
}

// voteBody encodes a vote message body; parseVote decodes it.
func voteBody(v model.Value) string { return "V" + strconv.Itoa(int(v)) }

func parseVote(body string) (model.Value, bool) {
	if len(body) != 2 || body[0] != 'V' {
		return 0, false
	}
	switch body[1] {
	case '0':
		return model.V0, true
	case '1':
		return model.V1, true
	}
	return 0, false
}
