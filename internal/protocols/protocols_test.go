package protocols_test

import (
	"testing"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
	"github.com/flpsim/flp/internal/runtime"
)

func rr() runtime.Scheduler { return runtime.NewRoundRobin() }

func mustRun(t *testing.T, pr model.Protocol, in model.Inputs, sched runtime.Scheduler, opt runtime.RunOptions) *runtime.RunResult {
	t.Helper()
	res, err := runtime.Run(pr, in, sched, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTrivial0AlwaysDecidesZero(t *testing.T) {
	pr := protocols.NewTrivial0(3)
	for _, in := range model.AllInputs(3) {
		res := mustRun(t, pr, in, rr(), runtime.RunOptions{})
		if !res.AllLiveDecided {
			t.Fatalf("inputs %s: not all decided", in)
		}
		if v, ok := res.DecidedValue(); !ok || v != model.V0 {
			t.Errorf("inputs %s: decided %v, want 0", in, v)
		}
	}
}

func TestWaitAllDecidesTrueMajority(t *testing.T) {
	pr := protocols.NewWaitAll(3)
	for _, in := range model.AllInputs(3) {
		res := mustRun(t, pr, in, rr(), runtime.RunOptions{})
		want := model.V0
		if in.Count(model.V1)*2 > 3 {
			want = model.V1
		}
		if v, ok := res.DecidedValue(); !ok || v != want {
			t.Errorf("inputs %s: decided %v (ok=%v), want %v", in, v, ok, want)
		}
	}
}

func TestWaitAllBlocksOnOneCrash(t *testing.T) {
	pr := protocols.NewWaitAll(3)
	res := mustRun(t, pr, model.Inputs{0, 1, 1}, rr(),
		runtime.RunOptions{CrashAfter: map[model.PID]int{2: 0}})
	if !res.Blocked || len(res.Decisions) != 0 {
		t.Errorf("WaitAll with a dead process: blocked=%v decisions=%v, want blocked with none",
			res.Blocked, res.Decisions)
	}
}

func TestNaiveMajorityToleratesOneCrash(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	for victim := 0; victim < 3; victim++ {
		res := mustRun(t, pr, model.Inputs{0, 1, 1}, rr(),
			runtime.RunOptions{CrashAfter: map[model.PID]int{model.PID(victim): 0}})
		if !res.AllLiveDecided {
			t.Errorf("victim p%d: live processes did not decide", victim)
		}
	}
}

func TestTwoPhaseCommitSemantics(t *testing.T) {
	pr := protocols.NewTwoPhaseCommit(3)
	for _, in := range model.AllInputs(3) {
		res := mustRun(t, pr, in, rr(), runtime.RunOptions{})
		want := model.V1
		if in.Count(model.V0) > 0 {
			want = model.V0 // any abort vote aborts the transaction
		}
		if v, ok := res.DecidedValue(); !ok || v != want {
			t.Errorf("inputs %s: decided %v (ok=%v), want %v", in, v, ok, want)
		}
		if res.AgreementViolated {
			t.Errorf("inputs %s: agreement violated", in)
		}
	}
}

func TestTwoPhaseCommitWindowOfVulnerability(t *testing.T) {
	// The delay of a single process — the coordinator — blocks everyone,
	// exactly the window the paper's introduction describes.
	pr := protocols.NewTwoPhaseCommit(3)
	res := mustRun(t, pr, model.Inputs{1, 1, 1},
		runtime.Delayed{Victim: protocols.Coordinator, Inner: runtime.NewRoundRobin()},
		runtime.RunOptions{})
	if !res.Blocked {
		t.Error("2PC decided despite a delayed coordinator")
	}
	if len(res.Decisions) != 0 {
		t.Errorf("decisions = %v, want none", res.Decisions)
	}
	// A delayed participant also blocks: the coordinator waits for all
	// votes. 2PC has no fault tolerance at all.
	res2 := mustRun(t, pr, model.Inputs{1, 1, 1},
		runtime.Delayed{Victim: 2, Inner: runtime.NewRoundRobin()}, runtime.RunOptions{})
	if !res2.Blocked {
		t.Error("2PC decided despite a delayed participant")
	}
}

func TestPaxosValidityAndAgreement(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	for _, in := range model.AllInputs(3) {
		res := mustRun(t, pr, in, rr(), runtime.RunOptions{MaxSteps: 50000})
		if !res.AllLiveDecided {
			t.Fatalf("inputs %s: round-robin Paxos did not decide", in)
		}
		if res.AgreementViolated {
			t.Fatalf("inputs %s: agreement violated", in)
		}
		v, ok := res.DecidedValue()
		if !ok {
			t.Fatalf("inputs %s: no unique decision", in)
		}
		// Validity: the decision is some process's input.
		if in.Count(v) == 0 {
			t.Errorf("inputs %s: decided %v, which nobody proposed", in, v)
		}
	}
}

func TestPaxosAgreementUnderRandomSchedulesAndCrashes(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	for victim := -1; victim < 3; victim++ {
		opt := runtime.RunOptions{MaxSteps: 100000}
		if victim >= 0 {
			opt.CrashAfter = map[model.PID]int{model.PID(victim): 4}
		}
		agg, err := runtime.RunMany(pr, model.Inputs{0, 1, 1},
			func() runtime.Scheduler { return runtime.RandomFair{} }, opt, 25)
		if err != nil {
			t.Fatal(err)
		}
		if agg.Violations != 0 {
			t.Fatalf("victim=%d: %d agreement violations", victim, agg.Violations)
		}
		if agg.Decided != agg.Runs {
			t.Errorf("victim=%d: only %d/%d runs decided", victim, agg.Decided, agg.Runs)
		}
	}
}

func TestPaxosBoundedGivesUp(t *testing.T) {
	// With MaxBallot 0-ish small, proposers exhaust their ballots; safety
	// must hold even if no decision is reached.
	pr := protocols.NewBoundedPaxosSynod(3, 1)
	res := mustRun(t, pr, model.Inputs{0, 1, 1}, rr(), runtime.RunOptions{MaxSteps: 5000})
	if res.AgreementViolated {
		t.Error("bounded Paxos violated agreement")
	}
}

func TestPaxosQuorum(t *testing.T) {
	if q := protocols.NewPaxosSynod(3).Quorum(); q != 2 {
		t.Errorf("Quorum(3) = %d, want 2", q)
	}
	if q := protocols.NewPaxosSynod(5).Quorum(); q != 3 {
		t.Errorf("Quorum(5) = %d, want 3", q)
	}
}

func TestBenOrTerminatesAcrossSeeds(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		pr := protocols.NewBenOrDeterministic(3, seed)
		res := mustRun(t, pr, model.Inputs{0, 1, 1}, rr(), runtime.RunOptions{MaxSteps: 30000})
		if !res.AllLiveDecided {
			t.Errorf("seed %d: Ben-Or did not decide within 30000 round-robin steps", seed)
		}
		if res.AgreementViolated {
			t.Errorf("seed %d: agreement violated", seed)
		}
	}
}

func TestBenOrValidity(t *testing.T) {
	// Unanimous inputs decide that value in round 1, no coin needed.
	for _, v := range []model.Value{model.V0, model.V1} {
		pr := protocols.NewBenOrDeterministic(3, 5)
		res := mustRun(t, pr, model.UniformInputs(3, v), rr(), runtime.RunOptions{MaxSteps: 5000})
		if got, ok := res.DecidedValue(); !ok || got != v {
			t.Errorf("unanimous %v: decided %v (ok=%v)", v, got, ok)
		}
	}
}

func TestBenOrToleratesMinorityCrashes(t *testing.T) {
	pr := protocols.NewBenOrDeterministic(5, 3)
	agg, err := runtime.RunMany(pr, model.Inputs{0, 1, 1, 0, 1},
		func() runtime.Scheduler { return runtime.RandomFair{} },
		runtime.RunOptions{MaxSteps: 50000, CrashAfter: map[model.PID]int{0: 0, 4: 2}},
		15)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Decided != agg.Runs || agg.Violations != 0 {
		t.Errorf("decided=%d/%d violations=%d", agg.Decided, agg.Runs, agg.Violations)
	}
}

func TestBenOrCoinDeterministic(t *testing.T) {
	a := protocols.NewBenOrDeterministic(3, 11)
	b := protocols.NewBenOrDeterministic(3, 11)
	for p := model.PID(0); p < 3; p++ {
		for r := 1; r <= 20; r++ {
			if a.Coin(p, r) != b.Coin(p, r) {
				t.Fatalf("coin not deterministic at (%d, %d)", p, r)
			}
		}
	}
	// The tape must not be round-parity periodic (the failure mode that
	// livelocks round-robin runs forever).
	same := 0
	for r := 1; r <= 64; r++ {
		if a.Coin(0, r) == a.Coin(0, r+2) {
			same++
		}
	}
	if same == 64 || same == 0 {
		t.Errorf("coin tape is period-2 correlated (%d/64 matches)", same)
	}
}

func TestBenOrFaults(t *testing.T) {
	for n, want := range map[int]int{2: 0, 3: 1, 5: 2, 7: 3} {
		if got := protocols.NewBenOrDeterministic(n, 0).Faults(); got != want {
			t.Errorf("Faults(n=%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := protocols.Names()
	if len(names) < 6 {
		t.Fatalf("registry has %d protocols: %v", len(names), names)
	}
	for _, name := range names {
		f, ok := protocols.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		// Protocols differ in their minimum size; 4 satisfies all of them.
		pr, err := f(4)
		if err != nil {
			t.Fatalf("factory %q: %v", name, err)
		}
		if pr.N() != 4 {
			t.Errorf("factory %q built N=%d", name, pr.N())
		}
	}
	if _, ok := protocols.Lookup("nonexistent"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
	if _, err := mustFactory(t, "paxos")(2); err == nil {
		t.Error("paxos factory accepted n=2")
	}
	if _, err := mustFactory(t, "naivemajority")(2); err == nil {
		t.Error("naivemajority factory accepted n=2")
	}
}

func mustFactory(t *testing.T, name string) protocols.Factory {
	t.Helper()
	f, ok := protocols.Lookup(name)
	if !ok {
		t.Fatalf("Lookup(%q) failed", name)
	}
	return f
}

func TestProtocolNames(t *testing.T) {
	checks := map[string]model.Protocol{
		"trivial0(n=3)":      protocols.NewTrivial0(3),
		"waitall(n=3)":       protocols.NewWaitAll(3),
		"naivemajority(n=3)": protocols.NewNaiveMajority(3),
		"2pc(n=3)":           protocols.NewTwoPhaseCommit(3),
		"paxos(n=3)":         protocols.NewPaxosSynod(3),
	}
	for want, pr := range checks {
		if pr.Name() != want {
			t.Errorf("Name = %q, want %q", pr.Name(), want)
		}
	}
}
