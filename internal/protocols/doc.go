// Package protocols implements concrete consensus protocol attempts over
// the FLP system model. They are the specimens the checkers, the Theorem 1
// adversary, and the benchmarks operate on, chosen to cover the corners of
// the paper's definitions:
//
//   - [Trivial0] always decides 0 — it violates nontriviality (partial-
//     correctness condition 2), the case the paper explicitly rules out.
//   - [WaitAll] decides the majority of all N inputs — safe and nontrivial
//     but not fault tolerant: it is not "totally correct in spite of one
//     fault" because a single crash blocks it, and consistently with
//     Lemma 2's hypotheses all its initial configurations are univalent.
//   - [NaiveMajority] decides after hearing N-1 votes — fault tolerant in
//     the naive sense but it violates agreement (condition 1); the checker
//     produces a two-decision witness.
//   - [TwoPhaseCommit] is the introduction's transaction-commit problem:
//     safe, nontrivial, and possessing the "window of vulnerability" the
//     paper says every commit protocol must have.
//   - [PaxosSynod] is a deterministic single-decree Paxos synod: safe
//     under full asynchrony, live under benign scheduling, and the
//     canonical real-world system that responds to FLP by giving up
//     guaranteed termination — the Theorem 1 adversary livelocks it.
//   - [BenOrDeterministic] is Ben-Or's protocol with its coin flips drawn
//     from a fixed pseudo-random tape, making it a deterministic automaton
//     in the paper's model while preserving the round structure.
//
// All protocols here are deterministic automata satisfying the model
// contract: immutable states with canonical keys and write-once output
// registers.
package protocols
