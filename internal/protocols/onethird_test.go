package protocols_test

import (
	"errors"
	"testing"

	"github.com/flpsim/flp/internal/adversary"
	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/modeltest"
	"github.com/flpsim/flp/internal/protocols"
	"github.com/flpsim/flp/internal/runtime"
)

func TestOneThirdConformance(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		modeltest.CheckConformance(t, protocols.NewOneThirdRule(4), model.Inputs{0, 1, 1, 0}, 120, seed)
		modeltest.CheckConformance(t, protocols.NewOneThirdRule(7), model.Inputs{0, 1, 1, 0, 1, 0, 1}, 120, seed)
	}
}

func TestOneThirdUnanimousValidity(t *testing.T) {
	for _, v := range []model.Value{model.V0, model.V1} {
		pr := protocols.NewOneThirdRule(4)
		res := mustRun(t, pr, model.UniformInputs(4, v), rr(), runtime.RunOptions{MaxSteps: 20000})
		if got, ok := res.DecidedValue(); !ok || got != v {
			t.Errorf("unanimous %v: decided %v (ok=%v)", v, got, ok)
		}
	}
}

func TestOneThirdAgreementUnderRandomSchedules(t *testing.T) {
	pr := protocols.NewOneThirdRule(4)
	agg, err := runtime.RunMany(pr, model.Inputs{0, 1, 1, 0},
		func() runtime.Scheduler { return runtime.RandomFair{} },
		runtime.RunOptions{MaxSteps: 100000}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Violations != 0 {
		t.Fatalf("%d agreement violations", agg.Violations)
	}
	if agg.Decided != agg.Runs {
		t.Errorf("only %d/%d runs decided", agg.Decided, agg.Runs)
	}
}

func TestOneThirdToleratesOneCrashOfSeven(t *testing.T) {
	// Threshold 2·7/3+1 = 5 of 7: up to 2 crashes leave a quorum.
	pr := protocols.NewOneThirdRule(7)
	agg, err := runtime.RunMany(pr, model.Inputs{0, 1, 1, 0, 1, 1, 0},
		func() runtime.Scheduler { return runtime.RandomFair{} },
		runtime.RunOptions{MaxSteps: 200000, CrashAfter: map[model.PID]int{0: 0, 6: 2}}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Violations != 0 || agg.Decided != agg.Runs {
		t.Errorf("decided=%d/%d violations=%d", agg.Decided, agg.Runs, agg.Violations)
	}
}

func TestOneThirdBivalentAndStallable(t *testing.T) {
	// Mixed inputs are certifiably bivalent, and the Theorem 1 adversary
	// can keep the quorum samples mixed forever: the third livelock
	// specimen, with neither a leader to duel nor a coin to fight.
	pr := protocols.NewOneThirdRule(4)
	in := model.Inputs{0, 0, 1, 1}
	c := model.MustInitial(pr, in)
	_, _, f0, f1 := explore.ProbeValencies(pr, c, explore.ProbeOptions{})
	if !f0 || !f1 {
		t.Fatalf("mixed-input OTR not certified bivalent (found0=%v found1=%v)", f0, f1)
	}

	probe := explore.ProbeOptions{}
	adv := adversary.New(pr, adversary.Options{
		Stages:  5,
		Probe:   &probe,
		Search:  explore.Options{MaxConfigs: 2000},
		Valency: explore.Options{MaxConfigs: 1200},
	})
	res, err := adv.RunFromInputs(in)
	if err != nil {
		var serr *adversary.StageError
		if errors.As(err, &serr) {
			t.Fatalf("adversary gave up at stage %d: %v", serr.Stage, err)
		}
		t.Fatal(err)
	}
	rep, err := adversary.Verify(pr, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DecidedCount != 0 || rep.Stages != 5 {
		t.Errorf("decided=%d stages=%d, want 0 and 5", rep.DecidedCount, rep.Stages)
	}
}

func TestOneThirdRegistryEntry(t *testing.T) {
	f, ok := protocols.Lookup("onethird")
	if !ok {
		t.Fatal("onethird not registered")
	}
	if _, err := f(3); err == nil {
		t.Error("onethird factory accepted n=3 (no fault tolerance)")
	}
	pr, err := f(4)
	if err != nil || pr.N() != 4 {
		t.Errorf("factory: %v, N=%d", err, pr.N())
	}
}
