package protocols_test

import (
	"strings"
	"testing"

	"github.com/flpsim/flp/internal/protocols"
	"github.com/flpsim/flp/internal/protogen"
)

// TestLookupGenerated pins the gen: passthrough: a generated protocol's
// name alone must resolve through the registry — that is the property the
// distributed engine's workers rely on to rebuild generated protocols.
func TestLookupGenerated(t *testing.T) {
	sp := protogen.Derive(42, protogen.DefaultDials(3))
	name := sp.Name()

	factory, ok := protocols.Lookup(name)
	if !ok {
		t.Fatalf("Lookup(%q) did not resolve", name)
	}
	pr, err := factory(sp.N)
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if pr.Name() != name {
		t.Errorf("rebuilt protocol name %q, want %q", pr.Name(), name)
	}
	if pr.N() != sp.N {
		t.Errorf("rebuilt protocol N = %d, want %d", pr.N(), sp.N)
	}

	// A mismatched process count is a caller bug, not a silent resize.
	if _, err := factory(sp.N + 1); err == nil {
		t.Error("factory accepted a process count the spec does not carry")
	}

	// Malformed gen: names resolve to a factory (the prefix routes them)
	// but the factory reports the decode error.
	factory, ok = protocols.Lookup("gen:garbage")
	if !ok {
		t.Fatal("gen: prefix did not route to the passthrough")
	}
	if _, err := factory(3); err == nil {
		t.Error("malformed gen: name built a protocol")
	}

	// Non-generated names still hit the static table only.
	if _, ok := protocols.Lookup("no-such-protocol"); ok {
		t.Error("unknown plain name resolved")
	}
	if !strings.HasPrefix(name, protogen.NamePrefix) {
		t.Fatalf("generated name %q lacks the %q prefix", name, protogen.NamePrefix)
	}
}
