package explore_test

import (
	"reflect"
	"sync"
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// TestCacheConcurrentStress hammers one shared valency Cache from many
// goroutines over an overlapping working set, interleaving Classify with
// the Stats and Len accessors. Every goroutine must observe the exact
// ValencyInfo the sequential oracle computes, and the counters must
// reconcile: hits + misses == lookups, Len <= distinct configurations.
// Run under -race (see the Makefile's test-race target) this is the
// package's data-race probe for the cache and the Config key/hash
// atomics.
func TestCacheConcurrentStress(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	var cfgs []*model.Config
	explore.Explore(pr, model.MustInitial(pr, model.Inputs{0, 1, 1}),
		explore.Options{MaxConfigs: 30, Workers: 1}, nil,
		func(cfg *model.Config, _ int, _ func() model.Schedule) bool {
			cfgs = append(cfgs, cfg)
			return false
		})
	if len(cfgs) < 10 {
		t.Fatalf("only %d configurations collected", len(cfgs))
	}

	opt := explore.Options{MaxConfigs: 3000, Workers: 1}
	want := make([]explore.ValencyInfo, len(cfgs))
	for i, c := range cfgs {
		want[i] = explore.Classify(pr, c, opt)
	}

	cache := explore.NewCache(pr, opt)
	goroutines := 8
	rounds := 6
	if testing.Short() {
		goroutines, rounds = 4, 2
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i := range cfgs {
					j := (i + g*5) % len(cfgs)
					got := cache.Classify(cfgs[j])
					if !reflect.DeepEqual(got, want[j]) {
						t.Errorf("goroutine %d: config %d classified %+v, sequential oracle %+v", g, j, got, want[j])
						return
					}
					cache.Stats()
					cache.Len()
				}
			}
		}(g)
	}
	wg.Wait()

	hits, misses := cache.Stats()
	lookups := goroutines * rounds * len(cfgs)
	if hits+misses != lookups {
		t.Errorf("hits %d + misses %d != lookups %d", hits, misses, lookups)
	}
	if misses < len(cfgs) {
		t.Errorf("misses %d < distinct configurations %d", misses, len(cfgs))
	}
	if cache.Len() != len(cfgs) {
		t.Errorf("cache Len = %d, want %d distinct configurations", cache.Len(), len(cfgs))
	}
}

// TestSmartCacheConcurrent repeats the stress on a probe-backed cache with
// an unbounded protocol, covering the ClassifySmart path under
// concurrency.
func TestSmartCacheConcurrent(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	cache := explore.NewSmartCache(pr, explore.Options{MaxConfigs: 300, Workers: 1}, explore.ProbeOptions{})
	var cfgs []*model.Config
	for _, in := range model.AllInputs(3) {
		cfgs = append(cfgs, model.MustInitial(pr, in))
	}
	want := make([]explore.ValencyInfo, len(cfgs))
	for i, c := range cfgs {
		want[i] = explore.ClassifySmart(pr, c, explore.Options{MaxConfigs: 300, Workers: 1}, explore.ProbeOptions{})
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range cfgs {
				j := (i + g) % len(cfgs)
				got := cache.Classify(cfgs[j])
				if got.Valency != want[j].Valency || got.Exact != want[j].Exact {
					t.Errorf("goroutine %d: config %d classified (%s, exact=%v), oracle (%s, exact=%v)",
						g, j, got.Valency, got.Exact, want[j].Valency, want[j].Exact)
				}
			}
		}(g)
	}
	wg.Wait()
	if cache.Len() != len(cfgs) {
		t.Errorf("cache Len = %d, want %d", cache.Len(), len(cfgs))
	}
}
