package explore_test

// Differential coverage for the two canonical key encodings of a
// configuration: the binary form (Config.KeyBytes/AppendKey, what the hot
// path hashes and dedups on) and the legacy escaped string form
// (Config.Key, what traces and the distexplore wire carry). The encodings
// must induce the same equality partition — no pair of configurations may
// agree under one encoding and disagree under the other — and the hash
// contract c.Hash() == HashKey(c.Key()) must hold at every visited
// configuration. The sweep runs every registry protocol plus generated
// protogen protocols, at workers 1 and 8, so `go test -race` exercises the
// concurrent key-cache fills of the parallel engine.

import (
	"bytes"
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protogen"
)

const keyDiffBudget = 800

// diffKeyEncodings sweeps the reachable set (budgeted) of every input
// vector of pr and cross-checks the two encodings at each configuration.
func diffKeyEncodings(t *testing.T, pr model.Protocol, workers int) {
	t.Helper()
	opt := explore.Options{MaxConfigs: keyDiffBudget, Workers: workers}
	byString := make(map[string]string) // string key → binary key
	byBinary := make(map[string]string) // binary key → string key
	for _, inp := range model.AllInputs(pr.N()) {
		root := model.MustInitial(pr, inp)
		explore.Explore(pr, root, opt, nil, func(c *model.Config, _ int, _ func() model.Schedule) bool {
			sk := c.Key()
			bk := string(c.KeyBytes())
			if got := c.AppendKey(nil); !bytes.Equal(got, []byte(bk)) {
				t.Fatalf("inputs %s: AppendKey diverges from KeyBytes", inp)
			}
			if h, hk := c.Hash(), model.HashKey(sk); h != hk {
				t.Fatalf("inputs %s: Hash()=%d but HashKey(Key())=%d; the sharding contract is broken", inp, h, hk)
			}
			// The two encodings partition identically iff the mapping
			// between them, accumulated across every configuration of every
			// sweep, stays a bijection.
			if prev, ok := byString[sk]; ok {
				if prev != bk {
					t.Fatalf("inputs %s: string key maps to two binary keys\nstring: %q", inp, sk)
				}
			} else {
				byString[sk] = bk
			}
			if prev, ok := byBinary[bk]; ok {
				if prev != sk {
					t.Fatalf("inputs %s: binary key maps to two string keys\nfirst: %q\nsecond: %q", inp, prev, sk)
				}
			} else {
				byBinary[bk] = sk
			}
			return false
		})
	}
	if len(byString) != len(byBinary) {
		t.Fatalf("encoding partitions differ in size: %d string keys vs %d binary keys", len(byString), len(byBinary))
	}
}

// TestKeyEncodingAgreementRegistry runs the differential over every
// registered protocol at its fixture size.
func TestKeyEncodingAgreementRegistry(t *testing.T) {
	for _, workers := range []int{1, 8} {
		for name := range atlasFixtureN {
			name := name
			t.Run(testName(name, workers), func(t *testing.T) {
				t.Parallel()
				diffKeyEncodings(t, registryFixture(t, name), workers)
			})
		}
	}
}

// TestKeyEncodingAgreementProtogen runs the differential over generated
// protocols — table automata and Ben-Or-template drawings whose state keys
// exercise separator and escape bytes differently from the hand-written
// registry.
func TestKeyEncodingAgreementProtogen(t *testing.T) {
	specs := []protogen.Spec{
		protogen.Derive(1, protogen.DefaultDials(3)),
		protogen.Derive(42, protogen.DefaultDials(3)),
		protogen.Derive(7, protogen.Dials{Template: protogen.TemplateBenOr, N: 3, MaxRound: 2}),
	}
	for _, workers := range []int{1, 8} {
		for _, sp := range specs {
			sp := sp
			t.Run(testName(sp.Name(), workers), func(t *testing.T) {
				t.Parallel()
				pr, err := protogen.New(sp)
				if err != nil {
					t.Fatalf("building %s: %v", sp.Name(), err)
				}
				diffKeyEncodings(t, pr, workers)
			})
		}
	}
}

func testName(base string, workers int) string {
	if workers == 1 {
		return base + "/w1"
	}
	return base + "/w8"
}
