package explore

import (
	"bytes"
	"fmt"
	"math"
	"sync"

	"github.com/flpsim/flp/internal/model"
)

// Atlas is a one-pass valency classification of an entire reachable
// configuration graph: the graph is materialized once (breadth-first from
// the root, the same expansion and admission rules as every engine in this
// package, so node order is byte-identical to Explore's visit order at any
// worker count), successor and predecessor adjacency is recorded in
// struct-of-arrays form keyed by dense node id, and every node's
// {reaches-a-0-decision, reaches-a-1-decision} bits are computed by one
// backward breadth-first propagation per decision value over the reverse
// edges. That classifies all V nodes exactly — 0-valent, 1-valent,
// bivalent, or stuck — in O(V+E), where the per-configuration Classify
// costs O(V+E) for a single node.
//
// An Atlas exists only for exhausted reachable sets: BuildAtlas reports
// ok=false instead of returning a truncated graph, so every answer an Atlas
// gives is exact and callers fall back to budgeted per-configuration
// classification exactly when the state space exceeds the budget. The
// backward distances double as shortest-witness lengths; witness schedules
// are recovered on demand by walking forward edges along decreasing
// distance, which makes every witness shortest in event count — the same
// length Classify's breadth-first search produces.
//
// An Atlas is immutable after construction and safe for concurrent use.
type Atlas struct {
	pr   model.Protocol
	opt  Options
	root *model.Config

	// index maps configurations to dense node ids (the interner tag is the
	// id). Node ids are assigned in breadth-first admission order; the root
	// is node 0.
	index *model.Interner
	cfgs  []*model.Config
	depth []int32

	// parent/parentVia are the breadth-first tree links: the node each
	// configuration was first reached from and the event that reached it.
	// They recover a shortest root-to-node schedule without storing one.
	parent    []int32
	parentVia []model.Event

	// Successor adjacency in CSR (compressed sparse row) form: node u's
	// out-edges are succTo[succStart[u]:succStart[u+1]] with event labels
	// succVia at the same indices, in canonical event order. Edges to
	// already-visited configurations are recorded too — valency is a
	// reachability property, and the breadth-first tree alone does not
	// carry cross-edge reachability.
	succStart []int32
	succTo    []int32
	succVia   []model.Event

	// Predecessor adjacency in CSR form: node v's in-edges are
	// predFrom[predStart[v]:predStart[v+1]]; predEdge holds each in-edge's
	// index into the successor arrays, so its event label is
	// succVia[predEdge[i]].
	predStart []int32
	predFrom  []int32
	predEdge  []int32

	// dist0[u] / dist1[u] is the length of a shortest schedule from u to a
	// configuration containing decision value 0 / 1, or -1 when none is
	// reachable. These are the decision bits: has0 = dist0 ≥ 0.
	dist0 []int32
	dist1 []int32

	// Store-loaded atlases (LoadAtlas) carry the persisted canonical-key
	// table instead of an interner, answer IDOf from a lazily built key
	// map, and materialize configurations on demand by replaying the
	// breadth-first tree under cfgMu. Built atlases keep index non-nil and
	// never touch these.
	keys      [][]byte
	byKeyOnce sync.Once
	byKey     map[string]int32
	cfgMu     sync.Mutex
}

// BuildAtlas materializes the reachable configuration graph of pr from
// root and classifies every node, within opt's budget. It reports ok=false
// — and builds nothing usable — when the reachable set exceeds
// opt.MaxConfigs or when opt.MaxDepth is set (depth-bounded reachability is
// root-relative, which a shared graph cannot answer); callers then fall
// back to per-configuration Classify under the same options, which is
// byte-identical in valency, exactness, and witness length whenever the
// atlas would have been available.
//
// The build honours opt.Workers exactly like ExploreFiltered: node
// expansion runs level-synchronously on a worker pool while a single
// coordinator merges successors in canonical order, so node ids, edges,
// and witnesses are byte-identical at every worker count.
func BuildAtlas(pr model.Protocol, root *model.Config, opt Options) (*Atlas, bool) {
	opt = opt.withDefaults()
	if opt.MaxDepth != 0 || opt.MaxConfigs >= math.MaxInt32 {
		return nil, false
	}
	a := &Atlas{
		pr:    pr,
		opt:   opt,
		root:  root,
		index: model.NewInterner(),
	}
	led := NewLedger(opt)
	a.index.InternTag(root, 0)
	a.admit(root, -1, model.Event{})
	a.succStart = append(a.succStart, 0) // CSR sentinel: node u's edges are succStart[u]:succStart[u+1]

	expand := func(n node, dst []Successor) []Successor { return AppendSuccessors(pr, n.cfg, nil, dst) }
	pool := &succPool{}
	var levelScratch []node
	var seqBuf []Successor
	for start, end := 0, 1; start < end; start, end = end, len(a.cfgs) {
		var exps [][]Successor
		if opt.Workers > 1 {
			if cap(levelScratch) < end-start {
				levelScratch = make([]node, end-start)
			}
			level := levelScratch[:end-start]
			for i := range level {
				level[i] = node{cfg: a.cfgs[start+i]}
			}
			exps = expandLevel(level, expand, opt.Workers, pool)
		}
		for u := start; u < end; u++ {
			var succs []Successor
			if exps != nil {
				succs = exps[u-start]
			} else {
				seqBuf = AppendSuccessors(pr, a.cfgs[u], nil, seqBuf)
				succs = seqBuf
			}
			for _, s := range succs {
				id := int32(len(a.cfgs))
				if got, fresh := a.index.InternTag(s.Cfg, uint64(id)); fresh {
					if !led.Admit() {
						return nil, false // budget exceeded: no truncated atlases
					}
					a.admit(s.Cfg, int32(u), s.Via)
				} else {
					id = int32(got)
				}
				a.succTo = append(a.succTo, id)
				a.succVia = append(a.succVia, s.Via)
			}
			a.succStart = append(a.succStart, int32(len(a.succTo)))
		}
		if exps != nil {
			pool.recycle(exps)
		}
	}

	a.buildPred()
	a.dist0 = a.distToValue(model.V0)
	a.dist1 = a.distToValue(model.V1)
	return a, true
}

// admit appends one node's struct-of-arrays entries (everything except the
// successor CSR, which closes when the node is expanded).
func (a *Atlas) admit(c *model.Config, parent int32, via model.Event) {
	d := int32(0)
	if parent >= 0 {
		d = a.depth[parent] + 1
	}
	a.cfgs = append(a.cfgs, c)
	a.depth = append(a.depth, d)
	a.parent = append(a.parent, parent)
	a.parentVia = append(a.parentVia, via)
}

// buildPred inverts the successor CSR into the predecessor CSR by the
// usual two-pass count-then-fill.
func (a *Atlas) buildPred() {
	V := len(a.cfgs)
	a.predStart = make([]int32, V+1)
	for _, v := range a.succTo {
		a.predStart[v+1]++
	}
	for i := 0; i < V; i++ {
		a.predStart[i+1] += a.predStart[i]
	}
	a.predFrom = make([]int32, len(a.succTo))
	a.predEdge = make([]int32, len(a.succTo))
	cur := make([]int32, V)
	copy(cur, a.predStart[:V])
	for u := 0; u < V; u++ {
		for ei := a.succStart[u]; ei < a.succStart[u+1]; ei++ {
			v := a.succTo[ei]
			a.predFrom[cur[v]] = int32(u)
			a.predEdge[cur[v]] = ei
			cur[v]++
		}
	}
}

// distToValue is the backward propagation: a multi-source breadth-first
// search over reverse edges from every node whose configuration contains
// decision value val. dist[u] is then the length of a shortest schedule
// from u to a val-decision, -1 when unreachable — node u's "has val" bit
// and witness length in one array.
func (a *Atlas) distToValue(val model.Value) []int32 {
	// Only ever called during construction, where every configuration is
	// materialized; loaded atlases carry their distance columns in the
	// artifact and never run this.
	seed := func(id int32) bool {
		for _, d := range a.cfgs[id].DecisionValues() {
			if d == val {
				return true
			}
		}
		return false
	}
	return a.backwardBFS(seed, nil)
}

// backwardBFS runs the shared reverse fixpoint: dist 0 at every seed node,
// +1 across each usable reverse edge. The seed predicate is keyed by node
// id so it can run off persisted columns without materializing
// configurations. A nil usable admits every edge; distDecidedAvoiding
// passes the p-free restriction.
func (a *Atlas) backwardBFS(seed func(int32) bool, usable func(model.Event) bool) []int32 {
	V := len(a.cfgs)
	dist := make([]int32, V)
	queue := make([]int32, 0, V)
	for i := range dist {
		if seed(int32(i)) {
			queue = append(queue, int32(i))
		} else {
			dist[i] = -1
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for ei := a.predStart[v]; ei < a.predStart[v+1]; ei++ {
			u := a.predFrom[ei]
			if dist[u] >= 0 {
				continue
			}
			if usable != nil && !usable(a.succVia[a.predEdge[ei]]) {
				continue
			}
			dist[u] = dist[v] + 1
			queue = append(queue, u)
		}
	}
	return dist
}

// distDecidedAvoiding returns, for every node, the length of a shortest
// schedule to a configuration with any decision value in which process p
// takes no steps, -1 when no such run exists. This is the σ of the Lemma 3
// proof's Case 2 ("some finite deciding run from C0 in which p takes no
// steps"), answered for all nodes by one backward pass instead of one
// forward search per node.
func (a *Atlas) distDecidedAvoiding(p model.PID) []int32 {
	// A node contains a decision value exactly when one of its decision
	// distances is zero, so the seed runs off the distance columns — which
	// loaded atlases have even before any configuration is materialized.
	seed := func(id int32) bool { return a.dist0[id] == 0 || a.dist1[id] == 0 }
	return a.backwardBFS(seed, func(e model.Event) bool { return e.P != p })
}

// Len returns the number of nodes — the size of the exhausted reachable
// set.
func (a *Atlas) Len() int { return len(a.cfgs) }

// Edges returns the number of recorded transitions.
func (a *Atlas) Edges() int { return len(a.succTo) }

// Root returns the configuration the atlas was built from.
func (a *Atlas) Root() *model.Config { return a.root }

// Config returns the configuration of node id. On a built atlas every
// configuration is already materialized; on a store-loaded atlas the
// parent chain is replayed (and verified against the persisted canonical
// keys) on first access, so callers that never touch configurations —
// censuses, valencies, witness lengths — pay no replay at all.
func (a *Atlas) Config(id int32) *model.Config {
	if a.index != nil {
		return a.cfgs[id]
	}
	a.cfgMu.Lock()
	defer a.cfgMu.Unlock()
	return a.materialize(id)
}

// materialize replays node id's breadth-first parent chain down from the
// deepest already-materialized ancestor. Caller holds cfgMu.
func (a *Atlas) materialize(id int32) *model.Config {
	if a.cfgs[id] != nil {
		return a.cfgs[id]
	}
	// Collect the unmaterialized suffix of the parent chain, then replay
	// it forward.
	chain := []int32{id}
	for p := a.parent[id]; a.cfgs[p] == nil; p = a.parent[p] {
		chain = append(chain, p)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		u := chain[i]
		c, err := model.Apply(a.pr, a.cfgs[a.parent[u]], a.parentVia[u])
		if err != nil {
			panic(fmt.Sprintf("explore: loaded atlas replay failed at node %d: %v", u, err))
		}
		if !bytes.Equal(c.KeyBytes(), a.keys[u]) {
			panic(fmt.Sprintf("explore: loaded atlas replay diverged at node %d", u))
		}
		a.cfgs[u] = c
	}
	return a.cfgs[id]
}

// IDOf returns the node id of c. Every configuration reachable from the
// root is present; ok=false means c is not reachable from the root (or is
// the product of a different protocol).
func (a *Atlas) IDOf(c *model.Config) (int32, bool) {
	if a.index != nil {
		tag, ok := a.index.Tag(c)
		if !ok {
			return 0, false
		}
		return int32(tag), true
	}
	a.byKeyOnce.Do(func() {
		m := make(map[string]int32, len(a.keys))
		for i, k := range a.keys {
			m[string(k)] = int32(i)
		}
		a.byKey = m
	})
	id, ok := a.byKey[string(c.KeyBytes())]
	return id, ok
}

// ValencyAt returns the exact valency class of node id.
func (a *Atlas) ValencyAt(id int32) Valency {
	has0, has1 := a.dist0[id] >= 0, a.dist1[id] >= 0
	switch {
	case has0 && has1:
		return Bivalent
	case has0:
		return ZeroValent
	case has1:
		return OneValent
	default:
		return Stuck
	}
}

// WitnessLen returns the length of a shortest schedule from node id to a
// configuration containing decision value d, ok=false when no d-decision is
// reachable. It equals the witness length Classify's breadth-first search
// finds, without materializing the schedule.
func (a *Atlas) WitnessLen(id int32, d model.Value) (int, bool) {
	dist := a.distFor(d)
	if dist[id] < 0 {
		return 0, false
	}
	return int(dist[id]), true
}

// Witness returns a shortest schedule from node id to a configuration
// containing decision value d, ok=false when none is reachable. Recovery
// walks forward edges in canonical order along strictly decreasing
// backward distance, so the schedule is deterministic and shortest.
func (a *Atlas) Witness(id int32, d model.Value) (model.Schedule, bool) {
	dist := a.distFor(d)
	if dist[id] < 0 {
		return nil, false
	}
	return a.descend(id, dist), true
}

func (a *Atlas) distFor(d model.Value) []int32 {
	if d == model.V0 {
		return a.dist0
	}
	return a.dist1
}

// descend recovers a shortest schedule from u to a dist-0 node by greedy
// descent: at each step, the first out-edge in canonical order whose head
// is one closer. The backward search guarantees such an edge exists at
// every node with dist > 0.
func (a *Atlas) descend(u int32, dist []int32) model.Schedule {
	return a.descendWhere(u, dist, nil)
}

// descendWhere is descend restricted to edges accepted by usable — the
// filter must be the one the dist array was computed under, so that a
// usable edge one closer exists at every node with dist > 0.
func (a *Atlas) descendWhere(u int32, dist []int32, usable func(model.Event) bool) model.Schedule {
	sigma := make(model.Schedule, 0, dist[u])
	for dist[u] > 0 {
		next := int32(-1)
		for ei := a.succStart[u]; ei < a.succStart[u+1]; ei++ {
			if usable != nil && !usable(a.succVia[ei]) {
				continue
			}
			if v := a.succTo[ei]; dist[v] >= 0 && dist[v] == dist[u]-1 {
				sigma = append(sigma, a.succVia[ei])
				next = v
				break
			}
		}
		if next < 0 {
			panic(fmt.Sprintf("explore: atlas distance invariant broken at node %d", u))
		}
		u = next
	}
	return sigma
}

// PathTo returns a shortest schedule from the root to node id, recovered
// from the breadth-first tree's parent pointers.
func (a *Atlas) PathTo(id int32) model.Schedule {
	sigma := make(model.Schedule, a.depth[id])
	for i := id; a.parent[i] >= 0; i = a.parent[i] {
		sigma[a.depth[i]-1] = a.parentVia[i]
	}
	return sigma
}

// InfoAt returns node id's full classification with witness schedules, in
// the same shape Classify produces. Valency, exactness, and witness
// lengths match a per-configuration Classify under any budget that covers
// the node's reachable set; Visited and the witness schedules themselves
// may differ (the atlas reports the shared graph's size and recovers its
// own — equally shortest — witnesses).
func (a *Atlas) InfoAt(id int32) ValencyInfo {
	info := ValencyInfo{
		Valency:  a.ValencyAt(id),
		Exact:    true,
		Complete: true,
		Visited:  a.Len(),
		hasZero:  a.dist0[id] >= 0,
		hasOne:   a.dist1[id] >= 0,
	}
	if info.hasZero {
		info.Witness0 = a.descend(id, a.dist0)
	}
	if info.hasOne {
		info.Witness1 = a.descend(id, a.dist1)
	}
	return info
}

// Info is InfoAt keyed by configuration; ok=false when c is not in the
// atlas (not reachable from the root).
func (a *Atlas) Info(c *model.Config) (ValencyInfo, bool) {
	id, ok := a.IDOf(c)
	if !ok {
		return ValencyInfo{}, false
	}
	return a.InfoAt(id), true
}

// Census tallies the valency class of every node — the whole-graph census
// that per-configuration classification pays O(V·(V+E)) for.
func (a *Atlas) Census() map[Valency]int {
	counts := make(map[Valency]int)
	for id := range a.cfgs {
		counts[a.ValencyAt(int32(id))]++
	}
	return counts
}

// succByEvent resolves e's transition out of node u on recorded adjacency:
// the edge labeled Same(e) when present, u itself for a null event with no
// edge (null events are skipped during expansion exactly when they are
// no-ops, where e(u) = u), and ok=false for an unrecorded delivery (e is
// not applicable at u).
func (a *Atlas) succByEvent(u int32, e model.Event) (int32, bool) {
	for ei := a.succStart[u]; ei < a.succStart[u+1]; ei++ {
		if a.succVia[ei].Same(e) {
			return a.succTo[ei], true
		}
	}
	if e.IsNull() {
		return u, true
	}
	return 0, false
}

// frontier returns the node ids reachable from the root without applying
// events Same as e — the Lemma 3 set ℰ — in breadth-first order, matching
// Explore's visit order under the same avoid filter.
func (a *Atlas) frontier(e model.Event) []int32 {
	seen := make([]bool, len(a.cfgs))
	order := make([]int32, 0, len(a.cfgs))
	seen[0] = true
	order = append(order, 0)
	for qi := 0; qi < len(order); qi++ {
		u := order[qi]
		for ei := a.succStart[u]; ei < a.succStart[u+1]; ei++ {
			if a.succVia[ei].Same(e) {
				continue
			}
			if v := a.succTo[ei]; !seen[v] {
				seen[v] = true
				order = append(order, v)
			}
		}
	}
	return order
}
