package explore

import (
	"github.com/flpsim/flp/internal/model"
)

// Visit is called once per distinct reachable configuration, in
// breadth-first order, starting with the root itself at depth 0. path
// reconstructs the schedule from the root to this configuration on demand.
// Returning stop=true ends the exploration early.
type Visit func(cfg *model.Config, depth int, path func() model.Schedule) (stop bool)

// Explore performs budgeted breadth-first reachability from c under
// protocol pr, deduplicating configurations by canonical key. If avoid is
// non-nil, events Same as *avoid are never applied — this realizes the set
// ℰ of "configurations reachable from C without applying e" from Lemma 3.
//
// It reports whether the reachable set was exhausted within the budget
// (complete) and how many distinct configurations were visited.
func Explore(pr model.Protocol, c *model.Config, opt Options, avoid *model.Event, visit Visit) (complete bool, visited int) {
	var skip func(model.Event) bool
	if avoid != nil {
		skip = func(e model.Event) bool { return e.Same(*avoid) }
	}
	return ExploreFiltered(pr, c, opt, skip, visit)
}

// ExploreFiltered is Explore with an arbitrary event filter: events for
// which skip returns true are never applied. A nil skip admits everything.
// The Lemma 2 proof walk uses it to explore runs in which a whole process
// takes no steps.
func ExploreFiltered(pr model.Protocol, c *model.Config, opt Options, skip func(model.Event) bool, visit Visit) (complete bool, visited int) {
	opt = opt.withDefaults()

	type node struct {
		cfg    *model.Config
		depth  int
		parent int
		via    model.Event
	}
	nodes := []node{{cfg: c, depth: 0, parent: -1}}
	seen := map[string]bool{c.Key(): true}

	pathOf := func(i int) func() model.Schedule {
		return func() model.Schedule {
			var rev model.Schedule
			for j := i; nodes[j].parent >= 0; j = nodes[j].parent {
				rev = append(rev, nodes[j].via)
			}
			// Reverse into root-to-node order.
			sigma := make(model.Schedule, len(rev))
			for k := range rev {
				sigma[k] = rev[len(rev)-1-k]
			}
			return sigma
		}
	}

	truncated := false
	for i := 0; i < len(nodes); i++ {
		n := nodes[i]
		if visit != nil && visit(n.cfg, n.depth, pathOf(i)) {
			return false, len(nodes)
		}
		if opt.MaxDepth > 0 && n.depth >= opt.MaxDepth {
			truncated = true
			continue
		}
		for _, e := range model.Events(n.cfg) {
			if skip != nil && skip(e) {
				continue
			}
			if e.IsNull() && model.IsNoOp(pr, n.cfg, e) {
				continue
			}
			nc := model.MustApply(pr, n.cfg, e)
			k := nc.Key()
			if seen[k] {
				continue
			}
			if len(nodes) >= opt.MaxConfigs {
				truncated = true
				break
			}
			seen[k] = true
			nodes = append(nodes, node{cfg: nc, depth: n.depth + 1, parent: i, via: e})
		}
	}
	return !truncated, len(nodes)
}

// Reachable reports whether target is reachable from c (by configuration
// key equality), returning a witness schedule when it is.
func Reachable(pr model.Protocol, c, target *model.Config, opt Options) (model.Schedule, bool) {
	tk := target.Key()
	var witness model.Schedule
	found := false
	Explore(pr, c, opt, nil, func(cfg *model.Config, _ int, path func() model.Schedule) bool {
		if cfg.Key() == tk {
			witness = path()
			found = true
			return true
		}
		return false
	})
	return witness, found
}

// CountReachable returns the number of distinct configurations reachable
// from c within the budget and whether the count is exact.
func CountReachable(pr model.Protocol, c *model.Config, opt Options) (count int, exact bool) {
	complete, visited := Explore(pr, c, opt, nil, nil)
	return visited, complete
}
