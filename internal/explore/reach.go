package explore

import (
	"github.com/flpsim/flp/internal/model"
)

// Visit is called once per distinct reachable configuration, in
// breadth-first order, starting with the root itself at depth 0. path
// reconstructs the schedule from the root to this configuration on demand.
// Returning stop=true ends the exploration early.
//
// Visit callbacks are always invoked from a single goroutine (the
// exploration coordinator), in deterministic breadth-first order,
// regardless of Options.Workers; they may freely mutate caller state
// without synchronization.
type Visit func(cfg *model.Config, depth int, path func() model.Schedule) (stop bool)

// Explore performs budgeted breadth-first reachability from c under
// protocol pr, deduplicating configurations by canonical key. If avoid is
// non-nil, events Same as *avoid are never applied — this realizes the set
// ℰ of "configurations reachable from C without applying e" from Lemma 3.
//
// It reports whether the reachable set was exhausted within the budget
// (complete) and how many distinct configurations were visited.
func Explore(pr model.Protocol, c *model.Config, opt Options, avoid *model.Event, visit Visit) (complete bool, visited int) {
	return ExploreFiltered(pr, c, opt, AvoidFilter(avoid), visit)
}

// node is one entry of the breadth-first frontier. Parent links let path
// reconstruction walk back to the root without storing schedules.
type node struct {
	cfg    *model.Config
	depth  int
	parent int
	via    model.Event
}

// ExploreFiltered is Explore with an arbitrary event filter: events for
// which skip returns true are never applied. A nil skip admits everything.
// The Lemma 2 proof walk uses it to explore runs in which a whole process
// takes no steps.
//
// With Options.Workers > 1, node expansion — event enumeration, protocol
// steps, and successor fingerprinting, the dominant costs — runs on a
// worker pool one breadth-first level at a time, while a single
// coordinator merges successors into the frontier in canonical order.
// Results are byte-identical to the sequential engine. skip must be safe
// for concurrent calls (the filters used by the checkers are pure
// functions of the event); pr must honour the Protocol contract of being
// deterministic and side-effect free, which also makes it safe to call
// from several workers.
//
// The distributed engine (package distexplore) runs the same algorithm
// with the frontier partitioned by configuration hash range across worker
// processes; it shares ExpandConfig and Ledger with this implementation,
// which is what keeps its results byte-identical too.
func ExploreFiltered(pr model.Protocol, c *model.Config, opt Options, skip func(model.Event) bool, visit Visit) (complete bool, visited int) {
	opt = opt.withDefaults()

	nodes := []node{{cfg: c, depth: 0, parent: -1}}
	seen := model.NewInterner()
	seen.Intern(c)
	led := NewLedger(opt)

	pathOf := func(i int) func() model.Schedule {
		return func() model.Schedule {
			var rev model.Schedule
			for j := i; nodes[j].parent >= 0; j = nodes[j].parent {
				rev = append(rev, nodes[j].via)
			}
			// Reverse into root-to-node order.
			sigma := make(model.Schedule, len(rev))
			for k := range rev {
				sigma[k] = rev[len(rev)-1-k]
			}
			return sigma
		}
	}

	// expand computes the successors of one node via the shared engine
	// core, appending into a buffer recycled across levels. It is a pure
	// function of the node and its buffer, so workers may run it ahead of
	// the coordinator without changing results.
	expand := func(n node, dst []Successor) []Successor {
		if opt.DepthCapped(n.depth) {
			return dst[:0]
		}
		return AppendSuccessors(pr, n.cfg, skip, dst)
	}

	// merge folds one node's successors into the frontier: first-seen
	// configurations are appended in canonical event order until the
	// budget is reached. Only the coordinator calls merge, so frontier
	// growth — and therefore node indices, paths, and truncation — is
	// deterministic for every worker count.
	merge := func(parent int, succs []Successor) {
		for _, s := range succs {
			if _, fresh := seen.Intern(s.Cfg); !fresh {
				continue
			}
			if !led.Admit() {
				break
			}
			nodes = append(nodes, node{cfg: s.Cfg, depth: nodes[parent].depth + 1, parent: parent, via: s.Via})
		}
	}

	if opt.Workers <= 1 {
		// Sequential engine: expansion and merging are fused so the event
		// loop can break the moment a fresh successor overflows the budget,
		// skipping the protocol steps and fingerprints for the rest of the
		// node's events.
		for i := 0; i < len(nodes); i++ {
			n := nodes[i]
			if visit != nil && visit(n.cfg, n.depth, pathOf(i)) {
				return false, len(nodes)
			}
			if !led.ShouldExpand(n.depth) {
				continue
			}
			if led.Sealed() {
				continue
			}
			for _, e := range model.Events(n.cfg) {
				if skipEvent(pr, n.cfg, e, skip) {
					continue
				}
				nc := model.MustApply(pr, n.cfg, e)
				if _, fresh := seen.Intern(nc); !fresh {
					continue
				}
				if !led.Admit() {
					break
				}
				nodes = append(nodes, node{cfg: nc, depth: n.depth + 1, parent: i, via: e})
			}
		}
		return led.Complete(), len(nodes)
	}

	// Parallel engine: breadth-first levels are contiguous index ranges
	// (successors always land after every node of the current depth), so
	// each level [start, end) is expanded by the worker pool as a whole,
	// then visited and merged in index order. Workers may expand nodes the
	// budget will discard (the level is speculated as a whole); that slack
	// is bounded by one level and never reaches an observable.
	pool := &succPool{}
	for start, end := 0, 1; start < end; start, end = end, len(nodes) {
		var exps [][]Successor
		if !led.Sealed() {
			exps = expandLevel(nodes[start:end], expand, opt.Workers, pool)
		}
		for i := start; i < end; i++ {
			n := nodes[i]
			if visit != nil && visit(n.cfg, n.depth, pathOf(i)) {
				return false, len(nodes)
			}
			if !led.ShouldExpand(n.depth) {
				continue
			}
			if exps != nil {
				merge(i, exps[i-start])
			}
		}
		if exps != nil {
			pool.recycle(exps)
		}
	}
	return led.Complete(), len(nodes)
}

// Reachable reports whether target is reachable from c (by configuration
// key equality), returning a witness schedule when it is.
func Reachable(pr model.Protocol, c, target *model.Config, opt Options) (model.Schedule, bool) {
	var witness model.Schedule
	found := false
	Explore(pr, c, opt, nil, func(cfg *model.Config, _ int, path func() model.Schedule) bool {
		if cfg.Equal(target) {
			witness = path()
			found = true
			return true
		}
		return false
	})
	return witness, found
}

// CountReachable returns the number of distinct configurations reachable
// from c within the budget and whether the count is exact.
func CountReachable(pr model.Protocol, c *model.Config, opt Options) (count int, exact bool) {
	complete, visited := Explore(pr, c, opt, nil, nil)
	return visited, complete
}
