// Package explore is the model checker over the FLP system model: it
// enumerates configurations reachable under all message-system behaviours
// and classifies them by valency, mechanizing the definitions and lemmas of
// Sections 2 and 3 of the paper.
//
//   - [Explore] is budgeted breadth-first reachability over configurations,
//     deduplicated by canonical key.
//   - [Classify] computes the valency of a configuration: the set V of
//     decision values of configurations reachable from it. Bivalence
//     (|V| = 2) is certified by two concrete witness schedules and is exact
//     even under a budget; univalence claims additionally require the
//     exploration to have been exhaustive.
//   - [CensusInitial] mechanizes Lemma 2: it classifies every initial
//     configuration and locates a bivalent one, or, failing that, exhibits
//     the adjacent 0-valent/1-valent pair the proof of Lemma 2 pivots on.
//   - [CensusLemma3] and [FindBivalentExtension] mechanize Lemma 3: from a
//     bivalent C and an applicable event e, the frontier
//     D = e(reach(C) without e) contains a bivalent configuration.
//   - [CheckCommutativity] and [RandomDisjointSchedules] mechanize Lemma 1.
//   - [CheckPartialCorrectness] verifies the two partial-correctness
//     conditions: no accessible configuration has two decision values, and
//     both values are possible decisions.
//
// Exploration soundness notes. Null events that are no-ops (the process
// state does not change and nothing is sent) are skipped; they generate no
// new configurations, so no reachable configuration is lost. Duplicate
// message copies are interchangeable under multiset semantics, so event
// enumeration per distinct message is exhaustive.
package explore
