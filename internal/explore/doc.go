// Package explore is the model checker over the FLP system model: it
// enumerates configurations reachable under all message-system behaviours
// and classifies them by valency, mechanizing the definitions and lemmas of
// Sections 2 and 3 of the paper.
//
//   - [Explore] is budgeted breadth-first reachability over configurations,
//     deduplicated by canonical key.
//   - [Classify] computes the valency of a configuration: the set V of
//     decision values of configurations reachable from it. Bivalence
//     (|V| = 2) is certified by two concrete witness schedules and is exact
//     even under a budget; univalence claims additionally require the
//     exploration to have been exhaustive.
//   - [CensusInitial] mechanizes Lemma 2: it classifies every initial
//     configuration and locates a bivalent one, or, failing that, exhibits
//     the adjacent 0-valent/1-valent pair the proof of Lemma 2 pivots on.
//   - [CensusLemma3] and [FindBivalentExtension] mechanize Lemma 3: from a
//     bivalent C and an applicable event e, the frontier
//     D = e(reach(C) without e) contains a bivalent configuration.
//   - [CheckCommutativity] and [RandomDisjointSchedules] mechanize Lemma 1.
//   - [CheckPartialCorrectness] verifies the two partial-correctness
//     conditions: no accessible configuration has two decision values, and
//     both values are possible decisions.
//
// Exploration soundness notes. Null events that are no-ops (the process
// state does not change and nothing is sent) are skipped; they generate no
// new configurations, so no reachable configuration is lost. Duplicate
// message copies are interchangeable under multiset semantics, so event
// enumeration per distinct message is exhaustive.
//
// # Parallel exploration
//
// [Options.Workers] selects the engine: <= 1 runs the classic sequential
// loop, > 1 (the default is GOMAXPROCS) runs a level-synchronous parallel
// BFS. Each frontier level is a contiguous slice of the node array; workers
// expand nodes concurrently — event enumeration, no-op filtering, successor
// application, and hash precomputation are all pure — and a single
// coordinator then merges the per-node successor lists back in canonical
// (node index, event order) order. Because visiting, deduplication,
// budgeting, and witness selection all happen on the coordinator in that
// fixed order, every observable — the visit stream, reachable counts,
// truncation flags, valency witnesses, reports — is byte-identical at every
// worker count. The differential tests in this package pin that contract.
//
// Deduplication uses [model.Interner]: a sharded table keyed by the cached
// 64-bit FNV-1a hash of the canonical key, with hash hits confirmed by full
// key comparison, so a hash collision can only cost time, never a wrong
// dedup. The expensive canonical-key construction happens inside the
// workers; the coordinator mostly compares cached hashes.
//
// Tuning: worker counts above GOMAXPROCS only add coordination overhead,
// and tiny state spaces (the commit protocols' 12–20 configurations) are
// faster sequentially — set Workers: 1 there, or when single-threaded
// reproducibility of *timing* (not results; those never vary) matters.
// Valency caches ([NewCache], [NewSmartCache]) are safe for concurrent use;
// see the Cache type's thread-safety contract.
package explore
