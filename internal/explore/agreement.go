package explore

import (
	"github.com/flpsim/flp/internal/model"
)

// AgreementViolation is a witness that some accessible configuration has
// two decision values: the input assignment it starts from and the schedule
// reaching the violating configuration.
type AgreementViolation struct {
	Inputs   model.Inputs
	Schedule model.Schedule
	// Deciders maps each decision value to a process holding it in the
	// violating configuration.
	Deciders map[model.Value]model.PID
}

// PartialCorrectnessReport is the result of checking the two conditions of
// partial correctness from Section 2:
//
//  1. No accessible configuration has more than one decision value.
//  2. For each v ∈ {0, 1}, some accessible configuration has decision
//     value v.
type PartialCorrectnessReport struct {
	Protocol string
	// AgreementHolds is true when no violating configuration was found.
	// Definitive only when Complete.
	AgreementHolds bool
	// Violation is the first violation found, if any.
	Violation *AgreementViolation
	// ValuesSeen records which decision values occur in some accessible
	// configuration (condition 2 requires both).
	ValuesSeen map[model.Value]bool
	// Nontrivial is true when both decision values occur.
	Nontrivial bool
	// Configs is the total number of distinct configurations examined
	// across all initial configurations.
	Configs int
	// Complete reports whether every initial configuration's reachable
	// set was exhausted within the budget.
	Complete bool
}

// CheckPartialCorrectness explores the accessible configurations of pr
// (from every initial configuration) and checks both partial-correctness
// conditions. Exploration of each initial configuration is bounded by opt.
func CheckPartialCorrectness(pr model.Protocol, opt Options) (PartialCorrectnessReport, error) {
	rep := PartialCorrectnessReport{
		Protocol:       pr.Name(),
		AgreementHolds: true,
		ValuesSeen:     make(map[model.Value]bool),
		Complete:       true,
	}
	for _, in := range model.AllInputs(pr.N()) {
		c, err := model.Initial(pr, in)
		if err != nil {
			return rep, err
		}
		inputs := in
		complete, visited := Explore(pr, c, opt, nil, func(cfg *model.Config, _ int, path func() model.Schedule) bool {
			vs := cfg.DecisionValues()
			for _, v := range vs {
				rep.ValuesSeen[v] = true
			}
			if len(vs) == 2 && rep.Violation == nil {
				rep.AgreementHolds = false
				rep.Violation = &AgreementViolation{
					Inputs:   inputs,
					Schedule: path(),
					Deciders: decidersOf(cfg),
				}
			}
			return false
		})
		rep.Configs += visited
		if !complete {
			rep.Complete = false
		}
	}
	rep.Nontrivial = rep.ValuesSeen[model.V0] && rep.ValuesSeen[model.V1]
	return rep, nil
}

func decidersOf(cfg *model.Config) map[model.Value]model.PID {
	d := make(map[model.Value]model.PID)
	for p := 0; p < cfg.N(); p++ {
		o := cfg.Output(model.PID(p))
		if o.Decided() {
			if _, ok := d[o.Value()]; !ok {
				d[o.Value()] = model.PID(p)
			}
		}
	}
	return d
}
