package explore

import "runtime"

// Options bound an exploration. The zero value is usable: defaults are
// applied by the entry points.
type Options struct {
	// MaxConfigs is the maximum number of distinct configurations to
	// visit in one exploration. When the bound is hit the exploration
	// reports Complete=false and results become one-sided (bivalence
	// certificates remain exact; univalence claims do not). Default 200000.
	MaxConfigs int
	// MaxDepth bounds the schedule length explored; 0 means unlimited.
	MaxDepth int
	// Workers is the number of goroutines expanding frontier nodes.
	// 0 (the default) means runtime.GOMAXPROCS(0); 1 or a negative value
	// forces the sequential engine. Any worker count produces byte-
	// identical results — same visit order, same counts, same witness
	// schedules — because successors are merged into the frontier in
	// canonical event order by a single coordinator (see doc.go).
	Workers int
}

// DefaultMaxConfigs is the per-exploration budget applied when
// Options.MaxConfigs is zero.
const DefaultMaxConfigs = 200000

func (o Options) withDefaults() Options {
	if o.MaxConfigs <= 0 {
		o.MaxConfigs = DefaultMaxConfigs
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}
