package explore

// Options bound an exploration. The zero value is usable: defaults are
// applied by the entry points.
type Options struct {
	// MaxConfigs is the maximum number of distinct configurations to
	// visit in one exploration. When the bound is hit the exploration
	// reports Complete=false and results become one-sided (bivalence
	// certificates remain exact; univalence claims do not). Default 200000.
	MaxConfigs int
	// MaxDepth bounds the schedule length explored; 0 means unlimited.
	MaxDepth int
}

// DefaultMaxConfigs is the per-exploration budget applied when
// Options.MaxConfigs is zero.
const DefaultMaxConfigs = 200000

func (o Options) withDefaults() Options {
	if o.MaxConfigs <= 0 {
		o.MaxConfigs = DefaultMaxConfigs
	}
	return o
}
