package explore

import "runtime"

// Options bound an exploration. The zero value is usable: defaults are
// applied by the entry points.
type Options struct {
	// MaxConfigs is the maximum number of distinct configurations to
	// visit in one exploration. When the bound is hit the exploration
	// reports Complete=false and results become one-sided (bivalence
	// certificates remain exact; univalence claims do not). Default 200000.
	MaxConfigs int
	// MaxDepth bounds the schedule length explored; 0 means unlimited.
	// Negative values are clamped to 0 (unlimited) by Normalized — they
	// would otherwise slip through the engines' `depth >= MaxDepth`
	// comparisons as a silent unlimited bound without being documented as
	// one.
	MaxDepth int
	// Workers is the number of goroutines expanding frontier nodes
	// *within one process*. 0 (the default) means runtime.GOMAXPROCS(0);
	// 1 or a negative value forces the sequential engine. Any worker
	// count produces byte-identical results — same visit order, same
	// counts, same witness schedules — because successors are merged into
	// the frontier in canonical order by a single coordinator (see
	// doc.go).
	//
	// Workers is orthogonal to the distributed engine's sharding: package
	// distexplore partitions the visited set by configuration hash range
	// into Shards ranges served by worker *processes*, and each of those
	// processes expands its owned frontier sequentially (the distributed
	// level exchange, not goroutine count, is its unit of parallelism).
	// Every (Workers × Shards × worker-process) combination is
	// byte-identical to Workers=1 here; choose Workers for one machine,
	// Shards and worker processes for many. This paragraph is the single
	// home of that contract — distexplore.Options refers back to it.
	Workers int
}

// DefaultMaxConfigs is the per-exploration budget applied when
// Options.MaxConfigs is zero.
const DefaultMaxConfigs = 200000

// Normalized returns o with the engine-independent fields validated and
// defaulted: MaxConfigs defaulted, MaxDepth clamped to "unlimited" when
// negative. Engines outside this package (distexplore) apply it so that
// bound handling cannot drift between engines; in-process entry points get
// it via withDefaults.
func (o Options) Normalized() Options {
	if o.MaxConfigs <= 0 {
		o.MaxConfigs = DefaultMaxConfigs
	}
	if o.MaxDepth < 0 {
		o.MaxDepth = 0
	}
	return o
}

func (o Options) withDefaults() Options {
	o = o.Normalized()
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}
