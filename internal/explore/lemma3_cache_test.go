package explore

import (
	"testing"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protogen"
)

// TestLemma3SharesWarmedAtlas pins the sharing contract between the
// Lemma 3 entry points and a caller-supplied cache: the first call on a
// root warms the cache with ONE atlas over reach(root), and every later
// CensusLemma3 / FindBivalentExtension on the same (root, cache) pair
// answers from that atlas — no second build, no per-configuration
// classification. A regression here is silent (results stay correct, the
// census just degrades to one breadth-first search per frontier member),
// so the test asserts on the cache internals rather than on output.
func TestLemma3SharesWarmedAtlas(t *testing.T) {
	sp := protogen.Derive(7, protogen.DefaultDials(3))
	pr := protogen.MustNew(sp)
	in := make(model.Inputs, sp.N)
	for p := range in {
		in[p] = model.Value(p & 1)
	}
	root := model.MustInitial(pr, in)
	opt := Options{MaxConfigs: 200000}
	cache := NewCache(pr, opt)

	if _, err := CensusLemma3(pr, root, model.NullEvent(0), opt, cache); err != nil {
		t.Fatal(err)
	}
	atlases := cache.atlases.Load()
	if atlases == nil || len(*atlases) != 1 {
		t.Fatalf("after first census the cache holds %d atlases, want exactly 1", lenOf(atlases))
	}
	first := (*atlases)[0]
	if _, misses := cache.Stats(); misses != 0 {
		t.Errorf("first census classified %d configurations outside the atlas, want 0", misses)
	}

	if _, err := CensusLemma3(pr, root, model.NullEvent(1), opt, cache); err != nil {
		t.Fatal(err)
	}
	if _, err := FindBivalentExtension(pr, root, model.NullEvent(2), opt, cache); err != nil {
		t.Fatal(err)
	}
	atlases = cache.atlases.Load()
	if len(*atlases) != 1 || (*atlases)[0] != first {
		t.Fatalf("later calls on the same root rebuilt the atlas: %d attached, want the original alone", len(*atlases))
	}
	hits, misses := cache.Stats()
	if misses != 0 {
		t.Errorf("later calls classified %d configurations outside the shared atlas, want 0", misses)
	}
	if hits == 0 {
		t.Error("no cache hits recorded across three frontier sweeps")
	}
}

func lenOf(atlases *[]*Atlas) int {
	if atlases == nil {
		return 0
	}
	return len(*atlases)
}
