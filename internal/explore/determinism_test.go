package explore_test

import (
	"reflect"
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
	"github.com/flpsim/flp/internal/protogen"
)

// The parallel engine's contract is byte-identical results for every
// worker count. These differential tests pin that contract for each seed
// protocol: every report the checker stack produces must be deeply equal
// between Workers: 1 (the sequential oracle) and Workers: 8, including
// witness schedules, visit counts, and truncation flags.

// determinismCases covers every seed protocol. Unbounded state spaces
// (paxos, benor) and large finite ones (3pc, onethird) run under a budget,
// which additionally exercises truncation determinism at the boundary.
func determinismCases(t *testing.T) []struct {
	name string
	pr   model.Protocol
	opt  explore.Options
} {
	t.Helper()
	mk := func(name string, n int) model.Protocol {
		factory, ok := protocols.Lookup(name)
		if !ok {
			t.Fatalf("protocol %q not registered", name)
		}
		pr, err := factory(n)
		if err != nil {
			t.Fatal(err)
		}
		return pr
	}
	return []struct {
		name string
		pr   model.Protocol
		opt  explore.Options
	}{
		{"trivial0", mk("trivial0", 3), explore.Options{}},
		{"waitall", mk("waitall", 3), explore.Options{}},
		{"naivemajority", mk("naivemajority", 3), explore.Options{}},
		{"2pc", mk("2pc", 3), explore.Options{}},
		{"3pc-budget", mk("3pc", 3), explore.Options{MaxConfigs: 2000}},
		{"paxos-budget", mk("paxos", 3), explore.Options{MaxConfigs: 600}},
		{"benor-budget", mk("benor", 3), explore.Options{MaxConfigs: 600}},
		{"naivemajority-depth4", mk("naivemajority", 3), explore.Options{MaxDepth: 4}},
		{"naivemajority-budget137", mk("naivemajority", 3), explore.Options{MaxConfigs: 137}},
	}
}

func withWorkers(opt explore.Options, w int) explore.Options {
	opt.Workers = w
	return opt
}

func TestParallelCountReachableMatchesSequential(t *testing.T) {
	for _, tc := range determinismCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			c := model.MustInitial(tc.pr, model.Inputs{0, 1, 1})
			seqCount, seqExact := explore.CountReachable(tc.pr, c, withWorkers(tc.opt, 1))
			parCount, parExact := explore.CountReachable(tc.pr, c, withWorkers(tc.opt, 8))
			if seqCount != parCount || seqExact != parExact {
				t.Errorf("CountReachable diverged: sequential (%d, %v), 8 workers (%d, %v)",
					seqCount, seqExact, parCount, parExact)
			}
		})
	}
}

func TestParallelValencyMatchesSequential(t *testing.T) {
	for _, tc := range determinismCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			for _, in := range model.AllInputs(tc.pr.N()) {
				c := model.MustInitial(tc.pr, in)
				seq := explore.Classify(tc.pr, c, withWorkers(tc.opt, 1))
				par := explore.Classify(tc.pr, c, withWorkers(tc.opt, 8))
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("inputs %s: ValencyInfo diverged:\n sequential: %+v\n 8 workers:  %+v", in, seq, par)
				}
			}
		})
	}
}

func TestParallelPartialCorrectnessMatchesSequential(t *testing.T) {
	for _, tc := range determinismCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := explore.CheckPartialCorrectness(tc.pr, withWorkers(tc.opt, 1))
			if err != nil {
				t.Fatal(err)
			}
			par, err := explore.CheckPartialCorrectness(tc.pr, withWorkers(tc.opt, 8))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("PartialCorrectnessReport diverged:\n sequential: %+v\n 8 workers:  %+v", seq, par)
			}
		})
	}
}

// TestParallelLemma3MatchesSequential pins the frontier census — the
// primitive under the Theorem 1 adversary — across worker counts,
// including the witness schedule Sigma.
func TestParallelLemma3MatchesSequential(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c, _, ok := explore.FindBivalentInitial(pr, explore.Options{Workers: 1})
	if !ok {
		t.Fatal("no bivalent initial configuration")
	}
	for _, e := range model.Events(c) {
		if e.IsNull() && model.IsNoOp(pr, c, e) {
			continue
		}
		seq, err := explore.CensusLemma3(pr, c, e, explore.Options{Workers: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		par, err := explore.CensusLemma3(pr, c, e, explore.Options{Workers: 8}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("event %s: Lemma3Result diverged:\n sequential: %+v\n 8 workers:  %+v", e, seq, par)
		}
	}
}

// TestParallelGeneratedProtocolsMatchSequential runs the same
// differential over generated protocols: a spread of protogen seeds per
// template, visit streams and valency compared between Workers 1 and 8.
// The generator reaches transition-table shapes (sparse tables, dead
// phases, asymmetric decision rules) that no hand-written seed protocol
// exercises, so this is where worker-count nondeterminism around unusual
// fan-out would surface first.
func TestParallelGeneratedProtocolsMatchSequential(t *testing.T) {
	type step struct {
		key   string
		depth int
		path  string
	}
	for _, tmpl := range []string{protogen.TemplateTable, protogen.TemplateBenOr} {
		for seed := uint64(1); seed <= 5; seed++ {
			d := protogen.DefaultDials(3)
			d.Template = tmpl
			if tmpl == protogen.TemplateBenOr {
				d.N, d.MaxRound = 2, 1
			}
			sp := protogen.Derive(seed, d)
			t.Run(sp.Name(), func(t *testing.T) {
				pr := protogen.MustNew(sp)
				in := make(model.Inputs, sp.N)
				for p := range in {
					in[p] = model.Value(p & 1)
				}
				c := model.MustInitial(pr, in)
				opt := explore.Options{MaxConfigs: 1500}
				stream := func(workers int) (bool, []step) {
					var out []step
					complete, _ := explore.Explore(pr, c, withWorkers(opt, workers), nil,
						func(cfg *model.Config, depth int, path func() model.Schedule) bool {
							out = append(out, step{key: cfg.Key(), depth: depth, path: path().String()})
							return false
						})
					return complete, out
				}
				seqComplete, seq := stream(1)
				parComplete, par := stream(8)
				if seqComplete != parComplete || len(seq) != len(par) {
					t.Fatalf("stream shape diverged: sequential (%d, complete=%v), 8 workers (%d, complete=%v)",
						len(seq), seqComplete, len(par), parComplete)
				}
				for i := range seq {
					if seq[i] != par[i] {
						t.Fatalf("visit %d diverged:\n sequential: %+v\n 8 workers:  %+v", i, seq[i], par[i])
					}
				}
				seqV := explore.Classify(pr, c, withWorkers(opt, 1))
				parV := explore.Classify(pr, c, withWorkers(opt, 8))
				if !reflect.DeepEqual(seqV, parV) {
					t.Errorf("ValencyInfo diverged:\n sequential: %+v\n 8 workers:  %+v", seqV, parV)
				}
			})
		}
	}
}

// TestParallelExploreOrderMatchesSequential compares the raw visit
// streams: configuration keys, depths, and reconstructed paths must agree
// position by position, which is stronger than any aggregate report.
func TestParallelExploreOrderMatchesSequential(t *testing.T) {
	type step struct {
		key   string
		depth int
		path  string
	}
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, model.Inputs{0, 1, 1})
	stream := func(workers int) []step {
		var out []step
		explore.Explore(pr, c, explore.Options{MaxConfigs: 600, Workers: workers}, nil,
			func(cfg *model.Config, depth int, path func() model.Schedule) bool {
				out = append(out, step{key: cfg.Key(), depth: depth, path: path().String()})
				return false
			})
		return out
	}
	seq := stream(1)
	for _, w := range []int{2, 3, 8} {
		par := stream(w)
		if len(seq) != len(par) {
			t.Fatalf("workers=%d: visit count %d, sequential %d", w, len(par), len(seq))
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("workers=%d: visit %d diverged:\n sequential: %+v\n parallel:   %+v", w, i, seq[i], par[i])
			}
		}
	}
}
