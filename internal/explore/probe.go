package explore

import (
	"github.com/flpsim/flp/internal/fifo"
	"github.com/flpsim/flp/internal/model"
)

// ProbeOptions configure the directed witness search used to certify
// bivalence cheaply on protocols whose reachable sets are too large for
// exhaustive classification (Paxos, Ben-Or).
type ProbeOptions struct {
	// MaxSteps bounds each directed run. Default 600.
	MaxSteps int
	// MaxCrash is the largest crash-subset size probed. Each probe run
	// fairly schedules the processes outside one crash subset; varying the
	// subset steers the system toward different decision values. Default 1
	// (the paper's fault bound).
	MaxCrash int
}

// DefaultProbeMaxSteps is the per-run step bound applied when
// ProbeOptions.MaxSteps is zero.
const DefaultProbeMaxSteps = 600

func (po ProbeOptions) withDefaults() ProbeOptions {
	if po.MaxSteps <= 0 {
		po.MaxSteps = DefaultProbeMaxSteps
	}
	if po.MaxCrash <= 0 {
		po.MaxCrash = 1
	}
	return po
}

// ProbeValencies searches for decision witnesses from c by running a family
// of deterministic fair runs: for every crash subset of size ≤ MaxCrash and
// every rotation offset, the live processes take steps round-robin, each
// receiving its oldest pending message (FIFO). Such runs mimic well-behaved
// executions, which decide quickly when a decision is reachable at all, so
// two of them finding different values is a fast bivalence certificate.
//
// Witnesses found are exact (they are concrete schedules); not finding a
// value proves nothing.
func ProbeValencies(pr model.Protocol, c *model.Config, popt ProbeOptions) (wit0, wit1 model.Schedule, found0, found1 bool) {
	popt = popt.withDefaults()
	n := c.N()

	record := func(sigma model.Schedule, vals []model.Value) {
		for _, v := range vals {
			if v == model.V0 && !found0 {
				found0 = true
				wit0 = append(model.Schedule(nil), sigma...)
			}
			if v == model.V1 && !found1 {
				found1 = true
				wit1 = append(model.Schedule(nil), sigma...)
			}
		}
	}
	record(model.Schedule{}, c.DecisionValues())
	if found0 && found1 {
		return
	}

	for _, crashed := range crashSubsets(n, popt.MaxCrash) {
		var live []model.PID
		for p := 0; p < n; p++ {
			if !crashed[model.PID(p)] {
				live = append(live, model.PID(p))
			}
		}
		// Delivery disciplines: FIFO and LIFO give schedule diversity;
		// sender-priority disciplines let one process's traffic overtake
		// everyone else's, which is what steers racy protocols (Paxos)
		// toward the value that process is pushing.
		picks := []pickFunc{pickFIFO, pickLIFO}
		for _, q := range live {
			picks = append(picks, pickSenderFirst(q))
		}
		for _, pick := range picks {
			for off := 0; off < len(live); off++ {
				sigma, vals := fairRun(pr, c, rotate(live, off), popt.MaxSteps, pick)
				record(sigma, vals)
				if found0 && found1 {
					return
				}
			}
		}
	}
	return
}

// pickFunc selects which pending message to deliver to p next.
type pickFunc func(t *fifo.Tracker, p model.PID) (model.Message, bool)

func pickFIFO(t *fifo.Tracker, p model.PID) (model.Message, bool) { return t.Oldest(p) }

func pickLIFO(t *fifo.Tracker, p model.PID) (model.Message, bool) {
	pending := t.PendingList(p)
	if len(pending) == 0 {
		return model.Message{}, false
	}
	return pending[len(pending)-1], true
}

// pickSenderFirst prefers the oldest pending message sent by q, falling
// back to plain FIFO.
func pickSenderFirst(q model.PID) pickFunc {
	return func(t *fifo.Tracker, p model.PID) (model.Message, bool) {
		for _, m := range t.PendingList(p) {
			if m.From == q {
				return m, true
			}
		}
		return t.Oldest(p)
	}
}

// fairRun schedules the given processes round-robin from c, delivering to
// each the pending message chosen by pick (or taking an effectful null
// step), and stops at the first decision, at quiescence, or after maxSteps
// events. It returns the schedule and the decision values present when it
// stopped.
//
// The run is executed on a mutable state slice plus a FIFO tracker rather
// than through immutable configurations: probes never compare
// configurations, so paying for buffer clones and canonical keys on every
// step — the dominant cost at hundreds of steps per run and dozens of runs
// per probe — would buy nothing.
func fairRun(pr model.Protocol, c *model.Config, order []model.PID, maxSteps int, pick pickFunc) (model.Schedule, []model.Value) {
	tracker := fifo.NewFromConfig(c)
	n := c.N()
	states := make([]model.State, n)
	for p := 0; p < n; p++ {
		states[p] = c.State(model.PID(p))
	}

	decisions := func() []model.Value {
		var vals []model.Value
		var seen0, seen1 bool
		for p := 0; p < n; p++ {
			if o := states[p].Output(); o.Decided() {
				if o == model.Decided0 && !seen0 {
					seen0 = true
					vals = append(vals, model.V0)
				}
				if o == model.Decided1 && !seen1 {
					seen1 = true
					vals = append(vals, model.V1)
				}
			}
		}
		return vals
	}

	var sigma model.Schedule
	for len(sigma) < maxSteps {
		progressed := false
		for _, p := range order {
			var e model.Event
			var msg *model.Message
			if m, ok := pick(tracker, p); ok {
				mc := m
				msg = &mc
				e = model.Deliver(m)
			} else {
				e = model.NullEvent(p)
			}
			ns, sends := pr.Step(p, states[p], msg)
			if ns == nil {
				return sigma, decisions() // contract violation: stop the run
			}
			if msg == nil && len(sends) == 0 && ns.Key() == states[p].Key() {
				continue // no-op null step: skip without recording
			}
			for i := range sends {
				sends[i].From = p
			}
			if err := tracker.Advance(e, sends); err != nil {
				return sigma, decisions()
			}
			states[p] = ns
			sigma = append(sigma, e)
			progressed = true
			if ns.Output().Decided() {
				return sigma, decisions()
			}
			if len(sigma) >= maxSteps {
				break
			}
		}
		if !progressed {
			break // quiescent: nothing left to do
		}
	}
	return sigma, decisions()
}

// crashSubsets enumerates all subsets of {0..n-1} of size ≤ maxCrash,
// smallest first (the empty set — no crashes — is probed first).
func crashSubsets(n, maxCrash int) []map[model.PID]bool {
	var subsets []map[model.PID]bool
	for size := 0; size <= maxCrash && size < n; size++ {
		combine(n, size, func(members []int) {
			s := make(map[model.PID]bool, len(members))
			for _, m := range members {
				s[model.PID(m)] = true
			}
			subsets = append(subsets, s)
		})
	}
	return subsets
}

// combine calls fn with every size-k combination of {0..n-1}.
func combine(n, k int, fn func([]int)) {
	idx := make([]int, k)
	var rec func(start, pos int)
	rec = func(start, pos int) {
		if pos == k {
			fn(idx)
			return
		}
		for i := start; i < n; i++ {
			idx[pos] = i
			rec(i+1, pos+1)
		}
	}
	rec(0, 0)
}

func rotate(ps []model.PID, off int) []model.PID {
	out := make([]model.PID, len(ps))
	for i := range ps {
		out[i] = ps[(i+off)%len(ps)]
	}
	return out
}

// ClassifySmart classifies c by first probing for cheap bivalence
// certificates and falling back to budgeted breadth-first classification.
// Bivalence results are always exact; univalence and stuckness are exact
// only when the fallback exploration exhausted the reachable set.
func ClassifySmart(pr model.Protocol, c *model.Config, opt Options, popt ProbeOptions) ValencyInfo {
	wit0, wit1, f0, f1 := ProbeValencies(pr, c, popt)
	if f0 && f1 {
		return ValencyInfo{
			Valency: Bivalent, Exact: true,
			Witness0: wit0, Witness1: wit1,
			hasZero: true, hasOne: true,
		}
	}
	info := Classify(pr, c, opt)
	// Merge probe findings: the probe may have reached a value the budget
	// kept the breadth-first search from.
	if f0 && !info.hasZero {
		info.hasZero = true
		info.Witness0 = wit0
	}
	if f1 && !info.hasOne {
		info.hasOne = true
		info.Witness1 = wit1
	}
	if info.hasZero && info.hasOne {
		info.Valency = Bivalent
		info.Exact = true
	}
	return info
}
