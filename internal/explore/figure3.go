package explore

import (
	"fmt"

	"github.com/flpsim/flp/internal/model"
)

// Figure3Report summarizes the mechanized Case 2 of the Lemma 3 proof
// (p' = p, Figure 3). There, for neighbors C0 and C1 = e'(C0) with e and
// e' both events of the same process p, the proof takes a finite deciding
// run σ from C0 in which p takes no steps, sets A = σ(C0), and uses
// Lemma 1 twice:
//
//	e(A)      = σ(D0)   where D0 = e(C0)
//	e(e'(A))  = σ(D1)   where D1 = e(e'(C0))
//
// making A's successors hit both D-sides — so A would be bivalent, yet the
// run to A is deciding: contradiction. This checker verifies the two
// commutation equalities (the figure's arrows) on concrete configurations;
// the contradiction itself cannot materialize on a sound model, which
// TestLemma2ProofContradictionUnconstructible covers from the other side.
type Figure3Report struct {
	// Pairs is the number of (C0, e') same-process neighbor pairs
	// examined.
	Pairs int
	// SigmaFound counts pairs for which a p-free deciding run from C0
	// exists (the proof's precondition; protocols that are not fault
	// tolerant fail it, which is their escape).
	SigmaFound int
	// Violations counts commutation equalities that failed — zero for a
	// sound model.
	Violations int
	// Complete reports whether ℰ was exhausted within the budget.
	Complete bool
}

// CheckLemma3Figure3 verifies the Figure 3 commutations on every
// same-process neighbor pair in the frontier of (c, e).
//
// The expensive step of the direct check is σ: one p-free forward search
// per neighbor pair, O(V·(V+E)) across the frontier. When reach(C) fits
// the budget, the valency atlas answers every pair's σ from a single
// backward pass over the reverse edges restricted to p-free transitions
// (distDecidedAvoiding), and the commutation equalities themselves are
// still verified by concrete configuration application — the atlas finds
// the runs, the model checks the arrows. Over-budget state spaces fall
// back to the direct search below.
func CheckLemma3Figure3(pr model.Protocol, c *model.Config, e model.Event, opt Options) (Figure3Report, error) {
	if !model.Applicable(c, e) {
		return Figure3Report{}, fmt.Errorf("explore: event %s not applicable to C", e)
	}
	if atlas, ok := BuildAtlas(pr, c, opt); ok {
		return figure3OnAtlas(pr, atlas, e), nil
	}
	rep := Figure3Report{}
	p := e.P
	skipP := func(ev model.Event) bool { return ev.P == p }

	complete, _ := Explore(pr, c, opt, &e, func(C0 *model.Config, _ int, _ func() model.Schedule) bool {
		for _, ePrime := range model.Events(C0) {
			if ePrime.P != p || ePrime.Same(e) {
				continue
			}
			if ePrime.IsNull() && model.IsNoOp(pr, C0, ePrime) {
				continue
			}
			rep.Pairs++

			// The proof's σ: a finite deciding run from C0 in which p
			// takes no steps.
			var sigma model.Schedule
			found := false
			ExploreFiltered(pr, C0, opt, skipP, func(cfg *model.Config, _ int, path func() model.Schedule) bool {
				if len(cfg.DecisionValues()) > 0 {
					sigma = path()
					found = true
					return true
				}
				return false
			})
			if !found {
				continue
			}
			rep.SigmaFound++

			A := model.MustApplySchedule(pr, C0, sigma)
			D0 := model.MustApply(pr, C0, e)
			C1 := model.MustApply(pr, C0, ePrime)
			D1 := model.MustApply(pr, C1, e)

			// e(A) = σ(D0): σ avoids p, e is p's — Lemma 1.
			if !model.MustApply(pr, A, e).Equal(model.MustApplySchedule(pr, D0, sigma)) {
				rep.Violations++
			}
			// e(e'(A)) = σ(D1): same commutation through the longer arm.
			eA := model.MustApply(pr, A, ePrime)
			if !model.MustApply(pr, eA, e).Equal(model.MustApplySchedule(pr, D1, sigma)) {
				rep.Violations++
			}
		}
		return false
	})
	rep.Complete = complete
	return rep, nil
}

// figure3OnAtlas runs the Case 2 check with σ answered from the atlas: one
// p-free backward pass gives every node's shortest deciding-run-without-p
// length at once, and the run itself is recovered by p-free descent only
// for pairs that have one. The Lemma 1 commutations are then verified on
// concrete configurations exactly as in the direct path.
func figure3OnAtlas(pr model.Protocol, a *Atlas, e model.Event) Figure3Report {
	rep := Figure3Report{Complete: true}
	p := e.P
	pFree := func(ev model.Event) bool { return ev.P != p }
	dist := a.distDecidedAvoiding(p)

	for _, u := range a.frontier(e) {
		var sigma model.Schedule
		haveSigma := false
		for ei := a.succStart[u]; ei < a.succStart[u+1]; ei++ {
			ePrime := a.succVia[ei]
			if ePrime.P != p || ePrime.Same(e) {
				continue
			}
			rep.Pairs++
			if dist[u] < 0 {
				continue // no p-free deciding run from this C0
			}
			rep.SigmaFound++
			if !haveSigma {
				sigma = a.descendWhere(u, dist, pFree)
				haveSigma = true
			}

			C0 := a.Config(u)
			A := model.MustApplySchedule(pr, C0, sigma)
			D0 := model.MustApply(pr, C0, e)
			C1 := a.Config(a.succTo[ei])
			D1 := model.MustApply(pr, C1, e)

			// e(A) = σ(D0): σ avoids p, e is p's — Lemma 1.
			if !model.MustApply(pr, A, e).Equal(model.MustApplySchedule(pr, D0, sigma)) {
				rep.Violations++
			}
			// e(e'(A)) = σ(D1): same commutation through the longer arm.
			eA := model.MustApply(pr, A, ePrime)
			if !model.MustApply(pr, eA, e).Equal(model.MustApplySchedule(pr, D1, sigma)) {
				rep.Violations++
			}
		}
	}
	return rep
}
