package explore

import (
	"fmt"

	"github.com/flpsim/flp/internal/model"
)

// DiamondReport summarizes the Figure 2 check for one (C, e) pair: for
// neighbor configurations C0 ∈ ℰ and C1 = e'(C0) with e' = (p', m') and
// p' ≠ p, Lemma 1 forces the commutativity square
//
//	  C0 ──e'──▶ C1
//	  │           │
//	  e           e
//	  ▼           ▼
//	D0 = e(C0) ──e'──▶ D1 = e(C1)
//
// i.e. e'(e(C0)) = e(e'(C0)). Case 1 of Lemma 3's proof derives its
// contradiction from exactly this square ("D1 = e'(D0) by Lemma 1. This is
// impossible, since any successor of a 0-valent configuration is
// 0-valent").
type DiamondReport struct {
	Event model.Event
	// Squares is the number of (C0, e') pairs checked.
	Squares int
	// Violations counts squares that failed to commute — always zero for
	// a sound model.
	Violations int
	// Complete reports whether ℰ was exhausted within the budget.
	Complete bool
}

// CheckLemma3Diamond verifies the Figure 2 commutativity square on every
// neighbor pair within ℰ (the configurations reachable from C without
// applying e) whose connecting event is by a different process than e's.
// It is Lemma 1 instantiated exactly where the Lemma 3 proof uses it.
//
// When reach(C) fits the budget the squares are checked on the valency
// atlas's recorded adjacency — every corner is an interned node and each
// square is four id lookups instead of four configuration applications and
// a canonical-key comparison. Over-budget state spaces fall back to the
// direct per-square application below.
func CheckLemma3Diamond(pr model.Protocol, c *model.Config, e model.Event, opt Options) (DiamondReport, error) {
	if !model.Applicable(c, e) {
		return DiamondReport{}, fmt.Errorf("explore: event %s not applicable to C", e)
	}
	if atlas, ok := BuildAtlas(pr, c, opt); ok {
		return diamondOnAtlas(atlas, e), nil
	}
	rep := DiamondReport{Event: e}
	complete, _ := Explore(pr, c, opt, &e, func(C0 *model.Config, _ int, _ func() model.Schedule) bool {
		D0 := model.MustApply(pr, C0, e)
		for _, ePrime := range model.Events(C0) {
			if ePrime.Same(e) || ePrime.P == e.P {
				continue
			}
			if ePrime.IsNull() && model.IsNoOp(pr, C0, ePrime) {
				continue
			}
			// Around the square: down-then-right vs right-then-down.
			left := model.MustApply(pr, D0, ePrime)
			C1 := model.MustApply(pr, C0, ePrime)
			right := model.MustApply(pr, C1, e)
			rep.Squares++
			if !left.Equal(right) {
				rep.Violations++
			}
		}
		return false
	})
	rep.Complete = complete
	return rep, nil
}

// diamondOnAtlas checks every Figure 2 square on recorded adjacency. The
// atlas's out-edges are exactly the applicable non-no-op events, so the
// squares enumerated — and their count — match the direct path's; two
// routes around a square commute iff they land on the same interned node
// id, which is configuration equality by the interner's contract.
func diamondOnAtlas(a *Atlas, e model.Event) DiamondReport {
	rep := DiamondReport{Event: e, Complete: true}
	for _, u := range a.frontier(e) {
		d0, ok := a.succByEvent(u, e)
		if !ok {
			panic(fmt.Sprintf("explore: event %s not applicable to member of ℰ; model invariant broken", e))
		}
		for ei := a.succStart[u]; ei < a.succStart[u+1]; ei++ {
			ePrime := a.succVia[ei]
			if ePrime.Same(e) || ePrime.P == e.P {
				continue
			}
			c1 := a.succTo[ei]
			rep.Squares++
			// Around the square: down-then-right vs right-then-down.
			left, lok := a.succByEvent(d0, ePrime)
			right, rok := a.succByEvent(c1, e)
			if !lok || !rok || left != right {
				rep.Violations++
			}
		}
	}
	return rep
}
