package explore

import (
	"fmt"

	"github.com/flpsim/flp/internal/keyedcache"
	"github.com/flpsim/flp/internal/model"
)

// AtlasCache is a shareable, process-wide cache of built valency atlases,
// keyed by (protocol identity, exploration bounds, root configuration)
// with singleflight build semantics: N concurrent requests for the same
// atlas cost exactly one BuildAtlas sweep, and every later request is a
// memory lookup. Refusals (reachable set over budget, depth-bounded
// options) are memoized too, so a root that cannot be covered is probed
// once, not on every query.
//
// This is the cache the serving layer (internal/serve) shares across
// requests and that Cache.TryWarm sources its atlases from — one
// exploration amortized across every consumer that names the same
// (protocol, params, root) tuple. Safe for concurrent use. Atlases are
// immutable, so a cached atlas may be handed to any number of consumers.
type AtlasCache struct {
	c       *keyedcache.Cache[*Atlas]
	backend AtlasBackend
}

// NewAtlasCache returns an empty atlas cache.
func NewAtlasCache() *AtlasCache {
	return &AtlasCache{c: keyedcache.New[*Atlas]()}
}

// AtlasBackend is a second-level atlas source consulted on memory-cache
// misses — in practice atlasstore.Store, which loads persisted artifacts
// and persists fresh builds. GetAtlas must honour BuildAtlas's
// complete-or-refused contract: atlas non-nil iff ok, nil/false for a
// refusal under opt's bounds. The cache memoizes whatever the backend
// answers, refusals included.
type AtlasBackend interface {
	GetAtlas(pr model.Protocol, root *model.Config, opt Options) (*Atlas, bool)
}

// SetBackend installs a second-level source behind the in-memory cache:
// lookups go memory → backend, and the backend (not the cache) decides
// how to build on a full miss. Call before the cache is shared; the
// backend is read without synchronization afterwards.
func (ac *AtlasCache) SetBackend(b AtlasBackend) { ac.backend = b }

// AtlasKey renders the cache identity of an atlas build: the protocol's
// registry name (self-describing for generated gen: protocols) and
// process count, the exploration bounds, and the root's canonical key.
// Options.Workers is deliberately excluded — worker count never changes
// results (the byte-identity contract in Options), so explorations at
// different parallelism share one cache slot.
func AtlasKey(pr model.Protocol, root *model.Config, opt Options) string {
	opt = opt.Normalized()
	return fmt.Sprintf("%s|n=%d|cfg=%d|depth=%d|%s", pr.Name(), pr.N(), opt.MaxConfigs, opt.MaxDepth, root.Key())
}

// Get returns the atlas covering root under opt, building it (once,
// shared across concurrent callers) on first use. ok=false is BuildAtlas's
// complete-or-refused contract surfacing through the cache: the reachable
// set exceeds opt's budget, and the refusal is memoized so repeat callers
// skip straight to their per-configuration fallback.
func (ac *AtlasCache) Get(pr model.Protocol, root *model.Config, opt Options) (*Atlas, bool) {
	a, _, _ := ac.lookup(pr, root, opt)
	return a, a != nil
}

// GetStats is Get plus whether this call was answered without a build —
// the signal the serving layer's cache metrics are fed from.
func (ac *AtlasCache) GetStats(pr model.Protocol, root *model.Config, opt Options) (atlas *Atlas, ok, hit bool) {
	a, _, hit := ac.lookup(pr, root, opt)
	return a, a != nil, hit
}

func (ac *AtlasCache) lookup(pr model.Protocol, root *model.Config, opt Options) (*Atlas, error, bool) {
	return ac.c.Do(AtlasKey(pr, root, opt), func() (*Atlas, error) {
		var atlas *Atlas
		var ok bool
		if ac.backend != nil {
			atlas, ok = ac.backend.GetAtlas(pr, root, opt)
		} else {
			atlas, ok = BuildAtlas(pr, root, opt)
		}
		if !ok {
			return nil, nil // memoized refusal: nil atlas, no error
		}
		return atlas, nil
	})
}

// Len returns the number of cached slots (atlases plus memoized
// refusals).
func (ac *AtlasCache) Len() int { return ac.c.Len() }

// Stats returns cumulative lookup counters: hits answered from memory,
// misses that ran (or refused) a build, and merged lookups that waited on
// a concurrent caller's in-flight build.
func (ac *AtlasCache) Stats() (hits, misses, merged int64) { return ac.c.Stats() }
