package explore_test

import (
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// atlasFixtureN gives every registry protocol its smallest valid size, so
// the differential below covers the whole registry and fails loudly when a
// new protocol is registered without a fixture here.
var atlasFixtureN = map[string]int{
	"trivial0":      2,
	"waitall":       3,
	"naivemajority": 3,
	"2pc":           3,
	"3pc":           3,
	"paxos":         3,
	"benor":         2,
	"onethird":      4,
}

// finiteFixtures are the registry protocols whose reachable sets are known
// to fit the differential budget; the atlas MUST build for these.
var finiteFixtures = map[string]bool{
	"trivial0":      true,
	"waitall":       true,
	"naivemajority": true,
	"2pc":           true,
	"3pc":           true,
}

// atlasTestBudget comfortably covers every finite fixture (the largest,
// naivemajority(3), has 1128 reachable configurations) while keeping the
// refusal sweeps of the unbounded fixtures cheap.
const atlasTestBudget = 3000

func registryFixture(t *testing.T, name string) model.Protocol {
	t.Helper()
	n, ok := atlasFixtureN[name]
	if !ok {
		t.Fatalf("registry protocol %q has no fixture size; extend atlasFixtureN", name)
	}
	factory, ok := protocols.Lookup(name)
	if !ok {
		t.Fatalf("registry lost protocol %q", name)
	}
	pr, err := factory(n)
	if err != nil {
		t.Fatalf("building %s(%d): %v", name, n, err)
	}
	return pr
}

func schedulesEqual(a, b model.Schedule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Same(b[i]) {
			return false
		}
	}
	return true
}

// TestAtlasDifferentialAgainstClassify is the atlas's correctness contract:
// for every registry protocol and every initial input vector, every node of
// the atlas must classify identically to a per-configuration Classify under
// the same budget — same valency, same exactness, same witness presence,
// and same (shortest) witness lengths. Worker counts 1 and 8 must build
// byte-identical atlases. Protocols whose state spaces exceed the budget
// must refuse to build at every worker count — the per-config fallback is
// then the only path, and there is nothing to differ.
func TestAtlasDifferentialAgainstClassify(t *testing.T) {
	for _, name := range protocols.Names() {
		t.Run(name, func(t *testing.T) {
			pr := registryFixture(t, name)
			opt1 := explore.Options{MaxConfigs: atlasTestBudget, Workers: 1}
			opt8 := explore.Options{MaxConfigs: atlasTestBudget, Workers: 8}
			built := 0
			for _, inp := range model.AllInputs(pr.N()) {
				root := model.MustInitial(pr, inp)
				a1, ok1 := explore.BuildAtlas(pr, root, opt1)
				a8, ok8 := explore.BuildAtlas(pr, root, opt8)
				if ok1 != ok8 {
					t.Fatalf("inputs %s: atlas built at 1 worker = %v but at 8 workers = %v", inp, ok1, ok8)
				}
				if !ok1 {
					if finiteFixtures[name] {
						t.Fatalf("inputs %s: atlas refused to build for a finite protocol within budget %d", inp, atlasTestBudget)
					}
					// Over-budget root: the remaining inputs are the same
					// size; skip them rather than paying more failed sweeps.
					break
				}
				built++
				diffAtlasPair(t, a1, a8, inp)
				diffAtlasVsClassify(t, pr, a1, opt1, inp)
			}
			if finiteFixtures[name] && built != len(model.AllInputs(pr.N())) {
				t.Errorf("built %d atlases, want one per input vector", built)
			}
		})
	}
}

// diffAtlasPair checks worker-count determinism: two atlases of the same
// root must agree node for node, including recovered witness schedules.
func diffAtlasPair(t *testing.T, a1, a8 *explore.Atlas, inp model.Inputs) {
	t.Helper()
	if a1.Len() != a8.Len() || a1.Edges() != a8.Edges() {
		t.Fatalf("inputs %s: workers 1 vs 8 disagree on size: %d/%d nodes, %d/%d edges",
			inp, a1.Len(), a8.Len(), a1.Edges(), a8.Edges())
	}
	for id := int32(0); id < int32(a1.Len()); id++ {
		cfg := a1.Config(id)
		id8, ok := a8.IDOf(cfg)
		if !ok || id8 != id {
			t.Fatalf("inputs %s: node %d not at the same id in the 8-worker atlas (got %d, ok=%v)", inp, id, id8, ok)
		}
		i1, i8 := a1.InfoAt(id), a8.InfoAt(id)
		if i1.Valency != i8.Valency || i1.Exact != i8.Exact ||
			!schedulesEqual(i1.Witness0, i8.Witness0) || !schedulesEqual(i1.Witness1, i8.Witness1) {
			t.Fatalf("inputs %s node %d: workers 1 vs 8 disagree: %+v vs %+v", inp, id, i1, i8)
		}
		if !schedulesEqual(a1.PathTo(id), a8.PathTo(id)) {
			t.Fatalf("inputs %s node %d: root paths differ between worker counts", inp, id)
		}
	}
}

// diffAtlasVsClassify compares every atlas node against per-configuration
// Classify and replays every recovered witness.
func diffAtlasVsClassify(t *testing.T, pr model.Protocol, a *explore.Atlas, opt explore.Options, inp model.Inputs) {
	t.Helper()
	for id := int32(0); id < int32(a.Len()); id++ {
		cfg := a.Config(id)
		got := a.InfoAt(id)
		want := explore.Classify(pr, cfg, opt)
		if got.Valency != want.Valency {
			t.Fatalf("inputs %s node %d: atlas says %s, Classify says %s", inp, id, got.Valency, want.Valency)
		}
		// Exactness must match; Complete may not — Classify stops as soon as
		// both decision values are seen, so a bivalent node reports
		// Complete=false while the atlas, which exhausted the reachable set
		// by construction, truthfully reports Complete=true.
		if got.Exact != want.Exact {
			t.Fatalf("inputs %s node %d: exact = %v, Classify = %v", inp, id, got.Exact, want.Exact)
		}
		for _, d := range []model.Value{model.V0, model.V1} {
			if got.HasWitness(d) != want.HasWitness(d) {
				t.Fatalf("inputs %s node %d: HasWitness(%v) = %v, Classify = %v",
					inp, id, d, got.HasWitness(d), want.HasWitness(d))
			}
			wl, ok := a.WitnessLen(id, d)
			if ok != got.HasWitness(d) {
				t.Fatalf("inputs %s node %d: WitnessLen ok=%v but HasWitness=%v", inp, id, ok, got.HasWitness(d))
			}
			if !ok {
				continue
			}
			// Both searches are breadth-first, so witness lengths must match
			// exactly even though the schedules themselves may differ.
			wantW := want.Witness0
			gotW := got.Witness0
			if d == model.V1 {
				wantW, gotW = want.Witness1, got.Witness1
			}
			if len(gotW) != wl || len(wantW) != wl {
				t.Fatalf("inputs %s node %d: witness(%v) lengths atlas=%d classify=%d distance=%d",
					inp, id, d, len(gotW), len(wantW), wl)
			}
			// Replay: the atlas's witness must actually reach a d-decision.
			end := model.MustApplySchedule(pr, cfg, gotW)
			found := false
			for _, dv := range end.DecisionValues() {
				if dv == d {
					found = true
				}
			}
			if !found {
				t.Fatalf("inputs %s node %d: witness(%v) replay does not reach a %v decision", inp, id, d, d)
			}
		}
	}
}

// TestAtlasPathToReplaysToNode checks the breadth-first tree: PathTo(id)
// must replay from the root to exactly node id's configuration.
func TestAtlasPathToReplaysToNode(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	root := model.MustInitial(pr, in(0, 1, 1))
	a, ok := explore.BuildAtlas(pr, root, explore.Options{})
	if !ok {
		t.Fatal("atlas refused to build on the finite fixture")
	}
	for id := int32(0); id < int32(a.Len()); id++ {
		end := model.MustApplySchedule(pr, root, a.PathTo(id))
		if !end.Equal(a.Config(id)) {
			t.Fatalf("node %d: PathTo does not replay to the node's configuration", id)
		}
	}
}

// TestAtlasStuck covers the V = ∅ class: a protocol that never decides
// classifies every node Stuck, identically to Classify.
func TestAtlasStuck(t *testing.T) {
	pr := muteProto{}
	root := model.MustInitial(pr, in(0, 1))
	a, ok := explore.BuildAtlas(pr, root, explore.Options{})
	if !ok {
		t.Fatal("atlas refused to build the mute protocol")
	}
	census := a.Census()
	if census[explore.Stuck] != a.Len() || a.Len() == 0 {
		t.Fatalf("census = %v over %d nodes, want all stuck", census, a.Len())
	}
	info, ok := a.Info(root)
	if !ok || info.Valency != explore.Stuck || !info.Exact {
		t.Fatalf("root info = %+v, ok=%v; want exact stuck", info, ok)
	}
}

// TestBuildAtlasRefusals pins the fallback conditions: depth-bounded
// options and over-budget state spaces must refuse, not truncate.
func TestBuildAtlasRefusals(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	root := model.MustInitial(pr, in(0, 1, 1))
	if _, ok := explore.BuildAtlas(pr, root, explore.Options{MaxDepth: 3}); ok {
		t.Error("depth-bounded atlas accepted; depth is root-relative and must refuse")
	}
	if _, ok := explore.BuildAtlas(pr, root, explore.Options{MaxConfigs: 10}); ok {
		t.Error("over-budget atlas accepted; truncated atlases must not exist")
	}
	if a, ok := explore.BuildAtlas(pr, root, explore.Options{}); !ok || a.Len() == 0 {
		t.Error("unbounded-budget atlas refused on a finite protocol")
	}
}

// TestCacheWarmAnswersFromAtlas checks the Cache integration: a warmed
// cache must answer every covered configuration as a hit without running a
// single per-configuration classification.
func TestCacheWarmAnswersFromAtlas(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	root := model.MustInitial(pr, in(0, 1, 1))
	opt := explore.Options{}
	a, ok := explore.BuildAtlas(pr, root, opt)
	if !ok {
		t.Fatal("atlas refused to build")
	}
	cache := explore.NewCache(pr, opt)
	cache.Warm(a)
	if !cache.Covers(root) {
		t.Fatal("warmed cache does not cover its atlas root")
	}
	for id := int32(0); id < int32(a.Len()); id++ {
		want := a.InfoAt(id)
		got := cache.Classify(a.Config(id))
		if got.Valency != want.Valency || got.Exact != want.Exact {
			t.Fatalf("node %d: cache says %s/%v, atlas says %s/%v", id, got.Valency, got.Exact, want.Valency, want.Exact)
		}
	}
	hits, misses := cache.Stats()
	if misses != 0 {
		t.Errorf("%d per-configuration classifications ran behind a full atlas (hits=%d)", misses, hits)
	}
}

// TestCacheTryWarm pins TryWarm's contract: success on coverable roots,
// memoized failure on over-budget ones.
func TestCacheTryWarm(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	root := model.MustInitial(pr, in(0, 1, 1))
	cache := explore.NewCache(pr, explore.Options{})
	if !cache.TryWarm(root) {
		t.Fatal("TryWarm failed on a finite root")
	}
	if !cache.TryWarm(root) {
		t.Fatal("second TryWarm on a covered root failed")
	}

	small := explore.NewCache(pr, explore.Options{MaxConfigs: 10})
	if small.TryWarm(root) {
		t.Fatal("TryWarm succeeded over budget")
	}
	if small.TryWarm(root) {
		t.Fatal("memoized TryWarm failure flipped to success")
	}
	if info := small.Classify(root); info.Valency != explore.Unknown {
		t.Errorf("budget-10 classification = %s, want unknown", info.Valency)
	}
}
