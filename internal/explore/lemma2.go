package explore

import (
	"github.com/flpsim/flp/internal/model"
)

// InitialValency is the classification of one initial configuration.
type InitialValency struct {
	Inputs model.Inputs
	Info   ValencyInfo
}

// AdjacentPair is a pair of initial configurations differing in the input
// of exactly one process, with the valency of each side — the object at the
// heart of the Lemma 2 proof: a 0-valent initial configuration adjacent to
// a 1-valent one forces a bivalent one (by delaying the differing process).
type AdjacentPair struct {
	Zero, One model.Inputs
	Differ    model.PID
}

// InitialCensus is the result of classifying every initial configuration of
// a protocol — the mechanized content of Lemma 2.
type InitialCensus struct {
	Protocol string
	N        int
	PerInput []InitialValency
	// Counts tallies classifications.
	Counts map[Valency]int
	// Bivalent is the first bivalent initial configuration found, if any.
	Bivalent *InitialValency
	// Adjacent is a 0-valent/1-valent adjacent pair, when one exists among
	// the exactly-classified configurations; the Lemma 2 proof derives a
	// contradiction from such a pair, so for protocols where Lemma 2
	// applies, finding one alongside no bivalent configuration would
	// falsify the lemma.
	Adjacent *AdjacentPair
	// AllExact reports whether every classification was definitive.
	AllExact bool
}

// HasBivalent reports whether a bivalent initial configuration was found.
func (ic InitialCensus) HasBivalent() bool { return ic.Bivalent != nil }

// CensusInitial classifies all 2^N initial configurations of pr.
//
// Each root whose reachable set fits the budget is classified from a
// valency atlas: one graph sweep plus a backward pass — the same
// exhaustive cost the univalent and stuck roots (the bulk of a census)
// already paid under per-configuration search, now also yielding exact
// classifications with shortest witnesses for both decision values at
// bivalent roots. Roots whose state space exceeds the budget fall back to
// budgeted Classify, unchanged.
func CensusInitial(pr model.Protocol, opt Options) (InitialCensus, error) {
	census := InitialCensus{
		Protocol: pr.Name(),
		N:        pr.N(),
		Counts:   make(map[Valency]int),
		AllExact: true,
	}
	for _, in := range model.AllInputs(pr.N()) {
		c, err := model.Initial(pr, in)
		if err != nil {
			return census, err
		}
		info := ClassifyRoot(pr, c, opt)
		iv := InitialValency{Inputs: in, Info: info}
		census.PerInput = append(census.PerInput, iv)
		census.Counts[info.Valency]++
		if !info.Exact {
			census.AllExact = false
		}
		if info.Valency == Bivalent && census.Bivalent == nil {
			ivCopy := iv
			census.Bivalent = &ivCopy
		}
	}
	census.Adjacent = findAdjacentPair(census.PerInput)
	return census, nil
}

// ClassifyRoot classifies one exploration root: from a valency atlas over
// its reachable set when the budget allows — exact for all four classes,
// with shortest witnesses for both decision values — and by budgeted
// per-configuration Classify otherwise. This is the per-root engine
// behind CensusInitial; the serving layer calls it (via
// ClassifyRootCached) so served classifications are identical to the
// CLI's.
func ClassifyRoot(pr model.Protocol, c *model.Config, opt Options) ValencyInfo {
	if atlas, ok := BuildAtlas(pr, c, opt); ok {
		return atlas.InfoAt(0)
	}
	return Classify(pr, c, opt)
}

// ClassifyRootCached is ClassifyRoot sourcing its atlas from ac: the
// first call for a (protocol, bounds, root) tuple pays the build, every
// later call — concurrent or not — reads the shared atlas. Results are
// identical to ClassifyRoot's, both paths being deterministic; only the
// cost changes.
func ClassifyRootCached(pr model.Protocol, c *model.Config, opt Options, ac *AtlasCache) ValencyInfo {
	if atlas, ok := ac.Get(pr, c, opt); ok {
		return atlas.InfoAt(0)
	}
	return Classify(pr, c, opt)
}

// findAdjacentPair scans classified initial configurations for a 0-valent
// one adjacent to a 1-valent one (exact classifications only).
func findAdjacentPair(ivs []InitialValency) *AdjacentPair {
	for i := range ivs {
		if !ivs[i].Info.Exact || ivs[i].Info.Valency != ZeroValent {
			continue
		}
		for j := range ivs {
			if !ivs[j].Info.Exact || ivs[j].Info.Valency != OneValent {
				continue
			}
			if p, ok := ivs[i].Inputs.AdjacentTo(ivs[j].Inputs); ok {
				return &AdjacentPair{Zero: ivs[i].Inputs, One: ivs[j].Inputs, Differ: p}
			}
		}
	}
	return nil
}

// FindBivalentInitial returns a bivalent initial configuration of pr,
// scanning input assignments in order. It reports ok=false if none was
// certified within the budget.
func FindBivalentInitial(pr model.Protocol, opt Options) (*model.Config, model.Inputs, bool) {
	for _, in := range model.AllInputs(pr.N()) {
		c, err := model.Initial(pr, in)
		if err != nil {
			return nil, nil, false
		}
		if info := Classify(pr, c, opt); info.Valency == Bivalent {
			return c, in, true
		}
	}
	return nil, nil, false
}
