package explore

import (
	"sync"
	"sync/atomic"
)

// succPool recycles the per-level allocations of the level-synchronous
// engines: the outer successor-list slice (one slot per frontier node) and
// the per-node successor buffers. One pool serves one exploration, owned by
// the coordinator; buffers are handed out before a level's workers start
// and taken back after the level is merged, so no worker ever touches the
// free list concurrently. In steady state a level costs zero successor
// allocations beyond frontier growth itself.
type succPool struct {
	exps [][]Successor // level-indexed scratch, reused every level
	free [][]Successor // recycled successor buffers, len 0, cap > 0
}

// level returns a successor-list slice of length n with recycled buffers
// pre-distributed into its slots (nil where the free list ran dry —
// AppendSuccessors grows those into fresh buffers that future levels then
// recycle). The slice aliases the pool's scratch: it is valid until the
// next level call, which is exactly the coordinator's merge window.
func (p *succPool) level(n int) [][]Successor {
	if cap(p.exps) < n {
		p.exps = make([][]Successor, n)
	}
	out := p.exps[:n]
	for i := range out {
		if f := len(p.free) - 1; f >= 0 {
			out[i] = p.free[f]
			p.free = p.free[:f]
		} else {
			out[i] = nil
		}
	}
	return out
}

// recycle takes a merged level's buffers back, clearing every entry so
// recycled slots do not retain dead configurations across levels.
func (p *succPool) recycle(out [][]Successor) {
	for i, s := range out {
		out[i] = nil
		if cap(s) == 0 {
			continue
		}
		s = s[:cap(s)]
		for j := range s {
			s[j] = Successor{}
		}
		p.free = append(p.free, s[:0])
	}
}

// expandLevel runs expand over every node of one breadth-first level on a
// pool of workers and returns the successor lists indexed like level.
// Expansion is pure, so the only coordination is work distribution: an
// atomic cursor hands out node indices, which keeps fast workers busy when
// node costs are uneven. Each slot of the returned slice carries a
// recycled buffer from p that expand appends into; the caller must hand
// the slice back with p.recycle once merged.
//
// A panic in any worker (a protocol contract violation surfacing through
// MustApply) is re-raised on the caller's goroutine once the pool has
// drained. When several nodes of the level panic, the one at the lowest
// frontier index is re-raised — the node the sequential engine would have
// reached first — so the surfaced failure is byte-identical at every
// worker count.
func expandLevel(level []node, expand func(node, []Successor) []Successor, workers int, p *succPool) [][]Successor {
	out := p.level(len(level))
	if len(level) == 1 {
		out[0] = expand(level[0], out[0])
		return out
	}
	if workers > len(level) {
		workers = len(level)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	type workerPanic struct {
		index int // frontier index being expanded when the panic fired
		value any
	}
	panics := make([]*workerPanic, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := -1
			defer func() {
				if r := recover(); r != nil {
					panics[w] = &workerPanic{index: cur, value: r}
				}
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(level) {
					return
				}
				cur = i
				out[i] = expand(level[i], out[i])
			}
		}(w)
	}
	wg.Wait()
	var first *workerPanic
	for _, p := range panics {
		if p != nil && (first == nil || p.index < first.index) {
			first = p
		}
	}
	if first != nil {
		panic(first.value)
	}
	return out
}
