package explore

import (
	"sync"
	"sync/atomic"
)

// expandLevel runs expand over every node of one breadth-first level on a
// pool of workers and returns the successor lists indexed like level.
// Expansion is pure, so the only coordination is work distribution: an
// atomic cursor hands out node indices, which keeps fast workers busy when
// node costs are uneven. A panic in any worker (a protocol contract
// violation surfacing through MustApply) is re-raised on the caller's
// goroutine once the pool has drained, matching the sequential engine's
// behaviour.
func expandLevel(level []node, expand func(node) []succ, workers int) [][]succ {
	out := make([][]succ, len(level))
	if len(level) == 1 {
		out[0] = expand(level[0])
		return out
	}
	if workers > len(level) {
		workers = len(level)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	panics := make([]any, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(level) {
					return
				}
				out[i] = expand(level[i])
			}
		}(w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	return out
}
