package explore

import (
	"sync"
	"sync/atomic"
)

// expandLevel runs expand over every node of one breadth-first level on a
// pool of workers and returns the successor lists indexed like level.
// Expansion is pure, so the only coordination is work distribution: an
// atomic cursor hands out node indices, which keeps fast workers busy when
// node costs are uneven.
//
// A panic in any worker (a protocol contract violation surfacing through
// MustApply) is re-raised on the caller's goroutine once the pool has
// drained. When several nodes of the level panic, the one at the lowest
// frontier index is re-raised — the node the sequential engine would have
// reached first — so the surfaced failure is byte-identical at every
// worker count.
func expandLevel(level []node, expand func(node) []Successor, workers int) [][]Successor {
	out := make([][]Successor, len(level))
	if len(level) == 1 {
		out[0] = expand(level[0])
		return out
	}
	if workers > len(level) {
		workers = len(level)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	type workerPanic struct {
		index int // frontier index being expanded when the panic fired
		value any
	}
	panics := make([]*workerPanic, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := -1
			defer func() {
				if r := recover(); r != nil {
					panics[w] = &workerPanic{index: cur, value: r}
				}
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(level) {
					return
				}
				cur = i
				out[i] = expand(level[i])
			}
		}(w)
	}
	wg.Wait()
	var first *workerPanic
	for _, p := range panics {
		if p != nil && (first == nil || p.index < first.index) {
			first = p
		}
	}
	if first != nil {
		panic(first.value)
	}
	return out
}
