package explore

import (
	"github.com/flpsim/flp/internal/model"
)

// This file is the engine core shared by every exploration engine: the
// sequential and parallel in-process engines of this package and the
// distributed engine of package distexplore. All three are the same
// breadth-first algorithm — expand frontier nodes in canonical order,
// deduplicate successors against a visited set, admit first-seen
// configurations under a budget — differing only in where the work runs.
// Factoring expansion (ExpandConfig) and admission accounting (Ledger)
// here is what makes the byte-identical-results contract a property of one
// implementation rather than three parallel reimplementations.

// Successor is one expansion product: the applied event together with the
// resulting configuration, its fingerprint precomputed.
type Successor struct {
	Via model.Event
	Cfg *model.Config
}

// skipEvent reports whether e is excluded from the expansion of c: either
// the caller's filter rejects it, or it is a null event that would not
// change the system state (skipping no-op nulls is what keeps the explored
// state space of a finite protocol finite).
func skipEvent(pr model.Protocol, c *model.Config, e model.Event, skip func(model.Event) bool) bool {
	if skip != nil && skip(e) {
		return true
	}
	return e.IsNull() && model.IsNoOp(pr, c, e)
}

// ExpandConfig enumerates the successors of c under pr in canonical event
// order, applying the same event filtering as every engine's merge path.
// It is a pure function of its arguments (pr must honour the Protocol
// contract of determinism and side-effect freedom), so it may run on any
// worker — an in-process goroutine or a remote shard — without changing
// results. Fingerprints are computed here, off the merge path.
func ExpandConfig(pr model.Protocol, c *model.Config, skip func(model.Event) bool) []Successor {
	return AppendSuccessors(pr, c, skip, nil)
}

// AppendSuccessors is ExpandConfig appending into a caller-owned buffer, so
// level-synchronous engines can recycle successor slices across levels
// instead of allocating one per expanded node. dst is truncated before use;
// the returned slice is dst grown in place when capacity allows.
func AppendSuccessors(pr model.Protocol, c *model.Config, skip func(model.Event) bool, dst []Successor) []Successor {
	dst = dst[:0]
	for _, e := range model.Events(c) {
		if skipEvent(pr, c, e, skip) {
			continue
		}
		nc := model.MustApply(pr, c, e)
		nc.Hash()
		dst = append(dst, Successor{Via: e, Cfg: nc})
	}
	return dst
}

// AvoidFilter returns the event filter realizing Lemma 3's set ℰ of
// "configurations reachable without applying e": events Same as *avoid are
// rejected. A nil avoid yields a nil filter (admit everything). The filter
// is a pure function of the event, so it is safe for concurrent use and
// can be reconstructed from a serialized event on a remote worker.
func AvoidFilter(avoid *model.Event) func(model.Event) bool {
	if avoid == nil {
		return nil
	}
	return func(e model.Event) bool { return e.Same(*avoid) }
}

// Ledger is the admission bookkeeping shared by every engine: how many
// configurations have been admitted to the frontier, whether the
// exploration was truncated (by budget or depth), and whether the frontier
// is sealed. Engines consult it in deterministic merge order — a single
// coordinator goroutine in-process, the coordinator process in the
// distributed engine — so Ledger itself needs no synchronization.
type Ledger struct {
	// MaxConfigs and MaxDepth mirror the exploration's Options after
	// defaulting.
	MaxConfigs int
	MaxDepth   int
	// Count is the number of admitted configurations, the root included.
	Count int
	// Truncated records that some reachable configuration may have been
	// cut off (budget overflow or depth cutoff); the exploration then
	// reports complete=false.
	Truncated bool
}

// NewLedger returns the admission ledger for one exploration. The root is
// always admitted, so Count starts at 1.
func NewLedger(opt Options) *Ledger {
	opt = opt.Normalized()
	return &Ledger{MaxConfigs: opt.MaxConfigs, MaxDepth: opt.MaxDepth, Count: 1}
}

// ShouldExpand reports whether a node at the given depth may be expanded,
// recording depth-cutoff truncation when it may not. Call it exactly when
// the node is visited, so the Truncated flag is set by the same node in
// every engine. (A pure variant for speculative workers is DepthCapped.)
func (l *Ledger) ShouldExpand(depth int) bool {
	if l.MaxDepth > 0 && depth >= l.MaxDepth {
		l.Truncated = true
		return false
	}
	return true
}

// DepthCapped is the pure form of the depth cutoff, for expansion workers
// (in-process or remote) that must not race on the Truncated flag.
func (o Options) DepthCapped(depth int) bool {
	return o.MaxDepth > 0 && depth >= o.MaxDepth
}

// Admit accounts for one first-seen configuration, reporting whether it
// joins the frontier. A fresh configuration arriving at a full frontier
// marks the exploration truncated — dedup comes first, so only genuinely
// new states spend budget. Count never decreases, so once Admit has
// returned false it returns false forever.
func (l *Ledger) Admit() bool {
	if l.Count >= l.MaxConfigs {
		l.Truncated = true
		return false
	}
	l.Count++
	return true
}

// Sealed reports that the frontier can never grow again, making further
// expansion pure waste. Truncated alone is not enough: an exactly-full
// frontier must still expand to learn whether a fresh successor exists,
// which is what distinguishes complete from truncated; and a depth-capped
// level seals nothing because shallower nodes may still be admitted.
func (l *Ledger) Sealed() bool { return l.Truncated && l.Count >= l.MaxConfigs }

// Complete reports whether the reachable set was exhausted.
func (l *Ledger) Complete() bool { return !l.Truncated }
