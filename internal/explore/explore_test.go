package explore_test

import (
	"math/rand"
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

func in(vals ...model.Value) model.Inputs { return model.Inputs(vals) }

func TestExploreVisitsRootFirst(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, in(0, 1, 1))
	first := true
	rootSeen := false
	complete, visited := explore.Explore(pr, c, explore.Options{}, nil,
		func(cfg *model.Config, depth int, path func() model.Schedule) bool {
			if first {
				first = false
				rootSeen = cfg.Equal(c) && depth == 0 && len(path()) == 0
			}
			return false
		})
	if !rootSeen {
		t.Error("root configuration not visited first at depth 0")
	}
	if !complete {
		t.Error("exploration of a finite protocol did not complete")
	}
	if visited < 10 {
		t.Errorf("visited only %d configurations", visited)
	}
}

func TestExplorePathsAreValid(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, in(0, 1, 1))
	checked := 0
	explore.Explore(pr, c, explore.Options{}, nil,
		func(cfg *model.Config, depth int, path func() model.Schedule) bool {
			sigma := path()
			if len(sigma) != depth {
				t.Fatalf("path length %d != depth %d", len(sigma), depth)
			}
			got, err := model.ApplySchedule(pr, c, sigma)
			if err != nil {
				t.Fatalf("path not applicable: %v", err)
			}
			if !got.Equal(cfg) {
				t.Fatalf("path does not lead to visited configuration")
			}
			checked++
			return checked >= 40 // sampling the first 40 suffices
		})
	if checked < 40 {
		t.Errorf("only %d configurations checked", checked)
	}
}

func TestExploreBudget(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, in(0, 1, 1))
	complete, visited := explore.Explore(pr, c, explore.Options{MaxConfigs: 10}, nil, nil)
	if complete {
		t.Error("truncated exploration reported complete")
	}
	if visited > 10 {
		t.Errorf("visited %d > budget 10", visited)
	}
}

func TestExploreMaxDepth(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, in(0, 1, 1))
	maxSeen := 0
	complete, _ := explore.Explore(pr, c, explore.Options{MaxDepth: 2}, nil,
		func(_ *model.Config, depth int, _ func() model.Schedule) bool {
			if depth > maxSeen {
				maxSeen = depth
			}
			return false
		})
	if maxSeen > 2 {
		t.Errorf("depth %d exceeds MaxDepth 2", maxSeen)
	}
	if complete {
		t.Error("depth-truncated exploration reported complete")
	}
}

func TestExploreAvoidEvent(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, in(0, 1, 1))
	avoid := model.NullEvent(0)
	explore.Explore(pr, c, explore.Options{}, &avoid,
		func(cfg *model.Config, _ int, path func() model.Schedule) bool {
			for _, e := range path() {
				if e.Same(avoid) {
					t.Fatal("avoided event appears in an exploration path")
				}
			}
			return false
		})
}

func TestReachable(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, in(0, 1, 1))
	target := model.MustApply(pr, model.MustApply(pr, c, model.NullEvent(0)), model.NullEvent(1))
	sigma, ok := explore.Reachable(pr, c, target, explore.Options{})
	if !ok {
		t.Fatal("known-reachable configuration reported unreachable")
	}
	if got := model.MustApplySchedule(pr, c, sigma); !got.Equal(target) {
		t.Error("witness schedule does not reach the target")
	}
	// A configuration of a different protocol instance is unreachable.
	other := model.MustInitial(pr, in(1, 1, 1))
	if _, ok := explore.Reachable(pr, c, other, explore.Options{}); ok {
		t.Error("initial configuration with different inputs reported reachable")
	}
}

func TestCountReachableFinite(t *testing.T) {
	pr := protocols.NewTwoPhaseCommit(3)
	c := model.MustInitial(pr, in(1, 1, 1))
	count, exact := explore.CountReachable(pr, c, explore.Options{})
	if !exact {
		t.Error("2PC exploration did not complete")
	}
	if count <= 1 {
		t.Errorf("reachable count = %d", count)
	}
}

func TestRandomDisjointSchedulesCommute(t *testing.T) {
	for _, pr := range []model.Protocol{
		protocols.NewNaiveMajority(4),
		protocols.NewWaitAll(4),
		protocols.NewTwoPhaseCommit(4),
	} {
		r := rand.New(rand.NewSource(7))
		c := model.MustInitial(pr, in(0, 1, 0, 1))
		for i := 0; i < 50; i++ {
			s1, s2 := explore.RandomDisjointSchedules(pr, c, r, 6)
			if err := explore.CheckCommutativity(pr, c, s1, s2); err != nil {
				t.Errorf("%s: Lemma 1 violated: %v\nσ1=%s\nσ2=%s", pr.Name(), err, s1, s2)
			}
		}
	}
}

func TestCheckCommutativityRejectsOverlap(t *testing.T) {
	pr := protocols.NewWaitAll(3)
	c := model.MustInitial(pr, in(0, 1, 1))
	s := model.Schedule{model.NullEvent(0)}
	if err := explore.CheckCommutativity(pr, c, s, s); err == nil {
		t.Error("overlapping schedules accepted for a Lemma 1 check")
	}
}
