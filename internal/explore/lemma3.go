package explore

import (
	"fmt"

	"github.com/flpsim/flp/internal/model"
)

// Lemma3Result is the mechanized content of Lemma 3 for one (C, e) pair:
// with ℰ the configurations reachable from C without applying e, and
// D = e(ℰ), the lemma asserts D contains a bivalent configuration.
type Lemma3Result struct {
	Event model.Event
	// FrontierSize is |ℰ| examined (equals |D| examined, since e is
	// applicable to every member of ℰ).
	FrontierSize int
	// DValencies tallies the classification of each member of D.
	DValencies map[Valency]int
	// BivalentFound reports whether a bivalent member of D was certified.
	BivalentFound bool
	// Sigma is a schedule from C in which e is the last event applied and
	// whose result is bivalent, when found.
	Sigma model.Schedule
	// Complete reports whether ℰ was exhausted within the budget.
	Complete bool
}

// CensusLemma3 examines the full frontier D for a configuration C and
// applicable event e: it classifies e(E) for every E ∈ ℰ (up to the
// budget), tallies the classes, and records a witness schedule to a
// bivalent member. For a bivalent C of a protocol within the lemma's
// hypotheses, BivalentFound must come back true.
//
// cache may be nil; passing one shares classifications — and the valency
// atlas the first call builds over reach(C) — across calls, which is the
// right mode for examining several events from the same C (flpcheck's
// Lemma 3 section) or successive stages of the adversary. With a nil
// cache, the census classifies the whole frontier from one atlas built for
// this call alone (or, when the state space exceeds the budget, from a
// private per-configuration cache allocated on first use).
func CensusLemma3(pr model.Protocol, c *model.Config, e model.Event, opt Options, cache *Cache) (Lemma3Result, error) {
	return lemma3(pr, c, e, opt, cache, false)
}

// FindBivalentExtension searches ℰ in breadth-first order and returns as
// soon as a bivalent e(E) is certified — the primitive each stage of the
// Theorem 1 adversary is built on. The returned Sigma ends with e.
func FindBivalentExtension(pr model.Protocol, c *model.Config, e model.Event, opt Options, cache *Cache) (Lemma3Result, error) {
	return lemma3(pr, c, e, opt, cache, true)
}

func lemma3(pr model.Protocol, c *model.Config, e model.Event, opt Options, cache *Cache, stopAtFirst bool) (Lemma3Result, error) {
	if !model.Applicable(c, e) {
		return Lemma3Result{}, fmt.Errorf("explore: event %s not applicable to C", e)
	}
	classify := frontierClassifier(pr, c, opt, cache, stopAtFirst)
	res := Lemma3Result{Event: e, DValencies: make(map[Valency]int)}
	complete, _ := Explore(pr, c, opt, &e, func(E *model.Config, _ int, path func() model.Schedule) bool {
		res.FrontierSize++
		// e is applicable to every E ∈ ℰ: for a delivery event, only e
		// itself could consume its message, and e is excluded from ℰ's
		// schedules; null events are always applicable. Assert anyway.
		if !model.Applicable(E, e) {
			panic(fmt.Sprintf("explore: event %s not applicable to member of ℰ; model invariant broken", e))
		}
		D := model.MustApply(pr, E, e)
		v := classify(D)
		res.DValencies[v]++
		if v == Bivalent && res.Sigma == nil {
			res.BivalentFound = true
			res.Sigma = append(path(), e)
			if stopAtFirst {
				return true
			}
		}
		return false
	})
	res.Complete = complete
	return res, nil
}

// frontierClassifier picks how the members of D = e(ℰ) are classified.
// Every D lies in reach(C), and the frontier's reachable sets overlap
// almost completely, so the census case wants one valency atlas over
// reach(C) answering all of them in O(V+E) rather than one breadth-first
// search per member:
//
//   - a caller-supplied cache is warmed with that atlas (TryWarm is a
//     no-op when a previous call already covered C, and remembers
//     over-budget roots so unbounded protocols pay the failed sweep once);
//   - with no cache, a full census builds the atlas privately;
//   - the early-exit search (FindBivalentExtension without a cache)
//     typically inspects a handful of members, so it skips the build and
//     classifies per configuration — through a cache allocated only when
//     the first classification actually runs, not one 32-shard table per
//     call whether used or not;
//   - when the reachable set exceeds the budget, every path falls back to
//     budgeted per-configuration classification, which is the pre-atlas
//     behaviour exactly.
func frontierClassifier(pr model.Protocol, c *model.Config, opt Options, cache *Cache, stopAtFirst bool) func(*model.Config) Valency {
	if cache != nil {
		cache.TryWarm(c)
		return func(D *model.Config) Valency { return cache.Classify(D).Valency }
	}
	if !stopAtFirst {
		if atlas, ok := BuildAtlas(pr, c, opt); ok {
			return func(D *model.Config) Valency {
				if id, ok := atlas.IDOf(D); ok {
					return atlas.ValencyAt(id)
				}
				// Unreachable for a complete atlas (every D is reachable
				// from C); classify defensively rather than crash.
				return Classify(pr, D, opt).Valency
			}
		}
	}
	var lazy *Cache
	return func(D *model.Config) Valency {
		if lazy == nil {
			lazy = NewCache(pr, opt)
		}
		return lazy.Classify(D).Valency
	}
}
