package explore

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/flpsim/flp/internal/model"
)

// Valency classifies a configuration C by V, the set of decision values of
// configurations reachable from C (Section 3 of the paper).
type Valency int

const (
	// Unknown: the exploration budget was exhausted before the class
	// could be established (fewer than two values seen, reachable set not
	// exhausted).
	Unknown Valency = iota
	// Stuck: the reachable set was exhausted and contains no decision at
	// all (V = ∅). The paper rules this out for totally correct protocols
	// ("by the total correctness of P ... V ≠ ∅"); protocols that block —
	// 2PC with a dead coordinator — exhibit it.
	Stuck
	// ZeroValent: V = {0}.
	ZeroValent
	// OneValent: V = {1}.
	OneValent
	// Bivalent: V = {0, 1}.
	Bivalent
)

func (v Valency) String() string {
	switch v {
	case Unknown:
		return "unknown"
	case Stuck:
		return "stuck"
	case ZeroValent:
		return "0-valent"
	case OneValent:
		return "1-valent"
	case Bivalent:
		return "bivalent"
	}
	return fmt.Sprintf("Valency(%d)", int(v))
}

// Univalent reports whether the class is 0-valent or 1-valent.
func (v Valency) Univalent() bool { return v == ZeroValent || v == OneValent }

// ValentFor returns the univalent class for decision value d.
func ValentFor(d model.Value) Valency {
	if d == model.V0 {
		return ZeroValent
	}
	return OneValent
}

// ValencyInfo is the result of classifying one configuration.
type ValencyInfo struct {
	Valency Valency
	// Exact reports whether the classification is definitive. Bivalence
	// is exact whenever both witnesses were found, regardless of budget;
	// ZeroValent, OneValent, and Stuck are exact only when the reachable
	// set was exhausted.
	Exact bool
	// Witness0 and Witness1 are schedules from the configuration to a
	// configuration with decision value 0 (resp. 1), when found. A
	// bivalence certificate is the pair of them.
	Witness0, Witness1 model.Schedule
	// Visited is the number of distinct configurations explored.
	Visited int
	// Complete reports whether the reachable set was exhausted.
	Complete bool

	// hasZero/hasOne record which decision values were seen; they are kept
	// separately from the witnesses because a decision present in the root
	// itself has a valid but empty (nil-ambiguous) witness schedule.
	hasZero, hasOne bool
}

// HasWitness reports whether a configuration with decision value d was
// reached during classification.
func (v ValencyInfo) HasWitness(d model.Value) bool {
	if d == model.V0 {
		return v.hasZero
	}
	return v.hasOne
}

// Classify computes the valency of c under pr, within the given budget.
//
// The search is breadth-first and stops as soon as both decision values
// have been seen (a bivalence certificate needs nothing more). Witness
// schedules are the shortest ones in event count.
func Classify(pr model.Protocol, c *model.Config, opt Options) ValencyInfo {
	var info ValencyInfo
	complete, visited := Explore(pr, c, opt, nil, func(cfg *model.Config, _ int, path func() model.Schedule) bool {
		for _, d := range cfg.DecisionValues() {
			switch d {
			case model.V0:
				if !info.hasZero {
					info.hasZero = true
					info.Witness0 = path()
				}
			case model.V1:
				if !info.hasOne {
					info.hasOne = true
					info.Witness1 = path()
				}
			}
		}
		return info.hasZero && info.hasOne
	})
	info.Visited = visited
	info.Complete = complete

	switch {
	case info.hasZero && info.hasOne:
		info.Valency = Bivalent
		info.Exact = true
	case info.hasZero:
		info.Valency = ZeroValent
		info.Exact = complete
	case info.hasOne:
		info.Valency = OneValent
		info.Exact = complete
	case complete:
		info.Valency = Stuck
		info.Exact = true
	default:
		info.Valency = Unknown
	}
	if !info.Exact {
		info.Valency = Unknown
	}
	return info
}

// cacheShardCount is the number of independently locked shards of a
// Cache; a power of two so shard selection is a mask.
const cacheShardCount = 32

// Cache memoizes valency classifications by configuration identity,
// resolved by 64-bit fingerprint with canonical-key confirmation. All
// entries in one cache must be produced with the same Options for the
// memoization to be meaningful; Cache enforces that by carrying the
// Options itself.
//
// Thread-safety contract: every method is safe for concurrent use. The
// entry table is sharded by configuration fingerprint and the hit/miss
// counters are atomic. Classification itself runs outside the shard
// locks, so concurrent Classify calls for the same configuration may each
// compute the result; classification is deterministic, the computed
// results are identical, and the first store wins, so all callers observe
// one canonical ValencyInfo. A concurrent compute that loses the store
// race still counts as a miss in Stats — misses count classifications
// performed, hits count lookups answered from memory, where "memory"
// includes any valency atlas attached with Warm.
type Cache struct {
	pr     model.Protocol
	opt    Options
	probe  *ProbeOptions
	shards [cacheShardCount]cacheShard
	hits   atomic.Int64
	misses atomic.Int64

	// atlases holds the valency atlases attached by Warm, consulted on
	// shard misses before any per-configuration classification runs. The
	// slice is replaced copy-on-write under warmMu; readers load it
	// atomically.
	atlases atomic.Pointer[[]*Atlas]
	warmMu  sync.Mutex
	// builds is where TryWarm sources atlases from: a keyed,
	// singleflight-deduplicated build cache that also memoizes refusals,
	// so a root whose sweep exceeds the budget is probed once. Private by
	// default; ShareAtlasBuilds swaps in a process-wide cache so several
	// valency caches (the serving layer's per-request ones) amortize one
	// exploration.
	builds *AtlasCache
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[uint64][]cacheEntry
}

type cacheEntry struct {
	key  []byte // binary canonical key (Config.KeyBytes)
	info ValencyInfo
}

func newCache(pr model.Protocol, opt Options, probe *ProbeOptions) *Cache {
	vc := &Cache{pr: pr, opt: opt.withDefaults(), probe: probe, builds: NewAtlasCache()}
	for i := range vc.shards {
		vc.shards[i].entries = make(map[uint64][]cacheEntry)
	}
	return vc
}

// ShareAtlasBuilds makes vc source its TryWarm atlas builds from ac
// instead of its private build cache, so atlases (and memoized refusals)
// are shared with every other consumer of ac. Call before the cache is
// used concurrently.
func (vc *Cache) ShareAtlasBuilds(ac *AtlasCache) { vc.builds = ac }

// NewCache returns a valency cache for pr with a fixed exploration budget.
func NewCache(pr model.Protocol, opt Options) *Cache {
	return newCache(pr, opt, nil)
}

// NewSmartCache returns a cache that classifies via ClassifySmart: probe
// runs first, budgeted breadth-first search as fallback. This is the
// configuration the Theorem 1 adversary uses on protocols with unbounded
// state spaces.
func NewSmartCache(pr model.Protocol, opt Options, popt ProbeOptions) *Cache {
	p := popt.withDefaults()
	return newCache(pr, opt, &p)
}

// Classify returns the memoized classification of c.
func (vc *Cache) Classify(c *model.Config) ValencyInfo {
	h := c.Hash()
	sh := &vc.shards[h&(cacheShardCount-1)]
	key := c.KeyBytes()

	sh.mu.Lock()
	for _, e := range sh.entries[h] {
		if bytes.Equal(e.key, key) {
			sh.mu.Unlock()
			vc.hits.Add(1)
			return e.info
		}
	}
	sh.mu.Unlock()

	if info, ok := vc.atlasInfo(c); ok {
		vc.hits.Add(1)
		return vc.store(sh, h, key, info)
	}

	vc.misses.Add(1)
	var info ValencyInfo
	if vc.probe != nil {
		info = ClassifySmart(vc.pr, c, vc.opt, *vc.probe)
	} else {
		info = Classify(vc.pr, c, vc.opt)
	}

	return vc.store(sh, h, key, info)
}

// store memoizes info for (h, key) unless a concurrent call stored first,
// returning the entry every caller will observe from now on.
func (vc *Cache) store(sh *cacheShard, h uint64, key []byte, info ValencyInfo) ValencyInfo {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range sh.entries[h] {
		if bytes.Equal(e.key, key) {
			return e.info // a concurrent classification stored first
		}
	}
	sh.entries[h] = append(sh.entries[h], cacheEntry{key: key, info: info})
	return info
}

// atlasInfo answers c from an attached atlas, when one covers it.
func (vc *Cache) atlasInfo(c *model.Config) (ValencyInfo, bool) {
	atlases := vc.atlases.Load()
	if atlases == nil {
		return ValencyInfo{}, false
	}
	for _, a := range *atlases {
		if info, ok := a.Info(c); ok {
			return info, true
		}
	}
	return ValencyInfo{}, false
}

// Warm attaches atlas to the cache: every configuration in the atlas's
// exhausted reachable set is answered from its backward-propagated
// decision bits — counted as a hit, memoized into the shard table on first
// query — instead of a per-configuration search. Atlas answers are exact
// and agree with what Classify under the cache's options would compute
// (witness schedules may differ; lengths do not, both being shortest), so
// warming never changes a caller-observable classification, only its cost.
// Several atlases may be attached; they are consulted in attachment order.
// Safe for concurrent use.
func (vc *Cache) Warm(atlas *Atlas) {
	vc.warmMu.Lock()
	defer vc.warmMu.Unlock()
	var next []*Atlas
	if cur := vc.atlases.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, atlas)
	vc.atlases.Store(&next)
}

// Covers reports whether an attached atlas answers c.
func (vc *Cache) Covers(c *model.Config) bool {
	_, ok := vc.atlasInfo(c)
	return ok
}

// TryWarm ensures the cache is backed by an atlas covering root: an
// already-covered root returns immediately, otherwise an atlas is
// obtained from the build cache — built with the cache's own options on
// first use, answered from memory (or another consumer's in-flight
// build, singleflight) afterwards — and attached. A root whose reachable
// set exceeds the budget is remembered by the build cache, so repeated
// calls do not re-pay the failed sweep; the cache then keeps classifying
// per configuration, which is the correct fallback for unbounded state
// spaces. It reports whether the cache now covers root. Safe for
// concurrent use: concurrent first calls share one build and the atlas
// is attached once.
func (vc *Cache) TryWarm(root *model.Config) bool {
	if vc.Covers(root) {
		return true
	}
	atlas, ok := vc.builds.Get(vc.pr, root, vc.opt)
	if !ok {
		return false
	}
	vc.warmOnce(atlas)
	return true
}

// warmOnce attaches atlas unless that very atlas is already attached —
// the TryWarm path hands out one shared *Atlas per key, so pointer
// identity is the dedup.
func (vc *Cache) warmOnce(atlas *Atlas) {
	vc.warmMu.Lock()
	defer vc.warmMu.Unlock()
	var next []*Atlas
	if cur := vc.atlases.Load(); cur != nil {
		for _, a := range *cur {
			if a == atlas {
				return
			}
		}
		next = append(next, *cur...)
	}
	next = append(next, atlas)
	vc.atlases.Store(&next)
}

// Stats returns cache hit/miss counters. Safe for concurrent use.
func (vc *Cache) Stats() (hits, misses int) {
	return int(vc.hits.Load()), int(vc.misses.Load())
}

// Len returns the number of memoized configurations. Safe for concurrent
// use.
func (vc *Cache) Len() int {
	n := 0
	for i := range vc.shards {
		sh := &vc.shards[i]
		sh.mu.Lock()
		for _, es := range sh.entries {
			n += len(es)
		}
		sh.mu.Unlock()
	}
	return n
}
