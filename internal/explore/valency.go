package explore

import (
	"fmt"

	"github.com/flpsim/flp/internal/model"
)

// Valency classifies a configuration C by V, the set of decision values of
// configurations reachable from C (Section 3 of the paper).
type Valency int

const (
	// Unknown: the exploration budget was exhausted before the class
	// could be established (fewer than two values seen, reachable set not
	// exhausted).
	Unknown Valency = iota
	// Stuck: the reachable set was exhausted and contains no decision at
	// all (V = ∅). The paper rules this out for totally correct protocols
	// ("by the total correctness of P ... V ≠ ∅"); protocols that block —
	// 2PC with a dead coordinator — exhibit it.
	Stuck
	// ZeroValent: V = {0}.
	ZeroValent
	// OneValent: V = {1}.
	OneValent
	// Bivalent: V = {0, 1}.
	Bivalent
)

func (v Valency) String() string {
	switch v {
	case Unknown:
		return "unknown"
	case Stuck:
		return "stuck"
	case ZeroValent:
		return "0-valent"
	case OneValent:
		return "1-valent"
	case Bivalent:
		return "bivalent"
	}
	return fmt.Sprintf("Valency(%d)", int(v))
}

// Univalent reports whether the class is 0-valent or 1-valent.
func (v Valency) Univalent() bool { return v == ZeroValent || v == OneValent }

// ValentFor returns the univalent class for decision value d.
func ValentFor(d model.Value) Valency {
	if d == model.V0 {
		return ZeroValent
	}
	return OneValent
}

// ValencyInfo is the result of classifying one configuration.
type ValencyInfo struct {
	Valency Valency
	// Exact reports whether the classification is definitive. Bivalence
	// is exact whenever both witnesses were found, regardless of budget;
	// ZeroValent, OneValent, and Stuck are exact only when the reachable
	// set was exhausted.
	Exact bool
	// Witness0 and Witness1 are schedules from the configuration to a
	// configuration with decision value 0 (resp. 1), when found. A
	// bivalence certificate is the pair of them.
	Witness0, Witness1 model.Schedule
	// Visited is the number of distinct configurations explored.
	Visited int
	// Complete reports whether the reachable set was exhausted.
	Complete bool

	// hasZero/hasOne record which decision values were seen; they are kept
	// separately from the witnesses because a decision present in the root
	// itself has a valid but empty (nil-ambiguous) witness schedule.
	hasZero, hasOne bool
}

// HasWitness reports whether a configuration with decision value d was
// reached during classification.
func (v ValencyInfo) HasWitness(d model.Value) bool {
	if d == model.V0 {
		return v.hasZero
	}
	return v.hasOne
}

// Classify computes the valency of c under pr, within the given budget.
//
// The search is breadth-first and stops as soon as both decision values
// have been seen (a bivalence certificate needs nothing more). Witness
// schedules are the shortest ones in event count.
func Classify(pr model.Protocol, c *model.Config, opt Options) ValencyInfo {
	var info ValencyInfo
	complete, visited := Explore(pr, c, opt, nil, func(cfg *model.Config, _ int, path func() model.Schedule) bool {
		for _, d := range cfg.DecisionValues() {
			switch d {
			case model.V0:
				if !info.hasZero {
					info.hasZero = true
					info.Witness0 = path()
				}
			case model.V1:
				if !info.hasOne {
					info.hasOne = true
					info.Witness1 = path()
				}
			}
		}
		return info.hasZero && info.hasOne
	})
	info.Visited = visited
	info.Complete = complete

	switch {
	case info.hasZero && info.hasOne:
		info.Valency = Bivalent
		info.Exact = true
	case info.hasZero:
		info.Valency = ZeroValent
		info.Exact = complete
	case info.hasOne:
		info.Valency = OneValent
		info.Exact = complete
	case complete:
		info.Valency = Stuck
		info.Exact = true
	default:
		info.Valency = Unknown
	}
	if !info.Exact {
		info.Valency = Unknown
	}
	return info
}

// Cache memoizes valency classifications by configuration key. All entries
// in one cache must be produced with the same Options for the memoization
// to be meaningful; Cache enforces that by carrying the Options itself.
type Cache struct {
	pr      model.Protocol
	opt     Options
	probe   *ProbeOptions
	entries map[string]ValencyInfo
	hits    int
	misses  int
}

// NewCache returns a valency cache for pr with a fixed exploration budget.
func NewCache(pr model.Protocol, opt Options) *Cache {
	return &Cache{pr: pr, opt: opt.withDefaults(), entries: make(map[string]ValencyInfo)}
}

// NewSmartCache returns a cache that classifies via ClassifySmart: probe
// runs first, budgeted breadth-first search as fallback. This is the
// configuration the Theorem 1 adversary uses on protocols with unbounded
// state spaces.
func NewSmartCache(pr model.Protocol, opt Options, popt ProbeOptions) *Cache {
	p := popt.withDefaults()
	return &Cache{pr: pr, opt: opt.withDefaults(), probe: &p, entries: make(map[string]ValencyInfo)}
}

// Classify returns the memoized classification of c.
func (vc *Cache) Classify(c *model.Config) ValencyInfo {
	k := c.Key()
	if info, ok := vc.entries[k]; ok {
		vc.hits++
		return info
	}
	vc.misses++
	var info ValencyInfo
	if vc.probe != nil {
		info = ClassifySmart(vc.pr, c, vc.opt, *vc.probe)
	} else {
		info = Classify(vc.pr, c, vc.opt)
	}
	vc.entries[k] = info
	return info
}

// Stats returns cache hit/miss counters.
func (vc *Cache) Stats() (hits, misses int) { return vc.hits, vc.misses }

// Len returns the number of memoized configurations.
func (vc *Cache) Len() int { return len(vc.entries) }
