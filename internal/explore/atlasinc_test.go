package explore_test

import (
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
)

// snapshotsEqual compares two exploration snapshots field by field —
// the byte-identity contract resumable building and persistence rest on.
func snapshotsEqual(t *testing.T, ctx string, a, b *explore.AtlasSnapshot) {
	t.Helper()
	if a.Len() != b.Len() || a.Expanded() != b.Expanded() || a.Complete != b.Complete {
		t.Fatalf("%s: shape differs: %d/%d nodes, %d/%d expanded, complete %v/%v",
			ctx, a.Len(), b.Len(), a.Expanded(), b.Expanded(), a.Complete, b.Complete)
	}
	for i := range a.Depth {
		if a.Depth[i] != b.Depth[i] || a.Parent[i] != b.Parent[i] || !a.ParentVia[i].Same(b.ParentVia[i]) {
			t.Fatalf("%s: node %d tree entries differ", ctx, i)
		}
		if string(a.Keys[i]) != string(b.Keys[i]) {
			t.Fatalf("%s: node %d canonical keys differ", ctx, i)
		}
	}
	if len(a.SuccTo) != len(b.SuccTo) {
		t.Fatalf("%s: edge counts differ: %d vs %d", ctx, len(a.SuccTo), len(b.SuccTo))
	}
	for i := range a.SuccStart {
		if a.SuccStart[i] != b.SuccStart[i] {
			t.Fatalf("%s: CSR offset %d differs", ctx, i)
		}
	}
	for i := range a.SuccTo {
		if a.SuccTo[i] != b.SuccTo[i] || !a.SuccVia[i].Same(b.SuccVia[i]) {
			t.Fatalf("%s: edge %d differs", ctx, i)
		}
	}
	// Distance columns exist only on snapshots taken from a finished
	// Atlas; compare them when both sides carry them.
	if len(a.Dist0) == len(b.Dist0) {
		for i := range a.Dist0 {
			if a.Dist0[i] != b.Dist0[i] || a.Dist1[i] != b.Dist1[i] {
				t.Fatalf("%s: node %d distances differ", ctx, i)
			}
		}
	}
}

// atlasesAgree sweeps every node of two atlases for identical
// classifications, witness lengths, id partitions, and root paths.
func atlasesAgree(t *testing.T, ctx string, want, got *explore.Atlas) {
	t.Helper()
	if want.Len() != got.Len() || want.Edges() != got.Edges() {
		t.Fatalf("%s: size differs: %d/%d nodes, %d/%d edges", ctx, want.Len(), got.Len(), want.Edges(), got.Edges())
	}
	for id := int32(0); id < int32(want.Len()); id++ {
		if want.ValencyAt(id) != got.ValencyAt(id) {
			t.Fatalf("%s: node %d valency %s vs %s", ctx, id, want.ValencyAt(id), got.ValencyAt(id))
		}
		for _, d := range []model.Value{model.V0, model.V1} {
			wl, wok := want.WitnessLen(id, d)
			gl, gok := got.WitnessLen(id, d)
			if wok != gok || wl != gl {
				t.Fatalf("%s: node %d witness length for %v: %d/%v vs %d/%v", ctx, id, d, wl, wok, gl, gok)
			}
		}
		cfg := want.Config(id)
		gid, ok := got.IDOf(cfg)
		if !ok || gid != id {
			t.Fatalf("%s: node %d not at the same dense id (got %d, ok=%v)", ctx, id, gid, ok)
		}
		if !schedulesEqual(want.PathTo(id), got.PathTo(id)) {
			t.Fatalf("%s: node %d root paths differ", ctx, id)
		}
		if !cfg.Equal(got.Config(id)) {
			t.Fatalf("%s: node %d configurations differ", ctx, id)
		}
	}
}

// TestAtlasBuilderMatchesBuildAtlas: one uninterrupted Extend must land on
// exactly the atlas BuildAtlas produces — same arrays, same
// classifications — at one worker and several.
func TestAtlasBuilderMatchesBuildAtlas(t *testing.T) {
	for name := range finiteFixtures {
		t.Run(name, func(t *testing.T) {
			pr := registryFixture(t, name)
			opt := explore.Options{MaxConfigs: atlasTestBudget}
			for _, inp := range model.AllInputs(pr.N()) {
				root := model.MustInitial(pr, inp)
				want, ok := explore.BuildAtlas(pr, root, opt)
				if !ok {
					t.Fatalf("inputs %s: BuildAtlas refused within budget", inp)
				}
				for _, workers := range []int{1, 8} {
					b := explore.NewAtlasBuilder(pr, root)
					wopt := opt
					wopt.Workers = workers
					n := b.Extend(wopt)
					if !b.Complete() {
						t.Fatalf("inputs %s workers %d: builder incomplete within budget", inp, workers)
					}
					if n != want.Len() {
						t.Fatalf("inputs %s workers %d: expanded %d nodes, want %d", inp, workers, n, want.Len())
					}
					snapshotsEqual(t, "builder vs BuildAtlas", want.Snapshot(), b.Snapshot())
					got, ok := b.Finish(opt)
					if !ok {
						t.Fatalf("inputs %s workers %d: Finish refused a complete builder", inp, workers)
					}
					atlasesAgree(t, "finished builder vs BuildAtlas", want, got)
				}
			}
		})
	}
}

// TestAtlasBuilderBudgetParity: the builder must be complete exactly when
// BuildAtlas succeeds, at every budget — the complete-or-refused contract
// expressed incrementally.
func TestAtlasBuilderBudgetParity(t *testing.T) {
	pr := registryFixture(t, "naivemajority")
	root := model.MustInitial(pr, model.Inputs{0, 1, 1})
	full, ok := explore.BuildAtlas(pr, root, explore.Options{MaxConfigs: atlasTestBudget})
	if !ok {
		t.Fatal("BuildAtlas refused within budget")
	}
	for _, budget := range []int{1, 2, 10, full.Len() - 1, full.Len(), full.Len() + 1} {
		opt := explore.Options{MaxConfigs: budget}
		_, wantOK := explore.BuildAtlas(pr, root, opt)
		b := explore.NewAtlasBuilder(pr, root)
		b.Extend(opt)
		if b.Complete() != wantOK {
			t.Errorf("budget %d: builder complete = %v, BuildAtlas ok = %v", budget, b.Complete(), wantOK)
		}
		if b.Len() > budget {
			t.Errorf("budget %d: builder admitted %d nodes over budget", budget, b.Len())
		}
	}
}

// TestAtlasBuilderIncrementalDeepening is the frontier-resume contract:
// exploring to depth d and then extending to d+k expands exactly the
// nodes a one-shot depth-(d+k) exploration expands — the counter pins
// that nothing below depth d is re-expanded — and lands on an identical
// snapshot.
func TestAtlasBuilderIncrementalDeepening(t *testing.T) {
	pr := registryFixture(t, "naivemajority")
	root := model.MustInitial(pr, model.Inputs{0, 1, 1})
	budget := explore.Options{MaxConfigs: atlasTestBudget}

	for _, step := range []struct{ d, k int }{{2, 1}, {2, 3}, {4, 2}, {1, 100}} {
		// One shot to depth d+k.
		oneshot := explore.NewAtlasBuilder(pr, root)
		oneOpt := budget
		oneOpt.MaxDepth = step.d + step.k
		oneTotal := oneshot.Extend(oneOpt)

		// Depth d, then resume to d+k.
		inc := explore.NewAtlasBuilder(pr, root)
		dOpt := budget
		dOpt.MaxDepth = step.d
		n1 := inc.Extend(dOpt)
		dkOpt := budget
		dkOpt.MaxDepth = step.d + step.k
		n2 := inc.Extend(dkOpt)

		if n1+n2 != oneTotal {
			t.Fatalf("d=%d k=%d: incremental expanded %d+%d nodes, one-shot expanded %d — depth ≤ d was re-expanded",
				step.d, step.k, n1, n2, oneTotal)
		}
		snapshotsEqual(t, "incremental vs one-shot", oneshot.Snapshot(), inc.Snapshot())
	}
}

// TestAtlasBuilderSnapshotRestore: a truncated builder serialized through
// its snapshot and restored (configurations replayed from canonical keys)
// must continue to exactly the state an uninterrupted build reaches.
func TestAtlasBuilderSnapshotRestore(t *testing.T) {
	pr := registryFixture(t, "naivemajority")
	root := model.MustInitial(pr, model.Inputs{0, 1, 1})
	budget := explore.Options{MaxConfigs: atlasTestBudget}

	// Truncate at depth 3, snapshot, restore, run to completion.
	b := explore.NewAtlasBuilder(pr, root)
	dOpt := budget
	dOpt.MaxDepth = 3
	b.Extend(dOpt)
	restored, err := explore.RestoreAtlasBuilder(pr, root, b.Snapshot())
	if err != nil {
		t.Fatalf("RestoreAtlasBuilder: %v", err)
	}
	restored.Extend(budget)
	if !restored.Complete() {
		t.Fatal("restored builder did not complete within budget")
	}
	want, ok := explore.BuildAtlas(pr, root, budget)
	if !ok {
		t.Fatal("BuildAtlas refused within budget")
	}
	snapshotsEqual(t, "restored vs BuildAtlas", want.Snapshot(), restored.Snapshot())
	got, ok := restored.Finish(budget)
	if !ok {
		t.Fatal("Finish refused a complete restored builder")
	}
	atlasesAgree(t, "restored vs BuildAtlas", want, got)
}

// TestLoadAtlasMatchesBuilt: an atlas round-tripped through its snapshot
// (the persistence path) must answer every query identically — censuses,
// valencies, witness lengths and schedules, id lookups, and lazily
// materialized configurations.
func TestLoadAtlasMatchesBuilt(t *testing.T) {
	for name := range finiteFixtures {
		t.Run(name, func(t *testing.T) {
			pr := registryFixture(t, name)
			opt := explore.Options{MaxConfigs: atlasTestBudget}
			for _, inp := range model.AllInputs(pr.N()) {
				root := model.MustInitial(pr, inp)
				want, ok := explore.BuildAtlas(pr, root, opt)
				if !ok {
					t.Fatalf("inputs %s: BuildAtlas refused within budget", inp)
				}
				got, err := explore.LoadAtlas(pr, root, opt, want.Snapshot())
				if err != nil {
					t.Fatalf("inputs %s: LoadAtlas: %v", inp, err)
				}
				atlasesAgree(t, "loaded vs built", want, got)
				wantCensus, gotCensus := want.Census(), got.Census()
				for v, n := range wantCensus {
					if gotCensus[v] != n {
						t.Fatalf("inputs %s: census[%s] = %d loaded, %d built", inp, v, gotCensus[v], n)
					}
				}
				// Witness schedules replay on the loaded atlas too.
				for id := int32(0); id < int32(got.Len()) && id < 16; id++ {
					wi, gi := want.InfoAt(id), got.InfoAt(id)
					if wi.Valency != gi.Valency || !schedulesEqual(wi.Witness0, gi.Witness0) || !schedulesEqual(wi.Witness1, gi.Witness1) {
						t.Fatalf("inputs %s node %d: InfoAt differs between built and loaded", inp, id)
					}
				}
			}
		})
	}
}

// TestLoadAtlasRejectsPartialAndForeign: loading must fail loudly on a
// truncated snapshot and on a root the snapshot does not describe.
func TestLoadAtlasRejectsPartialAndForeign(t *testing.T) {
	pr := registryFixture(t, "naivemajority")
	root := model.MustInitial(pr, model.Inputs{0, 1, 1})
	opt := explore.Options{MaxConfigs: atlasTestBudget}

	b := explore.NewAtlasBuilder(pr, root)
	dOpt := opt
	dOpt.MaxDepth = 2
	b.Extend(dOpt)
	if _, err := explore.LoadAtlas(pr, root, opt, b.Snapshot()); err == nil {
		t.Error("LoadAtlas accepted a partial snapshot")
	}

	a, ok := explore.BuildAtlas(pr, root, opt)
	if !ok {
		t.Fatal("BuildAtlas refused within budget")
	}
	other := model.MustInitial(pr, model.Inputs{1, 1, 1})
	if _, err := explore.LoadAtlas(pr, other, opt, a.Snapshot()); err == nil {
		t.Error("LoadAtlas accepted a snapshot of a different root")
	}
	if _, err := explore.RestoreAtlasBuilder(pr, other, a.Snapshot()); err == nil {
		t.Error("RestoreAtlasBuilder accepted a snapshot of a different root")
	}
}

// TestAtlasCacheBackend: an installed backend replaces BuildAtlas as the
// cache's miss path, its refusals are memoized, and singleflight still
// holds.
func TestAtlasCacheBackend(t *testing.T) {
	pr := registryFixture(t, "naivemajority")
	root := model.MustInitial(pr, model.Inputs{0, 1, 1})
	opt := explore.Options{MaxConfigs: atlasTestBudget}

	calls := 0
	ac := explore.NewAtlasCache()
	ac.SetBackend(backendFunc(func(p model.Protocol, c *model.Config, o explore.Options) (*explore.Atlas, bool) {
		calls++
		return explore.BuildAtlas(p, c, o)
	}))
	a1, ok := ac.Get(pr, root, opt)
	if !ok || a1 == nil {
		t.Fatal("backend-backed cache refused a buildable atlas")
	}
	a2, _ := ac.Get(pr, root, opt)
	if a1 != a2 {
		t.Error("second lookup did not come from memory")
	}
	if calls != 1 {
		t.Errorf("backend called %d times, want 1", calls)
	}
	// Refusals pass through and are memoized too.
	tiny := explore.Options{MaxConfigs: 2}
	if _, ok := ac.Get(pr, root, tiny); ok {
		t.Error("cache returned an atlas the backend refused")
	}
	if _, ok := ac.Get(pr, root, tiny); ok {
		t.Error("memoized refusal changed on repeat lookup")
	}
	if calls != 2 {
		t.Errorf("backend called %d times, want 2", calls)
	}
}

// backendFunc adapts a function to explore.AtlasBackend.
type backendFunc func(model.Protocol, *model.Config, explore.Options) (*explore.Atlas, bool)

func (f backendFunc) GetAtlas(pr model.Protocol, root *model.Config, opt explore.Options) (*explore.Atlas, bool) {
	return f(pr, root, opt)
}
