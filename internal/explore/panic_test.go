package explore_test

import (
	"fmt"
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
)

// panicProto is a two-process protocol whose Step panics once a process
// has taken boomAt steps. At the breadth-first level just below the
// threshold, several frontier nodes panic during expansion — one per
// process — which is exactly the situation the engines must surface
// deterministically: the panic of the lowest-index frontier node (the one
// the sequential engine reaches first) must win at every worker count.
type panicProto struct {
	n      int
	boomAt int
}

type panicState struct{ steps int }

func (s panicState) Key() string          { return fmt.Sprintf("s%d", s.steps) }
func (s panicState) Output() model.Output { return model.None }

func (p *panicProto) Name() string { return "panicproto" }
func (p *panicProto) N() int       { return p.n }
func (p *panicProto) Init(model.PID, model.Value) model.State {
	return panicState{}
}
func (p *panicProto) Step(pid model.PID, s model.State, m *model.Message) (model.State, []model.Message) {
	next := s.(panicState).steps + 1
	if next >= p.boomAt {
		panic(fmt.Sprintf("panicproto: p%d reached %d steps", pid, next))
	}
	return panicState{steps: next}, nil
}

// TestExpandLevelPanicDeterminism pins the re-raise rule of the parallel
// expansion pool: when multiple nodes of one level panic, the surfaced
// panic value is the one the sequential engine would have hit first,
// regardless of worker count or scheduling.
func TestExpandLevelPanicDeterminism(t *testing.T) {
	pr := &panicProto{n: 2, boomAt: 2}
	c := model.MustInitial(pr, model.Inputs{0, 0})

	// At level 1 the frontier is [(1 step, 0 steps), (0 steps, 1 step)];
	// expanding either node pushes a process to 2 steps, so both panic.
	recovered := func(workers int) (v interface{}) {
		defer func() { v = recover() }()
		explore.Explore(pr, c, explore.Options{Workers: workers}, nil, nil)
		return nil
	}

	seq := recovered(1)
	if seq == nil {
		t.Fatal("sequential engine did not panic")
	}
	want := "panicproto: p0 reached 2 steps"
	if seq != want {
		t.Fatalf("sequential engine surfaced %v, want %q", seq, want)
	}
	for _, w := range []int{2, 8} {
		for trial := 0; trial < 20; trial++ { // panic selection must not depend on scheduling
			if got := recovered(w); got != seq {
				t.Fatalf("workers=%d trial %d: surfaced panic %v, sequential engine surfaced %v", w, trial, got, seq)
			}
		}
	}
}

// TestOptionsNormalized pins the bound-validation contract every engine
// relies on: the MaxConfigs default and the MaxDepth clamp.
func TestOptionsNormalized(t *testing.T) {
	cases := []struct {
		name string
		in   explore.Options
		want explore.Options
	}{
		{"zero", explore.Options{},
			explore.Options{MaxConfigs: explore.DefaultMaxConfigs}},
		{"negative-depth-clamped", explore.Options{MaxConfigs: 10, MaxDepth: -7},
			explore.Options{MaxConfigs: 10, MaxDepth: 0}},
		{"negative-budget-defaulted", explore.Options{MaxConfigs: -1},
			explore.Options{MaxConfigs: explore.DefaultMaxConfigs}},
		{"kept", explore.Options{MaxConfigs: 42, MaxDepth: 3, Workers: 5},
			explore.Options{MaxConfigs: 42, MaxDepth: 3, Workers: 5}},
	}
	for _, tc := range cases {
		if got := tc.in.Normalized(); got != tc.want {
			t.Errorf("%s: Normalized() = %+v, want %+v", tc.name, got, tc.want)
		}
	}
	// A negative MaxDepth must behave exactly like unlimited, not like
	// "depth < 0 is instantly capped".
	pr := &panicProto{n: 2, boomAt: 1 << 30}
	c := model.MustInitial(pr, model.Inputs{0, 0})
	unlimited, _ := explore.CountReachable(pr, c, explore.Options{MaxConfigs: 50, MaxDepth: 0})
	negative, _ := explore.CountReachable(pr, c, explore.Options{MaxConfigs: 50, MaxDepth: -3})
	if unlimited != negative {
		t.Errorf("MaxDepth -3 explored %d configurations, unlimited explored %d", negative, unlimited)
	}
}
