package explore_test

import (
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

func TestCensusInitialNaiveMajority(t *testing.T) {
	// Lemma 2's content on the finite fixture: exact per-input valencies.
	census, err := explore.CensusInitial(protocols.NewNaiveMajority(3), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !census.AllExact {
		t.Error("census not exact on a finite protocol")
	}
	if !census.HasBivalent() {
		t.Fatal("no bivalent initial configuration found; Lemma 2 demo broken")
	}
	if got := census.Counts[explore.Bivalent]; got != 3 {
		t.Errorf("bivalent count = %d, want 3 (011, 101, 110)", got)
	}
	if got := census.Counts[explore.ZeroValent]; got != 4 {
		t.Errorf("0-valent count = %d, want 4", got)
	}
	if got := census.Counts[explore.OneValent]; got != 1 {
		t.Errorf("1-valent count = %d, want 1 (111)", got)
	}
	if len(census.PerInput) != 8 {
		t.Errorf("PerInput has %d entries, want 8", len(census.PerInput))
	}
}

func TestCensusInitialWaitAll(t *testing.T) {
	// WaitAll fails Lemma 2's hypothesis (it is not fault tolerant) and
	// indeed has no bivalent initial configuration — but it does have the
	// adjacent 0-valent/1-valent pair the lemma's proof pivots on.
	census, err := explore.CensusInitial(protocols.NewWaitAll(3), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if census.HasBivalent() {
		t.Error("WaitAll reported a bivalent initial configuration")
	}
	if census.Counts[explore.ZeroValent] != 4 || census.Counts[explore.OneValent] != 4 {
		t.Errorf("counts = %v, want 4 and 4", census.Counts)
	}
	if census.Adjacent == nil {
		t.Fatal("no adjacent 0-valent/1-valent pair found")
	}
	if _, ok := census.Adjacent.Zero.AdjacentTo(census.Adjacent.One); !ok {
		t.Error("reported adjacent pair is not adjacent")
	}
}

func TestCensusInitialTrivial0(t *testing.T) {
	census, err := explore.CensusInitial(protocols.NewTrivial0(3), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if census.Counts[explore.ZeroValent] != 8 {
		t.Errorf("trivial0 counts = %v, want all 0-valent", census.Counts)
	}
	if census.Adjacent != nil {
		t.Error("trivial0 reported an adjacent 0/1 pair")
	}
}

func TestFindBivalentInitial(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c, inp, ok := explore.FindBivalentInitial(pr, explore.Options{})
	if !ok {
		t.Fatal("no bivalent initial configuration found")
	}
	if inp.String() != "011" {
		t.Errorf("first bivalent inputs = %s, want 011 (scan order)", inp)
	}
	if info := explore.Classify(pr, c, explore.Options{}); info.Valency != explore.Bivalent {
		t.Error("returned configuration is not bivalent")
	}
	if _, _, ok := explore.FindBivalentInitial(protocols.NewWaitAll(3), explore.Options{}); ok {
		t.Error("WaitAll reported a bivalent initial configuration")
	}
}

func TestLemma3CensusOnBivalentConfig(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, in(0, 1, 1))
	cache := explore.NewCache(pr, explore.Options{})

	for _, e := range []model.Event{model.NullEvent(0), model.NullEvent(2)} {
		res, err := explore.CensusLemma3(pr, c, e, explore.Options{}, cache)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Errorf("event %s: frontier not exhausted on a finite protocol", e)
		}
		if !res.BivalentFound {
			t.Fatalf("event %s: no bivalent configuration in D — Lemma 3 falsified?!", e)
		}
		if res.FrontierSize == 0 {
			t.Error("empty frontier")
		}
		// The witness schedule ends with e and reaches a bivalent config.
		last := res.Sigma[len(res.Sigma)-1]
		if !last.Same(e) {
			t.Errorf("witness schedule does not end with e: %s", res.Sigma)
		}
		D := model.MustApplySchedule(pr, c, res.Sigma)
		if info := explore.Classify(pr, D, explore.Options{}); info.Valency != explore.Bivalent {
			t.Errorf("witness configuration classifies %v, want bivalent", info.Valency)
		}
	}
}

func TestLemma3DeliveryEvent(t *testing.T) {
	// Use a bivalent configuration with traffic in flight: after p0 and p2
	// broadcast, pick delivery of p2's vote to p0 as the committed event.
	pr := protocols.NewNaiveMajority(3)
	c0 := model.MustInitial(pr, in(0, 1, 1))
	c := model.MustApplySchedule(pr, c0, model.Schedule{model.NullEvent(0), model.NullEvent(2)})
	if info := explore.Classify(pr, c, explore.Options{}); info.Valency != explore.Bivalent {
		t.Skip("intermediate configuration not bivalent; fixture changed")
	}
	var e model.Event
	for _, m := range c.Buffer().MessagesTo(0) {
		if m.From == 2 {
			e = model.Deliver(m)
		}
	}
	if e.Msg == nil {
		t.Fatal("expected message from p2 to p0 in flight")
	}
	res, err := explore.CensusLemma3(pr, c, e, explore.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BivalentFound {
		t.Fatal("no bivalent configuration in D for a delivery event")
	}
	if len(res.Sigma) == 0 || !res.Sigma[len(res.Sigma)-1].Same(e) {
		t.Error("witness schedule does not end with the committed delivery")
	}
}

func TestFindBivalentExtensionStopsEarly(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, in(0, 1, 1))
	e := model.NullEvent(0)
	fast, err := explore.FindBivalentExtension(pr, c, e, explore.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := explore.CensusLemma3(pr, c, e, explore.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.BivalentFound {
		t.Fatal("early-stopping search found nothing")
	}
	if fast.FrontierSize > full.FrontierSize {
		t.Errorf("early search examined more (%d) than the census (%d)", fast.FrontierSize, full.FrontierSize)
	}
}

func TestLemma3DiamondCommutes(t *testing.T) {
	// Figure 2: every neighbor square around the committed event commutes
	// — Lemma 1 where the Lemma 3 proof uses it.
	pr := protocols.NewNaiveMajority(3)
	c0 := model.MustInitial(pr, in(0, 1, 1))
	deep := model.MustApplySchedule(pr, c0, model.Schedule{model.NullEvent(0), model.NullEvent(2)})
	for _, tc := range []struct {
		c *model.Config
		e model.Event
	}{
		{c0, model.NullEvent(0)},
		{deep, model.NullEvent(1)},
		{deep, model.Deliver(deep.Buffer().MessagesTo(1)[0])},
	} {
		rep, err := explore.CheckLemma3Diamond(pr, tc.c, tc.e, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Squares == 0 {
			t.Errorf("event %s: no squares checked", tc.e)
		}
		if rep.Violations != 0 {
			t.Errorf("event %s: %d of %d diamonds failed to commute", tc.e, rep.Violations, rep.Squares)
		}
		if !rep.Complete {
			t.Errorf("event %s: frontier not exhausted", tc.e)
		}
	}
}

func TestLemma3Figure3Commutes(t *testing.T) {
	// Case 2 of the Lemma 3 proof: same-process neighbor pairs, a p-free
	// deciding run σ, and the two Lemma 1 commutations of Figure 3.
	pr := protocols.NewNaiveMajority(3)
	c0 := model.MustInitial(pr, in(0, 1, 1))
	deep := model.MustApplySchedule(pr, c0, model.Schedule{model.NullEvent(0), model.NullEvent(2)})
	for _, tc := range []struct {
		c *model.Config
		e model.Event
	}{
		{deep, model.NullEvent(1)},
		{deep, model.Deliver(deep.Buffer().MessagesTo(1)[0])},
	} {
		rep, err := explore.CheckLemma3Figure3(pr, tc.c, tc.e, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Pairs == 0 {
			t.Errorf("event %s: no same-process neighbor pairs", tc.e)
		}
		if rep.SigmaFound == 0 {
			t.Errorf("event %s: no p-free deciding runs found; NaiveMajority should decide without any one process", tc.e)
		}
		if rep.Violations != 0 {
			t.Errorf("event %s: %d Figure 3 commutation violations", tc.e, rep.Violations)
		}
		if !rep.Complete {
			t.Errorf("event %s: frontier not exhausted", tc.e)
		}
	}
}

func TestLemma3Figure3RejectsInapplicable(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, in(0, 1, 1))
	ghost := model.Deliver(model.Message{To: 0, From: 1, Body: "V1"})
	if _, err := explore.CheckLemma3Figure3(pr, c, ghost, explore.Options{}); err == nil {
		t.Error("inapplicable event accepted")
	}
}

func TestLemma3DiamondRejectsInapplicable(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, in(0, 1, 1))
	ghost := model.Deliver(model.Message{To: 0, From: 1, Body: "V1"})
	if _, err := explore.CheckLemma3Diamond(pr, c, ghost, explore.Options{}); err == nil {
		t.Error("inapplicable event accepted")
	}
}

// muteProto never decides: its configurations are Stuck.
type muteProto struct{}

type muteState struct{ sent bool }

func (s muteState) Key() string {
	if s.sent {
		return "1"
	}
	return "0"
}
func (s muteState) Output() model.Output { return model.None }

func (muteProto) Name() string                            { return "mute" }
func (muteProto) N() int                                  { return 2 }
func (muteProto) Init(model.PID, model.Value) model.State { return muteState{} }
func (muteProto) Step(p model.PID, s model.State, _ *model.Message) (model.State, []model.Message) {
	st := s.(muteState)
	if !st.sent {
		return muteState{sent: true}, model.BroadcastOthers(p, 2, "noise")
	}
	return st, nil
}

func TestClassifyStuck(t *testing.T) {
	// A protocol that never decides: V = ∅, the case the paper excludes
	// by total correctness and 2PC-with-a-dead-coordinator exhibits.
	pr := muteProto{}
	c := model.MustInitial(pr, in(0, 1))
	info := explore.Classify(pr, c, explore.Options{})
	if info.Valency != explore.Stuck || !info.Exact {
		t.Errorf("mute protocol classifies %v (exact=%v), want exact stuck", info.Valency, info.Exact)
	}
}

func TestLemma3RejectsInapplicableEvent(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, in(0, 1, 1))
	ghost := model.Deliver(model.Message{To: 0, From: 1, Body: "V1"})
	if _, err := explore.CensusLemma3(pr, c, ghost, explore.Options{}, nil); err == nil {
		t.Error("inapplicable event accepted")
	}
}

func TestCheckPartialCorrectnessNaiveMajorityViolation(t *testing.T) {
	rep, err := explore.CheckPartialCorrectness(protocols.NewNaiveMajority(3), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AgreementHolds {
		t.Fatal("NaiveMajority's agreement violation not found")
	}
	if rep.Violation == nil {
		t.Fatal("no violation witness")
	}
	// Replay the witness: the schedule must reach a two-valued config.
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, rep.Violation.Inputs)
	cfg, err := model.ApplySchedule(pr, c, rep.Violation.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.DecisionValues()) != 2 {
		t.Errorf("witness configuration has decision values %v, want both", cfg.DecisionValues())
	}
	if len(rep.Violation.Deciders) != 2 {
		t.Errorf("deciders = %v, want one per value", rep.Violation.Deciders)
	}
	if !rep.Nontrivial {
		t.Error("NaiveMajority reported trivial")
	}
}

func TestCheckPartialCorrectnessSafeProtocols(t *testing.T) {
	for _, pr := range []model.Protocol{
		protocols.NewWaitAll(3),
		protocols.NewTwoPhaseCommit(3),
	} {
		rep, err := explore.CheckPartialCorrectness(pr, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.AgreementHolds || !rep.Complete {
			t.Errorf("%s: agreement=%v complete=%v, want true, true", pr.Name(), rep.AgreementHolds, rep.Complete)
		}
		if !rep.Nontrivial {
			t.Errorf("%s: reported trivial; both values should be reachable", pr.Name())
		}
	}
}

func TestCheckPartialCorrectnessTrivial0(t *testing.T) {
	rep, err := explore.CheckPartialCorrectness(protocols.NewTrivial0(2), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AgreementHolds {
		t.Error("trivial0 violates agreement?!")
	}
	if rep.Nontrivial {
		t.Error("trivial0 reported nontrivial; it only ever decides 0")
	}
}
