package explore_test

import (
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

func TestLemma2ProofWaitAll(t *testing.T) {
	// WaitAll has adjacent 0-valent/1-valent initial configurations — the
	// setup of the Lemma 2 contradiction — but the proof's first move (a
	// deciding run in which the differing process takes no steps) fails:
	// that is precisely the fault tolerance WaitAll lacks, and why Lemma 2
	// does not apply to it.
	steps, err := explore.CheckLemma2Proof(protocols.NewWaitAll(3), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no adjacent univalent pairs found for WaitAll")
	}
	for _, s := range steps {
		if s.SigmaFound {
			t.Errorf("pair %s/%s: found a deciding run without p%d — WaitAll should need everyone",
				s.Zero, s.One, s.Differ)
		}
		if s.Contradiction() {
			t.Errorf("pair %s/%s: Lemma 2 contradiction materialized; the model is broken", s.Zero, s.One)
		}
	}
}

func TestLemma2ProofTwoPhaseCommit(t *testing.T) {
	steps, err := explore.CheckLemma2Proof(protocols.NewTwoPhaseCommit(3), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no adjacent univalent pairs found for 2PC")
	}
	for _, s := range steps {
		if s.SigmaFound {
			t.Errorf("pair %s/%s: 2PC decided without p%d", s.Zero, s.One, s.Differ)
		}
	}
}

func TestLemma2ProofNoPairsWhenBivalent(t *testing.T) {
	// NaiveMajority satisfies Lemma 2's conclusion: bivalent initial
	// configurations separate the 0-valent region from the 1-valent one,
	// so no adjacent univalent pair exists to even start the proof on.
	steps, err := explore.CheckLemma2Proof(protocols.NewNaiveMajority(3), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Errorf("found %d adjacent 0/1-valent pairs despite bivalent separators", len(steps))
	}
}

func TestLemma2ProofTrivial0(t *testing.T) {
	// All initial configurations 0-valent: no pairs at all.
	steps, err := explore.CheckLemma2Proof(protocols.NewTrivial0(3), explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Errorf("trivial0 produced %d proof steps", len(steps))
	}
}

// faultTolerantButSplit is a synthetic protocol engineered to run the
// proof's happy path to completion: each process decides its own input
// immediately. It "tolerates" silent processes (deciding runs exist
// without any given process), its initial configurations 000 and 111 are
// genuinely 0- and 1-valent... but mixed inputs make two decision values
// reachable via agreement violations, so no adjacent univalent pairs
// survive. To exercise SigmaFound and SameDecision, restrict to N=2 with
// the pair 00/01: 00 is 0-valent; 01 is bivalent (two deciders disagree),
// so even here the lemma protects itself. The test documents that the
// contradiction is unconstructible on every specimen we can build — which
// is the lemma.
type faultTolerantButSplit struct{ n int }

type ftsState struct {
	input model.Value
	out   model.Output
}

func (s ftsState) Key() string {
	return string('0'+byte(s.input)) + "|" + s.out.String()
}
func (s ftsState) Output() model.Output { return s.out }

func (p faultTolerantButSplit) Name() string { return "fts" }
func (p faultTolerantButSplit) N() int       { return p.n }
func (p faultTolerantButSplit) Init(_ model.PID, input model.Value) model.State {
	return ftsState{input: input}
}
func (p faultTolerantButSplit) Step(_ model.PID, s model.State, _ *model.Message) (model.State, []model.Message) {
	st := s.(ftsState)
	if !st.out.Decided() {
		st.out = model.OutputOf(st.input)
	}
	return st, nil
}

func TestLemma2ProofContradictionUnconstructible(t *testing.T) {
	steps, err := explore.CheckLemma2Proof(faultTolerantButSplit{n: 2}, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range steps {
		if s.Contradiction() {
			t.Fatalf("constructed the Lemma 2 contradiction on %s/%s — impossible", s.Zero, s.One)
		}
	}
}
