package explore

import (
	"bytes"
	"fmt"

	"github.com/flpsim/flp/internal/model"
)

// This file is the incremental/persistent side of the valency atlas: a
// resumable builder whose exploration state can be captured at a node
// boundary, serialized (by package atlasstore), and extended later —
// including in a different process — without re-expanding anything, plus
// the snapshot form a complete Atlas round-trips through for disk-backed
// loads.
//
// The invariant everything here rests on: atlas construction is a
// deterministic trajectory. Nodes are admitted in breadth-first canonical
// order, each node's successor list depends only on the node and the
// protocol, and the expanded set is always a prefix [0, Expanded) of the
// admission order. Any sequence of Extend calls therefore walks the same
// trajectory as a single uninterrupted build — a depth-d state extended by
// k is byte-identical to a one-shot depth-(d+k) build, which is what makes
// frontier resume safe to persist.

// AtlasSnapshot is the serializable exploration state behind an Atlas (or
// a partial build on its way to one): the struct-of-arrays node table, the
// successor CSR closed through the expanded prefix, and — for complete
// snapshots — the two backward-distance columns. Keys carries each node's
// binary canonical key (model.Config.KeyBytes) by dense id; it is both
// the identity table a loaded atlas answers IDOf from and the integrity
// check replay is verified against.
//
// Slices in a snapshot alias the live atlas/builder arrays — treat a
// snapshot as read-only.
type AtlasSnapshot struct {
	Depth     []int32
	Parent    []int32
	ParentVia []model.Event
	SuccStart []int32 // len = Expanded()+1
	SuccTo    []int32
	SuccVia   []model.Event
	Keys      [][]byte
	Complete  bool
	// Dist0/Dist1 are the backward shortest-distance columns (valency
	// bits + witness lengths). Present only on Complete snapshots taken
	// from a finished Atlas; a complete *builder's* snapshot omits them
	// (the two backward passes run in Finish), and LoadAtlas requires
	// them.
	Dist0, Dist1 []int32
}

// Len returns the number of admitted nodes.
func (s *AtlasSnapshot) Len() int { return len(s.Depth) }

// Expanded returns the number of nodes whose successor lists are closed;
// nodes [Expanded, Len) are the stored frontier.
func (s *AtlasSnapshot) Expanded() int { return len(s.SuccStart) - 1 }

// validateShape checks the cross-array invariants a well-formed snapshot
// satisfies, so a mangled artifact surfaces as an error instead of an
// index panic deep in replay.
func (s *AtlasSnapshot) validateShape() error {
	v := len(s.Depth)
	if v == 0 {
		return fmt.Errorf("explore: snapshot has no nodes")
	}
	if len(s.Parent) != v || len(s.ParentVia) != v || len(s.Keys) != v {
		return fmt.Errorf("explore: snapshot column lengths disagree")
	}
	x := len(s.SuccStart) - 1
	if x < 0 || x > v {
		return fmt.Errorf("explore: snapshot expanded count %d out of range [0,%d]", x, v)
	}
	if s.Complete && x != v {
		return fmt.Errorf("explore: complete snapshot with %d of %d nodes expanded", x, v)
	}
	if s.Complete && !(len(s.Dist0) == v && len(s.Dist1) == v) && !(len(s.Dist0) == 0 && len(s.Dist1) == 0) {
		return fmt.Errorf("explore: complete snapshot with malformed distance columns")
	}
	if !s.Complete && (len(s.Dist0) != 0 || len(s.Dist1) != 0) {
		return fmt.Errorf("explore: truncated snapshot carries distance columns")
	}
	e := len(s.SuccTo)
	if len(s.SuccVia) != e {
		return fmt.Errorf("explore: snapshot edge columns disagree")
	}
	prev := int32(0)
	if x >= 0 && len(s.SuccStart) > 0 && s.SuccStart[0] != 0 {
		return fmt.Errorf("explore: snapshot CSR does not start at 0")
	}
	for _, off := range s.SuccStart {
		if off < prev || int(off) > e {
			return fmt.Errorf("explore: snapshot CSR offsets not monotonic")
		}
		prev = off
	}
	if x >= 0 && len(s.SuccStart) > 0 && int(s.SuccStart[x]) != e {
		return fmt.Errorf("explore: snapshot CSR does not close at %d edges", e)
	}
	for _, to := range s.SuccTo {
		if to < 0 || int(to) >= v {
			return fmt.Errorf("explore: snapshot edge target %d out of range", to)
		}
	}
	if s.Parent[0] != -1 {
		return fmt.Errorf("explore: snapshot root has a parent")
	}
	for i := 1; i < v; i++ {
		p := s.Parent[i]
		if p < 0 || int(p) >= i {
			return fmt.Errorf("explore: snapshot node %d has non-tree parent %d", i, p)
		}
		if s.Depth[i] != s.Depth[p]+1 {
			return fmt.Errorf("explore: snapshot node %d depth disagrees with its parent", i)
		}
	}
	return nil
}

// AtlasBuilder is the resumable form of BuildAtlas: the same breadth-first
// materialization, but truncation (by budget or depth) leaves a usable
// state — every node admitted so far, the successor CSR closed through the
// last expanded node — instead of refusing, and Extend resumes expansion
// from exactly that point. Unlike the one-shot builder it stops *before*
// the first node whose fresh successors would overflow the budget, so the
// captured state is always at a clean node boundary.
//
// An AtlasBuilder is not safe for concurrent use; the store serializes
// access per artifact.
type AtlasBuilder struct {
	pr   model.Protocol
	root *model.Config

	index     *model.Interner
	cfgs      []*model.Config
	depth     []int32
	parent    []int32
	parentVia []model.Event
	succStart []int32
	succTo    []int32
	succVia   []model.Event

	complete bool
	finished bool
}

// NewAtlasBuilder returns a builder holding just the root, nothing
// expanded.
func NewAtlasBuilder(pr model.Protocol, root *model.Config) *AtlasBuilder {
	b := &AtlasBuilder{pr: pr, root: root, index: model.NewInterner()}
	b.index.InternTag(root, 0)
	b.admit(root, -1, model.Event{})
	b.succStart = append(b.succStart, 0)
	return b
}

func (b *AtlasBuilder) admit(c *model.Config, parent int32, via model.Event) {
	d := int32(0)
	if parent >= 0 {
		d = b.depth[parent] + 1
	}
	b.cfgs = append(b.cfgs, c)
	b.depth = append(b.depth, d)
	b.parent = append(b.parent, parent)
	b.parentVia = append(b.parentVia, via)
}

// Len returns the number of admitted nodes.
func (b *AtlasBuilder) Len() int { return len(b.cfgs) }

// Expanded returns the number of nodes whose successor lists are closed.
// Nodes [Expanded, Len) are the frontier Extend resumes from.
func (b *AtlasBuilder) Expanded() int { return len(b.succStart) - 1 }

// Configs exposes the admitted configurations by dense id. The slice
// aliases the builder's arrays — callers must treat it as read-only. Its
// main consumer is checkpoint recovery: RestoreAtlasBuilder has already
// replayed and key-verified every configuration, and a resuming
// coordinator needs them back without paying a second replay.
func (b *AtlasBuilder) Configs() []*model.Config { return b.cfgs }

// Complete reports whether the reachable set is exhausted (empty
// frontier).
func (b *AtlasBuilder) Complete() bool { return b.complete }

// FrontierDepth returns the depth of the next node Extend would expand,
// ok=false when the build is complete.
func (b *AtlasBuilder) FrontierDepth() (int, bool) {
	x := b.Expanded()
	if x >= len(b.cfgs) {
		return 0, false
	}
	return int(b.depth[x]), true
}

// freshAmong counts the distinct configurations in succs not yet admitted
// — the budget cost of expanding their node — without interning anything.
func (b *AtlasBuilder) freshAmong(succs []Successor) int {
	fresh := 0
	for i := range succs {
		if _, known := b.index.Tag(succs[i].Cfg); known {
			continue
		}
		dup := false
		for j := 0; j < i; j++ {
			if succs[j].Cfg.Equal(succs[i].Cfg) {
				dup = true
				break
			}
		}
		if !dup {
			fresh++
		}
	}
	return fresh
}

// Extend expands frontier nodes in admission order under opt's bounds and
// reports how many nodes this call expanded. It stops — leaving the state
// at a node boundary — before the first node at depth ≥ opt.MaxDepth (when
// set), or before the first node whose distinct fresh successors would push
// the node count past opt.MaxConfigs. When neither bound intervenes the
// reachable set is exhausted and the builder becomes complete.
//
// The trajectory is deterministic: any sequence of Extend calls reaching
// the same bounds yields byte-identical arrays to a single call, which is
// the contract frontier persistence rests on. Expansion honours
// opt.Workers level-synchronously exactly like the other engines; the
// merge order (and therefore every array) is worker-count independent.
func (b *AtlasBuilder) Extend(opt Options) (newlyExpanded int) {
	if b.finished {
		panic("explore: AtlasBuilder used after Finish")
	}
	opt = opt.withDefaults()
	pool := &succPool{}
	var seqBuf []Successor
	var levelScratch []node

	for {
		u := b.Expanded()
		if u >= len(b.cfgs) {
			b.complete = true
			return newlyExpanded
		}
		if opt.MaxDepth > 0 && int(b.depth[u]) >= opt.MaxDepth {
			return newlyExpanded
		}
		// Batch: the contiguous run of pending nodes at this depth (one
		// breadth-first level's remainder), expanded together when the
		// worker pool is on.
		end := u
		for end < len(b.cfgs) && b.depth[end] == b.depth[u] {
			end++
		}
		var exps [][]Successor
		if opt.Workers > 1 {
			if cap(levelScratch) < end-u {
				levelScratch = make([]node, end-u)
			}
			level := levelScratch[:end-u]
			for i := range level {
				level[i] = node{cfg: b.cfgs[u+i]}
			}
			exps = expandLevel(level, func(n node, dst []Successor) []Successor {
				return AppendSuccessors(b.pr, n.cfg, nil, dst)
			}, opt.Workers, pool)
		}
		for v := u; v < end; v++ {
			var succs []Successor
			if exps != nil {
				succs = exps[v-u]
			} else {
				seqBuf = AppendSuccessors(b.pr, b.cfgs[v], nil, seqBuf)
				succs = seqBuf
			}
			if len(b.cfgs)+b.freshAmong(succs) > opt.MaxConfigs {
				if exps != nil {
					pool.recycle(exps)
				}
				return newlyExpanded // budget: stop before this node
			}
			for _, s := range succs {
				id := int32(len(b.cfgs))
				if got, fresh := b.index.InternTag(s.Cfg, uint64(id)); fresh {
					b.admit(s.Cfg, int32(v), s.Via)
				} else {
					id = int32(got)
				}
				b.succTo = append(b.succTo, id)
				b.succVia = append(b.succVia, s.Via)
			}
			b.succStart = append(b.succStart, int32(len(b.succTo)))
			newlyExpanded++
		}
		if exps != nil {
			pool.recycle(exps)
		}
	}
}

// Snapshot captures the builder's exploration state. The returned arrays
// alias the builder's; do not Extend while a snapshot is being serialized.
func (b *AtlasBuilder) Snapshot() *AtlasSnapshot {
	keys := make([][]byte, len(b.cfgs))
	for i, c := range b.cfgs {
		keys[i] = c.KeyBytes()
	}
	return &AtlasSnapshot{
		Depth:     b.depth,
		Parent:    b.parent,
		ParentVia: b.parentVia,
		SuccStart: b.succStart,
		SuccTo:    b.succTo,
		SuccVia:   b.succVia,
		Keys:      keys,
		Complete:  b.complete,
	}
}

// Finish converts a complete builder into an Atlas — predecessor CSR plus
// the two backward passes, exactly as BuildAtlas would have produced (the
// admission trajectory is shared, so the arrays are byte-identical).
// ok=false when the frontier is not empty. The builder hands its arrays to
// the atlas and must not be used afterwards.
func (b *AtlasBuilder) Finish(opt Options) (*Atlas, bool) {
	if !b.complete {
		return nil, false
	}
	b.finished = true
	a := &Atlas{
		pr: b.pr, opt: opt.withDefaults(), root: b.root,
		index: b.index, cfgs: b.cfgs, depth: b.depth,
		parent: b.parent, parentVia: b.parentVia,
		succStart: b.succStart, succTo: b.succTo, succVia: b.succVia,
	}
	a.buildPred()
	a.dist0 = a.distToValue(model.V0)
	a.dist1 = a.distToValue(model.V1)
	return a, true
}

// RestoreAtlasBuilder reconstructs a resumable builder from a snapshot by
// replaying the breadth-first tree: node i's configuration is
// parentVia[i] applied to its parent's, verified byte-for-byte against the
// stored canonical key. One protocol step per node — no re-exploration, no
// dedup sweeps — and any corruption (or a protocol whose semantics have
// drifted since the snapshot was taken) surfaces as an error on the first
// divergent node, never as a wrong atlas.
func RestoreAtlasBuilder(pr model.Protocol, root *model.Config, snap *AtlasSnapshot) (*AtlasBuilder, error) {
	if err := snap.validateShape(); err != nil {
		return nil, err
	}
	if !bytes.Equal(snap.Keys[0], root.KeyBytes()) {
		return nil, fmt.Errorf("explore: snapshot root key does not match the requested root")
	}
	b := &AtlasBuilder{pr: pr, root: root, index: model.NewInterner()}
	b.cfgs = make([]*model.Config, len(snap.Depth))
	b.cfgs[0] = root
	for i := 1; i < len(b.cfgs); i++ {
		c, err := model.Apply(pr, b.cfgs[snap.Parent[i]], snap.ParentVia[i])
		if err != nil {
			return nil, fmt.Errorf("explore: snapshot replay failed at node %d: %w", i, err)
		}
		if !bytes.Equal(c.KeyBytes(), snap.Keys[i]) {
			return nil, fmt.Errorf("explore: snapshot replay diverged at node %d (stored key does not match)", i)
		}
		b.cfgs[i] = c
	}
	for i, c := range b.cfgs {
		b.index.InternTag(c, uint64(i))
	}
	b.depth = snap.Depth
	b.parent = snap.Parent
	b.parentVia = snap.ParentVia
	b.succStart = snap.SuccStart
	b.succTo = snap.SuccTo
	b.succVia = snap.SuccVia
	b.complete = snap.Complete
	return b, nil
}

// Snapshot captures a complete atlas's state, distance columns included,
// for persistence. Arrays alias the atlas's (which is immutable).
func (a *Atlas) Snapshot() *AtlasSnapshot {
	keys := make([][]byte, len(a.cfgs))
	if a.keys != nil {
		copy(keys, a.keys)
	} else {
		for i, c := range a.cfgs {
			keys[i] = c.KeyBytes()
		}
	}
	return &AtlasSnapshot{
		Depth:     a.depth,
		Parent:    a.parent,
		ParentVia: a.parentVia,
		SuccStart: a.succStart,
		SuccTo:    a.succTo,
		SuccVia:   a.succVia,
		Keys:      keys,
		Complete:  true,
		Dist0:     a.dist0,
		Dist1:     a.dist1,
	}
}

// LoadAtlas reconstructs an Atlas from a complete snapshot without
// replaying a single protocol step: classifications, witness lengths,
// witness schedules, and frontier walks all run off the persisted arrays,
// and configurations materialize lazily (by replaying the parent chain)
// only if a caller asks for one. IDOf answers from the persisted key
// table. This is the warm path — loading is array decoding, not
// exploration.
//
// The snapshot must describe root under pr; the root key is verified here
// and every lazily materialized configuration is verified against its
// stored key, so a stale or corrupt snapshot fails loudly instead of
// answering wrongly.
func LoadAtlas(pr model.Protocol, root *model.Config, opt Options, snap *AtlasSnapshot) (*Atlas, error) {
	if !snap.Complete {
		return nil, fmt.Errorf("explore: cannot load a partial snapshot as an atlas")
	}
	if err := snap.validateShape(); err != nil {
		return nil, err
	}
	if len(snap.Dist0) != len(snap.Depth) {
		return nil, fmt.Errorf("explore: snapshot lacks distance columns")
	}
	if !bytes.Equal(snap.Keys[0], root.KeyBytes()) {
		return nil, fmt.Errorf("explore: snapshot root key does not match the requested root")
	}
	a := &Atlas{
		pr: pr, opt: opt.withDefaults(), root: root,
		cfgs:  make([]*model.Config, len(snap.Depth)),
		depth: snap.Depth, parent: snap.Parent, parentVia: snap.ParentVia,
		succStart: snap.SuccStart, succTo: snap.SuccTo, succVia: snap.SuccVia,
		dist0: snap.Dist0, dist1: snap.Dist1,
		keys: snap.Keys,
	}
	a.cfgs[0] = root
	a.buildPred()
	return a, nil
}
