package explore_test

import (
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// The benchmark pair measures the whole-graph census both ways: classify
// every reachable configuration by one per-configuration breadth-first
// search each (O(V·(V+E)), the pre-atlas cost) versus one atlas build that
// answers all of them (O(V+E)). `make bench-valency` runs both.

func benchProtocols(b *testing.B) []struct {
	name string
	pr   model.Protocol
	inp  model.Inputs
} {
	b.Helper()
	return []struct {
		name string
		pr   model.Protocol
		inp  model.Inputs
	}{
		{"naivemajority3", protocols.NewNaiveMajority(3), model.Inputs{0, 1, 1}},
		{"2pc3", protocols.NewTwoPhaseCommit(3), model.Inputs{1, 1, 0}},
	}
}

func BenchmarkValencyPerConfig(b *testing.B) {
	for _, tc := range benchProtocols(b) {
		b.Run(tc.name, func(b *testing.B) {
			opt := explore.Options{Workers: 1}
			root := model.MustInitial(tc.pr, tc.inp)
			a, ok := explore.BuildAtlas(tc.pr, root, opt)
			if !ok {
				b.Fatal("fixture exceeds budget")
			}
			cfgs := make([]*model.Config, a.Len())
			for id := range cfgs {
				cfgs[id] = a.Config(int32(id))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				counts := make(map[explore.Valency]int)
				for _, c := range cfgs {
					counts[explore.Classify(tc.pr, c, opt).Valency]++
				}
			}
		})
	}
}

func BenchmarkAtlasCensus(b *testing.B) {
	for _, tc := range benchProtocols(b) {
		b.Run(tc.name, func(b *testing.B) {
			opt := explore.Options{Workers: 1}
			root := model.MustInitial(tc.pr, tc.inp)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, ok := explore.BuildAtlas(tc.pr, root, opt)
				if !ok {
					b.Fatal("fixture exceeds budget")
				}
				_ = a.Census()
			}
		})
	}
}

// BenchmarkAtlasWarmedCache measures the adversary's configuration: one
// build, then every classification answered from the warmed cache.
func BenchmarkAtlasWarmedCache(b *testing.B) {
	for _, tc := range benchProtocols(b) {
		b.Run(tc.name, func(b *testing.B) {
			opt := explore.Options{Workers: 1}
			root := model.MustInitial(tc.pr, tc.inp)
			a, ok := explore.BuildAtlas(tc.pr, root, opt)
			if !ok {
				b.Fatal("fixture exceeds budget")
			}
			cfgs := make([]*model.Config, a.Len())
			for id := range cfgs {
				cfgs[id] = a.Config(int32(id))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cache := explore.NewCache(tc.pr, opt)
				cache.Warm(a)
				for _, c := range cfgs {
					cache.Classify(c)
				}
			}
		})
	}
}
