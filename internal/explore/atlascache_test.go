package explore

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// countingProtocol wraps a protocol and counts Step calls — a proxy for
// exploration work, since every BuildAtlas sweep expands configurations
// through the transition function. It lets the tests assert "one build
// ran" without reaching into cache internals.
type countingProtocol struct {
	model.Protocol
	steps atomic.Int64
}

func (cp *countingProtocol) Step(p model.PID, s model.State, m *model.Message) (model.State, []model.Message) {
	cp.steps.Add(1)
	return cp.Protocol.Step(p, s, m)
}

// TestAtlasCacheSingleflight pins the serving-layer contract: N
// concurrent identical requests cost exactly one BuildAtlas sweep, and
// every caller gets the same immutable atlas.
func TestAtlasCacheSingleflight(t *testing.T) {
	cp := &countingProtocol{Protocol: protocols.NewNaiveMajority(3)}
	root := model.MustInitial(cp, model.Inputs{0, 1, 1})
	opt := Options{MaxConfigs: 200000, Workers: 1}
	ac := NewAtlasCache()

	const N = 16
	var wg sync.WaitGroup
	atlases := make([]*Atlas, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, ok := ac.Get(cp, root, opt)
			if !ok {
				t.Error("Get refused a coverable root")
				return
			}
			atlases[i] = a
		}(i)
	}
	wg.Wait()

	for i := 1; i < N; i++ {
		if atlases[i] != atlases[0] {
			t.Fatalf("caller %d got a different atlas instance", i)
		}
	}
	stepsAfterBuild := cp.steps.Load()
	if stepsAfterBuild == 0 {
		t.Fatal("no exploration ran at all")
	}
	hits, misses, merged := ac.Stats()
	if misses != 1 {
		t.Fatalf("%d concurrent identical requests ran %d builds, want 1", N, misses)
	}
	if hits+merged != N-1 {
		t.Fatalf("hits+merged = %d, want %d", hits+merged, N-1)
	}

	// A later identical request is a pure memory hit: zero new Steps.
	if _, ok := ac.Get(cp, root, opt); !ok {
		t.Fatal("warm Get refused")
	}
	if cp.steps.Load() != stepsAfterBuild {
		t.Fatal("a warm Get re-explored the graph")
	}
}

// TestAtlasCacheKeying pins that distinct (protocol, params, root) tuples
// occupy distinct slots — and identical tuples share one — by driving
// every key dimension separately.
func TestAtlasCacheKeying(t *testing.T) {
	nm := protocols.NewNaiveMajority(3)
	ac := NewAtlasCache()
	opt := Options{MaxConfigs: 200000, Workers: 1}

	root011 := model.MustInitial(nm, model.Inputs{0, 1, 1})
	root110 := model.MustInitial(nm, model.Inputs{1, 1, 0})

	a1, ok := ac.Get(nm, root011, opt)
	if !ok {
		t.Fatal("naivemajority root refused")
	}

	// Distinct root, same protocol and params → distinct atlas.
	a2, ok := ac.Get(nm, root110, opt)
	if !ok {
		t.Fatal("second root refused")
	}
	if a1 == a2 {
		t.Fatal("distinct roots shared one atlas")
	}

	// Distinct params (budget), same protocol and root → distinct slot.
	// MaxConfigs 50 is below naivemajority's reachable-set size, so this
	// slot memoizes a refusal without disturbing the full-budget atlas.
	if _, ok := ac.Get(nm, root011, Options{MaxConfigs: 50, Workers: 1}); ok {
		t.Fatal("50-config budget unexpectedly covered the reachable set")
	}
	if again, ok := ac.Get(nm, root011, opt); !ok || again != a1 {
		t.Fatal("full-budget slot was disturbed by the refused small-budget build")
	}

	// Distinct protocol, same inputs shape → distinct slot.
	tp := protocols.NewTwoPhaseCommit(3)
	rootTP := model.MustInitial(tp, model.Inputs{0, 1, 1})
	a3, ok := ac.Get(tp, rootTP, opt)
	if !ok {
		t.Fatal("2pc root refused")
	}
	if a3 == a1 || a3 == a2 {
		t.Fatal("distinct protocols shared one atlas")
	}

	// Workers is excluded from the key: parallel and sequential requests
	// for one tuple share the slot (results are byte-identical at any
	// worker count).
	optPar := opt
	optPar.Workers = 8
	if shared, ok := ac.Get(nm, root011, optPar); !ok || shared != a1 {
		t.Fatal("worker count leaked into the cache key")
	}

	// 4 builds ran (two nm roots, one 2pc root, one refused small-budget
	// build); everything else above was answered from memory.
	if _, misses, _ := ac.Stats(); misses != 4 {
		t.Fatalf("misses = %d, want 4", misses)
	}
}

// TestTryWarmSharesBuilds pins the Cache↔AtlasCache wiring: two valency
// caches sharing one build cache pay one sweep between them, and the
// memoized-refusal contract of TryWarm survives the extraction.
func TestTryWarmSharesBuilds(t *testing.T) {
	cp := &countingProtocol{Protocol: protocols.NewNaiveMajority(3)}
	root := model.MustInitial(cp, model.Inputs{0, 1, 1})
	opt := Options{MaxConfigs: 200000, Workers: 1}
	shared := NewAtlasCache()

	c1 := NewCache(cp, opt)
	c1.ShareAtlasBuilds(shared)
	c2 := NewCache(cp, opt)
	c2.ShareAtlasBuilds(shared)

	if !c1.TryWarm(root) {
		t.Fatal("first TryWarm failed")
	}
	steps := cp.steps.Load()
	if !c2.TryWarm(root) {
		t.Fatal("second cache's TryWarm failed")
	}
	if cp.steps.Load() != steps {
		t.Fatal("second cache re-paid the atlas sweep instead of sharing it")
	}
	if !c1.Covers(root) || !c2.Covers(root) {
		t.Fatal("warmed caches do not cover the root")
	}

	// Both caches answer classifications from the one shared atlas.
	info1 := c1.Classify(root)
	info2 := c2.Classify(root)
	if info1.Valency != info2.Valency || info1.Visited != info2.Visited {
		t.Fatalf("shared-atlas classifications diverge: %+v vs %+v", info1, info2)
	}

	// Repeated TryWarm on a covered root must not re-attach: the atlas
	// list stays at one.
	if !c1.TryWarm(root) {
		t.Fatal("TryWarm on a covered root failed")
	}
	if n := len(*c1.atlases.Load()); n != 1 {
		t.Fatalf("repeat TryWarm grew the attached-atlas list to %d", n)
	}
}
