package explore

import (
	"fmt"

	"github.com/flpsim/flp/internal/model"
)

// Lemma2ProofStep is the mechanized argument from the proof of Lemma 2 for
// one adjacent pair of initial configurations C0, C1 differing only in the
// input of process p:
//
//	"Now consider some admissible deciding run from C0 in which process p
//	takes no steps, and let σ be the associated schedule. Then σ can be
//	applied to C1 also, and corresponding configurations in the two runs
//	are identical except for the internal state of process p. It is easily
//	shown that both runs eventually reach the same decision value."
//
// Each field records one sentence of that argument, checked on the real
// system.
type Lemma2ProofStep struct {
	// Pair identifies the adjacent initial configurations and the
	// process whose input differs.
	Zero, One model.Inputs
	Differ    model.PID
	// SigmaFound reports whether a deciding schedule from C0 avoiding p
	// exists within the budget. Protocols outside Lemma 2's hypotheses —
	// not tolerating even the "crash" of p — fail here, which is exactly
	// how they escape the lemma.
	SigmaFound bool
	// Sigma is the deciding p-free schedule from C0, when found.
	Sigma model.Schedule
	// AppliesToOne reports that σ is applicable to C1 (it must be: the
	// two configurations differ only inside p, which takes no steps).
	AppliesToOne bool
	// SameDecision reports that σ(C0) and σ(C1) carry the same decision
	// value — the contradiction, since C0 is 0-valent and C1 is 1-valent.
	SameDecision bool
	// Decision is that common value.
	Decision model.Value
}

// Contradiction reports whether the proof's contradiction was produced:
// a p-free deciding run whose decision both sides share, impossible if C0
// and C1 are genuinely 0- and 1-valent.
func (s Lemma2ProofStep) Contradiction() bool {
	return s.SigmaFound && s.AppliesToOne && s.SameDecision
}

// CheckLemma2Proof runs the Lemma 2 proof argument against a protocol.
// For every adjacent 0-valent/1-valent pair of initial configurations it
// attempts the construction above. Outcomes:
//
//   - A protocol satisfying Lemma 2's conclusion has no such pair (some
//     initial configuration is bivalent), so the returned slice is empty —
//     the lemma holds vacuously at this layer and the census (Lemma 2
//     itself) exhibits the bivalent configuration.
//   - A protocol violating Lemma 2's conclusion while satisfying its
//     hypotheses would yield a step with Contradiction() == true — which
//     is impossible, so observing one falsifies the model.
//   - A protocol outside the hypotheses (WaitAll: cannot decide with a
//     silent process) yields steps with SigmaFound == false: the proof's
//     very first move is what its fault-tolerance assumption buys.
func CheckLemma2Proof(pr model.Protocol, opt Options) ([]Lemma2ProofStep, error) {
	census, err := CensusInitial(pr, opt)
	if err != nil {
		return nil, err
	}
	var steps []Lemma2ProofStep
	for i := range census.PerInput {
		zero := census.PerInput[i]
		if !zero.Info.Exact || zero.Info.Valency != ZeroValent {
			continue
		}
		for j := range census.PerInput {
			one := census.PerInput[j]
			if !one.Info.Exact || one.Info.Valency != OneValent {
				continue
			}
			p, ok := zero.Inputs.AdjacentTo(one.Inputs)
			if !ok {
				continue
			}
			step, err := lemma2ProofStep(pr, zero.Inputs, one.Inputs, p, opt)
			if err != nil {
				return nil, err
			}
			steps = append(steps, step)
		}
	}
	return steps, nil
}

func lemma2ProofStep(pr model.Protocol, zero, one model.Inputs, p model.PID, opt Options) (Lemma2ProofStep, error) {
	step := Lemma2ProofStep{Zero: zero, One: one, Differ: p}
	c0, err := model.Initial(pr, zero)
	if err != nil {
		return step, err
	}
	c1, err := model.Initial(pr, one)
	if err != nil {
		return step, err
	}

	// Search for a deciding schedule from C0 in which p takes no steps.
	skip := func(e model.Event) bool { return e.P == p }
	var sigma model.Schedule
	ExploreFiltered(pr, c0, opt, skip, func(cfg *model.Config, _ int, path func() model.Schedule) bool {
		if len(cfg.DecisionValues()) > 0 {
			sigma = path()
			step.SigmaFound = true
			return true
		}
		return false
	})
	if !step.SigmaFound {
		return step, nil
	}
	step.Sigma = sigma

	d0 := model.MustApplySchedule(pr, c0, sigma)
	d1, err := model.ApplySchedule(pr, c1, sigma)
	if err != nil {
		return step, fmt.Errorf("explore: σ not applicable to C1, contradicting Lemma 1: %w", err)
	}
	step.AppliesToOne = true

	v0 := d0.DecisionValues()
	v1 := d1.DecisionValues()
	if len(v0) == 1 && len(v1) == 1 && v0[0] == v1[0] {
		step.SameDecision = true
		step.Decision = v0[0]
	}
	return step, nil
}
