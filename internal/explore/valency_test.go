package explore_test

import (
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// verifyWitness checks that a witness schedule really reaches a
// configuration with decision value v.
func verifyWitness(t *testing.T, pr model.Protocol, c *model.Config, sigma model.Schedule, v model.Value) {
	t.Helper()
	cfg, err := model.ApplySchedule(pr, c, sigma)
	if err != nil {
		t.Fatalf("witness schedule not applicable: %v", err)
	}
	for _, d := range cfg.DecisionValues() {
		if d == v {
			return
		}
	}
	t.Fatalf("witness schedule does not reach decision value %v (values: %v)", v, cfg.DecisionValues())
}

func TestClassifyNaiveMajority(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	cases := []struct {
		inputs model.Inputs
		want   explore.Valency
	}{
		{in(0, 0, 0), explore.ZeroValent},
		{in(0, 0, 1), explore.ZeroValent}, // a single 1 always loses the tie-break
		{in(0, 1, 1), explore.Bivalent},
		{in(1, 1, 1), explore.OneValent},
	}
	for _, tc := range cases {
		c := model.MustInitial(pr, tc.inputs)
		info := explore.Classify(pr, c, explore.Options{})
		if info.Valency != tc.want || !info.Exact {
			t.Errorf("inputs %s: valency %v (exact=%v), want %v exact", tc.inputs, info.Valency, info.Exact, tc.want)
		}
		if info.HasWitness(model.V0) {
			verifyWitness(t, pr, c, info.Witness0, model.V0)
		}
		if info.HasWitness(model.V1) {
			verifyWitness(t, pr, c, info.Witness1, model.V1)
		}
	}
}

func TestClassifyWaitAllAlwaysUnivalent(t *testing.T) {
	pr := protocols.NewWaitAll(3)
	for _, inp := range model.AllInputs(3) {
		c := model.MustInitial(pr, inp)
		info := explore.Classify(pr, c, explore.Options{})
		if !info.Valency.Univalent() || !info.Exact {
			t.Errorf("inputs %s: valency %v, want exact univalent", inp, info.Valency)
		}
		// The decision is the majority of all inputs, schedule-independent.
		want := explore.ZeroValent
		if inp.Count(model.V1)*2 > 3 {
			want = explore.OneValent
		}
		if info.Valency != want {
			t.Errorf("inputs %s: valency %v, want %v", inp, info.Valency, want)
		}
	}
}

func TestClassifyTwoPhaseCommit(t *testing.T) {
	pr := protocols.NewTwoPhaseCommit(3)
	for _, inp := range model.AllInputs(3) {
		c := model.MustInitial(pr, inp)
		info := explore.Classify(pr, c, explore.Options{})
		want := explore.ZeroValent
		if inp.Count(model.V0) == 0 {
			want = explore.OneValent // commit iff every vote is "commit"
		}
		if info.Valency != want || !info.Exact {
			t.Errorf("inputs %s: valency %v (exact=%v), want %v", inp, info.Valency, info.Exact, want)
		}
	}
}

func TestClassifyBudgetGivesUnknown(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	c := model.MustInitial(pr, in(0, 0, 0))
	info := explore.Classify(pr, c, explore.Options{MaxConfigs: 50})
	if info.Exact {
		t.Error("tiny-budget classification of an unbounded protocol claimed exactness")
	}
	if info.Valency != explore.Unknown {
		t.Errorf("valency = %v, want unknown", info.Valency)
	}
}

func TestClassifyBivalentIsExactDespiteBudget(t *testing.T) {
	// Bivalence is certified by two witnesses and stays exact even when
	// the reachable set is not exhausted.
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, in(0, 1, 1))
	info := explore.Classify(pr, c, explore.Options{MaxConfigs: 100})
	if info.Valency != explore.Bivalent || !info.Exact {
		t.Errorf("valency = %v exact=%v, want exact bivalent", info.Valency, info.Exact)
	}
	if info.Complete {
		// 141 configurations are reachable; with early exit on both
		// witnesses the search should stop well before exhausting them.
		t.Log("note: classification completed despite early exit (acceptable)")
	}
}

func TestValencyStrings(t *testing.T) {
	for v, want := range map[explore.Valency]string{
		explore.Unknown:    "unknown",
		explore.Stuck:      "stuck",
		explore.ZeroValent: "0-valent",
		explore.OneValent:  "1-valent",
		explore.Bivalent:   "bivalent",
	} {
		if v.String() != want {
			t.Errorf("Valency(%d).String() = %q, want %q", v, v.String(), want)
		}
	}
	if !explore.ZeroValent.Univalent() || !explore.OneValent.Univalent() || explore.Bivalent.Univalent() {
		t.Error("Univalent() wrong")
	}
	if explore.ValentFor(model.V0) != explore.ZeroValent || explore.ValentFor(model.V1) != explore.OneValent {
		t.Error("ValentFor wrong")
	}
}

func TestCacheMemoizes(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	cache := explore.NewCache(pr, explore.Options{})
	c := model.MustInitial(pr, in(0, 1, 1))
	first := cache.Classify(c)
	second := cache.Classify(c)
	if first.Valency != second.Valency {
		t.Error("cache returned a different classification")
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want 1, 1", hits, misses)
	}
	if cache.Len() != 1 {
		t.Errorf("cache Len = %d, want 1", cache.Len())
	}
}

func TestSmartCacheCertifiesPaxosBivalence(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	cache := explore.NewSmartCache(pr, explore.Options{MaxConfigs: 500}, explore.ProbeOptions{})
	c := model.MustInitial(pr, in(0, 1, 1))
	info := cache.Classify(c)
	if info.Valency != explore.Bivalent || !info.Exact {
		t.Fatalf("paxos 011: valency %v exact=%v, want exact bivalent", info.Valency, info.Exact)
	}
	verifyWitness(t, pr, c, info.Witness0, model.V0)
	verifyWitness(t, pr, c, info.Witness1, model.V1)
}

func TestClassifySmartPaxosValidity(t *testing.T) {
	// Unanimous inputs: Paxos only ever decides the proposed value, so the
	// probe must not fabricate the other value.
	pr := protocols.NewPaxosSynod(3)
	c := model.MustInitial(pr, in(0, 0, 0))
	info := explore.ClassifySmart(pr, c, explore.Options{MaxConfigs: 500}, explore.ProbeOptions{})
	if info.HasWitness(model.V1) {
		t.Error("probe claims decision value 1 is reachable from unanimous-0 Paxos")
	}
	if info.HasWitness(model.V0) {
		verifyWitness(t, pr, c, info.Witness0, model.V0)
	} else {
		t.Error("probe failed to find the 0 decision from unanimous-0 Paxos")
	}
}

func TestProbeValenciesBenOr(t *testing.T) {
	pr := protocols.NewBenOrDeterministic(5, 7)
	c := model.MustInitial(pr, in(0, 0, 1, 1, 0))
	w0, w1, f0, f1 := explore.ProbeValencies(pr, c, explore.ProbeOptions{})
	if !f0 || !f1 {
		t.Fatalf("probe found0=%v found1=%v, want both for a mixed-input Ben-Or", f0, f1)
	}
	verifyWitness(t, pr, c, w0, model.V0)
	verifyWitness(t, pr, c, w1, model.V1)
}

func TestProbeStuckProtocol(t *testing.T) {
	// 2PC's decision is input-determined; probes from an abort-bound
	// configuration must never find a commit.
	pr := protocols.NewTwoPhaseCommit(3)
	c := model.MustInitial(pr, in(0, 1, 1))
	_, _, f0, f1 := explore.ProbeValencies(pr, c, explore.ProbeOptions{})
	if !f0 {
		t.Error("probe missed the abort decision")
	}
	if f1 {
		t.Error("probe fabricated a commit decision")
	}
}
