package explore_test

// Allocation-regression guard for a whole exploration: the per-visited-
// configuration allocation budget of Explore on a small finite protocol.
// The model-layer guards (internal/model/alloc_test.go) pin the key
// machinery in isolation; this one pins the engine on top — frontier
// growth, successor buffers, interning — so a regression anywhere in the
// level loop (say, successor slices no longer recycling) fails here even
// if each piece still looks fine alone.

import (
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
)

// exploreAllocsPerConfig runs a full budgeted exploration and returns
// allocations per visited configuration.
func exploreAllocsPerConfig(t *testing.T, workers int) float64 {
	t.Helper()
	pr := registryFixture(t, "waitall")
	in := model.Inputs{model.V0, model.V1, model.V0}
	opt := explore.Options{MaxConfigs: 100000, Workers: workers}
	_, visited := explore.Explore(pr, model.MustInitial(pr, in), opt, nil, nil)
	if visited == 0 {
		t.Fatal("explored nothing")
	}
	allocs := testing.AllocsPerRun(5, func() {
		explore.Explore(pr, model.MustInitial(pr, in), opt, nil, nil)
	})
	return allocs / float64(visited)
}

// TestAllocsExploreSequential pins the sequential engine. The measured
// cost on the waitall(3) fixture is ~105 allocs per visited configuration
// (dominated by successor materialization: states slice, buffer clone,
// protocol state, key build — across every expanded candidate, not just
// the admitted ones); the ceiling leaves headroom for harness noise, not
// for a return of per-candidate string keys, which costs 3-4× more.
func TestAllocsExploreSequential(t *testing.T) {
	per := exploreAllocsPerConfig(t, 1)
	const ceiling = 140
	if per > ceiling {
		t.Fatalf("sequential Explore allocates %.1f/config, ceiling %d", per, ceiling)
	}
}

// TestAllocsExploreParallel pins the parallel engine to the same budget
// plus pool overhead: with successor buffers recycled across levels, the
// level-synchronous engine must stay within a few percent of sequential,
// not a multiple of it.
func TestAllocsExploreParallel(t *testing.T) {
	per := exploreAllocsPerConfig(t, 4)
	const ceiling = 150
	if per > ceiling {
		t.Fatalf("parallel Explore allocates %.1f/config, ceiling %d", per, ceiling)
	}
}
