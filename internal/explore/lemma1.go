package explore

import (
	"fmt"
	"math/rand"

	"github.com/flpsim/flp/internal/model"
)

// CheckCommutativity verifies Lemma 1 on a concrete instance: if schedules
// σ1 and σ2 from C involve disjoint sets of processes and both are
// applicable to C, then both composition orders are applicable and lead to
// the same configuration. It returns an error describing the violation, or
// nil if the instance commutes.
func CheckCommutativity(pr model.Protocol, c *model.Config, s1, s2 model.Schedule) error {
	if !s1.DisjointFrom(s2) {
		return fmt.Errorf("explore: schedules are not disjoint; Lemma 1 does not apply")
	}
	c1, err := model.ApplySchedule(pr, c, s1)
	if err != nil {
		return fmt.Errorf("explore: σ1 not applicable to C: %w", err)
	}
	c2, err := model.ApplySchedule(pr, c, s2)
	if err != nil {
		return fmt.Errorf("explore: σ2 not applicable to C: %w", err)
	}
	c12, err := model.ApplySchedule(pr, c1, s2)
	if err != nil {
		return fmt.Errorf("explore: σ2 not applicable to σ1(C), violating Lemma 1: %w", err)
	}
	c21, err := model.ApplySchedule(pr, c2, s1)
	if err != nil {
		return fmt.Errorf("explore: σ1 not applicable to σ2(C), violating Lemma 1: %w", err)
	}
	if !c12.Equal(c21) {
		return fmt.Errorf("explore: σ2(σ1(C)) ≠ σ1(σ2(C)), violating Lemma 1")
	}
	return nil
}

// RandomDisjointSchedules generates a random pair of schedules from c over
// disjoint process sets, each applicable to c, for property-based testing
// of Lemma 1. The processes are split randomly into two groups and each
// schedule is a random applicable walk restricted to its group, of at most
// maxLen events.
func RandomDisjointSchedules(pr model.Protocol, c *model.Config, r *rand.Rand, maxLen int) (model.Schedule, model.Schedule) {
	n := c.N()
	groupOf := make([]int, n)
	for p := range groupOf {
		groupOf[p] = r.Intn(2)
	}
	walk := func(group int) model.Schedule {
		var sigma model.Schedule
		cur := c
		steps := r.Intn(maxLen + 1)
		for len(sigma) < steps {
			var candidates []model.Event
			for _, e := range model.Events(cur) {
				if groupOf[int(e.P)] != group {
					continue
				}
				// Only deliver messages sent within the group: messages
				// from the other group may not exist when the schedules
				// are composed in the other order, so restricting to
				// intra-group traffic keeps both orders applicable.
				if e.Msg != nil && groupOf[int(e.Msg.From)] != group {
					continue
				}
				candidates = append(candidates, e)
			}
			if len(candidates) == 0 {
				break
			}
			e := candidates[r.Intn(len(candidates))]
			sigma = append(sigma, e)
			cur = model.MustApply(pr, cur, e)
		}
		return sigma
	}
	return walk(0), walk(1)
}
