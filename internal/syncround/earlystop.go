package syncround

import (
	"github.com/flpsim/flp/internal/model"
)

// EarlyDecider is implemented by algorithm processes that can commit to
// their decision before the final round. The executor still runs all
// rounds (messages keep flowing); DecidedAt reports when the decision
// became fixed, for the early-stopping measurements.
type EarlyDecider interface {
	DecidedAt() (round int, ok bool)
}

// EarlyFloodSet is FloodSet with the classic early-stopping rule: a
// process that observes the same sender set in two consecutive rounds has
// witnessed a failure-free exchange — every value any live process holds
// already reached it — so its decision is fixed then, in round f'+2 at the
// latest where f' is the number of crashes that actually occur (still
// bounded by the worst-case f+1).
//
// The sender set a process observes is non-increasing over rounds (a
// process sends fully until its crash round and partially or not at all
// afterwards), so "no sender disappeared" is exactly "no failure visible".
type EarlyFloodSet struct{}

// Name implements Algorithm.
func (EarlyFloodSet) Name() string { return "floodset-early" }

// Rounds implements Algorithm: the worst case is unchanged.
func (EarlyFloodSet) Rounds(_, f int) int { return f + 1 }

// NewProcess implements Algorithm.
func (EarlyFloodSet) NewProcess(_, _ int, input model.Value) Process {
	ep := &earlyProcess{}
	ep.w[input] = true
	return ep
}

type earlyProcess struct {
	w           [2]bool
	prevSenders map[int]bool
	decidedAt   int     // 0 = not yet fixed
	earlyW      [2]bool // snapshot of w at the moment the decision fixed
}

// Send implements Process.
func (ep *earlyProcess) Send(int) string { return encodeSet(ep.w) }

// Recv implements Process.
func (ep *earlyProcess) Recv(r int, payloads map[int]string) {
	for _, payload := range payloads {
		w := decodeSet(payload)
		ep.w[0] = ep.w[0] || w[0]
		ep.w[1] = ep.w[1] || w[1]
	}
	senders := make(map[int]bool, len(payloads))
	for from := range payloads {
		senders[from] = true
	}
	if ep.decidedAt == 0 && ep.prevSenders != nil && sameSet(senders, ep.prevSenders) {
		ep.decidedAt = r
		ep.earlyW = ep.w
	}
	ep.prevSenders = senders
}

// Decide implements Process.
func (ep *earlyProcess) Decide() (model.Value, bool) {
	if ep.w[0] {
		return model.V0, true
	}
	if ep.w[1] {
		return model.V1, true
	}
	return 0, false
}

// DecidedAt implements EarlyDecider.
func (ep *earlyProcess) DecidedAt() (int, bool) {
	if ep.decidedAt > 0 {
		return ep.decidedAt, true
	}
	return 0, false
}

// EarlyValue returns the decision value as fixed at DecidedAt. The
// early-stopping argument says it equals the final Decide value — a clean
// round means no live process holds anything this one lacks.
func (ep *earlyProcess) EarlyValue() (model.Value, bool) {
	if ep.decidedAt == 0 {
		return 0, false
	}
	if ep.earlyW[0] {
		return model.V0, true
	}
	return model.V1, true
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
