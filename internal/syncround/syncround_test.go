package syncround_test

import (
	"math/rand"
	"testing"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/syncround"
)

func TestFloodSetNoCrashes(t *testing.T) {
	for _, in := range model.AllInputs(3) {
		res, err := syncround.Run(syncround.FloodSet{}, in, 1, syncround.CrashPattern{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Agreement || len(res.Decisions) != 3 {
			t.Fatalf("inputs %s: agreement=%v decisions=%v", in, res.Agreement, res.Decisions)
		}
		want := model.V1
		if in.Count(model.V0) > 0 {
			want = model.V0 // min(W) rule: 0 wins when present
		}
		if v, _ := res.DecidedValue(); v != want {
			t.Errorf("inputs %s: decided %v, want %v", in, v, want)
		}
		if res.Rounds != 2 {
			t.Errorf("rounds = %d, want f+1 = 2", res.Rounds)
		}
	}
}

func TestFloodSetUnanimousValidity(t *testing.T) {
	for _, v := range []model.Value{model.V0, model.V1} {
		res, err := syncround.Run(syncround.FloodSet{}, model.UniformInputs(5, v), 2,
			syncround.CrashPattern{
				Round:   map[int]int{0: 1, 3: 2},
				Partial: map[int]map[int]bool{0: {1: true}, 3: {}},
			})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := res.DecidedValue(); !ok || got != v {
			t.Errorf("unanimous %v: decided %v (ok=%v)", v, got, ok)
		}
	}
}

func TestFloodSetAgreementUnderRandomCrashes(t *testing.T) {
	// Exhaustive-ish: many random crash patterns with the full budget f,
	// all input mixes, several system sizes. Agreement must never break.
	r := rand.New(rand.NewSource(99))
	for _, nf := range [][2]int{{3, 1}, {4, 1}, {5, 2}, {7, 3}} {
		n, f := nf[0], nf[1]
		rounds := f + 1
		for trial := 0; trial < 120; trial++ {
			in := make(model.Inputs, n)
			for i := range in {
				in[i] = model.Value(r.Intn(2))
			}
			cp := syncround.RandomCrashPattern(n, f, rounds, r)
			res, err := syncround.Run(syncround.FloodSet{}, in, f, cp)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Agreement {
				t.Fatalf("n=%d f=%d trial=%d: disagreement %v under %+v (inputs %s)",
					n, f, trial, res.Decisions, cp, in)
			}
			if len(res.Decisions) < n-f {
				t.Fatalf("n=%d f=%d: only %d survivors decided", n, f, len(res.Decisions))
			}
			// Validity: decision is someone's input.
			if v, ok := res.DecidedValue(); ok && in.Count(v) == 0 {
				t.Fatalf("decided %v which nobody proposed", v)
			}
		}
	}
}

func TestFloodSetExhaustiveSmall(t *testing.T) {
	// n=3, f=1: enumerate every victim, crash round, partial-delivery
	// subset, and input assignment. 3 × 3 × 4 × 8 = 288 executions.
	for victim := 0; victim < 3; victim++ {
		for crashRound := 0; crashRound <= 2; crashRound++ {
			for subset := 0; subset < 4; subset++ {
				partial := map[int]bool{}
				others := []int{}
				for q := 0; q < 3; q++ {
					if q != victim {
						others = append(others, q)
					}
				}
				if subset&1 != 0 {
					partial[others[0]] = true
				}
				if subset&2 != 0 {
					partial[others[1]] = true
				}
				cp := syncround.CrashPattern{
					Round:   map[int]int{victim: crashRound},
					Partial: map[int]map[int]bool{victim: partial},
				}
				for _, in := range model.AllInputs(3) {
					res, err := syncround.Run(syncround.FloodSet{}, in, 1, cp)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Agreement {
						t.Fatalf("victim=%d round=%d subset=%d inputs=%s: disagreement %v",
							victim, crashRound, subset, in, res.Decisions)
					}
				}
			}
		}
	}
}

func TestTruncatedFloodSetCanDisagree(t *testing.T) {
	// The f+1 bound is tight: with f = 1 crash and only 1 round, a crash
	// that reaches one survivor but not the other splits the decision.
	cp := syncround.CrashPattern{
		Round:   map[int]int{2: 1},
		Partial: map[int]map[int]bool{2: {1: true}},
	}
	res, err := syncround.Run(syncround.TruncatedFloodSet{R: 1}, model.Inputs{1, 1, 0}, 1, cp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agreement {
		t.Fatal("expected disagreement after only f rounds; the bound demo is broken")
	}
	// The same pattern under full FloodSet agrees.
	res2, err := syncround.Run(syncround.FloodSet{}, model.Inputs{1, 1, 0}, 1, cp)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Agreement {
		t.Fatal("full FloodSet disagreed")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := syncround.Run(syncround.FloodSet{}, model.Inputs{0}, 1, syncround.CrashPattern{}); err == nil {
		t.Error("single-process run accepted")
	}
	over := syncround.CrashPattern{Round: map[int]int{0: 1, 1: 1}}
	if _, err := syncround.Run(syncround.FloodSet{}, model.Inputs{0, 1, 1}, 1, over); err == nil {
		t.Error("crash pattern exceeding the budget accepted")
	}
}

func TestInitiallyDeadSendNothing(t *testing.T) {
	cp := syncround.CrashPattern{Round: map[int]int{0: 0}, Partial: map[int]map[int]bool{0: {}}}
	res, err := syncround.Run(syncround.FloodSet{}, model.Inputs{0, 1, 1}, 1, cp)
	if err != nil {
		t.Fatal(err)
	}
	// p0's value 0 never reaches anyone: survivors decide 1.
	if v, ok := res.DecidedValue(); !ok || v != model.V1 {
		t.Errorf("decided %v (ok=%v), want 1", v, ok)
	}
	if _, decided := res.Decisions[0]; decided {
		t.Error("initially dead process decided")
	}
}

func TestMessageCounting(t *testing.T) {
	res, err := syncround.Run(syncround.FloodSet{}, model.Inputs{0, 1, 1}, 1, syncround.CrashPattern{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 senders × 3 recipients × 2 rounds (self-delivery included).
	if res.Messages != 18 {
		t.Errorf("messages = %d, want 18", res.Messages)
	}
}

func TestRandomCrashPatternShape(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cp := syncround.RandomCrashPattern(6, 2, 3, r)
	if cp.Crashes() != 2 {
		t.Errorf("Crashes = %d, want 2", cp.Crashes())
	}
	for v, round := range cp.Round {
		if round < 0 || round > 3 {
			t.Errorf("victim %d crashes in round %d, out of range", v, round)
		}
		if cp.Partial[v][v] {
			t.Error("victim delivers to itself in partial set")
		}
	}
}
