// Package syncround implements the synchronous-rounds model the paper
// contrasts with ("By way of contrast, solutions are known for the
// synchronous case") and the FloodSet algorithm, which solves binary
// consensus in exactly f+1 rounds in the presence of up to f crash faults.
//
// In the synchronous model computation proceeds in lock-step rounds: every
// live process broadcasts a message, all messages are delivered at the end
// of the round, and crashes are the only faults. A process that crashes
// mid-broadcast delivers its final message to an arbitrary adversary-chosen
// subset of recipients — that partial delivery is exactly what forces f+1
// rounds rather than one.
package syncround

import (
	"fmt"
	"math/rand"

	"github.com/flpsim/flp/internal/model"
)

// Process is a synchronous round-based algorithm instance for one process.
type Process interface {
	// Send returns the payload this process broadcasts in round r (1-based).
	Send(r int) string
	// Recv consumes the payloads delivered this round, keyed by sender.
	// Its own payload is included (self-delivery is reliable).
	Recv(r int, payloads map[int]string)
	// Decide returns the decision after the final round.
	Decide() (model.Value, bool)
}

// Algorithm builds the per-process instances.
type Algorithm interface {
	Name() string
	// Rounds returns the number of rounds to run for crash budget f.
	Rounds(n, f int) int
	// NewProcess returns process p's instance.
	NewProcess(p, n int, input model.Value) Process
}

// CrashPattern specifies the adversary's crash schedule.
type CrashPattern struct {
	// Round maps a process to the round (1-based) in which it crashes.
	// Processes absent from the map never crash. A process crashing in
	// round r broadcasts to only a subset of recipients in r and is dead
	// afterwards; crashing in round 0 means initially dead.
	Round map[int]int
	// Partial maps a crashing process to the recipients that still receive
	// its final-round broadcast. Processes absent deliver to nobody.
	Partial map[int]map[int]bool
}

// Crashes returns the number of processes that crash.
func (cp CrashPattern) Crashes() int { return len(cp.Round) }

// RandomCrashPattern draws a crash schedule with exactly f crash victims,
// random crash rounds in [0, rounds] and random partial-delivery sets.
func RandomCrashPattern(n, f, rounds int, r *rand.Rand) CrashPattern {
	cp := CrashPattern{Round: map[int]int{}, Partial: map[int]map[int]bool{}}
	victims := r.Perm(n)[:f]
	for _, v := range victims {
		cp.Round[v] = r.Intn(rounds + 1)
		subset := map[int]bool{}
		for q := 0; q < n; q++ {
			if q != v && r.Intn(2) == 0 {
				subset[q] = true
			}
		}
		cp.Partial[v] = subset
	}
	return cp
}

// Result reports one synchronous execution.
type Result struct {
	Algorithm string
	N, F      int
	Rounds    int
	// Decisions maps each process that survived to the end to its
	// decision.
	Decisions map[int]model.Value
	// Agreement reports whether all survivors decided identically.
	Agreement bool
	// Messages is the total number of point-to-point deliveries.
	Messages int
	// Procs exposes the process instances after the run, so callers can
	// query algorithm-specific interfaces (e.g. EarlyDecider).
	Procs []Process
}

// DecidedValue returns the survivors' common decision.
func (r *Result) DecidedValue() (model.Value, bool) {
	seen := map[model.Value]bool{}
	for _, v := range r.Decisions {
		seen[v] = true
	}
	if len(seen) == 1 {
		for v := range seen {
			return v, true
		}
	}
	return 0, false
}

// Run executes alg on n processes with inputs in under the given crash
// pattern and crash budget f.
func Run(alg Algorithm, inputs model.Inputs, f int, cp CrashPattern) (*Result, error) {
	n := len(inputs)
	if n < 2 {
		return nil, fmt.Errorf("syncround: need at least 2 processes, got %d", n)
	}
	if cp.Crashes() > f {
		return nil, fmt.Errorf("syncround: crash pattern kills %d processes, budget is %d", cp.Crashes(), f)
	}
	rounds := alg.Rounds(n, f)
	procs := make([]Process, n)
	for p := 0; p < n; p++ {
		procs[p] = alg.NewProcess(p, n, inputs[p])
	}

	res := &Result{Algorithm: alg.Name(), N: n, F: f, Rounds: rounds, Decisions: map[int]model.Value{}, Procs: procs}

	for r := 1; r <= rounds; r++ {
		// Gather each sender's payload and recipient set.
		delivered := make([]map[int]string, n)
		for p := 0; p < n; p++ {
			delivered[p] = map[int]string{}
		}
		for p := 0; p < n; p++ {
			cr, crashes := cp.Round[p]
			if crashes && r > cr {
				continue // already dead
			}
			if crashes && r == cr {
				if cr == 0 {
					continue // initially dead: never sent anything
				}
				// Final partial broadcast, recipients chosen by the
				// adversary.
				payload := procs[p].Send(r)
				for q := range cp.Partial[p] {
					delivered[q][p] = payload
					res.Messages++
				}
				continue
			}
			payload := procs[p].Send(r)
			for q := 0; q < n; q++ {
				delivered[q][p] = payload
				res.Messages++
			}
		}
		// Processes that have crashed by round r no longer process input.
		for p := 0; p < n; p++ {
			if isCrashedBy(cp, p, r) {
				continue
			}
			procs[p].Recv(r, delivered[p])
		}
	}

	for p := 0; p < n; p++ {
		if _, crashes := cp.Round[p]; crashes {
			continue // crashed processes render no decision
		}
		if v, ok := procs[p].Decide(); ok {
			res.Decisions[p] = v
		}
	}
	seen := map[model.Value]bool{}
	for _, v := range res.Decisions {
		seen[v] = true
	}
	res.Agreement = len(seen) <= 1
	return res, nil
}

// isCrashedBy reports whether p has crashed in round r or earlier.
func isCrashedBy(cp CrashPattern, p, r int) bool {
	cr, crashes := cp.Round[p]
	return crashes && r >= cr
}
