package syncround

import (
	"strings"

	"github.com/flpsim/flp/internal/model"
)

// FloodSet is the classic synchronous crash-tolerant consensus algorithm:
// every process maintains the set W of input values it has seen (initially
// its own input), broadcasts W each round, unions in everything it
// receives, and after f+1 rounds decides min(W) — here, with binary values,
// 0 if 0 ∈ W and 1 otherwise.
//
// With at most f crashes, some round among the f+1 is crash-free; in that
// round every live process flushes its W to every other, after which all
// sets are equal and stay equal. Hence agreement; validity is immediate
// because W only ever contains inputs.
type FloodSet struct{}

// Name implements Algorithm.
func (FloodSet) Name() string { return "floodset" }

// Rounds implements Algorithm: f+1 rounds.
func (FloodSet) Rounds(_, f int) int { return f + 1 }

// NewProcess implements Algorithm.
func (FloodSet) NewProcess(_, _ int, input model.Value) Process {
	fp := &floodProcess{}
	fp.w[input] = true
	return fp
}

type floodProcess struct {
	w [2]bool // w[v] = v ∈ W
}

// Send implements Process.
func (fp *floodProcess) Send(int) string { return encodeSet(fp.w) }

// Recv implements Process.
func (fp *floodProcess) Recv(_ int, payloads map[int]string) {
	for _, payload := range payloads {
		w := decodeSet(payload)
		fp.w[0] = fp.w[0] || w[0]
		fp.w[1] = fp.w[1] || w[1]
	}
}

// Decide implements Process: min(W), i.e. 0 wins when both are present.
func (fp *floodProcess) Decide() (model.Value, bool) {
	if fp.w[0] {
		return model.V0, true
	}
	if fp.w[1] {
		return model.V1, true
	}
	return 0, false
}

// TruncatedFloodSet is FloodSet cut to a fixed number of rounds, for the
// ablation that shows f+1 rounds are necessary: with f crashes and only f
// rounds, there are crash patterns under which survivors disagree.
type TruncatedFloodSet struct {
	// R is the number of rounds to run.
	R int
}

// Name implements Algorithm.
func (t TruncatedFloodSet) Name() string { return "floodset-truncated" }

// Rounds implements Algorithm.
func (t TruncatedFloodSet) Rounds(_, _ int) int { return t.R }

// NewProcess implements Algorithm.
func (t TruncatedFloodSet) NewProcess(p, n int, input model.Value) Process {
	return FloodSet{}.NewProcess(p, n, input)
}

func encodeSet(w [2]bool) string {
	var sb strings.Builder
	if w[0] {
		sb.WriteByte('0')
	}
	if w[1] {
		sb.WriteByte('1')
	}
	return sb.String()
}

func decodeSet(s string) [2]bool {
	var w [2]bool
	w[0] = strings.ContainsRune(s, '0')
	w[1] = strings.ContainsRune(s, '1')
	return w
}
