package syncround_test

import (
	"math/rand"
	"testing"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/syncround"
)

func TestEarlyFloodSetNoCrashesDecidesRound2(t *testing.T) {
	// With no crashes the very first repeat round (round 2) is clean:
	// everyone's decision fixes at round 2 even with a large budget f.
	res, err := syncround.Run(syncround.EarlyFloodSet{},
		model.Inputs{0, 1, 1, 0, 1}, 4, syncround.CrashPattern{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatal("disagreement")
	}
	for p, proc := range res.Procs {
		ed := proc.(syncround.EarlyDecider)
		r, ok := ed.DecidedAt()
		if !ok || r != 2 {
			t.Errorf("p%d decision fixed at round %d (ok=%v), want 2", p, r, ok)
		}
	}
}

func TestEarlyFloodSetMatchesFinalDecision(t *testing.T) {
	// The value snapshotted at the early-decision point must equal the
	// final FloodSet decision, across random crash patterns.
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 150; trial++ {
		n := 4 + r.Intn(4)
		f := (n - 1) / 2
		in := make(model.Inputs, n)
		for i := range in {
			in[i] = model.Value(r.Intn(2))
		}
		cp := syncround.RandomCrashPattern(n, f, f+1, r)
		res, err := syncround.Run(syncround.EarlyFloodSet{}, in, f, cp)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Agreement {
			t.Fatalf("trial %d: disagreement %v under %+v", trial, res.Decisions, cp)
		}
		actualCrashes := cp.Crashes()
		for p := range res.Procs {
			if _, crashed := cp.Round[p]; crashed {
				continue
			}
			ep := res.Procs[p].(interface {
				DecidedAt() (int, bool)
				EarlyValue() (model.Value, bool)
			})
			fixedAt, ok := ep.DecidedAt()
			if ok {
				early, _ := ep.EarlyValue()
				if final := res.Decisions[p]; early != final {
					t.Fatalf("trial %d: p%d early value %v ≠ final %v", trial, p, early, final)
				}
				// The early-stopping bound: min(f'+2, f+1).
				bound := actualCrashes + 2
				if f+1 < bound {
					bound = f + 1
				}
				if fixedAt > bound {
					t.Fatalf("trial %d: p%d fixed at round %d > bound %d (f'=%d, f=%d)",
						trial, p, fixedAt, bound, actualCrashes, f)
				}
			}
		}
	}
}

func TestEarlyFloodSetAgreementExhaustiveSmall(t *testing.T) {
	// Same exhaustive n=3, f=1 sweep as plain FloodSet.
	for victim := 0; victim < 3; victim++ {
		for crashRound := 0; crashRound <= 2; crashRound++ {
			for subset := 0; subset < 4; subset++ {
				partial := map[int]bool{}
				others := []int{}
				for q := 0; q < 3; q++ {
					if q != victim {
						others = append(others, q)
					}
				}
				if subset&1 != 0 {
					partial[others[0]] = true
				}
				if subset&2 != 0 {
					partial[others[1]] = true
				}
				cp := syncround.CrashPattern{
					Round:   map[int]int{victim: crashRound},
					Partial: map[int]map[int]bool{victim: partial},
				}
				for _, in := range model.AllInputs(3) {
					res, err := syncround.Run(syncround.EarlyFloodSet{}, in, 1, cp)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Agreement {
						t.Fatalf("victim=%d round=%d subset=%d inputs=%s: disagreement %v",
							victim, crashRound, subset, in, res.Decisions)
					}
				}
			}
		}
	}
}
