// Package model implements the system model of Section 2 of Fischer, Lynch,
// and Paterson, "Impossibility of Distributed Consensus with One Faulty
// Process" (JACM 32(2), 1985), exactly and executably:
//
//   - A consensus protocol P is an asynchronous system of N ≥ 2 processes.
//   - Each process p has a one-bit input register x_p, a write-once output
//     register y_p ∈ {b, 0, 1}, and unbounded internal storage; together
//     these form its internal state ([Protocol] + [State]).
//   - Processes are deterministic automata: a transition function maps
//     (state, delivered message or ∅) to (new state, finite set of sent
//     messages) ([Protocol.Step]).
//   - The message system is a multiset buffer supporting send(p, m) and a
//     nondeterministic receive(p) that may return ∅ ([Buffer]).
//   - A configuration is the internal state of every process plus the
//     buffer contents ([Config]); a step is an event e = (p, m) applied to
//     a configuration ([Event], [Apply]); a schedule is a sequence of
//     events ([Schedule]).
//
// The model layer is deliberately untimed: configurations compare equal
// when their states and buffer multisets are equal, which is what makes
// valency analysis in package explore sound and memoizable. Send-time
// ordering (needed only for the admissibility discipline of Theorem 1) is
// layered on top by package adversary and package runtime.
package model
