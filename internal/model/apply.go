package model

import (
	"errors"
	"fmt"
)

// ErrNotApplicable is returned by Apply when the event's message is not
// present in the configuration's buffer.
var ErrNotApplicable = errors.New("model: event not applicable to configuration")

// ProtocolError reports a violation of the model's contract by a Protocol
// implementation: a nil successor state, an invalid destination, or a write
// to an already-decided output register.
type ProtocolError struct {
	Protocol string
	P        PID
	Reason   string
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("model: protocol %q, process %d: %s", e.Protocol, e.P, e.Reason)
}

// Apply performs the step e on configuration c under protocol pr and
// returns the resulting configuration e(c). It implements the two-phase
// step of Section 2: first receive(p) obtains m ∈ M ∪ {∅}, then p enters a
// new internal state and sends a finite set of messages.
//
// Apply enforces the model's invariants:
//   - the delivered message must be in the buffer (ErrNotApplicable),
//   - the successor state must be non-nil,
//   - sent messages must name valid destinations,
//   - the output register is write-once.
//
// Sent messages have their From field stamped with e.P.
func Apply(pr Protocol, c *Config, e Event) (*Config, error) {
	nc, _, err := ApplyTraced(pr, c, e)
	return nc, err
}

// ApplyTraced is Apply but additionally returns the messages sent during
// the step (with From stamped), for callers that maintain send-order
// bookkeeping on top of the untimed buffer.
func ApplyTraced(pr Protocol, c *Config, e Event) (*Config, []Message, error) {
	if int(e.P) < 0 || int(e.P) >= c.N() {
		return nil, nil, &ProtocolError{Protocol: pr.Name(), P: e.P, Reason: "no such process"}
	}
	if e.Msg != nil && !Applicable(c, e) {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotApplicable, e)
	}
	old := c.State(e.P)
	ns, sends := pr.Step(e.P, old, e.Msg)
	if ns == nil {
		return nil, nil, &ProtocolError{Protocol: pr.Name(), P: e.P, Reason: "Step returned nil state"}
	}
	if o := old.Output(); o.Decided() && ns.Output() != o {
		return nil, nil, &ProtocolError{
			Protocol: pr.Name(), P: e.P,
			Reason: fmt.Sprintf("output register is write-once: was %s, Step changed it to %s", o, ns.Output()),
		}
	}
	stamped := make([]Message, len(sends))
	for i, m := range sends {
		if int(m.To) < 0 || int(m.To) >= c.N() {
			return nil, nil, &ProtocolError{
				Protocol: pr.Name(), P: e.P,
				Reason: fmt.Sprintf("sent message to nonexistent process %d", m.To),
			}
		}
		m.From = e.P
		stamped[i] = m
	}
	return c.withStep(e.P, ns, e.Msg, stamped), stamped, nil
}

// MustApply is Apply but panics on error, for contexts (explorer internals,
// tests) where applicability was already established.
func MustApply(pr Protocol, c *Config, e Event) *Config {
	nc, err := Apply(pr, c, e)
	if err != nil {
		panic(err)
	}
	return nc
}

// IsNoOp reports whether applying e to c leaves the system state unchanged:
// same process state and no messages sent (and nothing consumed). Null
// events that are no-ops can be skipped during exploration without losing
// any reachable configuration, which is what keeps the explored state space
// of a finite protocol finite.
func IsNoOp(pr Protocol, c *Config, e Event) bool {
	if e.Msg != nil {
		return false // consuming a message always changes the buffer
	}
	ns, sends := pr.Step(e.P, c.State(e.P), nil)
	return ns != nil && len(sends) == 0 && ns.Key() == c.State(e.P).Key()
}
