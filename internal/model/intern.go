package model

import (
	"bytes"
	"sync"
)

// internShardCount is the number of independently locked shards of an
// Interner. It is a power of two so shard selection is a mask of the
// fingerprint's low bits.
const internShardCount = 64

// internArenaChunk is the allocation unit of a shard's key arena. Interned
// keys are copied into these chunks back to back, so a visited set of a
// million configurations costs a few thousand allocations of key storage
// rather than a million.
const internArenaChunk = 1 << 16

// Interner assigns stable small integer identities to configurations: two
// configurations receive the same ID iff they are Equal. Identity is
// resolved by the 64-bit configuration fingerprint with every candidate
// match confirmed against the full binary canonical key, so fingerprint
// collisions cost a bytes.Equal, never correctness.
//
// The interner is the explorer's visited set: Intern reports whether the
// configuration was fresh (seen for the first time). Keys are the compact
// binary form (Config.KeyBytes) — no canonical-key strings are built or
// compared anywhere on this path.
//
// Interner is safe for concurrent use; the table is sharded by fingerprint
// so that concurrent interning of unrelated configurations rarely contends
// on a lock. IDs are unique across shards and reflect interning order only
// within a shard.
//
// One interner holds one key namespace: entries made by Intern/InternTag
// carry binary keys, entries made by InternKey carry wire-form string
// keys. The two encodings of one configuration are different byte strings,
// so never mix the two styles in a single interner.
type Interner struct {
	shards [internShardCount]internShard
}

type internShard struct {
	mu      sync.Mutex
	buckets map[uint64][]internEntry
	count   uint64
	arena   []byte
}

type internEntry struct {
	key []byte
	id  uint64
	tag uint64
}

// NewInterner returns an empty interner. Shard tables are allocated on
// first insertion, so short-lived interners (one per budgeted Classify,
// for example) cost almost nothing until they see configurations.
func NewInterner() *Interner { return &Interner{} }

// lookupLocked scans the shard's bucket for key; sh.mu must be held.
func (sh *internShard) lookupLocked(h uint64, key []byte) (internEntry, bool) {
	for _, e := range sh.buckets[h] {
		if bytes.Equal(e.key, key) {
			return e, true
		}
	}
	return internEntry{}, false
}

// insertLocked adds an entry under h, assigning its interner-wide unique
// id; sh.mu must be held.
func (sh *internShard) insertLocked(h uint64, key []byte, tag uint64) internEntry {
	if sh.buckets == nil {
		sh.buckets = make(map[uint64][]internEntry)
	}
	e := internEntry{key: key, id: sh.count*internShardCount + h&(internShardCount-1), tag: tag}
	sh.count++
	sh.buckets[h] = append(sh.buckets[h], e)
	return e
}

// copyToArena stores one key's bytes in the shard arena and returns the
// stable sub-slice. The tail of a chunk too small for the next key is
// abandoned — bounded waste for allocation-free steady state.
func (sh *internShard) copyToArena(key string) []byte {
	if cap(sh.arena)-len(sh.arena) < len(key) {
		size := internArenaChunk
		if len(key) > size {
			size = len(key)
		}
		sh.arena = make([]byte, 0, size)
	}
	off := len(sh.arena)
	sh.arena = append(sh.arena, key...)
	return sh.arena[off:len(sh.arena):len(sh.arena)]
}

// Intern returns the ID of c, assigning a fresh one if c was never seen
// before. fresh reports whether this call was the first to intern a
// configuration Equal to c.
//
// A fresh entry aliases c's cached binary key rather than copying it: the
// explorer retains every first-seen configuration anyway, so the visited
// set stores each key exactly once.
func (it *Interner) Intern(c *Config) (id uint64, fresh bool) {
	h := c.Hash()
	key := c.KeyBytes()
	sh := &it.shards[h&(internShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.lookupLocked(h, key); ok {
		return e.id, false
	}
	return sh.insertLocked(h, key, 0).id, true
}

// InternTag is Intern with a caller-supplied auxiliary value: when c is
// fresh, tag is recorded with the entry; either way the call returns the
// tag recorded by whichever call interned c first. This is the hook the
// explore package's valency atlas is built on — the tag carries the
// atlas's dense graph-node id, so successor and predecessor edges to
// already-visited configurations resolve to node ids with the same single
// lookup that deduplicates the visited set.
//
// Entries interned through plain Intern carry tag 0; keep one interner per
// tag namespace rather than mixing the two styles.
func (it *Interner) InternTag(c *Config, tag uint64) (got uint64, fresh bool) {
	h := c.Hash()
	key := c.KeyBytes()
	sh := &it.shards[h&(internShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.lookupLocked(h, key); ok {
		return e.tag, false
	}
	sh.insertLocked(h, key, tag)
	return tag, true
}

// InternKey interns by precomputed fingerprint and wire-form canonical key
// string, for holders of transmitted keys with no Config to materialize —
// the distributed explorer's visited-set shards dedup exactly this way. A
// dedup hit costs zero allocations (the incoming string is compared
// in place against the stored bytes); a fresh key is copied into the
// shard's arena.
//
// h must be HashKey(key). Keys interned here are a different namespace
// from Intern/InternTag's binary keys — use a dedicated interner.
func (it *Interner) InternKey(h uint64, key string) (id uint64, fresh bool) {
	sh := &it.shards[h&(internShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range sh.buckets[h] {
		if equalBytesString(e.key, key) {
			return e.id, false
		}
	}
	return sh.insertLocked(h, sh.copyToArena(key), 0).id, true
}

// equalBytesString is bytes.Equal against a string without converting
// either side.
func equalBytesString(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}

// Tag returns the auxiliary value recorded for c by InternTag.
func (it *Interner) Tag(c *Config) (tag uint64, ok bool) {
	h := c.Hash()
	key := c.KeyBytes()
	sh := &it.shards[h&(internShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, found := sh.lookupLocked(h, key); found {
		return e.tag, true
	}
	return 0, false
}

// Lookup returns the ID of c if it has been interned.
func (it *Interner) Lookup(c *Config) (id uint64, ok bool) {
	h := c.Hash()
	key := c.KeyBytes()
	sh := &it.shards[h&(internShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, found := sh.lookupLocked(h, key); found {
		return e.id, true
	}
	return 0, false
}

// Len returns the number of distinct configurations interned.
func (it *Interner) Len() int {
	n := uint64(0)
	for i := range it.shards {
		sh := &it.shards[i]
		sh.mu.Lock()
		n += sh.count
		sh.mu.Unlock()
	}
	return int(n)
}
