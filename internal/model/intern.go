package model

import "sync"

// internShardCount is the number of independently locked shards of an
// Interner. It is a power of two so shard selection is a mask of the
// fingerprint's low bits.
const internShardCount = 64

// Interner assigns stable small integer identities to configurations: two
// configurations receive the same ID iff they are Equal. Identity is
// resolved by the 64-bit configuration fingerprint with every candidate
// match confirmed against the full canonical key, so fingerprint
// collisions cost a string comparison, never correctness.
//
// The interner is the explorer's visited set: Intern reports whether the
// configuration was fresh (seen for the first time), replacing the hot
// per-lookup hashing of long canonical-key strings with cached 64-bit
// fingerprints.
//
// Interner is safe for concurrent use; the table is sharded by fingerprint
// so that concurrent interning of unrelated configurations rarely contends
// on a lock. IDs are unique across shards and reflect interning order only
// within a shard.
type Interner struct {
	shards [internShardCount]internShard
}

type internShard struct {
	mu      sync.Mutex
	buckets map[uint64][]internEntry
	count   uint64
}

type internEntry struct {
	key string
	id  uint64
	tag uint64
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	it := &Interner{}
	for i := range it.shards {
		it.shards[i].buckets = make(map[uint64][]internEntry)
	}
	return it
}

// Intern returns the ID of c, assigning a fresh one if c was never seen
// before. fresh reports whether this call was the first to intern a
// configuration Equal to c.
func (it *Interner) Intern(c *Config) (id uint64, fresh bool) {
	h := c.Hash()
	sh := &it.shards[h&(internShardCount-1)]
	key := c.Key()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range sh.buckets[h] {
		if e.key == key {
			return e.id, false
		}
	}
	id = sh.count*internShardCount + h&(internShardCount-1)
	sh.count++
	sh.buckets[h] = append(sh.buckets[h], internEntry{key: key, id: id})
	return id, true
}

// InternTag is Intern with a caller-supplied auxiliary value: when c is
// fresh, tag is recorded with the entry; either way the call returns the
// tag recorded by whichever call interned c first. This is the hook the
// explore package's valency atlas is built on — the tag carries the
// atlas's dense graph-node id, so successor and predecessor edges to
// already-visited configurations resolve to node ids with the same single
// lookup that deduplicates the visited set.
//
// Entries interned through plain Intern carry tag 0; keep one interner per
// tag namespace rather than mixing the two styles.
func (it *Interner) InternTag(c *Config, tag uint64) (got uint64, fresh bool) {
	h := c.Hash()
	sh := &it.shards[h&(internShardCount-1)]
	key := c.Key()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range sh.buckets[h] {
		if e.key == key {
			return e.tag, false
		}
	}
	id := sh.count*internShardCount + h&(internShardCount-1)
	sh.count++
	sh.buckets[h] = append(sh.buckets[h], internEntry{key: key, id: id, tag: tag})
	return tag, true
}

// Tag returns the auxiliary value recorded for c by InternTag.
func (it *Interner) Tag(c *Config) (tag uint64, ok bool) {
	h := c.Hash()
	sh := &it.shards[h&(internShardCount-1)]
	key := c.Key()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range sh.buckets[h] {
		if e.key == key {
			return e.tag, true
		}
	}
	return 0, false
}

// Lookup returns the ID of c if it has been interned.
func (it *Interner) Lookup(c *Config) (id uint64, ok bool) {
	h := c.Hash()
	sh := &it.shards[h&(internShardCount-1)]
	key := c.Key()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range sh.buckets[h] {
		if e.key == key {
			return e.id, true
		}
	}
	return 0, false
}

// Len returns the number of distinct configurations interned.
func (it *Interner) Len() int {
	n := uint64(0)
	for i := range it.shards {
		sh := &it.shards[i]
		sh.mu.Lock()
		n += sh.count
		sh.mu.Unlock()
	}
	return int(n)
}
