package model

import (
	"fmt"
	"strings"
)

// Schedule is a finite sequence of events applied in turn from some
// configuration. The associated sequence of steps is a run.
type Schedule []Event

// ApplySchedule applies σ to c, returning σ(c). It fails if any event is
// inapplicable at its turn.
func ApplySchedule(pr Protocol, c *Config, sigma Schedule) (*Config, error) {
	cur := c
	for i, e := range sigma {
		nc, err := Apply(pr, cur, e)
		if err != nil {
			return nil, fmt.Errorf("model: schedule event %d: %w", i, err)
		}
		cur = nc
	}
	return cur, nil
}

// MustApplySchedule is ApplySchedule but panics on error.
func MustApplySchedule(pr Protocol, c *Config, sigma Schedule) *Config {
	nc, err := ApplySchedule(pr, c, sigma)
	if err != nil {
		panic(err)
	}
	return nc
}

// Processes returns the set of processes taking steps in σ.
func (s Schedule) Processes() map[PID]bool {
	set := make(map[PID]bool)
	for _, e := range s {
		set[e.P] = true
	}
	return set
}

// DisjointFrom reports whether the sets of processes taking steps in s and
// o are disjoint — the hypothesis of Lemma 1.
func (s Schedule) DisjointFrom(o Schedule) bool {
	ps := s.Processes()
	for _, e := range o {
		if ps[e.P] {
			return false
		}
	}
	return true
}

// Contains reports whether σ applies an event the same as e.
func (s Schedule) Contains(e Event) bool {
	for _, x := range s {
		if x.Same(e) {
			return true
		}
	}
	return false
}

// Steps returns the number of steps taken by process p in σ.
func (s Schedule) Steps(p PID) int {
	n := 0
	for _, e := range s {
		if e.P == p {
			n++
		}
	}
	return n
}

func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, e := range s {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}
