package model_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// randomWalk applies up to steps random effectful events from an initial
// configuration of pr, returning the visited configurations and events.
func randomWalk(pr model.Protocol, in model.Inputs, steps int, seed int64) ([]*model.Config, []model.Event) {
	r := rand.New(rand.NewSource(seed))
	cfg := model.MustInitial(pr, in)
	configs := []*model.Config{cfg}
	var events []model.Event
	for i := 0; i < steps; i++ {
		var evs []model.Event
		for _, e := range model.Events(cfg) {
			if e.IsNull() && model.IsNoOp(pr, cfg, e) {
				continue
			}
			evs = append(evs, e)
		}
		if len(evs) == 0 {
			break
		}
		e := evs[r.Intn(len(evs))]
		cfg = model.MustApply(pr, cfg, e)
		configs = append(configs, cfg)
		events = append(events, e)
	}
	return configs, events
}

// Property: the buffer is conserved across every step — its size changes
// by exactly (sends - consumed).
func TestQuickBufferConservation(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := model.MustInitial(pr, model.Inputs{0, 1, 1})
		for i := 0; i < 40; i++ {
			var evs []model.Event
			for _, e := range model.Events(cfg) {
				if e.IsNull() && model.IsNoOp(pr, cfg, e) {
					continue
				}
				evs = append(evs, e)
			}
			if len(evs) == 0 {
				return true
			}
			e := evs[r.Intn(len(evs))]
			before := cfg.Buffer().Len()
			nc, sends, err := model.ApplyTraced(pr, cfg, e)
			if err != nil {
				return false
			}
			consumed := 0
			if e.Msg != nil {
				consumed = 1
			}
			if nc.Buffer().Len() != before-consumed+len(sends) {
				return false
			}
			cfg = nc
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: replaying the recorded events of a walk from the same initial
// configuration reproduces the same final configuration (the model is
// fully deterministic given the schedule).
func TestQuickScheduleReplayDeterminism(t *testing.T) {
	pr := protocols.NewBenOrDeterministic(3, 5)
	f := func(seed int64) bool {
		configs, events := randomWalk(pr, model.Inputs{0, 1, 1}, 30, seed)
		replayed := model.MustApplySchedule(pr, configs[0], model.Schedule(events))
		return replayed.Equal(configs[len(configs)-1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: configuration keys respect equality — a configuration rebuilt
// along the same schedule has the same key, and along a different prefix
// of the walk has a different decided/buffer signature or genuinely equal
// state (checked via Equal symmetry).
func TestQuickKeyEqualConsistency(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	f := func(seed int64) bool {
		configs, _ := randomWalk(pr, model.Inputs{0, 1, 1}, 20, seed)
		for i := range configs {
			for j := range configs {
				eq := configs[i].Equal(configs[j])
				if eq != (configs[i].Key() == configs[j].Key()) {
					return false
				}
				if eq != configs[j].Equal(configs[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: every delivery event enumerated by Events names a message
// actually present in the buffer, and every pending message is enumerated.
func TestQuickEventEnumerationMatchesBuffer(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	f := func(seed int64) bool {
		configs, _ := randomWalk(pr, model.Inputs{0, 0, 1}, 25, seed)
		cfg := configs[len(configs)-1]
		deliveries := 0
		for _, e := range model.Events(cfg) {
			if e.Msg == nil {
				continue
			}
			deliveries++
			if !cfg.Buffer().Contains(*e.Msg) {
				return false
			}
		}
		distinct := len(cfg.Buffer().Messages())
		return deliveries == distinct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: single-event commutativity (the atomic core of Lemma 1) —
// two applicable events of different processes, where neither delivers a
// message produced by the other, commute.
func TestQuickSingleEventCommutativity(t *testing.T) {
	pr := protocols.NewWaitAll(4)
	f := func(seed int64) bool {
		configs, _ := randomWalk(pr, model.Inputs{0, 1, 1, 0}, 10, seed)
		cfg := configs[len(configs)-1]
		var evs []model.Event
		for _, e := range model.Events(cfg) {
			if e.IsNull() && model.IsNoOp(pr, cfg, e) {
				continue
			}
			evs = append(evs, e)
		}
		for i := 0; i < len(evs); i++ {
			for j := 0; j < len(evs); j++ {
				e1, e2 := evs[i], evs[j]
				if e1.P == e2.P {
					continue
				}
				a := model.MustApply(pr, model.MustApply(pr, cfg, e1), e2)
				b := model.MustApply(pr, model.MustApply(pr, cfg, e2), e1)
				if !a.Equal(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
