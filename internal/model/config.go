package model

import (
	"fmt"
	"strings"
	"sync/atomic"

	"github.com/flpsim/flp/internal/enc"
)

// Config is a configuration of the system: the internal state of each
// process together with the contents of the message buffer. Configurations
// are immutable once constructed; Apply produces new configurations.
//
// The canonical key and the 64-bit fingerprint are computed lazily and
// cached through atomics, so a Config may be shared freely across
// goroutines (the parallel explorer does). Concurrent computations of the
// same key are idempotent; the last store wins and all stores are equal.
type Config struct {
	states []State
	buf    *Buffer
	key    atomic.Pointer[string] // lazily computed canonical key
	hash   atomic.Uint64          // lazily computed fingerprint; 0 = unset
}

// Initial returns the initial configuration of pr for the given input
// assignment: every process in its initial state and an empty buffer.
func Initial(pr Protocol, in Inputs) (*Config, error) {
	n := pr.N()
	if n < 2 {
		return nil, fmt.Errorf("model: protocol %q has N=%d, need N ≥ 2", pr.Name(), n)
	}
	if len(in) != n {
		return nil, fmt.Errorf("model: %d inputs for %d processes", len(in), n)
	}
	states := make([]State, n)
	for p := 0; p < n; p++ {
		if !in[p].Valid() {
			return nil, fmt.Errorf("model: invalid input %d for process %d", in[p], p)
		}
		s := pr.Init(PID(p), in[p])
		if s == nil {
			return nil, fmt.Errorf("model: protocol %q Init(%d) returned nil state", pr.Name(), p)
		}
		if s.Output() != None {
			return nil, fmt.Errorf("model: protocol %q starts process %d already decided; the output register must start at b", pr.Name(), p)
		}
		states[p] = s
	}
	return &Config{states: states, buf: NewBuffer()}, nil
}

// MustInitial is Initial but panics on error, for tests and examples with
// known-good arguments.
func MustInitial(pr Protocol, in Inputs) *Config {
	c, err := Initial(pr, in)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of processes.
func (c *Config) N() int { return len(c.states) }

// State returns the internal state of process p.
func (c *Config) State(p PID) State { return c.states[p] }

// Buffer returns the message buffer. Callers must not mutate it; use Apply
// to take steps.
func (c *Config) Buffer() *Buffer { return c.buf }

// Output returns the output register content of process p.
func (c *Config) Output(p PID) Output { return c.states[p].Output() }

// DecisionValues returns the set of decision values present in c: the
// values v such that some process is in a decision state with y_p = v.
// A partially correct protocol never reaches a configuration where this has
// more than one element (condition 1 of partial correctness).
func (c *Config) DecisionValues() []Value {
	var seen0, seen1 bool
	for _, s := range c.states {
		switch s.Output() {
		case Decided0:
			seen0 = true
		case Decided1:
			seen1 = true
		}
	}
	var vs []Value
	if seen0 {
		vs = append(vs, V0)
	}
	if seen1 {
		vs = append(vs, V1)
	}
	return vs
}

// Decided reports whether any process has decided, and if exactly the one
// value v is present returns it. If both values are present (an agreement
// violation) it returns ok=false with decided=true.
func (c *Config) Decided() (decided bool, v Value, ok bool) {
	vs := c.DecisionValues()
	switch len(vs) {
	case 0:
		return false, 0, false
	case 1:
		return true, vs[0], true
	default:
		return true, 0, false
	}
}

// DecidedCount returns how many processes have decided.
func (c *Config) DecidedCount() int {
	n := 0
	for _, s := range c.states {
		if s.Output().Decided() {
			n++
		}
	}
	return n
}

// Key returns the canonical encoding of the configuration. Two
// configurations represent the same system state iff their keys are equal.
// Key is safe for concurrent use.
func (c *Config) Key() string {
	if k := c.key.Load(); k != nil {
		return *k
	}
	var b enc.Builder
	for _, s := range c.states {
		b.Str(enc.Escape(s.Key()))
	}
	b.Str(enc.Escape(c.buf.Key()))
	k := b.String()
	c.key.Store(&k)
	return k
}

// FNV-1a constants, used for the configuration fingerprint.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Hash returns a 64-bit fingerprint of the configuration: the FNV-1a hash
// of its canonical key. Equal configurations always have equal hashes;
// unequal configurations collide only with fingerprint probability, and
// every user of the hash (Equal, Interner, the explorer's visited set)
// confirms candidate matches against the full canonical key, so a
// collision can never conflate two distinct system states. Hash is cached
// and safe for concurrent use.
func (c *Config) Hash() uint64 {
	if h := c.hash.Load(); h != 0 {
		return h
	}
	h := fnvString(fnvOffset64, c.Key())
	if h == 0 {
		h = fnvOffset64 // reserve 0 as the "unset" sentinel
	}
	c.hash.Store(h)
	return h
}

// Equal reports whether two configurations are the same system state. The
// cached fingerprints are compared first; the canonical keys settle the
// (vanishingly rare) fingerprint collisions.
func (c *Config) Equal(o *Config) bool {
	if c == o {
		return true
	}
	if c.Hash() != o.Hash() {
		return false
	}
	return c.Key() == o.Key()
}

// String renders the configuration compactly for traces.
func (c *Config) String() string {
	var sb strings.Builder
	sb.WriteString("[")
	for p, s := range c.states {
		if p > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "p%d:y=%s", p, s.Output())
	}
	fmt.Fprintf(&sb, " | buf:%d msg]", c.buf.Len())
	return sb.String()
}

// withStep returns the configuration that results from replacing process
// p's state and updating the buffer. Internal constructor used by Apply.
func (c *Config) withStep(p PID, ns State, remove *Message, sends []Message) *Config {
	states := make([]State, len(c.states))
	copy(states, c.states)
	states[p] = ns
	buf := c.buf.Clone()
	if remove != nil {
		buf.Remove(*remove)
	}
	for _, m := range sends {
		buf.Send(m)
	}
	return &Config{states: states, buf: buf}
}
