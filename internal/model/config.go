package model

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"sync/atomic"

	"github.com/flpsim/flp/internal/enc"
)

// Config is a configuration of the system: the internal state of each
// process together with the contents of the message buffer. Configurations
// are immutable once constructed; Apply produces new configurations.
//
// A configuration has two canonical encodings of the same field sequence
// (one key per process state, then the buffer key):
//
//   - KeyBytes, the binary form: every field length-prefixed with a
//     uvarint. This is the identity the hot path runs on — the interner
//     compares it with bytes.Equal and the fingerprint is the FNV-1a hash
//     of exactly these bytes. No escaping, no intermediate strings.
//   - Key, the string form: every field escaped with enc.Escape and
//     '|'-terminated. This is the human-readable debug and wire view —
//     traces, fixtures, and the distexplore protocol carry it unchanged.
//
// Both encodings are injective over the field sequence, so they induce the
// same equality partition; HashKey recovers the binary fingerprint from the
// string form, which keeps c.Hash() == HashKey(c.Key()) — the contract
// hash-range sharding rests on.
//
// Keys and the fingerprint are computed lazily and cached through atomics,
// so a Config may be shared freely across goroutines (the parallel explorer
// does). Concurrent computations of the same key are idempotent; the last
// store wins and all stores are equal.
type Config struct {
	states []State
	buf    *Buffer
	key    atomic.Pointer[string] // lazily computed canonical key (string view)
	bkey   atomic.Pointer[[]byte] // lazily computed binary canonical key
	hash   atomic.Uint64          // lazily computed fingerprint; 0 = unset

	// Incremental-key hints, set by withStep when the parent's binary key
	// was already materialized: exactly one state field (parentP) and the
	// buffer field differ from parentKey, so KeyBytes copies every other
	// field verbatim instead of rebuilding N state keys. parentKey is the
	// parent's flat key buffer, not the parent Config — no ancestor chain
	// is retained through it.
	parentKey []byte
	parentP   int32
}

// Initial returns the initial configuration of pr for the given input
// assignment: every process in its initial state and an empty buffer.
func Initial(pr Protocol, in Inputs) (*Config, error) {
	n := pr.N()
	if n < 2 {
		return nil, fmt.Errorf("model: protocol %q has N=%d, need N ≥ 2", pr.Name(), n)
	}
	if len(in) != n {
		return nil, fmt.Errorf("model: %d inputs for %d processes", len(in), n)
	}
	states := make([]State, n)
	for p := 0; p < n; p++ {
		if !in[p].Valid() {
			return nil, fmt.Errorf("model: invalid input %d for process %d", in[p], p)
		}
		s := pr.Init(PID(p), in[p])
		if s == nil {
			return nil, fmt.Errorf("model: protocol %q Init(%d) returned nil state", pr.Name(), p)
		}
		if s.Output() != None {
			return nil, fmt.Errorf("model: protocol %q starts process %d already decided; the output register must start at b", pr.Name(), p)
		}
		states[p] = s
	}
	return &Config{states: states, buf: NewBuffer()}, nil
}

// MustInitial is Initial but panics on error, for tests and examples with
// known-good arguments.
func MustInitial(pr Protocol, in Inputs) *Config {
	c, err := Initial(pr, in)
	if err != nil {
		panic(err)
	}
	return c
}

// N returns the number of processes.
func (c *Config) N() int { return len(c.states) }

// State returns the internal state of process p.
func (c *Config) State(p PID) State { return c.states[p] }

// Buffer returns the message buffer. Callers must not mutate it; use Apply
// to take steps.
func (c *Config) Buffer() *Buffer { return c.buf }

// Output returns the output register content of process p.
func (c *Config) Output(p PID) Output { return c.states[p].Output() }

// DecisionValues returns the set of decision values present in c: the
// values v such that some process is in a decision state with y_p = v.
// A partially correct protocol never reaches a configuration where this has
// more than one element (condition 1 of partial correctness).
func (c *Config) DecisionValues() []Value {
	var seen0, seen1 bool
	for _, s := range c.states {
		switch s.Output() {
		case Decided0:
			seen0 = true
		case Decided1:
			seen1 = true
		}
	}
	var vs []Value
	if seen0 {
		vs = append(vs, V0)
	}
	if seen1 {
		vs = append(vs, V1)
	}
	return vs
}

// Decided reports whether any process has decided, and if exactly the one
// value v is present returns it. If both values are present (an agreement
// violation) it returns ok=false with decided=true.
func (c *Config) Decided() (decided bool, v Value, ok bool) {
	vs := c.DecisionValues()
	switch len(vs) {
	case 0:
		return false, 0, false
	case 1:
		return true, vs[0], true
	default:
		return true, 0, false
	}
}

// DecidedCount returns how many processes have decided.
func (c *Config) DecidedCount() int {
	n := 0
	for _, s := range c.states {
		if s.Output().Decided() {
			n++
		}
	}
	return n
}

// Key returns the canonical string encoding of the configuration: every
// field escaped and '|'-terminated. Two configurations represent the same
// system state iff their keys are equal. This is the debug and wire view —
// the binary KeyBytes carries the same identity without the escaping cost,
// and is what the exploration hot path uses. Key is safe for concurrent
// use.
func (c *Config) Key() string {
	if k := c.key.Load(); k != nil {
		return *k
	}
	var b enc.Builder
	for _, s := range c.states {
		b.Str(enc.Escape(s.Key()))
	}
	b.Str(enc.Escape(c.buf.Key()))
	k := b.String()
	c.key.Store(&k)
	return k
}

// KeyBytes returns the binary canonical key of the configuration: each
// field (one per process state, then the buffer key) length-prefixed with a
// uvarint. The encoding is injective — length prefixes delimit fields
// unambiguously — so KeyBytes equality coincides exactly with Key equality.
// The returned slice is cached and must not be modified. KeyBytes is safe
// for concurrent use.
func (c *Config) KeyBytes() []byte {
	if p := c.bkey.Load(); p != nil {
		return *p
	}
	b := c.buildKeyBytes()
	c.bkey.Store(&b)
	return b
}

// AppendKey appends the binary canonical key of the configuration to dst
// and returns the extended slice. When the key is already cached this is a
// single copy; otherwise the key is materialized (and cached) first.
func (c *Config) AppendKey(dst []byte) []byte {
	return append(dst, c.KeyBytes()...)
}

// appendKeyField appends one length-prefixed field of a binary key.
func appendKeyField(dst []byte, field string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(field)))
	return append(dst, field...)
}

// uvarintLen returns the encoded size of binary.AppendUvarint(nil, v).
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// buildKeyBytes materializes the binary key, preferring the incremental
// path: when the parent's key is available, every state field except the
// stepped process is copied verbatim and only the changed state and the
// buffer are re-encoded.
func (c *Config) buildKeyBytes() []byte {
	bufLen := c.buf.KeyLen()
	if c.parentKey != nil {
		if b, ok := c.keyBytesFromParent(bufLen); ok {
			return b
		}
	}
	var scratch [8]string
	fields := scratch[:0]
	for _, s := range c.states {
		fields = append(fields, s.Key())
	}
	size := uvarintLen(uint64(bufLen)) + bufLen
	for _, f := range fields {
		size += uvarintLen(uint64(len(f))) + len(f)
	}
	b := make([]byte, 0, size)
	for _, f := range fields {
		b = appendKeyField(b, f)
	}
	b = binary.AppendUvarint(b, uint64(bufLen))
	b = c.buf.AppendKey(b)
	return b
}

// keyBytesFromParent assembles the binary key from the parent's: fields
// before and after the stepped process are byte ranges of parentKey; only
// the stepped state's key and the buffer key are rebuilt. ok=false on a
// malformed parent key (never produced by this package), falling back to
// the full build.
func (c *Config) keyBytesFromParent(bufLen int) ([]byte, bool) {
	pk, p, n := c.parentKey, int(c.parentP), len(c.states)
	// Walk the n state fields, recording the stepped field's byte span.
	off, pStart, pEnd := 0, -1, -1
	for i := 0; i < n; i++ {
		l, un := binary.Uvarint(pk[off:])
		if un <= 0 || off+un+int(l) > len(pk) {
			return nil, false
		}
		if i == p {
			pStart, pEnd = off, off+un+int(l)
		}
		off += un + int(l)
	}
	if pStart < 0 || off > len(pk) {
		return nil, false
	}
	newField := c.states[p].Key()
	size := pStart + uvarintLen(uint64(len(newField))) + len(newField) +
		(off - pEnd) + uvarintLen(uint64(bufLen)) + bufLen
	b := make([]byte, 0, size)
	b = append(b, pk[:pStart]...)
	b = appendKeyField(b, newField)
	b = append(b, pk[pEnd:off]...)
	b = binary.AppendUvarint(b, uint64(bufLen))
	b = c.buf.AppendKey(b)
	return b, true
}

// FNV-1a constants, used for the configuration fingerprint.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// Hash returns a 64-bit fingerprint of the configuration: the FNV-1a hash
// of its binary canonical key. Equal configurations always have equal
// hashes; unequal configurations collide only with fingerprint
// probability, and every user of the hash (Equal, Interner, the explorer's
// visited set) confirms candidate matches against the full canonical key,
// so a collision can never conflate two distinct system states. Hash is
// cached and safe for concurrent use.
func (c *Config) Hash() uint64 {
	if h := c.hash.Load(); h != 0 {
		return h
	}
	h := fnvBytes(fnvOffset64, c.KeyBytes())
	if h == 0 {
		h = fnvOffset64 // reserve 0 as the "unset" sentinel
	}
	c.hash.Store(h)
	return h
}

// Equal reports whether two configurations are the same system state. The
// cached fingerprints are compared first; the binary canonical keys settle
// the (vanishingly rare) fingerprint collisions with a bytes.Equal — no
// string is ever built here.
func (c *Config) Equal(o *Config) bool {
	if c == o {
		return true
	}
	if c.Hash() != o.Hash() {
		return false
	}
	return bytes.Equal(c.KeyBytes(), o.KeyBytes())
}

// String renders the configuration compactly for traces.
func (c *Config) String() string {
	var sb strings.Builder
	sb.WriteString("[")
	for p, s := range c.states {
		if p > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "p%d:y=%s", p, s.Output())
	}
	fmt.Fprintf(&sb, " | buf:%d msg]", c.buf.Len())
	return sb.String()
}

// withStep returns the configuration that results from replacing process
// p's state and updating the buffer. Internal constructor used by Apply.
// When the parent's binary key is already materialized (every frontier
// node's is by the time it is expanded), the child records it plus the
// stepped process, so its own key build copies the unchanged state fields
// instead of recomputing them.
func (c *Config) withStep(p PID, ns State, remove *Message, sends []Message) *Config {
	states := make([]State, len(c.states))
	copy(states, c.states)
	states[p] = ns
	buf := c.buf.Clone()
	if remove != nil {
		buf.Remove(*remove)
	}
	for _, m := range sends {
		buf.Send(m)
	}
	nc := &Config{states: states, buf: buf}
	if pk := c.bkey.Load(); pk != nil {
		nc.parentKey, nc.parentP = *pk, int32(p)
	}
	return nc
}
