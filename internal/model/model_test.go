package model_test

import (
	"errors"
	"strings"
	"testing"

	"github.com/flpsim/flp/internal/enc"
	"github.com/flpsim/flp/internal/model"
)

// echoProto is a minimal deterministic test protocol: each process
// broadcasts its input on its first step and decides its own input once it
// has heard from every other process.
type echoProto struct{ n int }

type echoState struct {
	me    model.PID
	n     int
	input model.Value
	sent  bool
	heard map[int]bool
	out   model.Output
}

func (s *echoState) Key() string {
	var b enc.Builder
	b.Int(int(s.me)).Uint8(uint8(s.input)).Bool(s.sent).IntSet(s.heard).Uint8(uint8(s.out))
	return b.String()
}

func (s *echoState) Output() model.Output { return s.out }

func (p *echoProto) Name() string { return "echo" }
func (p *echoProto) N() int       { return p.n }

func (p *echoProto) Init(q model.PID, input model.Value) model.State {
	return &echoState{me: q, n: p.n, input: input, heard: map[int]bool{}}
}

func (p *echoProto) Step(q model.PID, s model.State, m *model.Message) (model.State, []model.Message) {
	st := s.(*echoState)
	ns := &echoState{me: st.me, n: st.n, input: st.input, sent: st.sent, out: st.out,
		heard: make(map[int]bool, len(st.heard))}
	for k, v := range st.heard {
		ns.heard[k] = v
	}
	var sends []model.Message
	if !ns.sent {
		ns.sent = true
		sends = model.BroadcastOthers(q, p.n, "v")
	}
	if m != nil {
		ns.heard[int(m.From)] = true
	}
	if !ns.out.Decided() && len(ns.heard) == p.n-1 {
		ns.out = model.OutputOf(ns.input)
	}
	return ns, sends
}

// badWriter flips its output register every step, violating write-once.
type badWriter struct{}

type badState struct{ out model.Output }

func (s badState) Key() string          { return s.out.String() }
func (s badState) Output() model.Output { return s.out }

func (badWriter) Name() string { return "badwriter" }
func (badWriter) N() int       { return 2 }
func (badWriter) Init(model.PID, model.Value) model.State {
	return badState{out: model.None}
}
func (badWriter) Step(_ model.PID, s model.State, _ *model.Message) (model.State, []model.Message) {
	switch s.(badState).out {
	case model.None:
		return badState{out: model.Decided0}, nil
	case model.Decided0:
		return badState{out: model.Decided1}, nil
	}
	return badState{out: model.Decided0}, nil
}

// straySender sends to a process that does not exist.
type straySender struct{}

func (straySender) Name() string { return "stray" }
func (straySender) N() int       { return 2 }
func (straySender) Init(model.PID, model.Value) model.State {
	return badState{out: model.None}
}
func (straySender) Step(model.PID, model.State, *model.Message) (model.State, []model.Message) {
	return badState{out: model.None}, []model.Message{{To: 99, Body: "x"}}
}

func TestValueBasics(t *testing.T) {
	if !model.V0.Valid() || !model.V1.Valid() || model.Value(2).Valid() {
		t.Error("Value.Valid wrong")
	}
	if model.V0.Other() != model.V1 || model.V1.Other() != model.V0 {
		t.Error("Value.Other wrong")
	}
}

func TestOutputBasics(t *testing.T) {
	if model.None.Decided() {
		t.Error("None.Decided() = true")
	}
	if !model.Decided0.Decided() || !model.Decided1.Decided() {
		t.Error("DecidedX.Decided() = false")
	}
	if model.Decided0.Value() != model.V0 || model.Decided1.Value() != model.V1 {
		t.Error("Output.Value wrong")
	}
	if model.OutputOf(model.V1) != model.Decided1 || model.OutputOf(model.V0) != model.Decided0 {
		t.Error("OutputOf wrong")
	}
}

func TestOutputValuePanicsOnNone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("None.Value() did not panic")
		}
	}()
	_ = model.None.Value()
}

func TestAllInputs(t *testing.T) {
	all := model.AllInputs(3)
	if len(all) != 8 {
		t.Fatalf("AllInputs(3) has %d entries, want 8", len(all))
	}
	if all[0].String() != "000" || all[7].String() != "111" || all[5].String() != "101" {
		t.Errorf("AllInputs order wrong: %v %v %v", all[0], all[7], all[5])
	}
}

func TestInputsAdjacency(t *testing.T) {
	a := model.Inputs{model.V0, model.V1, model.V0}
	b := model.Inputs{model.V0, model.V1, model.V1}
	p, ok := a.AdjacentTo(b)
	if !ok || p != 2 {
		t.Errorf("AdjacentTo = (%d, %v), want (2, true)", p, ok)
	}
	c := model.Inputs{model.V1, model.V1, model.V1}
	if _, ok := a.AdjacentTo(c); ok {
		t.Error("configurations differing in two inputs reported adjacent")
	}
	if _, ok := a.AdjacentTo(a); ok {
		t.Error("identical assignments reported adjacent")
	}
	if _, ok := a.AdjacentTo(model.Inputs{model.V0}); ok {
		t.Error("assignments of different length reported adjacent")
	}
}

func TestInputsCount(t *testing.T) {
	in := model.Inputs{model.V0, model.V1, model.V1}
	if in.Count(model.V1) != 2 || in.Count(model.V0) != 1 {
		t.Errorf("Count wrong: %d ones, %d zeros", in.Count(model.V1), in.Count(model.V0))
	}
}

func TestInitialConfig(t *testing.T) {
	pr := &echoProto{n: 3}
	c := model.MustInitial(pr, model.Inputs{model.V0, model.V1, model.V0})
	if c.N() != 3 {
		t.Fatalf("N = %d", c.N())
	}
	if c.Buffer().Len() != 0 {
		t.Error("initial buffer not empty")
	}
	for p := 0; p < 3; p++ {
		if c.Output(model.PID(p)) != model.None {
			t.Errorf("process %d starts decided", p)
		}
	}
	if d, _, _ := c.Decided(); d {
		t.Error("initial configuration reports decided")
	}
}

func TestInitialConfigErrors(t *testing.T) {
	pr := &echoProto{n: 3}
	if _, err := model.Initial(pr, model.Inputs{model.V0}); err == nil {
		t.Error("wrong input count accepted")
	}
	if _, err := model.Initial(pr, model.Inputs{model.V0, model.Value(7), model.V0}); err == nil {
		t.Error("invalid input value accepted")
	}
	if _, err := model.Initial(&echoProto{n: 1}, model.Inputs{model.V0}); err == nil {
		t.Error("N=1 protocol accepted; paper requires N ≥ 2")
	}
}

func TestApplyStepSemantics(t *testing.T) {
	pr := &echoProto{n: 2}
	c0 := model.MustInitial(pr, model.Inputs{model.V0, model.V1})

	// First step of p0: null delivery, broadcasts to p1.
	c1, err := model.Apply(pr, c0, model.NullEvent(0))
	if err != nil {
		t.Fatal(err)
	}
	if c1.Buffer().Len() != 1 {
		t.Fatalf("after p0's first step buffer has %d messages, want 1", c1.Buffer().Len())
	}
	msgs := c1.Buffer().MessagesTo(1)
	if len(msgs) != 1 || msgs[0].From != 0 {
		t.Fatalf("message misaddressed: %v", msgs)
	}
	// Original configuration unchanged (immutability).
	if c0.Buffer().Len() != 0 {
		t.Error("Apply mutated the source configuration")
	}

	// p1 receives it: sends its own broadcast and decides (heard everyone).
	c2, err := model.Apply(pr, c1, model.Deliver(msgs[0]))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Output(1) != model.Decided1 {
		t.Errorf("p1 output = %s, want 1", c2.Output(1))
	}
	if c2.Buffer().Len() != 1 {
		t.Errorf("buffer len = %d, want 1 (p1's broadcast)", c2.Buffer().Len())
	}
	// Delivering p1's vote lets p0 decide 0: both decided, agreement broken
	// by design in this toy protocol (each decides its own input).
	back := c2.Buffer().MessagesTo(0)
	c3 := model.MustApply(pr, c2, model.Deliver(back[0]))
	vs := c3.DecisionValues()
	if len(vs) != 2 {
		t.Fatalf("DecisionValues = %v, want both values", vs)
	}
	if d, _, ok := c3.Decided(); !d || ok {
		t.Error("Decided should report a two-valued (not ok) configuration")
	}
	if c3.DecidedCount() != 2 {
		t.Errorf("DecidedCount = %d, want 2", c3.DecidedCount())
	}
}

func TestApplyRejectsMissingMessage(t *testing.T) {
	pr := &echoProto{n: 2}
	c := model.MustInitial(pr, model.Inputs{model.V0, model.V0})
	ghost := model.Message{To: 0, From: 1, Body: "v"}
	_, err := model.Apply(pr, c, model.Deliver(ghost))
	if !errors.Is(err, model.ErrNotApplicable) {
		t.Errorf("delivering absent message: err = %v, want ErrNotApplicable", err)
	}
}

func TestApplyEnforcesWriteOnce(t *testing.T) {
	pr := badWriter{}
	c := model.MustInitial(pr, model.Inputs{model.V0, model.V0})
	c1 := model.MustApply(pr, c, model.NullEvent(0)) // decides 0
	_, err := model.Apply(pr, c1, model.NullEvent(0))
	var perr *model.ProtocolError
	if !errors.As(err, &perr) {
		t.Fatalf("write-once violation not caught: err = %v", err)
	}
	if !strings.Contains(perr.Error(), "write-once") {
		t.Errorf("error message does not mention write-once: %v", perr)
	}
}

func TestApplyRejectsStrayDestination(t *testing.T) {
	pr := straySender{}
	c := model.MustInitial(pr, model.Inputs{model.V0, model.V0})
	_, err := model.Apply(pr, c, model.NullEvent(0))
	var perr *model.ProtocolError
	if !errors.As(err, &perr) {
		t.Fatalf("stray destination not caught: err = %v", err)
	}
}

func TestApplyRejectsBadProcess(t *testing.T) {
	pr := &echoProto{n: 2}
	c := model.MustInitial(pr, model.Inputs{model.V0, model.V0})
	if _, err := model.Apply(pr, c, model.NullEvent(5)); err == nil {
		t.Error("event for nonexistent process accepted")
	}
}

func TestIsNoOp(t *testing.T) {
	pr := &echoProto{n: 2}
	c := model.MustInitial(pr, model.Inputs{model.V0, model.V0})
	if model.IsNoOp(pr, c, model.NullEvent(0)) {
		t.Error("first null step (which broadcasts) reported as no-op")
	}
	c1 := model.MustApply(pr, c, model.NullEvent(0))
	if !model.IsNoOp(pr, c1, model.NullEvent(0)) {
		t.Error("repeated null step reported as effectful")
	}
	// Deliveries are never no-ops.
	m := c1.Buffer().MessagesTo(1)[0]
	if model.IsNoOp(pr, c1, model.Deliver(m)) {
		t.Error("message delivery reported as no-op")
	}
}

func TestEventIdentity(t *testing.T) {
	m := model.Message{To: 1, From: 0, Body: "v"}
	e1 := model.Deliver(m)
	e2 := model.Deliver(m)
	if !e1.Same(e2) {
		t.Error("identical delivery events not Same")
	}
	if e1.Same(model.NullEvent(1)) {
		t.Error("delivery Same as null event")
	}
	if !model.NullEvent(2).Same(model.NullEvent(2)) {
		t.Error("identical null events not Same")
	}
	if model.NullEvent(1).Same(model.NullEvent(2)) {
		t.Error("null events of different processes Same")
	}
	m2 := m
	m2.Body = "w"
	if e1.Same(model.Deliver(m2)) {
		t.Error("different-body deliveries Same")
	}
	if e1.Key() == model.NullEvent(1).Key() {
		t.Error("event keys collide")
	}
}

func TestEventsEnumeration(t *testing.T) {
	pr := &echoProto{n: 2}
	c := model.MustInitial(pr, model.Inputs{model.V0, model.V1})
	evs := model.Events(c)
	// Empty buffer: exactly the two null events.
	if len(evs) != 2 {
		t.Fatalf("Events on empty buffer = %d, want 2", len(evs))
	}
	c1 := model.MustApply(pr, c, model.NullEvent(0))
	evs = model.Events(c1)
	if len(evs) != 3 {
		t.Fatalf("Events = %d, want 3 (2 null + 1 delivery)", len(evs))
	}
	if len(model.DeliveryEvents(c1)) != 1 {
		t.Errorf("DeliveryEvents = %d, want 1", len(model.DeliveryEvents(c1)))
	}
}

func TestConfigKeyStability(t *testing.T) {
	pr := &echoProto{n: 3}
	in := model.Inputs{model.V0, model.V1, model.V1}
	a := model.MustInitial(pr, in)
	b := model.MustInitial(pr, in)
	if !a.Equal(b) {
		t.Error("identical initial configurations not Equal")
	}
	// Two different event orders that consume the same messages lead to the
	// same configuration (multiset semantics).
	a1 := model.MustApply(pr, a, model.NullEvent(0))
	a2 := model.MustApply(pr, a1, model.NullEvent(1))
	b1 := model.MustApply(pr, b, model.NullEvent(1))
	b2 := model.MustApply(pr, b1, model.NullEvent(0))
	if !a2.Equal(b2) {
		t.Error("disjoint steps in different orders give unequal configurations")
	}
	c := model.MustInitial(pr, model.Inputs{model.V1, model.V1, model.V1})
	if a.Equal(c) {
		t.Error("configurations with different inputs Equal")
	}
}

func TestScheduleApply(t *testing.T) {
	pr := &echoProto{n: 2}
	c := model.MustInitial(pr, model.Inputs{model.V1, model.V0})
	sigma := model.Schedule{model.NullEvent(0), model.NullEvent(1)}
	c2, err := model.ApplySchedule(pr, c, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Buffer().Len() != 2 {
		t.Errorf("buffer after both broadcasts = %d, want 2", c2.Buffer().Len())
	}
	// A schedule delivering a message that is not there fails.
	bad := model.Schedule{model.Deliver(model.Message{To: 0, From: 1, Body: "nope"})}
	if _, err := model.ApplySchedule(pr, c, bad); err == nil {
		t.Error("inapplicable schedule accepted")
	}
}

func TestScheduleHelpers(t *testing.T) {
	s1 := model.Schedule{model.NullEvent(0), model.NullEvent(0), model.NullEvent(2)}
	s2 := model.Schedule{model.NullEvent(1)}
	s3 := model.Schedule{model.NullEvent(2)}
	if !s1.DisjointFrom(s2) {
		t.Error("disjoint schedules reported overlapping")
	}
	if s1.DisjointFrom(s3) {
		t.Error("overlapping schedules reported disjoint")
	}
	if s1.Steps(0) != 2 || s1.Steps(1) != 0 {
		t.Errorf("Steps wrong: %d, %d", s1.Steps(0), s1.Steps(1))
	}
	if !s1.Contains(model.NullEvent(2)) || s1.Contains(model.NullEvent(1)) {
		t.Error("Contains wrong")
	}
	ps := s1.Processes()
	if !ps[0] || !ps[2] || ps[1] {
		t.Errorf("Processes = %v", ps)
	}
}

// TestLemma1Commutativity checks Lemma 1 directly at the model layer: for
// schedules over disjoint process sets, σ2(σ1(C)) = σ1(σ2(C)).
func TestLemma1Commutativity(t *testing.T) {
	pr := &echoProto{n: 4}
	c := model.MustInitial(pr, model.Inputs{model.V0, model.V1, model.V0, model.V1})
	s1 := model.Schedule{model.NullEvent(0), model.NullEvent(1)}
	s2 := model.Schedule{model.NullEvent(2), model.NullEvent(3)}
	a := model.MustApplySchedule(pr, model.MustApplySchedule(pr, c, s1), s2)
	b := model.MustApplySchedule(pr, model.MustApplySchedule(pr, c, s2), s1)
	if !a.Equal(b) {
		t.Error("Lemma 1 violated for disjoint null schedules")
	}
}

func TestBroadcastHelpers(t *testing.T) {
	all := model.Broadcast(1, 3, "m")
	if len(all) != 3 {
		t.Fatalf("Broadcast len = %d, want 3", len(all))
	}
	others := model.BroadcastOthers(1, 3, "m")
	if len(others) != 2 {
		t.Fatalf("BroadcastOthers len = %d, want 2", len(others))
	}
	for _, m := range others {
		if m.To == 1 {
			t.Error("BroadcastOthers included sender")
		}
	}
}

func TestStringRenderings(t *testing.T) {
	pr := &echoProto{n: 2}
	c := model.MustInitial(pr, model.Inputs{model.V0, model.V1})
	if c.String() == "" || !strings.Contains(c.String(), "p0") {
		t.Errorf("Config.String = %q", c.String())
	}
	if model.V1.String() != "1" {
		t.Errorf("Value.String = %q", model.V1.String())
	}
	if model.Output(9).String() == "" {
		t.Error("unknown Output renders empty")
	}
	s := model.Schedule{model.NullEvent(0), model.Deliver(model.Message{To: 1, From: 0, Body: "v"})}
	if !strings.Contains(s.String(), "∅") || !strings.Contains(s.String(), "v") {
		t.Errorf("Schedule.String = %q", s.String())
	}
	if model.NullEvent(2).Key() == "" {
		t.Error("null event key empty")
	}
}

func TestUniformInputs(t *testing.T) {
	in := model.UniformInputs(4, model.V1)
	if in.Count(model.V1) != 4 || in.Count(model.V0) != 0 {
		t.Errorf("UniformInputs = %v", in)
	}
}

func TestApplicableEdgeCases(t *testing.T) {
	pr := &echoProto{n: 2}
	c := model.MustInitial(pr, model.Inputs{model.V0, model.V0})
	if model.Applicable(c, model.NullEvent(9)) {
		t.Error("event for nonexistent process applicable")
	}
	// A delivery event whose message names a different destination than
	// the event's process is malformed and inapplicable.
	m := model.Message{To: 1, From: 0, Body: "v"}
	bad := model.Event{P: 0, Msg: &m}
	if model.Applicable(c, bad) {
		t.Error("mismatched delivery applicable")
	}
}

func TestBufferOperations(t *testing.T) {
	b := model.NewBuffer()
	m := model.Message{To: 0, From: 1, Body: "x"}
	b.Send(m)
	b.Send(m)
	if b.Count(m) != 2 || b.Len() != 2 {
		t.Errorf("Count=%d Len=%d, want 2, 2", b.Count(m), b.Len())
	}
	if !b.Remove(m) || b.Count(m) != 1 {
		t.Error("Remove failed")
	}
	clone := b.Clone()
	clone.Remove(m)
	if !b.Contains(m) {
		t.Error("Clone not independent")
	}
	if b.Equal(clone) {
		t.Error("unequal buffers Equal")
	}
	if b.String() == "∅" {
		t.Error("nonempty buffer renders empty")
	}
	b.Remove(m)
	if b.String() != "∅" {
		t.Errorf("empty buffer String = %q", b.String())
	}
}
