package model

import (
	"encoding/binary"
	"fmt"
)

// This file is the wire layer of the model: a compact, canonical binary
// encoding for the values that cross process boundaries in the distributed
// explorer (package distexplore) — messages, events, schedules, and input
// assignments — together with the stable hash contract that hash-range
// partitioning rests on.
//
// Configurations themselves never cross the wire as state dumps: process
// states are protocol-defined opaque values (only their canonical Key is
// visible to the model), so a configuration is transmitted as identity plus
// provenance — its canonical Key (the identity every visited-set decision
// is made on) and the Schedule that reaches it from the root. Any party
// holding the protocol and the root can rematerialize the configuration by
// replaying the schedule, and verify the result against the transmitted
// key. This keeps the wire format protocol-agnostic: nothing here needs to
// change when a new Protocol implementation is added.

// maxWirePID bounds decoded process identifiers; real protocols have a
// handful of processes, so anything larger is a corrupt or hostile frame.
const maxWirePID = 1 << 20

// maxWireLen bounds decoded string and slice lengths, for the same reason.
const maxWireLen = 1 << 28

// HashKey returns the 64-bit fingerprint of a canonical configuration key
// in its string (wire) form. It is the stable hash contract of the model —
// for every configuration c,
//
//	c.Hash() == HashKey(c.Key())
//
// so any party holding only the canonical key (a remote visited-set shard,
// for example) routes and buckets exactly like a party holding the
// configuration. TestHashKeyContract pins this.
//
// The fingerprint is the FNV-1a hash of the *binary* canonical key
// (uvarint-length-prefixed raw fields), which the string form determines
// exactly: escaped fields contain no '|', so every '|' is a field
// terminator, and unescaping recovers the raw field bytes. HashKey streams
// that decoding — per field it hashes the uvarint of the unescaped length,
// then the unescaped bytes — without allocating.
func HashKey(key string) uint64 {
	h := fnvOffset64
	for start := 0; start < len(key); {
		end := start
		for end < len(key) && key[end] != '|' {
			end++
		}
		if end == len(key) && end == start {
			break // trailing terminator: not a field
		}
		h = fnvKeyField(h, key[start:end])
		start = end + 1
	}
	if h == 0 {
		h = fnvOffset64
	}
	return h
}

// fnvKeyField folds one escaped field into the binary-key FNV stream:
// uvarint of the unescaped length, then the unescaped bytes. Unescaping
// inverts enc.Escape ("\\"→'\\', "\p"→'|', "\c"→','); a malformed trailing
// backslash is hashed literally, keeping HashKey total and deterministic on
// arbitrary input.
func fnvKeyField(h uint64, f string) uint64 {
	n := len(f)
	for i := 0; i < len(f); i++ {
		if f[i] == '\\' && i+1 < len(f) {
			n--
			i++
		}
	}
	// Inline uvarint encoding of n into the hash stream.
	for v := uint64(n); ; {
		b := byte(v)
		v >>= 7
		if v != 0 {
			b |= 0x80
		}
		h ^= uint64(b)
		h *= fnvPrime64
		if v == 0 {
			break
		}
	}
	for i := 0; i < len(f); i++ {
		c := f[i]
		if c == '\\' && i+1 < len(f) {
			i++
			switch f[i] {
			case 'p':
				c = '|'
			case 'c':
				c = ','
			default: // '\\' and any unknown escape: the escaped byte itself
				c = f[i]
			}
		}
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// AppendMessage appends the wire encoding of m to b.
func AppendMessage(b []byte, m Message) []byte {
	b = binary.AppendUvarint(b, uint64(m.To))
	b = binary.AppendUvarint(b, uint64(m.From))
	b = binary.AppendUvarint(b, uint64(len(m.Body)))
	return append(b, m.Body...)
}

// ConsumeMessage decodes a message from the front of b, returning it and
// the number of bytes consumed.
func ConsumeMessage(b []byte) (Message, int, error) {
	var m Message
	to, n1, err := consumePID(b)
	if err != nil {
		return m, 0, fmt.Errorf("message To: %w", err)
	}
	from, n2, err := consumePID(b[n1:])
	if err != nil {
		return m, 0, fmt.Errorf("message From: %w", err)
	}
	body, n3, err := consumeString(b[n1+n2:])
	if err != nil {
		return m, 0, fmt.Errorf("message Body: %w", err)
	}
	return Message{To: to, From: from, Body: body}, n1 + n2 + n3, nil
}

// Event wire tags.
const (
	wireEventNull    = 0
	wireEventDeliver = 1
)

// AppendEvent appends the wire encoding of e to b.
func AppendEvent(b []byte, e Event) []byte {
	if e.Msg == nil {
		b = append(b, wireEventNull)
		return binary.AppendUvarint(b, uint64(e.P))
	}
	b = append(b, wireEventDeliver)
	b = binary.AppendUvarint(b, uint64(e.P))
	return AppendMessage(b, *e.Msg)
}

// ConsumeEvent decodes an event from the front of b, returning it and the
// number of bytes consumed.
func ConsumeEvent(b []byte) (Event, int, error) {
	if len(b) == 0 {
		return Event{}, 0, fmt.Errorf("event: empty buffer")
	}
	tag := b[0]
	p, n, err := consumePID(b[1:])
	if err != nil {
		return Event{}, 0, fmt.Errorf("event P: %w", err)
	}
	switch tag {
	case wireEventNull:
		return Event{P: p}, 1 + n, nil
	case wireEventDeliver:
		m, nm, err := ConsumeMessage(b[1+n:])
		if err != nil {
			return Event{}, 0, err
		}
		return Event{P: p, Msg: &m}, 1 + n + nm, nil
	default:
		return Event{}, 0, fmt.Errorf("event: unknown tag %d", tag)
	}
}

// AppendSchedule appends the wire encoding of s to b.
func AppendSchedule(b []byte, s Schedule) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	for _, e := range s {
		b = AppendEvent(b, e)
	}
	return b
}

// ConsumeSchedule decodes a schedule from the front of b, returning it and
// the number of bytes consumed.
func ConsumeSchedule(b []byte) (Schedule, int, error) {
	count, n, err := consumeUvarint(b)
	if err != nil {
		return nil, 0, fmt.Errorf("schedule length: %w", err)
	}
	if count > maxWireLen {
		return nil, 0, fmt.Errorf("schedule length %d exceeds limit", count)
	}
	s := make(Schedule, 0, count)
	off := n
	for i := uint64(0); i < count; i++ {
		e, ne, err := ConsumeEvent(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("schedule event %d: %w", i, err)
		}
		s = append(s, e)
		off += ne
	}
	return s, off, nil
}

// AppendInputs appends the wire encoding of in to b.
func AppendInputs(b []byte, in Inputs) []byte {
	b = binary.AppendUvarint(b, uint64(len(in)))
	for _, v := range in {
		b = append(b, byte(v))
	}
	return b
}

// ConsumeInputs decodes an input assignment from the front of b, returning
// it and the number of bytes consumed.
func ConsumeInputs(b []byte) (Inputs, int, error) {
	count, n, err := consumeUvarint(b)
	if err != nil {
		return nil, 0, fmt.Errorf("inputs length: %w", err)
	}
	if count > maxWirePID {
		return nil, 0, fmt.Errorf("inputs length %d exceeds limit", count)
	}
	if uint64(len(b[n:])) < count {
		return nil, 0, fmt.Errorf("inputs: truncated")
	}
	in := make(Inputs, count)
	for i := range in {
		v := Value(b[n+i])
		if !v.Valid() {
			return nil, 0, fmt.Errorf("inputs: invalid value %d at %d", v, i)
		}
		in[i] = v
	}
	return in, n + int(count), nil
}

func consumeUvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, fmt.Errorf("truncated or malformed uvarint")
	}
	return v, n, nil
}

func consumePID(b []byte) (PID, int, error) {
	v, n, err := consumeUvarint(b)
	if err != nil {
		return 0, 0, err
	}
	if v > maxWirePID {
		return 0, 0, fmt.Errorf("process id %d exceeds limit", v)
	}
	return PID(v), n, nil
}

func consumeString(b []byte) (string, int, error) {
	l, n, err := consumeUvarint(b)
	if err != nil {
		return "", 0, err
	}
	if l > maxWireLen {
		return "", 0, fmt.Errorf("string length %d exceeds limit", l)
	}
	if uint64(len(b[n:])) < l {
		return "", 0, fmt.Errorf("truncated string")
	}
	return string(b[n : n+int(l)]), n + int(l), nil
}

// AppendString appends a length-prefixed string to b. Exposed for the
// distributed explorer's frame payloads, which embed canonical keys.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// ConsumeString decodes a length-prefixed string from the front of b.
func ConsumeString(b []byte) (string, int, error) { return consumeString(b) }

// AppendUvarint appends a varint-encoded unsigned integer to b.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// ConsumeUvarint decodes a varint-encoded unsigned integer from the front
// of b.
func ConsumeUvarint(b []byte) (uint64, int, error) { return consumeUvarint(b) }
