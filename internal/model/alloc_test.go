package model_test

// Allocation-regression guards for the exploration hot path: the
// dedup-dominated loop of every engine is "materialize a successor, hash
// it, look it up in the visited set". These tests pin the allocs/op of the
// canonical-key machinery with testing.AllocsPerRun, so the zero-alloc
// binary-key work cannot silently rot back into per-candidate string
// building. The matching wall-clock benchmarks live alongside so the
// numbers in EXPERIMENTS.md can be regenerated with
//
//	go test -bench 'BenchmarkIntern|BenchmarkConfigHash' -benchmem ./internal/model
//
// The ceilings are deliberately small integers, not exact counts: an
// alloc-free fast path stays pinned at its ceiling while Go-version noise
// (map internals, testing harness) cannot produce false failures below it.

import (
	"testing"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// internFixture returns a protocol, a parent configuration with its key
// caches warm (as every frontier node's are by the time it is expanded),
// and one applicable event — the ingredients of one candidate-successor
// materialization.
func internFixture(tb testing.TB) (model.Protocol, *model.Config, model.Event) {
	tb.Helper()
	factory, ok := protocols.Lookup("naivemajority")
	if !ok {
		tb.Fatal("naivemajority not registered")
	}
	pr, err := factory(3)
	if err != nil {
		tb.Fatal(err)
	}
	c := model.MustInitial(pr, model.Inputs{model.V0, model.V1, model.V1})
	// Take two steps so the buffer is non-trivial, like a mid-exploration
	// frontier node.
	c = model.MustApply(pr, c, model.NullEvent(0))
	c = model.MustApply(pr, c, model.NullEvent(1))
	c.Hash() // warm the parent's fingerprint and binary key
	evs := model.Events(c)
	if len(evs) == 0 {
		tb.Fatal("no applicable events")
	}
	return pr, c, evs[len(evs)-1] // a delivery event, the common case
}

// TestAllocsInternHit pins the full dedup-hit path: materialize a
// successor, fingerprint it, and look it up against a visited set that has
// already seen it. This is the single hottest loop of every engine.
func TestAllocsInternHit(t *testing.T) {
	pr, c, e := internFixture(t)
	it := model.NewInterner()
	it.Intern(model.MustApply(pr, c, e)) // seed the visited set
	allocs := testing.AllocsPerRun(200, func() {
		nc := model.MustApply(pr, c, e)
		it.Intern(nc)
	})
	// Materialization (states slice, buffer clone, config) costs 18
	// allocs/op on this fixture (BenchmarkApplyOnly); the key machinery on
	// top — changed-state re-encode, buffer field, binary key buffer — costs
	// 7, down from ~38 on the escaped-string path (≥5×, the PR-8 bar). The
	// interner lookup itself must not allocate, so the ceiling pins
	// materialization + key build + 1 slack.
	const ceiling = 26
	if allocs > ceiling {
		t.Fatalf("dedup-hit intern path allocates %.1f/op, ceiling %d", allocs, ceiling)
	}
}

// TestAllocsConfigHash pins Config.Hash on a cold configuration: one
// binary-key materialization plus the buffer and changed-state field
// builds, nothing proportional to the untouched states.
func TestAllocsConfigHash(t *testing.T) {
	pr, c, e := internFixture(t)
	allocs := testing.AllocsPerRun(200, func() {
		nc := model.MustApply(pr, c, e)
		nc.Hash()
	})
	const ceiling = 26
	if allocs > ceiling {
		t.Fatalf("cold Config.Hash path allocates %.1f/op, ceiling %d", allocs, ceiling)
	}
}

// TestAllocsInternKey pins the wire-key dedup path used by the distributed
// engine's visited-set shards: a fingerprint-plus-string lookup against an
// interner that has already seen the key must not allocate at all.
func TestAllocsInternKey(t *testing.T) {
	pr, c, e := internFixture(t)
	nc := model.MustApply(pr, c, e)
	h, key := nc.Hash(), nc.Key()
	it := model.NewInterner()
	it.InternKey(h, key)
	allocs := testing.AllocsPerRun(200, func() {
		it.InternKey(h, key)
	})
	if allocs != 0 {
		t.Fatalf("dedup-hit InternKey allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkApplyOnly(b *testing.B) {
	pr, c, e := internFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		model.MustApply(pr, c, e)
	}
}

func BenchmarkConfigHash(b *testing.B) {
	pr, c, e := internFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nc := model.MustApply(pr, c, e)
		nc.Hash()
	}
}

func BenchmarkInternHit(b *testing.B) {
	pr, c, e := internFixture(b)
	it := model.NewInterner()
	it.Intern(model.MustApply(pr, c, e))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nc := model.MustApply(pr, c, e)
		it.Intern(nc)
	}
}
