package model

import (
	"sort"
	"strconv"
	"strings"

	"github.com/flpsim/flp/internal/multiset"
)

// Buffer is the message buffer: the multiset of messages that have been
// sent but not yet delivered. It is the untimed, model-level view; the
// runtime and the Theorem 1 adversary impose ordering disciplines above it.
type Buffer struct {
	ms    *multiset.Multiset
	byKey map[string]Message
}

// NewBuffer returns an empty buffer.
func NewBuffer() *Buffer {
	return &Buffer{ms: multiset.New(), byKey: make(map[string]Message)}
}

// Send places one copy of m in the buffer.
func (b *Buffer) Send(m Message) {
	k := m.Key()
	b.ms.Add(k)
	b.byKey[k] = m
}

// Remove deletes one occurrence of m, reporting whether one was present.
func (b *Buffer) Remove(m Message) bool {
	k := m.Key()
	if !b.ms.Remove(k) {
		return false
	}
	if b.ms.Count(k) == 0 {
		delete(b.byKey, k)
	}
	return true
}

// Contains reports whether at least one copy of m is in the buffer.
func (b *Buffer) Contains(m Message) bool { return b.ms.Contains(m.Key()) }

// Count returns the multiplicity of m.
func (b *Buffer) Count(m Message) int { return b.ms.Count(m.Key()) }

// Len returns the total number of undelivered messages.
func (b *Buffer) Len() int { return b.ms.Len() }

// Messages returns the distinct messages in the buffer in canonical order.
// Multiplicities are available via Count.
func (b *Buffer) Messages() []Message {
	keys := b.ms.Elements()
	msgs := make([]Message, len(keys))
	for i, k := range keys {
		msgs[i] = b.byKey[k]
	}
	return msgs
}

// MessagesTo returns the distinct messages addressed to p, in canonical
// order. Delivering any one of them (or nothing) is an applicable event for
// p; duplicates of the same message are interchangeable in the multiset
// semantics, so distinct messages suffice for event enumeration.
func (b *Buffer) MessagesTo(p PID) []Message {
	var msgs []Message
	for _, m := range b.Messages() {
		if m.To == p {
			msgs = append(msgs, m)
		}
	}
	return msgs
}

// Clone returns a deep copy.
func (b *Buffer) Clone() *Buffer {
	c := &Buffer{ms: b.ms.Clone(), byKey: make(map[string]Message, len(b.byKey))}
	for k, m := range b.byKey {
		c.byKey[k] = m
	}
	return c
}

// Equal reports whether two buffers hold exactly the same multiset.
func (b *Buffer) Equal(o *Buffer) bool { return b.ms.Equal(o.ms) }

// Key returns the canonical encoding of the buffer contents.
func (b *Buffer) Key() string { return b.ms.Key() }

// AppendKey appends the canonical encoding to dst; byte-identical to Key.
func (b *Buffer) AppendKey(dst []byte) []byte { return b.ms.AppendKey(dst) }

// KeyLen returns len(Key()) without building the encoding.
func (b *Buffer) KeyLen() int { return b.ms.KeyLen() }

// String renders the buffer for traces and debugging.
func (b *Buffer) String() string {
	if b.Len() == 0 {
		return "∅"
	}
	msgs := b.Messages()
	parts := make([]string, 0, len(msgs))
	for _, m := range msgs {
		s := m.String()
		if c := b.Count(m); c > 1 {
			s += "×" + strconv.Itoa(c)
		}
		parts = append(parts, s)
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
