package model

import "fmt"

// Event is an event e = (p, m): the receipt of message m by process p.
// A nil Msg is the null delivery ∅ — receive(p) returned nothing, which is
// always applicable ("it is always possible for a process to take another
// step").
type Event struct {
	P   PID
	Msg *Message
}

// NullEvent returns the event (p, ∅).
func NullEvent(p PID) Event { return Event{P: p} }

// Deliver returns the event (m.To, m).
func Deliver(m Message) Event {
	cp := m
	return Event{P: m.To, Msg: &cp}
}

// IsNull reports whether the event is a null delivery.
func (e Event) IsNull() bool { return e.Msg == nil }

// Key returns a canonical encoding of the event.
func (e Event) Key() string {
	if e.Msg == nil {
		return fmt.Sprintf("p%d:∅", e.P)
	}
	return fmt.Sprintf("p%d:%s", e.P, e.Msg.Key())
}

// Same reports whether two events are the same: same process and same
// message (or both null). This is the identity the Lemma 3 frontier is
// built around ("reachable from C without applying e").
func (e Event) Same(o Event) bool {
	if e.P != o.P {
		return false
	}
	if (e.Msg == nil) != (o.Msg == nil) {
		return false
	}
	if e.Msg == nil {
		return true
	}
	return *e.Msg == *o.Msg
}

func (e Event) String() string {
	if e.Msg == nil {
		return fmt.Sprintf("(p%d, ∅)", e.P)
	}
	return fmt.Sprintf("(p%d, %s from p%d)", e.P, e.Msg.Body, e.Msg.From)
}

// Applicable reports whether e can be applied to c: the process must exist
// and, for a message delivery, a copy of the message must be in the buffer.
// Null events are always applicable.
func Applicable(c *Config, e Event) bool {
	if int(e.P) < 0 || int(e.P) >= c.N() {
		return false
	}
	if e.Msg == nil {
		return true
	}
	return e.Msg.To == e.P && c.Buffer().Contains(*e.Msg)
}

// Events enumerates the applicable events of c, one per process-and-
// distinct-message pair plus the null event for every process. Duplicate
// copies of a message are interchangeable under multiset semantics, so one
// event per distinct message is exhaustive.
func Events(c *Config) []Event {
	msgs := c.Buffer().Messages()
	evs := make([]Event, 0, c.N()+len(msgs))
	for p := 0; p < c.N(); p++ {
		evs = append(evs, NullEvent(PID(p)))
		for i := range msgs {
			if int(msgs[i].To) == p {
				evs = append(evs, Event{P: PID(p), Msg: &msgs[i]})
			}
		}
	}
	return evs
}

// DeliveryEvents enumerates only the message-delivery events of c.
func DeliveryEvents(c *Config) []Event {
	msgs := c.Buffer().Messages()
	evs := make([]Event, 0, len(msgs))
	for p := 0; p < c.N(); p++ {
		for i := range msgs {
			if int(msgs[i].To) == p {
				evs = append(evs, Event{P: PID(p), Msg: &msgs[i]})
			}
		}
	}
	return evs
}
