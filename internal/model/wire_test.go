package model_test

import (
	"testing"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// TestHashKeyContract pins the stable hash contract the distributed
// explorer's hash-range partitioning rests on: Config.Hash() must equal
// HashKey(Config.Key()) for every reachable configuration, so a remote
// shard holding only the canonical key routes exactly like a local engine
// holding the configuration.
func TestHashKeyContract(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, model.Inputs{0, 1, 1})
	seen := 0
	var walk func(cfg *model.Config, depth int)
	walk = func(cfg *model.Config, depth int) {
		if seen >= 200 || depth > 4 {
			return
		}
		seen++
		if got, want := cfg.Hash(), model.HashKey(cfg.Key()); got != want {
			t.Fatalf("hash contract broken: Config.Hash()=%d, HashKey(Key)=%d", got, want)
		}
		for _, e := range model.Events(cfg) {
			if e.IsNull() && model.IsNoOp(pr, cfg, e) {
				continue
			}
			walk(model.MustApply(pr, cfg, e), depth+1)
		}
	}
	walk(c, 0)
	if seen < 10 {
		t.Fatalf("walk visited only %d configurations", seen)
	}
}

func TestMessageWireRoundTrip(t *testing.T) {
	cases := []model.Message{
		{To: 0, From: 1, Body: ""},
		{To: 2, From: 0, Body: "R|1|0|"},
		{To: 5, From: 3, Body: "body with | separators \\ and unicode ∅"},
	}
	for _, m := range cases {
		b := model.AppendMessage(nil, m)
		got, n, err := model.ConsumeMessage(b)
		if err != nil {
			t.Fatalf("decode %v: %v", m, err)
		}
		if n != len(b) || got != m {
			t.Fatalf("round trip %v: got %v, consumed %d of %d", m, got, n, len(b))
		}
	}
}

func TestScheduleWireRoundTrip(t *testing.T) {
	msg := model.Message{To: 1, From: 0, Body: "vote|0"}
	s := model.Schedule{
		model.NullEvent(0),
		model.Deliver(msg),
		model.NullEvent(2),
	}
	b := model.AppendSchedule(nil, s)
	got, n, err := model.ConsumeSchedule(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) || len(got) != len(s) {
		t.Fatalf("consumed %d of %d, %d events of %d", n, len(b), len(got), len(s))
	}
	for i := range s {
		if !got[i].Same(s[i]) {
			t.Fatalf("event %d: got %v, want %v", i, got[i], s[i])
		}
	}
}

func TestInputsWireRoundTrip(t *testing.T) {
	for _, in := range model.AllInputs(4) {
		b := model.AppendInputs(nil, in)
		got, n, err := model.ConsumeInputs(b)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(b) || got.String() != in.String() {
			t.Fatalf("round trip %s: got %s", in, got)
		}
	}
}

// TestWireDecodeCorruption confirms the decoders fail loudly on truncated
// or malformed frames instead of panicking or fabricating values.
func TestWireDecodeCorruption(t *testing.T) {
	msg := model.Message{To: 1, From: 0, Body: "hello"}
	full := model.AppendMessage(nil, msg)
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := model.ConsumeMessage(full[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(full))
		}
	}
	if _, _, err := model.ConsumeEvent([]byte{99, 0}); err == nil {
		t.Fatal("unknown event tag decoded without error")
	}
	if _, _, err := model.ConsumeInputs([]byte{1, 7}); err == nil {
		t.Fatal("invalid input value decoded without error")
	}
}
