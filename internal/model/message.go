package model

import (
	"fmt"

	"github.com/flpsim/flp/internal/enc"
)

// Message is a message (p, m) in the paper's notation: a destination
// process together with a message value. The sender is carried explicitly
// because every protocol in practice encodes it; making it a field keeps
// protocol message bodies readable.
//
// Messages are immutable values. Two messages are the same element of the
// buffer multiset iff all three fields are equal.
type Message struct {
	// To is the destination process p.
	To PID
	// From is the sending process.
	From PID
	// Body is the message value m, drawn from the protocol's message
	// universe M. Protocols encode whatever structure they need into it;
	// helpers in package enc keep encodings canonical.
	Body string
}

// Key returns the canonical encoding of the message, used as its identity
// in the buffer multiset.
func (m Message) Key() string {
	var b enc.Builder
	b.Int(int(m.To)).Int(int(m.From)).Str(enc.Escape(m.Body))
	return b.String()
}

func (m Message) String() string {
	return fmt.Sprintf("(%d←%d: %s)", m.To, m.From, m.Body)
}

// Broadcast returns one copy of a message body addressed from p to every
// process in 0..n-1, including p itself. This models the paper's atomic
// broadcast capability: "a process can send the same message in one step to
// all other processes". Delivery of each copy remains independent and
// nondeterministic.
func Broadcast(from PID, n int, body string) []Message {
	msgs := make([]Message, n)
	for i := 0; i < n; i++ {
		msgs[i] = Message{To: PID(i), From: from, Body: body}
	}
	return msgs
}

// BroadcastOthers is Broadcast excluding the sender itself, for protocols
// whose processes account for their own contribution locally.
func BroadcastOthers(from PID, n int, body string) []Message {
	msgs := make([]Message, 0, n-1)
	for i := 0; i < n; i++ {
		if PID(i) == from {
			continue
		}
		msgs = append(msgs, Message{To: PID(i), From: from, Body: body})
	}
	return msgs
}
