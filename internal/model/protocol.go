package model

// State is the internal state of a single process: input register, output
// register, program counter, and internal storage. Implementations are
// provided by protocols.
//
// States must be treated as immutable values: Step must return a fresh
// State rather than mutating its argument, and callers must never modify a
// State after obtaining it. Key defines semantic equality — two states are
// equal iff their keys are equal — and therefore configuration equality and
// the soundness of valency memoization rest on Key being canonical.
type State interface {
	// Key returns a canonical encoding of the state. Equal states must
	// return identical keys and distinct states distinct keys.
	Key() string
	// Output returns the content of the process's output register y_p.
	Output() Output
}

// Protocol is a consensus protocol P: the transition functions of N
// deterministic processes plus their initial states. It corresponds exactly
// to the paper's definition in Section 2.
//
// Implementations must be deterministic and side-effect free: Step called
// twice with equal arguments must return equal results, and must not mutate
// the given state. The harness enforces the write-once output register; a
// Step that changes an already-decided register is reported as a protocol
// error by Apply.
type Protocol interface {
	// Name identifies the protocol in traces, checkers, and benchmarks.
	Name() string
	// N returns the number of processes, at least 2.
	N() int
	// Init returns the initial state of process p with input register
	// x_p = input. Initial states prescribe fixed starting values for
	// everything but the input register; the output register starts at b.
	Init(p PID, input Value) State
	// Step is the transition function. m is the delivered message, or nil
	// for the null delivery ∅ (receive returned nothing). It returns the
	// successor state and the finite set of messages sent in this step.
	// Message From fields are stamped with p by the harness; To fields
	// must name valid processes.
	Step(p PID, s State, m *Message) (State, []Message)
}

// Inputs is an assignment of input bits to all N processes: element p is
// x_p. An initial configuration is determined by a Protocol and an Inputs
// vector.
type Inputs []Value

// AllInputs enumerates all 2^n input assignments for n processes, in
// lexicographic order with process 0 as the most significant bit.
func AllInputs(n int) []Inputs {
	total := 1 << n
	all := make([]Inputs, 0, total)
	for bits := 0; bits < total; bits++ {
		in := make(Inputs, n)
		for p := 0; p < n; p++ {
			if bits&(1<<(n-1-p)) != 0 {
				in[p] = V1
			}
		}
		all = append(all, in)
	}
	return all
}

// UniformInputs returns the assignment giving every process input v.
func UniformInputs(n int, v Value) Inputs {
	in := make(Inputs, n)
	for p := range in {
		in[p] = v
	}
	return in
}

// Count returns how many processes have input v.
func (in Inputs) Count(v Value) int {
	c := 0
	for _, x := range in {
		if x == v {
			c++
		}
	}
	return c
}

// String renders the assignment as a bit string, process 0 first.
func (in Inputs) String() string {
	b := make([]byte, len(in))
	for i, v := range in {
		b[i] = '0' + byte(v)
	}
	return string(b)
}

// AdjacentTo reports whether two input assignments differ in the input of
// exactly one process, returning that process. This is the adjacency
// relation on initial configurations used in the proof of Lemma 2.
func (in Inputs) AdjacentTo(other Inputs) (PID, bool) {
	if len(in) != len(other) {
		return 0, false
	}
	diff := -1
	for p := range in {
		if in[p] != other[p] {
			if diff >= 0 {
				return 0, false
			}
			diff = p
		}
	}
	if diff < 0 {
		return 0, false
	}
	return PID(diff), true
}
