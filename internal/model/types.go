package model

import "fmt"

// PID identifies a process. Processes in a protocol of N processes are
// numbered 0 through N-1.
type PID int

// Value is a binary consensus value. The paper's consensus problem is over
// {0, 1}; multivalued consensus reduces to the binary case.
type Value uint8

// The two consensus values.
const (
	V0 Value = 0
	V1 Value = 1
)

// Valid reports whether v is one of the two consensus values.
func (v Value) Valid() bool { return v == V0 || v == V1 }

// Other returns the opposite consensus value.
func (v Value) Other() Value {
	if v == V0 {
		return V1
	}
	return V0
}

func (v Value) String() string { return fmt.Sprintf("%d", uint8(v)) }

// Output is the content of a process's output register y_p, which ranges
// over {b, 0, 1}. The register starts at b (None) and is write-once: once a
// process enters a decision state (Output ≠ None) its output register may
// never change again. Apply enforces this.
type Output uint8

// Output register contents.
const (
	// None is the blank symbol b: the process has not decided.
	None Output = iota
	// Decided0 means y_p = 0.
	Decided0
	// Decided1 means y_p = 1.
	Decided1
)

// Decided reports whether the register holds a decision value.
func (o Output) Decided() bool { return o == Decided0 || o == Decided1 }

// Value returns the decision value held in the register. It panics if the
// process has not decided; check Decided first.
func (o Output) Value() Value {
	switch o {
	case Decided0:
		return V0
	case Decided1:
		return V1
	}
	panic("model: Output.Value on undecided register")
}

// OutputOf converts a consensus value to the corresponding register content.
func OutputOf(v Value) Output {
	if v == V0 {
		return Decided0
	}
	return Decided1
}

func (o Output) String() string {
	switch o {
	case None:
		return "b"
	case Decided0:
		return "0"
	case Decided1:
		return "1"
	}
	return fmt.Sprintf("Output(%d)", uint8(o))
}
