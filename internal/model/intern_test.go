package model_test

import (
	"sync"
	"testing"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// walkFrom drives pr from the given inputs through a walk chosen by the
// byte string: each byte selects one applicable effectful event. It
// returns the final configuration.
func walkFrom(t testing.TB, pr model.Protocol, in model.Inputs, steps []byte) *model.Config {
	if t != nil {
		t.Helper()
	}
	cfg := model.MustInitial(pr, in)
	for _, b := range steps {
		var evs []model.Event
		for _, e := range model.Events(cfg) {
			if e.IsNull() && model.IsNoOp(pr, cfg, e) {
				continue
			}
			evs = append(evs, e)
		}
		if len(evs) == 0 {
			break
		}
		cfg = model.MustApply(pr, cfg, evs[int(b)%len(evs)])
	}
	return cfg
}

// inputsFrom derives an input assignment for n processes from one byte.
func inputsFrom(b byte, n int) model.Inputs {
	in := make(model.Inputs, n)
	for p := 0; p < n; p++ {
		if b&(1<<p) != 0 {
			in[p] = model.V1
		}
	}
	return in
}

// FuzzConfigKeyHash asserts, for arbitrary pairs of reachable
// configurations, that the hash/intern layer agrees exactly with canonical
// string Key equality: Equal(a, b) ⇔ Key(a) == Key(b), Equal implies equal
// hashes, and the interner assigns equal IDs exactly to Equal
// configurations.
func FuzzConfigKeyHash(f *testing.F) {
	f.Add(byte(3), []byte{0, 1, 2}, byte(3), []byte{2, 1, 0})
	f.Add(byte(1), []byte{}, byte(1), []byte{})
	f.Add(byte(5), []byte{0, 0, 4, 9}, byte(2), []byte{7})
	f.Add(byte(6), []byte{1, 3, 5, 7, 9, 11}, byte(6), []byte{1, 3, 5, 7, 9, 11})
	f.Fuzz(func(t *testing.T, ina byte, wa []byte, inb byte, wb []byte) {
		if len(wa) > 64 || len(wb) > 64 {
			t.Skip("walk too long")
		}
		pr := protocols.NewNaiveMajority(3)
		a := walkFrom(t, pr, inputsFrom(ina, 3), wa)
		b := walkFrom(t, pr, inputsFrom(inb, 3), wb)

		keyEq := a.Key() == b.Key()
		if eq := a.Equal(b); eq != keyEq {
			t.Fatalf("Equal = %v but key equality = %v\n a: %s\n b: %s", eq, keyEq, a.Key(), b.Key())
		}
		if keyEq && a.Hash() != b.Hash() {
			t.Fatalf("equal configurations with different hashes: %#x vs %#x", a.Hash(), b.Hash())
		}

		it := model.NewInterner()
		ida, fresha := it.Intern(a)
		idb, freshb := it.Intern(b)
		if !fresha {
			t.Fatal("first Intern not fresh")
		}
		if freshb == keyEq {
			t.Fatalf("Intern(b) fresh = %v with key equality = %v", freshb, keyEq)
		}
		if (ida == idb) != keyEq {
			t.Fatalf("interned IDs %d, %d; equal IDs = %v but key equality = %v", ida, idb, ida == idb, keyEq)
		}
		if id, again := it.Intern(a); again || id != ida {
			t.Fatalf("re-Intern(a) = (%d, %v), want (%d, false)", id, again, ida)
		}
		if id, ok := it.Lookup(b); !ok || id != idb {
			t.Fatalf("Lookup(b) = (%d, %v), want (%d, true)", id, ok, idb)
		}
		wantLen := 2
		if keyEq {
			wantLen = 1
		}
		if it.Len() != wantLen {
			t.Fatalf("interner Len = %d, want %d", it.Len(), wantLen)
		}
	})
}

// bufferSnapshot captures the live contents of a configuration's buffer so
// that later mutations through aliased state would be visible.
func bufferSnapshot(c *model.Config) map[model.Message]int {
	snap := make(map[model.Message]int)
	for _, m := range c.Buffer().Messages() {
		snap[m] = c.Buffer().Count(m)
	}
	return snap
}

func sameSnapshot(a, b map[model.Message]int) bool {
	if len(a) != len(b) {
		return false
	}
	for m, n := range a {
		if b[m] != n {
			return false
		}
	}
	return true
}

// TestWithStepNoAliasing drives every applicable event out of a family of
// configurations and checks that producing (and further extending) a
// successor never mutates the parent or a sibling: states and buffers are
// copied, not shared. This is the property the interner and the parallel
// explorer rest on — an interned configuration must never change after the
// fact.
func TestWithStepNoAliasing(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	for _, walk := range [][]byte{{}, {0}, {1, 2}, {0, 3, 1}, {2, 2, 2, 2}, {5, 1, 4, 2, 8}} {
		parent := walkFrom(t, pr, model.Inputs{0, 1, 1}, walk)
		parentSnap := bufferSnapshot(parent)
		parentStates := make([]string, parent.N())
		for p := 0; p < parent.N(); p++ {
			parentStates[p] = parent.State(model.PID(p)).Key()
		}

		// Derive every effectful successor, then extend each successor
		// further; neither derivation may disturb the parent or siblings.
		var children []*model.Config
		var childSnaps []map[model.Message]int
		for _, e := range model.Events(parent) {
			if e.IsNull() && model.IsNoOp(pr, parent, e) {
				continue
			}
			child := model.MustApply(pr, parent, e)
			children = append(children, child)
			childSnaps = append(childSnaps, bufferSnapshot(child))
		}
		for _, child := range children {
			for _, e := range model.Events(child) {
				if e.IsNull() && model.IsNoOp(pr, child, e) {
					continue
				}
				model.MustApply(pr, child, e) // grandchildren, discarded
			}
		}

		if !sameSnapshot(parentSnap, bufferSnapshot(parent)) {
			t.Fatalf("walk %v: deriving successors mutated the parent buffer", walk)
		}
		for p := 0; p < parent.N(); p++ {
			if parent.State(model.PID(p)).Key() != parentStates[p] {
				t.Fatalf("walk %v: deriving successors mutated parent state %d", walk, p)
			}
		}
		for i, child := range children {
			if !sameSnapshot(childSnaps[i], bufferSnapshot(child)) {
				t.Fatalf("walk %v: extending one sibling mutated another's buffer", walk)
			}
		}
	}
}

// TestHashInternAgreementOnReachableSet sweeps a breadth-first prefix of
// naivemajority's reachable set and checks hash/intern agreement with key
// equality across every pair, including genuine duplicates reached by
// different schedules.
func TestHashInternAgreementOnReachableSet(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	root := model.MustInitial(pr, model.Inputs{0, 1, 1})

	// Plain breadth-first enumeration, keeping duplicates (capped).
	queue := []*model.Config{root}
	var all []*model.Config
	for len(queue) > 0 && len(all) < 400 {
		c := queue[0]
		queue = queue[1:]
		all = append(all, c)
		for _, e := range model.Events(c) {
			if e.IsNull() && model.IsNoOp(pr, c, e) {
				continue
			}
			queue = append(queue, model.MustApply(pr, c, e))
		}
	}

	it := model.NewInterner()
	ids := make([]uint64, len(all))
	for i, c := range all {
		ids[i], _ = it.Intern(c)
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			keyEq := all[i].Key() == all[j].Key()
			if eq := all[i].Equal(all[j]); eq != keyEq {
				t.Fatalf("configs %d, %d: Equal = %v, key equality = %v", i, j, eq, keyEq)
			}
			if (ids[i] == ids[j]) != keyEq {
				t.Fatalf("configs %d, %d: id equality = %v, key equality = %v", i, j, ids[i] == ids[j], keyEq)
			}
			if keyEq && all[i].Hash() != all[j].Hash() {
				t.Fatalf("configs %d, %d: equal keys, hashes %#x vs %#x", i, j, all[i].Hash(), all[j].Hash())
			}
		}
	}
	if it.Len() > len(all) {
		t.Fatalf("interner Len %d exceeds configurations interned %d", it.Len(), len(all))
	}
}

// TestInternTag covers the auxiliary-tag hook the valency atlas is built
// on: first-interner-wins tag semantics, Tag lookups, and independence from
// the interner's own IDs.
func TestInternTag(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	a := model.MustInitial(pr, model.Inputs{0, 1, 1})
	b := walkFrom(t, pr, model.Inputs{0, 1, 1}, []byte{0})
	aDup := model.MustInitial(pr, model.Inputs{0, 1, 1})

	it := model.NewInterner()
	if got, fresh := it.InternTag(a, 7); !fresh || got != 7 {
		t.Fatalf("InternTag(a, 7) = (%d, %v), want (7, true)", got, fresh)
	}
	if got, fresh := it.InternTag(b, 9); !fresh || got != 9 {
		t.Fatalf("InternTag(b, 9) = (%d, %v), want (9, true)", got, fresh)
	}
	// A duplicate keeps the first tag, whatever the caller proposes.
	if got, fresh := it.InternTag(aDup, 1234); fresh || got != 7 {
		t.Fatalf("InternTag(dup, 1234) = (%d, %v), want (7, false)", got, fresh)
	}
	if tag, ok := it.Tag(aDup); !ok || tag != 7 {
		t.Fatalf("Tag(a) = (%d, %v), want (7, true)", tag, ok)
	}
	if tag, ok := it.Tag(b); !ok || tag != 9 {
		t.Fatalf("Tag(b) = (%d, %v), want (9, true)", tag, ok)
	}
	if _, ok := it.Tag(walkFrom(t, pr, model.Inputs{0, 1, 1}, []byte{1})); ok {
		t.Fatal("Tag of a never-interned configuration reported ok")
	}
	if it.Len() != 2 {
		t.Fatalf("Len = %d, want 2", it.Len())
	}
}

// TestInternerConcurrent hammers one interner from many goroutines over an
// overlapping set of configurations: every goroutine must observe the same
// ID for the same configuration, and the table must end up with exactly
// the distinct count. Run under -race this also checks the sharded table's
// synchronization.
func TestInternerConcurrent(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	root := model.MustInitial(pr, model.Inputs{0, 1, 1})
	var cfgs []*model.Config
	queue := []*model.Config{root}
	for len(queue) > 0 && len(cfgs) < 120 {
		c := queue[0]
		queue = queue[1:]
		cfgs = append(cfgs, c)
		for _, e := range model.Events(c) {
			if e.IsNull() && model.IsNoOp(pr, c, e) {
				continue
			}
			queue = append(queue, model.MustApply(pr, c, e))
		}
	}
	distinct := make(map[string]bool)
	for _, c := range cfgs {
		distinct[c.Key()] = true
	}

	it := model.NewInterner()
	const goroutines = 8
	got := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]uint64, len(cfgs))
			for round := 0; round < 3; round++ {
				for i := range cfgs {
					// Vary traversal order per goroutine (rotation).
					j := (i + g*17) % len(cfgs)
					id, _ := it.Intern(cfgs[j])
					ids[j] = id
				}
			}
			got[g] = ids
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		for i := range cfgs {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d saw id %d for config %d, goroutine 0 saw %d", g, got[g][i], i, got[0][i])
			}
		}
	}
	if it.Len() != len(distinct) {
		t.Fatalf("interner Len = %d, distinct configurations = %d", it.Len(), len(distinct))
	}
}
