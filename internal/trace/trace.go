// Package trace renders recorded runs as space-time diagrams and audits
// their fairness, turning the schedules produced by the runtime and the
// Theorem 1 adversary into something a human can read.
//
// The diagram is the classic distributed-systems picture: one column per
// process, time flowing downward, one row per event showing who stepped,
// what was delivered, and what the step sent. The audit quantifies how
// fair a schedule was: steps per process, deliveries per process, and the
// maximum delivery lag (how many sends happened between a message's send
// and its delivery) — the quantities the paper's admissibility definition
// constrains in the limit.
package trace

import (
	"fmt"
	"io"
	"strings"

	"github.com/flpsim/flp/internal/fifo"
	"github.com/flpsim/flp/internal/model"
)

// Audit is the fairness accounting of one finite schedule.
type Audit struct {
	// Steps counts events per process.
	Steps map[model.PID]int
	// Deliveries counts message receipts per process.
	Deliveries map[model.PID]int
	// NullSteps counts null events per process.
	NullSteps map[model.PID]int
	// Sent and Delivered are message totals; Pending = Sent - Delivered.
	Sent, Delivered int
	// MaxLag is the largest number of events between a message's send and
	// its delivery, over delivered messages.
	MaxLag int
	// MinSteps is the smallest per-process step count — an admissible
	// run's prefix keeps this growing for every non-faulty process.
	MinSteps int
}

// Row is one rendered event of a diagram.
type Row struct {
	Index   int
	Event   model.Event
	Sends   []model.Message
	Decided bool // the stepping process is decided after this event
	Output  model.Output
}

// Diagram is a replayed, renderable run.
type Diagram struct {
	Protocol string
	N        int
	Rows     []Row
	Audit    Audit
	Final    *model.Config
}

// Replay re-executes a schedule from the initial configuration given by
// inputs, collecting the diagram and audit. It fails if the schedule is
// not applicable — the same strictness as the adversary's verifier.
func Replay(pr model.Protocol, inputs model.Inputs, sigma model.Schedule) (*Diagram, error) {
	cfg, err := model.Initial(pr, inputs)
	if err != nil {
		return nil, err
	}
	n := pr.N()
	d := &Diagram{
		Protocol: pr.Name(),
		N:        n,
		Audit: Audit{
			Steps:      map[model.PID]int{},
			Deliveries: map[model.PID]int{},
			NullSteps:  map[model.PID]int{},
		},
	}
	tracker := fifo.New()
	sentAt := map[string][]int{} // message key → event indices of unconsumed sends

	for i, e := range sigma {
		nc, sends, err := model.ApplyTraced(pr, cfg, e)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if err := tracker.Advance(e, sends); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		d.Audit.Steps[e.P]++
		if e.Msg != nil {
			d.Audit.Deliveries[e.P]++
			d.Audit.Delivered++
			k := e.Msg.Key()
			if idxs := sentAt[k]; len(idxs) > 0 {
				lag := i - idxs[0]
				if lag > d.Audit.MaxLag {
					d.Audit.MaxLag = lag
				}
				sentAt[k] = idxs[1:]
			}
		} else {
			d.Audit.NullSteps[e.P]++
		}
		for _, m := range sends {
			d.Audit.Sent++
			k := m.Key()
			sentAt[k] = append(sentAt[k], i)
		}
		cfg = nc
		d.Rows = append(d.Rows, Row{
			Index:   i,
			Event:   e,
			Sends:   sends,
			Decided: cfg.Output(e.P).Decided(),
			Output:  cfg.Output(e.P),
		})
	}
	d.Final = cfg
	d.Audit.MinSteps = -1
	for p := 0; p < n; p++ {
		s := d.Audit.Steps[model.PID(p)]
		if d.Audit.MinSteps < 0 || s < d.Audit.MinSteps {
			d.Audit.MinSteps = s
		}
	}
	return d, nil
}

// Fprint renders the space-time diagram: one column per process, one row
// per event.
func (d *Diagram) Fprint(w io.Writer) {
	const colWidth = 14
	fmt.Fprintf(w, "space-time diagram: %s (%d events)\n", d.Protocol, len(d.Rows))
	header := make([]string, d.N)
	for p := range header {
		header[p] = center(fmt.Sprintf("p%d", p), colWidth)
	}
	fmt.Fprintf(w, "%5s %s\n", "", strings.Join(header, "|"))

	for _, r := range d.Rows {
		cells := make([]string, d.N)
		for p := range cells {
			cells[p] = center("·", colWidth)
		}
		var label string
		if r.Event.Msg == nil {
			label = "∅"
		} else {
			label = fmt.Sprintf("←p%d %s", r.Event.Msg.From, clip(r.Event.Msg.Body, 8))
		}
		if r.Decided {
			label += " ✓" + r.Output.String()
		}
		if len(r.Sends) > 0 {
			label += fmt.Sprintf(" →%d", len(r.Sends))
		}
		cells[int(r.Event.P)] = center(clip(label, colWidth), colWidth)
		fmt.Fprintf(w, "%5d %s\n", r.Index, strings.Join(cells, "|"))
	}

	fmt.Fprintf(w, "\naudit: sent=%d delivered=%d pending=%d maxLag=%d minSteps=%d\n",
		d.Audit.Sent, d.Audit.Delivered, d.Audit.Sent-d.Audit.Delivered, d.Audit.MaxLag, d.Audit.MinSteps)
	for p := 0; p < d.N; p++ {
		pid := model.PID(p)
		fmt.Fprintf(w, "  p%d: %d steps (%d deliveries, %d null)\n",
			p, d.Audit.Steps[pid], d.Audit.Deliveries[pid], d.Audit.NullSteps[pid])
	}
}

// String renders the diagram to a string.
func (d *Diagram) String() string {
	var sb strings.Builder
	d.Fprint(&sb)
	return sb.String()
}

// center and clip work in runes so that the glyphs used in labels (∅, ←,
// ✓) never get cut mid-encoding.
func center(s string, w int) string {
	r := []rune(s)
	if len(r) >= w {
		return string(r[:w])
	}
	left := (w - len(r)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", w-len(r)-left)
}

func clip(s string, w int) string {
	r := []rune(s)
	if len(r) <= w {
		return s
	}
	if w <= 1 {
		return string(r[:w])
	}
	return string(r[:w-1]) + "…"
}
