package trace_test

import (
	"strings"
	"testing"

	"github.com/flpsim/flp/internal/adversary"
	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
	"github.com/flpsim/flp/internal/runtime"
	"github.com/flpsim/flp/internal/trace"
)

func recordedRun(t *testing.T, pr model.Protocol, in model.Inputs) *runtime.RunResult {
	t.Helper()
	res, err := runtime.Run(pr, in, runtime.NewRoundRobin(),
		runtime.RunOptions{RecordSchedule: true, MaxSteps: 50000})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReplayMatchesRun(t *testing.T) {
	pr := protocols.NewWaitAll(3)
	in := model.Inputs{0, 1, 1}
	res := recordedRun(t, pr, in)
	d, err := trace.Replay(pr, in, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != res.Steps {
		t.Errorf("diagram has %d rows, run took %d steps", len(d.Rows), res.Steps)
	}
	if !d.Final.Equal(res.Final) {
		t.Error("replay diverged from the recorded final configuration")
	}
	total := 0
	for _, s := range d.Audit.Steps {
		total += s
	}
	if total != res.Steps {
		t.Errorf("audit counts %d steps, run took %d", total, res.Steps)
	}
}

func TestAuditAccounting(t *testing.T) {
	pr := protocols.NewWaitAll(3)
	in := model.Inputs{0, 1, 1}
	res := recordedRun(t, pr, in)
	d, err := trace.Replay(pr, in, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	// WaitAll sends exactly n(n-1) vote messages.
	if d.Audit.Sent != 6 {
		t.Errorf("sent = %d, want 6", d.Audit.Sent)
	}
	if d.Audit.Delivered > d.Audit.Sent {
		t.Errorf("delivered %d > sent %d", d.Audit.Delivered, d.Audit.Sent)
	}
	if d.Audit.MaxLag < 0 || d.Audit.MinSteps < 1 {
		t.Errorf("audit: %+v", d.Audit)
	}
	deliveries := 0
	for _, c := range d.Audit.Deliveries {
		deliveries += c
	}
	if deliveries != d.Audit.Delivered {
		t.Errorf("per-process deliveries sum %d ≠ total %d", deliveries, d.Audit.Delivered)
	}
}

func TestReplayRejectsBogusSchedule(t *testing.T) {
	pr := protocols.NewWaitAll(3)
	ghost := model.Schedule{model.Deliver(model.Message{To: 0, From: 1, Body: "V1"})}
	if _, err := trace.Replay(pr, model.Inputs{0, 1, 1}, ghost); err == nil {
		t.Error("inapplicable schedule replayed without error")
	}
}

func TestDiagramRendering(t *testing.T) {
	pr := protocols.NewTwoPhaseCommit(3)
	in := model.Inputs{1, 1, 1}
	res := recordedRun(t, pr, in)
	d, err := trace.Replay(pr, in, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	out := d.String()
	for _, want := range []string{"space-time diagram", "2pc(n=3)", "p0", "p2", "audit:", "steps"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered diagram missing %q:\n%s", want, out)
		}
	}
	// Every event row appears.
	if got := strings.Count(out, "\n"); got < res.Steps+5 {
		t.Errorf("diagram too short: %d lines for %d steps", got, res.Steps)
	}
}

func TestDiagramOfAdversarialRun(t *testing.T) {
	// The Theorem 1 run renders too, and its audit shows the rotation:
	// every process keeps taking steps, nobody decides.
	pr := protocols.NewPaxosSynod(3)
	probe := explore.ProbeOptions{}
	adv := adversary.New(pr, adversary.Options{
		Stages:  6,
		Probe:   &probe,
		Search:  explore.Options{MaxConfigs: 2000},
		Valency: explore.Options{MaxConfigs: 1500},
	})
	res, err := adv.Run()
	if err != nil {
		t.Fatal(err)
	}
	d, err := trace.Replay(pr, res.Inputs, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if d.Audit.MinSteps < 2 {
		t.Errorf("adversarial run audit: min steps %d, want ≥ 2 (rotations)", d.Audit.MinSteps)
	}
	if d.Final.DecidedCount() != 0 {
		t.Error("adversarial run decided in replay")
	}
	if !strings.Contains(d.String(), "paxos") {
		t.Error("diagram missing protocol name")
	}
}
