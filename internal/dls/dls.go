// Package dls implements a partial-synchrony consensus in the style of
// Dwork, Lynch, and Stockmeyer ("Consensus in the presence of partial
// synchrony", PODC 1984 — reference [10], one of the two escape routes the
// paper's conclusion points to). The system alternates rounds; before an
// unknown Global Stabilization Time (GST) the adversary may drop any
// messages, after it every message between live processes is delivered.
//
// The algorithm is a rotating-coordinator commit protocol with Paxos-style
// locks (safe under full asynchrony with f < N/2 crash faults, live once
// rounds become synchronous):
//
//	round r, coordinator c = r mod N:
//	 1. every process reports (estimate, lockRound) to c;
//	 2. on ≥ N-f reports, c proposes the estimate with the highest
//	    lockRound (its own estimate if none is locked);
//	 3. a process receiving propose(r, v) locks (v, r), adopts v, acks;
//	 4. on ≥ N-f acks, c broadcasts decide(v); receivers decide.
//
// Quorum intersection gives agreement: once N-f processes lock v at round
// r, every later coordinator's report quorum contains a lock ≥ r, so only
// v can ever again be proposed. Before GST the adversary can starve every
// quorum, and the protocol — like every protocol, by Theorem 1 — simply
// does not terminate; after GST it decides within one rotation of live
// coordinators.
package dls

import (
	"fmt"
	"math/rand"

	"github.com/flpsim/flp/internal/model"
)

// Options configure one partial-synchrony execution.
type Options struct {
	// N is the number of processes; F the crash budget (F < N/2).
	N, F int
	// GST is the first synchronous round (1-based). Rounds before it are
	// under the adversary's control.
	GST int
	// MaxRounds bounds the execution.
	MaxRounds int
	// DropProb is the probability an individual pre-GST message is
	// dropped. 1.0 models the fully hostile adversary.
	DropProb float64
	// Seed drives the pre-GST adversary.
	Seed int64
	// CrashRound maps a process to the round at the start of which it
	// crashes (1-based; 0 = initially dead).
	CrashRound map[int]int
}

func (o Options) validate() error {
	if o.N < 2 {
		return fmt.Errorf("dls: need N ≥ 2, got %d", o.N)
	}
	if o.F < 0 || 2*o.F >= o.N {
		return fmt.Errorf("dls: need 0 ≤ F < N/2, got F=%d N=%d", o.F, o.N)
	}
	if len(o.CrashRound) > o.F {
		return fmt.Errorf("dls: %d crashes exceed budget F=%d", len(o.CrashRound), o.F)
	}
	if o.GST < 1 {
		return fmt.Errorf("dls: GST must be ≥ 1, got %d", o.GST)
	}
	return nil
}

// Result reports one execution.
type Result struct {
	// Decisions maps decided processes to their value.
	Decisions map[int]model.Value
	// DecisionRound maps decided processes to the round they decided in.
	DecisionRound map[int]int
	// FirstDecisionRound is the earliest decision round, 0 if none.
	FirstDecisionRound int
	// Rounds is the number of rounds executed.
	Rounds int
	// Agreement reports whether all decisions carry one value.
	Agreement bool
}

// AllLiveDecided reports whether every non-crashed process decided.
func (r *Result) AllLiveDecided(opt Options) bool {
	for p := 0; p < opt.N; p++ {
		if _, crashed := opt.CrashRound[p]; crashed {
			continue
		}
		if _, ok := r.Decisions[p]; !ok {
			return false
		}
	}
	return true
}

type proc struct {
	estimate  model.Value
	lockRound int // 0 = nothing locked
	decided   bool
	decision  model.Value
}

// Run executes the protocol from the given inputs.
func Run(opt Options, inputs model.Inputs) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if len(inputs) != opt.N {
		return nil, fmt.Errorf("dls: %d inputs for N=%d", len(inputs), opt.N)
	}
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = opt.GST + 2*opt.N
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	procs := make([]proc, opt.N)
	for p := range procs {
		procs[p] = proc{estimate: inputs[p]}
	}
	res := &Result{Decisions: map[int]model.Value{}, DecisionRound: map[int]int{}}

	alive := func(p, r int) bool {
		cr, crashed := opt.CrashRound[p]
		return !crashed || r < cr
	}
	// delivered models the per-message adversary: before GST each message
	// is dropped with DropProb; from GST on everything arrives.
	delivered := func(r int) bool {
		if r >= opt.GST {
			return true
		}
		return rng.Float64() >= opt.DropProb
	}

	for r := 1; r <= opt.MaxRounds; r++ {
		res.Rounds = r
		c := r % opt.N

		// Phase 1: reports to the coordinator.
		type report struct {
			estimate  model.Value
			lockRound int
		}
		var reports []report
		if alive(c, r) {
			for p := 0; p < opt.N; p++ {
				if alive(p, r) && delivered(r) {
					reports = append(reports, report{procs[p].estimate, procs[p].lockRound})
				}
			}
		}

		// Phase 2: the coordinator proposes.
		proposed := false
		var proposal model.Value
		if alive(c, r) && len(reports) >= opt.N-opt.F {
			best := reports[0]
			for _, rep := range reports[1:] {
				if rep.lockRound > best.lockRound {
					best = rep
				}
			}
			proposal = best.estimate
			proposed = true
		}

		// Phase 3: locks and acks.
		acks := 0
		if proposed {
			for p := 0; p < opt.N; p++ {
				if alive(p, r) && delivered(r) {
					procs[p].lockRound = r
					procs[p].estimate = proposal
					if delivered(r) {
						acks++
					}
				}
			}
		}

		// Phase 4: decide.
		if proposed && acks >= opt.N-opt.F {
			for p := 0; p < opt.N; p++ {
				if alive(p, r) && delivered(r) && !procs[p].decided {
					procs[p].decided = true
					procs[p].decision = proposal
					res.Decisions[p] = proposal
					res.DecisionRound[p] = r
					if res.FirstDecisionRound == 0 {
						res.FirstDecisionRound = r
					}
				}
			}
		}

		// Stop once every live process has decided.
		done := true
		for p := 0; p < opt.N; p++ {
			if alive(p, r+1) && !procs[p].decided {
				done = false
				break
			}
		}
		if done {
			break
		}
	}

	seen := map[model.Value]bool{}
	for _, v := range res.Decisions {
		seen[v] = true
	}
	res.Agreement = len(seen) <= 1
	return res, nil
}
