package dls_test

import (
	"testing"

	"github.com/flpsim/flp/internal/dls"
	"github.com/flpsim/flp/internal/model"
)

func TestHostileAdversaryBlocksUntilGST(t *testing.T) {
	opt := dls.Options{N: 3, F: 1, GST: 10, DropProb: 1.0, Seed: 1}
	res, err := dls.Run(opt, model.Inputs{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDecisionRound != 0 && res.FirstDecisionRound < opt.GST {
		t.Errorf("decided in round %d, before GST %d, under a fully hostile adversary",
			res.FirstDecisionRound, opt.GST)
	}
	if !res.AllLiveDecided(opt) {
		t.Error("did not decide after GST")
	}
	if res.FirstDecisionRound < opt.GST {
		t.Errorf("first decision round %d < GST %d", res.FirstDecisionRound, opt.GST)
	}
	if !res.Agreement {
		t.Error("agreement violated")
	}
}

func TestDecidesWithinOneRotationAfterGST(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		opt := dls.Options{N: n, F: (n - 1) / 2, GST: 5, DropProb: 1.0, Seed: 3}
		in := make(model.Inputs, n)
		for i := 0; i < n/2; i++ {
			in[i] = 1
		}
		res, err := dls.Run(opt, in)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllLiveDecided(opt) {
			t.Fatalf("N=%d: not all decided", n)
		}
		if res.FirstDecisionRound >= opt.GST+n {
			t.Errorf("N=%d: first decision at round %d, want within one rotation after GST %d",
				n, res.FirstDecisionRound, opt.GST)
		}
	}
}

func TestAgreementUnderLossyPreGST(t *testing.T) {
	// Random pre-GST message loss must never break agreement or validity.
	for seed := int64(0); seed < 30; seed++ {
		opt := dls.Options{N: 5, F: 2, GST: 8, DropProb: 0.6, Seed: seed,
			CrashRound: map[int]int{1: 3, 4: 0}}
		in := model.Inputs{0, 1, 1, 0, 1}
		res, err := dls.Run(opt, in)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Agreement {
			t.Fatalf("seed %d: agreement violated: %v", seed, res.Decisions)
		}
		if !res.AllLiveDecided(opt) {
			t.Fatalf("seed %d: liveness after GST failed", seed)
		}
		for _, v := range res.Decisions {
			if in.Count(v) == 0 {
				t.Fatalf("seed %d: decided %v which nobody proposed", seed, v)
			}
		}
	}
}

func TestEarlyDecisionWithBenignNetwork(t *testing.T) {
	// DropProb 0 means the network is effectively synchronous from round
	// 1: decision should come almost immediately, well before GST.
	opt := dls.Options{N: 3, F: 1, GST: 50, DropProb: 0, Seed: 1}
	res, err := dls.Run(opt, model.Inputs{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDecisionRound == 0 || res.FirstDecisionRound > 3 {
		t.Errorf("benign network decided at round %d, want ≤ 3", res.FirstDecisionRound)
	}
	if v, ok := decidedValue(res); !ok || v != model.V1 {
		t.Errorf("unanimous 1 decided %v (ok=%v)", v, ok)
	}
}

func TestCrashedCoordinatorSkipped(t *testing.T) {
	// Kill process 0 (= coordinator of rounds ≡ 0 mod N) immediately; the
	// rotation must still decide via the surviving coordinators.
	opt := dls.Options{N: 3, F: 1, GST: 1, DropProb: 0, Seed: 1,
		CrashRound: map[int]int{0: 0}}
	res, err := dls.Run(opt, model.Inputs{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllLiveDecided(opt) {
		t.Error("survivors did not decide with a dead coordinator in rotation")
	}
	if _, ok := res.Decisions[0]; ok {
		t.Error("dead process decided")
	}
}

func TestUnanimousValidity(t *testing.T) {
	for _, v := range []model.Value{model.V0, model.V1} {
		opt := dls.Options{N: 5, F: 2, GST: 4, DropProb: 0.5, Seed: 9}
		res, err := dls.Run(opt, model.UniformInputs(5, v))
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := decidedValue(res); !ok || got != v {
			t.Errorf("unanimous %v: decided %v (ok=%v)", v, got, ok)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []dls.Options{
		{N: 1, F: 0, GST: 1},
		{N: 4, F: 2, GST: 1}, // 2F ≥ N
		{N: 3, F: 1, GST: 0}, // GST < 1
		{N: 3, F: 0, GST: 1, CrashRound: map[int]int{0: 1}}, // crashes > F
	}
	for i, opt := range bad {
		if _, err := dls.Run(opt, make(model.Inputs, opt.N)); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, opt)
		}
	}
	if _, err := dls.Run(dls.Options{N: 3, F: 1, GST: 1}, model.Inputs{0, 1}); err == nil {
		t.Error("mismatched input count accepted")
	}
}

func decidedValue(r *dls.Result) (model.Value, bool) {
	seen := map[model.Value]bool{}
	for _, v := range r.Decisions {
		seen[v] = true
	}
	if len(seen) == 1 {
		for v := range seen {
			return v, true
		}
	}
	return 0, false
}
