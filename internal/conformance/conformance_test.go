package conformance_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"github.com/flpsim/flp/internal/conformance"
	"github.com/flpsim/flp/internal/distexplore"
	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protogen"
)

// corpusDir is the committed fixture corpus, shared with cmd/flpgen.
func corpusDir() string { return filepath.Join("..", "..", "testdata", "protogen") }

func quickOptions() conformance.Options {
	return conformance.Options{Explore: explore.Options{MaxConfigs: 250}, Chaos: true, ChaosSeed: 3}
}

func altInputs(n int) model.Inputs {
	in := make(model.Inputs, n)
	for p := range in {
		in[p] = model.Value(p & 1)
	}
	return in
}

// TestCheckRegisteredProtocols runs the harness over hand-written registry
// protocols: the same Check must cover generated and curated protocols
// alike, truncated (naivemajority at a small budget) and complete
// (waitall) explorations both.
func TestCheckRegisteredProtocols(t *testing.T) {
	for _, tc := range []struct {
		name string
		task distexplore.Task
	}{
		{"waitall", distexplore.Task{Protocol: "waitall", N: 3, Inputs: model.Inputs{0, 1, 1}}},
		{"naivemajority", distexplore.Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := conformance.Check(tc.task.Protocol, tc.task.Inputs, quickOptions()); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestCheckGenerated sweeps a spread of generated protocols, both
// templates, through the full harness.
func TestCheckGenerated(t *testing.T) {
	for _, tmpl := range []string{protogen.TemplateTable, protogen.TemplateBenOr} {
		for seed := uint64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s-seed%d", tmpl, seed), func(t *testing.T) {
				d := protogen.DefaultDials(3)
				d.Template = tmpl
				sp := protogen.Derive(seed, d)
				opt := quickOptions()
				opt.ChaosSeed = int64(seed)
				if err := conformance.Check(sp.Name(), altInputs(sp.N), opt); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestCheckDepthBound covers the MaxDepth path: the atlas leg must be
// skipped (BuildAtlas refuses depth cutoffs) while the stream legs still
// agree on the truncated prefix.
func TestCheckDepthBound(t *testing.T) {
	sp := protogen.Derive(5, protogen.DefaultDials(3))
	opt := quickOptions()
	opt.Explore.MaxDepth = 3
	if err := conformance.Check(sp.Name(), altInputs(sp.N), opt); err != nil {
		t.Error(err)
	}
}

// TestCheckRejectsUnresolvableName pins the setup-error path: a protocol
// whose name the registry cannot resolve must fail as a harness error,
// not a Divergence.
func TestCheckRejectsUnresolvableName(t *testing.T) {
	err := conformance.Check("not-in-any-registry", altInputs(2), quickOptions())
	if err == nil {
		t.Fatal("Check accepted a name the workers cannot rebuild")
	}
	var div *conformance.Divergence
	if errors.As(err, &div) {
		t.Fatalf("setup failure misreported as a divergence: %v", err)
	}
}

// TestConformanceCorpus replays the committed corpus of shrunk generated
// fixtures at worker counts 1 and 8 — the ordinary-test-suite face of the
// fuzzer, deterministic and race-detector friendly.
func TestConformanceCorpus(t *testing.T) {
	names, fixtures, err := conformance.LoadDir(corpusDir())
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	if len(fixtures) < 15 {
		t.Fatalf("corpus has only %d fixtures; expected the committed set of ~20", len(fixtures))
	}
	for i, fx := range fixtures {
		name := names[i]
		chaosSeed := int64(i + 1)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, workers := range []int{1, 8} {
				opt := conformance.Options{ParWorkers: workers, Chaos: true, ChaosSeed: chaosSeed}
				if err := fx.Check(opt); err != nil {
					t.Errorf("workers=%d: %v", workers, err)
				}
			}
		})
	}
}

// TestShrinkTableMinimizes drives the shrinker with a synthetic predicate
// ("at least one process holds input 1") and checks it reaches the
// predicate's actual minimum: every structural dial at its floor, every
// table entry inert, a single 1 bit left.
func TestShrinkTableMinimizes(t *testing.T) {
	sp := protogen.Derive(9, protogen.DefaultDials(4))
	inputs := altInputs(sp.N)
	failing := func(s protogen.Spec, in model.Inputs) bool {
		return in.Count(model.V1) >= 1
	}
	if !failing(sp, inputs) {
		t.Fatal("predicate does not hold on the starting point")
	}
	min, minIn := conformance.Shrink(sp, inputs, failing, 100000)
	if err := min.Validate(); err != nil {
		t.Fatalf("shrunk spec invalid: %v", err)
	}
	if min.N != 2 || min.Phases != 1 || min.Regs != 1 || min.Alphabet != 1 {
		t.Errorf("structural dials not at floor: N=%d Phases=%d Regs=%d Alphabet=%d",
			min.N, min.Phases, min.Regs, min.Alphabet)
	}
	for i, tr := range min.Table {
		if len(tr.Sends) != 0 || tr.Decide != protogen.DecideNone {
			t.Errorf("entry %d not inert: %+v", i, tr)
		}
	}
	if minIn.Count(model.V1) != 1 || minIn.Count(model.V0) != len(minIn)-1 {
		t.Errorf("inputs not minimal: %v", minIn)
	}
	if min.Dials != nil {
		t.Error("shrunk spec kept its Derive provenance")
	}
	// The shrunk spec must still round-trip through its (j1) name.
	back, err := protogen.FromName(min.Name())
	if err != nil {
		t.Fatalf("shrunk spec name does not round-trip: %v", err)
	}
	if back.N != min.N || len(back.Table) != len(min.Table) {
		t.Error("shrunk spec name decoded to a different spec")
	}
}

// TestShrinkBenOrMinimizes is the Ben-Or analogue: rounds and thresholds
// descend to 1, the process count to 2.
func TestShrinkBenOrMinimizes(t *testing.T) {
	d := protogen.Dials{Template: protogen.TemplateBenOr, N: 4, MaxRound: 3}
	sp := protogen.Derive(13, d)
	inputs := altInputs(sp.N)
	failing := func(s protogen.Spec, in model.Inputs) bool {
		return s.Template == protogen.TemplateBenOr
	}
	min, minIn := conformance.Shrink(sp, inputs, failing, 100000)
	if min.N != 2 || min.MaxRound != 1 || min.WaitNeed != 1 || min.ProposeNeed != 1 || min.DecideNeed != 1 {
		t.Errorf("not minimal: N=%d MaxRound=%d thresholds=(%d,%d,%d)",
			min.N, min.MaxRound, min.WaitNeed, min.ProposeNeed, min.DecideNeed)
	}
	if len(minIn) != min.N {
		t.Errorf("inputs length %d for N=%d", len(minIn), min.N)
	}
}

// TestShrinkPreservesFailure: the returned pair must satisfy the predicate
// — shrinking may stall, never overshoot.
func TestShrinkPreservesFailure(t *testing.T) {
	sp := protogen.Derive(3, protogen.DefaultDials(3))
	inputs := altInputs(sp.N)
	// A predicate that pins a mid-size shape: exactly 3 processes.
	failing := func(s protogen.Spec, in model.Inputs) bool { return s.N == 3 }
	min, minIn := conformance.Shrink(sp, inputs, failing, 5000)
	if !failing(min, minIn) {
		t.Fatal("shrinker returned a pair that does not fail")
	}
}

// TestFixtureRoundTrip pins the fixture file format.
func TestFixtureRoundTrip(t *testing.T) {
	sp := protogen.Derive(21, protogen.DefaultDials(3))
	fx := conformance.NewFixture(sp, model.Inputs{0, 1, 1}, 300, "unit test")
	path := filepath.Join(t.TempDir(), "sub", "fx.json")
	if err := conformance.SaveFixture(path, fx); err != nil {
		t.Fatal(err)
	}
	back, err := conformance.LoadFixture(path)
	if err != nil {
		t.Fatal(err)
	}
	if back != fx {
		t.Fatalf("round trip changed the fixture:\n  saved  %+v\n  loaded %+v", fx, back)
	}
	in, err := back.InputValues()
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 3 || in[0] != model.V0 || in[1] != model.V1 || in[2] != model.V1 {
		t.Errorf("inputs decoded as %v", in)
	}
	if _, err := back.Spec(); err != nil {
		t.Errorf("spec did not decode: %v", err)
	}

	// Corrupt inputs must be rejected at load time.
	bad := fx
	bad.Inputs = "01x"
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := conformance.SaveFixture(badPath, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := conformance.LoadFixture(badPath); err == nil {
		t.Error("fixture with non-bit inputs loaded")
	}
}

// fuzzInputs expands a bit-packed byte into an input vector for n
// processes.
func fuzzInputs(n int, bits uint8) model.Inputs {
	in := make(model.Inputs, n)
	for p := range in {
		in[p] = model.Value((bits >> p) & 1)
	}
	return in
}

// runFuzzCase is the shared body of the fuzz targets: derive, check, and
// on divergence shrink to a minimal reproducer and dump it as a loadable
// fixture under testdata/failures before failing.
func runFuzzCase(t *testing.T, seed uint64, d protogen.Dials, inBits uint8) {
	t.Helper()
	sp := protogen.Derive(seed, d)
	inputs := fuzzInputs(sp.N, inBits)
	opt := conformance.Options{Explore: explore.Options{MaxConfigs: 250}, Chaos: true, ChaosSeed: int64(seed) | 1}
	err := conformance.Check(sp.Name(), inputs, opt)
	if err == nil {
		return
	}
	var div *conformance.Divergence
	if !errors.As(err, &div) {
		// Infrastructure failure, not an engine disagreement: fail loudly
		// without steering the shrinker toward flaky setups.
		t.Fatalf("harness failure (not a divergence): %v", err)
	}
	diverges := func(s protogen.Spec, in model.Inputs) bool {
		cerr := conformance.Check(s.Name(), in, opt)
		var d2 *conformance.Divergence
		return errors.As(cerr, &d2)
	}
	minSp, minIn := conformance.Shrink(sp, inputs, diverges, 0)
	fx := conformance.NewFixture(minSp, minIn, opt.Explore.MaxConfigs,
		fmt.Sprintf("shrunk from fuzz seed %d: %v", seed, err))
	path := filepath.Join("testdata", "failures", fmt.Sprintf("divergence-%d.json", seed))
	if serr := conformance.SaveFixture(path, fx); serr != nil {
		t.Logf("could not save reproducer: %v", serr)
	} else if abs, aerr := filepath.Abs(path); aerr == nil {
		path = abs
	}
	t.Fatalf("divergence found (minimal reproducer saved to %s):\n  original: %v\n  shrunk protocol: %s inputs %s",
		path, err, minSp.Name(), minIn)
}

// FuzzConformanceTable fuzzes table-template protocols through every
// engine. Run with: go test -fuzz FuzzConformanceTable ./internal/conformance
func FuzzConformanceTable(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(65), uint8(2), uint8(2), uint8(0b010))
	f.Add(uint64(7), uint8(0), uint8(90), uint8(0), uint8(1), uint8(0b01))
	f.Add(uint64(23), uint8(2), uint8(40), uint8(1), uint8(2), uint8(0b0110))
	f.Add(uint64(998877), uint8(1), uint8(100), uint8(2), uint8(3), uint8(0b111))
	f.Fuzz(func(t *testing.T, seed uint64, n, density, phases, maxSends, inBits uint8) {
		d := protogen.Dials{
			Template: protogen.TemplateTable,
			N:        int(n%3) + 2, // 2..4: larger fleets explode the per-iteration cost
			Phases:   int(phases%3) + 1,
			Regs:     2,
			Alphabet: 2,
			Density:  int(density) % 101,
			MaxSends: int(maxSends)%3 + 1,
			DecShape: int(seed % 4),
		}
		runFuzzCase(t, seed, d, inBits)
	})
}

// FuzzConformanceBenOr fuzzes capped randomized-template protocols; the
// coin tape is fixed by the seed, so every iteration is replayable.
func FuzzConformanceBenOr(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(1), uint8(0b01))
	f.Add(uint64(11), uint8(1), uint8(2), uint8(0b10))
	f.Add(uint64(42), uint8(0), uint8(1), uint8(0b11))
	f.Fuzz(func(t *testing.T, seed uint64, n, maxRound, inBits uint8) {
		d := protogen.Dials{
			Template: protogen.TemplateBenOr,
			N:        int(n%2) + 2, // 2..3: benor state spaces grow fastest in N
			MaxRound: int(maxRound%2) + 1,
		}
		runFuzzCase(t, seed, d, inBits)
	})
}
