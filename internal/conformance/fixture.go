package conformance

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protogen"
)

// Fixture is one generated protocol pinned to disk: the corpus under
// testdata/protogen is a directory of these, and the fuzz targets dump
// shrunk reproducers in the same format. The protocol itself lives
// entirely in Name (protogen names are self-describing), so a fixture
// stays loadable by anything that can resolve a protocol name.
type Fixture struct {
	// Name is the self-describing gen: protocol name.
	Name string `json:"name"`
	// Inputs is the initial-value vector as a digit string ("011" gives
	// process 0 input 0, processes 1 and 2 input 1) — human-readable and
	// hand-editable, where a raw byte slice would JSON-encode as base64.
	Inputs string `json:"inputs"`
	// MaxConfigs bounds the conformance exploration for this fixture;
	// 0 means the harness default.
	MaxConfigs int `json:"max_configs,omitempty"`
	// Note records where the fixture came from.
	Note string `json:"note,omitempty"`
}

// NewFixture pins (sp, inputs) as a fixture.
func NewFixture(sp protogen.Spec, inputs model.Inputs, maxConfigs int, note string) Fixture {
	return Fixture{Name: sp.Name(), Inputs: inputs.String(), MaxConfigs: maxConfigs, Note: note}
}

// Spec decodes the fixture's protocol spec from its name.
func (fx Fixture) Spec() (protogen.Spec, error) {
	return protogen.FromName(fx.Name)
}

// InputValues decodes the fixture's input string.
func (fx Fixture) InputValues() (model.Inputs, error) {
	in := make(model.Inputs, 0, len(fx.Inputs))
	for i, ch := range fx.Inputs {
		switch ch {
		case '0':
			in = append(in, model.V0)
		case '1':
			in = append(in, model.V1)
		default:
			return nil, fmt.Errorf("conformance: fixture input %q: position %d is not a bit", fx.Inputs, i)
		}
	}
	return in, nil
}

// Check runs the conformance harness on the fixture, applying its pinned
// budget over opt's.
func (fx Fixture) Check(opt Options) error {
	sp, err := fx.Spec()
	if err != nil {
		return err
	}
	in, err := fx.InputValues()
	if err != nil {
		return err
	}
	if len(in) != sp.N {
		return fmt.Errorf("conformance: fixture has %d inputs for %d processes", len(in), sp.N)
	}
	if fx.MaxConfigs > 0 {
		opt.Explore.MaxConfigs = fx.MaxConfigs
	}
	return Check(fx.Name, in, opt)
}

// SaveFixture writes fx as indented JSON, creating parent directories.
func SaveFixture(path string, fx Fixture) error {
	raw, err := json.MarshalIndent(fx, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// LoadFixture reads one fixture and validates that it decodes.
func LoadFixture(path string) (Fixture, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Fixture{}, err
	}
	var fx Fixture
	if err := json.Unmarshal(raw, &fx); err != nil {
		return Fixture{}, fmt.Errorf("conformance: %s: %w", path, err)
	}
	if _, err := fx.Spec(); err != nil {
		return Fixture{}, fmt.Errorf("conformance: %s: %w", path, err)
	}
	if _, err := fx.InputValues(); err != nil {
		return Fixture{}, fmt.Errorf("conformance: %s: %w", path, err)
	}
	return fx, nil
}

// LoadDir loads every *.json fixture in dir, sorted by filename so corpus
// iteration order is stable.
func LoadDir(dir string) ([]string, []Fixture, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	fixtures := make([]Fixture, 0, len(names))
	for _, n := range names {
		fx, err := LoadFixture(filepath.Join(dir, n))
		if err != nil {
			return nil, nil, err
		}
		fixtures = append(fixtures, fx)
	}
	return names, fixtures, nil
}
