package conformance

import (
	"fmt"
	"time"

	"github.com/flpsim/flp/internal/distexplore"
	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
)

// Options configure one conformance check. The zero value is usable and
// deliberately small: conformance budgets stay far below the exploration
// default because the contract under test — engines agree byte for byte —
// holds on truncated runs exactly as on complete ones, so a fuzzing
// iteration never needs to exhaust a large state space.
type Options struct {
	// Explore carries the exploration bounds shared by every engine.
	// MaxConfigs 0 means DefaultMaxConfigs (400, not the exploration
	// package's 200000); Workers is owned by the harness and ignored.
	Explore explore.Options
	// ParWorkers is the worker count of the parallel in-process leg.
	// 0 means 8; 1 degenerates the leg into a second oracle run.
	ParWorkers int
	// DistWorkers, Shards, Replicas shape the distributed legs.
	// 0 means 3 workers, 4 shards, replication factor 2.
	DistWorkers, Shards, Replicas int
	// Chaos adds a second distributed leg over a FaultyTransport scripted
	// to kill one worker mid-run, with the victim and level drawn from
	// ChaosSeed. Requires DistWorkers >= 2 (a kill with no standby aborts
	// by design rather than diverging).
	Chaos     bool
	ChaosSeed int64
	// ClassifySamples is how many visited configurations get an
	// independent Classify run compared against the atlas. 0 means 8.
	ClassifySamples int
}

// DefaultMaxConfigs is the harness's own exploration budget.
const DefaultMaxConfigs = 400

func (o Options) withDefaults() Options {
	if o.Explore.MaxConfigs <= 0 {
		o.Explore.MaxConfigs = DefaultMaxConfigs
	}
	o.Explore = o.Explore.Normalized()
	o.Explore.Workers = 1
	if o.ParWorkers <= 0 {
		o.ParWorkers = 8
	}
	if o.DistWorkers <= 0 {
		o.DistWorkers = 3
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.ClassifySamples <= 0 {
		o.ClassifySamples = 8
	}
	return o
}

// Divergence reports two engines disagreeing on an observable that the
// byte-identical-results contract says must match. Engine names the leg
// that disagreed with the sequential oracle.
type Divergence struct {
	Protocol string
	Engine   string
	Detail   string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("conformance: %s: engine %s diverged from the sequential oracle: %s",
		d.Protocol, d.Engine, d.Detail)
}

// step is one visit observation. Comparing full streams position by
// position is the strongest form of the contract: it subsumes counts,
// orders, depths, and witness schedules at once.
type step struct {
	key   string
	depth int
	path  string
}

// inProcStream collects the visit stream of an in-process exploration.
func inProcStream(pr model.Protocol, root *model.Config, opt explore.Options) (bool, int, []step) {
	var steps []step
	complete, visited := explore.Explore(pr, root, opt, nil, func(cfg *model.Config, depth int, path func() model.Schedule) bool {
		steps = append(steps, step{key: cfg.Key(), depth: depth, path: path().String()})
		return false
	})
	return complete, visited, steps
}

// compareStreams returns the first divergence between the oracle stream
// and an engine's stream, or nil when they are byte-identical.
func compareStreams(protocol, engine string, oc bool, ov int, oracle []step, ec bool, ev int, got []step) *Divergence {
	div := func(format string, args ...any) *Divergence {
		return &Divergence{Protocol: protocol, Engine: engine, Detail: fmt.Sprintf(format, args...)}
	}
	if oc != ec || ov != ev {
		return div("(complete, visited) = (%v, %d), oracle (%v, %d)", ec, ev, oc, ov)
	}
	if len(oracle) != len(got) {
		return div("visit stream length %d, oracle %d", len(got), len(oracle))
	}
	for i := range oracle {
		if oracle[i] != got[i] {
			return div("visit %d: got {key %q depth %d path %q}, oracle {key %q depth %d path %q}",
				i, got[i].key, got[i].depth, got[i].path, oracle[i].key, oracle[i].depth, oracle[i].path)
		}
	}
	return nil
}

// cluster is one throwaway worker fleet plus a dialed coordinator.
type cluster struct {
	cl        *distexplore.Cluster
	listeners []distexplore.Listener
}

func (c *cluster) close() {
	if c.cl != nil {
		c.cl.Close()
	}
	for _, l := range c.listeners {
		l.Close()
	}
}

// rpcOptions keeps retry latency low so a scripted kill is declared and
// failed over in milliseconds.
func rpcOptions() distexplore.RPCOptions {
	return distexplore.RPCOptions{
		RPCTimeout:   5 * time.Second,
		DialTimeout:  250 * time.Millisecond,
		Retries:      2,
		RetryBackoff: 2 * time.Millisecond,
	}
}

// startCluster brings up n workers listening on tr under the given names
// and dials a coordinator through dialTr (they differ for the chaos leg,
// where faults are injected on the coordinator's side only).
func startCluster(tr, dialTr distexplore.Transport, names []string) (*cluster, error) {
	c := &cluster{}
	addrs := make([]string, 0, len(names))
	for _, name := range names {
		l, err := tr.Listen(name)
		if err != nil {
			c.close()
			return nil, fmt.Errorf("conformance: worker listen %q: %w", name, err)
		}
		c.listeners = append(c.listeners, l)
		addrs = append(addrs, l.Addr())
		go distexplore.NewWorker(nil).Serve(l)
	}
	cl, err := distexplore.Dial(dialTr, addrs, rpcOptions())
	if err != nil {
		c.close()
		return nil, fmt.Errorf("conformance: dial cluster: %w", err)
	}
	c.cl = cl
	return c, nil
}

func workerNames(prefix string, n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return names
}

// distStream runs the task on a cluster and collects its visit stream.
func distStream(c *cluster, tk distexplore.Task) (bool, int, []step, error) {
	var steps []step
	complete, visited, err := c.cl.Explore(tk, func(cfg *model.Config, depth int, path func() model.Schedule) bool {
		steps = append(steps, step{key: cfg.Key(), depth: depth, path: path().String()})
		return false
	})
	return complete, visited, steps, err
}

// Check runs one protocol through every engine and returns nil when all
// observables are byte-identical, a *Divergence when two engines
// disagree, and an ordinary error when the harness itself cannot run
// (unresolvable name, cluster setup failure). name must be a registry-
// resolvable protocol name — a registered key like "waitall", or a
// generated gen: name, which is self-describing — because that string is
// all the distributed workers get to rebuild the protocol from.
func Check(name string, inputs model.Inputs, opt Options) error {
	opt = opt.withDefaults()

	// The distributed legs rebuild the protocol from its name on every
	// worker; resolve it locally the same way, so a bad name is a setup
	// error here, not a confusing worker-side failure.
	pr, err := distexplore.RegistryProvider(name, len(inputs))
	if err != nil {
		return fmt.Errorf("conformance: protocol %q does not resolve through the registry: %w", name, err)
	}

	root, err := model.Initial(pr, inputs)
	if err != nil {
		return fmt.Errorf("conformance: %q: %w", name, err)
	}

	// Sequential oracle.
	seqOpt := opt.Explore
	seqOpt.Workers = 1
	oc, ov, oracle := inProcStream(pr, root, seqOpt)

	// Parallel in-process engine.
	parOpt := opt.Explore
	parOpt.Workers = opt.ParWorkers
	pc, pv, par := inProcStream(pr, root, parOpt)
	if d := compareStreams(name, fmt.Sprintf("parallel(workers=%d)", opt.ParWorkers), oc, ov, oracle, pc, pv, par); d != nil {
		return d
	}

	task := distexplore.Task{
		Protocol: name, N: pr.N(), Inputs: inputs,
		Shards: opt.Shards, Replicas: opt.Replicas,
		Options: opt.Explore,
	}

	// Distributed engine, fault-free loopback.
	lb := distexplore.NewLoopback()
	cl, err := startCluster(lb, lb, workerNames("cw", opt.DistWorkers))
	if err != nil {
		return err
	}
	dc, dv, dist, derr := distStream(cl, task)
	cl.close()
	if derr != nil {
		return fmt.Errorf("conformance: distributed leg failed: %w", derr)
	}
	engine := fmt.Sprintf("distributed(w=%d,s=%d,r=%d)", opt.DistWorkers, opt.Shards, opt.Replicas)
	if d := compareStreams(name, engine, oc, ov, oracle, dc, dv, dist); d != nil {
		return d
	}

	// Distributed engine under a scripted kill: the chaos victim and kill
	// level come from ChaosSeed, the replication factor is forced >= 2 so
	// the loss fails over instead of aborting. The kill is not required
	// to fire — a shallow exploration may finish first — because the
	// contract is "whatever happens, results match", not "a kill
	// happened"; killRun-style firing assertions live in the distexplore
	// failover suite.
	if opt.Chaos && opt.DistWorkers >= 2 {
		seed := opt.ChaosSeed
		if seed == 0 {
			seed = 1
		}
		names := workerNames("xw", opt.DistWorkers)
		victim := int(uint64(seed) % uint64(opt.DistWorkers))
		level := int(uint64(seed) >> 4 % 5)
		inner := distexplore.NewLoopback()
		ft := distexplore.NewFaultyTransport(inner, distexplore.FaultPlan{
			Seed: seed, KillAddr: names[victim], KillLevel: level,
		})
		chaosTask := task
		if chaosTask.Replicas < 2 {
			chaosTask.Replicas = 2
		}
		cl, err = startCluster(inner, ft, names)
		if err != nil {
			return err
		}
		cc, cv, chaos, cerr := distStream(cl, chaosTask)
		cl.close()
		if cerr != nil {
			return fmt.Errorf("conformance: chaos leg (kill worker %d at level %d) failed: %w", victim, level, cerr)
		}
		engine = fmt.Sprintf("distributed-chaos(kill=w%d@L%d)", victim, level)
		if d := compareStreams(name, engine, oc, ov, oracle, cc, cv, chaos); d != nil {
			return d
		}
	}

	// Valency atlas. BuildAtlas is complete-or-refused and rejects depth
	// cutoffs, so the leg applies only to depth-unbounded runs; refusal
	// itself is an observable that must agree with the oracle's flag.
	if opt.Explore.MaxDepth == 0 {
		if d := checkAtlas(pr, root, name, opt, oc, ov, oracle); d != nil {
			return d
		}
	}
	return nil
}

// checkAtlas compares the one-pass atlas against the oracle stream and
// spot-checks its valency answers against independent Classify runs.
func checkAtlas(pr model.Protocol, root *model.Config, name string, opt Options, oc bool, ov int, oracle []step) error {
	atlas, ok := explore.BuildAtlas(pr, root, opt.Explore)
	div := func(format string, args ...any) *Divergence {
		return &Divergence{Protocol: name, Engine: "atlas", Detail: fmt.Sprintf(format, args...)}
	}
	if ok != oc {
		return div("BuildAtlas ok=%v, oracle complete=%v", ok, oc)
	}
	if !ok {
		// Refused: the fallback classification path is the oracle engine
		// itself, already covered; nothing more to compare.
		return nil
	}
	if atlas.Len() != ov {
		return div("atlas holds %d configurations, oracle visited %d", atlas.Len(), ov)
	}
	for i := range oracle {
		id := int32(i)
		if got := atlas.Config(id).Key(); got != oracle[i].key {
			return div("atlas id %d holds key %q, oracle visit %d has %q", id, got, i, oracle[i].key)
		}
		if got := atlas.PathTo(id).String(); got != oracle[i].path {
			return div("atlas path to id %d is %q, oracle has %q", id, got, oracle[i].path)
		}
	}

	// Sampled cross-check: the atlas's O(V+E) valency answers against the
	// per-configuration breadth-first classifier. Witness schedules may
	// legitimately differ between the two (both are shortest; ties break
	// differently), so lengths are compared, not bytes.
	samples := opt.ClassifySamples
	if samples > atlas.Len() {
		samples = atlas.Len()
	}
	stride := atlas.Len() / samples
	if stride == 0 {
		stride = 1
	}
	for s := 0; s < samples; s++ {
		id := int32(s * stride)
		at := atlas.InfoAt(id)
		cl := explore.Classify(pr, atlas.Config(id), opt.Explore)
		if at.Valency != cl.Valency {
			return div("id %d: atlas valency %v, Classify %v", id, at.Valency, cl.Valency)
		}
		if at.Exact != cl.Exact {
			return div("id %d: atlas exact=%v, Classify exact=%v", id, at.Exact, cl.Exact)
		}
		for _, d := range []model.Value{model.V0, model.V1} {
			if at.HasWitness(d) != cl.HasWitness(d) {
				return div("id %d: atlas HasWitness(%v)=%v, Classify %v", id, d, at.HasWitness(d), cl.HasWitness(d))
			}
			if !at.HasWitness(d) {
				continue
			}
			wl, _ := atlas.WitnessLen(id, d)
			clLen := len(cl.Witness0)
			if d == model.V1 {
				clLen = len(cl.Witness1)
			}
			if wl != clLen {
				return div("id %d: atlas witness length for %v is %d, Classify found %d", id, d, wl, clLen)
			}
		}
	}
	return nil
}
