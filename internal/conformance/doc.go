// Package conformance is the cross-engine differential harness: it takes
// one protocol instance and runs the same exploration through every
// engine the repository has — the sequential oracle, the parallel
// in-process engine, the distributed engine over loopback (fault-free and
// under a scripted FaultyTransport kill), and the one-pass valency atlas —
// asserting that every observable is byte-identical: completion flag,
// visit count, the full visit stream (configuration keys, depths, witness
// schedules), atlas ordering, and sampled valency classifications.
//
// The harness is the consumer the protogen generator was built for: a
// generated protocol that makes no sense as a consensus algorithm is
// still a perfectly good differential test case, because the contract
// under test is "all engines agree", not "the protocol is correct".
// Check accepts any model.Protocol whose Name resolves through the
// protocol registry (generated gen: names resolve via the registry's
// passthrough), so the same harness also covers the hand-written
// protocols.
//
// A disagreement is reported as *Divergence naming the engine and the
// first diverging observable. Shrink then reduces a failing generated
// spec to a locally minimal reproducer by greedy first-improvement
// descent over spec transforms (drop a process, drop a phase/register/
// symbol, inert a table entry, drop a send, clear a decision, zero an
// input, and the Ben-Or analogues), re-checking the failure predicate
// after each candidate. Minimal reproducers round-trip through Fixture
// files, which is how the fuzz targets dump their findings and how the
// committed corpus under testdata/protogen is loaded.
package conformance
