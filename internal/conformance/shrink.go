package conformance

import (
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protogen"
)

// Failing is the predicate Shrink preserves: it must report true on the
// original failing (spec, inputs) pair and on every accepted shrink step.
// The fuzz targets pass "Check returns a Divergence"; tests may pass any
// predicate.
type Failing func(sp protogen.Spec, inputs model.Inputs) bool

// DefaultShrinkBudget bounds how many candidate evaluations one Shrink
// call may spend. Each evaluation runs the caller's predicate, which for
// the conformance predicate means a full multi-engine check — the budget
// is what keeps shrinking a failing fuzz input interactive.
const DefaultShrinkBudget = 400

type candidate struct {
	sp protogen.Spec
	in model.Inputs
}

// Shrink reduces a failing (spec, inputs) pair by greedy first-improvement
// descent: candidates are proposed from most aggressive (drop a whole
// process, phase, register, or symbol) to most surgical (inert one table
// entry, drop one send, clear one decision, zero one input bit), the first
// candidate that still fails is adopted, and the pass restarts until no
// candidate fails or the budget runs out. The result is locally minimal:
// no single proposed transform preserves the failure. budget <= 0 means
// DefaultShrinkBudget.
func Shrink(sp protogen.Spec, inputs model.Inputs, failing Failing, budget int) (protogen.Spec, model.Inputs) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	attempts := 0
	for {
		improved := false
		for _, cand := range candidates(sp, inputs) {
			if attempts >= budget {
				return sp, inputs
			}
			if cand.sp.Validate() != nil {
				continue
			}
			attempts++
			if failing(cand.sp, cand.in) {
				sp, inputs = cand.sp, cand.in
				improved = true
				break
			}
		}
		if !improved {
			return sp, inputs
		}
	}
}

// cloneSpec deep-copies sp and clears its Derive provenance: a transformed
// table no longer follows from (Seed, Dials), so the spec must encode
// itself explicitly (the gen:j1: name form).
func cloneSpec(sp protogen.Spec) protogen.Spec {
	sp.Dials = nil
	sp.Seed = 0
	if sp.Table != nil {
		sp.Table = append([]protogen.Transition(nil), sp.Table...)
		for i := range sp.Table {
			if sp.Table[i].Sends != nil {
				sp.Table[i].Sends = append([]protogen.Send(nil), sp.Table[i].Sends...)
			}
		}
	}
	return sp
}

func cloneInputs(in model.Inputs) model.Inputs {
	return append(model.Inputs(nil), in...)
}

// candidates proposes every single-step shrink of (sp, inputs), most
// aggressive first.
func candidates(sp protogen.Spec, inputs model.Inputs) []candidate {
	var out []candidate
	if sp.N > 2 {
		for p := sp.N - 1; p >= 0; p-- {
			out = append(out, dropProcess(sp, inputs, p))
		}
	}
	if sp.Template == protogen.TemplateBenOr {
		out = append(out, benorCandidates(sp, inputs)...)
	} else {
		out = append(out, tableCandidates(sp, inputs)...)
	}
	for p := range inputs {
		if inputs[p] != model.V0 {
			in := cloneInputs(inputs)
			in[p] = model.V0
			out = append(out, candidate{sp: sp, in: in})
		}
	}
	return out
}

// dropProcess removes process p: inputs lose slot p, fixed send targets
// are renumbered (a send to the removed process becomes a self-send, which
// keeps the message in the system rather than silently deleting traffic),
// and the Ben-Or thresholds are clamped to the smaller quorum space.
func dropProcess(sp protogen.Spec, inputs model.Inputs, p int) candidate {
	ns := cloneSpec(sp)
	ns.N--
	for i := range ns.Table {
		for j := range ns.Table[i].Sends {
			switch t := ns.Table[i].Sends[j].Target; {
			case t == p:
				ns.Table[i].Sends[j].Target = protogen.TargetSelf
			case t > p:
				ns.Table[i].Sends[j].Target = t - 1
			}
		}
	}
	for _, th := range []*int{&ns.WaitNeed, &ns.ProposeNeed, &ns.DecideNeed} {
		if *th > ns.N {
			*th = ns.N
		}
	}
	in := make(model.Inputs, 0, len(inputs)-1)
	for q, v := range inputs {
		if q != p {
			in = append(in, v)
		}
	}
	return candidate{sp: ns, in: in}
}

func benorCandidates(sp protogen.Spec, inputs model.Inputs) []candidate {
	var out []candidate
	dec := func(f func(*protogen.Spec) *int) {
		ns := cloneSpec(sp)
		field := f(&ns)
		if *field > 1 {
			*field--
			out = append(out, candidate{sp: ns, in: cloneInputs(inputs)})
		}
	}
	dec(func(s *protogen.Spec) *int { return &s.MaxRound })
	dec(func(s *protogen.Spec) *int { return &s.WaitNeed })
	dec(func(s *protogen.Spec) *int { return &s.ProposeNeed })
	dec(func(s *protogen.Spec) *int { return &s.DecideNeed })
	return out
}

func tableCandidates(sp protogen.Spec, inputs model.Inputs) []candidate {
	var out []candidate
	if c, ok := dropPhase(sp, inputs); ok {
		out = append(out, c)
	}
	if c, ok := dropReg(sp, inputs); ok {
		out = append(out, c)
	}
	if c, ok := dropSym(sp, inputs); ok {
		out = append(out, c)
	}
	// Entry-level surgery: inert the entry, drop one send, clear the
	// decision. Iterating (phase, reg, sym) keeps candidate order
	// deterministic for a given spec shape.
	for h := 0; h < sp.Phases; h++ {
		for r := 0; r < sp.Regs; r++ {
			for s := 0; s <= sp.Alphabet; s++ {
				i := tableIndex(sp, h, r, s)
				tr := sp.Table[i]
				inert := len(tr.Sends) == 0 && tr.Decide == protogen.DecideNone && tr.Next == h && tr.Reg == r
				if !inert {
					ns := cloneSpec(sp)
					ns.Table[i] = protogen.Transition{Next: h, Reg: r}
					out = append(out, candidate{sp: ns, in: cloneInputs(inputs)})
				}
				if len(tr.Sends) > 0 {
					ns := cloneSpec(sp)
					ns.Table[i].Sends = ns.Table[i].Sends[:len(ns.Table[i].Sends)-1]
					if len(ns.Table[i].Sends) == 0 {
						ns.Table[i].Sends = nil
					}
					out = append(out, candidate{sp: ns, in: cloneInputs(inputs)})
				}
				if tr.Decide != protogen.DecideNone {
					ns := cloneSpec(sp)
					ns.Table[i].Decide = protogen.DecideNone
					out = append(out, candidate{sp: ns, in: cloneInputs(inputs)})
				}
			}
		}
	}
	return out
}

// tableIndex mirrors Spec's internal layout: (phase·Regs + reg)·(Alphabet+1) + sym.
func tableIndex(sp protogen.Spec, h, r, s int) int {
	return (h*sp.Regs+r)*(sp.Alphabet+1) + s
}

// dropPhase removes the last phase. Transitions that pointed past the new
// cap are clamped onto it; a clamp that lands a transition back on its own
// phase must also drop its sends (sends without a phase advance are
// invalid — they would unbound the message buffer).
func dropPhase(sp protogen.Spec, inputs model.Inputs) (candidate, bool) {
	if sp.Phases <= 1 {
		return candidate{}, false
	}
	ns := cloneSpec(sp)
	ns.Phases--
	ns.Table = ns.Table[:ns.Phases*ns.Regs*(ns.Alphabet+1)]
	for h := 0; h < ns.Phases; h++ {
		for r := 0; r < ns.Regs; r++ {
			for s := 0; s <= ns.Alphabet; s++ {
				tr := &ns.Table[tableIndex(ns, h, r, s)]
				if tr.Next > ns.Phases {
					tr.Next = ns.Phases
				}
				if tr.Next <= h {
					tr.Sends = nil
				}
			}
		}
	}
	return candidate{sp: ns, in: cloneInputs(inputs)}, true
}

// dropReg removes the top register value, re-indexing the table and
// clamping successor registers.
func dropReg(sp protogen.Spec, inputs model.Inputs) (candidate, bool) {
	if sp.Regs <= 1 {
		return candidate{}, false
	}
	ns := cloneSpec(sp)
	ns.Regs--
	table := make([]protogen.Transition, ns.Phases*ns.Regs*(ns.Alphabet+1))
	for h := 0; h < ns.Phases; h++ {
		for r := 0; r < ns.Regs; r++ {
			for s := 0; s <= ns.Alphabet; s++ {
				tr := sp.Table[tableIndex(sp, h, r, s)]
				if tr.Reg >= ns.Regs {
					tr.Reg = ns.Regs - 1
				}
				table[tableIndex(ns, h, r, s)] = tr
			}
		}
	}
	ns.Table = table
	return candidate{sp: ns, in: cloneInputs(inputs)}, true
}

// dropSym removes the top alphabet symbol, re-indexing the table (the null
// column always stays) and clamping send symbols.
func dropSym(sp protogen.Spec, inputs model.Inputs) (candidate, bool) {
	if sp.Alphabet <= 1 {
		return candidate{}, false
	}
	ns := cloneSpec(sp)
	ns.Alphabet--
	table := make([]protogen.Transition, ns.Phases*ns.Regs*(ns.Alphabet+1))
	for h := 0; h < ns.Phases; h++ {
		for r := 0; r < ns.Regs; r++ {
			for s := 0; s <= ns.Alphabet; s++ {
				tr := sp.Table[tableIndex(sp, h, r, s)]
				tr.Sends = append([]protogen.Send(nil), tr.Sends...)
				for j := range tr.Sends {
					if tr.Sends[j].Sym >= ns.Alphabet {
						tr.Sends[j].Sym = ns.Alphabet - 1
					}
				}
				if len(tr.Sends) == 0 {
					tr.Sends = nil
				}
				table[tableIndex(ns, h, r, s)] = tr
			}
		}
	}
	ns.Table = table
	return candidate{sp: ns, in: cloneInputs(inputs)}, true
}
