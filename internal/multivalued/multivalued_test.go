package multivalued_test

import (
	"testing"

	"github.com/flpsim/flp/internal/multivalued"
)

func TestDecidesAProposedValue(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		opt := multivalued.Options{N: 3, Seed: seed}
		proposals := []string{"alpha", "beta", "gamma"}
		res, err := multivalued.Run(opt, proposals)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllLiveDecided(opt) {
			t.Fatalf("seed %d: not all decided", seed)
		}
		if !res.Agreement {
			t.Fatalf("seed %d: agreement violated: %v", seed, res.Decisions)
		}
		decided := res.Decisions[0]
		valid := false
		for _, p := range proposals {
			if p == decided {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("seed %d: decided %q which nobody proposed", seed, decided)
		}
		if res.Winner < 0 || proposals[res.Winner] != decided {
			t.Fatalf("seed %d: winner %d inconsistent with decision %q", seed, res.Winner, decided)
		}
	}
}

func TestToleratesCrashesAndDrops(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		opt := multivalued.Options{N: 5, Seed: seed, DropProb: 0.5,
			Crashed: map[int]bool{0: true, 3: true}}
		proposals := []string{"a", "b", "c", "d", "e"}
		res, err := multivalued.Run(opt, proposals)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllLiveDecided(opt) || !res.Agreement {
			t.Fatalf("seed %d: decided=%v agreement=%v", seed, res.AllLiveDecided(opt), res.Agreement)
		}
		// A dead proposer's value must never win: nobody holds it.
		if res.Winner == 0 || res.Winner == 3 {
			t.Fatalf("seed %d: dead proposer %d won", seed, res.Winner)
		}
		if _, ok := res.Decisions[0]; ok {
			t.Fatalf("seed %d: crashed process decided", seed)
		}
	}
}

func TestUnanimousProposals(t *testing.T) {
	opt := multivalued.Options{N: 3, Seed: 4}
	res, err := multivalued.Run(opt, []string{"same", "same", "same"})
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range res.Decisions {
		if v != "same" {
			t.Errorf("p%d decided %q", p, v)
		}
	}
}

func TestInstanceCountReasonable(t *testing.T) {
	// With full dissemination, candidate 0 (held by everyone) should win
	// within the first rotation almost always; the count never exceeds one
	// rotation unless Ben-Or rejects early candidates.
	opt := multivalued.Options{N: 5, Seed: 2}
	res, err := multivalued.Run(opt, []string{"a", "b", "c", "d", "e"})
	if err != nil {
		t.Fatal(err)
	}
	if res.BinaryInstances < 1 || res.BinaryInstances > 10 {
		t.Errorf("binary instances = %d", res.BinaryInstances)
	}
}

func TestValidation(t *testing.T) {
	if _, err := multivalued.Run(multivalued.Options{N: 2}, []string{"a", "b"}); err == nil {
		t.Error("N=2 accepted")
	}
	if _, err := multivalued.Run(multivalued.Options{N: 3}, []string{"a"}); err == nil {
		t.Error("proposal count mismatch accepted")
	}
	over := multivalued.Options{N: 3, Crashed: map[int]bool{0: true, 1: true}}
	if _, err := multivalued.Run(over, []string{"a", "b", "c"}); err == nil {
		t.Error("crash budget overflow accepted")
	}
	if _, err := multivalued.Run(multivalued.Options{N: 3, DropProb: 1.5}, []string{"a", "b", "c"}); err == nil {
		t.Error("absurd DropProb accepted")
	}
}
