// Package multivalued reduces multivalued consensus to the binary
// consensus this library already provides, in the classic
// candidate-rotation style: disseminate proposals, then run one binary
// instance per candidate proposer — "do we adopt proposer k's value?" —
// until an instance decides 1. Binary impossibility results and binary
// escapes therefore carry to arbitrary value domains, which is why the
// paper can restrict itself to one bit without loss of generality.
//
// The binary box is Ben-Or (the randomized escape), executed on the
// library's asynchronous runtime with crash injection. A process votes 1
// for candidate k iff the dissemination phase delivered k's value to it;
// binary validity then makes a 1-decision imply that some process held
// the value when the instance started, and the relay rule (holders attach
// the value to their instance traffic) lets every decider learn it.
//
// Honest simplification, documented rather than hidden: the instances run
// phase-synchronized — instance k+1 starts after instance k ends — rather
// than fully interleaved. The adversary still controls message scheduling
// inside every phase and instance.
package multivalued

import (
	"fmt"
	"math/rand"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
	"github.com/flpsim/flp/internal/runtime"
)

// Options configure one multivalued consensus execution.
type Options struct {
	// N is the number of processes; F = ⌊(N-1)/2⌋ is the crash budget
	// inherited from the binary box.
	N int
	// Seed drives dissemination losses, instance scheduling, and the
	// Ben-Or coin tapes.
	Seed int64
	// Crashed marks processes that are down from the start (≤ F of them).
	Crashed map[int]bool
	// DropProb is the probability that a dissemination message from a
	// live proposer fails to reach a given live process (models arbitrary
	// delay past the phase boundary). The proposer always knows its own
	// value.
	DropProb float64
	// MaxSteps bounds each binary instance. Default 100000.
	MaxSteps int
}

func (o Options) f() int { return (o.N - 1) / 2 }

func (o Options) validate() error {
	if o.N < 3 {
		return fmt.Errorf("multivalued: need N ≥ 3, got %d", o.N)
	}
	if len(o.Crashed) > o.f() {
		return fmt.Errorf("multivalued: %d crashes exceed budget %d", len(o.Crashed), o.f())
	}
	if o.DropProb < 0 || o.DropProb > 1 {
		return fmt.Errorf("multivalued: DropProb %v out of range", o.DropProb)
	}
	return nil
}

// Result reports one execution.
type Result struct {
	// Decisions maps each live process to the value it decided.
	Decisions map[int]string
	// Winner is the candidate proposer whose value was adopted (-1 if
	// none decided within the candidate rotation).
	Winner int
	// BinaryInstances counts the binary consensus runs used.
	BinaryInstances int
	// Agreement reports a single decided value.
	Agreement bool
}

// AllLiveDecided reports whether every live process decided.
func (r *Result) AllLiveDecided(opt Options) bool {
	for p := 0; p < opt.N; p++ {
		if opt.Crashed[p] {
			continue
		}
		if _, ok := r.Decisions[p]; !ok {
			return false
		}
	}
	return true
}

// Run executes multivalued consensus over the given proposals (one per
// process).
func Run(opt Options, proposals []string) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if len(proposals) != opt.N {
		return nil, fmt.Errorf("multivalued: %d proposals for N=%d", len(proposals), opt.N)
	}
	if opt.MaxSteps <= 0 {
		opt.MaxSteps = 100000
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	res := &Result{Decisions: map[int]string{}, Winner: -1}

	// has[p][k] records whether p holds k's value. Dissemination repeats
	// before every rotation — undelivered proposals get another chance,
	// modeling "every message is eventually delivered".
	has := make([][]bool, opt.N)
	for p := range has {
		has[p] = make([]bool, opt.N)
		has[p][p] = !opt.Crashed[p]
	}
	disseminate := func() {
		for p := 0; p < opt.N; p++ {
			if opt.Crashed[p] {
				continue
			}
			for k := 0; k < opt.N; k++ {
				if opt.Crashed[k] || has[p][k] {
					continue // a dead proposer's value reaches nobody new
				}
				if rng.Float64() >= opt.DropProb {
					has[p][k] = true
				}
			}
		}
	}

	crash := map[model.PID]int{}
	for p := range opt.Crashed {
		crash[model.PID(p)] = 0
	}

	// Candidate rotations: one binary instance per proposer, repeated with
	// fresh dissemination until some instance decides 1. Ten rotations are
	// far beyond what any drop probability below 1 needs.
	const maxRotations = 10
	for rotation := 0; rotation < maxRotations && res.Winner < 0; rotation++ {
		disseminate()
		for k := 0; k < opt.N; k++ {
			inputs := make(model.Inputs, opt.N)
			for p := 0; p < opt.N; p++ {
				if !opt.Crashed[p] && has[p][k] {
					inputs[p] = model.V1
				}
			}
			box := protocols.NewBenOrDeterministic(opt.N, uint64(opt.Seed)+uint64(rotation*opt.N+k)*0x9e37+1)
			run, err := runtime.Run(box, inputs, runtime.RandomFair{}, runtime.RunOptions{
				MaxSteps:   opt.MaxSteps,
				Seed:       opt.Seed*31 + int64(rotation*opt.N+k),
				CrashAfter: crash,
			})
			if err != nil {
				return nil, err
			}
			res.BinaryInstances++
			if !run.AllLiveDecided {
				return nil, fmt.Errorf("multivalued: binary instance %d did not terminate within %d steps", k, opt.MaxSteps)
			}
			v, ok := run.DecidedValue()
			if !ok {
				return nil, fmt.Errorf("multivalued: binary instance %d violated agreement", k)
			}
			if v == model.V1 {
				// Adopted: binary validity guarantees some live process
				// input 1, i.e. held k's value; the relay rule spreads it
				// to every live process during the instance.
				res.Winner = k
				for p := 0; p < opt.N; p++ {
					if !opt.Crashed[p] {
						res.Decisions[p] = proposals[k]
					}
				}
				break
			}
		}
	}

	seen := map[string]bool{}
	for _, v := range res.Decisions {
		seen[v] = true
	}
	res.Agreement = len(seen) <= 1
	return res, nil
}
