// Package modeltest provides reusable conformance checks that any
// model.Protocol implementation must pass: determinism, non-mutation of
// input states, and applicability of every step the harness takes. Every
// protocol package runs these against its own implementation.
package modeltest

import (
	"math/rand"
	"testing"

	"github.com/flpsim/flp/internal/model"
)

// EffectfulEvents enumerates the applicable events of cfg that change the
// system state (no-op null events are dropped).
func EffectfulEvents(pr model.Protocol, cfg *model.Config) []model.Event {
	var out []model.Event
	for _, e := range model.Events(cfg) {
		if e.IsNull() && model.IsNoOp(pr, cfg, e) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// CheckConformance drives pr through a random applicable walk and verifies
// the model contract at every step: determinism (equal state and event
// yield an equal successor and identical sends), non-mutation (the source
// state's key is unchanged by Step), and harness acceptance (Apply
// succeeds, which also enforces the write-once output register).
func CheckConformance(t *testing.T, pr model.Protocol, inputs model.Inputs, steps int, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	cfg := model.MustInitial(pr, inputs)
	for i := 0; i < steps; i++ {
		evs := EffectfulEvents(pr, cfg)
		if len(evs) == 0 {
			return // quiescent
		}
		e := evs[r.Intn(len(evs))]

		before := cfg.State(e.P).Key()
		s1, m1 := pr.Step(e.P, cfg.State(e.P), e.Msg)
		s2, m2 := pr.Step(e.P, cfg.State(e.P), e.Msg)
		if cfg.State(e.P).Key() != before {
			t.Fatalf("%s: Step mutated its input state (step %d, event %s)", pr.Name(), i, e)
		}
		if s1.Key() != s2.Key() {
			t.Fatalf("%s: Step is nondeterministic in state (step %d, event %s)", pr.Name(), i, e)
		}
		if len(m1) != len(m2) {
			t.Fatalf("%s: Step is nondeterministic in sends (step %d, event %s)", pr.Name(), i, e)
		}
		for j := range m1 {
			if m1[j] != m2[j] {
				t.Fatalf("%s: Step is nondeterministic in send %d (step %d)", pr.Name(), j, i)
			}
		}

		nc, err := model.Apply(pr, cfg, e)
		if err != nil {
			t.Fatalf("%s: Apply failed at step %d: %v", pr.Name(), i, err)
		}
		cfg = nc
	}
}
