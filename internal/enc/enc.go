// Package enc provides canonical string encoding helpers used by protocol
// state implementations to build their Key() values.
//
// Configuration equality in the model checker is defined by canonical keys,
// so two states must produce the same key if and only if they are
// semantically equal. The helpers here make that easy to get right for the
// common building blocks: integers, byte values, sets, and multisets. All
// encodings are prefix-free within a composite key because every field is
// terminated by a separator that cannot occur inside an encoded field.
package enc

import (
	"sort"
	"strconv"
	"strings"
)

// Sep separates fields in a composite key. Encoded fields never contain it.
const Sep = "|"

// listSep separates elements of an encoded list. It is distinct from Sep so
// that nested encodings remain unambiguous.
const listSep = ","

// A Builder accumulates fields of a canonical key.
type Builder struct {
	sb strings.Builder
}

// Int appends a decimal integer field.
func (b *Builder) Int(v int) *Builder {
	b.sb.WriteString(strconv.Itoa(v))
	b.sb.WriteString(Sep)
	return b
}

// Uint8 appends a small unsigned integer field (e.g. a consensus value).
func (b *Builder) Uint8(v uint8) *Builder {
	b.sb.WriteString(strconv.FormatUint(uint64(v), 10))
	b.sb.WriteString(Sep)
	return b
}

// Bool appends a boolean field encoded as 0 or 1.
func (b *Builder) Bool(v bool) *Builder {
	if v {
		b.sb.WriteString("1")
	} else {
		b.sb.WriteString("0")
	}
	b.sb.WriteString(Sep)
	return b
}

// Str appends a string field. The string must not contain Sep; callers that
// need arbitrary strings should escape them first with Escape.
func (b *Builder) Str(s string) *Builder {
	b.sb.WriteString(s)
	b.sb.WriteString(Sep)
	return b
}

// IntSlice appends a slice of integers in the given order.
func (b *Builder) IntSlice(vs []int) *Builder {
	for i, v := range vs {
		if i > 0 {
			b.sb.WriteString(listSep)
		}
		b.sb.WriteString(strconv.Itoa(v))
	}
	b.sb.WriteString(Sep)
	return b
}

// IntSet appends a set of integers in sorted order, so that two sets with
// the same members encode identically regardless of insertion order.
func (b *Builder) IntSet(set map[int]bool) *Builder {
	vs := make([]int, 0, len(set))
	for v, ok := range set {
		if ok {
			vs = append(vs, v)
		}
	}
	sort.Ints(vs)
	return b.IntSlice(vs)
}

// StrSet appends a set of strings in sorted order.
func (b *Builder) StrSet(set map[string]bool) *Builder {
	vs := make([]string, 0, len(set))
	for v, ok := range set {
		if ok {
			vs = append(vs, v)
		}
	}
	sort.Strings(vs)
	for i, v := range vs {
		if i > 0 {
			b.sb.WriteString(listSep)
		}
		b.sb.WriteString(v)
	}
	b.sb.WriteString(Sep)
	return b
}

// String returns the accumulated key.
func (b *Builder) String() string { return b.sb.String() }

// escaper rewrites the separator characters; built once — a
// strings.Replacer compiles its lookup table lazily on first use and is
// safe for concurrent use, and Escape runs on every key construction.
var escaper = strings.NewReplacer("\\", "\\\\", Sep, "\\p", listSep, "\\c")

// Escape makes an arbitrary string safe for use as a key field by escaping
// the separator characters. It is injective: distinct inputs produce
// distinct outputs.
func Escape(s string) string {
	return escaper.Replace(s)
}
