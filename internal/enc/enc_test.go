package enc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderFields(t *testing.T) {
	var b Builder
	got := b.Int(3).Uint8(1).Bool(true).Str("abc").String()
	want := "3|1|1|abc|"
	if got != want {
		t.Errorf("Builder = %q, want %q", got, want)
	}
}

func TestBuilderIntSlice(t *testing.T) {
	var b Builder
	got := b.IntSlice([]int{5, 2, 9}).String()
	if got != "5,2,9|" {
		t.Errorf("IntSlice = %q, want %q", got, "5,2,9|")
	}
	var empty Builder
	if got := empty.IntSlice(nil).String(); got != "|" {
		t.Errorf("empty IntSlice = %q, want %q", got, "|")
	}
}

func TestBuilderIntSetOrderIndependent(t *testing.T) {
	var a, b Builder
	a.IntSet(map[int]bool{3: true, 1: true, 2: true})
	b.IntSet(map[int]bool{2: true, 3: true, 1: true})
	if a.String() != b.String() {
		t.Errorf("IntSet encodings differ: %q vs %q", a.String(), b.String())
	}
	if a.String() != "1,2,3|" {
		t.Errorf("IntSet = %q, want %q", a.String(), "1,2,3|")
	}
}

func TestBuilderIntSetSkipsFalse(t *testing.T) {
	var b Builder
	b.IntSet(map[int]bool{1: true, 2: false, 3: true})
	if b.String() != "1,3|" {
		t.Errorf("IntSet with false entries = %q, want %q", b.String(), "1,3|")
	}
}

func TestBuilderStrSet(t *testing.T) {
	var b Builder
	b.StrSet(map[string]bool{"z": true, "a": true, "m": false})
	if b.String() != "a,z|" {
		t.Errorf("StrSet = %q, want %q", b.String(), "a,z|")
	}
}

func TestEscapeRemovesSeparators(t *testing.T) {
	in := "a|b,c\\d"
	out := Escape(in)
	if strings.Contains(out, Sep) {
		t.Errorf("Escape(%q) = %q still contains separator", in, out)
	}
	if strings.Contains(out, ",") {
		t.Errorf("Escape(%q) = %q still contains list separator", in, out)
	}
}

func TestEscapeInjective(t *testing.T) {
	// Distinct strings must have distinct escapings; probe with quick.
	f := func(a, b string) bool {
		if a == b {
			return true
		}
		return Escape(a) != Escape(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEscapeTrickyPairs(t *testing.T) {
	// Pairs that naive escaping confuses.
	pairs := [][2]string{
		{"a|b", "a\\pb"},
		{"a,b", "a\\cb"},
		{"a\\", "a\\\\"},
		{"|", "\\p"},
	}
	for _, p := range pairs {
		if Escape(p[0]) == Escape(p[1]) {
			t.Errorf("Escape collision: %q and %q both escape to %q", p[0], p[1], Escape(p[0]))
		}
	}
}

func TestCompositeKeyUnambiguous(t *testing.T) {
	// Two different field splits must never produce equal keys.
	var a, b Builder
	a.Str("ab").Str("c")
	b.Str("a").Str("bc")
	if a.String() == b.String() {
		t.Errorf("field boundary ambiguity: %q", a.String())
	}
}
