package enc

import (
	"strings"
	"testing"
)

// FuzzEscapeInjective drives the invariant canonical keys rest on: Escape
// never emits a separator and never collides on distinct inputs that share
// a suffix/prefix relationship the replacer could confuse.
func FuzzEscapeInjective(f *testing.F) {
	seeds := []string{"", "a", "|", ",", "\\", "a|b", "x,y", "a\\|b", "\\p", "\\c", "||", "\\\\"}
	for _, a := range seeds {
		for _, b := range seeds {
			f.Add(a, b)
		}
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		ea, eb := Escape(a), Escape(b)
		if strings.Contains(ea, Sep) || strings.Contains(ea, ",") {
			t.Fatalf("Escape(%q) = %q contains a separator", a, ea)
		}
		if a != b && ea == eb {
			t.Fatalf("collision: Escape(%q) == Escape(%q) == %q", a, b, ea)
		}
		if a == b && ea != eb {
			t.Fatalf("nondeterminism: Escape(%q) gave %q and %q", a, ea, eb)
		}
	})
}

// FuzzBuilderFieldBoundaries checks that composite keys never confuse
// field boundaries whatever strings the fields hold.
func FuzzBuilderFieldBoundaries(f *testing.F) {
	f.Add("a", "bc", "ab", "c")
	f.Add("", "x", "x", "")
	f.Add("p|q", "r", "p", "q|r")
	f.Fuzz(func(t *testing.T, a1, a2, b1, b2 string) {
		if a1 == b1 && a2 == b2 {
			return
		}
		var ka, kb Builder
		ka.Str(Escape(a1)).Str(Escape(a2))
		kb.Str(Escape(b1)).Str(Escape(b2))
		if ka.String() == kb.String() {
			t.Fatalf("field-boundary collision: (%q,%q) and (%q,%q) both key to %q",
				a1, a2, b1, b2, ka.String())
		}
	})
}
