package fifo

import (
	"testing"

	"github.com/flpsim/flp/internal/model"
)

func msg(to, from model.PID, body string) model.Message {
	return model.Message{To: to, From: from, Body: body}
}

func TestSendOldestOrder(t *testing.T) {
	tr := New()
	a := msg(0, 1, "a")
	b := msg(0, 2, "b")
	c := msg(1, 2, "c")
	tr.Send(a)
	tr.Send(b)
	tr.Send(c)
	if got, ok := tr.Oldest(0); !ok || got != a {
		t.Errorf("Oldest(0) = %v, %v; want %v", got, ok, a)
	}
	if got, ok := tr.Oldest(1); !ok || got != c {
		t.Errorf("Oldest(1) = %v, %v; want %v", got, ok, c)
	}
	if _, ok := tr.Oldest(2); ok {
		t.Error("Oldest(2) found a message in an empty queue")
	}
	if tr.Pending() != 3 || tr.PendingTo(0) != 2 {
		t.Errorf("Pending=%d PendingTo(0)=%d, want 3, 2", tr.Pending(), tr.PendingTo(0))
	}
}

func TestDeliverRemovesOldestInstance(t *testing.T) {
	tr := New()
	m := msg(0, 1, "dup")
	tr.Send(m)
	tr.Send(msg(0, 2, "mid"))
	tr.Send(m) // second instance of the same message value
	if err := tr.Deliver(m); err != nil {
		t.Fatal(err)
	}
	// The first (oldest) instance is gone; "mid" is now oldest.
	if got, _ := tr.Oldest(0); got.Body != "mid" {
		t.Errorf("after Deliver, Oldest = %v, want the mid message", got)
	}
	if tr.PendingTo(0) != 2 {
		t.Errorf("PendingTo = %d, want 2", tr.PendingTo(0))
	}
	if err := tr.Deliver(msg(0, 9, "ghost")); err == nil {
		t.Error("delivering an absent message succeeded")
	}
}

func TestSeqAndPendingList(t *testing.T) {
	tr := New()
	tr.Send(msg(1, 0, "x"))
	tr.Send(msg(1, 0, "y"))
	s, ok := tr.OldestSeq(1)
	if !ok || s != 0 {
		t.Errorf("OldestSeq = %d, %v; want 0, true", s, ok)
	}
	list := tr.PendingList(1)
	if len(list) != 2 || list[0].Body != "x" || list[1].Body != "y" {
		t.Errorf("PendingList = %v", list)
	}
	if _, ok := tr.OldestSeq(0); ok {
		t.Error("OldestSeq on empty queue reported a message")
	}
}

func TestAdvance(t *testing.T) {
	tr := New()
	m := msg(0, 1, "in")
	tr.Send(m)
	e := model.Deliver(m)
	out := []model.Message{msg(1, 0, "out1"), msg(2, 0, "out2")}
	if err := tr.Advance(e, out); err != nil {
		t.Fatal(err)
	}
	if tr.PendingTo(0) != 0 || tr.PendingTo(1) != 1 || tr.PendingTo(2) != 1 {
		t.Errorf("queues after Advance: %d %d %d", tr.PendingTo(0), tr.PendingTo(1), tr.PendingTo(2))
	}
	// Null events only enqueue.
	if err := tr.Advance(model.NullEvent(1), []model.Message{msg(0, 1, "z")}); err != nil {
		t.Fatal(err)
	}
	if tr.PendingTo(0) != 1 {
		t.Errorf("null Advance did not enqueue send")
	}
	// Advancing with an absent delivery fails.
	if err := tr.Advance(model.Deliver(msg(0, 5, "none")), nil); err == nil {
		t.Error("Advance with absent delivery succeeded")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := New()
	m := msg(0, 1, "a")
	tr.Send(m)
	cl := tr.Clone()
	if err := cl.Deliver(m); err != nil {
		t.Fatal(err)
	}
	if tr.PendingTo(0) != 1 {
		t.Error("Deliver on clone affected original")
	}
	cl.Send(msg(1, 0, "b"))
	if tr.PendingTo(1) != 0 {
		t.Error("Send on clone affected original")
	}
}

func TestNewFromConfigMirrorsBuffer(t *testing.T) {
	// Build a configuration with buffered messages via a tiny protocol.
	pr := senderProto{}
	c := model.MustInitial(pr, model.Inputs{model.V0, model.V0})
	c1 := model.MustApply(pr, c, model.NullEvent(0))
	tr := NewFromConfig(c1)
	if tr.Pending() != c1.Buffer().Len() {
		t.Errorf("tracker has %d pending, buffer has %d", tr.Pending(), c1.Buffer().Len())
	}
	m, ok := tr.Oldest(1)
	if !ok || !c1.Buffer().Contains(m) {
		t.Errorf("tracker message %v not in buffer", m)
	}
}

// senderProto broadcasts once; used to populate a buffer.
type senderProto struct{}

type senderState struct{ sent bool }

func (s senderState) Key() string {
	if s.sent {
		return "1"
	}
	return "0"
}
func (s senderState) Output() model.Output { return model.None }

func (senderProto) Name() string                            { return "sender" }
func (senderProto) N() int                                  { return 2 }
func (senderProto) Init(model.PID, model.Value) model.State { return senderState{} }
func (senderProto) Step(p model.PID, s model.State, _ *model.Message) (model.State, []model.Message) {
	st := s.(senderState)
	if !st.sent {
		return senderState{sent: true}, model.BroadcastOthers(p, 2, "hello")
	}
	return st, nil
}
