// Package fifo tracks send-order information on top of the model's untimed
// message buffer. The paper's Theorem 1 construction orders the buffer "by
// the time the messages were sent, earliest first" to argue admissibility;
// the adversary and the fair schedulers of the runtime both need that
// ordering, while valency analysis must not see it (timing would fragment
// configuration equality). A Tracker mirrors a configuration's buffer with
// sequence numbers, and is advanced alongside it.
package fifo

import (
	"fmt"

	"github.com/flpsim/flp/internal/model"
)

// entry is one in-flight message instance with its send sequence number.
type entry struct {
	msg model.Message
	seq uint64
}

// Tracker maintains, per destination process, the pending messages in send
// order.
type Tracker struct {
	queues  map[model.PID][]entry
	nextSeq uint64
}

// New returns an empty tracker for a system whose buffer is empty (an
// initial configuration).
func New() *Tracker {
	return &Tracker{queues: make(map[model.PID][]entry)}
}

// NewFromConfig returns a tracker primed with the configuration's current
// buffer contents. Their true send order is unknown, so they are enqueued
// in the buffer's canonical order; this only matters when attaching a
// tracker mid-run.
func NewFromConfig(c *model.Config) *Tracker {
	t := New()
	for _, m := range c.Buffer().Messages() {
		for i := 0; i < c.Buffer().Count(m); i++ {
			t.Send(m)
		}
	}
	return t
}

// Send records a newly sent message at the back of its destination's queue.
func (t *Tracker) Send(m model.Message) {
	t.queues[m.To] = append(t.queues[m.To], entry{msg: m, seq: t.nextSeq})
	t.nextSeq++
}

// Oldest returns the earliest-sent pending message for p.
func (t *Tracker) Oldest(p model.PID) (model.Message, bool) {
	q := t.queues[p]
	if len(q) == 0 {
		return model.Message{}, false
	}
	return q[0].msg, true
}

// OldestSeq returns the sequence number of the earliest-sent pending
// message for p, for lag measurements.
func (t *Tracker) OldestSeq(p model.PID) (uint64, bool) {
	q := t.queues[p]
	if len(q) == 0 {
		return 0, false
	}
	return q[0].seq, true
}

// PendingTo returns the number of messages pending for p.
func (t *Tracker) PendingTo(p model.PID) int { return len(t.queues[p]) }

// Pending returns the total number of pending messages.
func (t *Tracker) Pending() int {
	n := 0
	for _, q := range t.queues {
		n += len(q)
	}
	return n
}

// PendingList returns the pending messages for p in send order.
func (t *Tracker) PendingList(p model.PID) []model.Message {
	q := t.queues[p]
	out := make([]model.Message, len(q))
	for i, e := range q {
		out[i] = e.msg
	}
	return out
}

// Deliver removes the oldest pending instance equal to m from m.To's
// queue. The oldest instance is the right one to account against: under
// multiset semantics equal copies are interchangeable, and charging the
// oldest keeps the "earliest first" admissibility discipline honest.
func (t *Tracker) Deliver(m model.Message) error {
	q := t.queues[m.To]
	for i, e := range q {
		if e.msg == m {
			t.queues[m.To] = append(append([]entry(nil), q[:i]...), q[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("fifo: no pending instance of %s", m)
}

// Advance applies an event's effects: the delivered message (if any) is
// removed and the step's sends are enqueued. Use with model.ApplyTraced.
func (t *Tracker) Advance(e model.Event, sends []model.Message) error {
	if e.Msg != nil {
		if err := t.Deliver(*e.Msg); err != nil {
			return err
		}
	}
	for _, m := range sends {
		t.Send(m)
	}
	return nil
}

// Clone returns a deep copy.
func (t *Tracker) Clone() *Tracker {
	c := &Tracker{queues: make(map[model.PID][]entry, len(t.queues)), nextSeq: t.nextSeq}
	for p, q := range t.queues {
		c.queues[p] = append([]entry(nil), q...)
	}
	return c
}
