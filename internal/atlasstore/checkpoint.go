package atlasstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
)

// Run checkpoints: the durable form of a distributed exploration's
// coordinator state at a level boundary. The level-synchronous loop has a
// natural consistent cut at the top of every level — all earlier levels are
// fully expanded, deduped, and adopted; the pending level has been admitted
// but nothing of it has been expanded — so the whole run is recoverable
// from just the admitted node table (parent links, via events, canonical
// keys) plus three scalars: where the pending level starts, whether the
// ledger was already truncated, and how many nodes had been expanded. A
// coordinator killed anywhere past the boundary restarts from it and
// produces byte-identical counts, visit order, and witness schedules,
// re-expanding nothing before the checkpointed level.
//
// The artifact discipline is the atlas store's: checksummed flat binary,
// content-addressed filename, tmp+fsync+rename writes, and corruption
// answered by detect-log-delete so a damaged checkpoint degrades to a
// fresh start, never a wrong resume.

// ckMagic identifies a run-checkpoint artifact (distinct from atlas
// artifacts, which use magic "FLPATLS").
var ckMagic = [8]byte{'F', 'L', 'P', 'C', 'K', 'P', 'T', 1}

// ckFormatVersion is the checkpoint layout version; a mismatch is treated
// like corruption (delete, restart from scratch).
const ckFormatVersion uint32 = 1

// ckFlagTruncated records that the run's ledger had already observed a
// budget or depth cutoff at the boundary.
const ckFlagTruncated uint32 = 1 << 0

// RunKey identifies one resumable exploration: the problem (protocol, n,
// root, avoid filter) plus the bounds. Unlike atlas lineages the bounds are
// part of the identity — a checkpoint is a mid-flight cursor for one exact
// run, not a reusable artifact — while the cluster layout (workers, shards,
// replicas) is deliberately excluded: results are byte-identical across
// layouts, so a checkpoint taken on one cluster resumes on another.
type RunKey struct {
	Protocol string
	N        int
	// RootKey is the exploration root's binary canonical key
	// (model.Config.KeyBytes), prefix already applied.
	RootKey []byte
	// Avoid is the avoided event's wire key (model.Event.Key), "" when the
	// run has no filter.
	Avoid      string
	MaxConfigs int
	MaxDepth   int
}

// RunCheckpoint is a decoded checkpoint: the admitted node table as a
// truncated AtlasSnapshot (no successor edges — SuccStart is [0] — so it
// passes snapshot validation and replays through RestoreAtlasBuilder), the
// index of the first pending-level node, the ledger's truncation flag, and
// the cumulative count of expanded nodes across completed levels.
type RunCheckpoint struct {
	Snap      *explore.AtlasSnapshot
	Start     int
	Truncated bool
	Expanded  int
}

// CheckpointStats is a snapshot of a checkpoint store's operation
// counters.
type CheckpointStats struct {
	// Writes are boundary checkpoints persisted.
	Writes int64
	// Resumes are loads that found a matching checkpoint to restart from.
	Resumes int64
	// Corrupt counts checkpoints that failed validation (checksum, format,
	// identity, or replay) and were deleted — the run restarts from scratch.
	Corrupt int64
	// Skips are resume requests that found no checkpoint (fresh start).
	Skips int64
}

// CheckpointStore is a directory of run checkpoints, one file per RunKey.
// It is safe for concurrent use; operations on one key serialize on a
// per-key lock. Write failures are logged, never fatal — a run that cannot
// checkpoint still completes, it just cannot be resumed.
type CheckpointStore struct {
	dir  string
	logf func(format string, args ...any)

	mu    sync.Mutex
	locks map[string]*sync.Mutex

	writes, resumes, corrupt, skips atomic.Int64
}

// OpenCheckpoints returns a checkpoint store rooted at dir, creating the
// directory if needed.
func OpenCheckpoints(dir string) (*CheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("atlasstore: checkpoints: %w", err)
	}
	return &CheckpointStore{dir: dir, logf: log.Printf, locks: make(map[string]*sync.Mutex)}, nil
}

// SetLog redirects the store's diagnostics; nil silences them.
func (s *CheckpointStore) SetLog(f func(format string, args ...any)) {
	if f == nil {
		f = func(string, ...any) {}
	}
	s.logf = f
}

// Dir returns the store's root directory.
func (s *CheckpointStore) Dir() string { return s.dir }

// Stats returns the cumulative operation counters.
func (s *CheckpointStore) Stats() CheckpointStats {
	return CheckpointStats{
		Writes:  s.writes.Load(),
		Resumes: s.resumes.Load(),
		Corrupt: s.corrupt.Load(),
		Skips:   s.skips.Load(),
	}
}

// file is the content-addressed checkpoint path: a SHA-256 over the
// length-prefixed identity fields.
func (s *CheckpointStore) file(key RunKey) string {
	h := sha256.New()
	var lenb [8]byte
	writeField := func(p []byte) {
		binary.LittleEndian.PutUint64(lenb[:], uint64(len(p)))
		h.Write(lenb[:])
		h.Write(p)
	}
	writeField([]byte(key.Protocol))
	binary.LittleEndian.PutUint64(lenb[:], uint64(key.N))
	h.Write(lenb[:])
	writeField(key.RootKey)
	writeField([]byte(key.Avoid))
	binary.LittleEndian.PutUint64(lenb[:], uint64(key.MaxConfigs))
	h.Write(lenb[:])
	binary.LittleEndian.PutUint64(lenb[:], uint64(key.MaxDepth))
	h.Write(lenb[:])
	return filepath.Join(s.dir, hex.EncodeToString(h.Sum(nil))+".ckpt")
}

func (s *CheckpointStore) lockKey(path string) func() {
	s.mu.Lock()
	l, ok := s.locks[path]
	if !ok {
		l = &sync.Mutex{}
		s.locks[path] = l
	}
	s.mu.Unlock()
	l.Lock()
	return l.Unlock
}

// Save persists a boundary checkpoint atomically (temp file, fsync,
// rename), superseding any previous checkpoint for the key. Failures are
// logged, never fatal.
func (s *CheckpointStore) Save(key RunKey, ck *RunCheckpoint) {
	path := s.file(key)
	defer s.lockKey(path)()
	data := encodeCheckpoint(key, ck)
	tmp, err := os.CreateTemp(s.dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		s.logf("atlasstore: checkpoint write %s: %v", path, err)
		return
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		s.logf("atlasstore: checkpoint write %s: %v", path, err)
		return
	}
	s.writes.Add(1)
}

// Load reads the key's checkpoint: nil when none exists (counted as a
// skip — the resume degrades to a fresh start) or when the file fails
// validation (counted as corrupt, logged, and deleted so the rerun starts
// clean). A non-nil result has passed checksum, format, identity, and
// shape checks; the caller still replays it through RestoreAtlasBuilder,
// reporting a replay failure back via Discard.
func (s *CheckpointStore) Load(key RunKey) *RunCheckpoint {
	path := s.file(key)
	defer s.lockKey(path)()
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.logf("atlasstore: checkpoint read %s: %v", path, err)
		}
		s.skips.Add(1)
		return nil
	}
	ck, err := decodeCheckpoint(key, data)
	if err != nil {
		s.drop(path, err)
		return nil
	}
	s.resumes.Add(1)
	return ck
}

// Discard deletes the key's checkpoint because post-load validation
// (snapshot replay) rejected it; counted as corruption.
func (s *CheckpointStore) Discard(key RunKey, err error) {
	path := s.file(key)
	defer s.lockKey(path)()
	s.drop(path, err)
}

// Clear removes the key's checkpoint after a run completes — a finished
// run has nothing to resume.
func (s *CheckpointStore) Clear(key RunKey) {
	path := s.file(key)
	defer s.lockKey(path)()
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		s.logf("atlasstore: checkpoint clear %s: %v", path, err)
	}
}

// drop logs and deletes a damaged checkpoint; the run restarts from
// scratch. Callers hold the key lock.
func (s *CheckpointStore) drop(path string, err error) {
	s.corrupt.Add(1)
	s.logf("atlasstore: checkpoint %s: %v (deleting; restarting from scratch)", filepath.Base(path), err)
	if rmErr := os.Remove(path); rmErr != nil && !os.IsNotExist(rmErr) {
		s.logf("atlasstore: remove %s: %v", path, rmErr)
	}
}

// encodeCheckpoint renders a checkpoint to its on-disk bytes: fixed
// header, identity fields, event dictionary, node columns, key table,
// CRC-32C trailer — the atlas artifact's discipline with the checkpoint's
// scalars in place of edge columns.
func encodeCheckpoint(key RunKey, ck *RunCheckpoint) []byte {
	snap := ck.Snap
	dict := make([]model.Event, 0, 16)
	dictIdx := make(map[string]uint32)
	parentViaIdx := make([]uint32, len(snap.ParentVia))
	for i, e := range snap.ParentVia {
		k := e.Key()
		j, ok := dictIdx[k]
		if !ok {
			j = uint32(len(dict))
			dict = append(dict, e)
			dictIdx[k] = j
		}
		parentViaIdx[i] = j
	}

	var b []byte
	b = append(b, ckMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, ckFormatVersion)
	var flags uint32
	if ck.Truncated {
		flags |= ckFlagTruncated
	}
	b = binary.LittleEndian.AppendUint32(b, flags)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(snap.Depth))) // V
	b = binary.LittleEndian.AppendUint64(b, uint64(ck.Start))
	b = binary.LittleEndian.AppendUint64(b, uint64(ck.Expanded))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(dict))) // D
	b = appendBytes(b, []byte(key.Protocol))
	b = binary.LittleEndian.AppendUint64(b, uint64(key.N))
	b = appendBytes(b, key.RootKey)
	b = appendBytes(b, []byte(key.Avoid))
	b = binary.LittleEndian.AppendUint64(b, uint64(key.MaxConfigs))
	b = binary.LittleEndian.AppendUint64(b, uint64(key.MaxDepth))

	for _, e := range dict {
		if e.Msg == nil {
			b = append(b, 0)
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(e.P)))
		} else {
			b = append(b, 1)
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(e.P)))
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(e.Msg.To)))
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(e.Msg.From)))
			b = appendBytes(b, []byte(e.Msg.Body))
		}
	}

	b = appendI32s(b, snap.Depth)
	b = appendI32s(b, snap.Parent)
	b = appendU32s(b, parentViaIdx)

	b = binary.LittleEndian.AppendUint64(b, 0)
	off := uint64(0)
	for _, k := range snap.Keys {
		off += uint64(len(k))
		b = binary.LittleEndian.AppendUint64(b, off)
	}
	for _, k := range snap.Keys {
		b = append(b, k...)
	}

	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
	return b
}

// decodeCheckpoint parses and validates on-disk bytes against the
// requested key. Every failure is a *corruptError; the store logs, deletes,
// and the run restarts from scratch.
func decodeCheckpoint(key RunKey, b []byte) (*RunCheckpoint, error) {
	if len(b) < len(ckMagic)+4+4+4 {
		return nil, corruptf("short checkpoint (%d bytes)", len(b))
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, corruptf("checksum mismatch")
	}
	r := &reader{b: body}
	var m [8]byte
	copy(m[:], r.bytes(8))
	if r.err != nil || m != ckMagic {
		return nil, corruptf("bad magic")
	}
	if v := r.u32(); v != ckFormatVersion {
		return nil, corruptf("checkpoint format version %d (want %d)", v, ckFormatVersion)
	}
	flags := r.u32()
	V := r.count()
	start := r.count()
	expanded := r.count()
	D := r.count()
	protoName := string(r.blob())
	// The identity bounds are run parameters, not file-sized counts — a
	// budget of 10M is plausible in a file of 200 bytes — so they bypass
	// count()'s file-length clamp and are validated by the identity
	// cross-check below instead.
	n := int(r.u64())
	rootKey := r.blob()
	avoid := string(r.blob())
	maxConfigs := int(r.u64())
	maxDepth := int(r.u64())
	if r.err != nil {
		return nil, corruptf("truncated header")
	}
	if V == 0 || start < 1 || start >= V {
		return nil, corruptf("implausible counts V=%d start=%d", V, start)
	}
	if protoName != key.Protocol || n != key.N || !bytes.Equal(rootKey, key.RootKey) ||
		avoid != key.Avoid || maxConfigs != key.MaxConfigs || maxDepth != key.MaxDepth {
		return nil, corruptf("checkpoint identity does not match the requested run")
	}

	dict := make([]model.Event, D)
	for i := range dict {
		switch kind := r.u8(); kind {
		case 0:
			dict[i] = model.Event{P: model.PID(r.i64())}
		case 1:
			p := model.PID(r.i64())
			to := model.PID(r.i64())
			from := model.PID(r.i64())
			body := string(r.blob())
			msg := model.Message{To: to, From: from, Body: body}
			dict[i] = model.Event{P: p, Msg: &msg}
		default:
			if r.err == nil {
				return nil, corruptf("unknown event kind %d", kind)
			}
		}
		if r.err != nil {
			return nil, corruptf("truncated event dictionary")
		}
	}

	depth := r.i32s(V)
	parent := r.i32s(V)
	parentViaIdx := r.u32s(V)
	keyOff := r.u64s(V + 1)
	if r.err != nil {
		return nil, corruptf("truncated columns")
	}
	blobLen := keyOff[V]
	if blobLen > uint64(len(r.b)-r.off) {
		return nil, corruptf("key blob overruns file")
	}
	keyBlob := r.bytes(int(blobLen))
	if r.err != nil || r.off != len(r.b) {
		return nil, corruptf("trailing or missing bytes")
	}

	keys := make([][]byte, V)
	for i := range keys {
		lo, hi := keyOff[i], keyOff[i+1]
		if lo > hi || hi > blobLen {
			return nil, corruptf("key offsets not monotonic")
		}
		keys[i] = keyBlob[lo:hi]
	}
	parentVia, err := viaColumn(parentViaIdx, dict)
	if err != nil {
		return nil, err
	}
	// Boundary invariant: admission order is breadth-first (depths
	// non-decreasing) and nodes [start, V) are exactly the pending level —
	// one contiguous run at the deepest depth, starting right after a node
	// one level shallower.
	for i := 1; i < V; i++ {
		if depth[i] < depth[i-1] {
			return nil, corruptf("node depths not in admission order at %d", i)
		}
	}
	if depth[start] != depth[V-1] || depth[start-1] != depth[start]-1 {
		return nil, corruptf("pending level [%d,%d) is not a level boundary", start, V)
	}
	snap := &explore.AtlasSnapshot{
		Depth: depth, Parent: parent, ParentVia: parentVia,
		SuccStart: []int32{0}, Keys: keys,
	}
	return &RunCheckpoint{
		Snap:      snap,
		Start:     start,
		Truncated: flags&ckFlagTruncated != 0,
		Expanded:  expanded,
	}, nil
}
