package atlasstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
)

// Store is a directory of atlas artifacts, one per exploration lineage.
// A lineage is (protocol registry name, process count, root binary
// canonical key) — deliberately *not* the exploration bounds: the artifact
// holds the deepest/widest state ever computed for that lineage, and every
// request's bounds are resolved against the artifact header. That is what
// makes the two store behaviors fall out of one file: a complete artifact
// answers any budget that covers it (and refuses any that does not,
// without rebuilding), and a truncated artifact carries its frontier so
// the next deeper request resumes instead of re-exploring. Layout and
// semantic versioning live in the artifact header (DESIGN.md §9); a
// version mismatch is handled exactly like corruption — delete, rebuild.
//
// A Store implements explore.AtlasBackend and is safe for concurrent use;
// requests for the same lineage serialize on a per-lineage lock (the
// disk-level analogue of the cache's singleflight), requests for
// different lineages proceed independently.
type Store struct {
	dir  string
	logf func(format string, args ...any)

	mu    sync.Mutex
	locks map[string]*sync.Mutex

	hits, misses, resumes, evictions, corrupt, refused atomic.Int64
}

// Stats is a snapshot of the store's operation counters.
type Stats struct {
	// Hits are requests answered by loading a complete artifact.
	Hits int64
	// Misses are requests that found no artifact and built from scratch
	// (persisting the result, complete or truncated).
	Misses int64
	// Resumes are requests that restored a truncated artifact's frontier
	// and extended it instead of re-exploring.
	Resumes int64
	// Evictions are artifact files replaced by a newer state (truncated →
	// complete, or truncated → deeper truncated).
	Evictions int64
	// Corrupt counts artifacts that failed checksum/format validation and
	// were deleted for rebuild.
	Corrupt int64
	// Refused are requests answered with the complete-or-refused
	// contract's refusal — including persistent refusals decided from a
	// stored artifact's header without re-exploring.
	Refused int64
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("atlasstore: %w", err)
	}
	return &Store{dir: dir, logf: log.Printf, locks: make(map[string]*sync.Mutex)}, nil
}

// SetLog redirects the store's diagnostics (corruption, I/O failures);
// nil silences them.
func (s *Store) SetLog(f func(format string, args ...any)) {
	if f == nil {
		f = func(string, ...any) {}
	}
	s.logf = f
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the cumulative operation counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Resumes:   s.resumes.Load(),
		Evictions: s.evictions.Load(),
		Corrupt:   s.corrupt.Load(),
		Refused:   s.refused.Load(),
	}
}

// lineageFile is the content-addressed artifact path: a SHA-256 over the
// self-describing protocol name, process count, and the root's binary
// canonical key. Registry names are stable identities and gen: protocol
// names encode their full specification, so equal digests mean equal
// exploration problems.
func (s *Store) lineageFile(pr model.Protocol, root *model.Config) string {
	h := sha256.New()
	name := pr.Name()
	var lenb [8]byte
	binary.LittleEndian.PutUint64(lenb[:], uint64(len(name)))
	h.Write(lenb[:])
	h.Write([]byte(name))
	binary.LittleEndian.PutUint64(lenb[:], uint64(pr.N()))
	h.Write(lenb[:])
	h.Write(root.KeyBytes())
	return filepath.Join(s.dir, hex.EncodeToString(h.Sum(nil))+".atlas")
}

// lockLineage serializes work on one artifact file.
func (s *Store) lockLineage(path string) func() {
	s.mu.Lock()
	l, ok := s.locks[path]
	if !ok {
		l = &sync.Mutex{}
		s.locks[path] = l
	}
	s.mu.Unlock()
	l.Lock()
	return l.Unlock
}

// GetAtlas implements explore.AtlasBackend: answer the atlas request from
// disk when possible, build-and-persist when not, honouring BuildAtlas's
// complete-or-refused contract exactly. Store trouble (unwritable
// directory, I/O errors) degrades to building in memory — the store never
// fails a query it could answer by computing.
func (s *Store) GetAtlas(pr model.Protocol, root *model.Config, opt explore.Options) (*explore.Atlas, bool) {
	opt = opt.Normalized()
	if opt.MaxDepth != 0 || opt.MaxConfigs >= math.MaxInt32 {
		// Mirror BuildAtlas's refusals without touching disk: depth-bounded
		// atlases do not exist and the id space is int32.
		s.refused.Add(1)
		return nil, false
	}
	path := s.lineageFile(pr, root)
	defer s.lockLineage(path)()

	art := s.load(pr, root, path)
	if art != nil && art.Snap.Complete {
		if art.Snap.Len() > opt.MaxConfigs {
			// Persistent refusal, decided from the header: the exhausted
			// reachable set is known to exceed this budget.
			s.refused.Add(1)
			return nil, false
		}
		a, err := explore.LoadAtlas(pr, root, opt, art.Snap)
		if err != nil {
			s.dropCorrupt(path, err)
		} else {
			s.hits.Add(1)
			return a, true
		}
		art = nil
	}

	var b *explore.AtlasBuilder
	resumed := false
	if art != nil { // truncated artifact: resume from its frontier
		rb, err := explore.RestoreAtlasBuilder(pr, root, art.Snap)
		if err != nil {
			s.dropCorrupt(path, err)
		} else {
			b, resumed = rb, true
		}
	}
	if b == nil {
		b = explore.NewAtlasBuilder(pr, root)
	}
	// Each request lands in exactly one outcome counter: hit (loaded),
	// resume (frontier extended), miss (built from scratch), refused
	// (answered without productive work). Whether a miss or resume ends
	// in an atlas or a refusal is visible in the returned ok, not double-
	// counted here.
	grew := b.Extend(opt) > 0
	switch {
	case resumed && grew:
		s.resumes.Add(1)
	case resumed:
		s.refused.Add(1) // restored state already saturates this budget
	default:
		s.misses.Add(1)
	}
	if !b.Complete() {
		// Persist the truncated state with its frontier so the next
		// bigger-budget request resumes instead of re-exploring.
		if grew || !resumed {
			s.save(path, pr, root, b.Snapshot(), resumed)
		}
		return nil, false
	}
	a, ok := b.Finish(opt)
	if !ok {
		return nil, false
	}
	if grew || !resumed {
		// Persist the finished atlas — distance columns included, so the
		// next process warm-loads without running the backward passes.
		s.save(path, pr, root, a.Snapshot(), resumed)
	}
	return a, true
}

// DeepenStats reports what one Deepen call did to a lineage's artifact.
type DeepenStats struct {
	// Nodes is the number of admitted configurations after the call.
	Nodes int
	// Expanded is the number of configurations whose successor lists are
	// closed after the call.
	Expanded int
	// NewlyExpanded is the number of configurations expanded *by this
	// call* — zero when the artifact already covered the request, and
	// never includes re-expansion of previously persisted depths.
	NewlyExpanded int
	// Complete reports that the reachable set is exhausted.
	Complete bool
	// Resumed reports that the call started from a persisted frontier
	// rather than from scratch.
	Resumed bool
}

// Deepen is the incremental-deepening entry point: explore the lineage's
// reachable graph under opt's bounds (opt.MaxDepth > 0 is meaningful
// here, unlike GetAtlas), resuming from the persisted frontier when an
// artifact exists, and persist the extended state. A depth-d artifact
// deepened to d+k expands exactly the nodes at depths d..d+k-1 — nothing
// below d is re-expanded — and the resulting state is byte-identical to a
// one-shot depth-(d+k) exploration. The returned snapshot is the
// persisted state.
func (s *Store) Deepen(pr model.Protocol, root *model.Config, opt explore.Options) (*explore.AtlasSnapshot, DeepenStats, error) {
	opt = opt.Normalized()
	path := s.lineageFile(pr, root)
	defer s.lockLineage(path)()

	var b *explore.AtlasBuilder
	var st DeepenStats
	if art := s.load(pr, root, path); art != nil {
		if art.Snap.Complete {
			// Exhausted: nothing a deeper bound could add.
			s.hits.Add(1)
			return art.Snap, DeepenStats{
				Nodes: art.Snap.Len(), Expanded: art.Snap.Expanded(),
				Complete: true, Resumed: true,
			}, nil
		}
		rb, err := explore.RestoreAtlasBuilder(pr, root, art.Snap)
		if err != nil {
			s.dropCorrupt(path, err)
		} else {
			b, st.Resumed = rb, true
		}
	}
	if b == nil {
		b = explore.NewAtlasBuilder(pr, root)
	}
	st.NewlyExpanded = b.Extend(opt)
	st.Nodes, st.Expanded, st.Complete = b.Len(), b.Expanded(), b.Complete()
	if st.Resumed {
		if st.NewlyExpanded > 0 {
			s.resumes.Add(1)
		} else {
			s.hits.Add(1)
		}
	} else {
		s.misses.Add(1)
	}
	var snap *explore.AtlasSnapshot
	if st.Complete {
		// Exhausted under the depth bound: finish into a real atlas so the
		// persisted artifact carries distance columns and GetAtlas can
		// warm-load it.
		a, ok := b.Finish(explore.Options{MaxConfigs: opt.MaxConfigs, Workers: opt.Workers})
		if !ok {
			return nil, st, fmt.Errorf("atlasstore: complete builder refused to finish")
		}
		snap = a.Snapshot()
	} else {
		snap = b.Snapshot()
	}
	if st.NewlyExpanded > 0 || !st.Resumed {
		s.save(path, pr, root, snap, st.Resumed)
	}
	return snap, st, nil
}

// load reads and validates the lineage's artifact; nil when absent,
// corrupt (deleted for rebuild), or not this lineage's content.
func (s *Store) load(pr model.Protocol, root *model.Config, path string) *artifact {
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.logf("atlasstore: read %s: %v", path, err)
		}
		return nil
	}
	art, err := decodeArtifact(data)
	if err != nil {
		s.dropCorrupt(path, err)
		return nil
	}
	if art.ProtoName != pr.Name() || art.N != pr.N() || !bytes.Equal(art.RootKey, root.KeyBytes()) {
		// The file's content-addressed name disagrees with its header —
		// only possible through corruption or tampering.
		s.dropCorrupt(path, fmt.Errorf("artifact identity does not match its lineage"))
		return nil
	}
	return art
}

// dropCorrupt logs and deletes a damaged artifact so the next request
// rebuilds it.
func (s *Store) dropCorrupt(path string, err error) {
	s.corrupt.Add(1)
	s.logf("atlasstore: %s: %v (deleting for rebuild)", filepath.Base(path), err)
	if rmErr := os.Remove(path); rmErr != nil && !os.IsNotExist(rmErr) {
		s.logf("atlasstore: remove %s: %v", path, rmErr)
	}
}

// save atomically writes the artifact: temp file in the same directory,
// fsync, rename. replace notes that an older artifact is being
// superseded (counted as an eviction). Failures are logged, never fatal —
// the in-memory result is still correct.
func (s *Store) save(path string, pr model.Protocol, root *model.Config, snap *explore.AtlasSnapshot, replace bool) {
	data := encodeArtifact(pr.Name(), pr.N(), root.KeyBytes(), snap)
	tmp, err := os.CreateTemp(s.dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		s.logf("atlasstore: write %s: %v", path, err)
		return
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		s.logf("atlasstore: write %s: %v", path, err)
		return
	}
	if replace {
		s.evictions.Add(1)
	}
}
