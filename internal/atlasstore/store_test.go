package atlasstore_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/flpsim/flp/internal/atlasstore"
	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

const testBudget = 3000

func fixture(t *testing.T) (model.Protocol, *model.Config) {
	t.Helper()
	pr := protocols.NewNaiveMajority(3)
	return pr, model.MustInitial(pr, model.Inputs{0, 1, 1})
}

func openStore(t *testing.T, dir string) *atlasstore.Store {
	t.Helper()
	s, err := atlasstore.Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	s.SetLog(t.Logf)
	return s
}

// artifactPath returns the single artifact in dir (the tests work one
// lineage at a time).
func artifactPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.atlas"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one artifact in %s, got %v (err %v)", dir, matches, err)
	}
	return matches[0]
}

// TestStoreColdThenWarm: the first request builds and persists, the
// second — through a fresh Store, as after a process restart — loads,
// and both atlases answer identically.
func TestStoreColdThenWarm(t *testing.T) {
	pr, root := fixture(t)
	dir := t.TempDir()
	opt := explore.Options{MaxConfigs: testBudget}

	cold := openStore(t, dir)
	a1, ok := cold.GetAtlas(pr, root, opt)
	if !ok {
		t.Fatal("cold GetAtlas refused a buildable atlas")
	}
	if st := cold.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("cold stats = %+v, want one miss", st)
	}

	warm := openStore(t, dir)
	a2, ok := warm.GetAtlas(pr, root, opt)
	if !ok {
		t.Fatal("warm GetAtlas refused a persisted atlas")
	}
	if st := warm.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("warm stats = %+v, want one hit", st)
	}
	if a1.Len() != a2.Len() || a1.Edges() != a2.Edges() {
		t.Fatalf("warm atlas differs in size: %d/%d nodes, %d/%d edges", a1.Len(), a2.Len(), a1.Edges(), a2.Edges())
	}
	c1, c2 := a1.Census(), a2.Census()
	for v, n := range c1 {
		if c2[v] != n {
			t.Fatalf("census[%s] = %d cold, %d warm", v, n, c2[v])
		}
	}
	for id := int32(0); id < int32(a1.Len()); id++ {
		if a1.ValencyAt(id) != a2.ValencyAt(id) {
			t.Fatalf("node %d: valency %s cold, %s warm", id, a1.ValencyAt(id), a2.ValencyAt(id))
		}
	}
}

// TestStoreRefusals: bounds-refusals mirror BuildAtlas without touching
// disk, and a complete artifact answers an over-budget request as a
// persistent refusal straight from its header.
func TestStoreRefusals(t *testing.T) {
	pr, root := fixture(t)
	dir := t.TempDir()
	s := openStore(t, dir)
	opt := explore.Options{MaxConfigs: testBudget}

	if _, ok := s.GetAtlas(pr, root, explore.Options{MaxConfigs: testBudget, MaxDepth: 3}); ok {
		t.Fatal("store built a depth-bounded atlas; BuildAtlas's contract refuses those")
	}
	if st := s.Stats(); st.Refused != 1 {
		t.Fatalf("stats = %+v, want one refusal", st)
	}

	a, ok := s.GetAtlas(pr, root, opt)
	if !ok {
		t.Fatal("GetAtlas refused a buildable atlas")
	}
	// Over-budget against the now-complete artifact: refusal from the
	// header, artifact untouched.
	before, err := os.ReadFile(artifactPath(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetAtlas(pr, root, explore.Options{MaxConfigs: a.Len() - 1}); ok {
		t.Fatal("store served an atlas larger than the request's budget")
	}
	if st := s.Stats(); st.Refused != 2 {
		t.Fatalf("stats = %+v, want two refusals", st)
	}
	after, err := os.ReadFile(artifactPath(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("persistent refusal rewrote the artifact")
	}
}

// TestStoreBudgetResume: a budget-truncated artifact is resumed — not
// rebuilt — when a bigger budget arrives, and the finished atlas matches
// a from-scratch build.
func TestStoreBudgetResume(t *testing.T) {
	pr, root := fixture(t)
	dir := t.TempDir()
	opt := explore.Options{MaxConfigs: testBudget}

	want, ok := explore.BuildAtlas(pr, root, opt)
	if !ok {
		t.Fatal("BuildAtlas refused within budget")
	}

	s := openStore(t, dir)
	small := explore.Options{MaxConfigs: want.Len() / 2}
	if _, ok := s.GetAtlas(pr, root, small); ok {
		t.Fatal("store built a complete atlas under half its size budget")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want one miss", st)
	}

	// Same lineage, full budget, fresh store: restore + extend.
	s2 := openStore(t, dir)
	got, ok := s2.GetAtlas(pr, root, opt)
	if !ok {
		t.Fatal("resumed GetAtlas refused a buildable atlas")
	}
	st := s2.Stats()
	if st.Resumes != 1 || st.Misses != 0 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want one resume and one eviction", st)
	}
	if got.Len() != want.Len() || got.Edges() != want.Edges() {
		t.Fatalf("resumed atlas differs: %d/%d nodes, %d/%d edges", got.Len(), want.Len(), got.Edges(), want.Edges())
	}
	for id := int32(0); id < int32(want.Len()); id++ {
		if want.ValencyAt(id) != got.ValencyAt(id) {
			t.Fatalf("node %d: valency %s fresh, %s resumed", id, want.ValencyAt(id), got.ValencyAt(id))
		}
	}
	// The rewritten artifact is complete: next process warm-loads it.
	s3 := openStore(t, dir)
	if _, ok := s3.GetAtlas(pr, root, opt); !ok {
		t.Fatal("extended artifact did not serve a warm load")
	}
	if st := s3.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want one hit", st)
	}
}

// TestStoreDeepenPinsExpansion is the incremental-deepening acceptance
// criterion: extending a depth-d artifact to d+k expands only the new
// depths — pinned by the expansion counter — and the result is identical
// to a one-shot depth-(d+k) exploration.
func TestStoreDeepenPinsExpansion(t *testing.T) {
	pr, root := fixture(t)
	budget := explore.Options{MaxConfigs: testBudget}
	const d, k = 3, 2

	// One-shot reference, no store involved.
	oneshot := explore.NewAtlasBuilder(pr, root)
	oneOpt := budget
	oneOpt.MaxDepth = d + k
	oneTotal := oneshot.Extend(oneOpt)

	s := openStore(t, t.TempDir())
	dOpt := budget
	dOpt.MaxDepth = d
	snapD, stD, err := s.Deepen(pr, root, dOpt)
	if err != nil {
		t.Fatalf("Deepen(d): %v", err)
	}
	if stD.Resumed || stD.Complete {
		t.Fatalf("Deepen(d) stats = %+v, want a fresh truncated exploration", stD)
	}

	dkOpt := budget
	dkOpt.MaxDepth = d + k
	snapDK, stDK, err := s.Deepen(pr, root, dkOpt)
	if err != nil {
		t.Fatalf("Deepen(d+k): %v", err)
	}
	if !stDK.Resumed {
		t.Fatal("Deepen(d+k) did not resume from the stored frontier")
	}
	if stD.NewlyExpanded+stDK.NewlyExpanded != oneTotal {
		t.Fatalf("incremental expanded %d+%d nodes, one-shot expanded %d — depth ≤ d was re-expanded",
			stD.NewlyExpanded, stDK.NewlyExpanded, oneTotal)
	}
	if snapDK.Len() != oneshot.Len() || snapDK.Expanded() != oneshot.Expanded() {
		t.Fatalf("deepened snapshot shape %d/%d differs from one-shot %d/%d",
			snapDK.Len(), snapDK.Expanded(), oneshot.Len(), oneshot.Expanded())
	}
	for i := range snapDK.Depth {
		if snapDK.Depth[i] != oneshot.Snapshot().Depth[i] {
			t.Fatalf("node %d depth differs from one-shot", i)
		}
		if string(snapDK.Keys[i]) != string(oneshot.Snapshot().Keys[i]) {
			t.Fatalf("node %d key differs from one-shot", i)
		}
	}
	if snapD.Len() >= snapDK.Len() {
		t.Fatalf("deepening did not grow the artifact: %d → %d nodes", snapD.Len(), snapDK.Len())
	}

	// A third Deepen at the same depth is a no-op hit.
	_, st3, err := s.Deepen(pr, root, dkOpt)
	if err != nil {
		t.Fatalf("Deepen(d+k) again: %v", err)
	}
	if st3.NewlyExpanded != 0 || !st3.Resumed {
		t.Fatalf("repeat Deepen stats = %+v, want a zero-expansion resume", st3)
	}

	// Deepening to exhaustion completes and the artifact then serves
	// GetAtlas warm.
	if _, st4, err := s.Deepen(pr, root, budget); err != nil || !st4.Complete {
		t.Fatalf("Deepen to exhaustion: stats %+v, err %v", st4, err)
	}
	s2 := openStore(t, s.Dir())
	if _, ok := s2.GetAtlas(pr, root, budget); !ok {
		t.Fatal("exhausted artifact did not serve a warm GetAtlas")
	}
	if st := s2.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want one hit", st)
	}
}

// TestStoreCacheIntegration: wired as the AtlasCache backend, the store
// makes the memory → disk → build chain invisible to callers and keeps
// memoized refusals.
func TestStoreCacheIntegration(t *testing.T) {
	pr, root := fixture(t)
	dir := t.TempDir()
	opt := explore.Options{MaxConfigs: testBudget}

	ac := explore.NewAtlasCache()
	ac.SetBackend(openStore(t, dir))
	a1, ok := ac.Get(pr, root, opt)
	if !ok {
		t.Fatal("store-backed cache refused a buildable atlas")
	}
	a2, _ := ac.Get(pr, root, opt)
	if a1 != a2 {
		t.Fatal("second lookup did not come from the memory tier")
	}

	// New cache (same store dir): disk tier answers, no rebuild.
	s2 := openStore(t, dir)
	ac2 := explore.NewAtlasCache()
	ac2.SetBackend(s2)
	if _, ok := ac2.Get(pr, root, opt); !ok {
		t.Fatal("restarted cache refused the persisted atlas")
	}
	if st := s2.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("restart stats = %+v, want one hit", st)
	}
	// ClassifyRootCached — the serving layer's path — answers from the
	// loaded atlas.
	info := explore.ClassifyRootCached(pr, root, opt, ac2)
	want := explore.Classify(pr, root, opt)
	if info.Valency != want.Valency {
		t.Fatalf("valency %s through store, %s direct", info.Valency, want.Valency)
	}
}

// TestStoreUnwritableDirDegrades: a store whose directory disappears
// still answers every query by building in memory.
func TestStoreUnwritableDirDegrades(t *testing.T) {
	pr, root := fixture(t)
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetAtlas(pr, root, explore.Options{MaxConfigs: testBudget}); !ok {
		t.Fatal("store with a missing directory failed a buildable query")
	}
}
