package atlasstore_test

import (
	"sync"
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
	"github.com/flpsim/flp/internal/protogen"
)

// diffFixtureN mirrors the explore package's registry fixtures: every
// registry protocol at its smallest valid size, so a newly registered
// protocol fails here until it gets a fixture.
var diffFixtureN = map[string]int{
	"trivial0":      2,
	"waitall":       3,
	"naivemajority": 3,
	"2pc":           3,
	"3pc":           3,
	"paxos":         3,
	"benor":         2,
	"onethird":      4,
}

const diffBudget = 3000

// diffAtlases compares a store-served atlas against a fresh BuildAtlas
// node by node: identical valencies, witness lengths, and dense-id
// partitions.
func diffAtlases(t *testing.T, ctx string, want, got *explore.Atlas) {
	t.Helper()
	if want.Len() != got.Len() || want.Edges() != got.Edges() {
		t.Fatalf("%s: size differs: %d/%d nodes, %d/%d edges", ctx, want.Len(), got.Len(), want.Edges(), got.Edges())
	}
	for id := int32(0); id < int32(want.Len()); id++ {
		if want.ValencyAt(id) != got.ValencyAt(id) {
			t.Fatalf("%s node %d: valency %s fresh, %s stored", ctx, id, want.ValencyAt(id), got.ValencyAt(id))
		}
		for _, d := range []model.Value{model.V0, model.V1} {
			wl, wok := want.WitnessLen(id, d)
			gl, gok := got.WitnessLen(id, d)
			if wok != gok || wl != gl {
				t.Fatalf("%s node %d: witness length for %v differs: %d/%v vs %d/%v", ctx, id, d, wl, wok, gl, gok)
			}
		}
		gid, ok := got.IDOf(want.Config(id))
		if !ok || gid != id {
			t.Fatalf("%s node %d: dense-id partition differs (got %d, ok=%v)", ctx, id, gid, ok)
		}
	}
}

// diffOneLineage runs the full differential for one (protocol, root):
// cold build-through-store vs fresh BuildAtlas, then warm load vs fresh,
// then resume-from-frontier (depth d, extend to d+k, complete) vs
// one-shot — with refusal parity when the budget does not cover the
// lineage.
func diffOneLineage(t *testing.T, pr model.Protocol, root *model.Config, dir string) {
	t.Helper()
	opt := explore.Options{MaxConfigs: diffBudget}
	want, wantOK := explore.BuildAtlas(pr, root, opt)

	cold := openStore(t, dir)
	a, ok := cold.GetAtlas(pr, root, opt)
	if ok != wantOK {
		t.Fatalf("store ok=%v, BuildAtlas ok=%v — complete-or-refused parity broken", ok, wantOK)
	}
	if !wantOK {
		// Refusal parity must survive the persisted truncated artifact too.
		if _, ok := openStore(t, dir).GetAtlas(pr, root, opt); ok {
			t.Fatal("persisted truncated artifact turned a refusal into an atlas")
		}
		return
	}
	diffAtlases(t, "cold", want, a)

	warm := openStore(t, dir)
	b, ok := warm.GetAtlas(pr, root, opt)
	if !ok {
		t.Fatal("warm load refused")
	}
	if st := warm.Stats(); st.Hits != 1 {
		t.Fatalf("warm stats = %+v, want a hit", st)
	}
	diffAtlases(t, "warm", want, b)

	// Resume path: depth-truncate in a fresh dir, deepen, complete. A
	// graph exhausted within the depth bound has no frontier to resume —
	// the follow-up is then a warm hit instead.
	dir2 := t.TempDir()
	s := openStore(t, dir2)
	dOpt := opt
	dOpt.MaxDepth = 2
	_, stD, err := s.Deepen(pr, root, dOpt)
	if err != nil {
		t.Fatalf("Deepen(d): %v", err)
	}
	s2 := openStore(t, dir2)
	c, ok := s2.GetAtlas(pr, root, opt)
	if !ok {
		t.Fatal("resume-from-frontier refused a buildable atlas")
	}
	if st := s2.Stats(); stD.Complete && st.Hits != 1 {
		t.Fatalf("stats = %+v, want a hit (graph exhausted within depth bound)", st)
	} else if !stD.Complete && st.Resumes != 1 {
		t.Fatalf("resume stats = %+v, want a resume", st)
	}
	diffAtlases(t, "resumed", want, c)
}

// TestStoreDifferentialRegistry sweeps every registry protocol.
func TestStoreDifferentialRegistry(t *testing.T) {
	for _, name := range protocols.Names() {
		t.Run(name, func(t *testing.T) {
			n, ok := diffFixtureN[name]
			if !ok {
				t.Fatalf("registry protocol %q has no fixture size; extend diffFixtureN", name)
			}
			factory, ok := protocols.Lookup(name)
			if !ok {
				t.Fatalf("registry lost protocol %q", name)
			}
			pr, err := factory(n)
			if err != nil {
				t.Fatalf("building %s(%d): %v", name, n, err)
			}
			// Two representative inputs per protocol keep the sweep fast;
			// the explore-level differential already covers all inputs.
			for _, inp := range []model.Inputs{model.UniformInputs(n, 0), mixedInputs(n)} {
				diffOneLineage(t, pr, model.MustInitial(pr, inp), t.TempDir())
			}
		})
	}
}

// TestStoreDifferentialProtogen samples generated protocols: the store
// must agree with fresh builds on machine-minted semantics too, where
// the self-describing gen: name is the whole protocol identity.
func TestStoreDifferentialProtogen(t *testing.T) {
	for _, seed := range []uint64{1, 5, 9, 13} {
		sp := protogen.Derive(seed, protogen.DefaultDials(3))
		pr := protogen.MustNew(sp)
		t.Run(pr.Name(), func(t *testing.T) {
			root := model.MustInitial(pr, mixedInputs(pr.N()))
			diffOneLineage(t, pr, root, t.TempDir())
		})
	}
}

// TestStoreConcurrentLineage hammers one store with concurrent requests
// for several lineages — run under -race, this is the concurrency-safety
// check for the per-lineage locking and counters.
func TestStoreConcurrentLineage(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	dir := t.TempDir()
	s := openStore(t, dir)
	s.SetLog(nil)
	opt := explore.Options{MaxConfigs: diffBudget}

	inputs := model.AllInputs(3)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				inp := inputs[(w+i)%len(inputs)]
				root := model.MustInitial(pr, inp)
				a, ok := s.GetAtlas(pr, root, opt)
				if !ok || a.Len() == 0 {
					errs <- "concurrent GetAtlas refused a buildable atlas"
					return
				}
				if !a.Root().Equal(root) {
					errs <- "concurrent GetAtlas returned the wrong lineage"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// mixedInputs returns the 0,1,1,... input vector used as the second
// representative root.
func mixedInputs(n int) model.Inputs {
	in := make(model.Inputs, n)
	for i := 1; i < n; i++ {
		in[i] = 1
	}
	return in
}
