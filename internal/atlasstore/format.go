// Package atlasstore is the disk-backed, content-addressed store behind
// explore.AtlasCache: valency atlases persisted as flat binary artifacts
// that load with one sequential read — no per-node decoding, no
// re-exploration — and budget-truncated explorations persisted with their
// frontier so a later, deeper request resumes where the artifact stopped
// instead of re-expanding anything.
//
// This file is the artifact codec. The layout (DESIGN.md §9) is a fixed
// header, an event dictionary, the struct-of-arrays node and edge columns
// in little-endian fixed width, the dense-id → binary-canonical-key table,
// and a CRC-32C trailer over everything preceding it. Decoding verifies
// checksum, magic, and version before touching a single field, then
// bounds-checks every cross-array index, so a truncated or bit-flipped
// artifact is always an error — never a panic, never a wrong atlas.
package atlasstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
)

// magic identifies an atlas artifact; the trailing byte doubles as a
// format generation so an old binary refuses a future layout outright.
var magic = [8]byte{'F', 'L', 'P', 'A', 'T', 'L', 'S', 1}

// formatVersion is the artifact layout version. Bump it whenever the
// byte layout or any persisted semantic (key derivation, event encoding,
// distance convention) changes; the store treats a mismatch like
// corruption — delete and rebuild — so stale artifacts can never answer.
const formatVersion uint32 = 1

// flagComplete marks an artifact whose reachable set is exhausted; clear
// means a truncated exploration persisted with its frontier for later
// resume. flagDists marks the presence of the two backward-distance
// columns — set on every complete artifact the store writes (the warm
// load path needs them), and never without flagComplete.
const (
	flagComplete uint32 = 1 << 0
	flagDists    uint32 = 1 << 1
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// artifact is the decoded form: the identity fields the store resolves
// requests against plus the exploration snapshot itself.
type artifact struct {
	ProtoName string
	N         int
	RootKey   []byte
	Snap      *explore.AtlasSnapshot
}

// corruptError marks artifact damage the store responds to by deleting
// and rebuilding (as opposed to I/O errors, which it only logs).
type corruptError struct{ msg string }

func (e *corruptError) Error() string { return "atlasstore: corrupt artifact: " + e.msg }

func corruptf(format string, args ...any) error {
	return &corruptError{msg: fmt.Sprintf(format, args...)}
}

// encodeArtifact renders an artifact to its on-disk bytes.
func encodeArtifact(protoName string, n int, rootKey []byte, snap *explore.AtlasSnapshot) []byte {
	// Event dictionary: every distinct via label across both event
	// columns. parentVia[0] is the zero Event, so the null event for
	// process 0 is always present — no sentinel index needed.
	dict := make([]model.Event, 0, 16)
	dictIdx := make(map[string]uint32)
	indexOf := func(e model.Event) uint32 {
		k := e.Key()
		if i, ok := dictIdx[k]; ok {
			return i
		}
		i := uint32(len(dict))
		dict = append(dict, e)
		dictIdx[k] = i
		return i
	}
	parentViaIdx := make([]uint32, len(snap.ParentVia))
	for i, e := range snap.ParentVia {
		parentViaIdx[i] = indexOf(e)
	}
	succViaIdx := make([]uint32, len(snap.SuccVia))
	for i, e := range snap.SuccVia {
		succViaIdx[i] = indexOf(e)
	}

	var b []byte
	b = append(b, magic[:]...)
	b = binary.LittleEndian.AppendUint32(b, formatVersion)
	var flags uint32
	if snap.Complete {
		flags |= flagComplete
	}
	hasDists := snap.Complete && len(snap.Dist0) == len(snap.Depth)
	if hasDists {
		flags |= flagDists
	}
	b = binary.LittleEndian.AppendUint32(b, flags)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(snap.Depth)))       // V
	b = binary.LittleEndian.AppendUint64(b, uint64(len(snap.SuccStart)-1)) // X
	b = binary.LittleEndian.AppendUint64(b, uint64(len(snap.SuccTo)))      // E
	b = binary.LittleEndian.AppendUint64(b, uint64(len(dict)))             // D
	b = appendBytes(b, []byte(protoName))
	b = binary.LittleEndian.AppendUint64(b, uint64(n))
	b = appendBytes(b, rootKey)

	for _, e := range dict {
		if e.Msg == nil {
			b = append(b, 0)
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(e.P)))
		} else {
			b = append(b, 1)
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(e.P)))
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(e.Msg.To)))
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(e.Msg.From)))
			b = appendBytes(b, []byte(e.Msg.Body))
		}
	}

	b = appendI32s(b, snap.Depth)
	b = appendI32s(b, snap.Parent)
	b = appendU32s(b, parentViaIdx)
	b = appendI32s(b, snap.SuccStart)
	b = appendI32s(b, snap.SuccTo)
	b = appendU32s(b, succViaIdx)
	if hasDists {
		b = appendI32s(b, snap.Dist0)
		b = appendI32s(b, snap.Dist1)
	}

	// Key table: V+1 cumulative offsets into one blob, then the blob.
	b = binary.LittleEndian.AppendUint64(b, 0)
	off := uint64(0)
	for _, k := range snap.Keys {
		off += uint64(len(k))
		b = binary.LittleEndian.AppendUint64(b, off)
	}
	for _, k := range snap.Keys {
		b = append(b, k...)
	}

	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
	return b
}

// decodeArtifact parses and validates on-disk bytes. Every failure is a
// *corruptError; the caller (Store) logs, deletes, and rebuilds.
func decodeArtifact(b []byte) (*artifact, error) {
	if len(b) < len(magic)+4+4+4 {
		return nil, corruptf("short file (%d bytes)", len(b))
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, corruptf("checksum mismatch")
	}
	r := &reader{b: body}
	var m [8]byte
	copy(m[:], r.bytes(8))
	if r.err != nil || m != magic {
		return nil, corruptf("bad magic")
	}
	if v := r.u32(); v != formatVersion {
		return nil, corruptf("format version %d (want %d)", v, formatVersion)
	}
	flags := r.u32()
	complete := flags&flagComplete != 0
	hasDists := flags&flagDists != 0
	if hasDists && !complete {
		return nil, corruptf("distance columns on a truncated artifact")
	}
	V := r.count()
	X := r.count()
	E := r.count()
	D := r.count()
	protoName := string(r.blob())
	n := r.count()
	rootKey := r.blob()
	if r.err != nil {
		return nil, corruptf("truncated header")
	}
	if V == 0 || X > V || n <= 0 {
		return nil, corruptf("implausible counts V=%d X=%d n=%d", V, X, n)
	}

	dict := make([]model.Event, D)
	for i := range dict {
		switch kind := r.u8(); kind {
		case 0:
			dict[i] = model.Event{P: model.PID(r.i64())}
		case 1:
			p := model.PID(r.i64())
			to := model.PID(r.i64())
			from := model.PID(r.i64())
			body := string(r.blob())
			msg := model.Message{To: to, From: from, Body: body}
			dict[i] = model.Event{P: p, Msg: &msg}
		default:
			if r.err == nil {
				return nil, corruptf("unknown event kind %d", kind)
			}
		}
		if r.err != nil {
			return nil, corruptf("truncated event dictionary")
		}
	}

	depth := r.i32s(V)
	parent := r.i32s(V)
	parentViaIdx := r.u32s(V)
	succStart := r.i32s(X + 1)
	succTo := r.i32s(E)
	succViaIdx := r.u32s(E)
	var dist0, dist1 []int32
	if hasDists {
		dist0 = r.i32s(V)
		dist1 = r.i32s(V)
	}
	keyOff := r.u64s(V + 1)
	if r.err != nil {
		return nil, corruptf("truncated columns")
	}
	blobLen := uint64(0)
	if len(keyOff) > 0 {
		blobLen = keyOff[V]
	}
	if blobLen > uint64(len(r.b)-r.off) {
		return nil, corruptf("key blob overruns file")
	}
	keyBlob := r.bytes(int(blobLen))
	if r.err != nil || r.off != len(r.b) {
		return nil, corruptf("trailing or missing bytes")
	}

	keys := make([][]byte, V)
	for i := range keys {
		lo, hi := keyOff[i], keyOff[i+1]
		if lo > hi || hi > blobLen {
			return nil, corruptf("key offsets not monotonic")
		}
		keys[i] = keyBlob[lo:hi]
	}
	parentVia, err := viaColumn(parentViaIdx, dict)
	if err != nil {
		return nil, err
	}
	succVia, err := viaColumn(succViaIdx, dict)
	if err != nil {
		return nil, err
	}
	snap := &explore.AtlasSnapshot{
		Depth: depth, Parent: parent, ParentVia: parentVia,
		SuccStart: succStart, SuccTo: succTo, SuccVia: succVia,
		Keys: keys, Complete: complete, Dist0: dist0, Dist1: dist1,
	}
	return &artifact{ProtoName: protoName, N: n, RootKey: rootKey, Snap: snap}, nil
}

// viaColumn resolves dictionary indices to events, bounds-checked.
func viaColumn(idx []uint32, dict []model.Event) ([]model.Event, error) {
	out := make([]model.Event, len(idx))
	for i, j := range idx {
		if int(j) >= len(dict) {
			return nil, corruptf("event index %d out of dictionary range %d", j, len(dict))
		}
		out[i] = dict[j]
	}
	return out, nil
}

func appendBytes(b, p []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func appendI32s(b []byte, xs []int32) []byte {
	for _, x := range xs {
		b = binary.LittleEndian.AppendUint32(b, uint32(x))
	}
	return b
}

func appendU32s(b []byte, xs []uint32) []byte {
	for _, x := range xs {
		b = binary.LittleEndian.AppendUint32(b, x)
	}
	return b
}

// reader is a cursor over the artifact body with sticky error semantics:
// any overrun sets err and every later read returns zero values, so decode
// paths stay straight-line.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		if r.err == nil {
			r.err = fmt.Errorf("overrun")
		}
		return nil
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *reader) u8() byte {
	p := r.bytes(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *reader) u32() uint32 {
	p := r.bytes(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *reader) u64() uint64 {
	p := r.bytes(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *reader) i64() int64 { return int64(r.u64()) }

// count reads a u64 header count, clamping anything implausible (negative
// as int, or larger than the file could possibly hold) to an error.
func (r *reader) count() int {
	v := r.u64()
	if v > uint64(len(r.b)) || v > math.MaxInt32 {
		if r.err == nil {
			r.err = fmt.Errorf("implausible count %d", v)
		}
		return 0
	}
	return int(v)
}

// blob reads a u32-length-prefixed byte string.
func (r *reader) blob() []byte {
	n := r.u32()
	if uint64(n) > uint64(len(r.b)) {
		if r.err == nil {
			r.err = fmt.Errorf("implausible blob length %d", n)
		}
		return nil
	}
	return r.bytes(int(n))
}

func (r *reader) i32s(n int) []int32 {
	p := r.bytes(4 * n)
	if p == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(p[4*i:]))
	}
	return out
}

func (r *reader) u32s(n int) []uint32 {
	p := r.bytes(4 * n)
	if p == nil {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(p[4*i:])
	}
	return out
}

func (r *reader) u64s(n int) []uint64 {
	p := r.bytes(8 * n)
	if p == nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(p[8*i:])
	}
	return out
}
