package atlasstore_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/flpsim/flp/internal/atlasstore"
	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
)

// seedArtifact builds one complete artifact in a fresh store directory
// and returns the store dir, the artifact path, and the expected atlas
// size.
func seedArtifact(t *testing.T) (dir, path string, wantLen int) {
	t.Helper()
	pr, root := fixture(t)
	dir = t.TempDir()
	s := openStore(t, dir)
	a, ok := s.GetAtlas(pr, root, explore.Options{MaxConfigs: testBudget})
	if !ok {
		t.Fatal("seeding GetAtlas refused a buildable atlas")
	}
	return dir, artifactPath(t, dir), a.Len()
}

// TestStoreCorruptionRecovery is the corruption-safety contract: for
// every way an artifact can be damaged — truncation at any boundary, bit
// flips anywhere from header to trailer, wrong magic, future version —
// the store must detect it (never panic, never serve a wrong atlas), log
// and delete the file, count it, and rebuild on the same request.
func TestStoreCorruptionRecovery(t *testing.T) {
	mangle := []struct {
		name string
		fn   func(b []byte) []byte
	}{
		{"empty file", func(b []byte) []byte { return nil }},
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"truncated half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated one byte", func(b []byte) []byte { return b[:len(b)-1] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"future version", func(b []byte) []byte { b[8] = 0xEE; return b }},
		{"flag bit flip", func(b []byte) []byte { b[12] ^= 0x01; return b }},
		{"header count flip", func(b []byte) []byte { b[20] ^= 0x40; return b }},
		{"early column bit flip", func(b []byte) []byte { b[len(b)/4] ^= 0x08; return b }},
		{"mid column bit flip", func(b []byte) []byte { b[len(b)/2] ^= 0x80; return b }},
		{"key table bit flip", func(b []byte) []byte { b[len(b)-len(b)/8] ^= 0x01; return b }},
		{"checksum flip", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }},
		{"appended garbage", func(b []byte) []byte { return append(b, 0xDE, 0xAD) }},
		{"zeroed body", func(b []byte) []byte {
			for i := 40; i < len(b)-4 && i < 200; i++ {
				b[i] = 0
			}
			return b
		}},
	}
	for _, m := range mangle {
		t.Run(m.name, func(t *testing.T) {
			dir, path, wantLen := seedArtifact(t)
			pristine, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b := append([]byte(nil), pristine...)
			if err := os.WriteFile(path, m.fn(b), 0o644); err != nil {
				t.Fatal(err)
			}

			s := openStore(t, dir)
			pr, root := fixture(t)
			a, ok := s.GetAtlas(pr, root, explore.Options{MaxConfigs: testBudget})
			if !ok {
				t.Fatal("store failed to rebuild after corruption")
			}
			if a.Len() != wantLen {
				t.Fatalf("rebuilt atlas has %d nodes, want %d", a.Len(), wantLen)
			}
			st := s.Stats()
			if st.Corrupt != 1 {
				t.Fatalf("stats = %+v, want exactly one corrupt detection", st)
			}
			if st.Misses != 1 {
				t.Fatalf("stats = %+v, want the rebuild counted as a miss", st)
			}
			// The rebuilt artifact is whole again: a fresh store hits it.
			s2 := openStore(t, dir)
			if _, ok := s2.GetAtlas(pr, root, explore.Options{MaxConfigs: testBudget}); !ok {
				t.Fatal("rebuilt artifact did not serve a warm load")
			}
			if st := s2.Stats(); st.Hits != 1 || st.Corrupt != 0 {
				t.Fatalf("post-rebuild stats = %+v, want one clean hit", st)
			}
		})
	}
}

// TestStoreCorruptionSweep flips every 97th byte position across the
// whole artifact, one at a time: no single-bit flip anywhere may panic
// or produce an atlas of the wrong size.
func TestStoreCorruptionSweep(t *testing.T) {
	dir, path, wantLen := seedArtifact(t)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pr, root := fixture(t)
	for off := 0; off < len(pristine); off += 97 {
		b := append([]byte(nil), pristine...)
		b[off] ^= 0x10
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := atlasstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s.SetLog(nil)
		a, ok := s.GetAtlas(pr, root, explore.Options{MaxConfigs: testBudget})
		if !ok || a.Len() != wantLen {
			t.Fatalf("offset %d: rebuild after bit flip failed (ok=%v)", off, ok)
		}
		if st := s.Stats(); st.Corrupt != 1 {
			t.Fatalf("offset %d: stats = %+v, want one corrupt detection", off, st)
		}
	}
}

// TestStoreForeignArtifact: an artifact whose header identity disagrees
// with its content-addressed filename (e.g. copied between lineages) is
// treated as corruption, not served.
func TestStoreForeignArtifact(t *testing.T) {
	pr, root := fixture(t)
	dir := t.TempDir()
	s := openStore(t, dir)
	if _, ok := s.GetAtlas(pr, root, explore.Options{MaxConfigs: testBudget}); !ok {
		t.Fatal("seeding GetAtlas refused")
	}
	src := artifactPath(t, dir)

	// Request a different root: its lineage file does not exist, so copy
	// the first artifact into that name.
	other := model.MustInitial(pr, model.Inputs{1, 1, 1})
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	// Derive the foreign path by asking the store to build it, then
	// overwrite with the mismatched artifact.
	if _, ok := s2.GetAtlas(pr, other, explore.Options{MaxConfigs: testBudget}); !ok {
		t.Fatal("building the second lineage refused")
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.atlas"))
	if err != nil {
		t.Fatal(err)
	}
	var foreign string
	for _, p := range matches {
		if p != src {
			foreign = p
		}
	}
	if foreign == "" {
		t.Fatal("second lineage produced no artifact")
	}
	if err := os.WriteFile(foreign, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s3 := openStore(t, dir)
	a, ok := s3.GetAtlas(pr, other, explore.Options{MaxConfigs: testBudget})
	if !ok {
		t.Fatal("store failed to rebuild over a foreign artifact")
	}
	if gotRoot := a.Root(); !gotRoot.Equal(other) {
		t.Fatal("store served an atlas for the wrong root")
	}
	if st := s3.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want the foreign artifact counted corrupt", st)
	}
}
