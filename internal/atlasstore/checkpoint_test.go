package atlasstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
)

// ckFixture builds a small but structurally honest checkpoint: four nodes,
// a completed root level, and a three-node pending level — the shape every
// boundary checkpoint has.
func ckFixture() (RunKey, *RunCheckpoint) {
	msg := model.Message{To: 1, From: 0, Body: "v:1"}
	key := RunKey{
		Protocol:   "testproto",
		N:          3,
		RootKey:    []byte{0x01, 0x02, 0x03},
		Avoid:      "",
		MaxConfigs: 500,
		MaxDepth:   0,
	}
	ck := &RunCheckpoint{
		Snap: &explore.AtlasSnapshot{
			Depth:  []int32{0, 1, 1, 1},
			Parent: []int32{-1, 0, 0, 0},
			ParentVia: []model.Event{
				{},
				{P: 0},
				{P: 1, Msg: &msg},
				{P: 2},
			},
			SuccStart: []int32{0},
			Keys: [][]byte{
				{0x01, 0x02, 0x03},
				{0x10},
				{0x20, 0x21},
				{0x30, 0x31, 0x32},
			},
		},
		Start:     1,
		Truncated: true,
		Expanded:  1,
	}
	return key, ck
}

func openCk(t *testing.T, dir string) *CheckpointStore {
	t.Helper()
	s, err := OpenCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLog(t.Logf)
	return s
}

// ckFile returns the single .ckpt file in dir, or "" when none exists.
func ckFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		return ""
	}
	if len(matches) > 1 {
		t.Fatalf("expected at most one checkpoint file, found %v", matches)
	}
	return matches[0]
}

// TestCheckpointRoundTrip pins the codec: a saved checkpoint loads back
// field-for-field, and the store counts the write and the resume.
func TestCheckpointRoundTrip(t *testing.T) {
	key, ck := ckFixture()
	s := openCk(t, t.TempDir())
	s.Save(key, ck)
	got := s.Load(key)
	if got == nil {
		t.Fatal("Load returned nil for a just-saved checkpoint")
	}
	if got.Start != ck.Start || got.Truncated != ck.Truncated || got.Expanded != ck.Expanded {
		t.Fatalf("scalars diverged: got (%d, %v, %d), want (%d, %v, %d)",
			got.Start, got.Truncated, got.Expanded, ck.Start, ck.Truncated, ck.Expanded)
	}
	if len(got.Snap.Depth) != len(ck.Snap.Depth) {
		t.Fatalf("node count %d, want %d", len(got.Snap.Depth), len(ck.Snap.Depth))
	}
	for i := range ck.Snap.Depth {
		if got.Snap.Depth[i] != ck.Snap.Depth[i] || got.Snap.Parent[i] != ck.Snap.Parent[i] {
			t.Fatalf("node %d columns diverged", i)
		}
		if got.Snap.ParentVia[i].Key() != ck.Snap.ParentVia[i].Key() {
			t.Fatalf("node %d via %q, want %q", i, got.Snap.ParentVia[i].Key(), ck.Snap.ParentVia[i].Key())
		}
		if !bytes.Equal(got.Snap.Keys[i], ck.Snap.Keys[i]) {
			t.Fatalf("node %d key diverged", i)
		}
	}
	if len(got.Snap.SuccStart) != 1 || got.Snap.SuccStart[0] != 0 {
		t.Fatalf("snapshot not truncated-form: SuccStart %v", got.Snap.SuccStart)
	}
	if st := s.Stats(); st.Writes != 1 || st.Resumes != 1 || st.Corrupt != 0 || st.Skips != 0 {
		t.Fatalf("stats %+v, want 1 write / 1 resume", st)
	}
}

// TestCheckpointMissingIsSkip pins the fresh-start path: loading a key
// with no checkpoint returns nil and counts a skip, not an error.
func TestCheckpointMissingIsSkip(t *testing.T) {
	key, _ := ckFixture()
	s := openCk(t, t.TempDir())
	if got := s.Load(key); got != nil {
		t.Fatalf("Load of an absent checkpoint returned %+v", got)
	}
	if st := s.Stats(); st.Skips != 1 || st.Corrupt != 0 {
		t.Fatalf("stats %+v, want exactly 1 skip", st)
	}
}

// TestCheckpointCorruptionSweep is the detect-log-delete contract: every
// damaged form must be rejected (never a wrong resume), counted as corrupt,
// and removed so the rerun starts from scratch.
func TestCheckpointCorruptionSweep(t *testing.T) {
	mangle := []struct {
		name string
		fn   func(b []byte) []byte
	}{
		{"empty file", func(b []byte) []byte { return nil }},
		{"truncated half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated one byte", func(b []byte) []byte { return b[:len(b)-1] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"future version", func(b []byte) []byte { b[8] = 0xEE; return b }},
		{"start flip", func(b []byte) []byte { b[24] ^= 0x04; return b }},
		{"mid column bit flip", func(b []byte) []byte { b[len(b)/2] ^= 0x80; return b }},
		{"checksum flip", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }},
		{"appended garbage", func(b []byte) []byte { return append(b, 0xDE, 0xAD) }},
	}
	for _, m := range mangle {
		t.Run(m.name, func(t *testing.T) {
			key, ck := ckFixture()
			dir := t.TempDir()
			s := openCk(t, dir)
			s.Save(key, ck)
			path := ckFile(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, m.fn(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if got := s.Load(key); got != nil {
				t.Fatalf("%s: corrupt checkpoint loaded as %+v", m.name, got)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("%s: stats %+v, want 1 corrupt", m.name, st)
			}
			if f := ckFile(t, dir); f != "" {
				t.Fatalf("%s: corrupt checkpoint not deleted: %s", m.name, f)
			}
			// The rerun starts from scratch: a fresh load is a skip.
			if got := s.Load(key); got != nil {
				t.Fatalf("%s: load after deletion returned %+v", m.name, got)
			}
		})
	}
}

// TestCheckpointIdentityMismatch pins the cross-check between the file's
// embedded identity and the requested key — the defense against a tampered
// or misplaced file whose name happens to match.
func TestCheckpointIdentityMismatch(t *testing.T) {
	key, ck := ckFixture()
	data := encodeCheckpoint(key, ck)
	other := key
	other.MaxConfigs = 9999
	if _, err := decodeCheckpoint(other, data); err == nil {
		t.Fatal("decode accepted a checkpoint whose identity does not match the requested run")
	}
	if _, err := decodeCheckpoint(key, data); err != nil {
		t.Fatalf("decode rejected the matching identity: %v", err)
	}
}

// TestCheckpointBoundaryInvariant pins the structural checks: a node table
// that is not a breadth-first prefix with a contiguous pending level must
// be rejected as corrupt.
func TestCheckpointBoundaryInvariant(t *testing.T) {
	t.Run("depths out of order", func(t *testing.T) {
		key, ck := ckFixture()
		ck.Snap.Depth = []int32{0, 1, 0, 1}
		if _, err := decodeCheckpoint(key, encodeCheckpoint(key, ck)); err == nil {
			t.Fatal("decode accepted out-of-order depths")
		}
	})
	t.Run("start mid-level", func(t *testing.T) {
		key, ck := ckFixture()
		ck.Start = 2 // nodes 1..3 share depth 1; starting at 2 splits the level
		if _, err := decodeCheckpoint(key, encodeCheckpoint(key, ck)); err == nil {
			t.Fatal("decode accepted a start index inside a level")
		}
	})
}

// TestCheckpointClearAndDiscard pins the lifecycle ends: Clear removes a
// finished run's checkpoint silently, Discard removes a replay-rejected one
// and counts it corrupt.
func TestCheckpointClearAndDiscard(t *testing.T) {
	key, ck := ckFixture()
	dir := t.TempDir()
	s := openCk(t, dir)

	s.Save(key, ck)
	s.Clear(key)
	if f := ckFile(t, dir); f != "" {
		t.Fatalf("Clear left %s behind", f)
	}
	s.Clear(key) // idempotent on an absent file

	s.Save(key, ck)
	s.Discard(key, os.ErrInvalid)
	if f := ckFile(t, dir); f != "" {
		t.Fatalf("Discard left %s behind", f)
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Writes != 2 {
		t.Fatalf("stats %+v, want 2 writes / 1 corrupt", st)
	}
}

// TestCheckpointSupersede pins that a later boundary's Save replaces the
// earlier one in place: one file per run, always the newest cut.
func TestCheckpointSupersede(t *testing.T) {
	key, ck := ckFixture()
	dir := t.TempDir()
	s := openCk(t, dir)
	s.Save(key, ck)

	msg := model.Message{To: 2, From: 1, Body: "v:0"}
	later := &RunCheckpoint{
		Snap: &explore.AtlasSnapshot{
			Depth:     []int32{0, 1, 1, 1, 2, 2},
			Parent:    []int32{-1, 0, 0, 0, 1, 2},
			ParentVia: []model.Event{{}, {P: 0}, {P: 1, Msg: &msg}, {P: 2}, {P: 0}, {P: 1}},
			SuccStart: []int32{0},
			Keys:      [][]byte{{0x01, 0x02, 0x03}, {0x10}, {0x20}, {0x30}, {0x40}, {0x50}},
		},
		Start:    4,
		Expanded: 4,
	}
	s.Save(key, later)
	got := s.Load(key)
	if got == nil || got.Start != 4 || len(got.Snap.Depth) != 6 {
		t.Fatalf("Load returned %+v, want the superseding checkpoint (start 4, 6 nodes)", got)
	}
}
