// Package brb implements Bracha's asynchronous reliable broadcast, the
// building block of the Byzantine-resilient consensus protocols the
// paper's conclusion cites as subsequent progress (Bracha; Bracha & Toueg
// — references [3] and [4]). Reliable broadcast is, like atomic storage,
// on the solvable side of the FLP boundary: with N > 3f, even Byzantine
// faults cannot make correct processes deliver inconsistently, and no
// timing assumptions are needed — the impossibility is specific to
// consensus-grade termination.
//
// Protocol (Bracha 1987), sender s broadcasting value v:
//
//	s sends INITIAL(v) to all.
//	On the first INITIAL(v): send ECHO(v) to all.
//	On ECHO(v) from more than (N+f)/2 distinct senders: send READY(v).
//	On READY(v) from f+1 distinct senders: send READY(v) (amplification).
//	On READY(v) from 2f+1 distinct senders: deliver v.
//
// Guarantees for N > 3f: validity (a correct sender's value is delivered
// by every correct process), agreement (no two correct processes deliver
// different values), totality (if one correct process delivers, all do).
package brb

import (
	"fmt"
	"math/rand"

	"github.com/flpsim/flp/internal/model"
)

// Behavior scripts a Byzantine node's traffic. Byzantine nodes here are
// message-forging floods — the strongest attack shape against quorum
// thresholds; they do not need to react adaptively because thresholds are
// monotone in the support they inject.
type Behavior uint8

// Byzantine behaviors.
const (
	// Honest follows the protocol.
	Honest Behavior = iota
	// Silent sends nothing at all.
	Silent
	// SupportBoth floods ECHO and READY for both values to everyone.
	SupportBoth
	// TwoFaced (sender only) sends INITIAL(0) to half the nodes and
	// INITIAL(1) to the rest, plus the SupportBoth flood.
	TwoFaced
)

// Config describes one broadcast instance.
type Config struct {
	// N is the number of nodes; F the Byzantine budget (N > 3F).
	N, F int
	// Sender is the broadcasting node.
	Sender int
	// Value is the honest sender's value (ignored by a TwoFaced sender).
	Value model.Value
	// Byzantine assigns non-honest behaviors to at most F nodes.
	Byzantine map[int]Behavior
	// Seed drives the adversarial message scheduler.
	Seed int64
	// MaxSteps bounds the run. Default 100000.
	MaxSteps int
}

func (c Config) validate() error {
	if c.N <= 3*c.F {
		return fmt.Errorf("brb: need N > 3F, got N=%d F=%d", c.N, c.F)
	}
	if len(c.Byzantine) > c.F {
		return fmt.Errorf("brb: %d Byzantine nodes exceed budget F=%d", len(c.Byzantine), c.F)
	}
	if c.Sender < 0 || c.Sender >= c.N {
		return fmt.Errorf("brb: sender %d out of range", c.Sender)
	}
	for n, b := range c.Byzantine {
		if b == TwoFaced && n != c.Sender {
			return fmt.Errorf("brb: TwoFaced behavior only applies to the sender")
		}
		if b == Honest {
			return fmt.Errorf("brb: node %d marked Byzantine with Honest behavior", n)
		}
	}
	return nil
}

// Result reports one broadcast instance.
type Result struct {
	// Delivered maps each correct node that delivered to its value.
	Delivered map[int]model.Value
	// Steps counts message deliveries.
	Steps int
}

// Agreement reports whether all correct deliverers agree.
func (r *Result) Agreement() bool {
	seen := map[model.Value]bool{}
	for _, v := range r.Delivered {
		seen[v] = true
	}
	return len(seen) <= 1
}

type msgKind uint8

const (
	mInitial msgKind = iota
	mEcho
	mReady
)

type message struct {
	from, to int
	kind     msgKind
	val      model.Value
}

type node struct {
	echoed    bool
	readySent map[model.Value]bool
	echoFrom  map[model.Value]map[int]bool
	readyFrom map[model.Value]map[int]bool
	delivered bool
	value     model.Value
}

// Run executes one broadcast under an adversarial (seeded) scheduler.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 100000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes := make([]node, cfg.N)
	for i := range nodes {
		nodes[i] = node{
			readySent: map[model.Value]bool{},
			echoFrom:  map[model.Value]map[int]bool{0: {}, 1: {}},
			readyFrom: map[model.Value]map[int]bool{0: {}, 1: {}},
		}
	}
	isByz := func(n int) bool { return cfg.Byzantine[n] != Honest }

	var inflight []message
	sendAll := func(from int, kind msgKind, val model.Value) {
		for to := 0; to < cfg.N; to++ {
			inflight = append(inflight, message{from: from, to: to, kind: kind, val: val})
		}
	}

	// Opening traffic.
	switch cfg.Byzantine[cfg.Sender] {
	case Honest:
		sendAll(cfg.Sender, mInitial, cfg.Value)
	case Silent:
		// nothing
	case SupportBoth:
		sendAll(cfg.Sender, mEcho, 0)
		sendAll(cfg.Sender, mEcho, 1)
		sendAll(cfg.Sender, mReady, 0)
		sendAll(cfg.Sender, mReady, 1)
	case TwoFaced:
		for to := 0; to < cfg.N; to++ {
			v := model.Value(0)
			if to >= cfg.N/2 {
				v = 1
			}
			inflight = append(inflight, message{from: cfg.Sender, to: to, kind: mInitial, val: v})
		}
		sendAll(cfg.Sender, mEcho, 0)
		sendAll(cfg.Sender, mEcho, 1)
		sendAll(cfg.Sender, mReady, 0)
		sendAll(cfg.Sender, mReady, 1)
	}
	// Non-sender Byzantine floods.
	for n, b := range cfg.Byzantine {
		if n == cfg.Sender {
			continue
		}
		if b == SupportBoth {
			sendAll(n, mEcho, 0)
			sendAll(n, mEcho, 1)
			sendAll(n, mReady, 0)
			sendAll(n, mReady, 1)
		}
	}

	echoThreshold := (cfg.N+cfg.F)/2 + 1 // strictly more than (N+F)/2
	res := &Result{Delivered: map[int]model.Value{}}

	for step := 1; step <= cfg.MaxSteps && len(inflight) > 0; step++ {
		i := rng.Intn(len(inflight))
		m := inflight[i]
		inflight = append(inflight[:i], inflight[i+1:]...)
		res.Steps = step
		if isByz(m.to) {
			continue // Byzantine nodes' inputs are irrelevant; their output is scripted
		}
		nd := &nodes[m.to]
		switch m.kind {
		case mInitial:
			if m.from == cfg.Sender && !nd.echoed {
				nd.echoed = true
				sendAll(m.to, mEcho, m.val)
			}
		case mEcho:
			nd.echoFrom[m.val][m.from] = true
			if len(nd.echoFrom[m.val]) >= echoThreshold && !nd.readySent[m.val] {
				nd.readySent[m.val] = true
				sendAll(m.to, mReady, m.val)
			}
		case mReady:
			nd.readyFrom[m.val][m.from] = true
			if len(nd.readyFrom[m.val]) >= cfg.F+1 && !nd.readySent[m.val] {
				nd.readySent[m.val] = true
				sendAll(m.to, mReady, m.val)
			}
			if len(nd.readyFrom[m.val]) >= 2*cfg.F+1 && !nd.delivered {
				nd.delivered = true
				nd.value = m.val
				res.Delivered[m.to] = m.val
			}
		}
	}
	return res, nil
}
