package brb_test

import (
	"testing"

	"github.com/flpsim/flp/internal/brb"
	"github.com/flpsim/flp/internal/model"
)

func correctCount(cfg brb.Config) int {
	c := 0
	for n := 0; n < cfg.N; n++ {
		if cfg.Byzantine[n] == brb.Honest {
			c++
		}
	}
	return c
}

func TestHonestBroadcastDeliversEverywhere(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cfg := brb.Config{N: 4, F: 1, Sender: 0, Value: model.V1, Seed: seed}
		res, err := brb.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Delivered) != 4 {
			t.Fatalf("seed %d: %d/4 delivered", seed, len(res.Delivered))
		}
		for n, v := range res.Delivered {
			if v != model.V1 {
				t.Fatalf("seed %d: node %d delivered %v, want 1 (validity)", seed, n, v)
			}
		}
	}
}

func TestValidityDespiteByzantineFlood(t *testing.T) {
	// An honest sender's value survives F flooding Byzantine nodes.
	for _, nf := range [][2]int{{4, 1}, {7, 2}} {
		n, f := nf[0], nf[1]
		byz := map[int]brb.Behavior{}
		for i := 0; i < f; i++ {
			byz[n-1-i] = brb.SupportBoth
		}
		for seed := int64(0); seed < 20; seed++ {
			cfg := brb.Config{N: n, F: f, Sender: 0, Value: model.V0, Byzantine: byz, Seed: seed}
			res, err := brb.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Agreement() {
				t.Fatalf("N=%d F=%d seed %d: agreement violated: %v", n, f, seed, res.Delivered)
			}
			for nd, v := range res.Delivered {
				if v != model.V0 {
					t.Fatalf("N=%d F=%d seed %d: node %d delivered %v, want sender's 0", n, f, seed, nd, v)
				}
			}
			if len(res.Delivered) != correctCount(cfg) {
				t.Fatalf("N=%d F=%d seed %d: %d/%d correct nodes delivered",
					n, f, seed, len(res.Delivered), correctCount(cfg))
			}
		}
	}
}

func TestTwoFacedSenderCannotSplit(t *testing.T) {
	// The classic attack: the Byzantine sender tells half the nodes 0 and
	// half 1, flooding support for both. Agreement must survive — either
	// nobody delivers, or every correct node delivers one common value —
	// and totality: if anyone delivers, everyone does.
	for _, nf := range [][2]int{{4, 1}, {7, 2}, {10, 3}} {
		n, f := nf[0], nf[1]
		for seed := int64(0); seed < 30; seed++ {
			cfg := brb.Config{N: n, F: f, Sender: 0,
				Byzantine: map[int]brb.Behavior{0: brb.TwoFaced}, Seed: seed}
			res, err := brb.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Agreement() {
				t.Fatalf("N=%d F=%d seed %d: two-faced sender split the correct nodes: %v",
					n, f, seed, res.Delivered)
			}
			if got := len(res.Delivered); got != 0 && got != correctCount(cfg) {
				t.Fatalf("N=%d F=%d seed %d: totality violated: %d of %d correct delivered",
					n, f, seed, got, correctCount(cfg))
			}
		}
	}
}

func TestSilentSenderDeliversNothing(t *testing.T) {
	cfg := brb.Config{N: 4, F: 1, Sender: 0,
		Byzantine: map[int]brb.Behavior{0: brb.Silent}, Seed: 3}
	res, err := brb.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delivered) != 0 {
		t.Errorf("deliveries from a silent sender: %v", res.Delivered)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []brb.Config{
		{N: 3, F: 1, Sender: 0}, // N ≤ 3F
		{N: 4, F: 0, Sender: 0, Byzantine: map[int]brb.Behavior{1: brb.Silent}}, // budget
		{N: 4, F: 1, Sender: 9}, // bad sender
		{N: 4, F: 1, Sender: 0, Byzantine: map[int]brb.Behavior{2: brb.TwoFaced}}, // two-faced non-sender
	}
	for i, cfg := range cases {
		if _, err := brb.Run(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestNonSenderByzantineCannotForgeDelivery(t *testing.T) {
	// Without any INITIAL, honest nodes never echo, and F flooding nodes
	// alone cannot reach the 2F+1 READY threshold: Byzantine support
	// cannot forge a delivery out of thin air. Modeled as a silent
	// Byzantine sender plus a flooding accomplice at N=7, F=2.
	cfg := brb.Config{N: 7, F: 2, Sender: 0,
		Byzantine: map[int]brb.Behavior{0: brb.Silent, 3: brb.SupportBoth}, Seed: 11}
	res, err := brb.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delivered) != 0 {
		t.Errorf("flooders forged a delivery: %v", res.Delivered)
	}
}
