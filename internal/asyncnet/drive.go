package asyncnet

import (
	"fmt"
	"math/rand"

	"github.com/flpsim/flp/internal/model"
)

// DriveOptions configure a driven execution of a Net.
type DriveOptions struct {
	// MaxSteps bounds the execution. Default 10000.
	MaxSteps int
	// Seed drives the random policy.
	Seed int64
	// RoundRobin selects the deterministic FIFO policy instead of the
	// seeded random one.
	RoundRobin bool
	// CrashAfter maps a process to the number of steps after which the
	// controller stops granting it steps (0 = never granted any).
	CrashAfter map[model.PID]int
}

// DriveResult reports a driven execution.
type DriveResult struct {
	Steps int
	// Decisions maps decided processes to their values.
	Decisions map[model.PID]model.Value
	// AllLiveDecided reports whether every non-crashed process decided.
	AllLiveDecided bool
	// AgreementViolated reports two differing decisions.
	AgreementViolated bool
	// Quiescent reports the policy ran out of useful events.
	Quiescent bool
}

// Drive runs pr on a fresh Net under the selected policy until every live
// process has decided, quiescence, or the step bound. It owns the Net's
// lifecycle (the goroutines are shut down before it returns).
func Drive(pr model.Protocol, inputs model.Inputs, opt DriveOptions) (*DriveResult, error) {
	if opt.MaxSteps <= 0 {
		opt.MaxSteps = 10000
	}
	net, err := New(pr, inputs)
	if err != nil {
		return nil, err
	}
	defer net.Close()

	for p, k := range opt.CrashAfter {
		if k == 0 {
			net.Crash(p)
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	res := &DriveResult{Decisions: map[model.PID]model.Value{}}
	rrNext := 0

	// nullQuiet marks processes that already took a spontaneous (null)
	// step and have received nothing since: granting them further null
	// steps cannot help, because the controller cannot see inside their
	// state and every protocol here acts on its first spontaneous step.
	// This is a liveness heuristic, never a correctness condition — any
	// message delivery resets it.
	nullQuiet := make([]bool, net.N())

	for net.Steps() < opt.MaxSteps {
		if allLiveDecided(net) {
			break
		}
		p, msg, ok := pickNext(net, opt, rng, &rrNext, nullQuiet)
		if !ok {
			res.Quiescent = true
			break
		}
		if err := net.Step(p, msg); err != nil {
			return nil, err
		}
		nullQuiet[p] = msg == nil
		if k, ok := opt.CrashAfter[p]; ok && net.StepsOf(p) >= k {
			net.Crash(p)
		}
	}

	res.Steps = net.Steps()
	for p := 0; p < net.N(); p++ {
		if o := net.Output(model.PID(p)); o.Decided() {
			res.Decisions[model.PID(p)] = o.Value()
		}
	}
	res.AllLiveDecided = allLiveDecided(net)
	seen := map[model.Value]bool{}
	for _, v := range res.Decisions {
		seen[v] = true
	}
	res.AgreementViolated = len(seen) > 1
	return res, nil
}

func pickNext(net *Net, opt DriveOptions, rng *rand.Rand, rrNext *int, nullQuiet []bool) (model.PID, *model.Message, bool) {
	n := net.N()
	type candidate struct {
		p   model.PID
		msg *model.Message
	}
	var cands []candidate
	for i := 0; i < n; i++ {
		p := model.PID((*rrNext + i) % n)
		if !net.Alive(p) {
			continue
		}
		if m, ok := net.Oldest(p); ok {
			if opt.RoundRobin {
				*rrNext = (int(p) + 1) % n
				return p, &m, true
			}
			mc := m
			cands = append(cands, candidate{p, &mc})
			continue
		}
		if !nullQuiet[p] {
			if opt.RoundRobin {
				*rrNext = (int(p) + 1) % n
				return p, nil, true
			}
			cands = append(cands, candidate{p, nil})
		}
	}
	if len(cands) == 0 {
		return 0, nil, false
	}
	c := cands[rng.Intn(len(cands))]
	return c.p, c.msg, true
}

func allLiveDecided(net *Net) bool {
	any := false
	for p := 0; p < net.N(); p++ {
		if !net.Alive(model.PID(p)) {
			continue
		}
		any = true
		if !net.Output(model.PID(p)).Decided() {
			return false
		}
	}
	return any
}

// DriveMany runs an ensemble across consecutive seeds, mirroring
// runtime.RunMany for the concurrent executor.
func DriveMany(pr model.Protocol, inputs model.Inputs, opt DriveOptions, runs int) (decided, violations int, err error) {
	base := opt.Seed
	for i := 0; i < runs; i++ {
		o := opt
		o.Seed = base + int64(i)
		res, derr := Drive(pr, inputs, o)
		if derr != nil {
			return decided, violations, fmt.Errorf("asyncnet: run %d: %w", i, derr)
		}
		if res.AllLiveDecided {
			decided++
		}
		if res.AgreementViolated {
			violations++
		}
	}
	return decided, violations, nil
}
