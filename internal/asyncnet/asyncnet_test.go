package asyncnet_test

import (
	"testing"

	"github.com/flpsim/flp/internal/asyncnet"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
	"github.com/flpsim/flp/internal/runtime"
)

func TestDriveWaitAllDecides(t *testing.T) {
	pr := protocols.NewWaitAll(3)
	res, err := asyncnet.Drive(pr, model.Inputs{0, 1, 1},
		asyncnet.DriveOptions{RoundRobin: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllLiveDecided {
		t.Fatalf("concurrent run did not decide: %+v", res)
	}
	if res.Decisions[0] != model.V1 || len(res.Decisions) != 3 {
		t.Errorf("decisions = %v", res.Decisions)
	}
}

func TestDriveMatchesSequentialRoundRobin(t *testing.T) {
	// With the deterministic round-robin FIFO policy, the concurrent
	// executor must reach exactly the same decisions as the sequential
	// simulator — the goroutines are serialized by the controller.
	for _, tc := range []struct {
		pr model.Protocol
		in model.Inputs
	}{
		{protocols.NewWaitAll(3), model.Inputs{0, 1, 1}},
		{protocols.NewTwoPhaseCommit(3), model.Inputs{1, 1, 1}},
		{protocols.NewTwoPhaseCommit(3), model.Inputs{1, 0, 1}},
		{protocols.NewPaxosSynod(3), model.Inputs{0, 1, 1}},
		{protocols.NewBenOrDeterministic(3, 42), model.Inputs{0, 1, 1}},
	} {
		seq, err := runtime.Run(tc.pr, tc.in, runtime.NewRoundRobin(),
			runtime.RunOptions{MaxSteps: 50000})
		if err != nil {
			t.Fatal(err)
		}
		conc, err := asyncnet.Drive(tc.pr, tc.in,
			asyncnet.DriveOptions{RoundRobin: true, MaxSteps: 50000})
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Decisions) != len(conc.Decisions) {
			t.Errorf("%s %s: sequential decided %v, concurrent %v",
				tc.pr.Name(), tc.in, seq.Decisions, conc.Decisions)
			continue
		}
		for p, v := range seq.Decisions {
			if conc.Decisions[p] != v {
				t.Errorf("%s %s: p%d sequential %v, concurrent %v",
					tc.pr.Name(), tc.in, p, v, conc.Decisions[p])
			}
		}
	}
}

func TestDriveRandomPolicyAgreesAcrossSeeds(t *testing.T) {
	pr := protocols.NewPaxosSynod(3)
	decided, violations, err := asyncnet.DriveMany(pr, model.Inputs{0, 1, 1},
		asyncnet.DriveOptions{MaxSteps: 100000}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if decided != 20 {
		t.Errorf("decided %d/20 concurrent Paxos runs", decided)
	}
	if violations != 0 {
		t.Errorf("%d agreement violations", violations)
	}
}

func TestCrashIsInvisibleUntilItMatters(t *testing.T) {
	// Crash one process of WaitAll mid-run; survivors block exactly as in
	// the sequential model. The goroutine is still alive — merely never
	// scheduled — which is the paper's unannounced death.
	pr := protocols.NewWaitAll(3)
	res, err := asyncnet.Drive(pr, model.Inputs{0, 1, 1},
		asyncnet.DriveOptions{RoundRobin: true, MaxSteps: 2000,
			CrashAfter: map[model.PID]int{2: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllLiveDecided {
		t.Error("WaitAll decided despite a crashed process")
	}
	if !res.Quiescent {
		t.Error("run should go quiescent once nothing useful remains")
	}
}

func TestDriveBenOrWithCrashes(t *testing.T) {
	pr := protocols.NewBenOrDeterministic(5, 9)
	res, err := asyncnet.Drive(pr, model.Inputs{0, 1, 1, 0, 1},
		asyncnet.DriveOptions{MaxSteps: 100000, Seed: 4,
			CrashAfter: map[model.PID]int{0: 0, 4: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllLiveDecided || res.AgreementViolated {
		t.Errorf("benor concurrent: decided=%v violated=%v", res.AllLiveDecided, res.AgreementViolated)
	}
}

func TestNetManualStepping(t *testing.T) {
	pr := protocols.NewWaitAll(2)
	net, err := asyncnet.New(pr, model.Inputs{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	if net.N() != 2 || net.Steps() != 0 {
		t.Fatalf("fresh net: N=%d steps=%d", net.N(), net.Steps())
	}
	// p0's first step broadcasts its vote.
	if err := net.Step(0, nil); err != nil {
		t.Fatal(err)
	}
	if net.StepsOf(0) != 1 {
		t.Errorf("StepsOf(0) = %d", net.StepsOf(0))
	}
	m, ok := net.Oldest(1)
	if !ok {
		t.Fatal("no pending message for p1 after p0's broadcast")
	}
	if err := net.Step(1, &m); err != nil {
		t.Fatal(err)
	}
	// p1 has p0's vote and its own: with n=2 it decides.
	if !net.Output(1).Decided() {
		t.Error("p1 undecided after hearing everyone")
	}
	if len(net.Pending(1)) != 0 {
		t.Errorf("p1 still has %d pending", len(net.Pending(1)))
	}
}

func TestNetRejectsBadSteps(t *testing.T) {
	pr := protocols.NewWaitAll(2)
	net, err := asyncnet.New(pr, model.Inputs{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	if err := net.Step(9, nil); err == nil {
		t.Error("step for nonexistent process accepted")
	}
	ghost := model.Message{To: 0, From: 1, Body: "V1"}
	if err := net.Step(0, &ghost); err == nil {
		t.Error("delivery of absent message accepted")
	}
	net.Crash(1)
	if net.Alive(1) {
		t.Error("crashed process reported alive")
	}
	if err := net.Step(1, nil); err == nil {
		t.Error("step granted to crashed process")
	}
}

func TestNetInputValidation(t *testing.T) {
	if _, err := asyncnet.New(protocols.NewWaitAll(3), model.Inputs{0}); err == nil {
		t.Error("mismatched inputs accepted")
	}
}

func TestManyNetsInParallel(t *testing.T) {
	// Spin up several systems concurrently to exercise goroutine
	// lifecycles under the race detector.
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(seed int64) {
			pr := protocols.NewBenOrDeterministic(3, uint64(seed))
			res, err := asyncnet.Drive(pr, model.Inputs{0, 1, 1},
				asyncnet.DriveOptions{MaxSteps: 50000, Seed: seed})
			if err == nil && !res.AllLiveDecided {
				err = errDidNotDecide
			}
			done <- err
		}(int64(i))
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

var errDidNotDecide = &driveError{"concurrent run did not decide"}

type driveError struct{ s string }

func (e *driveError) Error() string { return e.s }
