// Package asyncnet executes a protocol with each process running as its
// own goroutine, communicating only through channels — the paper's
// asynchronous system realized on real concurrency instead of the
// sequential simulator of package runtime.
//
// The nondeterministic message system is a controller goroutine that owns
// the buffer: it grants one step at a time to a process chosen by the
// scheduling policy, handing it a delivered message (or ∅) and collecting
// the messages it sends. Process goroutines never share memory; their
// states live entirely inside the goroutine and cross the channel only as
// results. A crash is the controller ceasing to grant steps — from every
// other process's point of view the victim is indistinguishable from slow,
// which is the observation the whole paper is built on.
//
// Determinism: with a deterministic policy (round-robin FIFO) an asyncnet
// execution reaches exactly the same decisions as the sequential runtime,
// goroutine interleaving notwithstanding, because the controller serializes
// steps. The value of this package is fidelity (true message-passing
// concurrency, real crash semantics) and load (many systems in parallel).
package asyncnet

import (
	"fmt"
	"sync"

	"github.com/flpsim/flp/internal/fifo"
	"github.com/flpsim/flp/internal/model"
)

// stepReq grants one step to a process: the delivered message, or nil for
// the null delivery.
type stepReq struct {
	msg *model.Message
}

// stepResp reports the step's visible effects: messages sent and the
// output register content. The state itself never leaves the goroutine.
type stepResp struct {
	sends  []model.Message
	output model.Output
	err    error
}

// procHandle is the controller's view of one process goroutine.
type procHandle struct {
	req   chan stepReq
	resp  chan stepResp
	alive bool // still granted steps (crash-stop flag, controller-side)
}

// Net is a running system of process goroutines plus the controlling
// message system.
type Net struct {
	pr      model.Protocol
	procs   []*procHandle
	tracker *fifo.Tracker
	outputs []model.Output
	steps   int
	stepsBy []int
	wg      sync.WaitGroup
}

// New launches one goroutine per process of pr, each initialized with its
// input from inputs. Call Close to terminate them.
func New(pr model.Protocol, inputs model.Inputs) (*Net, error) {
	n := pr.N()
	if len(inputs) != n {
		return nil, fmt.Errorf("asyncnet: %d inputs for %d processes", len(inputs), n)
	}
	net := &Net{
		pr:      pr,
		procs:   make([]*procHandle, n),
		tracker: fifo.New(),
		outputs: make([]model.Output, n),
		stepsBy: make([]int, n),
	}
	for p := 0; p < n; p++ {
		h := &procHandle{
			req:   make(chan stepReq),
			resp:  make(chan stepResp),
			alive: true,
		}
		net.procs[p] = h
		net.wg.Add(1)
		go net.processLoop(model.PID(p), inputs[p], h)
	}
	return net, nil
}

// processLoop is the body of one process goroutine: it owns the state and
// applies the protocol's transition function per granted step.
func (net *Net) processLoop(p model.PID, input model.Value, h *procHandle) {
	defer net.wg.Done()
	state := net.pr.Init(p, input)
	for req := range h.req {
		next, sends := net.pr.Step(p, state, req.msg)
		resp := stepResp{}
		switch {
		case next == nil:
			resp.err = fmt.Errorf("asyncnet: process %d: Step returned nil state", p)
		case state.Output().Decided() && next.Output() != state.Output():
			resp.err = fmt.Errorf("asyncnet: process %d: write-once output register violated", p)
		default:
			state = next
			stamped := make([]model.Message, len(sends))
			for i, m := range sends {
				m.From = p
				stamped[i] = m
			}
			resp.sends = stamped
			resp.output = state.Output()
		}
		h.resp <- resp
	}
}

// Step grants one step to process p delivering msg (nil for ∅). The
// message must be pending for p. It synchronously waits for the step to
// complete — the controller is the serialization point.
func (net *Net) Step(p model.PID, msg *model.Message) error {
	if int(p) < 0 || int(p) >= len(net.procs) {
		return fmt.Errorf("asyncnet: no process %d", p)
	}
	h := net.procs[p]
	if !h.alive {
		return fmt.Errorf("asyncnet: process %d is crashed", p)
	}
	if msg != nil {
		if err := net.tracker.Deliver(*msg); err != nil {
			return err
		}
	}
	h.req <- stepReq{msg: msg}
	resp := <-h.resp
	if resp.err != nil {
		return resp.err
	}
	for _, m := range resp.sends {
		net.tracker.Send(m)
	}
	net.outputs[p] = resp.output
	net.steps++
	net.stepsBy[p]++
	return nil
}

// Crash marks p crashed: the controller will never grant it another step.
// Its goroutine keeps blocking on its request channel until Close — alive
// in every observable sense except that it is never scheduled, the paper's
// unannounced death.
func (net *Net) Crash(p model.PID) {
	if int(p) >= 0 && int(p) < len(net.procs) {
		net.procs[p].alive = false
	}
}

// Alive reports whether p may still be granted steps.
func (net *Net) Alive(p model.PID) bool {
	return int(p) >= 0 && int(p) < len(net.procs) && net.procs[p].alive
}

// Output returns the last observed output register content of p.
func (net *Net) Output(p model.PID) model.Output { return net.outputs[p] }

// Pending returns the messages pending for p in send order.
func (net *Net) Pending(p model.PID) []model.Message { return net.tracker.PendingList(p) }

// Oldest returns p's earliest pending message.
func (net *Net) Oldest(p model.PID) (model.Message, bool) { return net.tracker.Oldest(p) }

// Steps returns the total number of steps granted.
func (net *Net) Steps() int { return net.steps }

// StepsOf returns the number of steps granted to p.
func (net *Net) StepsOf(p model.PID) int { return net.stepsBy[p] }

// N returns the number of processes.
func (net *Net) N() int { return len(net.procs) }

// Close terminates every process goroutine and waits for them to exit.
// The Net must not be used afterwards.
func (net *Net) Close() {
	for _, h := range net.procs {
		close(h.req)
	}
	net.wg.Wait()
}
