// Package failuredetector implements the unreliable-failure-detector
// escape from the FLP impossibility (Chandra & Toueg, "Unreliable failure
// detectors for reliable distributed systems"): augment the asynchronous
// model with an oracle that may mis-suspect processes, and consensus
// becomes solvable with f < N/2 crash faults — liveness hinging entirely
// on the oracle's eventual accuracy, safety on nothing at all.
//
// The paper under reproduction proves why some such augmentation is
// necessary; this package demonstrates that the weakest useful one
// suffices, and that each property of the detector is load-bearing:
//
//   - an eventually accurate detector yields decisions one rotation after
//     it stabilizes;
//   - a detector with no accuracy (suspect everyone, always) livelocks the
//     rotating coordinator forever — the FLP adversary reborn as oracle
//     noise;
//   - a detector with no completeness (never suspect anyone) blocks the
//     first time a coordinator dies, because no process can justify moving
//     on — the paper's "impossible to tell whether a process has died or
//     is just running very slowly", verbatim.
package failuredetector

import (
	"math/rand"
)

// Detector is the failure-detector oracle: at a global time tick, does
// process p suspect process q? Implementations receive the ground-truth
// crash indicator so they can model completeness; real detectors
// approximate it with timeouts, which the asynchronous model forbids — the
// oracle is exactly the extra power FLP says is needed.
type Detector interface {
	Name() string
	// Suspects reports whether p suspects q at the given tick. crashed
	// tells the implementation whether q is actually crashed by now.
	Suspects(p, q, tick int, crashed bool) bool
}

// EventuallyAccurate models ◇P (eventually perfect), which implies the ◇S
// detector of the Chandra-Toueg algorithm: before StableAt it may suspect
// anyone (seeded noise); from StableAt on it suspects exactly the crashed
// processes.
type EventuallyAccurate struct {
	// StableAt is the tick from which suspicions are exact.
	StableAt int
	// NoiseProb is the pre-stability probability of suspecting any given
	// process at any given tick.
	NoiseProb float64
	// Seed drives the pre-stability noise.
	Seed int64
}

// Name implements Detector.
func (d EventuallyAccurate) Name() string { return "eventually-accurate" }

// Suspects implements Detector.
func (d EventuallyAccurate) Suspects(p, q, tick int, crashed bool) bool {
	if tick >= d.StableAt {
		return crashed
	}
	// Deterministic per (p, q, tick): derive a value from the tuple.
	h := rand.New(rand.NewSource(d.Seed ^ int64(p)<<40 ^ int64(q)<<20 ^ int64(tick)))
	return h.Float64() < d.NoiseProb
}

// Paranoid suspects everyone always: complete but never accurate. The
// rotating coordinator never survives a round, so no decision is ever
// reached — oracle-flavoured FLP.
type Paranoid struct{}

// Name implements Detector.
func (Paranoid) Name() string { return "paranoid" }

// Suspects implements Detector.
func (Paranoid) Suspects(int, int, int, bool) bool { return true }

// Blind never suspects anyone: accurate but not complete. The first
// crashed coordinator blocks the protocol forever, because without
// timeouts nobody can distinguish its death from slowness.
type Blind struct{}

// Name implements Detector.
func (Blind) Name() string { return "blind" }

// Suspects implements Detector.
func (Blind) Suspects(int, int, int, bool) bool { return false }
