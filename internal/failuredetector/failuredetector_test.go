package failuredetector_test

import (
	"testing"

	fd "github.com/flpsim/flp/internal/failuredetector"
	"github.com/flpsim/flp/internal/model"
)

func accurate() fd.Detector { return fd.EventuallyAccurate{StableAt: 0} }

func TestDecidesWithAccurateDetector(t *testing.T) {
	opt := fd.Options{N: 3, F: 1, Detector: accurate(), Lag: 2}
	res, err := fd.Run(opt, model.Inputs{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllLiveDecided(opt) {
		t.Fatalf("did not decide: %+v", res)
	}
	if !res.Agreement {
		t.Error("agreement violated")
	}
	if res.DecisionRound != 0 {
		t.Errorf("decision round = %d, want 0 with a clean detector", res.DecisionRound)
	}
}

func TestSkipsCrashedCoordinators(t *testing.T) {
	// p0 and p1 (coordinators of rounds 0 and 1) are dead from the start;
	// an accurate detector skips straight to round 2.
	opt := fd.Options{N: 5, F: 2, Detector: accurate(), Lag: 2,
		CrashTick: map[int]int{0: 0, 1: 0}}
	res, err := fd.Run(opt, model.Inputs{0, 1, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllLiveDecided(opt) || !res.Agreement {
		t.Fatalf("decided=%v agreement=%v", res.AllLiveDecided(opt), res.Agreement)
	}
	if res.DecisionRound != 2 {
		t.Errorf("decision round = %d, want 2 (first live coordinator)", res.DecisionRound)
	}
	if res.SkippedRounds != 2 {
		t.Errorf("skipped %d rounds, want 2", res.SkippedRounds)
	}
}

func TestParanoidDetectorLivelocks(t *testing.T) {
	// Complete but never accurate: every round is abandoned before the
	// proposal can arrive. No decision, ever — and no disagreement either.
	opt := fd.Options{N: 3, F: 1, Detector: fd.Paranoid{}, Lag: 2, MaxTicks: 3000}
	res, err := fd.Run(opt, model.Inputs{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 0 {
		t.Fatalf("paranoid detector decided: %v", res.Decisions)
	}
	if !res.Agreement {
		t.Error("vacuous agreement broken")
	}
	if res.Rounds < 100 {
		t.Errorf("only %d rounds churned in 3000 ticks", res.Rounds)
	}
}

func TestBlindDetectorBlocksOnDeadCoordinator(t *testing.T) {
	// Accurate but not complete: when the round-0 coordinator is dead,
	// nobody can ever justify moving on — the paper's indistinguishability
	// of death and slowness, re-enacted.
	opt := fd.Options{N: 3, F: 1, Detector: fd.Blind{}, Lag: 2, MaxTicks: 3000,
		CrashTick: map[int]int{0: 0}}
	res, err := fd.Run(opt, model.Inputs{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 0 {
		t.Fatalf("blind detector decided past a dead coordinator: %v", res.Decisions)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want to be stuck in round 0 forever", res.Rounds)
	}
}

func TestBlindDetectorFineWithoutCrashes(t *testing.T) {
	opt := fd.Options{N: 3, F: 1, Detector: fd.Blind{}, Lag: 2}
	res, err := fd.Run(opt, model.Inputs{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllLiveDecided(opt) || !res.Agreement {
		t.Errorf("blind detector without crashes: decided=%v", res.AllLiveDecided(opt))
	}
}

func TestNoisyDetectorEventuallyDecides(t *testing.T) {
	// Heavy suspicion noise until tick 60, then exact: rounds churn while
	// noisy, a decision lands within a rotation of stabilization, and
	// agreement holds across seeds throughout.
	for seed := int64(0); seed < 15; seed++ {
		det := fd.EventuallyAccurate{StableAt: 60, NoiseProb: 0.4, Seed: seed}
		opt := fd.Options{N: 5, F: 2, Detector: det, Lag: 3, MaxTicks: 5000,
			CrashTick: map[int]int{4: 10}}
		res, err := fd.Run(opt, model.Inputs{0, 1, 1, 0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllLiveDecided(opt) {
			t.Fatalf("seed %d: no decision after stabilization", seed)
		}
		if !res.Agreement {
			t.Fatalf("seed %d: agreement violated", seed)
		}
		for _, v := range res.Decisions {
			if v != 0 && v != 1 {
				t.Fatalf("seed %d: absurd decision %v", seed, v)
			}
		}
	}
}

func TestUnanimousValidity(t *testing.T) {
	for _, v := range []model.Value{model.V0, model.V1} {
		opt := fd.Options{N: 5, F: 2, Detector: accurate(), Lag: 2,
			CrashTick: map[int]int{1: 0}}
		res, err := fd.Run(opt, model.UniformInputs(5, v))
		if err != nil {
			t.Fatal(err)
		}
		for p, got := range res.Decisions {
			if got != v {
				t.Errorf("unanimous %v: p%d decided %v", v, p, got)
			}
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	cases := []fd.Options{
		{N: 1, F: 0, Detector: accurate(), Lag: 1},
		{N: 4, F: 2, Detector: accurate(), Lag: 1},
		{N: 3, F: 1, Lag: 1},                       // no detector
		{N: 3, F: 1, Detector: accurate(), Lag: 0}, // no lag
		{N: 3, F: 0, Detector: accurate(), Lag: 1, CrashTick: map[int]int{0: 0}},
	}
	for i, opt := range cases {
		if _, err := fd.Run(opt, make(model.Inputs, opt.N)); err == nil {
			t.Errorf("case %d accepted: %+v", i, opt)
		}
	}
	good := fd.Options{N: 3, F: 1, Detector: accurate(), Lag: 1}
	if _, err := fd.Run(good, model.Inputs{0, 1}); err == nil {
		t.Error("mismatched inputs accepted")
	}
}

func TestDetectorNames(t *testing.T) {
	if (fd.Paranoid{}).Name() == "" || (fd.Blind{}).Name() == "" ||
		(fd.EventuallyAccurate{}).Name() == "" {
		t.Error("detector names empty")
	}
}
