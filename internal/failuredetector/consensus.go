package failuredetector

import (
	"fmt"

	"github.com/flpsim/flp/internal/model"
)

// Options configure one run of the rotating-coordinator consensus.
type Options struct {
	// N is the number of processes; F the crash budget (F < N/2).
	N, F int
	// Detector is the failure-detector oracle.
	Detector Detector
	// Lag is how many ticks a coordinator's proposal takes to arrive —
	// the asynchrony the detector races against. Must be ≥ 1.
	Lag int
	// MaxTicks bounds the execution.
	MaxTicks int
	// CrashTick maps a process to the tick at which it crash-stops
	// (0 = initially dead).
	CrashTick map[int]int
}

func (o Options) validate() error {
	if o.N < 2 {
		return fmt.Errorf("failuredetector: need N ≥ 2, got %d", o.N)
	}
	if o.F < 0 || 2*o.F >= o.N {
		return fmt.Errorf("failuredetector: need 0 ≤ F < N/2, got F=%d N=%d", o.F, o.N)
	}
	if len(o.CrashTick) > o.F {
		return fmt.Errorf("failuredetector: %d crashes exceed budget F=%d", len(o.CrashTick), o.F)
	}
	if o.Detector == nil {
		return fmt.Errorf("failuredetector: no detector")
	}
	if o.Lag < 1 {
		return fmt.Errorf("failuredetector: Lag must be ≥ 1, got %d", o.Lag)
	}
	return nil
}

// Result reports one execution.
type Result struct {
	// Decisions maps decided processes to values.
	Decisions map[int]model.Value
	// DecisionRound is the round in which the deciding proposal was made.
	DecisionRound int
	// Rounds counts coordinator rounds attempted; Ticks counts global
	// time.
	Rounds, Ticks int
	// Agreement reports a single decision value.
	Agreement bool
	// SkippedRounds counts rounds abandoned on suspicion.
	SkippedRounds int
}

// AllLiveDecided reports whether every non-crashed process decided.
func (r *Result) AllLiveDecided(opt Options) bool {
	for p := 0; p < opt.N; p++ {
		if _, crashed := opt.CrashTick[p]; crashed {
			continue
		}
		if _, ok := r.Decisions[p]; !ok {
			return false
		}
	}
	return true
}

type proc struct {
	estimate model.Value
	ts       int // round of last adoption
	decided  bool
	decision model.Value
}

// Run executes the Chandra-Toueg-style rotating-coordinator consensus: in
// round r, coordinator c = r mod N gathers ≥ N-F estimates, proposes the
// one with the highest adoption round, and every process waits for that
// proposal — delivery takes Lag ticks — unless its detector makes it
// suspect c first, in which case it abandons the round. A proposal
// acknowledged by ≥ N-F processes is decided and the decision is relayed
// reliably. Safety never consults the detector; liveness is exactly as
// good as its suspicions.
func Run(opt Options, inputs model.Inputs) (*Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if len(inputs) != opt.N {
		return nil, fmt.Errorf("failuredetector: %d inputs for N=%d", len(inputs), opt.N)
	}
	if opt.MaxTicks <= 0 {
		opt.MaxTicks = 10000
	}
	procs := make([]proc, opt.N)
	for p := range procs {
		procs[p] = proc{estimate: inputs[p], ts: -1}
	}
	res := &Result{Decisions: map[int]model.Value{}, DecisionRound: -1}

	alive := func(p, tick int) bool {
		ct, crashed := opt.CrashTick[p]
		return !crashed || tick < ct
	}

	tick := 0
	round := 0
	for tick < opt.MaxTicks {
		res.Rounds = round + 1
		c := round % opt.N
		roundStart := tick

		// The coordinator assembles its proposal from ≥ N-F estimates
		// (reliable delivery from live senders; with ≤ F crashes the
		// quorum is always available while c is alive).
		proposalValid := false
		var proposal model.Value
		if alive(c, tick) {
			bestTS, count := -2, 0
			for p := 0; p < opt.N; p++ {
				if !alive(p, tick) {
					continue
				}
				count++
				if procs[p].ts > bestTS {
					bestTS = procs[p].ts
					proposal = procs[p].estimate
				}
			}
			proposalValid = count >= opt.N-opt.F
		}

		// Each live process waits for the proposal (arriving Lag ticks
		// after the round starts) or abandons on suspicion of c.
		acked := map[int]bool{}
		nacked := map[int]bool{}
		for tick < opt.MaxTicks {
			tick++
			arrived := proposalValid && alive(c, roundStart) && tick >= roundStart+opt.Lag
			for p := 0; p < opt.N; p++ {
				if !alive(p, tick) || acked[p] || nacked[p] {
					continue
				}
				switch {
				case arrived:
					procs[p].estimate = proposal
					procs[p].ts = round
					acked[p] = true
				case opt.Detector.Suspects(p, c, tick, !alive(c, tick)):
					nacked[p] = true
				}
			}
			done := true
			for p := 0; p < opt.N; p++ {
				if alive(p, tick) && !acked[p] && !nacked[p] {
					done = false
					break
				}
			}
			if done {
				break
			}
		}

		if len(acked) >= opt.N-opt.F {
			// Decide and relay reliably to every live process.
			tick++
			for p := 0; p < opt.N; p++ {
				if alive(p, tick) && !procs[p].decided {
					procs[p].decided = true
					procs[p].decision = proposal
					res.Decisions[p] = proposal
				}
			}
			res.DecisionRound = round
			break
		}
		if len(acked) == 0 {
			res.SkippedRounds++
		}
		round++
	}

	res.Ticks = tick
	seen := map[model.Value]bool{}
	for _, v := range res.Decisions {
		seen[v] = true
	}
	res.Agreement = len(seen) <= 1
	return res, nil
}
