// Package keyedcache provides a generic keyed result cache with
// singleflight build semantics: the first request for a key runs the
// build function, every concurrent request for the same key waits for
// that one build instead of starting its own, and later requests are
// answered from memory. N identical queries therefore cost exactly one
// build — the property the serving layer's shared atlas cache and the
// valency cache's TryWarm path are built on.
//
// Build results are memoized whether they succeed or fail: a build error
// is remembered and returned to every later caller for the same key, so
// an expensive build that is known to fail (an atlas refusal, say) is
// paid once. Callers that want failures retried use Forget.
package keyedcache

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Cache memoizes values of type V by string key. The zero value is not
// usable; construct with New. Safe for concurrent use.
type Cache[V any] struct {
	mu      sync.Mutex
	entries map[string]*entry[V]

	hits   atomic.Int64
	misses atomic.Int64
	merged atomic.Int64
}

// entry is one key's slot. done is closed when the build finishes; val
// and err are immutable after that.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New returns an empty cache.
func New[V any]() *Cache[V] {
	return &Cache[V]{entries: make(map[string]*entry[V])}
}

// Do returns the value for key, running build to produce it on first
// use. Exactly one build runs per key regardless of concurrency: callers
// that arrive while a build is in flight block until it completes and
// share its result. The reported hit is true when this call did not run
// build itself — a memory hit or a merged in-flight wait.
//
// A panicking build is converted into a memoized error, so waiters are
// released and later callers see the failure instead of deadlocking;
// the panic is then re-raised in the building goroutine.
func (c *Cache[V]) Do(key string, build func() (V, error)) (val V, err error, hit bool) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.done:
			c.hits.Add(1)
		default:
			c.merged.Add(1)
			<-e.done
		}
		return e.val, e.err, true
	}
	e := &entry[V]{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	finished := false
	defer func() {
		if !finished { // build panicked: memoize a failure and re-raise
			e.err = fmt.Errorf("keyedcache: build for %q panicked", key)
			close(e.done)
		}
	}()
	e.val, e.err = build()
	finished = true
	close(e.done)
	return e.val, e.err, false
}

// Get returns the memoized value for key without building. ok is false
// when the key is absent or its build is still in flight.
func (c *Cache[V]) Get(key string) (val V, err error, ok bool) {
	c.mu.Lock()
	e, present := c.entries[key]
	c.mu.Unlock()
	if !present {
		var zero V
		return zero, nil, false
	}
	select {
	case <-e.done:
		return e.val, e.err, true
	default:
		var zero V
		return zero, nil, false
	}
}

// Forget drops key's memoized result (or in-flight slot — waiters on the
// old build still complete against it). The next Do for key builds anew.
func (c *Cache[V]) Forget(key string) {
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
}

// Len returns the number of keys held, including builds in flight.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns cumulative counters: hits answered from memory, misses
// that ran a build, and merged calls that waited on another caller's
// in-flight build. hits+merged is the number of builds saved.
func (c *Cache[V]) Stats() (hits, misses, merged int64) {
	return c.hits.Load(), c.misses.Load(), c.merged.Load()
}
