package keyedcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSingleflight pins the core contract: N concurrent Do calls for one
// key run the build exactly once and all observe its result.
func TestSingleflight(t *testing.T) {
	c := New[int]()
	var builds atomic.Int64
	gate := make(chan struct{})

	const N = 32
	var wg sync.WaitGroup
	results := make([]int, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := c.Do("k", func() (int, error) {
				builds.Add(1)
				<-gate // hold the build open so every caller piles up on it
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("%d concurrent calls ran %d builds, want 1", N, got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d saw %d, want 42", i, v)
		}
	}
	hits, misses, merged := c.Stats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
	if hits+merged != N-1 {
		t.Errorf("hits+merged = %d, want %d", hits+merged, N-1)
	}
}

// TestDistinctKeys pins that keys are independent: each distinct key runs
// its own build and the values never cross.
func TestDistinctKeys(t *testing.T) {
	c := New[string]()
	var builds atomic.Int64
	for round := 0; round < 3; round++ { // later rounds are pure hits
		for i := 0; i < 5; i++ {
			key := fmt.Sprintf("key-%d", i)
			v, err, hit := c.Do(key, func() (string, error) {
				builds.Add(1)
				return "value-" + key, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if v != "value-"+key {
				t.Fatalf("key %q resolved to %q", key, v)
			}
			if wantHit := round > 0; hit != wantHit {
				t.Fatalf("round %d key %q: hit = %v, want %v", round, key, hit, wantHit)
			}
		}
	}
	if got := builds.Load(); got != 5 {
		t.Fatalf("ran %d builds for 5 distinct keys, want 5", got)
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d, want 5", c.Len())
	}
}

// TestErrorMemoized pins that failed builds are remembered — the point of
// memoizing atlas refusals — and that Forget clears the way for a retry.
func TestErrorMemoized(t *testing.T) {
	c := New[int]()
	boom := errors.New("boom")
	var builds atomic.Int64
	build := func() (int, error) { builds.Add(1); return 0, boom }

	if _, err, hit := c.Do("k", build); err != boom || hit {
		t.Fatalf("first Do: err=%v hit=%v, want boom/false", err, hit)
	}
	if _, err, hit := c.Do("k", build); err != boom || !hit {
		t.Fatalf("second Do: err=%v hit=%v, want memoized boom/true", err, hit)
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("failed build ran %d times, want 1 (memoized)", got)
	}

	c.Forget("k")
	if _, err, _ := c.Do("k", func() (int, error) { return 7, nil }); err != nil {
		t.Fatalf("Do after Forget: %v", err)
	}
	if v, err, ok := c.Get("k"); !ok || err != nil || v != 7 {
		t.Fatalf("Get after retry = (%d, %v, %v), want (7, nil, true)", v, err, ok)
	}
}

// TestPanicReleasesWaiters pins that a panicking build does not strand
// concurrent waiters: they observe a memoized error instead of hanging.
func TestPanicReleasesWaiters(t *testing.T) {
	c := New[int]()
	started := make(chan struct{})
	release := make(chan struct{})

	go func() {
		defer func() { recover() }() // the panic re-raises in the builder
		c.Do("k", func() (int, error) {
			close(started)
			<-release
			panic("kaboom")
		})
	}()

	<-started
	errc := make(chan error, 1)
	go func() {
		_, err, _ := c.Do("k", func() (int, error) { return 0, nil })
		errc <- err
	}()
	close(release)
	if err := <-errc; err == nil {
		t.Fatal("waiter on a panicked build got a nil error")
	}
}
