package deadstart

import (
	"testing"

	"github.com/flpsim/flp/internal/model"
)

// FuzzParseS2 hardens the only parser in the protocol against arbitrary
// message bodies: it must never panic and must reject malformed input
// (ok=false) rather than fabricate stage-2 data.
func FuzzParseS2(f *testing.F) {
	f.Add("S2|1|0,2,4")
	f.Add("S2|0|")
	f.Add("S2|2|1")
	f.Add("S1")
	f.Add("S2||")
	f.Add("S2|1|a,b")
	f.Add("")
	f.Add("S2|1|0,2,")
	f.Fuzz(func(t *testing.T, body string) {
		inf, ok := parseS2(body)
		if !ok {
			return
		}
		if inf.input != model.V0 && inf.input != model.V1 {
			t.Fatalf("parseS2(%q) accepted invalid input value %d", body, inf.input)
		}
		// Round-trip: a parsed message re-encodes to something that parses
		// to the same data.
		re := s2Body(inf.input, inf.heard)
		inf2, ok2 := parseS2(re)
		if !ok2 {
			t.Fatalf("re-encoded %q does not parse", re)
		}
		if inf2.input != inf.input || len(inf2.heard) != len(inf.heard) {
			t.Fatalf("round-trip mismatch: %v vs %v", inf, inf2)
		}
	})
}
