// Package deadstart implements the consensus protocol of Section 4 of the
// paper (Theorem 2): consensus is solvable when faults are restricted to
// processes that are dead from the start, a strict majority is alive, and
// no process dies during the execution.
//
// The protocol runs in two stages. In stage 1 every process broadcasts its
// process number and listens until it has heard from L-1 other processes,
// where L = ⌈(N+1)/2⌉; this defines the directed graph G with an edge
// i → j iff j heard from i, so G has indegree exactly L-1. In stage 2 every
// process broadcasts its number, its initial value, and the L-1 names it
// heard, then waits until it has received a stage-2 message from every
// ancestor it knows about — learning about more ancestors from each
// message — until the known-about set is closed. At that point it knows
// every edge of G incident on its ancestors, computes the transitive
// closure G+ restricted to them, finds the unique initial clique (nodes
// that are ancestors of all their own ancestors), and decides by an agreed
// rule on the clique members' initial values (here: majority, ties to 0).
// Since the initial clique is unique and every finisher computes the same
// one, all decisions agree.
package deadstart

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/flpsim/flp/internal/enc"
	"github.com/flpsim/flp/internal/graph"
	"github.com/flpsim/flp/internal/model"
)

// Protocol is the initially-dead-processes consensus protocol.
type Protocol struct {
	// Procs is the number of processes N ≥ 2.
	Procs int
}

// New returns the Section 4 protocol for n processes.
func New(n int) *Protocol { return &Protocol{Procs: n} }

// L returns the stage-1 threshold L = ⌈(N+1)/2⌉: each process waits to
// hear from L-1 others, and the protocol requires at least L live
// processes to terminate.
func (pr *Protocol) L() int { return (pr.Procs + 2) / 2 }

// s2info is the content of a stage-2 message: a process's initial value
// and the set of processes it heard from in stage 1.
type s2info struct {
	input model.Value
	heard []int // sorted
}

type state struct {
	me    model.PID
	input model.Value
	out   model.Output

	sentS1 bool
	heard  map[int]bool // stage-1 senders, capped at L-1

	sentS2 bool
	info   map[int]s2info // stage-2 data per process, including self
}

func (s *state) Key() string {
	var b enc.Builder
	b.Int(int(s.me)).Uint8(uint8(s.input)).Uint8(uint8(s.out))
	b.Bool(s.sentS1).IntSet(s.heard).Bool(s.sentS2)
	ids := make([]int, 0, len(s.info))
	for id := range s.info {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		inf := s.info[id]
		b.Int(id).Uint8(uint8(inf.input)).IntSlice(inf.heard)
	}
	return b.String()
}

func (s *state) Output() model.Output { return s.out }

func (s *state) clone() *state {
	ns := *s
	ns.heard = make(map[int]bool, len(s.heard))
	for k, v := range s.heard {
		ns.heard[k] = v
	}
	ns.info = make(map[int]s2info, len(s.info))
	for k, v := range s.info {
		ns.info[k] = v
	}
	return &ns
}

// Name implements model.Protocol.
func (pr *Protocol) Name() string { return fmt.Sprintf("deadstart(n=%d)", pr.Procs) }

// N implements model.Protocol.
func (pr *Protocol) N() int { return pr.Procs }

// Init implements model.Protocol.
func (pr *Protocol) Init(p model.PID, input model.Value) model.State {
	return &state{me: p, input: input, heard: map[int]bool{}, info: map[int]s2info{}}
}

const (
	bodyS1 = "S1"
	s2Tag  = "S2"
)

func s2Body(input model.Value, heard []int) string {
	parts := make([]string, len(heard))
	for i, h := range heard {
		parts[i] = strconv.Itoa(h)
	}
	return fmt.Sprintf("%s|%d|%s", s2Tag, input, strings.Join(parts, ","))
}

func parseS2(body string) (s2info, bool) {
	fields := strings.SplitN(body, "|", 3)
	if len(fields) != 3 || fields[0] != s2Tag {
		return s2info{}, false
	}
	v, err := strconv.Atoi(fields[1])
	if err != nil || (v != 0 && v != 1) {
		return s2info{}, false
	}
	inf := s2info{input: model.Value(v)}
	if fields[2] != "" {
		for _, part := range strings.Split(fields[2], ",") {
			h, err := strconv.Atoi(part)
			if err != nil {
				return s2info{}, false
			}
			inf.heard = append(inf.heard, h)
		}
	}
	return inf, true
}

// Step implements model.Protocol.
func (pr *Protocol) Step(p model.PID, s model.State, m *model.Message) (model.State, []model.Message) {
	st := s.(*state).clone()
	var sends []model.Message

	if !st.sentS1 {
		st.sentS1 = true
		sends = append(sends, model.BroadcastOthers(p, pr.Procs, bodyS1)...)
	}

	if m != nil {
		switch {
		case m.Body == bodyS1:
			if len(st.heard) < pr.L()-1 {
				st.heard[int(m.From)] = true
			}
		case strings.HasPrefix(m.Body, s2Tag):
			if inf, ok := parseS2(m.Body); ok {
				if _, dup := st.info[int(m.From)]; !dup {
					st.info[int(m.From)] = inf
				}
			}
		}
	}

	// Stage 1 complete: enter stage 2.
	if !st.sentS2 && len(st.heard) == pr.L()-1 {
		st.sentS2 = true
		mine := s2info{input: st.input, heard: sortedKeys(st.heard)}
		st.info[int(p)] = mine
		sends = append(sends, model.BroadcastOthers(p, pr.Procs, s2Body(mine.input, mine.heard))...)
	}

	// Stage 2 complete: known-about ancestor set closed under stage-2
	// reports. Compute the initial clique and decide.
	if st.sentS2 && !st.out.Decided() {
		if known, closed := pr.knownAncestors(st); closed {
			st.out = model.OutputOf(pr.decide(st, known))
		}
	}
	return st, sends
}

// knownAncestors computes the set of processes currently known to be
// ancestors of st.me, and whether a stage-2 message from every one of them
// has arrived (the stage-2 termination condition).
func (pr *Protocol) knownAncestors(st *state) (map[int]bool, bool) {
	known := make(map[int]bool)
	queue := sortedKeys(st.heard)
	for _, q := range queue {
		known[q] = true
	}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		inf, ok := st.info[q]
		if !ok {
			continue // not yet heard from q in stage 2
		}
		for _, a := range inf.heard {
			if !known[a] {
				known[a] = true
				queue = append(queue, a)
			}
		}
	}
	for q := range known {
		if _, ok := st.info[q]; !ok {
			return known, false
		}
	}
	return known, true
}

// decide builds G restricted to the known ancestors (all of whose edges are
// known), takes its transitive closure, extracts the initial clique, and
// applies the agreed rule: majority of the clique members' initial values,
// ties to 0.
func (pr *Protocol) decide(st *state, known map[int]bool) model.Value {
	g := graph.New(pr.Procs)
	for j := range known {
		for _, i := range st.info[j].heard {
			g.AddEdge(i, j)
		}
	}
	// Edges into me complete the picture but are not needed for the
	// clique; include them for fidelity to "edges incident on ancestors".
	for i := range st.heard {
		g.AddEdge(i, int(st.me))
	}
	clique := g.TransitiveClosure().InitialClique()
	ones := 0
	for _, k := range clique {
		if st.info[k].input == model.V1 {
			ones++
		}
	}
	if ones*2 > len(clique) {
		return model.V1
	}
	return model.V0
}

func sortedKeys(set map[int]bool) []int {
	ks := make([]int, 0, len(set))
	for k := range set {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
