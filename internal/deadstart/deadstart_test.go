package deadstart_test

import (
	"errors"
	"testing"

	"github.com/flpsim/flp/internal/adversary"
	"github.com/flpsim/flp/internal/deadstart"
	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/modeltest"
	"github.com/flpsim/flp/internal/runtime"
)

func crashes(victims ...model.PID) map[model.PID]int {
	m := make(map[model.PID]int, len(victims))
	for _, v := range victims {
		m[v] = 0 // initially dead
	}
	return m
}

func TestL(t *testing.T) {
	for n, want := range map[int]int{2: 2, 3: 2, 4: 3, 5: 3, 6: 4, 7: 4, 9: 5} {
		if got := deadstart.New(n).L(); got != want {
			t.Errorf("L(N=%d) = %d, want %d", n, got, want)
		}
	}
}

func TestConformance(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		modeltest.CheckConformance(t, deadstart.New(4), model.Inputs{0, 1, 1, 0}, 150, seed)
		modeltest.CheckConformance(t, deadstart.New(5), model.Inputs{0, 1, 1, 0, 1}, 150, seed)
	}
}

func TestAllAliveDecides(t *testing.T) {
	pr := deadstart.New(5)
	for _, in := range []model.Inputs{
		{0, 0, 0, 0, 0},
		{1, 1, 1, 1, 1},
		{0, 1, 1, 0, 1},
	} {
		res, err := runtime.Run(pr, in, runtime.NewRoundRobin(), runtime.RunOptions{MaxSteps: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllLiveDecided {
			t.Fatalf("inputs %s: did not decide", in)
		}
		if res.AgreementViolated {
			t.Fatalf("inputs %s: agreement violated", in)
		}
	}
}

func TestUnanimousValidity(t *testing.T) {
	pr := deadstart.New(5)
	for _, v := range []model.Value{model.V0, model.V1} {
		res, err := runtime.Run(pr, model.UniformInputs(5, v), runtime.NewRoundRobin(),
			runtime.RunOptions{MaxSteps: 5000, CrashAfter: crashes(1, 3)})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := res.DecidedValue(); !ok || got != v {
			t.Errorf("unanimous %v with dead minority: decided %v (ok=%v)", v, got, ok)
		}
	}
}

func TestMinorityDeadDecides(t *testing.T) {
	// Theorem 2's positive direction: with any minority initially dead,
	// all live processes decide the same value — across every dead subset
	// of size ≤ ⌊(N-1)/2⌋ and many schedules.
	pr := deadstart.New(5)
	in := model.Inputs{0, 1, 1, 0, 1}
	deadSets := [][]model.PID{
		{}, {0}, {2}, {4}, {0, 1}, {0, 4}, {1, 3}, {2, 3}, {3, 4},
	}
	for _, dead := range deadSets {
		for seed := int64(0); seed < 6; seed++ {
			agg, err := runtime.Run(pr, in, runtime.RandomFair{},
				runtime.RunOptions{MaxSteps: 20000, Seed: seed, CrashAfter: crashes(dead...)})
			if err != nil {
				t.Fatal(err)
			}
			if !agg.AllLiveDecided {
				t.Fatalf("dead=%v seed=%d: live processes did not decide", dead, seed)
			}
			if agg.AgreementViolated {
				t.Fatalf("dead=%v seed=%d: agreement violated: %v", dead, seed, agg.Decisions)
			}
			for _, d := range dead {
				if _, decided := agg.Decisions[d]; decided {
					t.Fatalf("dead process %d decided", d)
				}
			}
		}
	}
}

func TestDecisionsAgreeAcrossSchedules(t *testing.T) {
	// Different schedules may build different graphs G, so the decision
	// value may differ between runs — but within one run all processes
	// agree. Check a large ensemble for agreement (the paper's condition),
	// and that both decision values occur across the ensemble for mixed
	// inputs (nontriviality).
	pr := deadstart.New(5)
	agg, err := runtime.RunMany(pr, model.Inputs{0, 0, 1, 1, 1},
		func() runtime.Scheduler { return runtime.RandomFair{} },
		runtime.RunOptions{MaxSteps: 20000, CrashAfter: crashes(1)}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Violations != 0 {
		t.Fatalf("%d agreement violations", agg.Violations)
	}
	if agg.Decided != agg.Runs {
		t.Fatalf("only %d/%d runs decided", agg.Decided, agg.Runs)
	}
}

func TestMajorityDeadBlocks(t *testing.T) {
	// With only L-1 processes alive, stage 1 cannot complete: nobody ever
	// hears from L-1 others, so the protocol waits forever (it does not
	// decide wrongly).
	pr := deadstart.New(5) // L = 3
	res, err := runtime.Run(pr, model.Inputs{1, 1, 1, 1, 1}, runtime.NewRoundRobin(),
		runtime.RunOptions{MaxSteps: 5000, CrashAfter: crashes(0, 1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Blocked || len(res.Decisions) != 0 {
		t.Errorf("majority dead: blocked=%v decisions=%v, want blocked with none", res.Blocked, res.Decisions)
	}
	if !res.Quiescent {
		t.Error("blocked run should be quiescent (survivors have nothing to do)")
	}
}

func TestExactlyLAliveDecides(t *testing.T) {
	// The threshold case: exactly L alive suffices.
	pr := deadstart.New(5) // L = 3
	res, err := runtime.Run(pr, model.Inputs{0, 1, 0, 1, 0}, runtime.NewRoundRobin(),
		runtime.RunOptions{MaxSteps: 10000, CrashAfter: crashes(1, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllLiveDecided || res.AgreementViolated {
		t.Errorf("exactly L alive: decided=%v violated=%v", res.AllLiveDecided, res.AgreementViolated)
	}
}

func TestSmallestSystem(t *testing.T) {
	// N=2, L=2: both must be alive; a single death blocks it (consistent
	// with Theorem 1 — this protocol does not tolerate mid-run faults, and
	// with N=2 even an initial death leaves less than a majority).
	pr := deadstart.New(2)
	res, err := runtime.Run(pr, model.Inputs{0, 1}, runtime.NewRoundRobin(),
		runtime.RunOptions{MaxSteps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllLiveDecided || res.AgreementViolated {
		t.Errorf("N=2 all alive: decided=%v violated=%v", res.AllLiveDecided, res.AgreementViolated)
	}
	res2, err := runtime.Run(pr, model.Inputs{0, 1}, runtime.NewRoundRobin(),
		runtime.RunOptions{MaxSteps: 2000, CrashAfter: crashes(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Blocked {
		t.Error("N=2 with one dead should block")
	}
}

func TestLargerSystem(t *testing.T) {
	pr := deadstart.New(9) // L = 5
	in := model.Inputs{0, 1, 0, 1, 0, 1, 0, 1, 1}
	res, err := runtime.Run(pr, in, runtime.RandomFair{},
		runtime.RunOptions{MaxSteps: 100000, Seed: 11, CrashAfter: crashes(0, 2, 4, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllLiveDecided || res.AgreementViolated {
		t.Errorf("N=9, 4 dead: decided=%v violated=%v decisions=%v",
			res.AllLiveDecided, res.AgreementViolated, res.Decisions)
	}
}

func TestAdversaryCannotStallByDelayAlone(t *testing.T) {
	// The Theorem 1 / Theorem 2 boundary, executed. The protocol's mixed-
	// input initial configurations are bivalent (who hears whom decides
	// the outcome), so the adversary starts happily — but it is a pure
	// delay adversary: it must keep every process stepping and deliver
	// every oldest message each rotation. Since the protocol sends only
	// finitely many messages and tolerates no mid-run deaths, those forced
	// deliveries eventually resolve the graph and no bivalence-preserving
	// extension exists: the stage search must fail rather than decide.
	pr := deadstart.New(3)
	probe := explore.ProbeOptions{}
	adv := adversary.New(pr, adversary.Options{
		Stages:  40,
		Probe:   &probe,
		Search:  explore.Options{MaxConfigs: 3000},
		Valency: explore.Options{MaxConfigs: 2000},
	})
	res, err := adv.RunFromInputs(model.Inputs{0, 1, 1})
	var serr *adversary.StageError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %v, want StageError (delay alone cannot stall Theorem 2's protocol)", err)
	}
	if res.DecidedCount() != 0 {
		t.Error("the partial run must still be decision-free")
	}
	if len(res.Stages) == 0 {
		t.Error("the adversary should sustain at least the opening stages")
	}
}

func TestName(t *testing.T) {
	if deadstart.New(5).Name() != "deadstart(n=5)" {
		t.Errorf("Name = %q", deadstart.New(5).Name())
	}
}
