// Package distexplore runs the breadth-first reachability engine of
// package explore across multiple worker processes, partitioning the
// visited set by configuration hash range.
//
// # Architecture
//
// The 64-bit fingerprint space is split into S contiguous shard ranges;
// shard s is replicated on the R workers (s+r) mod W (replica.go), the
// first live of which is its primary. Each worker holds the visited-set
// entries and the frontier configurations whose hashes land in the shards
// it replicates, so memory scales out with the cluster — no member ever
// holds the whole state space — while every shard survives the loss of
// R−1 of its holders.
//
// A single coordinator drives the level-synchronous loop in a star
// topology, three RPC phases per level:
//
//   - Expand: each shard's primary expands that shard's slice of the
//     frontier through explore.ExpandConfig and returns candidates tagged
//     with (parent global index, successor index) — their position in the
//     canonical order. Expansion is pure, so a shard whose primary dies
//     mid-phase is simply re-issued to the next live replica, which
//     recomputes the identical candidates from its replicated frontier.
//   - Dedup: the coordinator sorts all candidates into global order,
//     groups them per shard, and sends each shard's batch to every live
//     replica; all replicas apply it (keeping their visited slices
//     identical) and answer which candidates are first-seen. The
//     coordinator settles freshness from the primary's answer and checks
//     the standbys agree.
//   - Adopt: the coordinator admits fresh candidates in global order under
//     the shared explore.Ledger budget, assigns node indices, and hands
//     each admitted node (canonical key + schedule from the root) to every
//     live replica of its shard, which rematerializes the configuration by
//     replay and verifies the key.
//
// Because admission decisions are made only at the coordinator, in the
// same canonical order as the in-process engines, and through the same
// Ledger, results — visit order, counts, witness schedules, the complete
// flag — are byte-identical to explore.Explore at every (workers × shards
// × replicas) combination, with or without worker failures.
//
// # Failure model
//
// RPCs carry deadlines; transient transport failures are retried over
// fresh connections with capped, fully-jittered exponential backoff, and
// worker request handling is idempotent per level (pure expansion, cached
// dedup responses, applied-level guards) so a replayed request is
// answered, not re-applied. A worker that stays unreachable is declared
// lost for the rest of the run: with replication (R ≥ 2) its shards fail
// over to their standbys and the run continues byte-identically; when a
// shard's entire replica chain is gone (always, at R = 1) the exploration
// aborts with a diagnostic error rather than hanging or silently
// re-exploring. Worker-reported errors (integrity failures) abort without
// failover — an answering worker is not crashed, and promoting its standby
// would mask real divergence.
//
// # Transports
//
// The Transport interface has two implementations: TCP for real clusters
// and Loopback, which runs every cluster member inside one process over
// in-memory pipes — the same framing, deadline, and retry code paths,
// which is how the differential tests pin distributed results to the
// sequential engine byte for byte. FaultyTransport (faults.go) wraps
// either with a seeded, deterministic fault plan — dropped connections,
// delayed or truncated frames, a scripted worker kill at a scripted level
// — which is how the failover tests prove the byte-identical contract
// under failure. Frames above a size threshold may be deflate-compressed
// when the per-connection hello exchange negotiates it (compress.go);
// peers that predate the hello frame interoperate unchanged.
package distexplore
