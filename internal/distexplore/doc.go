// Package distexplore runs the breadth-first reachability engine of
// package explore across multiple worker processes, partitioning the
// visited set by configuration hash range.
//
// # Architecture
//
// The 64-bit fingerprint space is split into S contiguous shard ranges;
// shard s is served by worker s mod W. Each worker holds the visited-set
// entries and the frontier configurations whose hashes land in its shards,
// so memory scales out with the cluster — no member ever holds the whole
// state space.
//
// A single coordinator drives the level-synchronous loop in a star
// topology, three RPC phases per level:
//
//   - Expand: every worker expands its owned slice of the frontier through
//     explore.ExpandConfig and returns candidates tagged with (parent
//     global index, successor index) — their position in the canonical
//     order.
//   - Dedup: the coordinator sorts all candidates into that global order,
//     routes each to its owning shard, and the owners answer which are
//     first-seen.
//   - Adopt: the coordinator admits fresh candidates in global order under
//     the shared explore.Ledger budget, assigns node indices, and hands
//     each admitted node (canonical key + schedule from the root) to its
//     owning worker, which rematerializes the configuration by replay and
//     verifies the key.
//
// Because admission decisions are made only at the coordinator, in the
// same canonical order as the in-process engines, and through the same
// Ledger, results — visit order, counts, witness schedules, the complete
// flag — are byte-identical to explore.Explore at every (workers × shards)
// combination.
//
// # Failure model
//
// RPCs carry deadlines; transient transport failures are retried over
// fresh connections with exponential backoff, and workers keep per-level
// response caches so a replayed request is answered, not re-applied. A
// worker that stays unreachable is fatal by design: its shards are the
// only copy of their slice of the visited set, so the exploration aborts
// with a diagnostic error rather than hanging or silently re-exploring.
//
// # Transports
//
// The Transport interface has two implementations: TCP for real clusters
// and Loopback, which runs every cluster member inside one process over
// in-memory pipes — the same framing, deadline, and retry code paths,
// which is how the differential tests pin distributed results to the
// sequential engine byte for byte.
package distexplore
