package distexplore

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Transport abstracts how cluster members reach each other, so the entire
// coordinator/worker protocol runs identically over real sockets and
// inside a single test process. Both implementations hand back net.Conn
// values (loopback uses net.Pipe), so deadlines, partial writes, and
// close-mid-RPC behave the same way in tests as in production.
type Transport interface {
	// Listen binds a worker endpoint. For TCP, addr is a host:port
	// ("127.0.0.1:0" picks a free port); for loopback, any unique name.
	Listen(addr string) (Listener, error)
	// Dial connects to a worker endpoint within the timeout.
	Dial(addr string, timeout time.Duration) (net.Conn, error)
}

// Listener accepts inbound coordinator connections.
type Listener interface {
	Accept() (net.Conn, error)
	Close() error
	// Addr returns the dialable address of the endpoint.
	Addr() string
}

// InProcessTransport marks transports whose connections never cross a
// machine boundary — bytes move through memory, so wire size is free and
// frame compression is pure CPU loss (the E21 failover benchmark measures
// 302ms compressed vs 183ms plain on loopback). The coordinator consults
// this marker to decide whether Compress should actually negotiate; see
// RPCOptions.Compress and CompressForce. Wrapping transports (fault
// injectors) implement it by delegating to what they wrap.
type InProcessTransport interface {
	// InProcess reports whether connections stay inside one process.
	InProcess() bool
}

// transportInProcess reports whether tr declares itself in-process.
// Transports without the marker — TCP among them — are assumed to cross
// the network.
func transportInProcess(tr Transport) bool {
	ip, ok := tr.(InProcessTransport)
	return ok && ip.InProcess()
}

// TCP is the production transport: plain TCP sockets.
type TCP struct{}

type tcpListener struct{ net.Listener }

func (l tcpListener) Addr() string { return l.Listener.Addr().String() }

// Listen implements Transport.
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{l}, nil
}

// Dial implements Transport.
func (TCP) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// Loopback is the in-process transport: a registry of named endpoints
// whose connections are synchronous in-memory pipes. It lets a whole
// cluster — coordinator and every worker — run inside one `go test`
// process with no network, exercising the same framing, deadline, and
// retry code paths as TCP.
type Loopback struct {
	mu        sync.Mutex
	endpoints map[string]*loopListener
}

// NewLoopback returns an empty loopback network.
func NewLoopback() *Loopback {
	return &Loopback{endpoints: make(map[string]*loopListener)}
}

// InProcess implements InProcessTransport: loopback connections are
// in-memory pipes, so the coordinator skips compression negotiation
// unless forced.
func (lb *Loopback) InProcess() bool { return true }

type loopListener struct {
	name   string
	lb     *Loopback
	accept chan net.Conn
	done   chan struct{}
	once   sync.Once
}

// Listen implements Transport.
func (lb *Loopback) Listen(addr string) (Listener, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if _, ok := lb.endpoints[addr]; ok {
		return nil, fmt.Errorf("distexplore: loopback endpoint %q already bound", addr)
	}
	l := &loopListener{name: addr, lb: lb, accept: make(chan net.Conn), done: make(chan struct{})}
	lb.endpoints[addr] = l
	return l, nil
}

// Dial implements Transport.
func (lb *Loopback) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	lb.mu.Lock()
	l, ok := lb.endpoints[addr]
	lb.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("distexplore: loopback endpoint %q not listening", addr)
	}
	client, server := net.Pipe()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("distexplore: loopback endpoint %q closed", addr)
	case <-t.C:
		return nil, fmt.Errorf("distexplore: loopback dial %q: timeout after %v", addr, timeout)
	}
}

// Accept implements Listener.
func (l *loopListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("distexplore: loopback endpoint %q closed", l.name)
	}
}

// Close implements Listener. The endpoint name becomes available again.
func (l *loopListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.lb.mu.Lock()
		delete(l.lb.endpoints, l.name)
		l.lb.mu.Unlock()
	})
	return nil
}

// Addr implements Listener.
func (l *loopListener) Addr() string { return l.name }
