package distexplore

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"github.com/flpsim/flp/internal/model"
)

// Wire-level frame compression. Large frontiers make expand responses and
// dedup batches the dominant bandwidth cost — thousands of canonical keys
// with heavily repeated structure, which DEFLATE shrinks well. Compression
// is negotiated, never assumed: the coordinator opens each connection with
// a hello frame listing the codecs it speaks, the worker answers with the
// one it accepts (or none), and only after that may either side set
// frameCompressedBit. A peer that predates the hello frame answers it with
// frameErr (unknown frame type), which the coordinator treats as "no
// compression" — so old and new cluster members interoperate with plain
// frames, unchanged.

// codecFlate is the one codec currently offered: stdlib DEFLATE at
// BestSpeed (the frames are latency-sensitive; level 1 already removes
// most of the key redundancy).
const codecFlate = "flate"

// compressThreshold is the payload size below which frames are always sent
// raw: small frames gain nothing and would pay the flate header.
const compressThreshold = 4 << 10

func deflate(p []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(p); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func inflate(p []byte) ([]byte, error) {
	zr := flate.NewReader(bytes.NewReader(p))
	defer zr.Close()
	// The +1 lets a too-large payload be detected rather than silently cut.
	raw, err := io.ReadAll(io.LimitReader(zr, maxFramePayload+1))
	if err != nil {
		return nil, err
	}
	if len(raw) > maxFramePayload {
		return nil, fmt.Errorf("inflated payload exceeds %d-byte limit", maxFramePayload)
	}
	return raw, nil
}

// encodeHello lists the codecs the coordinator offers.
func encodeHello(codecs []string) []byte {
	b := model.AppendUvarint(nil, uint64(len(codecs)))
	for _, c := range codecs {
		b = model.AppendString(b, c)
	}
	return b
}

func decodeHello(b []byte) ([]string, error) {
	count, n, err := model.ConsumeUvarint(b)
	if err != nil {
		return nil, fmt.Errorf("hello codec count: %w", err)
	}
	b = b[n:]
	codecs := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		c, n, err := model.ConsumeString(b)
		if err != nil {
			return nil, fmt.Errorf("hello codec %d: %w", i, err)
		}
		codecs = append(codecs, c)
		b = b[n:]
	}
	return codecs, nil
}

// chooseCodec picks the codec a worker accepts from an offer: flate if
// offered, otherwise none. An empty answer means "plain frames only".
func chooseCodec(offered []string) string {
	for _, c := range offered {
		if c == codecFlate {
			return codecFlate
		}
	}
	return ""
}
