package distexplore

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protogen"
)

// The failover suite pins the tentpole contract: killing any single worker
// at any level of a replicated (R >= 2) run changes nothing observable —
// counts, visit order, and witness schedules stay byte-identical to both
// the fault-free distributed run and the sequential engine. FaultyTransport
// makes each kill a scripted, replayable event rather than a race, so the
// sweep below is exhaustive over (victim x level), not probabilistic.

// failoverOptions keeps retry latency low so a killed worker is declared
// lost in milliseconds, not the production default seconds.
func failoverOptions() RPCOptions {
	return RPCOptions{
		RPCTimeout:   5 * time.Second,
		DialTimeout:  250 * time.Millisecond,
		Retries:      2,
		RetryBackoff: 2 * time.Millisecond,
	}
}

// killRun runs the task over a FaultyTransport scripted to kill one worker
// at one level, with fresh workers per run (a killed worker's state is
// unusable for the next scenario).
func killRun(t *testing.T, task Task, workers []string, victim, level int, opt RPCOptions) (bool, int, []step) {
	t.Helper()
	ft := NewFaultyTransport(NewLoopback(), FaultPlan{
		KillAddr:  workers[victim],
		KillLevel: level,
	})
	addrs, _ := startWorkers(t, ft, workers)
	cl := dialCluster(t, ft, addrs, opt)
	c, v, s := distStream(t, cl, task)
	ft.mu.Lock()
	killed := ft.killed[workers[victim]]
	ft.mu.Unlock()
	if !killed {
		t.Fatalf("fault plan never fired: worker %d was not killed at level %d", victim, level)
	}
	return c, v, s
}

// TestFailoverKillEachWorkerEachLevel is the acceptance sweep: W=3 workers,
// 6 shards, R=2, and every (victim, kill level) pair. Each run must end
// byte-identical to the sequential oracle despite losing a different worker
// at a different depth.
func TestFailoverKillEachWorkerEachLevel(t *testing.T) {
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1},
		Options: explore.Options{MaxConfigs: 300}, Shards: 6, Replicas: 2}
	seqC, seqV, seq := seqStream(t, task)
	workers := []string{"k0", "k1", "k2"}
	for victim := range workers {
		for level := 0; level <= 4; level++ {
			label := fmt.Sprintf("kill-w%d-at-level%d", victim, level)
			t.Run(label, func(t *testing.T) {
				distC, distV, dist := killRun(t, task, workers, victim, level, failoverOptions())
				compareStreams(t, label, seqC, seqV, seq, distC, distV, dist)
			})
		}
	}
}

// TestFailoverGeneratedProtocols repeats the kill sweep over generated
// protocols, which reach the cluster only through the gen: name
// passthrough: each worker must rebuild the protocol from the task name
// alone, then survive the scripted loss byte-identically. Seed 2 is a
// complete exploration (125 configurations, 9 levels deep), seed 15 a
// truncated one (the 300-configuration budget cuts the BFS mid-level), so
// the sweep pins failover parity on both sides of the truncation
// boundary. Seeds with shallower state spaces would leave high kill
// levels unfired, which killRun treats as a test bug.
func TestFailoverGeneratedProtocols(t *testing.T) {
	for _, tc := range []struct {
		seed   uint64
		levels []int
	}{
		{2, []int{0, 1, 2, 3, 4}},
		{15, []int{1, 4}},
	} {
		sp := protogen.Derive(tc.seed, protogen.DefaultDials(3))
		task := Task{Protocol: sp.Name(), N: sp.N, Inputs: model.Inputs{0, 1, 1},
			Options: explore.Options{MaxConfigs: 300}, Shards: 6, Replicas: 2}
		seqC, seqV, seq := seqStream(t, task)
		workers := []string{"g0", "g1", "g2"}
		for victim := range workers {
			for _, level := range tc.levels {
				label := fmt.Sprintf("seed%d-kill-w%d-at-level%d", tc.seed, victim, level)
				t.Run(label, func(t *testing.T) {
					distC, distV, dist := killRun(t, task, workers, victim, level, failoverOptions())
					compareStreams(t, label, seqC, seqV, seq, distC, distV, dist)
				})
			}
		}
	}
}

// TestFailoverTCP repeats a representative kill over real TCP: the dial
// timeout, socket teardown, and re-dial paths of the production transport,
// not just loopback pipes.
func TestFailoverTCP(t *testing.T) {
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1},
		Options: explore.Options{MaxConfigs: 300}, Shards: 4, Replicas: 2}
	seqC, seqV, seq := seqStream(t, task)
	for _, level := range []int{1, 3} {
		t.Run(fmt.Sprintf("level%d", level), func(t *testing.T) {
			ft := NewFaultyTransport(TCP{}, FaultPlan{KillLevel: level})
			addrs, _ := startWorkers(t, ft, []string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"})
			// TCP addresses are assigned at Listen time, so the kill target
			// is named after the workers are up.
			ft.plan.KillAddr = addrs[1]
			cl := dialCluster(t, ft, addrs, failoverOptions())
			distC, distV, dist := distStream(t, cl, task)
			compareStreams(t, fmt.Sprintf("tcp-kill-level%d", level), seqC, seqV, seq, distC, distV, dist)
		})
	}
}

// TestReplicasOneKillAborts pins the R=1 contract from the failure model:
// without a standby the loss is unrecoverable and the run must abort with
// the lost-worker diagnostic, not hang and not return partial results.
func TestReplicasOneKillAborts(t *testing.T) {
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1},
		Options: explore.Options{MaxConfigs: 300}, Shards: 4, Replicas: 1}
	workers := []string{"s0", "s1", "s2"}
	ft := NewFaultyTransport(NewLoopback(), FaultPlan{KillAddr: workers[1], KillLevel: 2})
	addrs, _ := startWorkers(t, ft, workers)
	cl := dialCluster(t, ft, addrs, failoverOptions())
	_, _, err := cl.Explore(task, func(*model.Config, int, func() model.Schedule) bool { return false })
	if err == nil {
		t.Fatal("R=1 exploration succeeded despite a killed worker")
	}
	if !strings.Contains(err.Error(), "lost") {
		t.Fatalf("error does not identify the lost worker: %v", err)
	}
}

// TestChaosConnDrops injects seeded random connection drops (workers stay
// alive, so every re-dial succeeds): retries plus idempotent workers must
// absorb all of it byte-identically.
func TestChaosConnDrops(t *testing.T) {
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1},
		Options: explore.Options{MaxConfigs: 300}, Shards: 4, Replicas: 2}
	seqC, seqV, seq := seqStream(t, task)
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ft := NewFaultyTransport(NewLoopback(), FaultPlan{Seed: seed, DropProb: 0.08})
			addrs, _ := startWorkers(t, ft, []string{"d0", "d1", "d2"})
			opt := failoverOptions()
			opt.Retries = 8
			cl := dialCluster(t, ft, addrs, opt)
			distC, distV, dist := distStream(t, cl, task)
			compareStreams(t, fmt.Sprintf("drops-seed%d", seed), seqC, seqV, seq, distC, distV, dist)
		})
	}
}

// TestChaosNeverWrong is the safety property under mixed faults: drops,
// truncations, and deadline-busting delays at once. A run may abort loudly
// (if retries are exhausted), but a run that reports success must be
// byte-identical to the oracle — wrong answers are never acceptable.
func TestChaosNeverWrong(t *testing.T) {
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1},
		Options: explore.Options{MaxConfigs: 200}, Shards: 4, Replicas: 2}
	seqC, seqV, seq := seqStream(t, task)
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ft := NewFaultyTransport(NewLoopback(), FaultPlan{
				Seed:         seed,
				DropProb:     0.04,
				TruncateProb: 0.02,
				DelayProb:    0.02,
				Delay:        400 * time.Millisecond,
			})
			addrs, _ := startWorkers(t, ft, []string{"x0", "x1", "x2"})
			opt := failoverOptions()
			opt.RPCTimeout = 200 * time.Millisecond
			opt.Retries = 6
			cl := dialCluster(t, ft, addrs, opt)
			var dist []step
			distC, distV, err := cl.Explore(task, func(cfg *model.Config, depth int, path func() model.Schedule) bool {
				dist = append(dist, step{cfg.Key(), depth, path().String()})
				return false
			})
			if err != nil {
				t.Logf("seed %d aborted loudly (acceptable): %v", seed, err)
				return
			}
			compareStreams(t, fmt.Sprintf("chaos-seed%d", seed), seqC, seqV, seq, distC, distV, dist)
		})
	}
}

// TestCompressionDifferential negotiates frame compression and checks the
// results are still byte-identical — compression must be invisible above
// the wire. TCP exercises the real socket framing.
func TestCompressionDifferential(t *testing.T) {
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1},
		Options: explore.Options{MaxConfigs: 400}, Shards: 3, Replicas: 2}
	seqC, seqV, seq := seqStream(t, task)
	for _, tr := range []struct {
		name string
		tr   Transport
	}{{"loopback", NewLoopback()}, {"tcp", TCP{}}} {
		t.Run(tr.name, func(t *testing.T) {
			names := []string{"z0", "z1", "z2"}
			if tr.name == "tcp" {
				names = []string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"}
			}
			addrs, _ := startWorkers(t, tr.tr, names)
			// Loopback must force: adaptive negotiation correctly declines
			// compression in-process, and this test is about the codec, not
			// the policy. The TCP leg uses plain Compress, doubling as a
			// check that real network transports still negotiate.
			opt := RPCOptions{Compress: true}
			if tr.name == "loopback" {
				opt = RPCOptions{CompressForce: true}
			}
			cl := dialCluster(t, tr.tr, addrs, opt)
			for i, wc := range cl.workers {
				if !wc.compress {
					t.Fatalf("worker %d did not negotiate compression on %s", i, tr.name)
				}
			}
			distC, distV, dist := distStream(t, cl, task)
			compareStreams(t, "compress-"+tr.name, seqC, seqV, seq, distC, distV, dist)
		})
	}
}

// TestCompressionWithFailover composes the two new mechanisms: compressed
// frames and a scripted kill. The fault injector must see through the
// compressed level prefix, and the promoted standby must negotiate its own
// compressed connection.
func TestCompressionWithFailover(t *testing.T) {
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1},
		Options: explore.Options{MaxConfigs: 300}, Shards: 4, Replicas: 2}
	seqC, seqV, seq := seqStream(t, task)
	workers := []string{"c0", "c1", "c2"}
	ft := NewFaultyTransport(NewLoopback(), FaultPlan{KillAddr: workers[2], KillLevel: 2})
	addrs, _ := startWorkers(t, ft, workers)
	opt := failoverOptions()
	opt.CompressForce = true // loopback: adaptive negotiation would decline
	cl := dialCluster(t, ft, addrs, opt)
	distC, distV, dist := distStream(t, cl, task)
	compareStreams(t, "compress-failover", seqC, seqV, seq, distC, distV, dist)
}

// TestAdaptiveCompressionLoopback pins the adaptive policy: Compress on an
// in-process transport (loopback, bare or wrapped in a fault injector)
// never negotiates — every connection stays plain — while CompressForce
// overrides, and redials after a severed connection stay plain too. This
// is the regression test for the loopback compression loss measured in
// E21 (compression is pure CPU cost when bytes never leave the process).
func TestAdaptiveCompressionLoopback(t *testing.T) {
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1},
		Options: explore.Options{MaxConfigs: 300}, Shards: 3, Replicas: 2}

	t.Run("bare", func(t *testing.T) {
		lb := NewLoopback()
		addrs, _ := startWorkers(t, lb, []string{"a0", "a1", "a2"})
		cl := dialCluster(t, lb, addrs, RPCOptions{Compress: true})
		for i, wc := range cl.workers {
			if wc.compress {
				t.Fatalf("worker %d negotiated compression on loopback", i)
			}
		}
		if _, _, err := cl.Explore(task, nil); err != nil {
			t.Fatalf("explore: %v", err)
		}
		for i, wc := range cl.workers {
			if wc.compress {
				t.Fatalf("worker %d compressed after exploration (redial negotiated?)", i)
			}
		}
	})

	t.Run("wrapped", func(t *testing.T) {
		// The fault injector drops connections, forcing redials; and it
		// delegates InProcess to the loopback it wraps, so every redial
		// must also decline to negotiate.
		ft := NewFaultyTransport(NewLoopback(), FaultPlan{Seed: 3, DropProb: 0.05})
		if !transportInProcess(ft) {
			t.Fatal("fault-wrapped loopback does not report in-process")
		}
		addrs, _ := startWorkers(t, ft, []string{"b0", "b1", "b2"})
		opt := failoverOptions()
		opt.Compress = true
		opt.RPCTimeout = 500 * time.Millisecond
		opt.Retries = 6
		cl := dialCluster(t, ft, addrs, opt)
		if _, _, err := cl.Explore(task, nil); err != nil {
			t.Logf("explore aborted loudly under faults (acceptable): %v", err)
		}
		for i, wc := range cl.workers {
			if wc.compress {
				t.Fatalf("worker %d negotiated compression through the fault wrapper", i)
			}
		}
	})

	t.Run("force", func(t *testing.T) {
		lb := NewLoopback()
		addrs, _ := startWorkers(t, lb, []string{"f0", "f1", "f2"})
		cl := dialCluster(t, lb, addrs, RPCOptions{CompressForce: true})
		for i, wc := range cl.workers {
			if !wc.compress {
				t.Fatalf("worker %d: CompressForce did not negotiate on loopback", i)
			}
		}
	})

	t.Run("tcp-still-negotiates", func(t *testing.T) {
		addrs, _ := startWorkers(t, TCP{}, []string{"127.0.0.1:0"})
		cl := dialCluster(t, TCP{}, addrs, RPCOptions{Compress: true})
		if !cl.workers[0].compress {
			t.Fatal("TCP with Compress did not negotiate compression")
		}
	})
}

// TestChooseCodec pins the hello negotiation table, including the
// old-peer/unknown-codec fallbacks to plain frames.
func TestChooseCodec(t *testing.T) {
	for _, tc := range []struct {
		offered []string
		want    string
	}{
		{nil, ""},
		{[]string{}, ""},
		{[]string{codecFlate}, codecFlate},
		{[]string{"zstd-nonexistent"}, ""},
		{[]string{"zstd-nonexistent", codecFlate}, codecFlate},
	} {
		if got := chooseCodec(tc.offered); got != tc.want {
			t.Errorf("chooseCodec(%v) = %q, want %q", tc.offered, got, tc.want)
		}
	}
}

// TestBackoffDelay pins the retry backoff's shape: full jitter within a
// capped exponential ceiling, deterministic per seed, and actually jittered
// (not a constant).
func TestBackoffDelay(t *testing.T) {
	base := 50 * time.Millisecond
	max := 300 * time.Millisecond
	rng := rand.New(rand.NewSource(7))
	seen := map[time.Duration]bool{}
	for attempt := 1; attempt <= 20; attempt++ {
		d := backoffDelay(base, max, attempt, rng)
		if d < 0 {
			t.Fatalf("attempt %d: negative delay %v", attempt, d)
		}
		ceiling := base << (attempt - 1)
		if attempt > 10 || ceiling > max || ceiling < 0 {
			ceiling = max
		}
		if d > ceiling {
			t.Fatalf("attempt %d: delay %v above ceiling %v", attempt, d, ceiling)
		}
		seen[d] = true
	}
	if len(seen) < 5 {
		t.Fatalf("expected jittered delays, got only %d distinct values", len(seen))
	}
	// Determinism: the same seed replays the same schedule.
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for attempt := 1; attempt <= 10; attempt++ {
		if da, db := backoffDelay(base, max, attempt, a), backoffDelay(base, max, attempt, b); da != db {
			t.Fatalf("attempt %d: same seed gave %v and %v", attempt, da, db)
		}
	}
}

// TestShardReplicaAssignment pins the deterministic replica chains the
// failover contract depends on: shard s lives on workers (s+r) mod W, the
// chain never repeats a worker, and every worker can compute its own
// replica set locally from (shard, W, R) alone.
func TestShardReplicaAssignment(t *testing.T) {
	for _, tc := range []struct {
		shard, workers, replicas int
		want                     []int
	}{
		{0, 3, 2, []int{0, 1}},
		{2, 3, 2, []int{2, 0}},
		{5, 3, 2, []int{2, 0}},
		{1, 4, 3, []int{1, 2, 3}},
		{3, 2, 5, []int{1, 0}}, // R clamped to W
		{0, 1, 1, []int{0}},
		{4, 3, 0, []int{1}}, // R clamped up to 1
	} {
		got := shardReplicas(tc.shard, tc.workers, tc.replicas)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("shardReplicas(%d, %d, %d) = %v, want %v",
				tc.shard, tc.workers, tc.replicas, got, tc.want)
		}
		for _, w := range got {
			if !workerReplicatesShard(w, tc.shard, tc.workers, tc.replicas) {
				t.Errorf("workerReplicatesShard(%d, %d, %d, %d) = false, but %d is in chain %v",
					w, tc.shard, tc.workers, tc.replicas, w, got)
			}
		}
	}
}

// TestInterruptAtLevelBoundary pins the coordinator half of graceful
// shutdown: Interrupt stops the run at the next level boundary with
// ErrInterrupted rather than mid-phase, so partial results are still a
// complete BFS prefix.
func TestInterruptAtLevelBoundary(t *testing.T) {
	lb := NewLoopback()
	addrs, _ := startWorkers(t, lb, []string{"i0", "i1"})
	cl := dialCluster(t, lb, addrs, RPCOptions{})
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1}}
	visits := 0
	_, _, err := cl.Explore(task, func(*model.Config, int, func() model.Schedule) bool {
		visits++
		if visits == 10 {
			cl.Interrupt()
		}
		return false
	})
	if err != ErrInterrupted {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if visits < 10 {
		t.Fatalf("interrupted before the in-flight level finished: %d visits", visits)
	}
	// The cluster is reusable after an interrupt.
	if _, _, err := cl.Explore(task, func(*model.Config, int, func() model.Schedule) bool { return false }); err != nil {
		t.Fatalf("re-run after interrupt failed: %v", err)
	}
}

// TestWorkerDrain pins graceful shutdown: a draining worker finishes the
// in-flight request, closes its connections, and Wait returns.
func TestWorkerDrain(t *testing.T) {
	lb := NewLoopback()
	inner, err := lb.Listen("drain0")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(nil)
	go w.Serve(inner)
	cl := dialCluster(t, lb, []string{"drain0"}, RPCOptions{})
	task := Task{Protocol: "waitall", N: 3, Inputs: model.Inputs{0, 1, 1}}
	if _, _, err := cl.Explore(task, func(*model.Config, int, func() model.Schedule) bool { return false }); err != nil {
		t.Fatal(err)
	}
	if w.RequestsServed() == 0 {
		t.Fatal("worker served no requests")
	}
	w.Drain()
	inner.Close()
	done := make(chan struct{})
	go func() { w.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain")
	}
}
