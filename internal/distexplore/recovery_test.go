package distexplore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/flpsim/flp/internal/atlasstore"
	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
)

// The recovery suite pins the crash-recoverability tentpole: a coordinator
// killed at any point past a level boundary restarts from the last durable
// checkpoint with byte-identical counts, visit order, and witness schedules,
// re-expanding nothing before the checkpointed level (pinned by the
// expansion counters); and a lost sole replica converts into a bounded
// wait for a replacement worker instead of a hard abort.

func openCheckpoints(t *testing.T, dir string) *atlasstore.CheckpointStore {
	t.Helper()
	cks, err := atlasstore.OpenCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	cks.SetLog(t.Logf)
	return cks
}

// ckptFiles lists the checkpoint artifacts currently in dir.
func ckptFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// recoveryTask is the census kernel the sweep runs: deep enough for kills
// at levels 1-4, truncated by budget like a production census.
func recoveryTask() Task {
	return Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1},
		Options: explore.Options{MaxConfigs: 300}, Shards: 6, Replicas: 2}
}

// cleanCheckpointedRun runs the task uninterrupted with checkpointing on
// and returns its observables plus RunStats — the oracle the crashed-and-
// resumed runs are compared against.
func cleanCheckpointedRun(t *testing.T, task Task, cks *atlasstore.CheckpointStore) (bool, int, []step, RunStats) {
	t.Helper()
	lb := NewLoopback()
	addrs, _ := startWorkers(t, lb, []string{"cc0", "cc1", "cc2"})
	cl := dialCluster(t, lb, addrs, failoverOptions())
	task.Checkpoints = cks
	c, v, s := distStream(t, cl, task)
	return c, v, s, cl.RunStats()
}

// crashRun runs the task over a transport scripted to kill the coordinator
// at the given level, with checkpointing on. It must fail; whatever the
// store last persisted is the only surviving state.
func crashRun(t *testing.T, task Task, cks *atlasstore.CheckpointStore, killLevel int) {
	t.Helper()
	ft := NewFaultyTransport(NewLoopback(), FaultPlan{CoordKillLevel: killLevel})
	addrs, _ := startWorkers(t, ft, []string{"x0", "x1", "x2"})
	cl := dialCluster(t, ft, addrs, failoverOptions())
	task.Checkpoints = cks
	_, _, err := cl.Explore(task, func(*model.Config, int, func() model.Schedule) bool { return false })
	if err == nil {
		t.Fatalf("coordinator kill at level %d did not abort the run", killLevel)
	}
	if !ft.coordKilled() {
		t.Fatalf("fault plan never fired: coordinator was not killed at level %d", killLevel)
	}
}

// resumeRun restarts the task with -resume semantics on a fresh cluster
// and returns its observables and stats.
func resumeRun(t *testing.T, task Task, cks *atlasstore.CheckpointStore) (bool, int, []step, RunStats) {
	t.Helper()
	lb := NewLoopback()
	addrs, _ := startWorkers(t, lb, []string{"rr0", "rr1", "rr2"})
	cl := dialCluster(t, lb, addrs, failoverOptions())
	task.Checkpoints = cks
	task.Resume = true
	c, v, s := distStream(t, cl, task)
	return c, v, s, cl.RunStats()
}

// TestCheckpointResumeCoordKillEachLevel is the chaos sweep: the
// coordinator is killed at each level of the census kernel, then restarted
// with resume on a fresh cluster. Every restart must be byte-identical to
// the uninterrupted run, and the expansion counters must show zero
// re-expanded nodes before the checkpointed level.
func TestCheckpointResumeCoordKillEachLevel(t *testing.T) {
	task := recoveryTask()
	seqC, seqV, seq := seqStream(t, task)
	cleanC, cleanV, clean, cleanStats := cleanCheckpointedRun(t, task, openCheckpoints(t, t.TempDir()))
	compareStreams(t, "clean-checkpointed", seqC, seqV, seq, cleanC, cleanV, clean)

	for killLevel := 1; killLevel <= 4; killLevel++ {
		t.Run(fmt.Sprintf("coordkill-at-level%d", killLevel), func(t *testing.T) {
			dir := t.TempDir()
			cks := openCheckpoints(t, dir)
			crashRun(t, task, cks, killLevel)

			wantResume := killLevel >= 2 // level-1 frames fly before the first boundary write
			if got := len(ckptFiles(t, dir)) > 0; got != wantResume {
				t.Fatalf("after crash at level %d: checkpoint on disk = %v, want %v", killLevel, got, wantResume)
			}

			distC, distV, dist, st := resumeRun(t, task, cks)
			compareStreams(t, fmt.Sprintf("resume-after-kill%d", killLevel), seqC, seqV, seq, distC, distV, dist)

			// The expansion-counter pin: the resumed run's total equals the
			// uninterrupted run's, and everything before the checkpointed
			// level was restored, not re-expanded.
			if st.ExpandedNodes != cleanStats.ExpandedNodes {
				t.Errorf("expanded total %d, want %d", st.ExpandedNodes, cleanStats.ExpandedNodes)
			}
			if wantResume {
				if st.ResumedLevel != killLevel-1 {
					t.Errorf("resumed at level %d, want %d (the last completed boundary)", st.ResumedLevel, killLevel-1)
				}
				if st.ResumedNodes == 0 {
					t.Error("resume restored zero nodes")
				}
				if st.LiveExpanded >= cleanStats.ExpandedNodes {
					t.Errorf("resume re-expanded the restored prefix: live %d of %d total",
						st.LiveExpanded, cleanStats.ExpandedNodes)
				}
				if st.LiveExpanded+st.ExpandedNodes-cleanStats.ExpandedNodes < 0 {
					t.Errorf("inconsistent counters: %+v", st)
				}
			} else {
				if st.ResumedLevel != -1 || st.LiveExpanded != st.ExpandedNodes {
					t.Errorf("expected a fresh start, got stats %+v", st)
				}
			}

			// A completed run clears its checkpoint: nothing left to resume.
			if left := ckptFiles(t, dir); len(left) != 0 {
				t.Errorf("completed resume left checkpoints behind: %v", left)
			}
		})
	}
}

// TestCheckpointCleanRunLeavesNoFile pins the lifecycle on the happy path:
// a checkpointed run that completes normally checkpoints every boundary
// (observable in the stats) and leaves nothing on disk at the end. The
// write-behind may legitimately skip every physical write on a run this
// fast — boundaries are throttled between fences, and the deliberate end
// discards the pending one rather than writing a file just to delete it —
// so disk activity is pinned by the crash tests, not here.
func TestCheckpointCleanRunLeavesNoFile(t *testing.T) {
	dir := t.TempDir()
	cks := openCheckpoints(t, dir)
	_, _, _, st := cleanCheckpointedRun(t, recoveryTask(), cks)
	if st.Checkpoints == 0 {
		t.Error("checkpointed run recorded no boundary checkpoints")
	}
	if left := ckptFiles(t, dir); len(left) != 0 {
		t.Errorf("completed run left checkpoints behind: %v", left)
	}
}

// TestCheckpointCorruptRestartsFresh pins the detect-log-delete contract
// end to end: a bit-flipped checkpoint is rejected at resume, counted,
// deleted, and the run restarts from scratch — slower, never wrong.
func TestCheckpointCorruptRestartsFresh(t *testing.T) {
	task := recoveryTask()
	seqC, seqV, seq := seqStream(t, task)
	dir := t.TempDir()
	cks := openCheckpoints(t, dir)
	crashRun(t, task, cks, 3)

	files := ckptFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("expected one checkpoint after the crash, found %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	distC, distV, dist, st := resumeRun(t, task, cks)
	compareStreams(t, "resume-after-corruption", seqC, seqV, seq, distC, distV, dist)
	if st.ResumedLevel != -1 {
		t.Errorf("corrupt checkpoint resumed at level %d, want a fresh start", st.ResumedLevel)
	}
	if ckStats := cks.Stats(); ckStats.Corrupt != 1 {
		t.Errorf("store stats %+v, want exactly 1 corrupt", ckStats)
	}
}

// TestRejoinReplacementWorker pins the bounded wait-for-rejoin: at R=1 the
// sole replica of a shard is killed mid-run, a replacement process comes up
// on its address shortly after, and the run completes byte-identically —
// where it previously had no option but to abort.
func TestRejoinReplacementWorker(t *testing.T) {
	task := recoveryTask()
	task.Replicas = 1
	seqC, seqV, seq := seqStream(t, task)
	workers := []string{"j0", "j1", "j2"}
	ft := NewFaultyTransport(NewLoopback(), FaultPlan{KillAddr: workers[1], KillLevel: 2})
	addrs, _ := startWorkers(t, ft, workers)
	opt := failoverOptions()
	opt.RejoinWait = 15 * time.Second
	opt.RejoinPoll = 5 * time.Millisecond
	cl := dialCluster(t, ft, addrs, opt)

	// The replacement arrives 250ms after the kill window opens. The worker
	// goroutine behind the address never died — only the transport was
	// severed — so Revive models a fresh process taking over the address,
	// and the coordinator's frameInit wipes whatever stale state it held.
	timer := time.AfterFunc(250*time.Millisecond, func() { ft.Revive(workers[1]) })
	defer timer.Stop()

	distC, distV, dist := distStream(t, cl, task)
	compareStreams(t, "rejoin-replacement", seqC, seqV, seq, distC, distV, dist)
	if st := cl.RunStats(); st.Rejoined == 0 {
		t.Error("run completed without the replacement worker rejoining")
	}
}

// TestRejoinTimeoutDiagnostic pins the other side of the bounded wait: when
// no replacement arrives, the run aborts with a diagnostic naming the
// shard, the level, the checkpoint situation, and how long it waited.
func TestRejoinTimeoutDiagnostic(t *testing.T) {
	task := recoveryTask()
	task.Replicas = 1
	workers := []string{"t0", "t1", "t2"}
	ft := NewFaultyTransport(NewLoopback(), FaultPlan{KillAddr: workers[1], KillLevel: 2})
	addrs, _ := startWorkers(t, ft, workers)
	opt := failoverOptions()
	opt.RejoinWait = 200 * time.Millisecond
	opt.RejoinPoll = 10 * time.Millisecond
	cl := dialCluster(t, ft, addrs, opt)
	_, _, err := cl.Explore(task, nil)
	if err == nil {
		t.Fatal("run succeeded with no replacement worker")
	}
	for _, want := range []string{"no live replica left", "at level", "waited", "rejoin", "lost", "checkpointing disabled"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic missing %q: %v", want, err)
		}
	}
}

// TestLostShardDiagnosticNamesCheckpoint pins the R=1 abort diagnostic
// (satellite of the recovery work): it must name the shard, the level, and
// the last good checkpoint — pointing the operator at the resume path —
// while keeping the historical "lost" language older tooling greps for.
func TestLostShardDiagnosticNamesCheckpoint(t *testing.T) {
	task := recoveryTask()
	task.Replicas = 1
	dir := t.TempDir()
	task.Checkpoints = openCheckpoints(t, dir)
	workers := []string{"d0", "d1", "d2"}
	ft := NewFaultyTransport(NewLoopback(), FaultPlan{KillAddr: workers[1], KillLevel: 3})
	addrs, _ := startWorkers(t, ft, workers)
	cl := dialCluster(t, ft, addrs, failoverOptions())
	_, _, err := cl.Explore(task, nil)
	if err == nil {
		t.Fatal("R=1 exploration succeeded despite a killed worker")
	}
	for _, want := range []string{"shard", "no live replica left", "at level", "last-good checkpoint: level 2 in " + dir, "lost"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic missing %q: %v", want, err)
		}
	}

	// The checkpoint the diagnostic points at is real: a resume from it on
	// a fresh cluster finishes the run byte-identically.
	seqC, seqV, seq := seqStream(t, task)
	distC, distV, dist, st := resumeRun(t, task, task.Checkpoints)
	compareStreams(t, "resume-after-worker-loss", seqC, seqV, seq, distC, distV, dist)
	if st.ResumedLevel < 0 {
		t.Error("resume did not restore the checkpoint the diagnostic named")
	}
}
