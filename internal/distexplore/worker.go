package distexplore

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// ProtocolProvider resolves a protocol name and process count to a live
// Protocol instance. Coordinator and workers must resolve identically —
// protocols are deterministic code, so shipping the *name* and
// reconstructing locally is what keeps configurations replayable from
// schedules on any cluster member.
type ProtocolProvider func(name string, n int) (model.Protocol, error)

// RegistryProvider resolves names against the built-in protocol registry
// (the same one the CLIs use).
func RegistryProvider(name string, n int) (model.Protocol, error) {
	factory, ok := protocols.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("distexplore: unknown protocol %q", name)
	}
	return factory(n)
}

// ownedNode is one frontier configuration owned by this worker: its global
// node index (assigned by the coordinator in deterministic merge order)
// and the materialized configuration.
type ownedNode struct {
	idx uint64
	cfg *model.Config
}

// job is the state of one exploration on a worker: the reconstructed
// protocol and root, the visited-set shards this worker owns, and the
// frontier levels awaiting expansion. Jobs survive connection loss — a
// coordinator that re-dials resumes against the same state, and the
// last-level response caches make every RPC idempotent under replay.
type job struct {
	pr          model.Protocol
	root        *model.Config
	skip        func(model.Event) bool
	shards      int
	workerCount int
	workerIndex int

	// visited is this worker's slice of the global visited set: every
	// canonical key whose hash lands in one of the worker's shard ranges,
	// bucketed by fingerprint with full-key confirmation (fingerprint
	// collisions cost a string comparison, never correctness).
	visited map[uint64][]string

	// frontier holds adopted-but-unexpanded nodes, keyed by depth, in
	// ascending global index order.
	frontier map[int][]ownedNode

	// levelCache keeps the successor configurations this worker computed
	// during the last expansion and also owns, so adopting them back does
	// not pay a schedule replay.
	levelCache map[string]*model.Config

	// Idempotency guards: the level most recently processed by each RPC
	// type, with the cached response. A replayed request (the coordinator
	// retried after a lost response) is answered from cache instead of
	// being re-applied.
	lastExpand, lastDedup, lastAdopt int
	lastExpandResp, lastDedupResp    []byte
}

func (j *job) visitedAdd(hash uint64, key string) (fresh bool) {
	for _, k := range j.visited[hash] {
		if k == key {
			return false
		}
	}
	j.visited[hash] = append(j.visited[hash], key)
	return true
}

// ownsKey reports whether a fingerprint lands in one of this worker's
// shard ranges.
func (j *job) ownsHash(h uint64) bool {
	return ownerWorker(ownerShard(h, j.shards), j.workerCount) == j.workerIndex
}

// Worker serves one visited-set partition of the cluster: it owns the
// shards dealt to its index, expands its owned frontier each level, dedups
// candidates routed to it, and adopts admitted nodes. One exploration job
// runs at a time; job state is shared across connections so a coordinator
// that loses a connection mid-run can re-dial and resume.
type Worker struct {
	provider ProtocolProvider

	mu  sync.Mutex
	job *job
}

// NewWorker returns a worker resolving protocols through provider (nil
// means the built-in registry).
func NewWorker(provider ProtocolProvider) *Worker {
	if provider == nil {
		provider = RegistryProvider
	}
	return &Worker{provider: provider}
}

// workerWriteTimeout bounds response writes so a stalled coordinator
// cannot wedge a session goroutine forever.
const workerWriteTimeout = 2 * time.Minute

// Serve accepts coordinator connections until the listener is closed.
func (w *Worker) Serve(l Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go w.handle(conn)
	}
}

// handle runs one connection's request loop. Requests are processed
// strictly in order; the job state is locked per request because a
// re-dialed connection may take over from a dying one.
func (w *Worker) handle(conn net.Conn) {
	defer conn.Close()
	for {
		typ, payload, err := readFrame(conn, time.Time{})
		if err != nil {
			return // connection gone; the coordinator will re-dial or abort
		}
		rtyp, rpayload := w.dispatch(typ, payload)
		if err := writeFrame(conn, time.Now().Add(workerWriteTimeout), rtyp, rpayload); err != nil {
			return
		}
	}
}

// dispatch applies one request to the worker state and returns the
// response frame. Failures are reported as frameErr, which the
// coordinator treats as permanent (it aborts the exploration with a
// diagnostic rather than retrying).
func (w *Worker) dispatch(typ byte, payload []byte) (byte, []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	fail := func(err error) (byte, []byte) { return frameErr, []byte(err.Error()) }
	switch typ {
	case frameInit:
		req, err := decodeInitReq(payload)
		if err != nil {
			return fail(err)
		}
		if err := w.initJob(req); err != nil {
			return fail(err)
		}
		return frameOK, nil

	case frameExpand:
		if w.job == nil {
			return fail(fmt.Errorf("distexplore: expand without an active job"))
		}
		level, _, err := decodeLevelIndices(payload)
		if err != nil {
			return fail(err)
		}
		if level == w.job.lastExpand {
			return frameExpandResp, w.job.lastExpandResp
		}
		return frameExpandResp, w.expandLevel(level)

	case frameDedup:
		if w.job == nil {
			return fail(fmt.Errorf("distexplore: dedup without an active job"))
		}
		level, cands, err := decodeLevelCandidates(payload)
		if err != nil {
			return fail(err)
		}
		if level == w.job.lastDedup {
			return frameDedupResp, w.job.lastDedupResp
		}
		return frameDedupResp, w.dedupLevel(level, cands)

	case frameAdopt:
		if w.job == nil {
			return fail(fmt.Errorf("distexplore: adopt without an active job"))
		}
		level, nodes, err := decodeAdoptReq(payload)
		if err != nil {
			return fail(err)
		}
		if level == w.job.lastAdopt {
			return frameOK, nil // replayed request; already applied
		}
		if err := w.adoptLevel(level, nodes); err != nil {
			return fail(err)
		}
		return frameOK, nil

	case frameShutdown:
		w.job = nil
		return frameOK, nil

	default:
		return fail(fmt.Errorf("distexplore: unknown frame type 0x%02x", typ))
	}
}

func (w *Worker) initJob(req *initReq) error {
	if req.Shards < 1 || req.WorkerCount < 1 || req.WorkerIndex < 0 || req.WorkerIndex >= req.WorkerCount {
		return fmt.Errorf("distexplore: invalid shard layout %d shards / worker %d of %d",
			req.Shards, req.WorkerIndex, req.WorkerCount)
	}
	pr, err := w.provider(req.Protocol, req.N)
	if err != nil {
		return err
	}
	root, err := model.Initial(pr, req.Inputs)
	if err != nil {
		return err
	}
	if len(req.Prefix) > 0 {
		if root, err = model.ApplySchedule(pr, root, req.Prefix); err != nil {
			return fmt.Errorf("distexplore: applying root prefix: %w", err)
		}
	}
	w.job = &job{
		pr:          pr,
		root:        root,
		skip:        explore.AvoidFilter(req.Avoid),
		shards:      req.Shards,
		workerCount: req.WorkerCount,
		workerIndex: req.WorkerIndex,
		visited:     make(map[uint64][]string),
		frontier:    make(map[int][]ownedNode),
		lastExpand:  -1,
		lastDedup:   -1,
		lastAdopt:   -1,
	}
	return nil
}

// expandLevel expands every owned frontier node at the given depth through
// the shared engine core, returning the encoded candidate list. Expansion
// is pure, so owned nodes can be released immediately; successors this
// worker also owns are cached so adoption does not replay their schedules.
func (w *Worker) expandLevel(level int) []byte {
	j := w.job
	nodes := j.frontier[level]
	delete(j.frontier, level)
	j.levelCache = make(map[string]*model.Config)
	var cands []candidate
	for _, nd := range nodes {
		for si, s := range explore.ExpandConfig(j.pr, nd.cfg, j.skip) {
			h := s.Cfg.Hash()
			key := s.Cfg.Key()
			if j.ownsHash(h) {
				j.levelCache[key] = s.Cfg
			}
			cands = append(cands, candidate{
				Parent:  nd.idx,
				SuccIdx: uint64(si),
				Hash:    h,
				Key:     key,
				Via:     s.Via,
			})
		}
	}
	resp := encodeLevelCandidates(level, cands)
	j.lastExpand, j.lastExpandResp = level, resp
	return resp
}

// dedupLevel filters a globally-ordered candidate batch against this
// worker's visited shards, returning the indices of first-seen
// configurations. The coordinator sends candidates pre-sorted in global
// merge order, so "first seen" here coincides with "first seen by the
// sequential engine".
func (w *Worker) dedupLevel(level int, cands []candidate) []byte {
	j := w.job
	var fresh []uint64
	for i, c := range cands {
		if j.visitedAdd(c.Hash, c.Key) {
			fresh = append(fresh, uint64(i))
		}
	}
	resp := encodeLevelIndices(level, fresh)
	j.lastDedup, j.lastDedupResp = level, resp
	return resp
}

// adoptLevel materializes admitted nodes into this worker's frontier:
// from the expansion cache when the worker computed the configuration
// itself this level, otherwise by replaying the node's schedule from the
// root. Every materialization is verified against the transmitted
// canonical key, so a protocol-resolution or replay divergence surfaces as
// a loud error instead of silent state corruption.
func (w *Worker) adoptLevel(level int, nodes []adoptNode) error {
	j := w.job
	for _, nd := range nodes {
		cfg, ok := j.levelCache[nd.Key]
		if !ok {
			var err error
			cfg, err = model.ApplySchedule(j.pr, j.root, nd.Schedule)
			if err != nil {
				return fmt.Errorf("distexplore: replaying schedule for node %d: %w", nd.Index, err)
			}
		}
		if cfg.Key() != nd.Key {
			return fmt.Errorf("distexplore: node %d integrity failure: replayed key diverges from transmitted key (protocol mismatch between cluster members?)", nd.Index)
		}
		j.visitedAdd(cfg.Hash(), nd.Key) // root adoption path; no-op after dedup
		j.frontier[int(nd.Depth)] = append(j.frontier[int(nd.Depth)], ownedNode{idx: nd.Index, cfg: cfg})
	}
	j.lastAdopt = level
	return nil
}
