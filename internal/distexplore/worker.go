package distexplore

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// ProtocolProvider resolves a protocol name and process count to a live
// Protocol instance. Coordinator and workers must resolve identically —
// protocols are deterministic code, so shipping the *name* and
// reconstructing locally is what keeps configurations replayable from
// schedules on any cluster member.
type ProtocolProvider func(name string, n int) (model.Protocol, error)

// RegistryProvider resolves names against the built-in protocol registry
// (the same one the CLIs use).
func RegistryProvider(name string, n int) (model.Protocol, error) {
	factory, ok := protocols.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("distexplore: unknown protocol %q", name)
	}
	return factory(n)
}

// ownedNode is one frontier configuration held by this worker: its global
// node index (assigned by the coordinator in deterministic merge order),
// the shard it belongs to, and the materialized configuration. With
// replication a worker holds frontier nodes both for shards it leads and
// shards it stands by for; the shard tag is what lets an expand request
// select exactly the shards this worker currently leads.
type ownedNode struct {
	idx   uint64
	shard int
	cfg   *model.Config
}

// job is the state of one exploration on a worker: the reconstructed
// protocol and root, the visited-set shards this worker replicates, and
// the frontier levels awaiting expansion. Jobs survive connection loss — a
// coordinator that re-dials resumes against the same state, and because
// expansion is pure and dedup/adopt are guarded by per-level caches, every
// RPC is idempotent under replay.
type job struct {
	pr          model.Protocol
	root        *model.Config
	skip        func(model.Event) bool
	shards      int
	workerCount int
	workerIndex int
	replicas    int

	// visited is this worker's slice of the global visited set: every
	// canonical key whose hash lands in a shard this worker replicates,
	// interned by fingerprint with full-key confirmation (fingerprint
	// collisions cost a byte comparison, never correctness). Keys arrive in
	// wire (string) form and are stored in the interner's per-shard arenas;
	// a dedup hit allocates nothing. Replicas of one shard apply the same
	// dedup batches in the same order, so their slices are identical at
	// every level boundary.
	visited *model.Interner

	// frontier holds adopted-but-unexpanded nodes, keyed by depth, in
	// ascending global index order. Levels strictly below the one being
	// served are globally finished and pruned lazily (pruneBelow).
	frontier map[int][]ownedNode

	// levelCache keeps the successor configurations this worker computed
	// during the current level's expansion and also replicates, so
	// adopting them back does not pay a schedule replay. cacheLevel tracks
	// which level the cache belongs to; a repeated expand at the same
	// level (failover hands a promoted standby extra shards) accumulates
	// into it rather than resetting.
	levelCache map[string]*model.Config
	cacheLevel int

	// Idempotency guards for the state-mutating RPCs: the level most
	// recently applied, with the dedup response cached. A replayed request
	// (the coordinator retried after a lost response) is answered from
	// cache instead of being re-applied. Expansion needs no guard — it is
	// pure over the frontier and recomputed on every call.
	lastDedup, lastAdopt int
	lastDedupResp        []byte

	// candScratch is the expand phase's candidate buffer, recycled across
	// levels (encodeLevelCandidates serializes it before the next reuse).
	candScratch []candidate
}

func (j *job) visitedAdd(hash uint64, key string) (fresh bool) {
	_, fresh = j.visited.InternKey(hash, key)
	return fresh
}

// replicatesShard reports whether this worker holds the shard, as primary
// or standby.
func (j *job) replicatesShard(s int) bool {
	return workerReplicatesShard(j.workerIndex, s, j.workerCount, j.replicas)
}

// replicatesHash reports whether a fingerprint lands in a shard this
// worker holds.
func (j *job) replicatesHash(h uint64) bool {
	return j.replicatesShard(ownerShard(h, j.shards))
}

// pruneBelow drops frontier levels strictly below the one being served:
// any request for level L proves every level < L is globally finished, so
// standby copies kept for failover are no longer needed.
func (j *job) pruneBelow(level int) {
	for l := range j.frontier {
		if l < level {
			delete(j.frontier, l)
		}
	}
}

// Worker serves one visited-set partition of the cluster: it holds the
// shards whose replica chains include its index, expands the shards it is
// asked to lead each level, dedups candidates routed to it, and adopts
// admitted nodes. One exploration job runs at a time; job state is shared
// across connections so a coordinator that loses a connection mid-run can
// re-dial and resume.
type Worker struct {
	provider ProtocolProvider

	mu  sync.Mutex
	job *job

	// draining is set by Drain: every connection finishes its in-flight
	// request, writes the response, and closes. handlers tracks live
	// connection goroutines so Wait can block until the last one is done;
	// conns tracks the connections themselves so Drain can unblock the
	// idle ones (parked in a read with no request in flight).
	draining atomic.Bool
	handlers sync.WaitGroup
	served   atomic.Int64
	connMu   sync.Mutex
	conns    map[*connState]struct{}
}

// connState pairs a coordinator connection with its in-flight flag, so
// Drain closes idle connections immediately but lets a connection that is
// mid-request answer before closing.
type connState struct {
	conn net.Conn
	mu   sync.Mutex
	busy bool
}

// NewWorker returns a worker resolving protocols through provider (nil
// means the built-in registry).
func NewWorker(provider ProtocolProvider) *Worker {
	if provider == nil {
		provider = RegistryProvider
	}
	return &Worker{provider: provider}
}

// workerWriteTimeout bounds response writes so a stalled coordinator
// cannot wedge a session goroutine forever.
const workerWriteTimeout = 2 * time.Minute

// Serve accepts coordinator connections until the listener is closed.
func (w *Worker) Serve(l Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		cs := &connState{conn: conn}
		w.connMu.Lock()
		if w.conns == nil {
			w.conns = make(map[*connState]struct{})
		}
		w.conns[cs] = struct{}{}
		w.connMu.Unlock()
		w.handlers.Add(1)
		go w.handle(cs)
	}
}

// Drain begins a graceful shutdown: in-flight requests complete and are
// answered, then each connection closes; idle connections close at once.
// Combined with closing the listener, this lets a worker process exit
// cleanly mid-run — with replication the coordinator promotes standbys and
// the run continues; without it the run aborts with the usual lost-worker
// diagnostic.
func (w *Worker) Drain() {
	w.draining.Store(true)
	w.connMu.Lock()
	defer w.connMu.Unlock()
	for cs := range w.conns {
		cs.mu.Lock()
		if !cs.busy {
			cs.conn.Close()
		}
		cs.mu.Unlock()
	}
}

// Wait blocks until every connection goroutine has finished (use after
// Drain plus closing the listener).
func (w *Worker) Wait() { w.handlers.Wait() }

// RequestsServed reports how many requests this worker has answered,
// for shutdown summaries.
func (w *Worker) RequestsServed() int64 { return w.served.Load() }

// handle runs one connection's request loop. Requests are processed
// strictly in order; the job state is locked per request because a
// re-dialed connection may take over from a dying one. The hello frame is
// handled here rather than in dispatch because the negotiated codec is
// per-connection state, not job state.
func (w *Worker) handle(cs *connState) {
	defer w.handlers.Done()
	defer func() {
		w.connMu.Lock()
		delete(w.conns, cs)
		w.connMu.Unlock()
		cs.conn.Close()
	}()
	compress := false
	for {
		typ, payload, err := readFrame(cs.conn, time.Time{})
		if err != nil {
			return // connection gone; the coordinator will re-dial or abort
		}
		cs.mu.Lock()
		cs.busy = true
		cs.mu.Unlock()
		var rtyp byte
		var rpayload []byte
		if typ == frameHello {
			rtyp, rpayload, compress = w.hello(payload)
		} else {
			rtyp, rpayload = w.dispatch(typ, payload)
		}
		w.served.Add(1)
		werr := writeFrame(cs.conn, time.Now().Add(workerWriteTimeout), rtyp, rpayload, compress)
		cs.mu.Lock()
		cs.busy = false
		cs.mu.Unlock()
		if werr != nil || w.draining.Load() {
			return
		}
	}
}

// hello answers a capability negotiation: accept flate when offered.
// Compression of *our* responses starts immediately; the coordinator
// starts compressing its requests only after reading this response, so
// neither side ever sends a compressed frame the peer has not agreed to.
func (w *Worker) hello(payload []byte) (byte, []byte, bool) {
	offered, err := decodeHello(payload)
	if err != nil {
		return frameErr, []byte(err.Error()), false
	}
	codec := chooseCodec(offered)
	return frameHelloResp, model.AppendString(nil, codec), codec == codecFlate
}

// dispatch applies one request to the worker state and returns the
// response frame. Failures are reported as frameErr, which the
// coordinator treats as permanent (it aborts the exploration with a
// diagnostic rather than retrying or failing over).
func (w *Worker) dispatch(typ byte, payload []byte) (byte, []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	fail := func(err error) (byte, []byte) { return frameErr, []byte(err.Error()) }
	switch typ {
	case frameInit:
		req, err := decodeInitReq(payload)
		if err != nil {
			return fail(err)
		}
		if err := w.initJob(req); err != nil {
			return fail(err)
		}
		return frameOK, nil

	case frameExpand:
		if w.job == nil {
			return fail(fmt.Errorf("distexplore: expand without an active job"))
		}
		level, shards, err := decodeLevelIndices(payload)
		if err != nil {
			return fail(err)
		}
		return frameExpandResp, w.expandLevel(level, shards)

	case frameDedup:
		if w.job == nil {
			return fail(fmt.Errorf("distexplore: dedup without an active job"))
		}
		level, groups, err := decodeShardGroups(payload)
		if err != nil {
			return fail(err)
		}
		if level == w.job.lastDedup {
			return frameDedupResp, w.job.lastDedupResp
		}
		return frameDedupResp, w.dedupLevel(level, groups)

	case frameAdopt:
		if w.job == nil {
			return fail(fmt.Errorf("distexplore: adopt without an active job"))
		}
		level, nodes, err := decodeAdoptReq(payload)
		if err != nil {
			return fail(err)
		}
		if level == w.job.lastAdopt {
			return frameOK, nil // replayed request; already applied
		}
		if err := w.adoptLevel(level, nodes); err != nil {
			return fail(err)
		}
		return frameOK, nil

	case frameShutdown:
		w.job = nil
		return frameOK, nil

	default:
		return fail(fmt.Errorf("distexplore: unknown frame type 0x%02x", typ))
	}
}

func (w *Worker) initJob(req *initReq) error {
	if req.Shards < 1 || req.WorkerCount < 1 || req.WorkerIndex < 0 || req.WorkerIndex >= req.WorkerCount {
		return fmt.Errorf("distexplore: invalid shard layout %d shards / worker %d of %d",
			req.Shards, req.WorkerIndex, req.WorkerCount)
	}
	if req.Replicas < 1 || req.Replicas > req.WorkerCount {
		return fmt.Errorf("distexplore: invalid replication factor %d for %d workers",
			req.Replicas, req.WorkerCount)
	}
	pr, err := w.provider(req.Protocol, req.N)
	if err != nil {
		return err
	}
	root, err := model.Initial(pr, req.Inputs)
	if err != nil {
		return err
	}
	if len(req.Prefix) > 0 {
		if root, err = model.ApplySchedule(pr, root, req.Prefix); err != nil {
			return fmt.Errorf("distexplore: applying root prefix: %w", err)
		}
	}
	w.job = &job{
		pr:          pr,
		root:        root,
		skip:        explore.AvoidFilter(req.Avoid),
		shards:      req.Shards,
		workerCount: req.WorkerCount,
		workerIndex: req.WorkerIndex,
		replicas:    req.Replicas,
		visited:     model.NewInterner(),
		frontier:    make(map[int][]ownedNode),
		cacheLevel:  -1,
		lastDedup:   -1,
		lastAdopt:   -1,
	}
	return nil
}

// expandLevel expands the frontier nodes of the requested shards at the
// given depth through the shared engine core, returning the encoded
// candidate list. Expansion is pure — the frontier is left in place and
// the same request (or a different shard subset after a failover
// promotion) can be recomputed at any time, which is what makes the expand
// phase retryable with no idempotency log. Successors landing in shards
// this worker replicates are cached so adoption does not replay their
// schedules.
func (w *Worker) expandLevel(level int, shards []uint64) []byte {
	j := w.job
	j.pruneBelow(level)
	if j.cacheLevel != level {
		if j.levelCache == nil {
			j.levelCache = make(map[string]*model.Config)
		} else {
			clear(j.levelCache) // keep the buckets, drop the entries
		}
		j.cacheLevel = level
	}
	want := make(map[int]bool, len(shards))
	for _, s := range shards {
		want[int(s)] = true
	}
	cands := j.candScratch[:0]
	for _, nd := range j.frontier[level] {
		if !want[nd.shard] {
			continue
		}
		for si, s := range explore.ExpandConfig(j.pr, nd.cfg, j.skip) {
			h := s.Cfg.Hash()
			key := s.Cfg.Key()
			if j.replicatesHash(h) {
				j.levelCache[key] = s.Cfg
			}
			cands = append(cands, candidate{
				Parent:  nd.idx,
				SuccIdx: uint64(si),
				Hash:    h,
				Key:     key,
				Via:     s.Via,
			})
		}
	}
	j.candScratch = cands
	return encodeLevelCandidates(level, cands)
}

// dedupLevel filters per-shard candidate batches against this worker's
// visited slices, returning per shard the indices of first-seen
// configurations. The coordinator sends each shard's candidates pre-sorted
// in global merge order and sends the identical groups to every replica of
// the shard, so all replicas compute the same answer and "first seen here"
// coincides with "first seen by the sequential engine".
func (w *Worker) dedupLevel(level int, groups []shardGroup) []byte {
	j := w.job
	j.pruneBelow(level)
	out := make([]shardIndices, 0, len(groups))
	for _, g := range groups {
		fresh := shardIndices{Shard: g.Shard}
		for i, c := range g.Cands {
			if j.visitedAdd(c.Hash, c.Key) {
				fresh.Fresh = append(fresh.Fresh, uint64(i))
			}
		}
		out = append(out, fresh)
	}
	resp := encodeShardIndices(level, out)
	j.lastDedup, j.lastDedupResp = level, resp
	return resp
}

// adoptLevel materializes admitted nodes into this worker's frontier:
// from the expansion cache when the worker computed the configuration
// itself this level, otherwise by replaying the node's schedule from the
// root. Every materialization is verified against the transmitted
// canonical key, so a protocol-resolution or replay divergence surfaces as
// a loud error instead of silent state corruption.
func (w *Worker) adoptLevel(level int, nodes []adoptNode) error {
	j := w.job
	for _, nd := range nodes {
		shard := ownerShard(model.HashKey(nd.Key), j.shards)
		if !j.replicatesShard(shard) {
			return fmt.Errorf("distexplore: node %d routed to worker %d, which does not replicate shard %d", nd.Index, j.workerIndex, shard)
		}
		cfg, ok := j.levelCache[nd.Key]
		if !ok {
			var err error
			cfg, err = model.ApplySchedule(j.pr, j.root, nd.Schedule)
			if err != nil {
				return fmt.Errorf("distexplore: replaying schedule for node %d: %w", nd.Index, err)
			}
		}
		if cfg.Key() != nd.Key {
			return fmt.Errorf("distexplore: node %d integrity failure: replayed key diverges from transmitted key (protocol mismatch between cluster members?)", nd.Index)
		}
		j.visitedAdd(cfg.Hash(), nd.Key) // root adoption path; no-op after dedup
		j.frontier[int(nd.Depth)] = append(j.frontier[int(nd.Depth)], ownedNode{idx: nd.Index, shard: shard, cfg: cfg})
	}
	j.lastAdopt = level
	return nil
}
