package distexplore

import "fmt"

// Shard replication. Every hash-range shard s is served by R workers — the
// deterministic replica chain (s+0) mod W, (s+1) mod W, … (s+R-1) mod W —
// so losing any single worker (with R ≥ 2) leaves at least one live copy
// of every shard's visited-set slice and frontier. The first *live* worker
// in a shard's chain is its primary: the coordinator reads expansion and
// dedup answers from the primary and treats the rest as hot standbys that
// receive every state-mutating batch. Because standbys apply the same
// batches in the same order, a promoted standby answers exactly what the
// dead primary would have — which is what keeps failover invisible in the
// output.

// DefaultReplicas is the replication factor applied when Task.Replicas is
// zero: each shard on two workers, so any single worker loss is survivable.
const DefaultReplicas = 2

// shardReplicas returns the ordered replica chain of one shard: the
// workers (shard+r) mod workerCount for r = 0..replicas-1, without
// duplicates (replicas is capped at workerCount, so the chain never wraps
// onto itself). Index 0 is the shard's home worker — the primary while it
// lives. Both the coordinator and the workers derive placement from this
// one function, so they can never disagree about who holds what.
func shardReplicas(shard, workerCount, replicas int) []int {
	if replicas > workerCount {
		replicas = workerCount
	}
	if replicas < 1 {
		replicas = 1
	}
	chain := make([]int, replicas)
	for r := 0; r < replicas; r++ {
		chain[r] = (shard + r) % workerCount
	}
	return chain
}

// workerReplicatesShard reports whether the given worker appears in the
// shard's replica chain.
func workerReplicatesShard(worker, shard, workerCount, replicas int) bool {
	if replicas > workerCount {
		replicas = workerCount
	}
	if replicas < 1 {
		replicas = 1
	}
	// worker == (shard+r) mod W for some r in [0, replicas).
	d := (worker - shard%workerCount + workerCount) % workerCount
	return d < replicas
}

// replicaSet is the coordinator's liveness view for one exploration run:
// the shard layout plus which workers have been declared lost. A dead
// worker's stale state is never trusted again — re-admitting it as-is would
// break the "every live replica saw every batch" invariant that makes
// promotion byte-identical. The one sanctioned way back in is revive, used
// by the rejoin path after the worker has been re-initialized from scratch
// and backfilled with the full admitted state, which re-establishes that
// invariant by construction.
type replicaSet struct {
	shards   int
	workers  int
	replicas int
	dead     []bool
	lostErr  []error // per worker: the transport error that killed it

	// level and ckDesc feed the coverage-loss diagnostic: the level being
	// processed when coverage was lost, and a description of the last good
	// checkpoint (or why there is none). Both are maintained by Explore.
	level  int
	ckDesc string
}

func newReplicaSet(shards, workers, replicas int) *replicaSet {
	if replicas > workers {
		replicas = workers
	}
	if replicas < 1 {
		replicas = 1
	}
	return &replicaSet{
		shards:   shards,
		workers:  workers,
		replicas: replicas,
		dead:     make([]bool, workers),
		lostErr:  make([]error, workers),
	}
}

func (rs *replicaSet) live(w int) bool { return !rs.dead[w] }

// markLost records a worker as dead together with the transport error that
// condemned it, for the diagnostic if a shard later loses its last copy.
func (rs *replicaSet) markLost(w int, err error) {
	if !rs.dead[w] {
		rs.dead[w] = true
		rs.lostErr[w] = err
	}
}

// replicasOf returns the shard's replica chain (dead members included —
// callers filter by liveness so the primary order stays deterministic).
func (rs *replicaSet) replicasOf(shard int) []int {
	return shardReplicas(shard, rs.workers, rs.replicas)
}

// primary returns the first live worker in the shard's replica chain.
func (rs *replicaSet) primary(shard int) (int, bool) {
	for _, w := range rs.replicasOf(shard) {
		if rs.live(w) {
			return w, true
		}
	}
	return -1, false
}

// replicates reports whether worker w serves shard s (as primary or
// standby), ignoring liveness.
func (rs *replicaSet) replicates(w, shard int) bool {
	return workerReplicatesShard(w, shard, rs.workers, rs.replicas)
}

// revive clears a worker's dead mark after the rejoin path has re-initialized
// and backfilled a replacement process on its address; from here on it is a
// full replica again.
func (rs *replicaSet) revive(w int) {
	rs.dead[w] = false
	rs.lostErr[w] = nil
}

// shardLostError is the coverage-loss abort: some shard's entire replica
// chain is dead. It is a distinct type so the rejoin path can recognize it
// (only coverage losses are waitable; worker-reported errors are not) and
// carries the shard for targeted recovery.
type shardLostError struct {
	shard int
	msg   string
	cause error
}

func (e *shardLostError) Error() string { return e.msg }
func (e *shardLostError) Unwrap() error { return e.cause }

// lostShard builds the abort diagnostic for a shard whose entire replica
// chain is dead: it names the shard, the level being processed, the chain,
// and the last good checkpoint (if any), and surfaces the transport error
// that killed the last copy — preserving the "lost … unrecoverable"
// language the R=1 path has always reported.
func (rs *replicaSet) lostShard(shard int) error {
	chain := rs.replicasOf(shard)
	var last error
	for _, w := range chain {
		if rs.lostErr[w] != nil {
			last = rs.lostErr[w]
		}
	}
	return &shardLostError{
		shard: shard,
		cause: last,
		msg: fmt.Sprintf(
			"distexplore: shard %d has no live replica left at level %d (chain %v, replication %d; %s): %v",
			shard, rs.level, chain, rs.replicas, rs.ckDesc, last),
	}
}
