package distexplore

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
)

// RPCOptions tune the coordinator's client behaviour. The zero value is
// usable.
type RPCOptions struct {
	// RPCTimeout is the deadline for one request/response round trip,
	// including the worker's compute time. Default 2m.
	RPCTimeout time.Duration
	// DialTimeout bounds each connection attempt. Default 10s.
	DialTimeout time.Duration
	// Retries is how many times a transiently failed RPC is re-sent (with
	// a fresh connection) before the worker is declared lost. Worker-
	// reported errors are permanent and never retried. Default 2.
	Retries int
	// RetryBackoff is the base of the retry backoff: the backoff ceiling
	// doubles from it on each attempt. Default 50ms.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the backoff ceiling so repeated retries never
	// sleep unboundedly long. Default 2s.
	RetryBackoffMax time.Duration
	// Seed seeds the per-worker PRNGs behind retry jitter (full jitter:
	// each retry sleeps uniform in [0, ceiling)). A fixed seed keeps
	// retry schedules reproducible in tests; distinct coordinator seeds
	// keep real clusters from synchronizing their retries. 0 means seed 1.
	Seed int64
	// Compress offers wire-level frame compression in the per-connection
	// hello exchange. Workers that accept it receive and send large frames
	// deflated; peers that predate the hello frame answer it with an
	// error, which the coordinator treats as "plain frames only" — old and
	// new cluster members interoperate unchanged.
	//
	// The offer is adaptive: on transports that declare themselves
	// in-process (InProcessTransport — loopback, and fault wrappers
	// around it), Compress is ignored and frames stay plain, because
	// deflating bytes that never leave the process is pure CPU loss
	// (E21: 302ms compressed vs 183ms plain on the loopback failover
	// scenario). Real network transports (TCP) negotiate as before.
	Compress bool
	// CompressForce negotiates compression regardless of the transport's
	// locality — the override for measuring compression itself (the
	// differential tests and E21's compressed scenarios) or for an
	// in-process transport proxying to somewhere expensive after all.
	CompressForce bool
	// Provider resolves protocol names at the coordinator; it must agree
	// with the workers' provider. Default: the built-in registry.
	Provider ProtocolProvider
}

func (o RPCOptions) withDefaults() RPCOptions {
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = 2 * time.Minute
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.RetryBackoffMax <= 0 {
		o.RetryBackoffMax = 2 * time.Second
	}
	if o.RetryBackoffMax < o.RetryBackoff {
		o.RetryBackoffMax = o.RetryBackoff
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Provider == nil {
		o.Provider = RegistryProvider
	}
	return o
}

// backoffDelay computes the sleep before retry attempt (1-based): full
// jitter over an exponentially growing, capped ceiling — uniform in
// [0, min(max, base·2^(attempt-1))]. Jitter comes from the caller's seeded
// PRNG, never the global math/rand source, so tests get reproducible retry
// schedules.
func backoffDelay(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	ceiling := base
	for i := 1; i < attempt && ceiling < max; i++ {
		ceiling *= 2
	}
	if ceiling > max {
		ceiling = max
	}
	if ceiling <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(ceiling) + 1))
}

// Task describes one distributed exploration: everything a worker needs to
// reconstruct the job locally, plus the exploration bounds.
type Task struct {
	// Protocol and N name the protocol instance; both coordinator and
	// workers resolve it through their providers.
	Protocol string
	N        int
	// Inputs are the initial values defining the root configuration.
	Inputs model.Inputs
	// Prefix, when non-empty, is applied to the initial configuration to
	// produce the exploration root (explore-from-C jobs).
	Prefix model.Schedule
	// Avoid, when non-nil, suppresses events Same as it (Lemma 3's ℰ).
	Avoid *model.Event
	// Shards is the number of hash ranges the visited set is split into;
	// 0 means one per worker. More shards than workers is valid (shards
	// are dealt round-robin) and produces identical results.
	Shards int
	// Replicas is the shard replication factor R: shard s lives on workers
	// (s+r) mod W for r < R, so any R-1 worker losses leave a live copy of
	// every shard and the run fails over instead of aborting. 0 means
	// DefaultReplicas (2), capped at the worker count; 1 disables
	// replication — a lost worker then aborts with a diagnostic, exactly
	// the pre-replication behaviour. Results are byte-identical at every
	// R, with or without failures.
	Replicas int
	// Options carries the exploration bounds (MaxConfigs, MaxDepth).
	// Workers is ignored: in the distributed engine parallelism comes from
	// worker processes (see explore.Options.Workers for the full
	// Workers-versus-Shards contract).
	Options explore.Options
}

// WorkerError is a failure reported by a worker itself (as opposed to a
// transport failure): the job is in a broken state and the exploration
// aborts without retrying or failing over — a worker that *answers* with
// an error is not crashed, and promoting its standby would mask a real
// divergence.
type WorkerError struct {
	Worker int
	Addr   string
	Msg    string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("distexplore: worker %d (%s): %s", e.Worker, e.Addr, e.Msg)
}

// ErrInterrupted is returned by Explore when Interrupt was called: the
// run stopped cleanly at a level boundary, with the visited count
// reporting how many configurations were visited before the stop.
var ErrInterrupted = errors.New("distexplore: exploration interrupted at a level boundary")

// workerConn is the coordinator's view of one worker: its address, the
// current connection (re-dialed on demand after failures), the
// compression agreement negotiated on that connection, and the worker's
// private jitter PRNG (calls to one worker are serialized, so no lock).
type workerConn struct {
	addr     string
	conn     net.Conn
	compress bool
	rng      *rand.Rand
}

// Cluster is a coordinator's handle on a set of workers. It drives the
// level-synchronous exploration loop: workers expand the frontier shards
// they lead and answer dedup queries; the cluster merges every level's
// candidates in canonical order, so results are byte-identical to the
// in-process engines at any worker, shard, and replica count — including
// across single-worker failures when replication is on. A Cluster is not
// safe for concurrent use; run one exploration at a time (Interrupt may be
// called from any goroutine).
type Cluster struct {
	tr          Transport
	opt         RPCOptions
	workers     []*workerConn
	interrupted atomic.Bool
}

// Dial connects to every worker address eagerly, so a dead cluster member
// surfaces before any exploration state exists.
func Dial(tr Transport, addrs []string, opt RPCOptions) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("distexplore: no worker addresses")
	}
	cl := &Cluster{tr: tr, opt: opt.withDefaults()}
	for i, a := range addrs {
		cl.workers = append(cl.workers, &workerConn{
			addr: a,
			rng:  rand.New(rand.NewSource(cl.opt.Seed + int64(i))),
		})
	}
	for i := range cl.workers {
		if err := cl.redial(i); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// Close drops every worker connection. Worker processes keep running and
// can serve future coordinators.
func (cl *Cluster) Close() error {
	for _, wc := range cl.workers {
		if wc.conn != nil {
			wc.conn.Close()
			wc.conn = nil
		}
	}
	return nil
}

// Interrupt requests a graceful stop: the running Explore finishes the
// level it is on, then returns ErrInterrupted with the visit count so far.
// Safe to call from any goroutine (signal handlers, typically).
func (cl *Cluster) Interrupt() { cl.interrupted.Store(true) }

func (cl *Cluster) redial(w int) error {
	wc := cl.workers[w]
	if wc.conn != nil {
		wc.conn.Close()
		wc.conn = nil
	}
	c, err := cl.tr.Dial(wc.addr, cl.opt.DialTimeout)
	if err != nil {
		return fmt.Errorf("distexplore: dialing worker %d (%s): %w", w, wc.addr, err)
	}
	wc.conn = c
	wc.compress = false
	if cl.opt.CompressForce || (cl.opt.Compress && !transportInProcess(cl.tr)) {
		ok, err := negotiateCompression(c, cl.opt.RPCTimeout)
		if err != nil {
			c.Close()
			wc.conn = nil
			return fmt.Errorf("distexplore: hello exchange with worker %d (%s): %w", w, wc.addr, err)
		}
		wc.compress = ok
	}
	return nil
}

// negotiateCompression runs the hello exchange on a fresh connection and
// reports whether the peer accepted the flate codec. A frameErr answer
// means the peer predates the hello frame; that is not an error — the
// connection continues with plain frames.
func negotiateCompression(c net.Conn, timeout time.Duration) (bool, error) {
	deadline := time.Now().Add(timeout)
	if err := writeFrame(c, deadline, frameHello, encodeHello([]string{codecFlate}), false); err != nil {
		return false, err
	}
	rtyp, rpayload, err := readFrame(c, deadline)
	if err != nil {
		return false, err
	}
	switch rtyp {
	case frameHelloResp:
		codec, _, err := model.ConsumeString(rpayload)
		if err != nil {
			return false, fmt.Errorf("bad hello response: %w", err)
		}
		return codec == codecFlate, nil
	case frameErr:
		return false, nil // old peer: no hello frame, no compression
	default:
		return false, fmt.Errorf("unexpected hello response frame 0x%02x", rtyp)
	}
}

// call performs one RPC against worker w: bounded retries with capped,
// fully-jittered exponential backoff and a fresh connection per attempt
// cover transient transport failures; worker job state plus idempotent
// per-level request handling make the retried request safe. A frameErr
// response is a worker-reported permanent failure. When every attempt
// fails the worker is declared lost — with replication the caller fails
// over to a standby; without a surviving replica the exploration aborts
// with the diagnostic error built here.
func (cl *Cluster) call(w int, typ byte, payload []byte) (byte, []byte, error) {
	wc := cl.workers[w]
	var lastErr error
	for attempt := 0; attempt <= cl.opt.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoffDelay(cl.opt.RetryBackoff, cl.opt.RetryBackoffMax, attempt, wc.rng))
		}
		if wc.conn == nil {
			if lastErr = cl.redial(w); lastErr != nil {
				continue
			}
		}
		deadline := time.Now().Add(cl.opt.RPCTimeout)
		if err := writeFrame(wc.conn, deadline, typ, payload, wc.compress); err != nil {
			lastErr = err
			wc.conn.Close()
			wc.conn = nil
			continue
		}
		rtyp, rpayload, err := readFrame(wc.conn, deadline)
		if err != nil {
			lastErr = err
			wc.conn.Close()
			wc.conn = nil
			continue
		}
		if rtyp == frameErr {
			return 0, nil, &WorkerError{Worker: w, Addr: wc.addr, Msg: string(rpayload)}
		}
		return rtyp, rpayload, nil
	}
	return 0, nil, fmt.Errorf(
		"distexplore: worker %d (%s) lost after %d attempts (%w); its visited-set shards are unrecoverable without a replica, aborting unless one survives",
		w, wc.addr, cl.opt.Retries+1, lastErr)
}

// fanout runs f once per worker concurrently (each worker has its own
// connection, and call serializes per worker) and returns the
// lowest-indexed error.
func (cl *Cluster) fanout(f func(w int) error) error {
	errs := make([]error, len(cl.workers))
	done := make(chan struct{})
	for w := range cl.workers {
		go func(w int) {
			errs[w] = f(w)
			done <- struct{}{}
		}(w)
	}
	for range cl.workers {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// expectOK runs one RPC and accepts only an empty acknowledgement.
func (cl *Cluster) expectOK(w int, typ byte, payload []byte) error {
	rtyp, _, err := cl.call(w, typ, payload)
	if err != nil {
		return err
	}
	if rtyp != frameOK {
		return fmt.Errorf("distexplore: worker %d: unexpected response frame 0x%02x", w, rtyp)
	}
	return nil
}

// replicatedFanout sends each listed worker its payload concurrently and
// sorts the outcomes by failure mode: transport losses mark the worker
// dead in rs (the caller fails over or aborts on coverage), while
// worker-reported errors and malformed responses abort immediately —
// lowest worker index wins for determinism. Responses of the surviving
// workers are returned by index.
func (cl *Cluster) replicatedFanout(rs *replicaSet, typ byte, wantResp byte, payloads map[int][]byte) (map[int][]byte, error) {
	resps := make([][]byte, len(cl.workers))
	errs := make([]error, len(cl.workers))
	var wg sync.WaitGroup
	for w, p := range payloads {
		if p == nil || !rs.live(w) {
			continue
		}
		wg.Add(1)
		go func(w int, p []byte) {
			defer wg.Done()
			rtyp, resp, err := cl.call(w, typ, p)
			if err != nil {
				errs[w] = err
				return
			}
			if rtyp != wantResp {
				errs[w] = &WorkerError{Worker: w, Addr: cl.workers[w].addr,
					Msg: fmt.Sprintf("unexpected response frame 0x%02x", rtyp)}
				return
			}
			resps[w] = resp
		}(w, p)
	}
	wg.Wait()
	out := make(map[int][]byte)
	for w := range cl.workers {
		if errs[w] != nil {
			var we *WorkerError
			if errors.As(errs[w], &we) {
				return nil, errs[w] // permanent: state is broken, not lost
			}
			rs.markLost(w, errs[w])
			continue
		}
		if resps[w] != nil {
			out[w] = resps[w]
		}
	}
	return out, nil
}

// nodeRec is the coordinator's record of one admitted configuration:
// enough to reconstruct schedules (parent links) and drive the level loop,
// without holding the configuration itself — configurations live on the
// owning workers, and are only materialized here when a visit callback
// needs them.
type nodeRec struct {
	parent int
	depth  int
	via    model.Event
}

// expandPhase collects one level's candidates: every shard is expanded by
// its current primary, and when a primary is lost mid-phase its pending
// shards are re-issued to the next live replica — expansion is pure on the
// workers, so the promoted standby recomputes the identical candidate set
// from its replicated frontier. The loop ends when every shard has
// answered, or a shard runs out of live replicas.
func (cl *Cluster) expandPhase(rs *replicaSet, level int) ([]candidate, error) {
	done := make([]bool, rs.shards)
	var all []candidate
	for {
		assign := make(map[int][]uint64)
		pending := 0
		for s := 0; s < rs.shards; s++ {
			if done[s] {
				continue
			}
			pending++
			w, ok := rs.primary(s)
			if !ok {
				return nil, rs.lostShard(s)
			}
			assign[w] = append(assign[w], uint64(s))
		}
		if pending == 0 {
			return all, nil
		}
		payloads := make(map[int][]byte, len(assign))
		for w, ss := range assign {
			payloads[w] = encodeLevelIndices(level, ss)
		}
		resps, err := cl.replicatedFanout(rs, frameExpand, frameExpandResp, payloads)
		if err != nil {
			return nil, err
		}
		for w, resp := range resps {
			lv, cands, err := decodeLevelCandidates(resp)
			if err != nil {
				return nil, fmt.Errorf("distexplore: worker %d expand response: %w", w, err)
			}
			if lv != level {
				return nil, fmt.Errorf("distexplore: worker %d answered expand for level %d, want %d", w, lv, level)
			}
			all = append(all, cands...)
			for _, s := range assign[w] {
				done[s] = true
			}
		}
		// Workers that failed were marked lost; their shards are still
		// pending and the next iteration re-assigns them to standbys.
	}
}

// dedupPhase routes one level's candidates (already in global merge order)
// to their shards, sends each shard's batch to every live replica, and
// settles freshness from the primary's answer. Replicas apply identical
// batches in identical order, so their answers must agree — a divergence
// is reported as corruption, not silently resolved. Lost workers are
// tolerated as long as each candidate-bearing shard keeps one live
// replica whose answer arrived.
func (cl *Cluster) dedupPhase(rs *replicaSet, level int, all []candidate) ([]candidate, error) {
	byShard := make([][]candidate, rs.shards)
	for _, c := range all {
		s := ownerShard(c.Hash, rs.shards)
		byShard[s] = append(byShard[s], c)
	}
	payloads := make(map[int][]byte)
	for w := 0; w < rs.workers; w++ {
		if !rs.live(w) {
			continue
		}
		var groups []shardGroup
		for s := 0; s < rs.shards; s++ {
			if len(byShard[s]) == 0 || !rs.replicates(w, s) {
				continue
			}
			groups = append(groups, shardGroup{Shard: s, Cands: byShard[s]})
		}
		if len(groups) > 0 {
			payloads[w] = encodeShardGroups(level, groups)
		}
	}
	resps, err := cl.replicatedFanout(rs, frameDedup, frameDedupResp, payloads)
	if err != nil {
		return nil, err
	}
	freshBy := make(map[int]map[int][]uint64, len(resps))
	for w, resp := range resps {
		lv, groups, err := decodeShardIndices(resp)
		if err != nil {
			return nil, fmt.Errorf("distexplore: worker %d dedup response: %w", w, err)
		}
		if lv != level {
			return nil, fmt.Errorf("distexplore: worker %d answered dedup for level %d, want %d", w, lv, level)
		}
		m := make(map[int][]uint64, len(groups))
		for _, g := range groups {
			m[g.Shard] = g.Fresh
		}
		freshBy[w] = m
	}

	var fresh []candidate
	for s := 0; s < rs.shards; s++ {
		if len(byShard[s]) == 0 {
			continue
		}
		chosen := []uint64(nil)
		chosenW := -1
		for _, w := range rs.replicasOf(s) {
			if !rs.live(w) {
				continue
			}
			f, ok := freshBy[w][s]
			if !ok {
				return nil, fmt.Errorf("distexplore: worker %d omitted shard %d from its dedup answer", w, s)
			}
			if chosenW < 0 {
				chosen, chosenW = f, w
				continue
			}
			if !equalUint64s(chosen, f) {
				return nil, fmt.Errorf(
					"distexplore: replica divergence on shard %d: workers %d and %d disagree on freshness (corrupted replica state)",
					s, chosenW, w)
			}
		}
		if chosenW < 0 {
			return nil, rs.lostShard(s)
		}
		for _, i := range chosen {
			if i >= uint64(len(byShard[s])) {
				return nil, fmt.Errorf("distexplore: worker %d dedup index %d out of range for shard %d", chosenW, i, s)
			}
			fresh = append(fresh, byShard[s][i])
		}
	}
	sort.Slice(fresh, func(i, j int) bool {
		if fresh[i].Parent != fresh[j].Parent {
			return fresh[i].Parent < fresh[j].Parent
		}
		return fresh[i].SuccIdx < fresh[j].SuccIdx
	})
	return fresh, nil
}

func equalUint64s(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// adoptPhase hands one level's admitted nodes to every live replica of
// their shards. A worker lost during adoption is tolerated as long as each
// adopted shard keeps a live replica (which, having stayed live, has
// acknowledged its batch).
func (cl *Cluster) adoptPhase(rs *replicaSet, level int, adopts []adoptNode) error {
	if len(adopts) == 0 {
		return nil
	}
	shardOf := make([]int, len(adopts))
	touched := make(map[int]bool)
	for i, nd := range adopts {
		shardOf[i] = ownerShard(model.HashKey(nd.Key), rs.shards)
		touched[shardOf[i]] = true
	}
	payloads := make(map[int][]byte)
	for w := 0; w < rs.workers; w++ {
		if !rs.live(w) {
			continue
		}
		var mine []adoptNode
		for i, nd := range adopts {
			if rs.replicates(w, shardOf[i]) {
				mine = append(mine, nd)
			}
		}
		if len(mine) > 0 {
			payloads[w] = encodeAdoptReq(level, mine)
		}
	}
	if _, err := cl.replicatedFanout(rs, frameAdopt, frameOK, payloads); err != nil {
		return err
	}
	for s := range touched {
		if _, ok := rs.primary(s); !ok {
			return rs.lostShard(s)
		}
	}
	return nil
}

// Explore runs the distributed breadth-first exploration described by t
// and reports exactly what explore.ExploreFiltered would: whether the
// reachable set was exhausted and how many distinct configurations were
// visited, with visit called in the identical deterministic order. The
// error return is the one addition — with replication (Replicas ≥ 2) the
// run survives the loss of any worker per shard chain with byte-identical
// results, and aborts with a diagnostic only when a shard's entire replica
// chain is gone (with Replicas = 1, on any loss, as before).
func (cl *Cluster) Explore(t Task, visit explore.Visit) (complete bool, visited int, err error) {
	eopt := t.Options.Normalized()
	W := len(cl.workers)
	shards := t.Shards
	if shards <= 0 {
		shards = W
	}
	replicas := t.Replicas
	if replicas == 0 {
		replicas = DefaultReplicas
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > W {
		replicas = W
	}
	rs := newReplicaSet(shards, W, replicas)
	cl.interrupted.Store(false)

	pr, err := cl.opt.Provider(t.Protocol, t.N)
	if err != nil {
		return false, 0, err
	}
	root, err := model.Initial(pr, t.Inputs)
	if err != nil {
		return false, 0, err
	}
	if len(t.Prefix) > 0 {
		if root, err = model.ApplySchedule(pr, root, t.Prefix); err != nil {
			return false, 0, fmt.Errorf("distexplore: applying root prefix: %w", err)
		}
	}

	// Phase 0: install the job on every worker. Init failures are fatal
	// even with replication — a worker that never received the job holds
	// no state to fail over from, and starting a run against a cluster
	// that is already degraded would hide real deployment problems.
	err = cl.fanout(func(w int) error {
		req := initReq{
			Protocol: t.Protocol, N: t.N, Inputs: t.Inputs, Prefix: t.Prefix,
			Avoid: t.Avoid, Shards: shards, WorkerCount: W, WorkerIndex: w,
			Replicas: replicas,
		}
		return cl.expectOK(w, frameInit, req.encode())
	})
	if err != nil {
		return false, 0, err
	}
	// Workers now hold state; tear it down on every exit path.
	defer cl.shutdown(rs)

	led := explore.NewLedger(eopt)
	nodes := []nodeRec{{parent: -1, depth: 0}}
	var cfgs []*model.Config
	if visit != nil {
		cfgs = []*model.Config{root}
	}

	scheduleOf := func(i int) model.Schedule {
		var rev model.Schedule
		for j := i; nodes[j].parent >= 0; j = nodes[j].parent {
			rev = append(rev, nodes[j].via)
		}
		sigma := make(model.Schedule, len(rev))
		for k := range rev {
			sigma[k] = rev[len(rev)-1-k]
		}
		return sigma
	}
	pathOf := func(i int) func() model.Schedule {
		return func() model.Schedule { return scheduleOf(i) }
	}

	// Adopt the root into every replica of its owning shard so level 0 has
	// a frontier wherever it may be needed.
	err = cl.adoptPhase(rs, 0, []adoptNode{{Index: 0, Depth: 0, Key: root.Key()}})
	if err != nil {
		return false, 0, err
	}

	// Level loop. Levels are contiguous index ranges, exactly as in the
	// in-process parallel engine; each iteration runs up to three RPC
	// phases (expand, dedup, adopt) and merges between them in canonical
	// (parent index, successor index) order.
	for start, end := 0, 1; start < end; start, end = end, len(nodes) {
		if cl.interrupted.Load() {
			return false, start, ErrInterrupted
		}
		level := nodes[start].depth

		// Phase 1+2: expand the level and dedup its candidates, skipped
		// when no node of this level may grow the frontier (sealed budget,
		// or the whole level is depth-capped — level equals depth in
		// breadth-first order, so the cap is uniform across the level).
		var fresh []candidate
		if !led.Sealed() && !eopt.DepthCapped(level) {
			all, err := cl.expandPhase(rs, level)
			if err != nil {
				return false, 0, err
			}

			// Global merge order: candidates sorted by (parent node index,
			// successor index within the parent's canonical expansion) is
			// precisely the order in which the sequential engine would
			// consider them. Per-shard groups preserve this order, so
			// "first fresh in the group" equals "first fresh globally" per
			// configuration (a key's candidates all land in one shard).
			sort.Slice(all, func(i, j int) bool {
				if all[i].Parent != all[j].Parent {
					return all[i].Parent < all[j].Parent
				}
				return all[i].SuccIdx < all[j].SuccIdx
			})

			fresh, err = cl.dedupPhase(rs, level, all)
			if err != nil {
				return false, 0, err
			}
		}

		// Visit and admit, interleaved per node exactly like the in-process
		// engines: node i is visited, then its fresh successors are
		// admitted, so an early-stopping visit observes the same count.
		fi := 0
		var adopts []adoptNode
		for i := start; i < end; i++ {
			if visit != nil && visit(cfgs[i], nodes[i].depth, pathOf(i)) {
				return false, len(nodes), nil
			}
			if !led.ShouldExpand(nodes[i].depth) {
				continue
			}
			for fi < len(fresh) && fresh[fi].Parent < uint64(i) {
				fi++ // defensive; candidates of visited parents are behind us
			}
			for fi < len(fresh) && fresh[fi].Parent == uint64(i) {
				c := fresh[fi]
				fi++
				if !led.Admit() {
					continue
				}
				idx := len(nodes)
				nodes = append(nodes, nodeRec{parent: i, depth: nodes[i].depth + 1, via: c.Via})
				if visit != nil {
					cfgs = append(cfgs, model.MustApply(pr, cfgs[i], c.Via))
				}
				adopts = append(adopts, adoptNode{
					Index: uint64(idx), Depth: uint64(nodes[i].depth + 1),
					Key: c.Key, Schedule: scheduleOf(idx),
				})
			}
		}

		// Phase 3: hand the admitted nodes to their owning shards — unless
		// they can never be expanded (sealed budget, or the next level sits
		// at the depth cap), in which case no worker needs them.
		if len(adopts) > 0 && !led.Sealed() && !eopt.DepthCapped(level+1) {
			if err := cl.adoptPhase(rs, level+1, adopts); err != nil {
				return false, 0, err
			}
		}
	}
	return led.Complete(), len(nodes), nil
}

// CountReachable is the distributed counterpart of
// explore.CountReachable.
func (cl *Cluster) CountReachable(t Task) (count int, exact bool, err error) {
	complete, visited, err := cl.Explore(t, nil)
	return visited, complete, err
}

// shutdown releases worker job state at the end of an exploration,
// best-effort on the workers still live: a worker that cannot be reached
// simply keeps its state until the next Init replaces it.
func (cl *Cluster) shutdown(rs *replicaSet) {
	cl.fanout(func(w int) error {
		if rs != nil && !rs.live(w) {
			return nil
		}
		cl.expectOK(w, frameShutdown, nil)
		return nil
	})
}
