package distexplore

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/flpsim/flp/internal/atlasstore"
	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
)

// RPCOptions tune the coordinator's client behaviour. The zero value is
// usable.
type RPCOptions struct {
	// RPCTimeout is the deadline for one request/response round trip,
	// including the worker's compute time. Default 2m.
	RPCTimeout time.Duration
	// DialTimeout bounds each connection attempt. Default 10s.
	DialTimeout time.Duration
	// Retries is how many times a transiently failed RPC is re-sent (with
	// a fresh connection) before the worker is declared lost. Worker-
	// reported errors are permanent and never retried. Default 2.
	Retries int
	// RetryBackoff is the base of the retry backoff: the backoff ceiling
	// doubles from it on each attempt. Default 50ms.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the backoff ceiling so repeated retries never
	// sleep unboundedly long. Default 2s.
	RetryBackoffMax time.Duration
	// Seed seeds the per-worker PRNGs behind retry jitter (full jitter:
	// each retry sleeps uniform in [0, ceiling)). A fixed seed keeps
	// retry schedules reproducible in tests; distinct coordinator seeds
	// keep real clusters from synchronizing their retries. 0 means seed 1.
	Seed int64
	// Compress offers wire-level frame compression in the per-connection
	// hello exchange. Workers that accept it receive and send large frames
	// deflated; peers that predate the hello frame answer it with an
	// error, which the coordinator treats as "plain frames only" — old and
	// new cluster members interoperate unchanged.
	//
	// The offer is adaptive: on transports that declare themselves
	// in-process (InProcessTransport — loopback, and fault wrappers
	// around it), Compress is ignored and frames stay plain, because
	// deflating bytes that never leave the process is pure CPU loss
	// (E21: 302ms compressed vs 183ms plain on the loopback failover
	// scenario). Real network transports (TCP) negotiate as before.
	Compress bool
	// CompressForce negotiates compression regardless of the transport's
	// locality — the override for measuring compression itself (the
	// differential tests and E21's compressed scenarios) or for an
	// in-process transport proxying to somewhere expensive after all.
	CompressForce bool
	// RejoinWait, when positive, converts a shard-coverage loss (every
	// replica of some shard dead) from a hard abort into a bounded wait: the
	// coordinator polls the dead workers' addresses until a replacement
	// process answers, re-initializes it, backfills the admitted state for
	// every shard it replicates, and retries the failed phase — results stay
	// byte-identical because the backfill reconstructs exactly the state a
	// live replica would hold at the level boundary. On timeout the run
	// aborts with the usual coverage-loss diagnostic, extended with how long
	// it waited. 0 (the default) preserves the abort-immediately behaviour.
	RejoinWait time.Duration
	// RejoinPoll is the interval between replacement-worker dial attempts
	// during a RejoinWait. Default 100ms.
	RejoinPoll time.Duration
	// Provider resolves protocol names at the coordinator; it must agree
	// with the workers' provider. Default: the built-in registry.
	Provider ProtocolProvider
}

func (o RPCOptions) withDefaults() RPCOptions {
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = 2 * time.Minute
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.RetryBackoffMax <= 0 {
		o.RetryBackoffMax = 2 * time.Second
	}
	if o.RetryBackoffMax < o.RetryBackoff {
		o.RetryBackoffMax = o.RetryBackoff
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RejoinPoll <= 0 {
		o.RejoinPoll = 100 * time.Millisecond
	}
	if o.Provider == nil {
		o.Provider = RegistryProvider
	}
	return o
}

// backoffDelay computes the sleep before retry attempt (1-based): full
// jitter over an exponentially growing, capped ceiling — uniform in
// [0, min(max, base·2^(attempt-1))]. Jitter comes from the caller's seeded
// PRNG, never the global math/rand source, so tests get reproducible retry
// schedules.
func backoffDelay(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	ceiling := base
	for i := 1; i < attempt && ceiling < max; i++ {
		ceiling *= 2
	}
	if ceiling > max {
		ceiling = max
	}
	if ceiling <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(ceiling) + 1))
}

// Task describes one distributed exploration: everything a worker needs to
// reconstruct the job locally, plus the exploration bounds.
type Task struct {
	// Protocol and N name the protocol instance; both coordinator and
	// workers resolve it through their providers.
	Protocol string
	N        int
	// Inputs are the initial values defining the root configuration.
	Inputs model.Inputs
	// Prefix, when non-empty, is applied to the initial configuration to
	// produce the exploration root (explore-from-C jobs).
	Prefix model.Schedule
	// Avoid, when non-nil, suppresses events Same as it (Lemma 3's ℰ).
	Avoid *model.Event
	// Shards is the number of hash ranges the visited set is split into;
	// 0 means one per worker. More shards than workers is valid (shards
	// are dealt round-robin) and produces identical results.
	Shards int
	// Replicas is the shard replication factor R: shard s lives on workers
	// (s+r) mod W for r < R, so any R-1 worker losses leave a live copy of
	// every shard and the run fails over instead of aborting. 0 means
	// DefaultReplicas (2), capped at the worker count; 1 disables
	// replication — a lost worker then aborts with a diagnostic, exactly
	// the pre-replication behaviour. Results are byte-identical at every
	// R, with or without failures.
	Replicas int
	// Options carries the exploration bounds (MaxConfigs, MaxDepth).
	// Workers is ignored: in the distributed engine parallelism comes from
	// worker processes (see explore.Options.Workers for the full
	// Workers-versus-Shards contract).
	Options explore.Options
	// Checkpoints, when non-nil, makes the run crash-recoverable: at every
	// level boundary the coordinator durably records the admitted node
	// table, ledger flags, and expansion counters, keyed by the task's
	// identity (protocol + root key + avoid event + bounds — deliberately
	// not the cluster layout, so a resume may use different workers, shards,
	// or replication). The checkpoint is cleared on any deliberate end of
	// the run (completion or an early-stopping visit) and kept on crashes
	// and interrupts.
	Checkpoints *atlasstore.CheckpointStore
	// Resume asks Explore to restart from the newest checkpoint matching
	// this task's identity, if one exists: the node table is restored and
	// re-verified by replay, worker state is backfilled, visit callbacks for
	// the completed prefix are replayed, and the level loop re-enters at the
	// first pending level — re-expanding nothing before it. Without a
	// matching (or valid) checkpoint the run starts fresh.
	Resume bool
	// CheckpointHook, when non-nil, runs after each durable checkpoint
	// write with the level about to start. It exists for crash injection —
	// flpcluster's -kill-at-level sends the coordinator process SIGKILL from
	// it — and for tests; a non-nil error aborts the run.
	CheckpointHook func(level int) error
}

// WorkerError is a failure reported by a worker itself (as opposed to a
// transport failure): the job is in a broken state and the exploration
// aborts without retrying or failing over — a worker that *answers* with
// an error is not crashed, and promoting its standby would mask a real
// divergence.
type WorkerError struct {
	Worker int
	Addr   string
	Msg    string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("distexplore: worker %d (%s): %s", e.Worker, e.Addr, e.Msg)
}

// ErrInterrupted is returned by Explore when Interrupt was called: the
// run stopped cleanly at a level boundary, with the visited count
// reporting how many configurations were visited before the stop.
var ErrInterrupted = errors.New("distexplore: exploration interrupted at a level boundary")

// workerConn is the coordinator's view of one worker: its address, the
// current connection (re-dialed on demand after failures), the
// compression agreement negotiated on that connection, and the worker's
// private jitter PRNG (calls to one worker are serialized, so no lock).
type workerConn struct {
	addr     string
	conn     net.Conn
	compress bool
	rng      *rand.Rand
}

// Cluster is a coordinator's handle on a set of workers. It drives the
// level-synchronous exploration loop: workers expand the frontier shards
// they lead and answer dedup queries; the cluster merges every level's
// candidates in canonical order, so results are byte-identical to the
// in-process engines at any worker, shard, and replica count — including
// across single-worker failures when replication is on. A Cluster is not
// safe for concurrent use; run one exploration at a time (Interrupt may be
// called from any goroutine).
type Cluster struct {
	tr          Transport
	opt         RPCOptions
	workers     []*workerConn
	interrupted atomic.Bool
	stats       RunStats
}

// RunStats are recovery-relevant counters of the most recent Explore call,
// reset at its start. They pin the "resume re-expands nothing" contract:
// after a resumed run, ExpandedNodes equals the uninterrupted run's total
// while LiveExpanded counts only the nodes expanded after the restored
// level — their difference is exactly the restored prefix.
type RunStats struct {
	// ExpandedNodes is the cumulative number of admitted nodes whose level
	// ran an expansion phase, including levels restored from a checkpoint.
	ExpandedNodes int
	// LiveExpanded counts only nodes expanded by this process — zero work
	// re-done before the resumed level.
	LiveExpanded int
	// ResumedNodes is the size of the node table restored from a
	// checkpoint (0 on a fresh run).
	ResumedNodes int
	// ResumedLevel is the first pending level after the restore, or -1 on
	// a fresh run.
	ResumedLevel int
	// Checkpoints is how many level-boundary checkpoints this run wrote.
	Checkpoints int
	// Rejoined is how many replacement workers were re-admitted mid-run.
	Rejoined int
}

// RunStats reports the counters of the most recent Explore call. Like
// Explore itself it is not safe for concurrent use.
func (cl *Cluster) RunStats() RunStats { return cl.stats }

// Dial connects to every worker address eagerly, so a dead cluster member
// surfaces before any exploration state exists.
func Dial(tr Transport, addrs []string, opt RPCOptions) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("distexplore: no worker addresses")
	}
	cl := &Cluster{tr: tr, opt: opt.withDefaults()}
	for i, a := range addrs {
		cl.workers = append(cl.workers, &workerConn{
			addr: a,
			rng:  rand.New(rand.NewSource(cl.opt.Seed + int64(i))),
		})
	}
	for i := range cl.workers {
		if err := cl.redial(i); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// Close drops every worker connection. Worker processes keep running and
// can serve future coordinators.
func (cl *Cluster) Close() error {
	for _, wc := range cl.workers {
		if wc.conn != nil {
			wc.conn.Close()
			wc.conn = nil
		}
	}
	return nil
}

// Interrupt requests a graceful stop: the running Explore finishes the
// level it is on, then returns ErrInterrupted with the visit count so far.
// Safe to call from any goroutine (signal handlers, typically).
func (cl *Cluster) Interrupt() { cl.interrupted.Store(true) }

func (cl *Cluster) redial(w int) error {
	wc := cl.workers[w]
	if wc.conn != nil {
		wc.conn.Close()
		wc.conn = nil
	}
	c, err := cl.tr.Dial(wc.addr, cl.opt.DialTimeout)
	if err != nil {
		return fmt.Errorf("distexplore: dialing worker %d (%s): %w", w, wc.addr, err)
	}
	wc.conn = c
	wc.compress = false
	if cl.opt.CompressForce || (cl.opt.Compress && !transportInProcess(cl.tr)) {
		ok, err := negotiateCompression(c, cl.opt.RPCTimeout)
		if err != nil {
			c.Close()
			wc.conn = nil
			return fmt.Errorf("distexplore: hello exchange with worker %d (%s): %w", w, wc.addr, err)
		}
		wc.compress = ok
	}
	return nil
}

// negotiateCompression runs the hello exchange on a fresh connection and
// reports whether the peer accepted the flate codec. A frameErr answer
// means the peer predates the hello frame; that is not an error — the
// connection continues with plain frames.
func negotiateCompression(c net.Conn, timeout time.Duration) (bool, error) {
	deadline := time.Now().Add(timeout)
	if err := writeFrame(c, deadline, frameHello, encodeHello([]string{codecFlate}), false); err != nil {
		return false, err
	}
	rtyp, rpayload, err := readFrame(c, deadline)
	if err != nil {
		return false, err
	}
	switch rtyp {
	case frameHelloResp:
		codec, _, err := model.ConsumeString(rpayload)
		if err != nil {
			return false, fmt.Errorf("bad hello response: %w", err)
		}
		return codec == codecFlate, nil
	case frameErr:
		return false, nil // old peer: no hello frame, no compression
	default:
		return false, fmt.Errorf("unexpected hello response frame 0x%02x", rtyp)
	}
}

// call performs one RPC against worker w: bounded retries with capped,
// fully-jittered exponential backoff and a fresh connection per attempt
// cover transient transport failures; worker job state plus idempotent
// per-level request handling make the retried request safe. A frameErr
// response is a worker-reported permanent failure. When every attempt
// fails the worker is declared lost — with replication the caller fails
// over to a standby; without a surviving replica the exploration aborts
// with the diagnostic error built here.
func (cl *Cluster) call(w int, typ byte, payload []byte) (byte, []byte, error) {
	wc := cl.workers[w]
	var lastErr error
	for attempt := 0; attempt <= cl.opt.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoffDelay(cl.opt.RetryBackoff, cl.opt.RetryBackoffMax, attempt, wc.rng))
		}
		if wc.conn == nil {
			if lastErr = cl.redial(w); lastErr != nil {
				continue
			}
		}
		deadline := time.Now().Add(cl.opt.RPCTimeout)
		if err := writeFrame(wc.conn, deadline, typ, payload, wc.compress); err != nil {
			lastErr = err
			wc.conn.Close()
			wc.conn = nil
			continue
		}
		rtyp, rpayload, err := readFrame(wc.conn, deadline)
		if err != nil {
			lastErr = err
			wc.conn.Close()
			wc.conn = nil
			continue
		}
		if rtyp == frameErr {
			return 0, nil, &WorkerError{Worker: w, Addr: wc.addr, Msg: string(rpayload)}
		}
		return rtyp, rpayload, nil
	}
	return 0, nil, fmt.Errorf(
		"distexplore: worker %d (%s) lost after %d attempts (%w); its visited-set shards are unrecoverable without a replica, aborting unless one survives",
		w, wc.addr, cl.opt.Retries+1, lastErr)
}

// fanout runs f once per worker concurrently (each worker has its own
// connection, and call serializes per worker) and returns the
// lowest-indexed error.
func (cl *Cluster) fanout(f func(w int) error) error {
	errs := make([]error, len(cl.workers))
	done := make(chan struct{})
	for w := range cl.workers {
		go func(w int) {
			errs[w] = f(w)
			done <- struct{}{}
		}(w)
	}
	for range cl.workers {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// expectOK runs one RPC and accepts only an empty acknowledgement.
func (cl *Cluster) expectOK(w int, typ byte, payload []byte) error {
	rtyp, _, err := cl.call(w, typ, payload)
	if err != nil {
		return err
	}
	if rtyp != frameOK {
		return fmt.Errorf("distexplore: worker %d: unexpected response frame 0x%02x", w, rtyp)
	}
	return nil
}

// replicatedFanout sends each listed worker its payload concurrently and
// sorts the outcomes by failure mode: transport losses mark the worker
// dead in rs (the caller fails over or aborts on coverage), while
// worker-reported errors and malformed responses abort immediately —
// lowest worker index wins for determinism. Responses of the surviving
// workers are returned by index.
func (cl *Cluster) replicatedFanout(rs *replicaSet, typ byte, wantResp byte, payloads map[int][]byte) (map[int][]byte, error) {
	resps := make([][]byte, len(cl.workers))
	errs := make([]error, len(cl.workers))
	var wg sync.WaitGroup
	for w, p := range payloads {
		if p == nil || !rs.live(w) {
			continue
		}
		wg.Add(1)
		go func(w int, p []byte) {
			defer wg.Done()
			rtyp, resp, err := cl.call(w, typ, p)
			if err != nil {
				errs[w] = err
				return
			}
			if rtyp != wantResp {
				errs[w] = &WorkerError{Worker: w, Addr: cl.workers[w].addr,
					Msg: fmt.Sprintf("unexpected response frame 0x%02x", rtyp)}
				return
			}
			resps[w] = resp
		}(w, p)
	}
	wg.Wait()
	out := make(map[int][]byte)
	for w := range cl.workers {
		if errs[w] != nil {
			var we *WorkerError
			if errors.As(errs[w], &we) {
				return nil, errs[w] // permanent: state is broken, not lost
			}
			rs.markLost(w, errs[w])
			continue
		}
		if resps[w] != nil {
			out[w] = resps[w]
		}
	}
	return out, nil
}

// nodeRec is the coordinator's record of one admitted configuration:
// enough to reconstruct schedules (parent links) and drive the level loop,
// without holding the configuration itself — configurations live on the
// owning workers, and are only materialized here when a visit callback
// needs them.
type nodeRec struct {
	parent int
	depth  int
	via    model.Event
}

// expandPhase collects one level's candidates: every shard is expanded by
// its current primary, and when a primary is lost mid-phase its pending
// shards are re-issued to the next live replica — expansion is pure on the
// workers, so the promoted standby recomputes the identical candidate set
// from its replicated frontier. The loop ends when every shard has
// answered, or a shard runs out of live replicas.
func (cl *Cluster) expandPhase(rs *replicaSet, level int) ([]candidate, error) {
	done := make([]bool, rs.shards)
	var all []candidate
	for {
		assign := make(map[int][]uint64)
		pending := 0
		for s := 0; s < rs.shards; s++ {
			if done[s] {
				continue
			}
			pending++
			w, ok := rs.primary(s)
			if !ok {
				return nil, rs.lostShard(s)
			}
			assign[w] = append(assign[w], uint64(s))
		}
		if pending == 0 {
			return all, nil
		}
		payloads := make(map[int][]byte, len(assign))
		for w, ss := range assign {
			payloads[w] = encodeLevelIndices(level, ss)
		}
		resps, err := cl.replicatedFanout(rs, frameExpand, frameExpandResp, payloads)
		if err != nil {
			return nil, err
		}
		for w, resp := range resps {
			lv, cands, err := decodeLevelCandidates(resp)
			if err != nil {
				return nil, fmt.Errorf("distexplore: worker %d expand response: %w", w, err)
			}
			if lv != level {
				return nil, fmt.Errorf("distexplore: worker %d answered expand for level %d, want %d", w, lv, level)
			}
			all = append(all, cands...)
			for _, s := range assign[w] {
				done[s] = true
			}
		}
		// Workers that failed were marked lost; their shards are still
		// pending and the next iteration re-assigns them to standbys.
	}
}

// dedupPhase routes one level's candidates (already in global merge order)
// to their shards, sends each shard's batch to every live replica, and
// settles freshness from the primary's answer. Replicas apply identical
// batches in identical order, so their answers must agree — a divergence
// is reported as corruption, not silently resolved. Lost workers are
// tolerated as long as each candidate-bearing shard keeps one live
// replica whose answer arrived.
func (cl *Cluster) dedupPhase(rs *replicaSet, level int, all []candidate) ([]candidate, error) {
	byShard := make([][]candidate, rs.shards)
	for _, c := range all {
		s := ownerShard(c.Hash, rs.shards)
		byShard[s] = append(byShard[s], c)
	}
	payloads := make(map[int][]byte)
	for w := 0; w < rs.workers; w++ {
		if !rs.live(w) {
			continue
		}
		var groups []shardGroup
		for s := 0; s < rs.shards; s++ {
			if len(byShard[s]) == 0 || !rs.replicates(w, s) {
				continue
			}
			groups = append(groups, shardGroup{Shard: s, Cands: byShard[s]})
		}
		if len(groups) > 0 {
			payloads[w] = encodeShardGroups(level, groups)
		}
	}
	resps, err := cl.replicatedFanout(rs, frameDedup, frameDedupResp, payloads)
	if err != nil {
		return nil, err
	}
	freshBy := make(map[int]map[int][]uint64, len(resps))
	for w, resp := range resps {
		lv, groups, err := decodeShardIndices(resp)
		if err != nil {
			return nil, fmt.Errorf("distexplore: worker %d dedup response: %w", w, err)
		}
		if lv != level {
			return nil, fmt.Errorf("distexplore: worker %d answered dedup for level %d, want %d", w, lv, level)
		}
		m := make(map[int][]uint64, len(groups))
		for _, g := range groups {
			m[g.Shard] = g.Fresh
		}
		freshBy[w] = m
	}

	var fresh []candidate
	for s := 0; s < rs.shards; s++ {
		if len(byShard[s]) == 0 {
			continue
		}
		chosen := []uint64(nil)
		chosenW := -1
		for _, w := range rs.replicasOf(s) {
			if !rs.live(w) {
				continue
			}
			f, ok := freshBy[w][s]
			if !ok {
				return nil, fmt.Errorf("distexplore: worker %d omitted shard %d from its dedup answer", w, s)
			}
			if chosenW < 0 {
				chosen, chosenW = f, w
				continue
			}
			if !equalUint64s(chosen, f) {
				return nil, fmt.Errorf(
					"distexplore: replica divergence on shard %d: workers %d and %d disagree on freshness (corrupted replica state)",
					s, chosenW, w)
			}
		}
		if chosenW < 0 {
			return nil, rs.lostShard(s)
		}
		for _, i := range chosen {
			if i >= uint64(len(byShard[s])) {
				return nil, fmt.Errorf("distexplore: worker %d dedup index %d out of range for shard %d", chosenW, i, s)
			}
			fresh = append(fresh, byShard[s][i])
		}
	}
	sort.Slice(fresh, func(i, j int) bool {
		if fresh[i].Parent != fresh[j].Parent {
			return fresh[i].Parent < fresh[j].Parent
		}
		return fresh[i].SuccIdx < fresh[j].SuccIdx
	})
	return fresh, nil
}

func equalUint64s(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// adoptPhase hands one level's admitted nodes to every live replica of
// their shards. A worker lost during adoption is tolerated as long as each
// adopted shard keeps a live replica (which, having stayed live, has
// acknowledged its batch).
func (cl *Cluster) adoptPhase(rs *replicaSet, level int, adopts []adoptNode) error {
	if len(adopts) == 0 {
		return nil
	}
	shardOf := make([]int, len(adopts))
	touched := make(map[int]bool)
	for i, nd := range adopts {
		shardOf[i] = ownerShard(model.HashKey(nd.Key), rs.shards)
		touched[shardOf[i]] = true
	}
	payloads := make(map[int][]byte)
	for w := 0; w < rs.workers; w++ {
		if !rs.live(w) {
			continue
		}
		var mine []adoptNode
		for i, nd := range adopts {
			if rs.replicates(w, shardOf[i]) {
				mine = append(mine, nd)
			}
		}
		if len(mine) > 0 {
			payloads[w] = encodeAdoptReq(level, mine)
		}
	}
	if _, err := cl.replicatedFanout(rs, frameAdopt, frameOK, payloads); err != nil {
		return err
	}
	for s := range touched {
		if _, ok := rs.primary(s); !ok {
			return rs.lostShard(s)
		}
	}
	return nil
}

// Explore runs the distributed breadth-first exploration described by t
// and reports exactly what explore.ExploreFiltered would: whether the
// reachable set was exhausted and how many distinct configurations were
// visited, with visit called in the identical deterministic order. The
// error return is the one addition — with replication (Replicas ≥ 2) the
// run survives the loss of any worker per shard chain with byte-identical
// results, and aborts with a diagnostic only when a shard's entire replica
// chain is gone (with Replicas = 1, on any loss, as before).
func (cl *Cluster) Explore(t Task, visit explore.Visit) (complete bool, visited int, err error) {
	eopt := t.Options.Normalized()
	W := len(cl.workers)
	shards := t.Shards
	if shards <= 0 {
		shards = W
	}
	replicas := t.Replicas
	if replicas == 0 {
		replicas = DefaultReplicas
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > W {
		replicas = W
	}
	rs := newReplicaSet(shards, W, replicas)
	cl.interrupted.Store(false)
	cl.stats = RunStats{ResumedLevel: -1}
	if t.Checkpoints != nil {
		rs.ckDesc = fmt.Sprintf("no checkpoint written yet in %s", t.Checkpoints.Dir())
	} else {
		rs.ckDesc = "checkpointing disabled"
	}

	pr, err := cl.opt.Provider(t.Protocol, t.N)
	if err != nil {
		return false, 0, err
	}
	root, err := model.Initial(pr, t.Inputs)
	if err != nil {
		return false, 0, err
	}
	if len(t.Prefix) > 0 {
		if root, err = model.ApplySchedule(pr, root, t.Prefix); err != nil {
			return false, 0, fmt.Errorf("distexplore: applying root prefix: %w", err)
		}
	}

	// Phase 0: install the job on every worker. Init failures are fatal
	// even with replication — a worker that never received the job holds
	// no state to fail over from, and starting a run against a cluster
	// that is already degraded would hide real deployment problems.
	err = cl.fanout(func(w int) error {
		req := initReq{
			Protocol: t.Protocol, N: t.N, Inputs: t.Inputs, Prefix: t.Prefix,
			Avoid: t.Avoid, Shards: shards, WorkerCount: W, WorkerIndex: w,
			Replicas: replicas,
		}
		return cl.expectOK(w, frameInit, req.encode())
	})
	if err != nil {
		return false, 0, err
	}
	// Workers now hold state; tear it down on every exit path.
	defer cl.shutdown(rs)

	led := explore.NewLedger(eopt)
	nodes := []nodeRec{{parent: -1, depth: 0}}
	// Configurations are materialized at the coordinator whenever the run
	// itself consumes them: visit callbacks and rejoin backfills (which
	// replay admitted state to replacement workers). Checkpoint snapshots
	// also need them, but only on the write-behind goroutine — when nothing
	// else wants configs, the writer derives its own copy off the critical
	// path (see wcfgs below) and the coordinator stays as lean as an
	// uncheckpointed run.
	needCfgs := visit != nil || cl.opt.RejoinWait > 0
	var cfgs []*model.Config
	if needCfgs {
		cfgs = []*model.Config{root}
	}
	// wcfgs is the write-behind goroutine's private config chain, extended
	// lazily inside save closures (which run strictly sequentially). Only
	// initialization happens on this goroutine, ordered before any enqueue
	// by the channel send.
	wcfgs := []*model.Config{root}

	scheduleOf := func(i int) model.Schedule {
		var rev model.Schedule
		for j := i; nodes[j].parent >= 0; j = nodes[j].parent {
			rev = append(rev, nodes[j].via)
		}
		sigma := make(model.Schedule, len(rev))
		for k := range rev {
			sigma[k] = rev[len(rev)-1-k]
		}
		return sigma
	}
	pathOf := func(i int) func() model.Schedule {
		return func() model.Schedule { return scheduleOf(i) }
	}

	// backfillWorker replays the admitted node table into one freshly
	// re-initialized replacement worker: every level's nodes for the shards
	// it replicates, re-adopted in admission order. Adoption interns each
	// key into the worker's visited slice and rebuilds its frontier, so
	// after the backfill the replacement holds exactly the state a live
	// replica carries at this boundary. Depth-capped levels are skipped
	// just as the original run never adopted them.
	backfillWorker := func(w int) error {
		for lo := 0; lo < len(nodes); {
			hi, d := lo, nodes[lo].depth
			for hi < len(nodes) && nodes[hi].depth == d {
				hi++
			}
			if !eopt.DepthCapped(d) {
				var mine []adoptNode
				for i := lo; i < hi; i++ {
					s := ownerShard(model.HashKey(cfgs[i].Key()), shards)
					if workerReplicatesShard(w, s, W, replicas) {
						mine = append(mine, adoptNode{
							Index: uint64(i), Depth: uint64(d),
							Key: cfgs[i].Key(), Schedule: scheduleOf(i),
						})
					}
				}
				if len(mine) > 0 {
					if err := cl.expectOK(w, frameAdopt, encodeAdoptReq(d, mine)); err != nil {
						return err
					}
				}
			}
			lo = hi
		}
		return nil
	}

	// rejoinShard waits up to RejoinWait for a replacement process to
	// answer on a dead replica's address, then re-initializes and backfills
	// it. Reviving is safe precisely because the replacement is rebuilt
	// from scratch: frameInit discards whatever stale state the address
	// held, and the backfill re-derives live-replica state from the
	// coordinator's own admitted table.
	rejoinShard := func(shard int) bool {
		deadline := time.Now().Add(cl.opt.RejoinWait)
		for {
			for _, w := range rs.replicasOf(shard) {
				if rs.live(w) {
					continue
				}
				if cl.redial(w) != nil {
					continue
				}
				req := initReq{
					Protocol: t.Protocol, N: t.N, Inputs: t.Inputs, Prefix: t.Prefix,
					Avoid: t.Avoid, Shards: shards, WorkerCount: W, WorkerIndex: w,
					Replicas: replicas,
				}
				if cl.expectOK(w, frameInit, req.encode()) != nil {
					continue
				}
				if backfillWorker(w) != nil {
					continue
				}
				rs.revive(w)
				cl.stats.Rejoined++
				return true
			}
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(cl.opt.RejoinPoll)
		}
	}

	// withRejoin runs one RPC phase, converting a shard-coverage loss into
	// a bounded wait for a replacement worker when rejoin is enabled. The
	// phase retry is safe: expansion is pure, and the per-level idempotency
	// guards on surviving workers answer retried dedups from cache and
	// absorb retried adopts as no-ops.
	withRejoin := func(phase func() error) error {
		for {
			perr := phase()
			if perr == nil || cl.opt.RejoinWait <= 0 {
				return perr
			}
			var sl *shardLostError
			if !errors.As(perr, &sl) {
				return perr
			}
			if !rejoinShard(sl.shard) {
				return fmt.Errorf("%w; waited %v for a replacement worker to rejoin, none arrived",
					perr, cl.opt.RejoinWait)
			}
		}
	}

	// Checkpoint identity: the problem plus bounds, not the cluster layout —
	// results are byte-identical across layouts, so a checkpoint taken on
	// one cluster may resume on another.
	var ckKey atlasstore.RunKey
	var ckw *ckWriter
	if t.Checkpoints != nil {
		ckKey = atlasstore.RunKey{
			Protocol: t.Protocol, N: t.N, RootKey: root.KeyBytes(),
			MaxConfigs: eopt.MaxConfigs, MaxDepth: eopt.MaxDepth,
		}
		if t.Avoid != nil {
			ckKey.Avoid = t.Avoid.Key()
		}
		// Boundary writes run on a background goroutine so the encode and
		// fsync overlap the next level's RPC phases instead of stalling
		// them. This deferred close drains the queue before Explore
		// returns on ANY path, so every enqueued boundary is durable by
		// the time the caller observes the result — including the error
		// paths a resume will later recover from.
		ckw = newCkWriter()
		defer ckw.close()
	}

	start, end := 0, 1
	resumed := false
	if t.Resume && t.Checkpoints != nil {
		if ck := t.Checkpoints.Load(ckKey); ck != nil {
			b, rerr := explore.RestoreAtlasBuilder(pr, root, ck.Snap)
			if rerr != nil {
				// Replay-level corruption: drop the checkpoint and fall
				// through to a fresh start.
				t.Checkpoints.Discard(ckKey, rerr)
			} else {
				wcfgs = b.Configs()
				if needCfgs {
					cfgs = wcfgs
				}
				nodes = make([]nodeRec, len(wcfgs))
				for i := range nodes {
					nodes[i] = nodeRec{
						parent: int(ck.Snap.Parent[i]),
						depth:  int(ck.Snap.Depth[i]),
						via:    ck.Snap.ParentVia[i],
					}
				}
				led.Count = len(nodes)
				led.Truncated = ck.Truncated
				start, end = ck.Start, len(nodes)
				cl.stats.ResumedNodes = len(nodes)
				cl.stats.ResumedLevel = nodes[start].depth
				cl.stats.ExpandedNodes = ck.Expanded
				rs.ckDesc = fmt.Sprintf("last-good checkpoint: level %d in %s",
					nodes[start].depth, t.Checkpoints.Dir())
				resumed = true
			}
		}
	}

	if resumed {
		// Backfill every worker with the restored admitted state — the
		// same per-level adoption the original run performed. Skipped
		// entirely when the budget is sealed: no expansion will ever run
		// again, so no worker needs state.
		if !led.Sealed() {
			for lo := 0; lo < len(nodes); {
				hi, d := lo, nodes[lo].depth
				for hi < len(nodes) && nodes[hi].depth == d {
					hi++
				}
				if !eopt.DepthCapped(d) {
					adopts := make([]adoptNode, 0, hi-lo)
					for i := lo; i < hi; i++ {
						// wcfgs holds the restored config table; safe to read
						// here because nothing has been enqueued to the
						// write-behind yet (its first job comes from the
						// level loop below).
						adopts = append(adopts, adoptNode{
							Index: uint64(i), Depth: uint64(d),
							Key: wcfgs[i].Key(), Schedule: scheduleOf(i),
						})
					}
					if aerr := cl.adoptPhase(rs, d, adopts); aerr != nil {
						return false, 0, aerr
					}
				}
				lo = hi
			}
		}
		// Replay the completed prefix's visits so callers observe the same
		// stream an uninterrupted run would produce (visit callbacks must
		// be deterministic for resume to be transparent).
		if visit != nil {
			for i := 0; i < start; i++ {
				if visit(cfgs[i], nodes[i].depth, pathOf(i)) {
					ckw.discard()
					t.Checkpoints.Clear(ckKey) // deliberate end; nothing to resume
					return false, len(nodes), nil
				}
			}
		}
	} else {
		// Adopt the root into every replica of its owning shard so level 0
		// has a frontier wherever it may be needed.
		err = cl.adoptPhase(rs, 0, []adoptNode{{Index: 0, Depth: 0, Key: root.Key()}})
		if err != nil {
			return false, 0, err
		}
	}

	// Level loop. Levels are contiguous index ranges, exactly as in the
	// in-process parallel engine; each iteration runs up to three RPC
	// phases (expand, dedup, adopt) and merges between them in canonical
	// (parent index, successor index) order.
	for ; start < end; start, end = end, len(nodes) {
		if cl.interrupted.Load() {
			// The last boundary checkpoint (if any) stays on disk: an
			// interrupted run is resumable by construction.
			return false, start, ErrInterrupted
		}
		level := nodes[start].depth
		rs.level = level

		// Durable cut: every level before this one is fully expanded,
		// deduped, and adopted; nothing of this level is expanded yet.
		// Enqueued before the level runs and drained before Explore
		// returns, so a crash anywhere inside the level restarts from this
		// boundary. The snapshot captures frozen slice prefixes: the node
		// table and config list are append-only, so the background encode
		// reads them race-free while this level grows the tail.
		if t.Checkpoints != nil && start > 0 {
			ckNodes := nodes[:end:end]
			var ckCfgs []*model.Config
			if needCfgs {
				ckCfgs = cfgs[:end:end]
			}
			ck := &atlasstore.RunCheckpoint{
				Start:     start,
				Truncated: led.Truncated,
				Expanded:  cl.stats.ExpandedNodes,
			}
			ckw.enqueue(func() {
				if ckCfgs == nil {
					// Derive the missing configs here, off the critical
					// path: replay each admitted node's edge from its
					// parent. The chain persists across boundaries, so
					// the whole run pays one MustApply per node total.
					for i := len(wcfgs); i < len(ckNodes); i++ {
						wcfgs = append(wcfgs, model.MustApply(pr, wcfgs[ckNodes[i].parent], ckNodes[i].via))
					}
					ckCfgs = wcfgs[:len(ckNodes)]
				}
				ck.Snap = checkpointSnapshot(ckNodes, ckCfgs)
				t.Checkpoints.Save(ckKey, ck)
			})
			cl.stats.Checkpoints++
			rs.ckDesc = fmt.Sprintf("last-good checkpoint: level %d in %s", level, t.Checkpoints.Dir())
			if t.CheckpointHook != nil {
				ckw.flush() // the hook may crash the process; the boundary must be on disk first
				if herr := t.CheckpointHook(level); herr != nil {
					return false, 0, fmt.Errorf("distexplore: checkpoint hook at level %d: %w", level, herr)
				}
			}
		}

		// Phase 1+2: expand the level and dedup its candidates, skipped
		// when no node of this level may grow the frontier (sealed budget,
		// or the whole level is depth-capped — level equals depth in
		// breadth-first order, so the cap is uniform across the level).
		var fresh []candidate
		if !led.Sealed() && !eopt.DepthCapped(level) {
			var all []candidate
			if perr := withRejoin(func() error {
				var e error
				all, e = cl.expandPhase(rs, level)
				return e
			}); perr != nil {
				return false, 0, perr
			}
			cl.stats.ExpandedNodes += end - start
			cl.stats.LiveExpanded += end - start

			// Global merge order: candidates sorted by (parent node index,
			// successor index within the parent's canonical expansion) is
			// precisely the order in which the sequential engine would
			// consider them. Per-shard groups preserve this order, so
			// "first fresh in the group" equals "first fresh globally" per
			// configuration (a key's candidates all land in one shard).
			sort.Slice(all, func(i, j int) bool {
				if all[i].Parent != all[j].Parent {
					return all[i].Parent < all[j].Parent
				}
				return all[i].SuccIdx < all[j].SuccIdx
			})

			if perr := withRejoin(func() error {
				var e error
				fresh, e = cl.dedupPhase(rs, level, all)
				return e
			}); perr != nil {
				return false, 0, perr
			}
		}

		// Visit and admit, interleaved per node exactly like the in-process
		// engines: node i is visited, then its fresh successors are
		// admitted, so an early-stopping visit observes the same count.
		fi := 0
		var adopts []adoptNode
		for i := start; i < end; i++ {
			if visit != nil && visit(cfgs[i], nodes[i].depth, pathOf(i)) {
				if t.Checkpoints != nil {
					ckw.discard()
					t.Checkpoints.Clear(ckKey) // deliberate end; nothing to resume
				}
				return false, len(nodes), nil
			}
			if !led.ShouldExpand(nodes[i].depth) {
				continue
			}
			for fi < len(fresh) && fresh[fi].Parent < uint64(i) {
				fi++ // defensive; candidates of visited parents are behind us
			}
			for fi < len(fresh) && fresh[fi].Parent == uint64(i) {
				c := fresh[fi]
				fi++
				if !led.Admit() {
					continue
				}
				idx := len(nodes)
				nodes = append(nodes, nodeRec{parent: i, depth: nodes[i].depth + 1, via: c.Via})
				if needCfgs {
					cfgs = append(cfgs, model.MustApply(pr, cfgs[i], c.Via))
				}
				adopts = append(adopts, adoptNode{
					Index: uint64(idx), Depth: uint64(nodes[i].depth + 1),
					Key: c.Key, Schedule: scheduleOf(idx),
				})
			}
		}

		// Phase 3: hand the admitted nodes to their owning shards — unless
		// they can never be expanded (sealed budget, or the next level sits
		// at the depth cap), in which case no worker needs them.
		if len(adopts) > 0 && !led.Sealed() && !eopt.DepthCapped(level+1) {
			if perr := withRejoin(func() error {
				return cl.adoptPhase(rs, level+1, adopts)
			}); perr != nil {
				return false, 0, perr
			}
		}
	}
	if t.Checkpoints != nil {
		ckw.discard()
		t.Checkpoints.Clear(ckKey) // finished runs have nothing to resume
	}
	return led.Complete(), len(nodes), nil
}

// ckWriter is the boundary-checkpoint write-behind. Saves run on one
// background goroutine with two cost bounds that never weaken what a fence
// observes:
//
//   - Latest-wins coalescing: every boundary targets the same keyed file,
//     so when writes queue up only the newest pending boundary is written
//     and the superseded ones are dropped.
//   - Time throttling: between fences, at most one physical write per
//     ckWriteInterval; the newest boundary stays pending in memory. A
//     crash with no fence can therefore lose up to the interval of
//     progress — the resume just restarts one boundary earlier.
//
// The durable file after any fence is byte-identical to what synchronous
// per-boundary writes would leave. flush() is that fence, used wherever
// durability becomes observable: before a CheckpointHook (which may kill
// the process) and via close() before Explore returns — so every error a
// resume can recover from leaves the newest boundary on disk. discard()
// is the fence for deliberate ends: it drops the pending boundary instead
// of writing it, because the caller is about to Clear the file anyway.
type ckItem struct {
	save    func()
	fence   chan struct{}
	discard bool
}

type ckWriter struct {
	jobs chan ckItem
	done chan struct{}
}

const ckWriteInterval = 100 * time.Millisecond

func newCkWriter() *ckWriter {
	w := &ckWriter{jobs: make(chan ckItem, 16), done: make(chan struct{})}
	go w.run()
	return w
}

func (w *ckWriter) run() {
	defer close(w.done)
	var pending func()
	lastWrite := time.Now() // runs shorter than the interval write only at fences
	write := func() {
		if pending != nil {
			pending()
			pending = nil
			lastWrite = time.Now()
		}
	}
	for it := range w.jobs {
		// The coordinator is single-threaded and flush blocks it, so a
		// drained batch is always saves in order with at most one fence,
		// last.
		batch := []ckItem{it}
	drain:
		for {
			select {
			case more, ok := <-w.jobs:
				if !ok {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		fenced := false
		for _, b := range batch {
			if b.save != nil {
				pending = b.save // latest wins; older boundaries are superseded
			}
			if b.fence != nil {
				fenced = true
				if b.discard {
					pending = nil
				}
			}
		}
		if fenced || time.Since(lastWrite) >= ckWriteInterval {
			write()
		}
		for _, b := range batch {
			if b.fence != nil {
				close(b.fence)
			}
		}
	}
	write() // channel close is Explore returning: a final implicit fence
}

func (w *ckWriter) enqueue(save func()) { w.jobs <- ckItem{save: save} }

// flush blocks until the newest boundary enqueued before it is durable.
func (w *ckWriter) flush() {
	fence := make(chan struct{})
	w.jobs <- ckItem{fence: fence}
	<-fence
}

// discard blocks until the writer has dropped every pending boundary —
// the fence before Clear, where writing one last checkpoint just to
// delete it would be wasted work (and a save landing after Clear would
// resurrect the file).
func (w *ckWriter) discard() {
	fence := make(chan struct{})
	w.jobs <- ckItem{fence: fence, discard: true}
	<-fence
}

// close flushes and stops the writer goroutine; call exactly once.
func (w *ckWriter) close() {
	close(w.jobs)
	<-w.done
}

// checkpointSnapshot renders the coordinator's admitted node table as a
// truncated AtlasSnapshot (no successor edges): exactly the columns
// RestoreAtlasBuilder needs to replay and re-verify every configuration on
// resume.
func checkpointSnapshot(nodes []nodeRec, cfgs []*model.Config) *explore.AtlasSnapshot {
	n := len(nodes)
	snap := &explore.AtlasSnapshot{
		Depth:     make([]int32, n),
		Parent:    make([]int32, n),
		ParentVia: make([]model.Event, n),
		Keys:      make([][]byte, n),
		SuccStart: []int32{0},
	}
	for i, nd := range nodes {
		snap.Depth[i] = int32(nd.depth)
		snap.Parent[i] = int32(nd.parent)
		snap.ParentVia[i] = nd.via
		snap.Keys[i] = cfgs[i].KeyBytes()
	}
	return snap
}

// CountReachable is the distributed counterpart of
// explore.CountReachable.
func (cl *Cluster) CountReachable(t Task) (count int, exact bool, err error) {
	complete, visited, err := cl.Explore(t, nil)
	return visited, complete, err
}

// shutdown releases worker job state at the end of an exploration,
// best-effort on the workers still live: a worker that cannot be reached
// simply keeps its state until the next Init replaces it.
func (cl *Cluster) shutdown(rs *replicaSet) {
	cl.fanout(func(w int) error {
		if rs != nil && !rs.live(w) {
			return nil
		}
		cl.expectOK(w, frameShutdown, nil)
		return nil
	})
}
