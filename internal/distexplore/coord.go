package distexplore

import (
	"fmt"
	"net"
	"sort"
	"time"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
)

// RPCOptions tune the coordinator's client behaviour. The zero value is
// usable.
type RPCOptions struct {
	// RPCTimeout is the deadline for one request/response round trip,
	// including the worker's compute time. Default 2m.
	RPCTimeout time.Duration
	// DialTimeout bounds each connection attempt. Default 10s.
	DialTimeout time.Duration
	// Retries is how many times a transiently failed RPC is re-sent (with
	// a fresh connection) before the worker is declared lost. Worker-
	// reported errors are permanent and never retried. Default 2.
	Retries int
	// RetryBackoff is slept before the first retry and doubles on each
	// subsequent one. Default 50ms.
	RetryBackoff time.Duration
	// Provider resolves protocol names at the coordinator; it must agree
	// with the workers' provider. Default: the built-in registry.
	Provider ProtocolProvider
}

func (o RPCOptions) withDefaults() RPCOptions {
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = 2 * time.Minute
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.Provider == nil {
		o.Provider = RegistryProvider
	}
	return o
}

// Task describes one distributed exploration: everything a worker needs to
// reconstruct the job locally, plus the exploration bounds.
type Task struct {
	// Protocol and N name the protocol instance; both coordinator and
	// workers resolve it through their providers.
	Protocol string
	N        int
	// Inputs are the initial values defining the root configuration.
	Inputs model.Inputs
	// Prefix, when non-empty, is applied to the initial configuration to
	// produce the exploration root (explore-from-C jobs).
	Prefix model.Schedule
	// Avoid, when non-nil, suppresses events Same as it (Lemma 3's ℰ).
	Avoid *model.Event
	// Shards is the number of hash ranges the visited set is split into;
	// 0 means one per worker. More shards than workers is valid (shards
	// are dealt round-robin) and produces identical results.
	Shards int
	// Options carries the exploration bounds (MaxConfigs, MaxDepth).
	// Workers is ignored: in the distributed engine parallelism comes from
	// worker processes (see explore.Options.Workers for the full
	// Workers-versus-Shards contract).
	Options explore.Options
}

// WorkerError is a failure reported by a worker itself (as opposed to a
// transport failure): the job is in a broken state and the exploration
// aborts without retrying.
type WorkerError struct {
	Worker int
	Addr   string
	Msg    string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("distexplore: worker %d (%s): %s", e.Worker, e.Addr, e.Msg)
}

// workerConn is the coordinator's view of one worker: its address and the
// current connection, re-dialed on demand after failures.
type workerConn struct {
	addr string
	conn net.Conn
}

// Cluster is a coordinator's handle on a set of workers. It drives the
// level-synchronous exploration loop: workers expand their owned frontier
// and answer dedup queries; the cluster merges every level's candidates in
// canonical order, so results are byte-identical to the in-process engines
// at any worker and shard count. A Cluster is not safe for concurrent use;
// run one exploration at a time.
type Cluster struct {
	tr      Transport
	opt     RPCOptions
	workers []*workerConn
}

// Dial connects to every worker address eagerly, so a dead cluster member
// surfaces before any exploration state exists.
func Dial(tr Transport, addrs []string, opt RPCOptions) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("distexplore: no worker addresses")
	}
	cl := &Cluster{tr: tr, opt: opt.withDefaults()}
	for _, a := range addrs {
		cl.workers = append(cl.workers, &workerConn{addr: a})
	}
	for i := range cl.workers {
		if err := cl.redial(i); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// Close drops every worker connection. Worker processes keep running and
// can serve future coordinators.
func (cl *Cluster) Close() error {
	for _, wc := range cl.workers {
		if wc.conn != nil {
			wc.conn.Close()
			wc.conn = nil
		}
	}
	return nil
}

func (cl *Cluster) redial(w int) error {
	wc := cl.workers[w]
	if wc.conn != nil {
		wc.conn.Close()
		wc.conn = nil
	}
	c, err := cl.tr.Dial(wc.addr, cl.opt.DialTimeout)
	if err != nil {
		return fmt.Errorf("distexplore: dialing worker %d (%s): %w", w, wc.addr, err)
	}
	wc.conn = c
	return nil
}

// call performs one RPC against worker w: bounded retries with exponential
// backoff and a fresh connection per attempt cover transient transport
// failures; worker job state plus per-level response caches make the
// retried request idempotent. A frameErr response is a worker-reported
// permanent failure. When every attempt fails the worker — and with it an
// irreplaceable slice of the visited set — is declared lost, and the
// exploration must abort: that is the diagnostic error returned here.
func (cl *Cluster) call(w int, typ byte, payload []byte) (byte, []byte, error) {
	wc := cl.workers[w]
	var lastErr error
	backoff := cl.opt.RetryBackoff
	for attempt := 0; attempt <= cl.opt.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if wc.conn == nil {
			if lastErr = cl.redial(w); lastErr != nil {
				continue
			}
		}
		deadline := time.Now().Add(cl.opt.RPCTimeout)
		if err := writeFrame(wc.conn, deadline, typ, payload); err != nil {
			lastErr = err
			wc.conn.Close()
			wc.conn = nil
			continue
		}
		rtyp, rpayload, err := readFrame(wc.conn, deadline)
		if err != nil {
			lastErr = err
			wc.conn.Close()
			wc.conn = nil
			continue
		}
		if rtyp == frameErr {
			return 0, nil, &WorkerError{Worker: w, Addr: wc.addr, Msg: string(rpayload)}
		}
		return rtyp, rpayload, nil
	}
	return 0, nil, fmt.Errorf(
		"distexplore: worker %d (%s) lost after %d attempts (%w); its visited-set shards are unrecoverable, aborting exploration",
		w, wc.addr, cl.opt.Retries+1, lastErr)
}

// fanout runs f once per worker concurrently (each worker has its own
// connection, and call serializes per worker) and returns the
// lowest-indexed error.
func (cl *Cluster) fanout(f func(w int) error) error {
	errs := make([]error, len(cl.workers))
	done := make(chan struct{})
	for w := range cl.workers {
		go func(w int) {
			errs[w] = f(w)
			done <- struct{}{}
		}(w)
	}
	for range cl.workers {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// expectOK runs one RPC and accepts only an empty acknowledgement.
func (cl *Cluster) expectOK(w int, typ byte, payload []byte) error {
	rtyp, _, err := cl.call(w, typ, payload)
	if err != nil {
		return err
	}
	if rtyp != frameOK {
		return fmt.Errorf("distexplore: worker %d: unexpected response frame 0x%02x", w, rtyp)
	}
	return nil
}

// nodeRec is the coordinator's record of one admitted configuration:
// enough to reconstruct schedules (parent links) and drive the level loop,
// without holding the configuration itself — configurations live on the
// owning workers, and are only materialized here when a visit callback
// needs them.
type nodeRec struct {
	parent int
	depth  int
	via    model.Event
}

// Explore runs the distributed breadth-first exploration described by t
// and reports exactly what explore.ExploreFiltered would: whether the
// reachable set was exhausted and how many distinct configurations were
// visited, with visit called in the identical deterministic order. The
// error return is the one addition — transport loss or worker failure
// aborts the run (the visited set cannot be reconstructed from a surviving
// subset of shards).
func (cl *Cluster) Explore(t Task, visit explore.Visit) (complete bool, visited int, err error) {
	eopt := t.Options.Normalized()
	W := len(cl.workers)
	shards := t.Shards
	if shards <= 0 {
		shards = W
	}

	pr, err := cl.opt.Provider(t.Protocol, t.N)
	if err != nil {
		return false, 0, err
	}
	root, err := model.Initial(pr, t.Inputs)
	if err != nil {
		return false, 0, err
	}
	if len(t.Prefix) > 0 {
		if root, err = model.ApplySchedule(pr, root, t.Prefix); err != nil {
			return false, 0, fmt.Errorf("distexplore: applying root prefix: %w", err)
		}
	}

	// Phase 0: install the job on every worker.
	err = cl.fanout(func(w int) error {
		req := initReq{
			Protocol: t.Protocol, N: t.N, Inputs: t.Inputs, Prefix: t.Prefix,
			Avoid: t.Avoid, Shards: shards, WorkerCount: W, WorkerIndex: w,
		}
		return cl.expectOK(w, frameInit, req.encode())
	})
	if err != nil {
		return false, 0, err
	}
	// Workers now hold state; tear it down on every exit path.
	defer cl.shutdown()

	led := explore.NewLedger(eopt)
	nodes := []nodeRec{{parent: -1, depth: 0}}
	var cfgs []*model.Config
	if visit != nil {
		cfgs = []*model.Config{root}
	}

	scheduleOf := func(i int) model.Schedule {
		var rev model.Schedule
		for j := i; nodes[j].parent >= 0; j = nodes[j].parent {
			rev = append(rev, nodes[j].via)
		}
		sigma := make(model.Schedule, len(rev))
		for k := range rev {
			sigma[k] = rev[len(rev)-1-k]
		}
		return sigma
	}
	pathOf := func(i int) func() model.Schedule {
		return func() model.Schedule { return scheduleOf(i) }
	}

	// Adopt the root into its owning shard so level 0 has a frontier.
	rootOwner := ownerWorker(ownerShard(root.Hash(), shards), W)
	err = cl.expectOK(rootOwner, frameAdopt,
		encodeAdoptReq(0, []adoptNode{{Index: 0, Depth: 0, Key: root.Key()}}))
	if err != nil {
		return false, 0, err
	}

	// Level loop. Levels are contiguous index ranges, exactly as in the
	// in-process parallel engine; each iteration runs up to three RPC
	// phases (expand, dedup, adopt) and merges between them in canonical
	// (parent index, successor index) order.
	for start, end := 0, 1; start < end; start, end = end, len(nodes) {
		level := nodes[start].depth

		// Phase 1+2: expand the level and dedup its candidates, skipped
		// when no node of this level may grow the frontier (sealed budget,
		// or the whole level is depth-capped — level equals depth in
		// breadth-first order, so the cap is uniform across the level).
		var fresh []candidate
		if !led.Sealed() && !eopt.DepthCapped(level) {
			perWorker := make([][]candidate, W)
			err = cl.fanout(func(w int) error {
				rtyp, resp, err := cl.call(w, frameExpand, encodeLevelIndices(level, nil))
				if err != nil {
					return err
				}
				if rtyp != frameExpandResp {
					return fmt.Errorf("distexplore: worker %d: unexpected response frame 0x%02x", w, rtyp)
				}
				lv, cands, err := decodeLevelCandidates(resp)
				if err != nil {
					return fmt.Errorf("distexplore: worker %d expand response: %w", w, err)
				}
				if lv != level {
					return fmt.Errorf("distexplore: worker %d answered expand for level %d, want %d", w, lv, level)
				}
				perWorker[w] = cands
				return nil
			})
			if err != nil {
				return false, 0, err
			}

			// Global merge order: candidates sorted by (parent node index,
			// successor index within the parent's canonical expansion) is
			// precisely the order in which the sequential engine would
			// consider them.
			var all []candidate
			for _, cs := range perWorker {
				all = append(all, cs...)
			}
			sort.Slice(all, func(i, j int) bool {
				if all[i].Parent != all[j].Parent {
					return all[i].Parent < all[j].Parent
				}
				return all[i].SuccIdx < all[j].SuccIdx
			})

			// Route each candidate to its owning shard, preserving global
			// order within each group, and dedup remotely. "First fresh in
			// the group" then equals "first fresh globally" per
			// configuration, because a key's candidates all land in one
			// group.
			groups := make([][]candidate, W)
			for _, c := range all {
				w := ownerWorker(ownerShard(c.Hash, shards), W)
				groups[w] = append(groups[w], c)
			}
			freshPer := make([][]candidate, W)
			err = cl.fanout(func(w int) error {
				if len(groups[w]) == 0 {
					return nil
				}
				rtyp, resp, err := cl.call(w, frameDedup, encodeLevelCandidates(level, groups[w]))
				if err != nil {
					return err
				}
				if rtyp != frameDedupResp {
					return fmt.Errorf("distexplore: worker %d: unexpected response frame 0x%02x", w, rtyp)
				}
				lv, idx, err := decodeLevelIndices(resp)
				if err != nil {
					return fmt.Errorf("distexplore: worker %d dedup response: %w", w, err)
				}
				if lv != level {
					return fmt.Errorf("distexplore: worker %d answered dedup for level %d, want %d", w, lv, level)
				}
				for _, i := range idx {
					if i >= uint64(len(groups[w])) {
						return fmt.Errorf("distexplore: worker %d dedup index %d out of range", w, i)
					}
					freshPer[w] = append(freshPer[w], groups[w][i])
				}
				return nil
			})
			if err != nil {
				return false, 0, err
			}
			for _, g := range freshPer {
				fresh = append(fresh, g...)
			}
			sort.Slice(fresh, func(i, j int) bool {
				if fresh[i].Parent != fresh[j].Parent {
					return fresh[i].Parent < fresh[j].Parent
				}
				return fresh[i].SuccIdx < fresh[j].SuccIdx
			})
		}

		// Visit and admit, interleaved per node exactly like the in-process
		// engines: node i is visited, then its fresh successors are
		// admitted, so an early-stopping visit observes the same count.
		fi := 0
		var adopts []adoptNode
		for i := start; i < end; i++ {
			if visit != nil && visit(cfgs[i], nodes[i].depth, pathOf(i)) {
				return false, len(nodes), nil
			}
			if !led.ShouldExpand(nodes[i].depth) {
				continue
			}
			for fi < len(fresh) && fresh[fi].Parent < uint64(i) {
				fi++ // defensive; candidates of visited parents are behind us
			}
			for fi < len(fresh) && fresh[fi].Parent == uint64(i) {
				c := fresh[fi]
				fi++
				if !led.Admit() {
					continue
				}
				idx := len(nodes)
				nodes = append(nodes, nodeRec{parent: i, depth: nodes[i].depth + 1, via: c.Via})
				if visit != nil {
					cfgs = append(cfgs, model.MustApply(pr, cfgs[i], c.Via))
				}
				adopts = append(adopts, adoptNode{
					Index: uint64(idx), Depth: uint64(nodes[i].depth + 1),
					Key: c.Key, Schedule: scheduleOf(idx),
				})
			}
		}

		// Phase 3: hand the admitted nodes to their owning shards — unless
		// they can never be expanded (sealed budget, or the next level sits
		// at the depth cap), in which case no worker needs them.
		if len(adopts) > 0 && !led.Sealed() && !eopt.DepthCapped(level+1) {
			groups := make(map[int][]adoptNode)
			for _, nd := range adopts {
				w := ownerWorker(ownerShard(model.HashKey(nd.Key), shards), W)
				groups[w] = append(groups[w], nd)
			}
			err = cl.fanout(func(w int) error {
				if len(groups[w]) == 0 {
					return nil
				}
				return cl.expectOK(w, frameAdopt, encodeAdoptReq(level+1, groups[w]))
			})
			if err != nil {
				return false, 0, err
			}
		}
	}
	return led.Complete(), len(nodes), nil
}

// CountReachable is the distributed counterpart of
// explore.CountReachable.
func (cl *Cluster) CountReachable(t Task) (count int, exact bool, err error) {
	complete, visited, err := cl.Explore(t, nil)
	return visited, complete, err
}

// shutdown releases worker job state at the end of an exploration,
// best-effort: a worker that cannot be reached simply keeps its state
// until the next Init replaces it.
func (cl *Cluster) shutdown() {
	cl.fanout(func(w int) error {
		cl.expectOK(w, frameShutdown, nil)
		return nil
	})
}
