package distexplore

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// The cluster speaks a length-prefixed binary protocol: every message is
// one frame of
//
//	uint32 big-endian payload length | 1 byte type | payload
//
// over a persistent connection, strictly request/response (the coordinator
// sends one request per worker at a time and waits for the reply). Payload
// encodings live in wire.go and reuse the model's canonical wire formats.

// Frame types. Requests flow coordinator→worker, responses worker→
// coordinator.
const (
	frameInit     byte = 0x01 // start an exploration job on the worker
	frameExpand   byte = 0x02 // expand the worker's owned frontier at one level
	frameDedup    byte = 0x03 // dedup candidates against the worker's visited shards
	frameAdopt    byte = 0x04 // adopt admitted nodes into the worker's frontier
	frameShutdown byte = 0x05 // end the job, releasing worker state
	frameHello    byte = 0x06 // capability negotiation; payload lists offered codecs

	frameOK         byte = 0x81 // empty acknowledgement
	frameErr        byte = 0x82 // worker-side failure; payload is the message
	frameExpandResp byte = 0x83
	frameDedupResp  byte = 0x84
	frameHelloResp  byte = 0x85 // payload is the accepted codec name ("" = none)

	// frameCompressedBit marks a frame whose payload is compressed with the
	// negotiated codec; the receiver strips the bit after inflating. The
	// bit is only ever set after a successful hello exchange, so a peer
	// that has never heard of compression also never sees it — which is the
	// whole interop story (see compress.go).
	frameCompressedBit byte = 0x40
)

// maxFramePayload guards against corrupt length prefixes allocating
// unbounded memory.
const maxFramePayload = 1 << 28 // 256 MiB

// writeFrame sends one frame, honouring the deadline (zero means none).
// When compress is true and the payload clears the size threshold, the
// payload is deflated and the frame marked with frameCompressedBit — only
// if compression actually wins; incompressible payloads go out raw.
func writeFrame(c net.Conn, deadline time.Time, typ byte, payload []byte, compress bool) error {
	if compress && len(payload) >= compressThreshold {
		if z, err := deflate(payload); err == nil && len(z) < len(payload) {
			typ |= frameCompressedBit
			payload = z
		}
	}
	if err := c.SetWriteDeadline(deadline); err != nil {
		return err
	}
	hdr := make([]byte, 5)
	binary.BigEndian.PutUint32(hdr, uint32(len(payload)))
	hdr[4] = typ
	if _, err := c.Write(hdr); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := c.Write(payload)
	return err
}

// readFrame receives one frame, honouring the deadline (zero means none).
func readFrame(c net.Conn, deadline time.Time) (byte, []byte, error) {
	if err := c.SetReadDeadline(deadline); err != nil {
		return 0, nil, err
	}
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(c, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("distexplore: frame payload %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c, payload); err != nil {
		return 0, nil, err
	}
	typ := hdr[4]
	if typ&frameCompressedBit != 0 {
		raw, err := inflate(payload)
		if err != nil {
			return 0, nil, fmt.Errorf("distexplore: inflating frame 0x%02x: %w", typ, err)
		}
		return typ &^ frameCompressedBit, raw, nil
	}
	return typ, payload, nil
}
