package distexplore

import (
	"fmt"

	"github.com/flpsim/flp/internal/model"
)

// RPC payloads. Configurations cross the wire as canonical key +
// fingerprint + (for adoption) the schedule reaching them from the root —
// see the wire-layer rationale in internal/model/wire.go.

// initReq starts an exploration job on a worker. The worker reconstructs
// the protocol from the registry by name, builds the root configuration
// from the inputs plus the prefix schedule, and owns every visited-set
// shard s with s % WorkerCount == WorkerIndex.
type initReq struct {
	Protocol    string
	N           int
	Inputs      model.Inputs
	Prefix      model.Schedule
	Avoid       *model.Event // nil: no filter (Lemma 3 jobs set it)
	Shards      int
	WorkerCount int
	WorkerIndex int
	// Replicas is the shard replication factor: shard s is held by workers
	// (s+r) mod WorkerCount for r = 0..Replicas-1 (see replica.go). Decoded
	// as 1 when absent, so an older coordinator gets the unreplicated
	// layout it expects.
	Replicas int
}

func (r *initReq) encode() []byte {
	b := model.AppendString(nil, r.Protocol)
	b = model.AppendUvarint(b, uint64(r.N))
	b = model.AppendInputs(b, r.Inputs)
	b = model.AppendSchedule(b, r.Prefix)
	if r.Avoid != nil {
		b = append(b, 1)
		b = model.AppendEvent(b, *r.Avoid)
	} else {
		b = append(b, 0)
	}
	b = model.AppendUvarint(b, uint64(r.Shards))
	b = model.AppendUvarint(b, uint64(r.WorkerCount))
	b = model.AppendUvarint(b, uint64(r.WorkerIndex))
	b = model.AppendUvarint(b, uint64(r.Replicas))
	return b
}

func decodeInitReq(b []byte) (*initReq, error) {
	var r initReq
	var n int
	var err error
	if r.Protocol, n, err = model.ConsumeString(b); err != nil {
		return nil, fmt.Errorf("init protocol: %w", err)
	}
	b = b[n:]
	nProcs, n, err := model.ConsumeUvarint(b)
	if err != nil {
		return nil, fmt.Errorf("init n: %w", err)
	}
	r.N = int(nProcs)
	b = b[n:]
	if r.Inputs, n, err = model.ConsumeInputs(b); err != nil {
		return nil, fmt.Errorf("init inputs: %w", err)
	}
	b = b[n:]
	if r.Prefix, n, err = model.ConsumeSchedule(b); err != nil {
		return nil, fmt.Errorf("init prefix: %w", err)
	}
	b = b[n:]
	if len(b) == 0 {
		return nil, fmt.Errorf("init: truncated avoid flag")
	}
	hasAvoid := b[0] == 1
	b = b[1:]
	if hasAvoid {
		e, n, err := model.ConsumeEvent(b)
		if err != nil {
			return nil, fmt.Errorf("init avoid: %w", err)
		}
		r.Avoid = &e
		b = b[n:]
	}
	for _, dst := range []*int{&r.Shards, &r.WorkerCount, &r.WorkerIndex} {
		v, n, err := model.ConsumeUvarint(b)
		if err != nil {
			return nil, fmt.Errorf("init shard layout: %w", err)
		}
		*dst = int(v)
		b = b[n:]
	}
	r.Replicas = 1
	if len(b) > 0 {
		v, _, err := model.ConsumeUvarint(b)
		if err != nil {
			return nil, fmt.Errorf("init replicas: %w", err)
		}
		r.Replicas = int(v)
	}
	return &r, nil
}

// candidate is one successor produced by expansion, before deduplication:
// the wire analogue of the in-process engine's Successor, tagged with its
// global provenance. (Parent, SuccIdx) totally orders a level's candidates
// in exactly the order the sequential engine's merge would consider them.
type candidate struct {
	Parent  uint64 // global index of the expanded node
	SuccIdx uint64 // position in the parent's canonical successor list
	Hash    uint64 // fingerprint; routes the candidate to its owning shard
	Key     string // canonical configuration key; settles dedup exactly
	Via     model.Event
}

func appendCandidate(b []byte, c candidate) []byte {
	b = model.AppendUvarint(b, c.Parent)
	b = model.AppendUvarint(b, c.SuccIdx)
	b = model.AppendUvarint(b, c.Hash)
	b = model.AppendString(b, c.Key)
	return model.AppendEvent(b, c.Via)
}

func consumeCandidate(b []byte) (candidate, int, error) {
	var c candidate
	off := 0
	for _, dst := range []*uint64{&c.Parent, &c.SuccIdx, &c.Hash} {
		v, n, err := model.ConsumeUvarint(b[off:])
		if err != nil {
			return c, 0, err
		}
		*dst = v
		off += n
	}
	key, n, err := model.ConsumeString(b[off:])
	if err != nil {
		return c, 0, err
	}
	c.Key = key
	off += n
	e, n, err := model.ConsumeEvent(b[off:])
	if err != nil {
		return c, 0, err
	}
	c.Via = e
	return c, off + n, nil
}

// encodeLevelCandidates frames a level number plus a candidate list; used
// by both the expand response and the dedup request.
func encodeLevelCandidates(level int, cands []candidate) []byte {
	b := model.AppendUvarint(nil, uint64(level))
	b = model.AppendUvarint(b, uint64(len(cands)))
	for _, c := range cands {
		b = appendCandidate(b, c)
	}
	return b
}

func decodeLevelCandidates(b []byte) (level int, cands []candidate, err error) {
	lv, n, err := model.ConsumeUvarint(b)
	if err != nil {
		return 0, nil, fmt.Errorf("candidates level: %w", err)
	}
	b = b[n:]
	count, n, err := model.ConsumeUvarint(b)
	if err != nil {
		return 0, nil, fmt.Errorf("candidates count: %w", err)
	}
	b = b[n:]
	cands = make([]candidate, 0, count)
	for i := uint64(0); i < count; i++ {
		c, n, err := consumeCandidate(b)
		if err != nil {
			return 0, nil, fmt.Errorf("candidate %d: %w", i, err)
		}
		cands = append(cands, c)
		b = b[n:]
	}
	return int(lv), cands, nil
}

// encodeUintList frames a level number plus a list of indices; used by the
// dedup response (indices into the request's candidate list that were
// fresh) and the expand request (which carries only the level).
func encodeLevelIndices(level int, idx []uint64) []byte {
	b := model.AppendUvarint(nil, uint64(level))
	b = model.AppendUvarint(b, uint64(len(idx)))
	for _, v := range idx {
		b = model.AppendUvarint(b, v)
	}
	return b
}

func decodeLevelIndices(b []byte) (level int, idx []uint64, err error) {
	lv, n, err := model.ConsumeUvarint(b)
	if err != nil {
		return 0, nil, fmt.Errorf("indices level: %w", err)
	}
	b = b[n:]
	count, n, err := model.ConsumeUvarint(b)
	if err != nil {
		return 0, nil, fmt.Errorf("indices count: %w", err)
	}
	b = b[n:]
	idx = make([]uint64, 0, count)
	for i := uint64(0); i < count; i++ {
		v, n, err := model.ConsumeUvarint(b)
		if err != nil {
			return 0, nil, fmt.Errorf("index %d: %w", i, err)
		}
		idx = append(idx, v)
		b = b[n:]
	}
	return int(lv), idx, nil
}

// shardGroup is one shard's slice of a level's candidates, in global merge
// order. Dedup requests carry one group per shard the receiving worker
// replicates, so a worker can answer for several shards in one RPC while
// the coordinator still reads freshness per shard — which is what lets it
// take any live replica's answer for a shard whose primary died.
type shardGroup struct {
	Shard int
	Cands []candidate
}

func encodeShardGroups(level int, groups []shardGroup) []byte {
	b := model.AppendUvarint(nil, uint64(level))
	b = model.AppendUvarint(b, uint64(len(groups)))
	for _, g := range groups {
		b = model.AppendUvarint(b, uint64(g.Shard))
		b = model.AppendUvarint(b, uint64(len(g.Cands)))
		for _, c := range g.Cands {
			b = appendCandidate(b, c)
		}
	}
	return b
}

func decodeShardGroups(b []byte) (level int, groups []shardGroup, err error) {
	lv, n, err := model.ConsumeUvarint(b)
	if err != nil {
		return 0, nil, fmt.Errorf("shard groups level: %w", err)
	}
	b = b[n:]
	count, n, err := model.ConsumeUvarint(b)
	if err != nil {
		return 0, nil, fmt.Errorf("shard groups count: %w", err)
	}
	b = b[n:]
	groups = make([]shardGroup, 0, count)
	for i := uint64(0); i < count; i++ {
		var g shardGroup
		s, n, err := model.ConsumeUvarint(b)
		if err != nil {
			return 0, nil, fmt.Errorf("shard group %d id: %w", i, err)
		}
		g.Shard = int(s)
		b = b[n:]
		cn, n, err := model.ConsumeUvarint(b)
		if err != nil {
			return 0, nil, fmt.Errorf("shard group %d size: %w", i, err)
		}
		b = b[n:]
		g.Cands = make([]candidate, 0, cn)
		for j := uint64(0); j < cn; j++ {
			c, n, err := consumeCandidate(b)
			if err != nil {
				return 0, nil, fmt.Errorf("shard group %d candidate %d: %w", i, j, err)
			}
			g.Cands = append(g.Cands, c)
			b = b[n:]
		}
		groups = append(groups, g)
	}
	return int(lv), groups, nil
}

// shardIndices is one shard's dedup answer: the indices (into that shard's
// request group) of first-seen candidates.
type shardIndices struct {
	Shard int
	Fresh []uint64
}

func encodeShardIndices(level int, groups []shardIndices) []byte {
	b := model.AppendUvarint(nil, uint64(level))
	b = model.AppendUvarint(b, uint64(len(groups)))
	for _, g := range groups {
		b = model.AppendUvarint(b, uint64(g.Shard))
		b = model.AppendUvarint(b, uint64(len(g.Fresh)))
		for _, v := range g.Fresh {
			b = model.AppendUvarint(b, v)
		}
	}
	return b
}

func decodeShardIndices(b []byte) (level int, groups []shardIndices, err error) {
	lv, n, err := model.ConsumeUvarint(b)
	if err != nil {
		return 0, nil, fmt.Errorf("shard indices level: %w", err)
	}
	b = b[n:]
	count, n, err := model.ConsumeUvarint(b)
	if err != nil {
		return 0, nil, fmt.Errorf("shard indices count: %w", err)
	}
	b = b[n:]
	groups = make([]shardIndices, 0, count)
	for i := uint64(0); i < count; i++ {
		var g shardIndices
		s, n, err := model.ConsumeUvarint(b)
		if err != nil {
			return 0, nil, fmt.Errorf("shard indices %d id: %w", i, err)
		}
		g.Shard = int(s)
		b = b[n:]
		fn, n, err := model.ConsumeUvarint(b)
		if err != nil {
			return 0, nil, fmt.Errorf("shard indices %d size: %w", i, err)
		}
		b = b[n:]
		g.Fresh = make([]uint64, 0, fn)
		for j := uint64(0); j < fn; j++ {
			v, n, err := model.ConsumeUvarint(b)
			if err != nil {
				return 0, nil, fmt.Errorf("shard indices %d fresh %d: %w", i, j, err)
			}
			g.Fresh = append(g.Fresh, v)
			b = b[n:]
		}
		groups = append(groups, g)
	}
	return int(lv), groups, nil
}

// adoptNode is one admitted configuration being handed to its owning
// shard: identity (key), placement (global index and depth), and
// provenance (schedule from the root, by which the owner rematerializes
// the configuration, verifying the key).
type adoptNode struct {
	Index    uint64
	Depth    uint64
	Key      string
	Schedule model.Schedule
}

func encodeAdoptReq(level int, nodes []adoptNode) []byte {
	b := model.AppendUvarint(nil, uint64(level))
	b = model.AppendUvarint(b, uint64(len(nodes)))
	for _, nd := range nodes {
		b = model.AppendUvarint(b, nd.Index)
		b = model.AppendUvarint(b, nd.Depth)
		b = model.AppendString(b, nd.Key)
		b = model.AppendSchedule(b, nd.Schedule)
	}
	return b
}

func decodeAdoptReq(b []byte) (level int, nodes []adoptNode, err error) {
	lv, n, err := model.ConsumeUvarint(b)
	if err != nil {
		return 0, nil, fmt.Errorf("adopt level: %w", err)
	}
	b = b[n:]
	count, n, err := model.ConsumeUvarint(b)
	if err != nil {
		return 0, nil, fmt.Errorf("adopt count: %w", err)
	}
	b = b[n:]
	nodes = make([]adoptNode, 0, count)
	for i := uint64(0); i < count; i++ {
		var nd adoptNode
		for _, dst := range []*uint64{&nd.Index, &nd.Depth} {
			v, n, err := model.ConsumeUvarint(b)
			if err != nil {
				return 0, nil, fmt.Errorf("adopt node %d: %w", i, err)
			}
			*dst = v
			b = b[n:]
		}
		if nd.Key, n, err = model.ConsumeString(b); err != nil {
			return 0, nil, fmt.Errorf("adopt node %d key: %w", i, err)
		}
		b = b[n:]
		if nd.Schedule, n, err = model.ConsumeSchedule(b); err != nil {
			return 0, nil, fmt.Errorf("adopt node %d schedule: %w", i, err)
		}
		b = b[n:]
		nodes = append(nodes, nd)
	}
	return int(lv), nodes, nil
}

// ownerShard maps a configuration fingerprint to its hash-range shard:
// the 64-bit hash space is split into shards equal contiguous ranges.
func ownerShard(hash uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	rangeSize := ^uint64(0)/uint64(shards) + 1
	s := int(hash / rangeSize)
	if s >= shards { // the last range absorbs the rounding remainder
		s = shards - 1
	}
	return s
}

// ownerWorker maps a shard to the worker process serving it: shards are
// dealt round-robin, so worker w serves every shard s with
// s % workerCount == w.
func ownerWorker(shard, workerCount int) int { return shard % workerCount }
