package distexplore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Deterministic fault injection. FaultyTransport wraps any Transport and
// perturbs the coordinator side of every connection according to a
// FaultPlan: connections dropped, frames delayed past their deadline,
// payloads truncated mid-frame, and — the scripted fault the differential
// tests are built on — a named worker killed at a named level. All
// randomness comes from PRNGs seeded from the plan (never the global
// math/rand source), one PRNG per connection keyed by address and dial
// count, so a plan replays the same fault schedule per worker regardless
// of goroutine interleaving.
//
// The wrapper is frame-aware: it buffers writes until a full frame is
// assembled, peeks at the type byte and (for expand/dedup/adopt requests)
// the level prefix of the payload, and only then decides the frame's fate.
// That is what makes "kill worker 2 at level 3" a deterministic, replayable
// event rather than a race.

// FaultPlan scripts the faults a FaultyTransport injects. The zero value
// injects nothing.
type FaultPlan struct {
	// Seed seeds the per-connection PRNGs driving the probabilistic
	// faults. 0 means seed 1.
	Seed int64

	// KillAddr names a worker (by dial address) to kill: the first frame
	// addressed to it that carries a level ≥ KillLevel is discarded, the
	// connection is severed, and every later dial to the address fails —
	// indistinguishable, from the coordinator's side, from the worker
	// process crashing at that level. Empty means no kill.
	KillAddr  string
	KillLevel int

	// DropProb is the per-frame probability of severing the connection
	// instead of delivering the frame (the frame is lost; the worker
	// stays up, so a re-dial succeeds).
	DropProb float64

	// DelayProb is the per-frame probability of stalling the frame for
	// Delay before delivery. Choose Delay larger than the coordinator's
	// RPCTimeout to force deadline expiries.
	DelayProb float64
	Delay     time.Duration

	// TruncateProb is the per-frame probability of delivering only the
	// first half of the frame's bytes and then severing the connection —
	// the receiver sees a malformed, short read.
	TruncateProb float64

	// CoordKillLevel, when positive, scripts a *coordinator* crash: the
	// first frame (to any worker) carrying a level ≥ CoordKillLevel is
	// discarded and the whole transport goes dead — every live connection
	// severed on its next frame, every later dial refused. From the
	// exploration's point of view this is what the coordinator process
	// being SIGKILLed at that point looks like: the run errors out
	// mid-level, leaving whatever the checkpoint store last persisted as
	// the only recoverable state. The chaos sweep uses it to crash runs
	// deterministically at each level and verify that -resume restores
	// byte-identical results.
	CoordKillLevel int
}

// FaultyTransport wraps an inner Transport with a FaultPlan. It is safe
// for concurrent use by the coordinator's fanout goroutines.
type FaultyTransport struct {
	inner Transport
	plan  FaultPlan

	mu        sync.Mutex
	killed    map[string]bool
	revived   map[string]bool
	dials     map[string]int
	coordDead bool
}

// NewFaultyTransport wraps inner with the given plan.
func NewFaultyTransport(inner Transport, plan FaultPlan) *FaultyTransport {
	if plan.Seed == 0 {
		plan.Seed = 1
	}
	return &FaultyTransport{
		inner:   inner,
		plan:    plan,
		killed:  make(map[string]bool),
		revived: make(map[string]bool),
		dials:   make(map[string]int),
	}
}

// Listen implements Transport: the worker side is untouched — faults are
// injected on the coordinator's connections, where the protocol's failure
// handling lives.
func (ft *FaultyTransport) Listen(addr string) (Listener, error) { return ft.inner.Listen(addr) }

// InProcess implements InProcessTransport by asking the wrapped
// transport: injecting faults does not move the bytes off-machine.
func (ft *FaultyTransport) InProcess() bool { return transportInProcess(ft.inner) }

// Dial implements Transport. Dials to a killed worker fail, exactly as
// dials to a crashed process would.
func (ft *FaultyTransport) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	ft.mu.Lock()
	if ft.coordDead {
		ft.mu.Unlock()
		return nil, fmt.Errorf("fault injection: coordinator is dead")
	}
	if ft.killed[addr] {
		ft.mu.Unlock()
		return nil, fmt.Errorf("fault injection: worker %s is dead", addr)
	}
	ft.dials[addr]++
	seed := ft.plan.Seed ^ int64(hashAddr(addr)) ^ int64(ft.dials[addr])<<32
	ft.mu.Unlock()

	c, err := ft.inner.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: c, ft: ft, addr: addr, rng: rand.New(rand.NewSource(seed))}, nil
}

func (ft *FaultyTransport) kill(addr string) {
	ft.mu.Lock()
	ft.killed[addr] = true
	ft.mu.Unlock()
}

// Revive clears a scripted worker kill: dials to addr succeed again and the
// plan's KillAddr script does not re-fire for it — modeling a replacement
// process taking over the dead worker's address. The replacement starts
// blank; the coordinator's rejoin path re-initializes and backfills it.
func (ft *FaultyTransport) Revive(addr string) {
	ft.mu.Lock()
	delete(ft.killed, addr)
	ft.revived[addr] = true
	ft.mu.Unlock()
}

func (ft *FaultyTransport) isRevived(addr string) bool {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.revived[addr]
}

func (ft *FaultyTransport) killCoord() {
	ft.mu.Lock()
	ft.coordDead = true
	ft.mu.Unlock()
}

func (ft *FaultyTransport) coordKilled() bool {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.coordDead
}

func hashAddr(addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	return h.Sum64()
}

// faultConn intercepts the write path of one coordinator connection,
// reassembling frames from the byte stream and applying the plan per
// frame. Reads and the rest of net.Conn pass through.
type faultConn struct {
	net.Conn
	ft   *FaultyTransport
	addr string
	rng  *rand.Rand

	wbuf      []byte
	wdeadline time.Time
}

func (fc *faultConn) SetWriteDeadline(t time.Time) error {
	fc.wdeadline = t
	return fc.Conn.SetWriteDeadline(t)
}

func (fc *faultConn) SetDeadline(t time.Time) error {
	fc.wdeadline = t
	return fc.Conn.SetDeadline(t)
}

// Write buffers until at least one full frame is assembled, then delivers
// (or sabotages) each complete frame. Partial trailing bytes wait for the
// next Write, mirroring how writeFrame emits header and payload
// separately.
func (fc *faultConn) Write(p []byte) (int, error) {
	fc.wbuf = append(fc.wbuf, p...)
	for {
		if len(fc.wbuf) < 5 {
			return len(p), nil
		}
		n := int(binary.BigEndian.Uint32(fc.wbuf[:4]))
		if len(fc.wbuf) < 5+n {
			return len(p), nil
		}
		frame := make([]byte, 5+n)
		copy(frame, fc.wbuf[:5+n])
		fc.wbuf = fc.wbuf[5+n:]
		if err := fc.deliver(frame); err != nil {
			return 0, err
		}
	}
}

// deliver decides one frame's fate: scripted kill first (deterministic by
// construction), then the seeded probabilistic faults, then forwarding.
func (fc *faultConn) deliver(frame []byte) error {
	plan := &fc.ft.plan

	if fc.ft.coordKilled() {
		fc.Conn.Close()
		return fmt.Errorf("fault injection: coordinator is dead")
	}
	if plan.CoordKillLevel > 0 {
		if level, ok := frameLevel(frame); ok && level >= plan.CoordKillLevel {
			fc.ft.killCoord()
			fc.Conn.Close()
			return fmt.Errorf("fault injection: coordinator killed at level %d", level)
		}
	}
	if plan.KillAddr == fc.addr && !fc.ft.isRevived(fc.addr) {
		if level, ok := frameLevel(frame); ok && level >= plan.KillLevel {
			fc.ft.kill(fc.addr)
			fc.Conn.Close()
			return fmt.Errorf("fault injection: worker %s killed at level %d", fc.addr, level)
		}
	}
	if plan.DropProb > 0 && fc.rng.Float64() < plan.DropProb {
		fc.Conn.Close()
		return fmt.Errorf("fault injection: connection to %s dropped", fc.addr)
	}
	if plan.TruncateProb > 0 && fc.rng.Float64() < plan.TruncateProb {
		fc.Conn.Write(frame[:len(frame)/2])
		fc.Conn.Close()
		return fmt.Errorf("fault injection: frame to %s truncated", fc.addr)
	}
	if plan.DelayProb > 0 && fc.rng.Float64() < plan.DelayProb {
		time.Sleep(plan.Delay)
		if !fc.wdeadline.IsZero() && time.Now().After(fc.wdeadline) {
			fc.Conn.Close()
			return fmt.Errorf("fault injection: frame to %s delayed past the write deadline", fc.addr)
		}
	}
	_, err := fc.Conn.Write(frame)
	return err
}

// frameLevel extracts the level prefix from request frames that carry one
// (expand, dedup, adopt), inflating compressed payloads first. Frames
// without a level — init, hello, shutdown, responses — report false.
func frameLevel(frame []byte) (int, bool) {
	typ := frame[4]
	payload := frame[5:]
	if typ&frameCompressedBit != 0 {
		raw, err := inflate(payload)
		if err != nil {
			return 0, false
		}
		typ &^= frameCompressedBit
		payload = raw
	}
	switch typ {
	case frameExpand, frameDedup, frameAdopt:
	default:
		return 0, false
	}
	level, _, err := consumeUvarintPrefix(payload)
	if err != nil {
		return 0, false
	}
	return int(level), true
}

// consumeUvarintPrefix reads the leading uvarint of a payload without
// pulling in the model package's wire helpers (faults.go stays independent
// of payload schemas beyond the level prefix).
func consumeUvarintPrefix(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, fmt.Errorf("bad uvarint prefix")
	}
	return v, n, nil
}
