package distexplore

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// The distributed engine's contract is the in-process contract extended
// across processes: byte-identical visit streams, counts, witness
// schedules, and truncation flags at every (workers × shards) combination,
// over both the in-memory loopback transport and real TCP. The
// differential tests below pin that against the sequential engine as the
// oracle.

// step is one visit observation; comparing full streams position by
// position is stronger than any aggregate report.
type step struct {
	key   string
	depth int
	path  string
}

func seqStream(t *testing.T, tk Task) (complete bool, visited int, steps []step) {
	t.Helper()
	pr, err := RegistryProvider(tk.Protocol, tk.N)
	if err != nil {
		t.Fatal(err)
	}
	c := model.MustInitial(pr, tk.Inputs)
	if len(tk.Prefix) > 0 {
		if c, err = model.ApplySchedule(pr, c, tk.Prefix); err != nil {
			t.Fatal(err)
		}
	}
	opt := tk.Options
	opt.Workers = 1
	complete, visited = explore.Explore(pr, c, opt, tk.Avoid, func(cfg *model.Config, depth int, path func() model.Schedule) bool {
		steps = append(steps, step{key: cfg.Key(), depth: depth, path: path().String()})
		return false
	})
	return complete, visited, steps
}

func distStream(t *testing.T, cl *Cluster, tk Task) (complete bool, visited int, steps []step) {
	t.Helper()
	complete, visited, err := cl.Explore(tk, func(cfg *model.Config, depth int, path func() model.Schedule) bool {
		steps = append(steps, step{key: cfg.Key(), depth: depth, path: path().String()})
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	return complete, visited, steps
}

func compareStreams(t *testing.T, label string, seqC bool, seqV int, seq []step, distC bool, distV int, dist []step) {
	t.Helper()
	if seqC != distC || seqV != distV {
		t.Errorf("%s: (complete, visited) diverged: sequential (%v, %d), distributed (%v, %d)",
			label, seqC, seqV, distC, distV)
	}
	if len(seq) != len(dist) {
		t.Fatalf("%s: visit stream length %d, sequential %d", label, len(dist), len(seq))
	}
	for i := range seq {
		if seq[i] != dist[i] {
			t.Fatalf("%s: visit %d diverged:\n sequential:  %+v\n distributed: %+v", label, i, seq[i], dist[i])
		}
	}
}

// trackingListener wraps a Listener and remembers accepted connections so
// tests can sever them mid-run.
type trackingListener struct {
	Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *trackingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.conns = append(l.conns, c)
	l.mu.Unlock()
	return c, nil
}

// killConns closes every accepted connection (but leaves the listener up,
// so a re-dial succeeds).
func (l *trackingListener) killConns() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
	l.conns = nil
}

// startWorkers launches n workers on the transport and returns their
// addresses plus the tracking listeners.
func startWorkers(t *testing.T, tr Transport, addrs []string) ([]string, []*trackingListener) {
	t.Helper()
	var out []string
	var ls []*trackingListener
	for _, a := range addrs {
		inner, err := tr.Listen(a)
		if err != nil {
			t.Fatal(err)
		}
		l := &trackingListener{Listener: inner}
		t.Cleanup(func() { l.Close() })
		go NewWorker(nil).Serve(l)
		out = append(out, l.Addr())
		ls = append(ls, l)
	}
	return out, ls
}

func dialCluster(t *testing.T, tr Transport, addrs []string, opt RPCOptions) *Cluster {
	t.Helper()
	cl, err := Dial(tr, addrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// differentialTasks covers finite protocols exactly and larger ones at a
// budget boundary, plus depth cutoffs — the same observables the
// in-process determinism suite pins.
func differentialTasks() []struct {
	name string
	task Task
} {
	in3 := model.Inputs{0, 1, 1}
	return []struct {
		name string
		task Task
	}{
		{"waitall", Task{Protocol: "waitall", N: 3, Inputs: in3}},
		{"naivemajority", Task{Protocol: "naivemajority", N: 3, Inputs: in3}},
		{"2pc", Task{Protocol: "2pc", N: 3, Inputs: in3}},
		{"paxos-budget", Task{Protocol: "paxos", N: 3, Inputs: in3, Options: explore.Options{MaxConfigs: 600}}},
		{"naivemajority-depth4", Task{Protocol: "naivemajority", N: 3, Inputs: in3, Options: explore.Options{MaxDepth: 4}}},
		{"naivemajority-budget137", Task{Protocol: "naivemajority", N: 3, Inputs: in3, Options: explore.Options{MaxConfigs: 137}}},
	}
}

// TestLoopbackDifferentialDeterminism is the core acceptance test: shards
// ∈ {1, 2, 4} × worker processes ∈ {1, 4} × replicas ∈ {1, 2}, every
// combination compared byte-for-byte against the sequential engine over
// the loopback transport.
func TestLoopbackDifferentialDeterminism(t *testing.T) {
	lb := NewLoopback()
	addrs, _ := startWorkers(t, lb, []string{"w0", "w1", "w2", "w3"})
	for _, tc := range differentialTasks() {
		t.Run(tc.name, func(t *testing.T) {
			seqC, seqV, seq := seqStream(t, tc.task)
			for _, workers := range []int{1, 4} {
				cl := dialCluster(t, lb, addrs[:workers], RPCOptions{})
				for _, shards := range []int{1, 2, 4} {
					for _, replicas := range []int{1, 2} {
						tk := tc.task
						tk.Shards = shards
						tk.Replicas = replicas
						distC, distV, dist := distStream(t, cl, tk)
						label := fmt.Sprintf("%s/w%ds%dr%d", tc.name, workers, shards, replicas)
						compareStreams(t, label, seqC, seqV, seq, distC, distV, dist)
					}
				}
			}
		})
	}
}

// TestTCPDifferentialDeterminism runs the same differential over real TCP
// on localhost: the framing, deadline, and dial paths of the production
// transport.
func TestTCPDifferentialDeterminism(t *testing.T) {
	tr := TCP{}
	addrs, _ := startWorkers(t, tr, []string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"})
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1},
		Options: explore.Options{MaxConfigs: 600}}
	seqC, seqV, seq := seqStream(t, task)
	for _, workers := range []int{1, 4} {
		cl := dialCluster(t, tr, addrs[:workers], RPCOptions{})
		for _, shards := range []int{1, 2, 4} {
			tk := task
			tk.Shards = shards
			distC, distV, dist := distStream(t, cl, tk)
			label := "tcp/w" + string(rune('0'+workers)) + "s" + string(rune('0'+shards))
			compareStreams(t, label, seqC, seqV, seq, distC, distV, dist)
		}
	}
}

// TestDistributedAvoidFilter pins Lemma 3's "reachable without applying e"
// primitive: the Avoid event must suppress the same transitions in both
// engines.
func TestDistributedAvoidFilter(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, model.Inputs{0, 1, 1})
	var avoid *model.Event
	for _, e := range model.Events(c) {
		if e.IsNull() && model.IsNoOp(pr, c, e) {
			continue
		}
		ev := e
		avoid = &ev
		break
	}
	if avoid == nil {
		t.Fatal("no applicable event at the root")
	}
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1},
		Avoid: avoid, Options: explore.Options{MaxConfigs: 400}}
	seqC, seqV, seq := seqStream(t, task)
	lb := NewLoopback()
	addrs, _ := startWorkers(t, lb, []string{"a0", "a1", "a2"})
	cl := dialCluster(t, lb, addrs, RPCOptions{})
	task.Shards = 3
	distC, distV, dist := distStream(t, cl, task)
	compareStreams(t, "avoid", seqC, seqV, seq, distC, distV, dist)
}

// TestDistributedPrefix pins explore-from-C jobs: the prefix schedule is
// applied on every cluster member independently, and reconstructed witness
// paths are still relative to the post-prefix root.
func TestDistributedPrefix(t *testing.T) {
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, model.Inputs{0, 1, 1})
	var prefix model.Schedule
	cur := c
	for len(prefix) < 2 {
		evs := model.Events(cur)
		advanced := false
		for _, e := range evs {
			if e.IsNull() && model.IsNoOp(pr, cur, e) {
				continue
			}
			prefix = append(prefix, e)
			cur = model.MustApply(pr, cur, e)
			advanced = true
			break
		}
		if !advanced {
			t.Fatal("could not build a 2-event prefix")
		}
	}
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1},
		Prefix: prefix, Options: explore.Options{MaxConfigs: 300}}
	seqC, seqV, seq := seqStream(t, task)
	lb := NewLoopback()
	addrs, _ := startWorkers(t, lb, []string{"p0", "p1"})
	cl := dialCluster(t, lb, addrs, RPCOptions{})
	task.Shards = 4 // more shards than workers: round-robin dealing
	distC, distV, dist := distStream(t, cl, task)
	compareStreams(t, "prefix", seqC, seqV, seq, distC, distV, dist)
}

// TestDistributedEarlyStop checks that a stopping visit sees the identical
// truncated stream and count as the in-process engines.
func TestDistributedEarlyStop(t *testing.T) {
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1}}
	pr := protocols.NewNaiveMajority(3)
	c := model.MustInitial(pr, task.Inputs)
	const stopAt = 40
	var seqSteps []step
	seqC, seqV := explore.Explore(pr, c, explore.Options{Workers: 1}, nil,
		func(cfg *model.Config, depth int, path func() model.Schedule) bool {
			seqSteps = append(seqSteps, step{cfg.Key(), depth, path().String()})
			return len(seqSteps) == stopAt
		})
	lb := NewLoopback()
	addrs, _ := startWorkers(t, lb, []string{"e0", "e1", "e2"})
	cl := dialCluster(t, lb, addrs, RPCOptions{})
	var distSteps []step
	distC, distV, err := cl.Explore(task, func(cfg *model.Config, depth int, path func() model.Schedule) bool {
		distSteps = append(distSteps, step{cfg.Key(), depth, path().String()})
		return len(distSteps) == stopAt
	})
	if err != nil {
		t.Fatal(err)
	}
	compareStreams(t, "early-stop", seqC, seqV, seqSteps, distC, distV, distSteps)
}

// TestWorkerLostAborts severs one worker permanently mid-run with
// replication off: the exploration must abort promptly with a diagnostic
// error naming the lost worker — at R=1 a lost shard is unrecoverable
// state, and hanging or silently continuing would be worse than failing.
// (With the default R=2 the same loss fails over; see failover_test.go.)
func TestWorkerLostAborts(t *testing.T) {
	lb := NewLoopback()
	addrs, ls := startWorkers(t, lb, []string{"l0", "l1"})
	cl := dialCluster(t, lb, addrs, RPCOptions{
		RPCTimeout: 500 * time.Millisecond, DialTimeout: 100 * time.Millisecond,
		Retries: 1, RetryBackoff: 5 * time.Millisecond,
	})
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1}, Replicas: 1}
	visits := 0
	done := make(chan error, 1)
	go func() {
		_, _, err := cl.Explore(task, func(*model.Config, int, func() model.Schedule) bool {
			visits++
			if visits == 5 {
				ls[1].Close()     // no re-dial possible
				ls[1].killConns() // and the live connection dies
			}
			return false
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("exploration succeeded despite a lost worker")
		}
		if !strings.Contains(err.Error(), "lost") {
			t.Fatalf("error does not identify the lost worker: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("exploration hung after losing a worker")
	}
}

// TestRetryAfterConnLoss severs connections only (workers stay up): the
// coordinator must re-dial, replay idempotently against the workers' kept
// job state, and still produce byte-identical results.
func TestRetryAfterConnLoss(t *testing.T) {
	task := Task{Protocol: "naivemajority", N: 3, Inputs: model.Inputs{0, 1, 1},
		Options: explore.Options{MaxConfigs: 300}}
	seqC, seqV, seq := seqStream(t, task)
	lb := NewLoopback()
	addrs, ls := startWorkers(t, lb, []string{"r0", "r1"})
	cl := dialCluster(t, lb, addrs, RPCOptions{
		RPCTimeout: 5 * time.Second, Retries: 3, RetryBackoff: 5 * time.Millisecond,
	})
	var dist []step
	cut := false
	distC, distV, err := cl.Explore(task, func(cfg *model.Config, depth int, path func() model.Schedule) bool {
		dist = append(dist, step{cfg.Key(), depth, path().String()})
		if len(dist) == 25 && !cut {
			cut = true
			for _, l := range ls {
				l.killConns()
			}
		}
		return false
	})
	if err != nil {
		t.Fatalf("exploration failed despite live workers: %v", err)
	}
	compareStreams(t, "conn-loss", seqC, seqV, seq, distC, distV, dist)
}

// TestCountReachableParity checks the counting entry point end to end.
func TestCountReachableParity(t *testing.T) {
	pr := protocols.NewWaitAll(3)
	c := model.MustInitial(pr, model.Inputs{0, 1, 1})
	seqCount, seqExact := explore.CountReachable(pr, c, explore.Options{Workers: 1})
	lb := NewLoopback()
	addrs, _ := startWorkers(t, lb, []string{"c0", "c1", "c2"})
	cl := dialCluster(t, lb, addrs, RPCOptions{})
	count, exact, err := cl.CountReachable(Task{Protocol: "waitall", N: 3, Inputs: model.Inputs{0, 1, 1}, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if count != seqCount || exact != seqExact {
		t.Errorf("CountReachable diverged: sequential (%d, %v), distributed (%d, %v)",
			seqCount, seqExact, count, exact)
	}
}

// TestOwnerShardPartition checks the hash-range partition function:
// every fingerprint maps to a valid shard, ranges are contiguous and
// monotone, and the round-robin worker dealing covers all workers.
func TestOwnerShardPartition(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7, 64} {
		prev := 0
		for _, h := range []uint64{0, 1, 1 << 20, 1 << 40, 1<<63 - 1, 1 << 63, ^uint64(0) - 1, ^uint64(0)} {
			s := ownerShard(h, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ownerShard(%d, %d) = %d out of range", h, shards, s)
			}
			if s < prev {
				t.Fatalf("ownerShard not monotone in hash: shard %d after %d", s, prev)
			}
			prev = s
		}
		if got := ownerShard(0, shards); got != 0 {
			t.Errorf("ownerShard(0, %d) = %d, want 0", shards, got)
		}
		if got := ownerShard(^uint64(0), shards); got != shards-1 {
			t.Errorf("ownerShard(max, %d) = %d, want %d", shards, got, shards-1)
		}
	}
	seen := map[int]bool{}
	for s := 0; s < 8; s++ {
		seen[ownerWorker(s, 3)] = true
	}
	if len(seen) != 3 {
		t.Errorf("round-robin dealing of 8 shards reached %d of 3 workers", len(seen))
	}
}
