package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/flpsim/flp/internal/distexplore"
	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
)

// E19 benchmarks the three exploration engines against each other on the
// reachability sweeps that the census experiments rest on: the E2
// initial-valency census (naivemajority, all 8 input vectors) and the E11
// agreement sweep (2pc). Sequential and parallel run in-process; the
// distributed engine runs a full loopback cluster — real framing, real
// per-level RPC exchange — inside the benchmark process. The point is not
// that a loopback cluster is fast (per-level round trips and schedule
// replays are pure overhead at this scale) but that all three engines
// agree exactly while the distributed one bounds per-process memory by
// sharding the visited set.

// DistBenchRow is one kernel's timing comparison; serialized into
// BENCH_distexplore.json by cmd/flpbench.
type DistBenchRow struct {
	Kernel        string  `json:"kernel"`
	Protocol      string  `json:"protocol"`
	Configs       int     `json:"configs"`
	SequentialMS  float64 `json:"sequential_ms"`
	ParallelMS    float64 `json:"parallel_ms"`
	DistributedMS float64 `json:"distributed_ms"`
	CountsAgree   bool    `json:"counts_agree"`
}

// DistBench is the machine-readable form of the E19 table.
type DistBench struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"numcpu"`
	Transport  string         `json:"transport"`
	Workers    int            `json:"workers"`
	Shards     int            `json:"shards"`
	Rows       []DistBenchRow `json:"rows"`
}

// E19DistExplore is the Suite entry point (table only).
func E19DistExplore() (*Table, error) {
	t, _, err := E19DistExploreBench()
	return t, err
}

// E19DistExploreBench runs the engine comparison and returns both the
// printable table and the JSON-serializable result.
func E19DistExploreBench() (*Table, *DistBench, error) {
	const workers, shards = 3, 6
	t := &Table{
		ID:      "E19",
		Title:   fmt.Sprintf("Exploration engines: sequential vs parallel vs distributed (loopback, %d workers × %d shards)", workers, shards),
		Columns: []string{"kernel", "protocol", "configs", "sequential", "parallel", "distributed", "counts agree"},
	}

	lb := distexplore.NewLoopback()
	var addrs []string
	for i := 0; i < workers; i++ {
		l, err := lb.Listen(fmt.Sprintf("e19-w%d", i))
		if err != nil {
			return nil, nil, err
		}
		defer l.Close()
		go distexplore.NewWorker(nil).Serve(l)
		addrs = append(addrs, l.Addr())
	}
	cl, err := distexplore.Dial(lb, addrs, distexplore.RPCOptions{})
	if err != nil {
		return nil, nil, err
	}
	defer cl.Close()

	bench := &DistBench{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Transport:  "loopback",
		Workers:    workers,
		Shards:     shards,
	}
	kernels := []struct {
		kernel, protocol string
		n                int
	}{
		{"E2 initial-valency census", "naivemajority", 3},
		{"E11 agreement sweep", "2pc", 3},
	}
	for _, k := range kernels {
		pr, err := distexplore.RegistryProvider(k.protocol, k.n)
		if err != nil {
			return nil, nil, err
		}
		sweep := func(opt explore.Options) (int, time.Duration) {
			start := time.Now()
			total := 0
			for _, in := range model.AllInputs(k.n) {
				v, _ := explore.CountReachable(pr, model.MustInitial(pr, in), opt)
				total += v
			}
			return total, time.Since(start)
		}
		seqTotal, seqD := sweep(explore.Options{Workers: 1})
		parTotal, parD := sweep(explore.Options{})

		distStart := time.Now()
		distTotal := 0
		for _, in := range model.AllInputs(k.n) {
			count, _, err := cl.CountReachable(distexplore.Task{
				Protocol: k.protocol, N: k.n, Inputs: in, Shards: shards,
			})
			if err != nil {
				return nil, nil, err
			}
			distTotal += count
		}
		distD := time.Since(distStart)

		agree := seqTotal == parTotal && parTotal == distTotal
		t.AddRow(k.kernel, k.protocol, seqTotal,
			seqD.Round(time.Millisecond), parD.Round(time.Millisecond), distD.Round(time.Millisecond), agree)
		bench.Rows = append(bench.Rows, DistBenchRow{
			Kernel: k.kernel, Protocol: k.protocol, Configs: seqTotal,
			SequentialMS:  float64(seqD.Microseconds()) / 1000,
			ParallelMS:    float64(parD.Microseconds()) / 1000,
			DistributedMS: float64(distD.Microseconds()) / 1000,
			CountsAgree:   agree,
		})
	}
	t.AddNote("configs = distinct configurations summed over all 8 input vectors; identical across engines by the byte-identical contract")
	t.AddNote("the loopback cluster pays per-level RPC round trips and adoption replays — its win is memory scale-out, not wall time at this size")
	return t, bench, nil
}
