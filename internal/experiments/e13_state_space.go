package experiments

import (
	"fmt"
	"time"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// E13StateSpace is the simulator's own figure: how large the reachable
// configuration spaces are that the checker quantifies over, and the
// ablation justifying the directed-probe design — certifying Paxos
// bivalence by probe takes milliseconds where breadth-first search burns
// its whole budget without an answer.
func E13StateSpace() (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Checker internals: reachable state-space sizes and the probe-vs-BFS ablation",
		Columns: []string{"protocol", "inputs", "reachable configs", "exhaustive", "bivalence via probe", "probe ms", "bivalence via BFS", "bfs ms"},
	}
	cases := []struct {
		pr model.Protocol
		in model.Inputs
	}{
		{protocols.NewTwoPhaseCommit(3), model.Inputs{1, 1, 1}},
		{protocols.NewWaitAll(3), model.Inputs{0, 1, 1}},
		{protocols.NewNaiveMajority(3), model.Inputs{0, 1, 1}},
		{protocols.NewThreePhaseCommit(3), model.Inputs{1, 1, 1}},
		{protocols.NewNaiveMajority(4), model.Inputs{0, 1, 1, 0}},
		{protocols.NewPaxosSynod(3), model.Inputs{0, 1, 1}},
	}
	const bfsBudget = 12000
	for _, tc := range cases {
		c, err := model.Initial(tc.pr, tc.in)
		if err != nil {
			return nil, err
		}
		count, exact := explore.CountReachable(tc.pr, c, explore.Options{MaxConfigs: bfsBudget})
		countStr := fmt.Sprintf("%d", count)
		if !exact {
			countStr = fmt.Sprintf("≥%d (budget)", count)
		}

		t0 := time.Now()
		_, _, f0, f1 := explore.ProbeValencies(tc.pr, c, explore.ProbeOptions{})
		probeMS := time.Since(t0).Milliseconds()
		probeBi := f0 && f1

		t0 = time.Now()
		info := explore.Classify(tc.pr, c, explore.Options{MaxConfigs: bfsBudget})
		bfsMS := time.Since(t0).Milliseconds()
		bfsBi := info.Valency == explore.Bivalent

		t.AddRow(tc.pr.Name(), tc.in, countStr, exact, probeBi, probeMS, bfsBi, bfsMS)
	}
	t.AddNote("the commit protocols live in tiny state spaces (their decision is input-determined); racy protocols explode, and Paxos is unbounded")
	t.AddNote("probe and BFS agree wherever BFS can answer; on Paxos the probe certifies bivalence while BFS exhausts a %d-configuration budget undecided", bfsBudget)
	return t, nil
}
