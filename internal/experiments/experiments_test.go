package experiments_test

import (
	"strconv"
	"strings"
	"testing"

	"github.com/flpsim/flp/internal/experiments"
)

func cellInt(t *testing.T, tab *experiments.Table, row int, col string) int {
	t.Helper()
	s, ok := tab.Cell(row, col)
	if !ok {
		t.Fatalf("%s: no cell (%d, %q)", tab.ID, row, col)
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("%s: cell (%d, %q) = %q is not an integer", tab.ID, row, col, s)
	}
	return n
}

func cellBool(t *testing.T, tab *experiments.Table, row int, col string) bool {
	t.Helper()
	s, ok := tab.Cell(row, col)
	if !ok {
		t.Fatalf("%s: no cell (%d, %q)", tab.ID, row, col)
	}
	return s == "true"
}

func TestE1NoViolations(t *testing.T) {
	tab, err := experiments.E1Commutativity(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("E1 covers %d protocols", len(tab.Rows))
	}
	for i := range tab.Rows {
		if v := cellInt(t, tab, i, "violations"); v != 0 {
			t.Errorf("row %d: %d Lemma 1 violations", i, v)
		}
	}
}

func TestE2Shape(t *testing.T) {
	tab, err := experiments.E2InitialValency()
	if err != nil {
		t.Fatal(err)
	}
	byName := func(name string) int {
		for i, row := range tab.Rows {
			if strings.HasPrefix(row[0], name) {
				return i
			}
		}
		t.Fatalf("no row for %s", name)
		return -1
	}
	// Trivial0 and WaitAll and 2PC: zero bivalent.
	for _, name := range []string{"trivial0", "waitall", "2pc"} {
		if n := cellInt(t, tab, byName(name), "bivalent"); n != 0 {
			t.Errorf("%s: %d bivalent initial configurations, want 0", name, n)
		}
	}
	// NaiveMajority: exactly 3; Paxos: 6 (all mixed-input vectors).
	if n := cellInt(t, tab, byName("naivemajority"), "bivalent"); n != 3 {
		t.Errorf("naivemajority: %d bivalent, want 3", n)
	}
	if n := cellInt(t, tab, byName("paxos"), "bivalent"); n != 6 {
		t.Errorf("paxos: %d bivalent, want 6", n)
	}
}

func TestE3AllFrontiersBivalent(t *testing.T) {
	tab, err := experiments.E3BivalencePreservation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 6 {
		t.Fatalf("E3 has only %d rows", len(tab.Rows))
	}
	for i := range tab.Rows {
		if !cellBool(t, tab, i, "bivalent in D") {
			t.Errorf("row %d: frontier without bivalent configuration — Lemma 3 falsified", i)
		}
		if !cellBool(t, tab, i, "frontier exhausted") {
			t.Errorf("row %d: frontier not exhausted on the finite fixture", i)
		}
	}
}

func TestE4AdversaryVsFair(t *testing.T) {
	tab, err := experiments.E4AdversarialRun(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Adversary rows (Paxos and fixed-tape Ben-Or) decide nothing; fair
	// rows decide everything.
	for i, row := range tab.Rows {
		runs := cellInt(t, tab, i, "runs")
		d := cellInt(t, tab, i, "decided runs")
		if strings.Contains(row[0], "adversary") {
			if d != 0 {
				t.Errorf("row %d (%s): adversary decided %d runs, want 0", i, row[0], d)
			}
		} else if d != runs {
			t.Errorf("row %d (%s): fair scheduler decided %d/%d", i, row[0], d, runs)
		}
	}
}

func TestE5MajorityThreshold(t *testing.T) {
	tab, err := experiments.E5InitiallyDead(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		runs := cellInt(t, tab, i, "runs")
		decided := cellInt(t, tab, i, "all live decided")
		if cellBool(t, tab, i, "majority alive") {
			if decided != runs {
				t.Errorf("row %d: majority alive but only %d/%d decided", i, decided, runs)
			}
		} else if decided != 0 {
			t.Errorf("row %d: majority dead but %d runs decided", i, decided)
		}
		if v := cellInt(t, tab, i, "agreement violations"); v != 0 {
			t.Errorf("row %d: %d agreement violations", i, v)
		}
	}
}

func TestE6Window(t *testing.T) {
	tab, err := experiments.E6CommitWindow(6)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy rows (2PC and 3PC) commit everything; every delayed or
	// crashed row blocks everything.
	for i, row := range tab.Rows {
		if strings.Contains(row[0], "healthy") {
			if d := cellInt(t, tab, i, "committed"); d != 6 {
				t.Errorf("row %d (%s): committed %d/6", i, row[0], d)
			}
		} else {
			if b := cellInt(t, tab, i, "blocked"); b != 6 {
				t.Errorf("row %d (%s): blocked %d/6, want all", i, row[0], b)
			}
		}
	}
}

func TestE7NoViolations(t *testing.T) {
	tab, err := experiments.E7FloodSet(60, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if v := cellInt(t, tab, i, "agreement violations"); v != 0 {
			t.Errorf("row %d: %d agreement violations", i, v)
		}
		if v := cellInt(t, tab, i, "validity violations"); v != 0 {
			t.Errorf("row %d: %d validity violations", i, v)
		}
		// Rounds are always f+1.
		if cellInt(t, tab, i, "rounds") != cellInt(t, tab, i, "f")+1 {
			t.Errorf("row %d: rounds ≠ f+1", i)
		}
	}
	// The tightness note must report the truncated disagreement.
	foundNote := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "agreement=false") {
			foundNote = true
		}
	}
	if !foundNote {
		t.Error("tightness ablation note missing the disagreement")
	}
}

func TestE8InteractiveConsistency(t *testing.T) {
	tab, err := experiments.E8ByzantineOM()
	if err != nil {
		t.Fatal(err)
	}
	sawImpossibility := false
	var costs []int
	for i, row := range tab.Rows {
		n := cellInt(t, tab, i, "N")
		m := cellInt(t, tab, i, "m")
		ic1 := cellBool(t, tab, i, "IC1")
		ic2 := cellBool(t, tab, i, "IC2")
		if n > 3*m && (!ic1 || !ic2) {
			t.Errorf("row %d (%v): IC violated despite N > 3m", i, row)
		}
		if n == 3 && m == 1 && !ic2 {
			sawImpossibility = true
		}
		if strings.Contains(row[2], "cost sweep") {
			costs = append(costs, cellInt(t, tab, i, "messages"))
		}
	}
	if !sawImpossibility {
		t.Error("three-generals impossibility row missing or not failing IC2")
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] <= costs[i-1] {
			t.Errorf("message cost not growing: %v", costs)
		}
	}
}

func TestE9AllTerminate(t *testing.T) {
	tab, err := experiments.E9BenOr(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		runs := cellInt(t, tab, i, "runs")
		if d := cellInt(t, tab, i, "terminated"); d != runs {
			t.Errorf("row %d: %d/%d terminated", i, d, runs)
		}
		if v := cellInt(t, tab, i, "agreement violations"); v != 0 {
			t.Errorf("row %d: %d violations", i, v)
		}
	}
}

func TestE10GSTGate(t *testing.T) {
	tab, err := experiments.E10PartialSynchrony(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if b := cellInt(t, tab, i, "decided before GST"); b != 0 {
			t.Errorf("row %d: %d runs decided before GST under hostile adversary", i, b)
		}
		seeds := cellInt(t, tab, i, "seeds")
		if d := cellInt(t, tab, i, "all decided"); d != seeds {
			t.Errorf("row %d: %d/%d decided after GST", i, d, seeds)
		}
		gst := cellInt(t, tab, i, "GST")
		n := cellInt(t, tab, i, "N")
		if w := cellInt(t, tab, i, "worst decision round"); w >= gst+n {
			t.Errorf("row %d: worst decision round %d ≥ GST+N = %d", i, w, gst+n)
		}
		if v := cellInt(t, tab, i, "agreement violations"); v != 0 {
			t.Errorf("row %d: %d agreement violations", i, v)
		}
	}
}

func TestE11Trilemma(t *testing.T) {
	tab, err := experiments.E11Agreement()
	if err != nil {
		t.Fatal(err)
	}
	expect := map[string][2]bool{ // agreement, nontrivial
		"trivial0":      {true, false},
		"waitall":       {true, true},
		"naivemajority": {false, true},
		"2pc":           {true, true},
		"paxos":         {true, true},
	}
	for i, row := range tab.Rows {
		for name, want := range expect {
			if strings.HasPrefix(row[0], name) {
				if cellBool(t, tab, i, "agreement") != want[0] {
					t.Errorf("%s: agreement = %v, want %v", name, !want[0], want[0])
				}
				if cellBool(t, tab, i, "nontrivial") != want[1] {
					t.Errorf("%s: nontrivial = %v, want %v", name, !want[1], want[1])
				}
			}
		}
	}
}

func TestE12DetectorProperties(t *testing.T) {
	tab, err := experiments.E12FailureDetector(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		runs := cellInt(t, tab, i, "runs")
		decided := cellInt(t, tab, i, "all decided")
		switch {
		case strings.Contains(row[0], "paranoid"), strings.Contains(row[0], "blind"):
			if decided != 0 {
				t.Errorf("%s decided %d runs, want 0", row[0], decided)
			}
		default:
			if decided != runs {
				t.Errorf("%s decided %d/%d runs", row[0], decided, runs)
			}
		}
		if v := cellInt(t, tab, i, "agreement violations"); v != 0 {
			t.Errorf("%s: %d agreement violations", row[0], v)
		}
	}
}

func TestE13ProbeAblation(t *testing.T) {
	tab, err := experiments.E13StateSpace()
	if err != nil {
		t.Fatal(err)
	}
	sawPaxos := false
	for i, row := range tab.Rows {
		probe := cellBool(t, tab, i, "bivalence via probe")
		bfs := cellBool(t, tab, i, "bivalence via BFS")
		exhaustive := cellBool(t, tab, i, "exhaustive")
		if exhaustive && probe != bfs {
			t.Errorf("%s: probe (%v) and exhaustive BFS (%v) disagree", row[0], probe, bfs)
		}
		if strings.HasPrefix(row[0], "paxos") {
			sawPaxos = true
			if !probe {
				t.Error("probe failed to certify Paxos bivalence")
			}
			if bfs {
				t.Error("budgeted BFS unexpectedly certified Paxos bivalence; the ablation premise changed")
			}
		}
	}
	if !sawPaxos {
		t.Error("no paxos row in E13")
	}
}

func TestE14Convergence(t *testing.T) {
	tab, err := experiments.E14ApproximateAgreement(6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		runs := cellInt(t, tab, i, "runs")
		if w := cellInt(t, tab, i, "within ε"); w != runs {
			t.Errorf("row %d: %d/%d within ε", i, w, runs)
		}
		if v := cellInt(t, tab, i, "validity violations"); v != 0 {
			t.Errorf("row %d: %d validity violations", i, v)
		}
		if worst := cellInt(t, tab, i, "worst final spread"); worst > cellInt(t, tab, i, "ε") {
			t.Errorf("row %d: worst spread %d exceeds ε", i, worst)
		}
	}
}

func TestE15Linearizable(t *testing.T) {
	tab, err := experiments.E15AtomicRegister(6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		histories := cellInt(t, tab, i, "histories")
		if c := cellInt(t, tab, i, "complete"); c != histories {
			t.Errorf("row %d: %d/%d histories complete", i, c, histories)
		}
		if l := cellInt(t, tab, i, "linearizable"); l != histories {
			t.Errorf("row %d: %d/%d histories linearizable", i, l, histories)
		}
	}
}

func TestE16BroadcastProperties(t *testing.T) {
	tab, err := experiments.E16ReliableBroadcast(8)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		runs := cellInt(t, tab, i, "runs")
		all := cellInt(t, tab, i, "all correct delivered")
		none := cellInt(t, tab, i, "none delivered")
		if all+none != runs {
			t.Errorf("row %d (%s): totality violated: %d all + %d none != %d runs", i, row[2], all, none, runs)
		}
		if v := cellInt(t, tab, i, "agreement violations"); v != 0 {
			t.Errorf("row %d (%s): %d agreement violations", i, row[2], v)
		}
		if v := cellInt(t, tab, i, "validity violations"); v != 0 {
			t.Errorf("row %d (%s): %d validity violations", i, row[2], v)
		}
		if strings.Contains(row[2], "silent sender") && all != 0 {
			t.Errorf("row %d: deliveries from a silent sender", i)
		}
		if !strings.Contains(row[2], "sender") && all != runs {
			// Honest-sender rows must always deliver everywhere.
			t.Errorf("row %d (%s): only %d/%d runs delivered everywhere", i, row[2], all, runs)
		}
	}
}

func TestE17Reduction(t *testing.T) {
	tab, err := experiments.E17Multivalued(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		runs := cellInt(t, tab, i, "runs")
		if d := cellInt(t, tab, i, "all decided"); d != runs {
			t.Errorf("row %d: %d/%d decided", i, d, runs)
		}
		if v := cellInt(t, tab, i, "agreement violations"); v != 0 {
			t.Errorf("row %d: %d agreement violations", i, v)
		}
		if v := cellInt(t, tab, i, "validity violations"); v != 0 {
			t.Errorf("row %d: %d validity violations", i, v)
		}
	}
}

func TestE18ElectionShape(t *testing.T) {
	tab, err := experiments.E18Election(0)
	if err != nil {
		t.Fatal(err)
	}
	hungRows := 0
	for i := range tab.Rows {
		timeout := cellInt(t, tab, i, "timeout")
		hung := cellBool(t, tab, i, "hung")
		unique := cellBool(t, tab, i, "unique leader")
		crashed := cellInt(t, tab, i, "crashed")
		if timeout > 0 && (!unique || hung) {
			t.Errorf("row %d: sound timeouts failed to elect", i)
		}
		if timeout == 0 && crashed > 0 && !hung {
			t.Errorf("row %d: async election over dead superiors did not hang", i)
		}
		if hung {
			hungRows++
		}
	}
	if hungRows == 0 {
		t.Error("no hung row; the async contrast is missing")
	}
}

func TestE19DistExploreShape(t *testing.T) {
	tab, bench, err := experiments.E19DistExploreBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(bench.Rows) != 2 {
		t.Fatalf("E19 has %d table rows / %d bench rows, want 2/2", len(tab.Rows), len(bench.Rows))
	}
	for i, r := range bench.Rows {
		if !r.CountsAgree {
			t.Errorf("row %d (%s): engine counts diverged", i, r.Kernel)
		}
		if r.Configs <= 0 {
			t.Errorf("row %d (%s): no configurations counted", i, r.Kernel)
		}
		if got, _ := tab.Cell(i, "counts agree"); got != "true" {
			t.Errorf("row %d: table reports counts agree = %q", i, got)
		}
	}
}

func TestE20ValencyAtlasShape(t *testing.T) {
	tab, bench, err := experiments.E20ValencyAtlasBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(bench.Rows) != 3 {
		t.Fatalf("E20 has %d table rows / %d bench rows, want 3/3", len(tab.Rows), len(bench.Rows))
	}
	for i, r := range bench.Rows {
		// Correctness only — the timing ratio is asserted by the acceptance
		// run, not the unit test (CI machines are too noisy to gate on).
		if !r.Agree {
			t.Errorf("row %d (%s): census tallies diverged between per-config and atlas", i, r.Kernel)
		}
		if r.Configs <= 0 {
			t.Errorf("row %d (%s): no configurations classified", i, r.Kernel)
		}
		if got, _ := tab.Cell(i, "agree"); got != "true" {
			t.Errorf("row %d: table reports agree = %q", i, got)
		}
	}
}

func TestE21FailoverShape(t *testing.T) {
	tab, bench, err := experiments.E21FailoverBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 || len(bench.Rows) != 5 {
		t.Fatalf("E21 has %d table rows / %d bench rows, want 5/5", len(tab.Rows), len(bench.Rows))
	}
	sawKill := false
	for i, r := range bench.Rows {
		// Correctness only — timings are machine-dependent. The scenario
		// sweep itself is the assertion: every scenario, including the
		// scripted worker kill, must reproduce the sequential count.
		if !r.CountsAgree {
			t.Errorf("row %d (%s): count diverged from the sequential engine", i, r.Scenario)
		}
		if r.Configs <= 0 {
			t.Errorf("row %d (%s): no configurations counted", i, r.Scenario)
		}
		if r.Fault != "none" {
			sawKill = true
			if r.Replicas < 2 {
				t.Errorf("row %d (%s): fault scenario without replication", i, r.Scenario)
			}
		}
		if got, _ := tab.Cell(i, "counts agree"); got != "true" {
			t.Errorf("row %d: table reports counts agree = %q", i, got)
		}
	}
	if !sawKill {
		t.Error("E21 has no fault-injection scenario")
	}
}

func TestE22ServeShape(t *testing.T) {
	tab, bench, err := experiments.E22ServeBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(bench.Rows) != 4 {
		t.Fatalf("E22 has %d table rows / %d bench rows, want 4/4", len(tab.Rows), len(bench.Rows))
	}
	for i, r := range bench.Rows {
		// Correctness and accounting only — latencies are machine-dependent.
		// E22ServeBench itself fails if any request returns a non-done job.
		if want := bench.Clients * 4; r.Requests != want {
			t.Errorf("row %d (pool %d): %d requests completed, want %d", i, r.Pool, r.Requests, want)
		}
		if r.P99MS < r.P50MS {
			t.Errorf("row %d (pool %d): p99 %.2fms below p50 %.2fms", i, r.Pool, r.P99MS, r.P50MS)
		}
		// Concurrent identical queries must amortize: with 8 clients asking
		// the same questions, most atlas lookups are hits or merges.
		if r.CacheHitRate <= 0.5 {
			t.Errorf("row %d (pool %d): cache hit rate %.2f, want > 0.5", i, r.Pool, r.CacheHitRate)
		}
	}
	// The warm repeat re-serves memoized classifications; it must beat the
	// cold census outright. The 5x acceptance ratio is asserted on the
	// flpbench artifact, not here (CI machines are too noisy to gate on).
	if bench.WarmSpeedup <= 1 {
		t.Errorf("warm census speedup %.1fx, want > 1x (cold %.2fms, warm %.2fms)",
			bench.WarmSpeedup, bench.ColdCensusMS, bench.WarmCensusMS)
	}
}

func TestE24AtlasStoreShape(t *testing.T) {
	// Smoke mode drops the wide-frontier onethird row; the kernel rows and
	// the finite incremental row carry every correctness bit this test
	// cares about.
	tab, bench, err := experiments.E24AtlasStoreBench(true, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(bench.Rows) != 2 || len(bench.Incremental) != 1 {
		t.Fatalf("E24 has %d kernel rows / %d incremental rows, want 2/1", len(bench.Rows), len(bench.Incremental))
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("E24 table has %d rows, want 3", len(tab.Rows))
	}
	for i, r := range bench.Rows {
		// Correctness and accounting only — the 5x warm-over-cold ratio is
		// asserted on the flpbench artifact, not here (CI machines are too
		// noisy to gate on).
		if !r.Agree {
			t.Errorf("row %d (%s): warm store censuses diverged from fresh builds", i, r.Kernel)
		}
		if r.Lineages <= 0 || r.Configs <= 0 {
			t.Errorf("row %d (%s): lineages=%d configs=%d, want both > 0", i, r.Kernel, r.Lineages, r.Configs)
		}
		if r.WarmMS <= 0 || r.ColdMS <= 0 {
			t.Errorf("row %d (%s): cold=%.3fms warm=%.3fms, want both > 0", i, r.Kernel, r.ColdMS, r.WarmMS)
		}
	}
	for i, r := range bench.Incremental {
		if !r.Pinned {
			t.Errorf("incremental row %d (%s): resume re-expanded stored nodes or diverged", i, r.Protocol)
		}
		if r.Nodes <= 0 {
			t.Errorf("incremental row %d (%s): no nodes at the target depth", i, r.Protocol)
		}
	}
}

func TestSuiteAndRunByID(t *testing.T) {
	s := experiments.DefaultSizes()
	suite := experiments.Suite(s)
	if len(suite) != 25 {
		t.Fatalf("suite has %d experiments, want 25", len(suite))
	}
	ids := map[string]bool{}
	for _, r := range suite {
		ids[r.ID] = true
	}
	for _, id := range []string{"E1", "E5", "E11"} {
		if !ids[id] {
			t.Errorf("suite missing %s", id)
		}
	}
	if _, err := experiments.RunByID("E99", s); err == nil {
		t.Error("unknown experiment id accepted")
	}
	// Run one small experiment through the dispatcher.
	tab, err := experiments.RunByID("E8", s)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "E8" {
		t.Errorf("RunByID returned table %s", tab.ID)
	}
}

func TestTableHelpers(t *testing.T) {
	tab := &experiments.Table{ID: "T", Title: "test", Columns: []string{"a", "b"}}
	tab.AddRow(1, "x")
	tab.AddNote("note %d", 7)
	if s, ok := tab.Cell(0, "a"); !ok || s != "1" {
		t.Errorf("Cell = %q, %v", s, ok)
	}
	if _, ok := tab.Cell(0, "missing"); ok {
		t.Error("missing column found")
	}
	if _, ok := tab.Cell(5, "a"); ok {
		t.Error("out-of-range row found")
	}
	out := tab.String()
	if !strings.Contains(out, "T — test") || !strings.Contains(out, "note 7") {
		t.Errorf("rendered table missing pieces:\n%s", out)
	}
}

func TestE25CheckpointShape(t *testing.T) {
	tab, bench, err := experiments.E25CheckpointBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 || len(bench.Rows) != 6 {
		t.Fatalf("E25 has %d table rows / %d bench rows, want 6/6", len(tab.Rows), len(bench.Rows))
	}
	sawResume := false
	for i, r := range bench.Rows {
		// Correctness only — timings and overhead percentages are
		// machine-dependent. The invariant is the FLP repo's oldest:
		// checkpointing and resume may change wall time, never counts.
		if !r.CountsAgree {
			t.Errorf("row %d (%s / %s): count diverged from the sequential engine", i, r.Kernel, r.Scenario)
		}
		if r.Configs <= 0 {
			t.Errorf("row %d (%s): no configurations counted", i, r.Scenario)
		}
		switch {
		case r.ResumedLvl >= 0:
			sawResume = true
			if r.Restored == 0 {
				t.Errorf("row %d (%s): resumed run restored zero nodes", i, r.Scenario)
			}
			if r.LiveExpand >= r.TotalExpand {
				t.Errorf("row %d (%s): resume re-expanded the restored prefix: live %d of %d",
					i, r.Scenario, r.LiveExpand, r.TotalExpand)
			}
		default:
			if r.LiveExpand != r.TotalExpand {
				t.Errorf("row %d (%s): fresh run has live %d != total %d expansions",
					i, r.Scenario, r.LiveExpand, r.TotalExpand)
			}
		}
		if r.Scenario == "checkpointed (every level boundary)" && r.Checkpoints == 0 {
			t.Errorf("row %d (%s): checkpointed run recorded no boundaries", i, r.Scenario)
		}
		if got, _ := tab.Cell(i, "counts agree"); got != "true" {
			t.Errorf("row %d: table reports counts agree = %q", i, got)
		}
	}
	if !sawResume {
		t.Error("E25 has no crash-and-resume scenario")
	}
}
