package experiments

import (
	"github.com/flpsim/flp/internal/dls"
	"github.com/flpsim/flp/internal/model"
)

// E10PartialSynchrony reproduces the conclusion's second escape route
// (reference [10], Dwork–Lynch–Stockmeyer): refine the timing model. Under
// a hostile adversary no decision happens before the global stabilization
// time; once rounds turn synchronous, the rotating-coordinator protocol
// decides within one coordinator rotation — and agreement holds throughout,
// whatever the adversary did first.
func E10PartialSynchrony(seeds int) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Partial-synchrony escape (DLS): no decision before GST, guaranteed decision after",
		Columns: []string{"N", "f", "GST", "pre-GST drop", "seeds", "decided before GST", "all decided", "worst decision round", "agreement violations"},
	}
	type cell struct {
		n, f, gst int
		drop      float64
	}
	cells := []cell{
		{3, 1, 8, 1.0},
		{3, 1, 8, 0.7},
		{5, 2, 6, 1.0},
		{5, 2, 6, 0.5},
		{7, 3, 10, 1.0},
	}
	for _, c := range cells {
		before, allDecided, worst, violations := 0, 0, 0, 0
		for seed := 0; seed < seeds; seed++ {
			in := make(model.Inputs, c.n)
			for i := 0; i < c.n/2; i++ {
				in[i] = 1
			}
			res, err := dls.Run(dls.Options{
				N: c.n, F: c.f, GST: c.gst, DropProb: c.drop, Seed: int64(seed),
			}, in)
			if err != nil {
				return nil, err
			}
			if res.FirstDecisionRound > 0 && res.FirstDecisionRound < c.gst && c.drop == 1.0 {
				before++
			}
			if res.AllLiveDecided(dls.Options{N: c.n, CrashRound: nil}) {
				allDecided++
			}
			for _, r := range res.DecisionRound {
				if r > worst {
					worst = r
				}
			}
			if !res.Agreement {
				violations++
			}
		}
		t.AddRow(c.n, c.f, c.gst, c.drop, seeds, before, allDecided, worst, violations)
	}
	t.AddNote("with drop=1.0 the adversary suppresses every pre-GST message: 'decided before GST' must be 0 — the FLP adversary at work")
	t.AddNote("'worst decision round' stays within GST + N: one rotation of coordinators after stabilization suffices")
	return t, nil
}
