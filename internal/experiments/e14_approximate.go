package experiments

import (
	"math/rand"

	"github.com/flpsim/flp/internal/approx"
)

// E14ApproximateAgreement reproduces reference [9] of the paper (Dolev,
// Lynch, Pinter, Stark, Weihl): *approximate* agreement is solvable in the
// very model where exact agreement is not — the spread halves every
// asynchronous round, so ⌈log2(Δ/ε)⌉ rounds land all correct processes
// within ε, crashes and adversarial message selection notwithstanding.
// The impossibility is precisely about the last bit.
func E14ApproximateAgreement(seedsPerCell int) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Approximate agreement (paper ref [9]): the solvable neighbour of consensus",
		Columns: []string{"N", "f crashed", "initial spread", "ε", "rounds", "runs", "within ε", "validity violations", "worst final spread"},
	}
	type cell struct {
		n, f   int
		spread int64
		eps    int64
	}
	cells := []cell{
		{3, 1, 1 << 10, 1},
		{5, 2, 1 << 16, 1},
		{5, 2, 1 << 16, 256},
		{7, 3, 1 << 20, 16},
	}
	for _, c := range cells {
		within, violations := 0, 0
		var worst int64
		rounds := 0
		for seed := 0; seed < seedsPerCell; seed++ {
			rng := rand.New(rand.NewSource(int64(seed) * 977))
			inputs := make([]int64, c.n)
			inputs[0], inputs[1] = 0, c.spread // pin the spread
			for i := 2; i < c.n; i++ {
				inputs[i] = int64(rng.Intn(int(c.spread + 1)))
			}
			crashes := map[int]int{}
			for _, v := range rng.Perm(c.n)[:c.f] {
				crashes[v] = rng.Intn(4)
			}
			res, err := approx.Run(approx.Options{
				N: c.n, F: c.f, Epsilon: c.eps, Seed: int64(seed), CrashRound: crashes,
			}, inputs)
			if err != nil {
				return nil, err
			}
			rounds = res.Rounds
			if res.WithinEpsilon {
				within++
			}
			if !res.ValidityHolds {
				violations++
			}
			if res.Spread > worst {
				worst = res.Spread
			}
		}
		t.AddRow(c.n, c.f, c.spread, c.eps, rounds, seedsPerCell, within, violations, worst)
	}
	t.AddNote("rounds = ⌈log2(spread/ε)⌉ exactly; every run converges within ε and stays inside the initial range")
	t.AddNote("contrast with E4: the same asynchronous model, the same crashes — but asking for ε-agreement instead of exact agreement dissolves the impossibility")
	return t, nil
}
