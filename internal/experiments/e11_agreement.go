package experiments

import (
	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// E11Agreement reproduces the partial-correctness definitions of Section 2
// as a checker census: which protocol attempts satisfy condition (1) — no
// accessible configuration has two decision values — and condition (2) —
// both values are possible. Together with E2 and E4 this completes the
// trilemma: every attempt gives up agreement, fault tolerance, or
// nontriviality (or, like Paxos, guaranteed termination).
func E11Agreement() (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Partial correctness census: agreement (condition 1) and nontriviality (condition 2)",
		Columns: []string{"protocol", "agreement", "nontrivial", "configs explored", "exhaustive", "escape hatch"},
	}
	cases := []struct {
		pr     model.Protocol
		escape string
	}{
		{protocols.NewTrivial0(3), "gives up nontriviality"},
		{protocols.NewWaitAll(3), "gives up fault tolerance (blocks on one crash)"},
		{protocols.NewNaiveMajority(3), "gives up agreement"},
		{protocols.NewTwoPhaseCommit(3), "gives up fault tolerance (window of vulnerability)"},
	}
	for _, tc := range cases {
		rep, err := explore.CheckPartialCorrectness(tc.pr, explore.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(tc.pr.Name(), rep.AgreementHolds, rep.Nontrivial, rep.Configs, rep.Complete, tc.escape)
	}
	// Paxos cannot be checked exhaustively; report a bounded sweep for
	// agreement and certify nontriviality by probe witnesses (decisions
	// sit deeper than the breadth-first budget reaches).
	px := protocols.NewPaxosSynod(3)
	rep, err := explore.CheckPartialCorrectness(px, explore.Options{MaxConfigs: 2000})
	if err != nil {
		return nil, err
	}
	nontrivial := true
	for _, v := range []model.Value{model.V0, model.V1} {
		c, err := model.Initial(px, model.UniformInputs(3, v))
		if err != nil {
			return nil, err
		}
		_, _, f0, f1 := explore.ProbeValencies(px, c, explore.ProbeOptions{})
		if v == model.V0 && !f0 || v == model.V1 && !f1 {
			nontrivial = false
		}
	}
	t.AddRow(px.Name(), rep.AgreementHolds, nontrivial, rep.Configs, rep.Complete,
		"gives up guaranteed termination (livelock, see E4)")
	t.AddNote("naivemajority's 'false' in the agreement column comes with a concrete witness schedule (two processes deciding 0 and 1)")
	t.AddNote("every row forfeits exactly one desideratum — the content of Theorem 1 viewed as a trilemma")
	return t, nil
}
