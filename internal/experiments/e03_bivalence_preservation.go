package experiments

import (
	"fmt"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// E3BivalencePreservation reproduces Lemma 3 (Figures 2–3): from a bivalent
// configuration C and any applicable event e, the frontier
// D = e(reach(C) without e) contains a bivalent configuration. The census
// is exhaustive on the finite fixture, covering every applicable event of
// the bivalent initial configuration and of a deeper bivalent configuration
// with messages in flight.
func E3BivalencePreservation() (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Lemma 3 (Figures 2-3): every frontier D = e(ℰ) contains a bivalent configuration",
		Columns: []string{"configuration", "event e", "|ℰ| examined", "bivalent in D", "|σ| to witness", "frontier exhausted"},
	}
	pr := protocols.NewNaiveMajority(3)
	c0, _, ok := explore.FindBivalentInitial(pr, explore.Options{})
	if !ok {
		return nil, fmt.Errorf("experiments: no bivalent initial configuration")
	}
	cache := explore.NewCache(pr, explore.Options{})

	addAll := func(label string, c *model.Config) error {
		for _, e := range model.Events(c) {
			if e.IsNull() && model.IsNoOp(pr, c, e) {
				continue
			}
			res, err := explore.CensusLemma3(pr, c, e, explore.Options{}, cache)
			if err != nil {
				return err
			}
			t.AddRow(label, e.String(), res.FrontierSize, res.BivalentFound, len(res.Sigma), res.Complete)
		}
		return nil
	}
	if err := addAll("bivalent initial (011)", c0); err != nil {
		return nil, err
	}

	// A deeper bivalent configuration: two processes have broadcast, six
	// votes are in flight.
	deep := model.MustApplySchedule(pr, c0, model.Schedule{model.NullEvent(0), model.NullEvent(2)})
	if cache.Classify(deep).Valency == explore.Bivalent {
		if err := addAll("after p0,p2 broadcast", deep); err != nil {
			return nil, err
		}
	}
	// Figure 2's commutativity squares, verified around one committed
	// event per configuration.
	squares, violations := 0, 0
	for _, tc := range []struct {
		c *model.Config
		e model.Event
	}{
		{c0, model.NullEvent(0)},
		{deep, model.NullEvent(1)},
	} {
		rep, err := explore.CheckLemma3Diamond(pr, tc.c, tc.e, explore.Options{})
		if err != nil {
			return nil, err
		}
		squares += rep.Squares
		violations += rep.Violations
	}
	f3, err := explore.CheckLemma3Figure3(pr, deep, model.NullEvent(1), explore.Options{})
	if err != nil {
		return nil, err
	}
	t.AddNote("'bivalent in D' must be true on every row — that is Lemma 3; |σ| counts the events of the witness schedule ending in e")
	t.AddNote("Figure 2 diamonds: %d neighbor commutativity squares verified around the committed events, %d violations", squares, violations)
	t.AddNote("Figure 3 (same-process case): %d pairs, %d with a p-free deciding run σ, %d commutation violations", f3.Pairs, f3.SigmaFound, f3.Violations)
	return t, nil
}
