// Package experiments implements the reproduction suite: one experiment
// per artifact of the paper (lemmas, theorems, and the contrast systems its
// abstract and conclusion name), as indexed in DESIGN.md and recorded in
// EXPERIMENTS.md. Each experiment produces a printable table;
// cmd/flpbench renders them all, bench_test.go wraps each in a testing.B
// benchmark, and the package's own tests assert the expected shape of
// every result.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result: a captioned grid plus free-form notes.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		row[i] = fmt.Sprintf("%v", v)
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Cell returns the value at (row, column name), for assertions in tests.
func (t *Table) Cell(row int, column string) (string, bool) {
	for i, c := range t.Columns {
		if c == column {
			if row < 0 || row >= len(t.Rows) || i >= len(t.Rows[row]) {
				return "", false
			}
			return t.Rows[row][i], true
		}
	}
	return "", false
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}
