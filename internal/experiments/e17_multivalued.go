package experiments

import (
	"fmt"

	"github.com/flpsim/flp/internal/multivalued"
)

// E17Multivalued justifies the paper's opening restriction — "the problem
// is for the reliable processes to agree on a binary value" — by running
// the classic reduction the other way: multivalued consensus built from
// binary instances (candidate rotation over Ben-Or boxes). Impossibility
// for one bit is impossibility for any domain; solvability of the binary
// escapes lifts likewise.
func E17Multivalued(seedsPerCell int) (*Table, error) {
	t := &Table{
		ID:      "E17",
		Title:   "Multivalued-from-binary reduction: the binary restriction is without loss of generality",
		Columns: []string{"N", "crashed", "drop prob", "runs", "all decided", "agreement violations", "validity violations", "binary instances (mean)"},
	}
	type cell struct {
		n       int
		crashed map[int]bool
		drop    float64
	}
	cells := []cell{
		{3, nil, 0},
		{5, map[int]bool{4: true}, 0.3},
		{5, map[int]bool{0: true, 2: true}, 0.5},
		{7, map[int]bool{1: true, 4: true, 6: true}, 0.4},
	}
	for _, c := range cells {
		proposals := make([]string, c.n)
		for i := range proposals {
			proposals[i] = fmt.Sprintf("value-%c", 'A'+i)
		}
		decided, agreementViolations, validityViolations, instances := 0, 0, 0, 0
		for seed := 0; seed < seedsPerCell; seed++ {
			opt := multivalued.Options{N: c.n, Seed: int64(seed), Crashed: c.crashed, DropProb: c.drop}
			res, err := multivalued.Run(opt, proposals)
			if err != nil {
				return nil, err
			}
			if res.AllLiveDecided(opt) {
				decided++
			}
			if !res.Agreement {
				agreementViolations++
			}
			if res.Winner >= 0 && c.crashed[res.Winner] {
				validityViolations++ // a dead proposer's value must never win
			}
			instances += res.BinaryInstances
		}
		t.AddRow(c.n, len(c.crashed), c.drop, seedsPerCell, decided,
			agreementViolations, validityViolations, instances/seedsPerCell)
	}
	t.AddNote("every run terminates on some live proposer's value with unanimous agreement — binary consensus is all you ever need")
	t.AddNote("the binary box is Ben-Or; any of the library's other escapes would slot in identically")
	return t, nil
}
