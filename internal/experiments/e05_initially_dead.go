package experiments

import (
	"math/rand"

	"github.com/flpsim/flp/internal/deadstart"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/runtime"
)

// E5InitiallyDead reproduces Theorem 2 (Section 4): the initially-dead-
// processes protocol decides whenever a strict majority is alive and no
// process dies mid-run — and waits forever (without ever deciding wrongly)
// when a majority is dead.
func E5InitiallyDead(runsPerCell int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Theorem 2: initially-dead-processes protocol (majority-alive threshold)",
		Columns: []string{"N", "L", "#dead", "majority alive", "runs", "all live decided", "agreement violations"},
	}
	r := rand.New(rand.NewSource(seed))
	for _, n := range []int{3, 5, 7} {
		pr := deadstart.New(n)
		for dead := 0; dead <= n/2+1 && dead < n; dead++ {
			majorityAlive := n-dead >= pr.L()
			decidedRuns := 0
			violations := 0
			for run := 0; run < runsPerCell; run++ {
				in := make(model.Inputs, n)
				for i := range in {
					in[i] = model.Value(r.Intn(2))
				}
				crash := map[model.PID]int{}
				for _, v := range r.Perm(n)[:dead] {
					crash[model.PID(v)] = 0
				}
				res, err := runtime.Run(pr, in, runtime.RandomFair{},
					runtime.RunOptions{MaxSteps: 60000, Seed: int64(run), CrashAfter: crash})
				if err != nil {
					return nil, err
				}
				if res.AllLiveDecided {
					decidedRuns++
				}
				if res.AgreementViolated {
					violations++
				}
			}
			t.AddRow(n, pr.L(), dead, majorityAlive, runsPerCell, decidedRuns, violations)
		}
	}
	t.AddNote("with a majority alive all runs decide; with a majority dead no run decides (the protocol waits, it never answers wrongly)")
	t.AddNote("L = ⌈(N+1)/2⌉ is the paper's stage-1 threshold; 'majority alive' means alive ≥ L")
	t.AddNote("boundary with Theorem 1: the delay-only adversary opens bivalent (the graph's outcome is schedule-dependent) but provably fails to sustain — its own admissibility discipline forces the deliveries that resolve the clique (TestAdversaryCannotStallByDelayAlone)")
	return t, nil
}
