package experiments

import (
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
	"github.com/flpsim/flp/internal/runtime"
)

// E9BenOr reproduces the conclusion's first escape route (reference [2],
// Ben-Or): requiring termination only with probability 1 sidesteps the
// impossibility. Across seeds and system sizes, with the full crash budget
// spent and a fair scheduler, every run terminates and the step counts
// scale with N.
func E9BenOr(runsPerCell int) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Randomized escape (Ben-Or): termination with probability 1 under crashes",
		Columns: []string{"N", "f crashed", "runs", "terminated", "agreement violations", "steps mean", "steps max"},
	}
	for _, n := range []int{3, 5, 7} {
		pr := protocols.NewBenOrDeterministic(n, 0x5eed)
		f := pr.Faults()
		in := make(model.Inputs, n)
		for i := 0; i < n/2; i++ {
			in[i] = 1
		}
		for _, crashes := range []int{0, f} {
			crash := map[model.PID]int{}
			for v := 0; v < crashes; v++ {
				crash[model.PID(n-1-v)] = v // stagger the deaths
			}
			agg, err := runtime.RunMany(pr, in,
				func() runtime.Scheduler { return runtime.RandomFair{} },
				runtime.RunOptions{MaxSteps: 300000, CrashAfter: crash}, runsPerCell)
			if err != nil {
				return nil, err
			}
			t.AddRow(n, crashes, agg.Runs, agg.Decided, agg.Violations,
				int(agg.MeanSteps()), agg.MaxRun)
		}
	}
	t.AddNote("terminated = runs in which every live process decided; the theory predicts probability-1 termination, so the column equals 'runs'")
	t.AddNote("FLP still applies to each fixed coin tape: the protocol is deterministic per seed and the Theorem 1 adversary could stall any one of them; it is the measure over tapes that terminates")
	return t, nil
}
