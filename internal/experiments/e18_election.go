package experiments

import (
	"github.com/flpsim/flp/internal/election"
)

// E18Election covers reference [13] (Garcia-Molina, "Elections in a
// distributed computing system"): leader election is consensus in
// disguise, and the Bully algorithm's correctness rests entirely on the
// timeout-based failure detection the asynchronous model withholds. With
// sound timeouts the highest live process always wins; with timeouts
// disabled, an election over dead superiors hangs on an uninterpretable
// silence — the FLP observation, in the election idiom.
func E18Election(_ int) (*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "Bully election (ref [13]): timeouts are the whole trick",
		Columns: []string{"N", "crashed", "latency", "timeout", "elected", "unique leader", "hung"},
	}
	type cell struct {
		n       int
		crashed map[int]bool
		latency int
		timeout int
	}
	cells := []cell{
		{5, nil, 1, 3},
		{5, map[int]bool{4: true}, 1, 3},
		{5, map[int]bool{3: true, 4: true}, 2, 5},
		{4, map[int]bool{2: true, 3: true}, 1, 0}, // async: no timeouts
		{4, nil, 1, 0},                            // async but top id alive
	}
	for _, c := range cells {
		res, err := election.Run(election.Options{
			N: c.n, Crashed: c.crashed, Latency: c.latency, Timeout: c.timeout, Starter: 0,
		})
		if err != nil {
			return nil, err
		}
		elected := "-"
		if res.Elected >= 0 {
			elected = "p" + string(rune('0'+res.Elected))
		}
		t.AddRow(c.n, len(c.crashed), c.latency, c.timeout, elected, res.Elected >= 0, res.Hung)
	}
	t.AddNote("with timeouts ≥ 2·latency the highest live id is always elected; row 4 hangs: no timeout, dead superiors, uninterpretable silence")
	t.AddNote("row 5 shows the async algorithm limping through only because the silence never needed interpreting — the paper's point, in the election idiom")
	return t, nil
}
