package experiments

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/flpsim/flp/internal/atlasstore"
	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// E24 benchmarks the persistent atlas store on the census kernels the
// suite leans on. Three questions, three measurements:
//
//   - cold: build every atlas through a fresh store (BuildAtlas cost plus
//     one artifact write per lineage);
//   - warm: reopen the store and answer the same censuses from disk — one
//     sequential artifact read per lineage, no exploration, and the loaded
//     atlases' censuses must equal fresh BuildAtlas exactly;
//   - incremental: deepen a truncated atlas to depth d, then resume it to
//     d+k from the persisted frontier. The resume must not re-expand the
//     prefix: newly-expanded counts from the two steps must sum to the
//     one-shot build's, pinned per row.
//
// Warm-over-cold speedup on the E2 kernel is the store's headline contract
// (≥ 5x); the agree column is the correctness side of it.

// StoreBenchRow is one kernel's cold-vs-warm comparison; serialized into
// BENCH_atlasstore.json by cmd/flpbench.
type StoreBenchRow struct {
	Kernel    string  `json:"kernel"`
	Protocols string  `json:"protocols"`
	Lineages  int     `json:"lineages"`
	Configs   int     `json:"configs"`
	ColdMS    float64 `json:"cold_ms"`
	WarmMS    float64 `json:"warm_ms"`
	Speedup   float64 `json:"speedup"`
	Agree     bool    `json:"agree"`
}

// StoreIncRow is one incremental-deepening comparison: one-shot build to
// the target depth vs deepen-to-d + resume-to-target from the stored
// frontier.
type StoreIncRow struct {
	Kernel    string  `json:"kernel"`
	Protocol  string  `json:"protocol"`
	DepthD    int     `json:"depth_d"`
	DepthDK   int     `json:"depth_dk"` // 0 = run to completion
	Nodes     int     `json:"nodes"`    // nodes at the target depth
	OneShotMS float64 `json:"one_shot_ms"`
	DeepenMS  float64 `json:"deepen_ms"` // cold build to depth d
	ResumeMS  float64 `json:"resume_ms"` // stored frontier -> target depth
	// Pinned is the no-rework bit: newly-expanded(d) + newly-expanded(d→dk)
	// equals the one-shot build's expansion count, and the node sets match.
	Pinned bool `json:"pinned"`
}

// StoreBench is the machine-readable form of the E24 table.
type StoreBench struct {
	GOMAXPROCS  int             `json:"gomaxprocs"`
	NumCPU      int             `json:"numcpu"`
	Smoke       bool            `json:"smoke"`
	Rows        []StoreBenchRow `json:"rows"`
	Incremental []StoreIncRow   `json:"incremental"`
}

// E24AtlasStore is the Suite entry point (table only).
func E24AtlasStore() (*Table, error) {
	t, _, err := E24AtlasStoreBench(false, "")
	return t, err
}

// E24AtlasStoreBench runs the store benchmark and returns both the
// printable table and the JSON-serializable result. Smoke mode drops the
// wide-frontier onethird(4) incremental row. A non-empty dir roots every
// store under it (one subdirectory per measurement, cleared before its
// cold phase so the numbers stay honest, kept afterwards for inspection);
// "" uses throwaway temp directories.
func E24AtlasStoreBench(smoke bool, dir string) (*Table, *StoreBench, error) {
	t := &Table{
		ID:      "E24",
		Title:   "Persistent atlas store: cold build-and-persist vs warm single-read load vs frontier resume (1 worker)",
		Columns: []string{"kernel", "protocols", "lineages", "configs", "cold", "warm", "speedup", "agree"},
	}
	bench := &StoreBench{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), Smoke: smoke}

	kernels := []struct {
		kernel string
		prs    []model.Protocol
	}{
		{"E2 initial-valency census", []model.Protocol{protocols.NewNaiveMajority(3)}},
		{"E11 agreement sweep", []model.Protocol{
			protocols.NewTrivial0(3),
			protocols.NewWaitAll(3),
			protocols.NewNaiveMajority(3),
			protocols.NewTwoPhaseCommit(3),
		}},
	}
	for i, k := range kernels {
		row, err := storeKernel(k.kernel, k.prs, benchDir(dir, fmt.Sprintf("kernel-%d", i)))
		if err != nil {
			return nil, nil, err
		}
		t.AddRow(row.Kernel, row.Protocols, row.Lineages, row.Configs,
			fmt.Sprintf("%.1fms", row.ColdMS), fmt.Sprintf("%.1fms", row.WarmMS),
			fmt.Sprintf("%.1fx", row.Speedup), row.Agree)
		bench.Rows = append(bench.Rows, row)
	}

	incs := []struct {
		pr     model.Protocol
		in     model.Inputs
		d, dk  int
		budget int
	}{
		// Finite kernel: truncate at depth 3, resume to completion.
		{protocols.NewNaiveMajority(3), model.Inputs{0, 1, 1}, 3, 0, 0},
	}
	if !smoke {
		// The wide-frontier kernel: onethird(4)'s state space is infinite
		// and roughly quadruples per level, so the resumed suffix carries
		// real expansion work while the stored prefix is replay-only.
		incs = append(incs, struct {
			pr     model.Protocol
			in     model.Inputs
			d, dk  int
			budget int
		}{protocols.NewOneThirdRule(4), model.Inputs{0, 1, 1, 1}, 5, 7, 200000})
	}
	for i, inc := range incs {
		row, err := storeIncremental(inc.pr, inc.in, inc.d, inc.dk, inc.budget, benchDir(dir, fmt.Sprintf("inc-%d", i)))
		if err != nil {
			return nil, nil, err
		}
		target := "complete"
		if row.DepthDK > 0 {
			target = fmt.Sprintf("depth %d", row.DepthDK)
		}
		t.AddRow(fmt.Sprintf("incremental: depth %d → %s", row.DepthD, target),
			row.Protocol, 1, row.Nodes,
			fmt.Sprintf("%.1fms", row.OneShotMS),
			fmt.Sprintf("%.1f+%.1fms", row.DeepenMS, row.ResumeMS),
			fmt.Sprintf("%.1fx", row.OneShotMS/(row.DeepenMS+row.ResumeMS)), row.Pinned)
		bench.Incremental = append(bench.Incremental, row)
	}

	t.AddNote("cold builds every lineage through a fresh store (exploration + one artifact write); warm reopens the directory and loads each atlas in one sequential read — censuses equal fresh BuildAtlas exactly")
	t.AddNote("incremental rows: 'warm' is deepen-to-d + resume-to-target; agree there means the resume re-expanded nothing (expansion counts sum to the one-shot build's) and node sets match")
	return t, bench, nil
}

// benchDir names one measurement's store directory under base, or "" to
// request a throwaway temp directory.
func benchDir(base, sub string) string {
	if base == "" {
		return ""
	}
	return base + string(os.PathSeparator) + sub
}

// freshDir returns an empty directory for one measurement's cold phase: a
// temp directory (cleaned up) when want is "", otherwise want cleared and
// recreated (kept afterwards).
func freshDir(want string) (string, func(), error) {
	if want == "" {
		dir, err := os.MkdirTemp("", "flp-e24-*")
		if err != nil {
			return "", nil, err
		}
		return dir, func() { os.RemoveAll(dir) }, nil
	}
	if err := os.RemoveAll(want); err != nil {
		return "", nil, err
	}
	if err := os.MkdirAll(want, 0o755); err != nil {
		return "", nil, err
	}
	return want, func() {}, nil
}

// storeKernel runs one kernel's lineages cold then warm and cross-checks
// the warm censuses against fresh in-memory builds.
func storeKernel(kernel string, prs []model.Protocol, want string) (StoreBenchRow, error) {
	opt := explore.Options{Workers: 1}
	dir, cleanup, err := freshDir(want)
	if err != nil {
		return StoreBenchRow{}, err
	}
	defer cleanup()

	names := ""
	roots := 0
	for i, pr := range prs {
		if i > 0 {
			names += "+"
		}
		names += pr.Name()
		roots += len(model.AllInputs(pr.N()))
	}

	cold, err := atlasstore.Open(dir)
	if err != nil {
		return StoreBenchRow{}, err
	}
	total := 0
	start := time.Now()
	if err := eachRoot(prs, func(pr model.Protocol, root *model.Config) error {
		a, ok := cold.GetAtlas(pr, root, opt)
		if !ok {
			return fmt.Errorf("experiments: E24: store refused %s root %s", pr.Name(), kernel)
		}
		total += a.Len()
		return nil
	}); err != nil {
		return StoreBenchRow{}, err
	}
	coldD := time.Since(start)
	// Distinct lineages can be fewer than roots: protocols that ignore
	// their inputs (trivial0) share one initial configuration across all
	// input vectors, and the store correctly serves the repeats as hits.
	coldStats := cold.Stats()
	lineages := int(coldStats.Misses)
	if coldStats.Hits+coldStats.Misses != int64(roots) || lineages == 0 {
		return StoreBenchRow{}, fmt.Errorf("experiments: E24: cold run stats %+v over %d roots", coldStats, roots)
	}

	warm, err := atlasstore.Open(dir)
	if err != nil {
		return StoreBenchRow{}, err
	}
	warmCounts := make(map[explore.Valency]int)
	start = time.Now()
	if err := eachRoot(prs, func(pr model.Protocol, root *model.Config) error {
		a, ok := warm.GetAtlas(pr, root, opt)
		if !ok {
			return fmt.Errorf("experiments: E24: warm store refused %s", pr.Name())
		}
		for v, n := range a.Census() {
			warmCounts[v] += n
		}
		return nil
	}); err != nil {
		return StoreBenchRow{}, err
	}
	warmD := time.Since(start)
	agree := true
	if st := warm.Stats(); st.Hits != int64(roots) || st.Misses != 0 || st.Resumes != 0 {
		agree = false
	}

	freshCounts := make(map[explore.Valency]int)
	if err := eachRoot(prs, func(pr model.Protocol, root *model.Config) error {
		a, ok := explore.BuildAtlas(pr, root, opt)
		if !ok {
			return fmt.Errorf("experiments: E24: BuildAtlas refused %s", pr.Name())
		}
		for v, n := range a.Census() {
			freshCounts[v] += n
		}
		return nil
	}); err != nil {
		return StoreBenchRow{}, err
	}
	agree = agree && valencyCountsEqual(warmCounts, freshCounts)

	return StoreBenchRow{
		Kernel:    kernel,
		Protocols: names,
		Lineages:  lineages,
		Configs:   total,
		ColdMS:    float64(coldD.Microseconds()) / 1000,
		WarmMS:    float64(warmD.Microseconds()) / 1000,
		Speedup:   float64(coldD) / float64(warmD),
		Agree:     agree,
	}, nil
}

// eachRoot visits every initial configuration of every listed protocol.
func eachRoot(prs []model.Protocol, f func(model.Protocol, *model.Config) error) error {
	for _, pr := range prs {
		for _, in := range model.AllInputs(pr.N()) {
			root, err := model.Initial(pr, in)
			if err != nil {
				return err
			}
			if err := f(pr, root); err != nil {
				return err
			}
		}
	}
	return nil
}

// storeIncremental compares a one-shot build to the target depth against a
// two-step deepen(d) + resume(d→dk) through the store, pinning that the
// resume re-expands nothing.
func storeIncremental(pr model.Protocol, in model.Inputs, d, dk, budget int, want string) (StoreIncRow, error) {
	root, err := model.Initial(pr, in)
	if err != nil {
		return StoreIncRow{}, err
	}
	optAt := func(depth int) explore.Options {
		return explore.Options{Workers: 1, MaxDepth: depth, MaxConfigs: budget}
	}

	oneDir, oneCleanup, err := freshDir(benchDir(want, "oneshot"))
	if err != nil {
		return StoreIncRow{}, err
	}
	defer oneCleanup()
	oneStore, err := atlasstore.Open(oneDir)
	if err != nil {
		return StoreIncRow{}, err
	}
	start := time.Now()
	oneSnap, oneStats, err := oneStore.Deepen(pr, root, optAt(dk))
	if err != nil {
		return StoreIncRow{}, err
	}
	oneD := time.Since(start)

	stepDir, stepCleanup, err := freshDir(benchDir(want, "stepped"))
	if err != nil {
		return StoreIncRow{}, err
	}
	defer stepCleanup()
	stepStore, err := atlasstore.Open(stepDir)
	if err != nil {
		return StoreIncRow{}, err
	}
	start = time.Now()
	_, stepStats, err := stepStore.Deepen(pr, root, optAt(d))
	if err != nil {
		return StoreIncRow{}, err
	}
	stepD := time.Since(start)
	start = time.Now()
	resSnap, resStats, err := stepStore.Deepen(pr, root, optAt(dk))
	if err != nil {
		return StoreIncRow{}, err
	}
	resD := time.Since(start)

	pinned := resStats.Resumed &&
		stepStats.NewlyExpanded+resStats.NewlyExpanded == oneStats.NewlyExpanded &&
		resSnap.Len() == oneSnap.Len() &&
		resSnap.Expanded() == oneSnap.Expanded()

	return StoreIncRow{
		Kernel:    "incremental deepening",
		Protocol:  pr.Name(),
		DepthD:    d,
		DepthDK:   dk,
		Nodes:     oneSnap.Len(),
		OneShotMS: float64(oneD.Microseconds()) / 1000,
		DeepenMS:  float64(stepD.Microseconds()) / 1000,
		ResumeMS:  float64(resD.Microseconds()) / 1000,
		Pinned:    pinned,
	}, nil
}
