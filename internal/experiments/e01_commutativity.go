package experiments

import (
	"math/rand"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// E1Commutativity reproduces Lemma 1 / Figure 1: randomly generated
// schedule pairs over disjoint process sets commute. For each protocol it
// draws `trials` pairs from a mixed-input initial configuration and counts
// violations (which must be zero).
func E1Commutativity(trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Lemma 1 (Figure 1): disjoint schedules commute",
		Columns: []string{"protocol", "trials", "avg |σ1|+|σ2|", "violations"},
	}
	cases := []struct {
		pr model.Protocol
		in model.Inputs
	}{
		{protocols.NewNaiveMajority(4), model.Inputs{0, 1, 1, 0}},
		{protocols.NewWaitAll(4), model.Inputs{0, 1, 1, 0}},
		{protocols.NewTwoPhaseCommit(4), model.Inputs{1, 1, 0, 1}},
		{protocols.NewPaxosSynod(4), model.Inputs{0, 1, 1, 0}},
		{protocols.NewBenOrDeterministic(4, 3), model.Inputs{0, 1, 1, 0}},
	}
	for _, tc := range cases {
		r := rand.New(rand.NewSource(seed))
		c, err := model.Initial(tc.pr, tc.in)
		if err != nil {
			return nil, err
		}
		violations := 0
		totalLen := 0
		for i := 0; i < trials; i++ {
			s1, s2 := explore.RandomDisjointSchedules(tc.pr, c, r, 8)
			totalLen += len(s1) + len(s2)
			if err := explore.CheckCommutativity(tc.pr, c, s1, s2); err != nil {
				violations++
			}
		}
		t.AddRow(tc.pr.Name(), trials, float64(totalLen)/float64(trials), violations)
	}
	t.AddNote("a violation count of 0 everywhere is the lemma; schedules are random applicable walks restricted to disjoint process groups")
	return t, nil
}
