package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/flpsim/flp/internal/serve"
)

// E22 benchmarks the serving layer: a live flpserve instance (real HTTP
// over a loopback listener) under N concurrent clients issuing a mixed
// census/valency/adversary workload, swept across job-pool sizes. Because
// every client asks overlapping questions, the shared atlas cache turns
// most lookups into hits or singleflight merges — the hit rate column is
// the amortization the service exists to provide. The cold-vs-warm rows
// isolate it directly: the same census against a fresh cache and against a
// populated one, where the warm repeat must be at least 5x faster.

// ServeBenchRow is one pool size's timing under the concurrent workload;
// serialized into BENCH_serve.json by cmd/flpbench.
type ServeBenchRow struct {
	Pool         int     `json:"pool"`
	Clients      int     `json:"clients"`
	Requests     int     `json:"requests"`
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	TotalMS      float64 `json:"total_ms"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// ServeBench is the machine-readable form of the E22 table.
type ServeBench struct {
	GOMAXPROCS   int             `json:"gomaxprocs"`
	NumCPU       int             `json:"numcpu"`
	Clients      int             `json:"clients"`
	Workload     string          `json:"workload"`
	Rows         []ServeBenchRow `json:"rows"`
	ColdCensusMS float64         `json:"cold_census_ms"`
	WarmCensusMS float64         `json:"warm_census_ms"`
	WarmSpeedup  float64         `json:"warm_speedup"`
}

// E22Serve is the Suite entry point (table only).
func E22Serve() (*Table, error) {
	t, _, err := E22ServeBench()
	return t, err
}

// serveRequest is one workload item: an endpoint plus its JSON body.
type serveRequest struct {
	path string
	body any
}

// mixedWorkload is the per-client request sequence: a full Lemma 2 census,
// two single-root classifications, and a short Theorem 1 construction.
// Every client issues the same sequence, so concurrent clients contend on
// the same cache keys — the realistic serving case the cache is keyed for.
func mixedWorkload() []serveRequest {
	return []serveRequest{
		{"/v1/census", serve.CensusRequest{Protocol: "naivemajority", N: 3}},
		{"/v1/valency", serve.ValencyRequest{Protocol: "naivemajority", N: 3, Inputs: []int{0, 1, 1}}},
		{"/v1/valency", serve.ValencyRequest{Protocol: "2pc", N: 3, Inputs: []int{1, 1, 1}}},
		{"/v1/adversary", serve.AdversaryRequest{Protocol: "paxos", N: 3, Stages: 3}},
	}
}

// postWait issues one blocking (?wait=1) query and returns its latency.
// The job must finish in state "done" — the bench measures a healthy
// server, not error paths.
func postWait(base string, req serveRequest) (time.Duration, error) {
	body, err := json.Marshal(req.body)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	resp, err := http.Post(base+req.path+"?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var view struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK || view.State != "done" {
		return 0, fmt.Errorf("%s: status %d, state %q, error %q", req.path, resp.StatusCode, view.State, view.Error)
	}
	return elapsed, nil
}

// percentile returns the q-quantile (0 < q <= 1) of sorted durations.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted))*q+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// E22ServeBench runs the serving-layer benchmark and returns both the
// printable table and the JSON-serializable result.
func E22ServeBench() (*Table, *ServeBench, error) {
	const clients = 8
	pools := []int{1, 2, 4, 8}
	workload := mixedWorkload()

	t := &Table{
		ID: "E22",
		Title: fmt.Sprintf("Exploration as a service: %d concurrent clients, mixed census/valency/adversary workload vs job-pool size",
			clients),
		Columns: []string{"pool", "clients", "requests", "p50", "p99", "total", "cache hit rate"},
	}
	bench := &ServeBench{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Clients:    clients,
		Workload:   "census naivemajority/3, valency naivemajority/3 + 2pc/3, adversary paxos/3 (3 stages), per client",
	}

	for _, pool := range pools {
		s, err := serve.New(serve.Options{Workers: pool, QueueDepth: clients * len(workload)})
		if err != nil {
			return nil, nil, fmt.Errorf("E22 pool %d: %w", pool, err)
		}
		hs := httptest.NewServer(s.Handler())

		latencies := make([]time.Duration, 0, clients*len(workload))
		var (
			mu       sync.Mutex
			wg       sync.WaitGroup
			firstErr error
		)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, req := range workload {
					d, err := postWait(hs.URL, req)
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					latencies = append(latencies, d)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		total := time.Since(start)
		hits, misses, merged := s.AtlasCache().Stats()
		s.Drain()
		hs.Close()
		if firstErr != nil {
			return nil, nil, fmt.Errorf("E22 pool %d: %w", pool, firstErr)
		}

		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		p50 := percentile(latencies, 0.50)
		p99 := percentile(latencies, 0.99)
		hitRate := 0.0
		if lookups := hits + misses + merged; lookups > 0 {
			hitRate = float64(hits+merged) / float64(lookups)
		}
		t.AddRow(pool, clients, len(latencies),
			p50.Round(time.Millisecond), p99.Round(time.Millisecond),
			total.Round(time.Millisecond), fmt.Sprintf("%.0f%%", hitRate*100))
		bench.Rows = append(bench.Rows, ServeBenchRow{
			Pool: pool, Clients: clients, Requests: len(latencies),
			P50MS: ms(p50), P99MS: ms(p99), TotalMS: ms(total),
			CacheHitRate: hitRate,
		})
	}

	// Cold vs warm: the same census against a fresh cache, then against
	// the cache that census just populated. The delta is pure BuildAtlas
	// cost — the warm path re-serves eight memoized classifications.
	s, err := serve.New(serve.Options{Workers: 2})
	if err != nil {
		return nil, nil, err
	}
	hs := httptest.NewServer(s.Handler())
	census := serveRequest{"/v1/census", serve.CensusRequest{Protocol: "naivemajority", N: 3}}
	cold, err := postWait(hs.URL, census)
	if err == nil {
		var warm time.Duration
		warm, err = postWait(hs.URL, census)
		if err == nil {
			bench.ColdCensusMS = ms(cold)
			bench.WarmCensusMS = ms(warm)
			if warm > 0 {
				bench.WarmSpeedup = float64(cold) / float64(warm)
			}
			t.AddNote("cold census %v vs warm repeat %v: %.0fx faster once the atlas cache holds all eight roots",
				cold.Round(time.Millisecond), warm.Round(100*time.Microsecond), bench.WarmSpeedup)
		}
	}
	s.Drain()
	hs.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("E22 cold/warm: %w", err)
	}

	t.AddNote("every request blocks (?wait=1) and must return state done; answers are byte-identical to the CLI engines at every pool size")
	t.AddNote("cache hit rate counts singleflight merges as hits: with %d clients asking the same questions, one BuildAtlas serves all of them", clients)
	return t, bench, nil
}
