package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// E23 is the multi-core scaling benchmark of the in-process parallel
// engine: the census kernels the suite leans on (the E2 initial-valency
// census, the E19 reachability sweep, the E20 atlas build) run at workers
// 1, 2, 4, and 8, wall-clock timed. Every run also folds the visit-order
// fingerprints into a checksum, so the table carries its own proof that
// results are byte-identical at every worker count — speedups that change
// answers are not speedups.
//
// Honesty rule: every emitted artifact records GOMAXPROCS and
// runtime.NumCPU(). A single-core box cannot show parallel wins (the
// level-synchronous engine then only adds coordination overhead), and its
// artifact says so on its face; the CI scaling job runs this on a ≥4-CPU
// runner, which is where the real numbers come from.

// ScalingWorkers is the worker-count ladder every kernel is swept over.
var ScalingWorkers = []int{1, 2, 4, 8}

// ScalingCell is one (kernel, workers) timing.
type ScalingCell struct {
	Workers int     `json:"workers"`
	MS      float64 `json:"ms"`
	Speedup float64 `json:"speedup"` // sequential wall / this wall
}

// ScalingRow is one kernel's sweep across the worker ladder.
type ScalingRow struct {
	Kernel   string        `json:"kernel"`
	Protocol string        `json:"protocol"`
	Configs  int           `json:"configs"`
	Cells    []ScalingCell `json:"cells"`
	// Agree is the byte-identity bit: identical visited counts and
	// identical visit-order checksums at every worker count.
	Agree bool `json:"agree"`
}

// ScalingBench is the machine-readable form of the E23 table, serialized
// into BENCH_scaling.json by cmd/flpbench.
type ScalingBench struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"numcpu"`
	Smoke      bool         `json:"smoke"`
	Workers    []int        `json:"workers"`
	Rows       []ScalingRow `json:"rows"`
}

// E23Scaling is the Suite entry point (table only). It runs in smoke
// mode — the wide-frontier kernel is minutes of wall clock by design and
// would sink the suite's seconds-scale turnaround; run
// `flpbench -experiment E23` (make bench-scaling) for the full sweep.
func E23Scaling() (*Table, error) {
	t, _, err := E23ScalingBench(true)
	return t, err
}

// E23ScalingBench sweeps every kernel over the worker ladder. Smoke mode
// drops the wide-frontier kernel so CI matrix legs finish in seconds; the
// small kernels and the byte-identity checks run either way.
func E23ScalingBench(smoke bool) (*Table, *ScalingBench, error) {
	t := &Table{
		ID:      "E23",
		Title:   fmt.Sprintf("Parallel engine scaling: census kernels at workers 1/2/4/8 (GOMAXPROCS=%d, NumCPU=%d)", runtime.GOMAXPROCS(0), runtime.NumCPU()),
		Columns: []string{"kernel", "protocol", "configs", "w=1", "w=2", "w=4", "w=8", "agree"},
	}
	bench := &ScalingBench{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Smoke:      smoke,
		Workers:    ScalingWorkers,
	}

	type kernel struct {
		name, protocol string
		run            func(opt explore.Options) (int, uint64, error)
	}
	kernels := []kernel{
		{"E2 initial-valency census", "naivemajority", func(opt explore.Options) (int, uint64, error) {
			return scalingSweep(protocols.NewNaiveMajority(3), opt)
		}},
		{"E19 reachability sweep", "2pc", func(opt explore.Options) (int, uint64, error) {
			return scalingSweep(protocols.NewTwoPhaseCommit(3), opt)
		}},
		{"E20 atlas build", "naivemajority", func(opt explore.Options) (int, uint64, error) {
			return scalingAtlas(protocols.NewNaiveMajority(3), opt)
		}},
	}
	if !smoke {
		// The wide-frontier kernel: a truncated sweep of an infinite state
		// space, where breadth-first levels hold thousands of nodes and the
		// parallel engine has real work to distribute.
		kernels = append(kernels, kernel{"wide-frontier sweep (truncated)", "onethird", func(opt explore.Options) (int, uint64, error) {
			opt.MaxConfigs = 30000
			return scalingSweep(protocols.NewOneThirdRule(4), opt)
		}})
	}

	for _, k := range kernels {
		row := ScalingRow{Kernel: k.name, Protocol: k.protocol, Agree: true}
		var baseMS float64
		var baseVisited int
		var baseSum uint64
		for i, w := range ScalingWorkers {
			start := time.Now()
			visited, sum, err := k.run(explore.Options{Workers: w})
			if err != nil {
				return nil, nil, err
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			if i == 0 {
				baseMS, baseVisited, baseSum = ms, visited, sum
				row.Configs = visited
			} else if visited != baseVisited || sum != baseSum {
				row.Agree = false
			}
			row.Cells = append(row.Cells, ScalingCell{Workers: w, MS: ms, Speedup: baseMS / ms})
		}
		cells := make([]any, 0, len(row.Cells))
		for _, c := range row.Cells {
			cells = append(cells, fmt.Sprintf("%.0fms (%.2fx)", c.MS, c.Speedup))
		}
		t.AddRow(append([]any{row.Kernel, row.Protocol, row.Configs}, append(cells, row.Agree)...)...)
		bench.Rows = append(bench.Rows, row)
	}

	t.AddNote("agree = identical visited counts AND identical visit-order checksums at every worker count — the byte-identical contract, checked, not assumed")
	t.AddNote("speedups are meaningful only when NumCPU ≥ workers; artifacts record gomaxprocs and numcpu so single-core runs cannot masquerade as scaling evidence")
	return t, bench, nil
}

// scalingSweep explores every input vector of pr and returns the total
// visited count plus an order-sensitive FNV fold of the visit sequence's
// fingerprints — equal checksums mean the engines visited the same
// configurations in the same order.
func scalingSweep(pr model.Protocol, opt explore.Options) (int, uint64, error) {
	visited := 0
	sum := uint64(14695981039346656037)
	for _, in := range model.AllInputs(pr.N()) {
		root, err := model.Initial(pr, in)
		if err != nil {
			return 0, 0, err
		}
		explore.Explore(pr, root, opt, nil, func(c *model.Config, _ int, _ func() model.Schedule) bool {
			visited++
			sum = (sum ^ c.Hash()) * 1099511628211
			return false
		})
	}
	return visited, sum, nil
}

// scalingAtlas builds the atlas of every input vector of pr and folds node
// order the same way (atlas node ids are admission order, so the fold is
// order-sensitive exactly like the sweep's).
func scalingAtlas(pr model.Protocol, opt explore.Options) (int, uint64, error) {
	visited := 0
	sum := uint64(14695981039346656037)
	for _, in := range model.AllInputs(pr.N()) {
		root, err := model.Initial(pr, in)
		if err != nil {
			return 0, 0, err
		}
		a, ok := explore.BuildAtlas(pr, root, opt)
		if !ok {
			return 0, 0, fmt.Errorf("experiments: E23: atlas refused %s inputs %s", pr.Name(), in)
		}
		visited += a.Len()
		for id := 0; id < a.Len(); id++ {
			sum = (sum ^ a.Config(int32(id)).Hash()) * 1099511628211
		}
	}
	return visited, sum, nil
}
