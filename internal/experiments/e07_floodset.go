package experiments

import (
	"math/rand"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/syncround"
)

// E7FloodSet reproduces the abstract's contrast: "solutions are known for
// the synchronous case." FloodSet decides in exactly f+1 synchronous rounds
// under every crash pattern with at most f crashes — and the f+1 bound is
// tight: with only f rounds there are crash patterns under which survivors
// disagree.
func E7FloodSet(trials int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Synchronous contrast: FloodSet decides in f+1 rounds under ≤ f crashes",
		Columns: []string{"N", "f", "rounds", "trials", "agreement violations", "validity violations"},
	}
	r := rand.New(rand.NewSource(seed))
	for _, nf := range [][2]int{{3, 1}, {5, 1}, {5, 2}, {7, 3}, {9, 4}} {
		n, f := nf[0], nf[1]
		agreementViolations, validityViolations := 0, 0
		for i := 0; i < trials; i++ {
			in := make(model.Inputs, n)
			for j := range in {
				in[j] = model.Value(r.Intn(2))
			}
			cp := syncround.RandomCrashPattern(n, f, f+1, r)
			res, err := syncround.Run(syncround.FloodSet{}, in, f, cp)
			if err != nil {
				return nil, err
			}
			if !res.Agreement {
				agreementViolations++
			}
			if v, ok := res.DecidedValue(); ok && in.Count(v) == 0 {
				validityViolations++
			}
		}
		t.AddRow(n, f, f+1, trials, agreementViolations, validityViolations)
	}

	// The tightness ablation: f rounds are not enough.
	cp := syncround.CrashPattern{
		Round:   map[int]int{2: 1},
		Partial: map[int]map[int]bool{2: {1: true}},
	}
	trunc, err := syncround.Run(syncround.TruncatedFloodSet{R: 1}, model.Inputs{1, 1, 0}, 1, cp)
	if err != nil {
		return nil, err
	}
	full, err := syncround.Run(syncround.FloodSet{}, model.Inputs{1, 1, 0}, 1, cp)
	if err != nil {
		return nil, err
	}
	t.AddNote("tightness: the same crash pattern run for only f=1 round(s) gives agreement=%v; the full f+1 rounds give agreement=%v",
		trunc.Agreement, full.Agreement)
	t.AddNote("this is precisely what asynchrony takes away: the synchronous model solves in f+1 rounds what Theorem 1 proves unsolvable without timing")
	return t, nil
}
