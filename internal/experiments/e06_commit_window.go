package experiments

import (
	"fmt"

	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
	"github.com/flpsim/flp/internal/runtime"
)

// E6CommitWindow reproduces the introduction's motivating claim: every
// asynchronous commit protocol has a window of vulnerability — an interval
// during which the delay of a single process blocks everything. 2PC under
// a fair scheduler commits instantly; delay any single process and the
// whole system waits.
func E6CommitWindow(runs int) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Introduction: the transaction-commit window of vulnerability (2pc(n=3), all votes commit)",
		Columns: []string{"condition", "runs", "committed", "blocked", "steps (mean)"},
	}
	pr := protocols.NewTwoPhaseCommit(3)
	inputs := model.Inputs{1, 1, 1}

	healthy, err := runtime.RunMany(pr, inputs,
		func() runtime.Scheduler { return runtime.RandomFair{} },
		runtime.RunOptions{MaxSteps: 10000}, runs)
	if err != nil {
		return nil, err
	}
	t.AddRow("healthy (random-fair)", healthy.Runs, healthy.Decided, healthy.Blocked, int(healthy.MeanSteps()))

	for victim := 0; victim < 3; victim++ {
		label := "participant"
		if model.PID(victim) == protocols.Coordinator {
			label = "coordinator"
		}
		agg, err := runtime.RunMany(pr, inputs,
			func() runtime.Scheduler {
				return runtime.Delayed{Victim: model.PID(victim), Inner: runtime.RandomFair{}}
			},
			runtime.RunOptions{MaxSteps: 10000}, runs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("delay p%d (%s)", victim, label), agg.Runs, agg.Decided, agg.Blocked, "-")
	}

	// The sharpest form of the window: the coordinator receives a vote —
	// the participants are now committed to waiting — and dies before its
	// verdict. (Its steps are exactly the vote deliveries: the broadcast
	// happens within the step that completes the tally, so crashing after
	// one step is mid-window.)
	agg, err := runtime.RunMany(pr, inputs,
		func() runtime.Scheduler { return runtime.RandomFair{} },
		runtime.RunOptions{MaxSteps: 10000, CrashAfter: map[model.PID]int{protocols.Coordinator: 1}}, runs)
	if err != nil {
		return nil, err
	}
	t.AddRow("coordinator dies mid-protocol", agg.Runs, agg.Decided, agg.Blocked, "-")

	// Three-phase commit: the classic "non-blocking" fix. Without
	// timeouts — which the asynchronous model forbids — the extra phase
	// changes nothing: the window persists, now at a higher message cost.
	pr3 := protocols.NewThreePhaseCommit(3)
	healthy3, err := runtime.RunMany(pr3, inputs,
		func() runtime.Scheduler { return runtime.RandomFair{} },
		runtime.RunOptions{MaxSteps: 10000}, runs)
	if err != nil {
		return nil, err
	}
	t.AddRow("3PC healthy (random-fair)", healthy3.Runs, healthy3.Decided, healthy3.Blocked, int(healthy3.MeanSteps()))
	delayed3, err := runtime.RunMany(pr3, inputs,
		func() runtime.Scheduler {
			return runtime.Delayed{Victim: protocols.Coordinator, Inner: runtime.RandomFair{}}
		},
		runtime.RunOptions{MaxSteps: 10000}, runs)
	if err != nil {
		return nil, err
	}
	t.AddRow("3PC delay coordinator", delayed3.Runs, delayed3.Decided, delayed3.Blocked, "-")

	t.AddNote("the delay of any single process blocks every run — the 'window of vulnerability' the paper proves is unavoidable for asynchronous commit")
	t.AddNote("three-phase commit pays an extra round (compare the healthy step means) and keeps the identical window: non-blocking commit needs timing assumptions, exactly as Theorem 1 predicts")
	return t, nil
}
