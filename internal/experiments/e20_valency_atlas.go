package experiments

import (
	"fmt"
	"runtime"
	"time"

	"github.com/flpsim/flp/internal/explore"
	"github.com/flpsim/flp/internal/model"
	"github.com/flpsim/flp/internal/protocols"
)

// E20 benchmarks the valency atlas against per-configuration
// classification on the census kernels the suite actually runs: the E2
// initial-valency census and the E11 agreement sweep — both restated as
// "classify every reachable configuration of every initial configuration"
// — plus one Lemma 3 frontier census. The per-config side pays one
// breadth-first search per configuration, O(V·(V+E)) per census; the atlas
// side builds the reachable graph once per root and classifies all of its
// nodes from two backward passes, O(V+E). Both sides are timed end to end
// (enumeration and build included) at one worker, and their census tallies
// must agree exactly.

// ValencyBenchRow is one kernel's timing comparison; serialized into
// BENCH_valency.json by cmd/flpbench.
type ValencyBenchRow struct {
	Kernel      string  `json:"kernel"`
	Protocols   string  `json:"protocols"`
	Configs     int     `json:"configs"`
	PerConfigMS float64 `json:"per_config_ms"`
	AtlasMS     float64 `json:"atlas_ms"`
	Speedup     float64 `json:"speedup"`
	Agree       bool    `json:"agree"`
}

// ValencyBench is the machine-readable form of the E20 table.
type ValencyBench struct {
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"numcpu"`
	Rows       []ValencyBenchRow `json:"rows"`
}

// E20ValencyAtlas is the Suite entry point (table only).
func E20ValencyAtlas() (*Table, error) {
	t, _, err := E20ValencyAtlasBench()
	return t, err
}

// E20ValencyAtlasBench runs the comparison and returns both the printable
// table and the JSON-serializable result.
func E20ValencyAtlasBench() (*Table, *ValencyBench, error) {
	t := &Table{
		ID:      "E20",
		Title:   "Valency atlas: whole-graph classification vs one BFS per configuration (1 worker)",
		Columns: []string{"kernel", "protocols", "configs", "per-config", "atlas", "speedup", "agree"},
	}
	bench := &ValencyBench{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}

	e2 := []model.Protocol{protocols.NewNaiveMajority(3)}
	e11 := []model.Protocol{
		protocols.NewTrivial0(3),
		protocols.NewWaitAll(3),
		protocols.NewNaiveMajority(3),
		protocols.NewTwoPhaseCommit(3),
	}
	rows := []struct {
		kernel string
		prs    []model.Protocol
	}{
		{"E2 initial-valency census", e2},
		{"E11 agreement sweep", e11},
	}
	for _, k := range rows {
		row, err := censusKernel(k.kernel, k.prs)
		if err != nil {
			return nil, nil, err
		}
		addValencyRow(t, bench, row)
	}
	row, err := lemma3Kernel()
	if err != nil {
		return nil, nil, err
	}
	addValencyRow(t, bench, row)

	t.AddNote("per-config enumerates each root's reachable set and runs one budgeted BFS per member; atlas builds each graph once and reads all classes from two backward passes")
	t.AddNote("the lemma3 kernel classifies the full frontier D for each null event from one bivalent C — the shape flpcheck and the Theorem 1 adversary pay per stage")
	return t, bench, nil
}

func addValencyRow(t *Table, bench *ValencyBench, row ValencyBenchRow) {
	t.AddRow(row.Kernel, row.Protocols, row.Configs,
		fmt.Sprintf("%.1fms", row.PerConfigMS), fmt.Sprintf("%.1fms", row.AtlasMS),
		fmt.Sprintf("%.1fx", row.Speedup), row.Agree)
	bench.Rows = append(bench.Rows, row)
}

// censusKernel classifies every configuration reachable from every initial
// configuration of every listed protocol, both ways.
func censusKernel(kernel string, prs []model.Protocol) (ValencyBenchRow, error) {
	opt := explore.Options{Workers: 1}
	names := ""
	for i, pr := range prs {
		if i > 0 {
			names += "+"
		}
		names += pr.Name()
	}

	perCounts := make(map[explore.Valency]int)
	total := 0
	start := time.Now()
	for _, pr := range prs {
		for _, in := range model.AllInputs(pr.N()) {
			root, err := model.Initial(pr, in)
			if err != nil {
				return ValencyBenchRow{}, err
			}
			var cfgs []*model.Config
			explore.Explore(pr, root, opt, nil, func(c *model.Config, _ int, _ func() model.Schedule) bool {
				cfgs = append(cfgs, c)
				return false
			})
			total += len(cfgs)
			for _, c := range cfgs {
				perCounts[explore.Classify(pr, c, opt).Valency]++
			}
		}
	}
	perD := time.Since(start)

	atlasCounts := make(map[explore.Valency]int)
	start = time.Now()
	for _, pr := range prs {
		for _, in := range model.AllInputs(pr.N()) {
			root, err := model.Initial(pr, in)
			if err != nil {
				return ValencyBenchRow{}, err
			}
			a, ok := explore.BuildAtlas(pr, root, opt)
			if !ok {
				return ValencyBenchRow{}, fmt.Errorf("experiments: E20: atlas refused %s inputs %s", pr.Name(), in)
			}
			for v, n := range a.Census() {
				atlasCounts[v] += n
			}
		}
	}
	atlasD := time.Since(start)

	return ValencyBenchRow{
		Kernel:      kernel,
		Protocols:   names,
		Configs:     total,
		PerConfigMS: float64(perD.Microseconds()) / 1000,
		AtlasMS:     float64(atlasD.Microseconds()) / 1000,
		Speedup:     float64(perD) / float64(atlasD),
		Agree:       valencyCountsEqual(perCounts, atlasCounts),
	}, nil
}

// lemma3Kernel runs the Lemma 3 frontier census for every null event from
// naivemajority's first bivalent initial configuration: per-config exactly
// as the pre-atlas CensusLemma3 did (one shared cache, one BFS per cache
// miss), against the atlas-backed CensusLemma3.
func lemma3Kernel() (ValencyBenchRow, error) {
	pr := protocols.NewNaiveMajority(3)
	opt := explore.Options{Workers: 1}
	c, _, ok := explore.FindBivalentInitial(pr, opt)
	if !ok {
		return ValencyBenchRow{}, fmt.Errorf("experiments: E20: no bivalent initial configuration")
	}
	events := make([]model.Event, pr.N())
	for p := range events {
		events[p] = model.NullEvent(model.PID(p))
	}

	perCounts := make(map[explore.Valency]int)
	total := 0
	start := time.Now()
	cache := explore.NewCache(pr, opt)
	for _, e := range events {
		explore.Explore(pr, c, opt, &e, func(E *model.Config, _ int, _ func() model.Schedule) bool {
			D := model.MustApply(pr, E, e)
			perCounts[cache.Classify(D).Valency]++
			total++
			return false
		})
	}
	perD := time.Since(start)

	atlasCounts := make(map[explore.Valency]int)
	start = time.Now()
	warmed := explore.NewCache(pr, opt)
	for _, e := range events {
		res, err := explore.CensusLemma3(pr, c, e, opt, warmed)
		if err != nil {
			return ValencyBenchRow{}, err
		}
		for v, n := range res.DValencies {
			atlasCounts[v] += n
		}
	}
	atlasD := time.Since(start)

	return ValencyBenchRow{
		Kernel:      "Lemma 3 frontier census (3 null events)",
		Protocols:   pr.Name(),
		Configs:     total,
		PerConfigMS: float64(perD.Microseconds()) / 1000,
		AtlasMS:     float64(atlasD.Microseconds()) / 1000,
		Speedup:     float64(perD) / float64(atlasD),
		Agree:       valencyCountsEqual(perCounts, atlasCounts),
	}, nil
}

func valencyCountsEqual(a, b map[explore.Valency]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
